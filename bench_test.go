package tabby

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index).
//
//	go test -bench=. -benchmem
//
// The Table VIII benchmarks use a reduced corpus scale so `go test
// -bench` stays laptop-friendly; `cmd/tabby-bench -table 8 -scale 1`
// runs the paper-size corpus.

import (
	"fmt"
	"strings"
	"testing"

	"tabby/internal/bench"
	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/cpg"
	"tabby/internal/graphdb"
	"tabby/internal/interp"
	"tabby/internal/javasrc"
	"tabby/internal/pathfinder"
	"tabby/internal/taint"
)

// BenchmarkTable8_CPGGeneration measures CPG construction time per
// synthetic-corpus row (paper Table VIII; the paper's claim is linear
// scaling in class/method count).
func BenchmarkTable8_CPGGeneration(b *testing.B) {
	const scale = 0.05
	for _, spec := range corpus.SyntheticSpecs() {
		spec := spec
		b.Run(spec.Label, func(b *testing.B) {
			prog, err := corpus.GenerateSynthetic(spec, scale)
			if err != nil {
				b.Fatal(err)
			}
			engine := core.New(core.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := engine.BuildCPG(prog); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(prog.NumMethods()), "methods")
		})
	}
}

// BenchmarkTable9_Component measures the full three-tool comparison on
// representative Table IX components.
func BenchmarkTable9_Component(b *testing.B) {
	for _, name := range []string{"AspectJWeaver", "commons-collections(3.2.1)", "Groovy1"} {
		name := name
		b.Run(name, func(b *testing.B) {
			comp, err := corpus.ComponentByName(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.EvaluateComponent(comp, bench.EvalOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable9_FullComparison runs the entire 26-component experiment
// per iteration — the whole RQ2 table.
func BenchmarkTable9_FullComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.RunTable9(bench.EvalOptions{})
		if err != nil {
			b.Fatal(err)
		}
		o := t.Totals()
		b.ReportMetric(o.TBFPR(), "tabbyFPR%")
		b.ReportMetric(o.TBFNR(), "tabbyFNR%")
	}
}

// BenchmarkTable10_Scenes runs the five development-scene scans (RQ3).
func BenchmarkTable10_Scenes(b *testing.B) {
	for _, scene := range corpus.Scenes() {
		scene := scene
		b.Run(scene.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.EvaluateScene(scene); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable11_SpringChains regenerates the Table XI chain listing.
func BenchmarkTable11_SpringChains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table11(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_URLDNSCPG builds the Fig. 4 code property graph (the
// modeled runtime containing the URLDNS machinery).
func BenchmarkFig4_URLDNSCPG(b *testing.B) {
	prog, err := javasrc.CompileArchives([]javasrc.ArchiveSource{corpus.RT()})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpg.Build(prog, cpg.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_Controllability runs the controllability analysis on the
// paper's Fig. 5 example/exchange pair.
func BenchmarkFig5_Controllability(b *testing.B) {
	prog, err := javasrc.Compile("fig5", `
package fig5;
public class A { public fig5.B b; }
public class B {
    public static fig5.B exchange(fig5.A a, fig5.B b) {
        a.b = b;
        b = new fig5.B();
        return a.b;
    }
}
public class C {
    public fig5.A example(fig5.A a, fig5.B b) {
        fig5.A a1 = new fig5.A();
        fig5.A a2 = a;
        a = a1;
        fig5.B b1 = fig5.B.exchange(a, b);
        return a2;
    }
}
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := taint.Analyze(prog, taint.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6_PathFinding measures the Expander/Evaluator search on a
// built CPG (the modeled runtime; finds URLDNS per iteration).
func BenchmarkFig6_PathFinding(b *testing.B) {
	prog, err := javasrc.CompileArchives([]javasrc.ArchiveSource{corpus.RT()})
	if err != nil {
		b.Fatal(err)
	}
	g, err := cpg.Build(prog, cpg.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pathfinder.Find(g.DB, pathfinder.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Chains) == 0 {
			b.Fatal("URLDNS chain lost")
		}
	}
}

// BenchmarkAblation_PCGvsMCG contrasts chain search over the pruned
// Precise Call Graph against the unpruned Method Call Graph — the design
// choice §III-C motivates ("pruning ... helps to alleviate the path
// explosion problem").
func BenchmarkAblation_PCGvsMCG(b *testing.B) {
	comp, err := corpus.ComponentByName("commons-collections(3.2.1)")
	if err != nil {
		b.Fatal(err)
	}
	archives := append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...)
	for _, mode := range []struct {
		name string
		keep bool
	}{{name: "PCG-pruned", keep: false}, {name: "MCG-unpruned", keep: true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			prog, err := javasrc.CompileArchives(archives)
			if err != nil {
				b.Fatal(err)
			}
			g, err := cpg.Build(prog, cpg.Options{KeepPrunedCalls: mode.keep})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var expansions int
			for i := 0; i < b.N; i++ {
				res, err := pathfinder.Find(g.DB, pathfinder.Options{})
				if err != nil {
					b.Fatal(err)
				}
				expansions = res.Expansions
			}
			b.ReportMetric(float64(expansions), "expansions")
		})
	}
}

// BenchmarkGraphDB measures the storage substrate: node/edge insertion
// and indexed lookup.
func BenchmarkGraphDB(b *testing.B) {
	b.Run("CreateNode", func(b *testing.B) {
		db := graphdb.New()
		props := graphdb.Props{"NAME": "x", "IS_SINK": false}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.CreateNode([]string{"Method"}, props)
		}
	})
	b.Run("IndexedFind", func(b *testing.B) {
		db := graphdb.New()
		db.CreateIndex("Method", "NAME")
		for i := 0; i < 10000; i++ {
			db.CreateNode([]string{"Method"}, graphdb.Props{"NAME": i})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := db.FindNodes("Method", "NAME", i%10000); len(got) != 1 {
				b.Fatal("lookup failed")
			}
		}
	})
}

// BenchmarkFrontend measures mini-Java compilation of the runtime model.
func BenchmarkFrontend(b *testing.B) {
	rt := corpus.RT()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := javasrc.CompileArchives([]javasrc.ArchiveSource{rt}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConfirm measures the §V-C confirmation engine: payload
// construction plus concrete execution of the URLDNS chain.
func BenchmarkConfirm(b *testing.B) {
	engine := core.New(core.Options{})
	rep, err := engine.AnalyzeSources([]javasrc.ArchiveSource{corpus.RT()})
	if err != nil {
		b.Fatal(err)
	}
	var chain []string
	for _, c := range rep.Chains {
		if strings.HasPrefix(c.Names[0], "java.util.HashMap#readObject") {
			chain = c.Names
		}
	}
	if chain == nil {
		b.Fatal("URLDNS chain missing")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := interp.Confirm(rep.Graph.Program, chain, interp.Options{})
		if err != nil || !res.Confirmed {
			b.Fatalf("confirm failed: %v %v", err, res)
		}
	}
}

// BenchmarkParallelPipeline measures the full pipeline (CPG build + chain
// search) over the Table VIII synthetic corpus at several worker counts.
// Speedup over the workers=1 sub-benchmark is the tentpole metric; on a
// single-CPU host (GOMAXPROCS=1) the counts coincide by design, since the
// scheduler degrades to the sequential path. cmd/tabby-bench
// -table parallel runs the same sweep at full scale and verifies output
// equality across counts.
func BenchmarkParallelPipeline(b *testing.B) {
	const scale = 0.05
	specs := corpus.SyntheticSpecs()
	spec := specs[len(specs)-1]
	prog, err := corpus.GenerateSynthetic(spec, scale)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			engine := core.New(core.Options{Workers: workers})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, _, err := engine.BuildCPG(prog)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, _, err := engine.FindChains(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
