GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: compile everything, vet, and run the full
# test suite under the race detector (the parallel pipeline's determinism
# and safety contract).
check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
