GO ?= go

.PHONY: build test vet fmt race check check-reltypes bench bench-path bench-build bench-incr bench-query bench-snap bench-serve serve-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails when any file is not gofmt-clean, listing the offenders.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check-reltypes asserts every relationship type of the edge vocabulary
# is handled by the provenance table, the cpg re-exports and the DOT
# exporter (see scripts/check_reltypes.sh).
check-reltypes:
	sh scripts/check_reltypes.sh

# check is the pre-merge gate: formatting, schema exhaustiveness,
# compile everything, vet, and run the full test suite under the race
# detector (the parallel pipeline's determinism and safety contract).
check: fmt check-reltypes
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-path compares the two search engines (compiled index vs generic
# store) and gates the index engine's steady-state allocation ceiling
# (TestSteadyStateAllocs fails the build if allocs/op regresses).
bench-path:
	$(GO) test ./internal/pathfinder -run TestSteadyStateAllocs -bench 'BenchmarkFind(Indexed|Generic)' -benchmem -v

# bench-build gates the cold-build fast path at GOMAXPROCS=1 workers=1:
# a cacheless full-corpus build (compile + taint + cpg) must be >= 1.5x
# faster and allocate >= 3x less than the recorded pre-fast-path seed.
# Writes BENCH_build.json via `tabby-bench -table build`.
bench-build:
	GOMAXPROCS=1 TABBY_BENCH_GATE=1 $(GO) test ./internal/bench -run TestBuildGate -count=1 -v
	GOMAXPROCS=1 $(GO) run ./cmd/tabby-bench -table build -runs 3

# bench-incr gates the incremental-analysis speedups at GOMAXPROCS=1:
# a warm rerun must beat a cold run by >= 3x and a one-class-changed
# rerun by >= 2x, with output identical to the cacheless pipeline.
bench-incr:
	GOMAXPROCS=1 TABBY_BENCH_GATE=1 $(GO) test ./internal/bench -run TestIncrementalGate -count=1 -v

# bench-query gates the Cypher-lite plan compiler at GOMAXPROCS=1: the
# compiled iterator plan must beat the tree-walking interpreter by
# >= 10x on a selective MATCH..WHERE pattern, with steady-state
# allocations bounded by a small constant plus a few per result row.
bench-query:
	GOMAXPROCS=1 TABBY_BENCH_GATE=1 $(GO) test ./internal/bench -run TestQueryGate -count=1 -v

# bench-snap gates the storage backends at GOMAXPROCS=1: opening a
# snapshot as a zero-copy mmap view must be >= 100x faster than the
# full heap parse, with per-open allocations bounded by a constant
# (O(labels + relationship types), never O(graph)), and steady-state
# /v1/chains + /v1/query serving within 1.5x of the heap backend.
# Writes BENCH_snapshot.json via `tabby-bench -table snapshot`.
bench-snap:
	GOMAXPROCS=1 TABBY_BENCH_GATE=1 $(GO) test ./internal/bench -run TestSnapshotGate -count=1 -v
	GOMAXPROCS=1 $(GO) run ./cmd/tabby-bench -table snapshot -runs 3

# bench-serve gates the serve path under load at GOMAXPROCS=1: a
# repeat upload of an unchanged corpus must resolve >= 10x faster than
# a build (the fingerprint-keyed result cache), repeats must run zero
# builds, and cached /v1/query + /v1/chains responses must be
# byte-identical to cold ones on both storage backends. Writes
# BENCH_serve.json via `tabby-bench -table serve`.
bench-serve:
	GOMAXPROCS=1 TABBY_BENCH_GATE=1 $(GO) test ./internal/bench -run TestServeGate -count=1 -v
	GOMAXPROCS=1 $(GO) run ./cmd/tabby-bench -table serve -runs 3

# serve-smoke runs the persistence + serving stack end to end: snapshot
# the quickstart corpus, boot tabby-server, curl every endpoint, and
# diff against scripts/testdata/serve_smoke.golden (regenerate with
# scripts/serve_smoke.sh -update).
serve-smoke:
	scripts/serve_smoke.sh
