// Command tabby runs the full gadget-chain detection pipeline (paper
// Fig. 2): semantic information extraction → code property graph
// construction with controllability analysis → storage → gadget chain
// finding.
//
// Inputs are mini-Java source trees (see internal/javasrc), bundled
// evaluation components, or development scenes:
//
//	tabby -dir ./myproject                analyze every .java under ./myproject
//	tabby -component C3P0                 analyze a bundled Table IX component
//	tabby -scene Spring                   analyze a bundled Table X scene
//	tabby -urldns                         the built-in URLDNS demonstration
//	tabby -list                           list bundled components and scenes
//
// Output options:
//
//	-stats          print CPG node/edge statistics
//	-chains         print discovered gadget chains (default true)
//	-save FILE      persist a snapshot (graph + registry state + metadata)
//	                for later tabby-query/tabby-server sessions
//	-cache-dir DIR  keep a persistent method-summary cache in DIR; reruns
//	                over mostly-unchanged sources reanalyze only the
//	                methods whose dependency cone actually changed
//	-max-depth N    Evaluator depth bound (default 12)
//	-confirm        concretely execute each chain (payload construction +
//	                jimple interpretation — the paper's §V-C future work)
//
// The -max-call-depth flag is deprecated and has no effect: the SCC wave
// scheduler of the controllability analysis replaced the depth-capped
// recursion it used to bound. Passing it prints a warning.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tabby/internal/cliutil"
	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/cpg"
	"tabby/internal/interp"
	"tabby/internal/javasrc"
	"tabby/internal/profiling"
	"tabby/internal/sinks"
	"tabby/internal/store"
	"tabby/internal/taint"
)

func main() {
	var (
		dir          = flag.String("dir", "", "directory of .java files to analyze (recursive)")
		component    = flag.String("component", "", "bundled Table IX component name")
		scene        = flag.String("scene", "", "bundled Table X scene name")
		urldns       = flag.Bool("urldns", false, "run the built-in URLDNS demonstration")
		list         = flag.Bool("list", false, "list bundled components and scenes")
		withRT       = flag.Bool("rt", true, "include the modeled Java runtime (rt.jar)")
		stats        = flag.Bool("stats", false, "print CPG statistics")
		chains       = flag.Bool("chains", true, "print discovered gadget chains")
		save         = flag.String("save", "", "persist a snapshot of the built graph to this file")
		cacheDir     = flag.String("cache-dir", "", "directory for the persistent method-summary cache; reruns reuse summaries whose dependency cone is unchanged")
		maxDepth     = flag.Int("max-depth", 0, "maximum chain length (0 = default 12)")
		maxCallDepth = flag.Int("max-call-depth", 0, "deprecated, no effect: the SCC scheduler removed the call-depth bound")
		mechanism    = flag.String("mechanism", "native", "deserialization mechanism: native or xstream")
		serDispatch  = flag.Bool("serialization-dispatch", false, "synthesize DISPATCH edges from a virtual deserialization driver to every hierarchy-derived JVM callback and accept those targets as chain entry points")
		confirm      = flag.Bool("confirm", false, "concretely execute each chain to confirm it fires (§V-C extension)")
		dot          = flag.String("dot", "", "write a Graphviz DOT rendering of the CPG (filtered to chain classes) to this file")
		workers      = flag.Int("workers", 0, "worker count for every pipeline stage (0 = GOMAXPROCS, 1 = sequential; output is identical at any setting)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()
	cliutil.WarnMaxCallDepth(os.Stderr, "tabby", *maxCallDepth)
	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tabby:", err)
		os.Exit(1)
	}
	runErr := run(options{
		dir: *dir, component: *component, scene: *scene,
		urldns: *urldns, list: *list, withRT: *withRT,
		stats: *stats, chains: *chains, save: *save, maxDepth: *maxDepth,
		mechanism: *mechanism, confirm: *confirm, dot: *dot,
		workers: *workers, cacheDir: *cacheDir, serDispatch: *serDispatch,
	})
	stopProfiles() // before any exit: os.Exit skips defers
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "tabby:", runErr)
		os.Exit(1)
	}
}

type options struct {
	dir, component, scene string
	urldns, list, withRT  bool
	stats, chains         bool
	save                  string
	maxDepth              int
	mechanism             string
	confirm               bool
	dot                   string
	workers               int
	cacheDir              string
	serDispatch           bool
}

func run(o options) error {
	if o.list {
		return printBundled()
	}
	archives, err := collectArchives(o)
	if err != nil {
		return err
	}
	if len(archives) == 0 {
		return fmt.Errorf("nothing to analyze: pass -dir, -component, -scene or -urldns (see -h)")
	}

	var sources sinks.SourceConfig
	switch o.mechanism {
	case "", "native":
		// engine default
	case "xstream":
		sources = sinks.XStreamSources()
	default:
		return fmt.Errorf("unknown mechanism %q (want native or xstream)", o.mechanism)
	}
	engine := core.New(core.Options{
		MaxDepth: o.maxDepth, Sources: sources, Workers: o.workers,
		SerializationDispatch: o.serDispatch,
	})
	var rep *core.Report
	var cache *core.AnalysisCache
	if o.cacheDir != "" {
		var warmed string
		cache, warmed, err = loadCache(o.cacheDir)
		if err != nil {
			return err
		}
		rep, err = engine.AnalyzeIncremental(cache, archives)
		if err != nil {
			return err
		}
		if err := saveCache(o.cacheDir, cache); err != nil {
			return err
		}
		if cs := rep.Timings.Cache; cs != nil {
			fmt.Printf("cache: %s; files parse=%d/%d body=%d/%d; taint components reused=%d/%d; graph %s\n",
				warmed,
				cs.Compile.ParseHits, cs.Compile.Files,
				cs.Compile.BodyHits, cs.Compile.Files,
				cs.Taint.ComponentHits, cs.Taint.Components,
				cs.GraphReuse)
		}
	} else {
		rep, err = engine.AnalyzeSources(archives)
		if err != nil {
			return err
		}
	}
	fmt.Printf("extracted %d archives in %s; CPG built in %s; search took %s\n",
		len(archives), rep.Timings.Compile.Round(1e6), rep.Timings.BuildCPG.Round(1e6), rep.Timings.Search.Round(1e6))

	if o.stats {
		s := rep.Graph.Stats
		fmt.Printf("classes=%d methods=%d edges=%d (EXTEND=%d INTERFACE=%d HAS=%d CALL=%d ALIAS=%d, pruned calls=%d)\n",
			s.ClassNodes, s.MethodNodes, s.TotalEdges(),
			s.ExtendEdges, s.InterfaceEdges, s.HasEdges, s.CallEdges, s.AliasEdges, s.PrunedCalls)
	}
	if o.chains {
		if len(rep.Chains) == 0 {
			fmt.Println("no gadget chains found")
		}
		for i, c := range rep.Chains {
			fmt.Printf("--- chain %d (%s) ---\n%s\n", i+1, c.SinkType, c)
			if o.confirm {
				res, err := interp.Confirm(rep.Graph.Program, c.Names, interp.Options{})
				switch {
				case err != nil:
					fmt.Printf("confirmation error: %v\n", err)
				case res.Confirmed:
					fmt.Printf("CONFIRMED: sink fired in %s with %v (%d payloads tried)\n",
						res.Hit.Caller, res.Hit.Args, res.PayloadsTried)
				default:
					fmt.Printf("NOT CONFIRMED after %d payloads (%v) — likely a conditional-guard false positive\n",
						res.PayloadsTried, res.FailureModes)
				}
			}
		}
		if rep.Truncated {
			fmt.Println("(search truncated by budget; raise -max-depth/-budget options)")
		}
	}
	if o.dot != "" {
		prefixes := make(map[string]bool)
		for _, c := range rep.Chains {
			for _, n := range c.Names {
				if i := strings.IndexByte(n, '#'); i > 0 {
					prefixes[n[:i]] = true
				}
			}
		}
		var list []string
		for p := range prefixes {
			list = append(list, p)
		}
		sort.Strings(list)
		f, err := os.Create(o.dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := cpg.WriteDOT(f, rep.Graph.DB, cpg.DOTOptions{ClassPrefixes: list}); err != nil {
			return fmt.Errorf("dot export: %w", err)
		}
		fmt.Printf("DOT graph written to %s (render with: dot -Tsvg %s)\n", o.dot, o.dot)
	}
	if o.save != "" {
		f, err := os.Create(o.save)
		if err != nil {
			return err
		}
		defer f.Close()
		name, corpusDesc := snapshotIdentity(o)
		if err := engine.SaveSnapshotWithCache(f, rep, name, corpusDesc, cache); err != nil {
			return fmt.Errorf("save snapshot: %w", err)
		}
		fmt.Printf("snapshot %q saved to %s (re-query with tabby-query -snapshot, or serve with tabby-server -snapshot)\n", name, o.save)
	}
	return nil
}

// summaryCacheFile is the method-summary cache's file name inside
// -cache-dir (the "TABBYSUM" format of internal/store).
const summaryCacheFile = "summaries.tabbysum"

// loadCache builds the run's analysis cache, warm-started from the
// summary-cache file in dir when one exists. A missing file is a normal
// cold start; an unreadable one is reported and discarded (the run
// proceeds cold and rewrites it), never fatal.
func loadCache(dir string) (cache *core.AnalysisCache, warmed string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, "", fmt.Errorf("cache dir: %w", err)
	}
	cache = core.NewAnalysisCache()
	path := filepath.Join(dir, summaryCacheFile)
	entries, err := store.ReadSummariesFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return cache, "cold start", nil
	case err != nil:
		fmt.Fprintf(os.Stderr, "tabby: warning: ignoring summary cache %s: %v\n", path, err)
		return cache, "cold start (cache unreadable)", nil
	}
	cache.Summaries = taint.ImportSummaryCache(entries)
	return cache, fmt.Sprintf("loaded %d summary cone(s)", len(entries)), nil
}

// saveCache persists the summary cache back to dir for the next run.
func saveCache(dir string, cache *core.AnalysisCache) error {
	path := filepath.Join(dir, summaryCacheFile)
	if err := store.WriteSummariesFile(path, cache.Summaries.Export()); err != nil {
		return fmt.Errorf("save summary cache: %w", err)
	}
	return nil
}

// snapshotIdentity derives the snapshot's registered name and corpus
// description from what was analyzed.
func snapshotIdentity(o options) (name, corpus string) {
	switch {
	case o.component != "":
		return o.component, "component " + o.component
	case o.scene != "":
		return o.scene, "scene " + o.scene
	case o.dir != "":
		base := filepath.Base(filepath.Clean(o.dir))
		return base, "directory " + o.dir
	default:
		return "urldns", "modeled Java runtime (URLDNS demonstration)"
	}
}

func collectArchives(o options) ([]javasrc.ArchiveSource, error) {
	var archives []javasrc.ArchiveSource
	if o.withRT {
		archives = append(archives, corpus.RT())
	}
	switch {
	case o.urldns:
		// URLDNS lives entirely in the modeled runtime.
		if !o.withRT {
			archives = append(archives, corpus.RT())
		}
	case o.component != "":
		comp, err := corpus.ComponentByName(o.component)
		if err != nil {
			return nil, err
		}
		archives = append(archives, comp.Archives...)
	case o.scene != "":
		scene, err := corpus.SceneByName(o.scene)
		if err != nil {
			return nil, err
		}
		archives = append(archives, scene.Archives...)
	case o.dir != "":
		ar, err := archiveFromDir(o.dir)
		if err != nil {
			return nil, err
		}
		archives = append(archives, ar)
	default:
		return nil, nil
	}
	return archives, nil
}

// archiveFromDir loads every .java file below dir into one archive.
func archiveFromDir(dir string) (javasrc.ArchiveSource, error) {
	ar := javasrc.ArchiveSource{Name: filepath.Base(dir) + ".jar"}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".java") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		ar.Files = append(ar.Files, javasrc.File{Name: path, Source: string(data)})
		return nil
	})
	if err != nil {
		return ar, err
	}
	if len(ar.Files) == 0 {
		return ar, fmt.Errorf("no .java files under %s", dir)
	}
	sort.Slice(ar.Files, func(i, j int) bool { return ar.Files[i].Name < ar.Files[j].Name })
	return ar, nil
}

func printBundled() error {
	fmt.Println("Components (Table IX):")
	for _, c := range corpus.Components() {
		fmt.Printf("  %-30s %d known chain(s) in dataset, package %s\n", c.Name, c.DatasetChains, c.Package)
	}
	fmt.Println("Scenes (Table X):")
	for _, s := range corpus.Scenes() {
		fmt.Printf("  %-30s version %s, %d jar(s)\n", s.Name, s.Version, len(s.Archives))
	}
	return nil
}
