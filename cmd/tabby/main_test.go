package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tabby/internal/store"
)

const testAppSource = `
package app;

public class Job implements java.io.Serializable {
    public String cmd;
    private void readObject(java.io.ObjectInputStream in) {
        Launcher.launch(this.cmd);
    }
}

class Launcher {
    static void launch(String c) {
        java.lang.Process p = java.lang.Runtime.getRuntime().exec(c);
    }
}
`

func writeTestProject(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	sub := filepath.Join(dir, "src", "app")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "Job.java"), []byte(testAppSource), 0o644); err != nil {
		t.Fatal(err)
	}
	// A non-java file that must be ignored.
	if err := os.WriteFile(filepath.Join(sub, "README.txt"), []byte("ignore me"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunDirModeAndSave(t *testing.T) {
	dir := writeTestProject(t)
	savePath := filepath.Join(t.TempDir(), "cpg.tsnap")
	err := run(options{dir: dir, withRT: true, chains: true, stats: true, save: savePath})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := store.ReadFile(savePath)
	if err != nil {
		t.Fatal(err)
	}
	// The saved graph must contain the app's entry method.
	if ids := snap.DB.FindNodes("Method", "NAME", "app.Job#readObject(java.io.ObjectInputStream)"); len(ids) != 1 {
		t.Errorf("saved graph missing app method: %v", ids)
	}
	// The snapshot carries the registry state and analysis metadata too.
	if snap.Sinks == nil || snap.Sinks.Len() == 0 {
		t.Error("snapshot lost the sink registry")
	}
	if len(snap.Sources.MethodNames) == 0 {
		t.Error("snapshot lost the source config")
	}
	if snap.Meta.Stats.MethodNodes == 0 {
		t.Error("snapshot lost the build stats")
	}
	if snap.Meta.Name != filepath.Base(dir) {
		t.Errorf("snapshot name = %q, want %q", snap.Meta.Name, filepath.Base(dir))
	}
	if !snap.DB.Frozen() {
		t.Error("loaded snapshot store must be frozen")
	}
}

func TestArchiveFromDir(t *testing.T) {
	dir := writeTestProject(t)
	ar, err := archiveFromDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.Files) != 1 || !strings.HasSuffix(ar.Files[0].Name, "Job.java") {
		t.Fatalf("files = %+v", ar.Files)
	}
	if _, err := archiveFromDir(t.TempDir()); err == nil {
		t.Error("empty directory must error")
	}
}

func TestRunInputValidation(t *testing.T) {
	if err := run(options{}); err == nil {
		t.Error("no input must error")
	}
	if err := run(options{component: "NoSuchComponent"}); err == nil {
		t.Error("unknown component must error")
	}
	if err := run(options{scene: "NoSuchScene"}); err == nil {
		t.Error("unknown scene must error")
	}
	if err := run(options{urldns: true, mechanism: "bogus"}); err == nil {
		t.Error("unknown mechanism must error")
	}
	if err := run(options{list: true}); err != nil {
		t.Errorf("list mode failed: %v", err)
	}
}

func TestRunComponentMode(t *testing.T) {
	if err := run(options{component: "C3P0", withRT: true, chains: false, stats: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunXStreamMechanism(t *testing.T) {
	if err := run(options{urldns: true, withRT: true, mechanism: "xstream", chains: false}); err != nil {
		t.Fatal(err)
	}
}
