// Command tabby-query runs Cypher-lite queries against a code property
// graph previously saved by `tabby -save` — the "store once, query many
// times" workflow the paper builds on Neo4j (§II-B, RQ4).
//
//	tabby-query -snapshot cpg.tsnap -query 'MATCH (m:Method {IS_SINK: true}) RETURN m.NAME'
//	tabby-query -snapshot cpg.tsnap          # interactive REPL on stdin
//
// -snapshot loads the versioned binary snapshot format `tabby -save`
// writes (graph + sink/source registry + analysis metadata; see
// internal/store); the graph is served read-only, so queries return
// exactly what they would have on the freshly built graph. -graph loads
// the legacy newline-delimited-JSON graph dump.
//
// Example queries:
//
//	MATCH (m:Method {IS_SOURCE: true}) RETURN m.NAME LIMIT 20
//	MATCH (a:Method)-[:CALL]->(b:Method {METHOD_NAME: "exec"}) RETURN a.NAME
//	MATCH (c:Class)-[:HAS]->(m:Method) WHERE c.NAME CONTAINS "HashMap" RETURN m.NAME
//	MATCH (m:Method) RETURN m.IS_SINK, COUNT(*)
//	CALL tabby.findGadgetChains(12)
//	CALL tabby.sinks()
//
// Queries compile to iterator plans over the CSR search index when the
// pattern allows it (variable-length relationships fall back to the
// interpreter). Prefix any query with EXPLAIN to print the chosen plan
// with cardinality estimates instead of running it:
//
//	EXPLAIN MATCH (a:Method)-[:CALL]->(b:Method) WHERE b.IS_SINK = true RETURN a.NAME
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"tabby/internal/cypher"
	"tabby/internal/graphdb"
	"tabby/internal/store"
)

func main() {
	var (
		graphPath    = flag.String("graph", "", "legacy JSON graph dump to load")
		snapshotPath = flag.String("snapshot", "", "snapshot file written by `tabby -save`")
		query        = flag.String("query", "", "one-shot query; omit for a REPL")
	)
	flag.Parse()
	if err := run(*graphPath, *snapshotPath, *query); err != nil {
		fmt.Fprintln(os.Stderr, "tabby-query:", err)
		os.Exit(1)
	}
}

func run(graphPath, snapshotPath, query string) error {
	db, err := loadGraph(graphPath, snapshotPath)
	if err != nil {
		return err
	}
	stats := db.Stats()
	fmt.Fprintf(os.Stderr, "loaded %d nodes, %d relationships\n", stats.Nodes, stats.Rels)

	if query != "" {
		return execute(db, query)
	}
	return repl(db)
}

// loadGraph opens whichever persisted form was requested: the versioned
// binary snapshot (preferred) or the legacy JSON dump.
func loadGraph(graphPath, snapshotPath string) (*graphdb.DB, error) {
	switch {
	case graphPath != "" && snapshotPath != "":
		return nil, fmt.Errorf("pass either -snapshot or -graph, not both")
	case snapshotPath != "":
		snap, err := store.ReadFile(snapshotPath)
		if err != nil {
			return nil, err
		}
		if snap.Meta.Name != "" {
			fmt.Fprintf(os.Stderr, "snapshot %q (%s): %d sinks registered\n",
				snap.Meta.Name, snap.Meta.Corpus, snap.Sinks.Len())
		}
		return snap.DB, nil
	case graphPath != "":
		f, err := os.Open(graphPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graphdb.Load(f)
	default:
		return nil, fmt.Errorf("missing -snapshot (write one with `tabby -save cpg.tsnap`)")
	}
}

func execute(db *graphdb.DB, query string) error {
	res, err := cypher.RunAny(db, query)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func repl(db *graphdb.DB) error {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(os.Stderr, `enter Cypher-lite queries, "quit" to exit`)
	for {
		fmt.Fprint(os.Stderr, "tabby> ")
		if !scanner.Scan() {
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		switch line {
		case "":
			continue
		case "quit", "exit":
			return nil
		}
		if err := execute(db, line); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}
