// Command tabby-query runs Cypher-lite queries against a code property
// graph previously saved by `tabby -save` — the "store once, query many
// times" workflow the paper builds on Neo4j (§II-B, RQ4).
//
//	tabby-query -graph cpg.tgraph -query 'MATCH (m:Method {IS_SINK: true}) RETURN m.NAME'
//	tabby-query -graph cpg.tgraph            # interactive REPL on stdin
//
// Example queries:
//
//	MATCH (m:Method {IS_SOURCE: true}) RETURN m.NAME LIMIT 20
//	MATCH (a:Method)-[:CALL]->(b:Method {METHOD_NAME: "exec"}) RETURN a.NAME
//	MATCH (c:Class)-[:HAS]->(m:Method) WHERE c.NAME CONTAINS "HashMap" RETURN m.NAME
//	MATCH (m:Method) RETURN m.IS_SINK, COUNT(*)
//	CALL tabby.findGadgetChains(12)
//	CALL tabby.sinks()
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"tabby/internal/cypher"
	"tabby/internal/graphdb"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file written by `tabby -save`")
		query     = flag.String("query", "", "one-shot query; omit for a REPL")
	)
	flag.Parse()
	if err := run(*graphPath, *query); err != nil {
		fmt.Fprintln(os.Stderr, "tabby-query:", err)
		os.Exit(1)
	}
}

func run(graphPath, query string) error {
	if graphPath == "" {
		return fmt.Errorf("missing -graph (write one with `tabby -save cpg.tgraph`)")
	}
	f, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := graphdb.Load(f)
	if err != nil {
		return err
	}
	stats := db.Stats()
	fmt.Fprintf(os.Stderr, "loaded %d nodes, %d relationships\n", stats.Nodes, stats.Rels)

	if query != "" {
		return execute(db, query)
	}
	return repl(db)
}

func execute(db *graphdb.DB, query string) error {
	res, err := cypher.RunAny(db, query)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func repl(db *graphdb.DB) error {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(os.Stderr, `enter Cypher-lite queries, "quit" to exit`)
	for {
		fmt.Fprint(os.Stderr, "tabby> ")
		if !scanner.Scan() {
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		switch line {
		case "":
			continue
		case "quit", "exit":
			return nil
		}
		if err := execute(db, line); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}
