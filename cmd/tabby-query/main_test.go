package main

import (
	"os"
	"path/filepath"
	"testing"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/javasrc"
)

func buildGraphFile(t *testing.T) string {
	t.Helper()
	engine := core.New(core.Options{})
	rep, err := engine.AnalyzeSources([]javasrc.ArchiveSource{corpus.RT()})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cpg.tgraph")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := rep.Graph.DB.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOneShotQuery(t *testing.T) {
	path := buildGraphFile(t)
	queries := []string{
		`MATCH (m:Method {IS_SINK: true}) RETURN m.NAME LIMIT 3`,
		`CALL tabby.findGadgetChains(12)`,
		`CALL tabby.sources()`,
	}
	for _, q := range queries {
		if err := run(path, q); err != nil {
			t.Errorf("run(%q): %v", q, err)
		}
	}
}

func TestRunValidatesInput(t *testing.T) {
	if err := run("", "MATCH (m) RETURN m"); err == nil {
		t.Error("missing graph path must error")
	}
	if err := run("/nonexistent/graph.tgraph", "MATCH (m) RETURN m"); err == nil {
		t.Error("missing file must error")
	}
	path := buildGraphFile(t)
	if err := run(path, "NOT A QUERY"); err == nil {
		t.Error("bad query must error")
	}
}
