package main

import (
	"os"
	"path/filepath"
	"testing"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/javasrc"
)

func buildReport(t *testing.T) (*core.Engine, *core.Report) {
	t.Helper()
	engine := core.New(core.Options{})
	rep, err := engine.AnalyzeSources([]javasrc.ArchiveSource{corpus.RT()})
	if err != nil {
		t.Fatal(err)
	}
	return engine, rep
}

func buildGraphFile(t *testing.T) string {
	t.Helper()
	_, rep := buildReport(t)
	path := filepath.Join(t.TempDir(), "cpg.tgraph")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := rep.Graph.DB.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func buildSnapshotFile(t *testing.T) string {
	t.Helper()
	engine, rep := buildReport(t)
	path := filepath.Join(t.TempDir(), "cpg.tsnap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := engine.SaveSnapshot(f, rep, "rt", "modeled runtime"); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOneShotQueryLegacyGraph(t *testing.T) {
	path := buildGraphFile(t)
	queries := []string{
		`MATCH (m:Method {IS_SINK: true}) RETURN m.NAME LIMIT 3`,
		`CALL tabby.findGadgetChains(12)`,
		`CALL tabby.sources()`,
	}
	for _, q := range queries {
		if err := run(path, "", q); err != nil {
			t.Errorf("run(%q): %v", q, err)
		}
	}
}

func TestRunOneShotQuerySnapshot(t *testing.T) {
	path := buildSnapshotFile(t)
	queries := []string{
		`MATCH (m:Method {IS_SINK: true}) RETURN m.NAME LIMIT 3`,
		`CALL tabby.findGadgetChains(12)`,
		`CALL tabby.sinks()`,
	}
	for _, q := range queries {
		if err := run("", path, q); err != nil {
			t.Errorf("run(%q): %v", q, err)
		}
	}
}

func TestRunValidatesInput(t *testing.T) {
	if err := run("", "", "MATCH (m) RETURN m"); err == nil {
		t.Error("missing graph path must error")
	}
	if err := run("/nonexistent/graph.tgraph", "", "MATCH (m) RETURN m"); err == nil {
		t.Error("missing legacy file must error")
	}
	if err := run("", "/nonexistent/cpg.tsnap", "MATCH (m) RETURN m"); err == nil {
		t.Error("missing snapshot file must error")
	}
	if err := run("a.tgraph", "b.tsnap", "MATCH (m) RETURN m"); err == nil {
		t.Error("both -graph and -snapshot must error")
	}
	// A legacy dump is not a snapshot: loading it as one must fail with a
	// format error, not a panic.
	legacy := buildGraphFile(t)
	if err := run("", legacy, "MATCH (m) RETURN m"); err == nil {
		t.Error("legacy dump passed as -snapshot must error")
	}
	path := buildSnapshotFile(t)
	if err := run("", path, "NOT A QUERY"); err == nil {
		t.Error("bad query must error")
	}
}
