package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/javasrc"
	"tabby/internal/server"
)

func buildSnapshotFile(t *testing.T) string {
	t.Helper()
	engine := core.New(core.Options{Workers: 1})
	rep, err := engine.AnalyzeSources([]javasrc.ArchiveSource{corpus.RT()})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "urldns.tsnap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := engine.SaveSnapshot(f, rep, "urldns", "modeled runtime"); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunServesLoadedSnapshot boots the real binary entry point on an
// ephemeral port and exercises it over actual HTTP. The serve goroutine
// is abandoned at test exit (run blocks in http.Serve by design).
func TestRunServesLoadedSnapshot(t *testing.T) {
	path := buildSnapshotFile(t)
	ready := make(chan string, 1)
	go func() {
		if err := run("127.0.0.1:0", []string{path}, "", server.Options{Workers: 1}, ready); err != nil {
			t.Errorf("run: %v", err)
		}
	}()
	addr := <-ready

	resp, err := http.Get("http://" + addr + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"urldns"`) {
		t.Errorf("GET /v1/graphs = %d: %s", resp.StatusCode, body)
	}

	resp, err = http.Post("http://"+addr+"/v1/query", "application/json",
		strings.NewReader(`{"graph":"urldns","query":"MATCH (m:Method {IS_SINK: true}) RETURN m.NAME LIMIT 1"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "columns") {
		t.Errorf("POST /v1/query = %d: %s", resp.StatusCode, body)
	}
}

func TestRunRejectsBadSnapshot(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.tsnap")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("127.0.0.1:0", []string{bad}, "", server.Options{Workers: 1}, nil); err == nil {
		t.Error("bad snapshot must error")
	}
	if err := run("127.0.0.1:0", []string{filepath.Join(t.TempDir(), "missing.tsnap")}, "", server.Options{Workers: 1}, nil); err == nil {
		t.Error("missing snapshot must error")
	}
}
