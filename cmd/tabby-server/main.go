// Command tabby-server serves stored code property graphs over HTTP —
// the long-lived counterpart of the paper's Neo4j deployment (§II-B):
// build a CPG once with `tabby -save`, then let many clients query it
// concurrently without recompiling anything.
//
//	tabby -urldns -save urldns.tsnap
//	tabby-server -addr :7687 -snapshot urldns.tsnap
//
//	curl localhost:7687/v1/graphs
//	curl localhost:7687/v1/graphs/urldns/stats
//	curl -d '{"graph":"urldns","query":"MATCH (m:Method {IS_SINK: true}) RETURN m.NAME"}' localhost:7687/v1/query
//	curl -d '{"graph":"urldns","max_depth":12}' localhost:7687/v1/chains
//	curl -d '{"name":"app","files":[{"name":"A.java","source":"..."}]}' localhost:7687/v1/analyze
//
// Flags:
//
//	-addr HOST:PORT      listen address (default :7687)
//	-snapshot FILE       snapshot to preload; repeatable
//	-max-graphs N        LRU capacity of the graph registry (default 8)
//	-max-query-rows N    row cap per /v1/query response; responses cut off
//	                     at the cap carry "truncated": true (default 10000)
//	-workers N           default worker count for searches and analyses
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"tabby/internal/server"
)

// multiFlag collects a repeatable -snapshot flag.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint(*m) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var snapshots multiFlag
	var (
		addr      = flag.String("addr", ":7687", "listen address")
		maxGraphs = flag.Int("max-graphs", server.DefaultMaxGraphs, "max snapshots kept loaded (LRU eviction beyond this)")
		maxRows   = flag.Int("max-query-rows", server.DefaultMaxQueryRows, "max rows per /v1/query response (excess is dropped and flagged truncated)")
		workers   = flag.Int("workers", 0, "default worker count for searches/analyses (0 = GOMAXPROCS)")
	)
	flag.Var(&snapshots, "snapshot", "snapshot file written by `tabby -save` (repeatable)")
	flag.Parse()
	if err := run(*addr, snapshots, *maxGraphs, *maxRows, *workers, nil); err != nil {
		fmt.Fprintln(os.Stderr, "tabby-server:", err)
		os.Exit(1)
	}
}

// run starts the service. When ready is non-nil, the bound listener
// address is sent on it once the server is accepting connections (used
// by tests and the smoke script via -addr 127.0.0.1:0).
func run(addr string, snapshots []string, maxGraphs, maxRows, workers int, ready chan<- string) error {
	srv := server.New(server.Options{MaxGraphs: maxGraphs, MaxQueryRows: maxRows, Workers: workers})
	for _, path := range snapshots {
		id, err := srv.LoadSnapshotFile(path)
		if err != nil {
			return fmt.Errorf("load %s: %w", path, err)
		}
		snap, _ := srv.Registry().Get(id)
		stats := snap.DB.Stats()
		fmt.Fprintf(os.Stderr, "loaded %s as graph %q: %d nodes, %d relationships\n", path, id, stats.Nodes, stats.Rels)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tabby-server listening on %s (%d graphs loaded)\n", ln.Addr(), srv.Registry().Len())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	return http.Serve(ln, srv.Handler())
}
