// Command tabby-server serves stored code property graphs over HTTP —
// the long-lived counterpart of the paper's Neo4j deployment (§II-B):
// build a CPG once with `tabby -save`, then let many clients query it
// concurrently without recompiling anything.
//
//	tabby -urldns -save urldns.tsnap
//	tabby-server -addr :7687 -snapshot urldns.tsnap
//
//	curl localhost:7687/v1/graphs
//	curl localhost:7687/v1/graphs/urldns/stats
//	curl -d '{"graph":"urldns","query":"MATCH (m:Method {IS_SINK: true}) RETURN m.NAME"}' localhost:7687/v1/query
//	curl -d '{"graph":"urldns","max_depth":12}' localhost:7687/v1/chains
//	curl -d '{"name":"app","files":[{"name":"A.java","source":"..."}]}' localhost:7687/v1/analyze
//	curl localhost:7687/v1/jobs/j1
//	curl localhost:7687/v1/stats
//
// Flags:
//
//	-addr HOST:PORT      listen address (default :7687)
//	-snapshot FILE       snapshot to preload (opened at boot); repeatable
//	-snapshot-dir DIR    register every snapshot file in DIR without
//	                     opening it; each opens lazily — as a zero-copy
//	                     mmap view for v3 snapshots — on first request
//	-max-graphs N        LRU capacity for heap-resident graphs (default 8)
//	-max-query-rows N    row cap per /v1/query response; responses cut off
//	                     at the cap carry "truncated": true (default 10000)
//	-workers N           default worker count for searches and analyses
//	-analyze-workers N   /v1/analyze build pool size (default 1)
//	-analyze-queue N     queued builds beyond the running ones before
//	                     submissions get 429 (default 16)
//	-resp-cache-bytes N  byte budget for the query/chains response cache
//	                     (default 32 MiB; -1 disables it)
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"tabby/internal/server"
)

// multiFlag collects a repeatable -snapshot flag.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint(*m) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var snapshots multiFlag
	var (
		addr           = flag.String("addr", ":7687", "listen address")
		snapDir        = flag.String("snapshot-dir", "", "directory of snapshot files to register (each opens lazily on first request)")
		maxGraphs      = flag.Int("max-graphs", server.DefaultMaxGraphs, "max heap-resident snapshots (LRU eviction beyond this; mmap-served graphs are exempt)")
		maxRows        = flag.Int("max-query-rows", server.DefaultMaxQueryRows, "max rows per /v1/query response (excess is dropped and flagged truncated)")
		workers        = flag.Int("workers", 0, "default worker count for searches/analyses (0 = GOMAXPROCS)")
		analyzeWorkers = flag.Int("analyze-workers", server.DefaultAnalyzeWorkers, "builds running concurrently behind /v1/analyze")
		analyzeQueue   = flag.Int("analyze-queue", server.DefaultAnalyzeQueue, "builds that may wait behind the running ones before /v1/analyze answers 429")
		respCacheBytes = flag.Int64("resp-cache-bytes", server.DefaultRespCacheBytes, "byte budget for the query/chains response cache (-1 disables)")
	)
	flag.Var(&snapshots, "snapshot", "snapshot file written by `tabby -save` (repeatable)")
	flag.Parse()
	opts := server.Options{
		MaxGraphs:      *maxGraphs,
		MaxQueryRows:   *maxRows,
		Workers:        *workers,
		AnalyzeWorkers: *analyzeWorkers,
		AnalyzeQueue:   *analyzeQueue,
		RespCacheBytes: *respCacheBytes,
	}
	if err := run(*addr, snapshots, *snapDir, opts, nil); err != nil {
		fmt.Fprintln(os.Stderr, "tabby-server:", err)
		os.Exit(1)
	}
}

// run starts the service. When ready is non-nil, the bound listener
// address is sent on it once the server is accepting connections (used
// by tests and the smoke script via -addr 127.0.0.1:0).
func run(addr string, snapshots []string, snapDir string, opts server.Options, ready chan<- string) error {
	srv := server.New(opts)
	for _, path := range snapshots {
		id, err := srv.LoadSnapshotFile(path)
		if err != nil {
			return fmt.Errorf("load %s: %w", path, err)
		}
		be, err := srv.Registry().Get(id)
		if err != nil {
			return fmt.Errorf("load %s: %w", path, err)
		}
		stats := be.GraphStats()
		fmt.Fprintf(os.Stderr, "loaded %s as graph %q (%s): %d nodes, %d relationships\n", path, id, be.Kind(), stats.Nodes, stats.Rels)
	}
	if snapDir != "" {
		n, err := srv.RegisterSnapshotDir(snapDir)
		if err != nil {
			return fmt.Errorf("register %s: %w", snapDir, err)
		}
		fmt.Fprintf(os.Stderr, "registered %d snapshot(s) from %s (opened lazily on first request)\n", n, snapDir)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tabby-server listening on %s (%d graphs registered)\n", ln.Addr(), srv.Registry().Len())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	return http.Serve(ln, srv.Handler())
}
