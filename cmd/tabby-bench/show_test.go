package main

import (
	"testing"

	"tabby/internal/bench"
)

// TestShowTable9 prints the reproduced comparison table when run with
// -v; it doubles as a smoke test of the full pipeline.
func TestShowTable9(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison run")
	}
	table, err := bench.RunTable9(bench.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table.Format())
}
