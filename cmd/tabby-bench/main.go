// Command tabby-bench regenerates the paper's evaluation tables:
//
//	tabby-bench -table 8          CPG generation efficiency (Table VIII)
//	tabby-bench -table 9          tool comparison (Table IX)
//	tabby-bench -table 10         development scenes (Table X)
//	tabby-bench -table 11         Spring-scene chains (Table XI)
//	tabby-bench -table rq4        the §IV-E aggregate
//	tabby-bench -table ablation   §III-C design-choice ablations
//	tabby-bench -table parallel   worker-scaling over the largest Table VIII
//	                              row (writes BENCH_parallel.json)
//	tabby-bench -table build      cold-build stage costs (compile / taint /
//	                              cpg ns/op + allocs/op) over the full
//	                              corpus at workers=1, with the speedup
//	                              vs the recorded pre-fast-path seed
//	                              (writes BENCH_build.json)
//	tabby-bench -table pathfinder generic-store vs compiled-index search
//	                              engines (writes BENCH_pathfinder.json)
//	tabby-bench -table incremental cold vs warm vs one-class-changed
//	                              cache scenarios over the Spring scene
//	                              (writes BENCH_incremental.json)
//	tabby-bench -table query      Cypher-lite interpreter vs compiled
//	                              iterator plans (writes BENCH_query.json)
//	tabby-bench -table snapshot   storage backends: full heap parse vs
//	                              zero-copy mmap view — open latency,
//	                              resident bytes, serving throughput
//	                              (writes BENCH_snapshot.json)
//	tabby-bench -table serve      HTTP serve path under load: analyze
//	                              builds vs repeat uploads, cold vs
//	                              cached reads, p50/p99/QPS
//	                              (writes BENCH_serve.json)
//	tabby-bench -table all        everything
//
// The Table VIII run defaults to scale 1.0 (the paper's full class and
// method counts, which takes minutes); use -scale 0.1 for a quick pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"tabby/internal/bench"
	"tabby/internal/cliutil"
	"tabby/internal/parallel"
	"tabby/internal/profiling"
)

func main() {
	var (
		table   = flag.String("table", "all", "which table to regenerate: 8, 9, 10, 11, rq4, all")
		scale   = flag.Float64("scale", 1.0, "Table VIII corpus scale factor (1.0 = paper-size)")
		runs    = flag.Int("runs", 3, "Table VIII repetitions per row (min/max trimmed when >2)")
		workers = flag.Int("workers", 0, "pipeline worker count (0 = GOMAXPROCS, 1 = sequential)")
		// Deprecated: the SCC wave scheduler removed the call-depth bound;
		// the flag is kept so old invocations keep working, with a warning.
		maxCallDepth = flag.Int("max-call-depth", 0, "deprecated, no effect: the SCC scheduler removed the call-depth bound")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()
	cliutil.WarnMaxCallDepth(os.Stderr, "tabby-bench", *maxCallDepth)
	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tabby-bench:", err)
		os.Exit(1)
	}
	runErr := run(*table, *scale, *runs, *workers)
	stopProfiles() // before any exit: os.Exit skips defers
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "tabby-bench:", runErr)
		os.Exit(1)
	}
}

func run(table string, scale float64, runs, workers int) error {
	switch table {
	case "8", "9", "10", "11", "rq4", "ablation", "parallel", "build", "pathfinder", "incremental", "query", "snapshot", "serve", "all":
	default:
		return fmt.Errorf("unknown table %q (want 8, 9, 10, 11, rq4, ablation, parallel, build, pathfinder, incremental, query, snapshot, serve or all)", table)
	}
	fmt.Printf("tabby-bench: workers=%d (resolved %d), GOMAXPROCS=%d\n",
		workers, parallel.Resolve(workers), runtime.GOMAXPROCS(0))
	want := func(t string) bool { return table == t || table == "all" }
	if want("8") {
		fmt.Println("=== Table VIII: CPG generation efficiency ===")
		t, err := bench.RunTable8(scale, runs)
		if err != nil {
			return err
		}
		fmt.Println(t.Format())
	}
	if want("9") {
		fmt.Println("=== Table IX: comparison with state-of-the-art tools ===")
		t, err := bench.RunTable9(bench.EvalOptions{})
		if err != nil {
			return err
		}
		fmt.Println(t.Format())
	}
	if want("10") {
		fmt.Println("=== Table X: development-scene detection ===")
		t, err := bench.RunTable10()
		if err != nil {
			return err
		}
		fmt.Println(t.Format())
	}
	if want("11") {
		fmt.Println("=== Table XI: Spring framework gadget chains ===")
		out, err := bench.Table11()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if want("rq4") {
		fmt.Println("=== RQ4 aggregate ===")
		r, err := bench.RunRQ4(bench.EvalOptions{})
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	}
	if want("ablation") {
		fmt.Println("=== Ablation: §III-C design choices over the Table IX corpus ===")
		results, err := bench.RunAblationSuite()
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatAblation(results))
	}
	if want("parallel") {
		fmt.Println("=== Parallel pipeline: worker scaling ===")
		r, err := bench.RunParallel(scale, runs, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		f, err := os.Create("BENCH_parallel.json")
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.WriteJSON(f); err != nil {
			return err
		}
		fmt.Println("written to BENCH_parallel.json")
	}
	if want("build") {
		fmt.Println("=== Cold build: per-stage cost over the full corpus ===")
		r, err := bench.RunBuild(runs)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		f, err := os.Create("BENCH_build.json")
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.WriteJSON(f); err != nil {
			return err
		}
		fmt.Println("written to BENCH_build.json")
	}
	if want("incremental") {
		fmt.Println("=== Incremental analysis: cold vs warm vs one-class-changed ===")
		r, err := bench.RunIncremental(runs)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		f, err := os.Create("BENCH_incremental.json")
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.WriteJSON(f); err != nil {
			return err
		}
		fmt.Println("written to BENCH_incremental.json")
	}
	if want("query") {
		fmt.Println("=== Cypher-lite: interpreter vs compiled plan ===")
		r, err := bench.RunQuery(runs * 20) // query ops are cheap; more iterations steady the clock
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		f, err := os.Create("BENCH_query.json")
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.WriteJSON(f); err != nil {
			return err
		}
		fmt.Println("written to BENCH_query.json")
	}
	if want("snapshot") {
		fmt.Println("=== Snapshot backends: heap parse vs zero-copy mmap ===")
		r, err := bench.RunSnapshot(runs * 3)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		f, err := os.Create("BENCH_snapshot.json")
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.WriteJSON(f); err != nil {
			return err
		}
		fmt.Println("written to BENCH_snapshot.json")
	}
	if want("serve") {
		fmt.Println("=== Serve path: async analyze, result + response caches under load ===")
		r, err := bench.RunServe(runs)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		f, err := os.Create("BENCH_serve.json")
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.WriteJSON(f); err != nil {
			return err
		}
		fmt.Println("written to BENCH_serve.json")
	}
	if want("pathfinder") {
		fmt.Println("=== Path search: generic store vs compiled index ===")
		r, err := bench.RunPathfinder(runs)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		f, err := os.Create("BENCH_pathfinder.json")
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.WriteJSON(f); err != nil {
			return err
		}
		fmt.Println("written to BENCH_pathfinder.json")
	}
	return nil
}
