package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run("nonsense", 1, 1); err == nil {
		t.Fatal("unknown table must error")
	}
}

func TestRunQuickTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	// Table 8 at tiny scale, then the cheap tables.
	if err := run("8", 0.01, 1); err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"10", "11"} {
		if err := run(table, 1, 1); err != nil {
			t.Fatalf("table %s: %v", table, err)
		}
	}
}
