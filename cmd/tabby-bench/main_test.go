package main

import (
	"os"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run("nonsense", 1, 1, 1); err == nil {
		t.Fatal("unknown table must error")
	}
}

func TestRunQuickTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	// Table 8 at tiny scale, then the cheap tables.
	if err := run("8", 0.01, 1, 1); err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"10", "11"} {
		if err := run(table, 1, 1, 1); err != nil {
			t.Fatalf("table %s: %v", table, err)
		}
	}
}

func TestRunParallelTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	// run writes BENCH_parallel.json into the working directory; keep
	// test artifacts out of the source tree.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	if err := run("parallel", 0.01, 1, 0); err != nil {
		t.Fatal(err)
	}
}
