// Custom-sink workflow (paper RQ4): a security team adds its own sink to
// the registry, builds the CPG once, saves it as a snapshot, and then
// re-queries the stored graph repeatedly with Cypher-lite — the "store
// all intermediate results and let researchers verify their ideas"
// design of §IV-F.
//
//	go run ./examples/customsink
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/cypher"
	"tabby/internal/javasrc"
	"tabby/internal/sinks"
	"tabby/internal/store"
)

// appSource models an in-house application with a dangerous internal API
// (AuditLog.rawQuery) that no public sink list knows about.
const appSource = `
package com.corp.app;

import java.io.Serializable;
import java.io.ObjectInputStream;

public class AuditLog {
    public void rawQuery(String sql) { }
}

public class ReportJob implements Serializable {
    public String filter;
    public com.corp.app.AuditLog log;
    private void readObject(ObjectInputStream in) {
        refresh();
    }
    void refresh() {
        log.rawQuery(this.filter);
    }
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Extend the default registry with the in-house sink: the receiver
	//    (position 0) and the SQL string (position 1) must be
	//    controllable.
	reg := sinks.Default()
	reg.Add(sinks.Sink{
		Class:  "com.corp.app.AuditLog",
		Method: "rawQuery",
		Type:   sinks.TypeSQL,
		TC:     []int{1},
	})

	engine := core.New(core.Options{Sinks: reg})
	rep, err := engine.AnalyzeSources([]javasrc.ArchiveSource{
		corpus.RT(),
		{Name: "app.jar", Files: []javasrc.File{{Name: "app.java", Source: appSource}}},
	})
	if err != nil {
		return err
	}

	fmt.Printf("chains to the custom sink: %d\n\n", len(rep.Chains))
	for _, c := range rep.Chains {
		fmt.Printf("[%s]\n%s\n\n", c.SinkType, c)
	}

	// 2. Store the graph once: a snapshot carries the CPG plus the
	//    extended sink registry, so later sessions see the custom sink too.
	dir, err := os.MkdirTemp("", "tabby-customsink-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "app.tsnap")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := engine.SaveSnapshot(f, rep, "corp-app", "in-house corpus"); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// 3. Re-query the stored graph without re-running extraction — this is
	//    what tabby-query -snapshot and tabby-server do: load the snapshot
	//    into a read-only store and run Cypher-lite against it. Which
	//    methods can reach rawQuery within three calls?
	snap, err := store.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("reloaded snapshot %q (%s): %d sinks registered\n\n",
		snap.Meta.Name, snap.Meta.Corpus, snap.Sinks.Len())
	queries := []string{
		`MATCH (m:Method {METHOD_NAME: "rawQuery"}) RETURN m.NAME, m.SINK_TYPE`,
		`MATCH (a:Method)-[:CALL*1..3]->(b:Method {METHOD_NAME: "rawQuery"}) RETURN a.NAME`,
		`MATCH (c:Class)-[:HAS]->(m:Method {IS_SOURCE: true}) WHERE c.NAME STARTS WITH "com.corp." RETURN m.NAME`,
	}
	for _, q := range queries {
		fmt.Printf("query> %s\n", q)
		res, err := cypher.Run(snap.DB, q)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
	}
	return nil
}
