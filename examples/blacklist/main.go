// Blacklist refinement (paper §IV-E): "Xstream and Apache Dubbo refined
// their blacklists based on the gadget chains we submitted." This example
// runs Tabby over the JDK8 scene, derives a deserialization blacklist
// from the discovered chains, and shows that applying it breaks every
// chain — the defensive workflow the paper recommends to project owners.
//
//	go run ./examples/blacklist
package main

import (
	"fmt"
	"log"
	"strings"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/javasrc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scene, err := corpus.SceneByName("JDK8")
	if err != nil {
		return err
	}
	engine := core.New(core.Options{})
	rep, err := engine.AnalyzeSources(append([]javasrc.ArchiveSource{corpus.RT()}, scene.Archives...))
	if err != nil {
		return err
	}
	fmt.Printf("chains found in the %s scene: %d\n\n", scene.Name, len(rep.Chains))

	blacklist := core.BlacklistFromChains(rep.Chains)
	fmt.Printf("derived deserialization blacklist (%d classes):\n", len(blacklist))
	for _, c := range blacklist {
		fmt.Printf("  %s\n", c)
	}

	surviving := core.FilterChainsByBlacklist(rep.Chains, blacklist)
	fmt.Printf("\nchains surviving the full blacklist: %d\n", len(surviving))
	if len(surviving) != 0 {
		return fmt.Errorf("blacklist incomplete")
	}

	// A partial blacklist — only the chain heads — is the cheaper
	// mitigation: blocking the entry classes alone also kills everything
	// rooted at them.
	var heads []string
	seen := map[string]bool{}
	for _, c := range rep.Chains {
		head := c.Names[0]
		cls := head
		if i := strings.IndexByte(head, '#'); i > 0 {
			cls = head[:i]
		}
		if !seen[cls] {
			seen[cls] = true
			heads = append(heads, cls)
		}
	}
	surviving = core.FilterChainsByBlacklist(rep.Chains, heads)
	fmt.Printf("chains surviving a heads-only blacklist (%d classes): %d\n", len(heads), len(surviving))
	return nil
}
