// Development-scene scan (paper §IV-D, Tables X and XI): run Tabby over
// the modeled Spring framework environment and print the JNDI gadget
// chains lurking in spring-aop — the LazyInitTargetSource /
// PrototypeTargetSource family of Table XI, one of which corresponds to
// CVE-2020-11619.
//
//	go run ./examples/devscene
package main

import (
	"fmt"
	"log"
	"time"

	"tabby/internal/bench"
	"tabby/internal/corpus"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scene, err := corpus.SceneByName("Spring")
	if err != nil {
		return err
	}
	fmt.Printf("scanning the %s %s scene: %d dependency jars\n\n",
		scene.Name, scene.Version, len(scene.Archives))

	res, err := bench.EvaluateScene(scene)
	if err != nil {
		return err
	}
	fmt.Printf("results: %d chains reported, %d effective (FPR %.1f%%), search %s\n",
		res.ResultCount, res.Effective, res.FPR(), res.SearchTime.Round(time.Microsecond))
	fmt.Printf("paper row: %d reported, %d effective (FPR %.1f%%)\n\n",
		scene.PaperResultCount, scene.PaperEffective, scene.PaperFPRPercent)

	fmt.Println("JNDI injection chains in spring-aop (cf. Table XI):")
	n := 0
	for _, c := range res.Chains {
		if c.SinkType != "JNDI" {
			continue
		}
		n++
		fmt.Printf("\n#%d\n%s\n", n, c)
	}
	if n == 0 {
		return fmt.Errorf("no JNDI chains found — scene corpus broken")
	}
	return nil
}
