// Quickstart: detect the classic URLDNS gadget chain (paper §III-B2,
// Figs. 3–4, and the chain listing style of Table I).
//
// The URLDNS machinery — HashMap.readObject, HashMap.hash, Object.hashCode
// and its URL override, URLStreamHandler and InetAddress.getByName — is
// part of the modeled Java runtime (corpus.RT), so the whole pipeline runs
// on one archive:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/javasrc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Create an engine with the default 38-sink registry (Table VII)
	//    and native-deserialization sources.
	engine := core.New(core.Options{})

	// 2. Run the full pipeline: semantic extraction → controllability
	//    analysis → code property graph → chain search.
	rep, err := engine.AnalyzeSources([]javasrc.ArchiveSource{corpus.RT()})
	if err != nil {
		return err
	}

	// 3. Inspect the graph — the ORG/PCG/MAG merge of Fig. 4.
	s := rep.Graph.Stats
	fmt.Printf("code property graph: %d class nodes, %d method nodes, %d edges\n",
		s.ClassNodes, s.MethodNodes, s.TotalEdges())
	fmt.Printf("  EXTEND=%d INTERFACE=%d HAS=%d CALL=%d ALIAS=%d (pruned uncontrollable calls: %d)\n\n",
		s.ExtendEdges, s.InterfaceEdges, s.HasEdges, s.CallEdges, s.AliasEdges, s.PrunedCalls)

	// 4. Print every discovered chain in the Table I layout.
	fmt.Printf("found %d gadget chain(s):\n\n", len(rep.Chains))
	for _, chain := range rep.Chains {
		fmt.Printf("[%s]\n%s\n\n", chain.SinkType, chain)
	}
	return nil
}
