// Controllability-analysis walkthrough (paper §III-C, Fig. 5): compiles
// the paper's own example/exchange pair and prints the Action summaries
// and the Polluted_Position that the analysis derives — matching
// Fig. 5(b) and Fig. 5(c) symbol for symbol.
//
//	go run ./examples/controllability
package main

import (
	"fmt"
	"log"
	"sort"

	"tabby/internal/java"
	"tabby/internal/javasrc"
	"tabby/internal/taint"
)

// fig5 is the source of paper Fig. 5(a), verbatim modulo class wrappers.
const fig5 = `
package fig5;

public class A {
    public fig5.B b;
}

public class B {
    public static fig5.B exchange(fig5.A a, fig5.B b) {
        a.b = b;
        b = new fig5.B();
        return a.b;
    }
}

public class C {
    public fig5.A example(fig5.A a, fig5.B b) {
        fig5.A a1 = new fig5.A();
        fig5.A a2 = a;
        a = a1;
        fig5.B b1 = fig5.B.exchange(a, b);
        return a2;
    }
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	prog, err := javasrc.Compile("fig5.jar", fig5)
	if err != nil {
		return err
	}
	res, err := taint.Analyze(prog, taint.Options{})
	if err != nil {
		return err
	}

	fmt.Println("Action summaries (paper Fig. 5b):")
	keys := make([]java.MethodKey, 0, len(res.Actions))
	for k := range res.Actions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fmt.Printf("  %-60s %s\n", k, res.Actions[k])
	}

	fmt.Println("\nPolluted_Position per call edge (paper Fig. 5c):")
	for _, k := range keys {
		for _, call := range res.Calls[k] {
			status := ""
			if call.Pruned {
				status = "  (pruned: all positions ∞)"
			}
			fmt.Printf("  %s -CALL-> %s#%s  PP=%s%s\n",
				k, call.CalleeClass, call.CalleeSub, call.PP, status)
		}
	}
	fmt.Printf("\ncall sites analyzed: %d, pruned as uncontrollable: %d\n",
		res.TotalCalls, res.PrunedCalls)
	return nil
}
