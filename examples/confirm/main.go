// Chain confirmation (the paper's §V-C future work, implemented): run
// Tabby over a component, then concretely execute every reported chain —
// payload construction plus jimple interpretation — and separate the
// truly triggerable chains from the conditional-guard false positives
// that flow-insensitive static analysis cannot avoid (§IV-E).
//
//	go run ./examples/confirm
package main

import (
	"fmt"
	"log"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/interp"
	"tabby/internal/javasrc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	comp, err := corpus.ComponentByName("commons-collections(3.2.1)")
	if err != nil {
		return err
	}
	engine := core.New(core.Options{})
	rep, err := engine.AnalyzeSources(append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...))
	if err != nil {
		return err
	}

	var confirmed, rejected int
	for _, chain := range rep.Chains {
		res, err := interp.Confirm(rep.Graph.Program, chain.Names, interp.Options{})
		if err != nil {
			return err
		}
		verdict := "NOT CONFIRMED"
		if res.Confirmed {
			verdict = "CONFIRMED"
			confirmed++
		} else {
			rejected++
		}
		fmt.Printf("%-14s %s\n", verdict, chain.Names[0])
		if res.Confirmed {
			fmt.Printf("               sink %s fired in %s with %v\n",
				res.Hit.Sink.Key(), res.Hit.Caller, res.Hit.Args)
		} else {
			fmt.Printf("               %d payloads tried, outcomes %v\n",
				res.PayloadsTried, res.FailureModes)
		}
	}
	fmt.Printf("\n%d confirmed, %d rejected — static analysis alone reported all %d\n",
		confirmed, rejected, confirmed+rejected)
	fmt.Println("(the rejected ones are the §IV-E conditional-guard false positives)")
	return nil
}
