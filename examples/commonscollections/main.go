// Audit of the commons-collections component (paper §IV-C): the workload
// that motivated ysoserial's CommonsCollections payloads. Runs Tabby over
// the modeled commons-collections 3.2.1 archives and reports each chain
// with its ground-truth category from the bundled manifest — including the
// hand-modelled InvokerTransformer / LazyMap / TiedMapEntry family.
//
//	go run ./examples/commonscollections
package main

import (
	"fmt"
	"log"
	"strings"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/java"
	"tabby/internal/javasrc"
	"tabby/internal/sinks"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	comp, err := corpus.ComponentByName("commons-collections(3.2.1)")
	if err != nil {
		return err
	}
	fmt.Printf("auditing %s (package %s, %d chains known in the ysoserial/marshalsec dataset)\n\n",
		comp.Name, comp.Package, comp.DatasetChains)

	engine := core.New(core.Options{})
	archives := append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...)
	rep, err := engine.AnalyzeSources(archives)
	if err != nil {
		return err
	}

	// Index the ground truth by (source, sink) endpoints.
	reg := sinks.Default()
	type ep struct{ source, sink string }
	truth := make(map[ep]corpus.ChainSpec)
	for _, spec := range comp.Chains {
		truth[ep{string(spec.Source), spec.SinkClass + "." + spec.SinkMethod}] = spec
	}

	seen := make(map[ep]bool)
	var known, unknown, fake int
	for _, chain := range rep.Chains {
		if !strings.HasPrefix(chain.Names[0], comp.Package+".") {
			continue // chains rooted outside the component (e.g. rt-internal)
		}
		last := java.MethodKey(chain.Names[len(chain.Names)-1])
		sink, ok := reg.Match(rep.Graph.Program.Hierarchy, java.MethodKeyClass(last), java.MethodKeyName(last))
		if !ok {
			continue
		}
		e := ep{chain.Names[0], sink.Key()}
		if seen[e] {
			continue
		}
		seen[e] = true
		spec, planted := truth[e]
		label := "FAKE (no triggerable instantiation)"
		switch {
		case planted && spec.Category == corpus.CatKnown:
			known++
			label = "KNOWN (in ysoserial/marshalsec)"
		case planted && spec.Category == corpus.CatUnknown:
			unknown++
			label = "UNKNOWN (new effective chain)"
		default:
			fake++
		}
		fmt.Printf("[%s] %s\n%s\n\n", chain.SinkType, label, chain)
	}
	fmt.Printf("summary: %d known, %d unknown, %d fake — paper row: 4 known, 9 unknown, 4 fake\n",
		known, unknown, fake)
	return nil
}
