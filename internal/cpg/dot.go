package cpg

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"tabby/internal/graphdb"
)

// DOTOptions filters the export.
type DOTOptions struct {
	// ClassPrefixes keeps only nodes whose NAME starts with one of the
	// prefixes (empty keeps everything — beware on large graphs).
	ClassPrefixes []string
	// EdgeTypes keeps only these relationship types (nil = every type in
	// RelTypes()).
	EdgeTypes []string
	// MaxNodes aborts with an error when the filter still selects more
	// nodes than this (default 500), preventing unreadable outputs.
	MaxNodes int
}

// WriteDOT renders the (filtered) code property graph in Graphviz DOT
// form — the tooling used to produce pictures like the paper's Fig. 4.
// Class nodes are boxes, method nodes ellipses; sink methods are shaded
// red, sources green; CALL edges carry their Polluted_Position label.
func WriteDOT(w io.Writer, db *graphdb.DB, opts DOTOptions) error {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 500
	}
	keepName := func(name string) bool {
		if len(opts.ClassPrefixes) == 0 {
			return true
		}
		for _, p := range opts.ClassPrefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	keepType := func(t string) bool {
		if len(opts.EdgeTypes) == 0 {
			return true
		}
		for _, e := range opts.EdgeTypes {
			if e == t {
				return true
			}
		}
		return false
	}

	kept := make(map[graphdb.ID]bool)
	var nodeIDs []graphdb.ID
	for _, label := range []string{LabelClass, LabelMethod} {
		for _, id := range db.NodesByLabel(label) {
			v, _ := db.NodeProp(id, PropName)
			name, _ := v.(string)
			if keepName(name) {
				kept[id] = true
				nodeIDs = append(nodeIDs, id)
			}
		}
	}
	if len(nodeIDs) > opts.MaxNodes {
		return fmt.Errorf("cpg: DOT export selects %d nodes (max %d); narrow ClassPrefixes", len(nodeIDs), opts.MaxNodes)
	}
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })

	if _, err := fmt.Fprintln(w, "digraph cpg {\n  rankdir=LR;\n  node [fontsize=10];"); err != nil {
		return err
	}
	for _, id := range nodeIDs {
		node := db.Node(id)
		name, _ := node.Props[PropName].(string)
		shape, style := "ellipse", ""
		if node.HasLabel(LabelClass) {
			shape = "box"
		}
		if v, _ := node.Props[PropIsSink].(bool); v {
			style = `, style=filled, fillcolor="#f4cccc"`
		}
		if v, _ := node.Props[PropIsSource].(bool); v {
			style = `, style=filled, fillcolor="#d9ead3"`
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q, shape=%s%s];\n", id, name, shape, style); err != nil {
			return err
		}
	}
	for _, rid := range db.AllRelIDs() {
		rel := db.Rel(rid)
		if !kept[rel.Start] || !kept[rel.End] || !keepType(rel.Type) {
			continue
		}
		label := rel.Type
		if pp, ok := rel.Props[PropPollutedPosition].([]int); ok {
			parts := make([]string, len(pp))
			for i, v := range pp {
				if v < 0 {
					parts[i] = "∞"
				} else {
					parts[i] = fmt.Sprintf("%d", v)
				}
			}
			label += " [" + strings.Join(parts, ",") + "]"
		}
		styleAttr := ""
		switch rel.Type {
		case RelCall:
			// solid black default — the load-bearing edge of chain walks
		case RelAlias:
			styleAttr = ", style=dashed"
		case RelDispatch:
			styleAttr = `, style=dotted, color="#3d85c6"`
		case RelHas, RelExtend, RelInterface:
			styleAttr = ", color=gray"
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=%q, fontsize=8%s];\n", rel.Start, rel.End, label, styleAttr); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
