package cpg

import (
	"fmt"

	"tabby/internal/edges"
	"tabby/internal/graphdb"
	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/sortutil"
	"tabby/internal/taint"
)

// ApplyDelta folds a fresh controllability result into an already-built
// graph in place, instead of rebuilding every node and edge. It is sound
// only when the class hierarchy is structurally unchanged (the caller
// compares javasrc.CompileStats.HierarchyFP before asking for a delta):
// then the ORG and MAG are untouched, and what can differ is exactly what
// the taint result feeds — each method node's ACTION property and each
// caller's CALL edges.
//
// The node set is fixed under a delta. Chains embed node IDs, and a cold
// build hands IDs out in one deterministic interleaved sequence; a node
// appended later would land at the end of the ID space and break the
// byte-identical contract. ApplyDelta therefore verifies that the new
// result names the same analyzed methods and demands exactly the phantom
// callees the graph already has, and reports ok=false — graph untouched —
// when it cannot; the caller falls back to a full Build.
//
// A no-change delta buffers nothing, so Flush never bumps the store's
// mutation version and compiled search indexes stay valid.
func (g *Graph) ApplyDelta(prog *jimple.Program, newRes *taint.Result, opts Options) (ok bool, err error) {
	old := g.Taint
	h := prog.Hierarchy

	if len(newRes.Actions) != len(old.Actions) {
		return false, nil
	}
	for k := range newRes.Actions {
		if _, have := old.Actions[k]; !have {
			return false, nil
		}
	}

	// A delta never rewrites DISPATCH edges, so it is sound only when the
	// serialization pass would derive exactly the edges already in the
	// graph. A class gaining/losing Serializable or a readObject-family
	// method normally changes the hierarchy fingerprint and never reaches
	// here, but verify anyway: stale dispatch edges must be impossible.
	if opts.SerializationDispatch && !g.dispatchCurrent(h) {
		return false, nil
	}

	// Resolve every callee once against the new hierarchy, collecting the
	// phantom demand set and the per-caller targets the edge pass reuses.
	resolved := make(map[string]*java.Method)
	resolve := func(class, sub string) *java.Method {
		key := class + "#" + sub
		if m, seen := resolved[key]; seen {
			return m
		}
		m := h.ResolveMethod(class, sub)
		resolved[key] = m
		return m
	}
	demanded := make(map[java.MethodKey]bool)
	for _, calls := range newRes.Calls {
		for _, call := range calls {
			if call.Pruned && !opts.KeepPrunedCalls {
				continue
			}
			if m := resolve(call.CalleeClass, call.CalleeSub); m != nil {
				if _, have := g.methodNode[m.Key()]; !have {
					return false, nil
				}
			} else {
				demanded[call.Callee()] = true
			}
		}
	}
	phantoms := 0
	driverKey := edges.DriverKey()
	for key := range g.methodNode {
		if key == driverKey {
			// The virtual dispatch driver is synthetic: never declared in
			// the hierarchy and never demanded by a call. dispatchCurrent
			// above already vouched for it and its edges.
			continue
		}
		if h.MethodByKey(key) == nil {
			phantoms++
			if !demanded[key] {
				return false, nil
			}
		}
	}
	if phantoms != len(demanded) {
		return false, nil
	}

	keys := sortutil.SortedKeys(newRes.Calls)
	batch := g.DB.NewBatch()
	for _, k := range keys {
		id, have := g.methodNode[k]
		if !have {
			return false, nil
		}
		if !actionsEq(old.Actions[k], newRes.Actions[k]) {
			batch.SetNodeProp(id, PropAction, newRes.Actions[k].String())
		}
		if callsEq(old.Calls[k], newRes.Calls[k]) {
			continue
		}
		for _, rid := range g.DB.Rels(id, graphdb.DirOut, RelCall) {
			batch.DeleteRel(rid)
		}
		for _, call := range newRes.Calls[k] {
			if call.Pruned && !opts.KeepPrunedCalls {
				continue
			}
			calleeKey := call.Callee()
			if m := resolve(call.CalleeClass, call.CalleeSub); m != nil {
				calleeKey = m.Key()
			}
			calleeID, have := g.methodNode[calleeKey]
			if !have {
				return false, fmt.Errorf("cpg: delta: callee %s has no node", calleeKey)
			}
			batch.CreateRel(RelCall, id, calleeID, graphdb.Props{
				PropPollutedPosition: call.PP.Ints(),
				PropInvokeKind:       call.Kind.String(),
				PropStmtIndex:        call.StmtIndex,
				PropInvokeClass:      call.CalleeClass,
			})
		}
	}
	if err := batch.Flush(); err != nil {
		return false, fmt.Errorf("cpg: delta flush: %w", err)
	}

	g.Stats.CallEdges, g.Stats.PrunedCalls = 0, 0
	for _, k := range keys {
		for _, call := range newRes.Calls[k] {
			if call.Pruned && !opts.KeepPrunedCalls {
				g.Stats.PrunedCalls++
			} else {
				g.Stats.CallEdges++
			}
		}
	}
	g.Program = prog
	g.Taint = newRes
	return true, nil
}

// dispatchCurrent reports whether the DISPATCH edges in the graph match
// exactly what the serialization pass would derive from the (possibly
// edited) hierarchy h.
func (g *Graph) dispatchCurrent(h *java.Hierarchy) bool {
	want := edges.DispatchTargets(h)
	driverID, haveDriver := g.methodNode[edges.DriverKey()]
	if !haveDriver {
		return len(want) == 0
	}
	rels := g.DB.Rels(driverID, graphdb.DirOut, RelDispatch)
	if len(rels) != len(want) {
		return false
	}
	have := make(map[java.MethodKey]bool, len(rels))
	for _, rid := range rels {
		rel := g.DB.Rel(rid)
		if rel == nil {
			return false
		}
		key, ok := g.methodKey[rel.End]
		if !ok {
			return false
		}
		have[key] = true
	}
	for _, t := range want {
		if !have[t.Method.Key()] {
			return false
		}
	}
	return true
}

func actionsEq(a, b taint.Action) bool {
	if len(a) != len(b) {
		return false
	}
	for slot, origin := range a {
		if other, ok := b[slot]; !ok || other != origin {
			return false
		}
	}
	return true
}

func callsEq(a, b []taint.CallEdge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Caller != b[i].Caller || a[i].CalleeClass != b[i].CalleeClass ||
			a[i].CalleeSub != b[i].CalleeSub || a[i].Kind != b[i].Kind ||
			a[i].StmtIndex != b[i].StmtIndex || a[i].Pruned != b[i].Pruned ||
			len(a[i].PP) != len(b[i].PP) {
			return false
		}
		for j := range a[i].PP {
			if a[i].PP[j] != b[i].PP[j] {
				return false
			}
		}
	}
	return true
}
