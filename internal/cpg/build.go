package cpg

import (
	"fmt"
	"sort"

	"tabby/internal/graphdb"
	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/sinks"
	"tabby/internal/taint"
)

// Options configures CPG construction.
type Options struct {
	// Sinks is the sink registry used to tag sink method nodes. Nil means
	// the default 38-sink registry.
	Sinks *sinks.Registry
	// Sources recognizes deserialization entry points. The zero value
	// means the default native-mechanism sources.
	Sources sinks.SourceConfig
	// Taint tunes the controllability analysis.
	Taint taint.Options
	// KeepPrunedCalls stores all-∞ CALL edges too (tagged by an all -1
	// POLLUTED_POSITION), turning the PCG back into the raw MCG. Used for
	// ablation benchmarks; the paper's pipeline drops them.
	KeepPrunedCalls bool
}

// Stats counts what Build produced; the Table VIII experiment reports
// these next to wall-clock time.
type Stats struct {
	ClassNodes     int
	MethodNodes    int
	ExtendEdges    int
	InterfaceEdges int
	HasEdges       int
	CallEdges      int
	PrunedCalls    int
	AliasEdges     int
}

// TotalEdges sums every relationship the build created.
func (s Stats) TotalEdges() int {
	return s.ExtendEdges + s.InterfaceEdges + s.HasEdges + s.CallEdges + s.AliasEdges
}

// Graph is a built code property graph plus the lookup tables that tie it
// back to the analyzed program.
type Graph struct {
	DB      *graphdb.DB
	Program *jimple.Program
	Taint   *taint.Result
	Stats   Stats

	classNode  map[string]graphdb.ID
	methodNode map[java.MethodKey]graphdb.ID
	methodKey  map[graphdb.ID]java.MethodKey
}

// ClassNode returns the node ID for the class name (0 when absent).
func (g *Graph) ClassNode(name string) graphdb.ID { return g.classNode[name] }

// MethodNode returns the node ID for the method key (0 when absent).
func (g *Graph) MethodNode(key java.MethodKey) graphdb.ID { return g.methodNode[key] }

// MethodKeyOf returns the method key of a method node ID.
func (g *Graph) MethodKeyOf(id graphdb.ID) (java.MethodKey, bool) {
	k, ok := g.methodKey[id]
	return k, ok
}

// MethodCount returns the number of method nodes.
func (g *Graph) MethodCount() int { return len(g.methodNode) }

// SinkNodes returns every method node tagged IS_SINK, in ID order.
func (g *Graph) SinkNodes() []graphdb.ID {
	return g.DB.FindNodes(LabelMethod, PropIsSink, true)
}

// SourceNodes returns every method node tagged IS_SOURCE, in ID order.
func (g *Graph) SourceNodes() []graphdb.ID {
	return g.DB.FindNodes(LabelMethod, PropIsSource, true)
}

// Build runs the full pipeline of §III-B: controllability analysis, then
// ORG + PCG + MAG assembly into a fresh graph database.
func Build(prog *jimple.Program, opts Options) (*Graph, error) {
	if opts.Sinks == nil {
		opts.Sinks = sinks.Default()
	}
	if len(opts.Sources.MethodNames) == 0 {
		opts.Sources = sinks.DefaultSources()
	}

	taintRes, err := taint.Analyze(prog, opts.Taint)
	if err != nil {
		return nil, fmt.Errorf("cpg: %w", err)
	}

	g := &Graph{
		DB:         graphdb.New(),
		Program:    prog,
		Taint:      taintRes,
		classNode:  make(map[string]graphdb.ID),
		methodNode: make(map[java.MethodKey]graphdb.ID),
		methodKey:  make(map[graphdb.ID]java.MethodKey),
	}
	g.DB.CreateIndex(LabelMethod, PropName)
	g.DB.CreateIndex(LabelMethod, PropIsSink)
	g.DB.CreateIndex(LabelMethod, PropIsSource)
	g.DB.CreateIndex(LabelClass, PropName)

	b := &builder{g: g, opts: opts}
	if err := b.buildORG(); err != nil {
		return nil, fmt.Errorf("cpg: ORG: %w", err)
	}
	if err := b.buildPCG(); err != nil {
		return nil, fmt.Errorf("cpg: PCG: %w", err)
	}
	if err := b.buildMAG(); err != nil {
		return nil, fmt.Errorf("cpg: MAG: %w", err)
	}
	return g, nil
}

type builder struct {
	g    *Graph
	opts Options
}

// buildORG creates class and method nodes with EXTEND/INTERFACE/HAS edges
// (§III-B2 "Object Relationship Graph Extraction").
func (b *builder) buildORG() error {
	h := b.g.Program.Hierarchy
	for _, name := range h.SortedClassNames() {
		b.classNodeFor(name)
	}
	// Edges in a second pass so every endpoint exists.
	for _, name := range h.SortedClassNames() {
		c := h.Class(name)
		from := b.g.classNode[name]
		if c.Super != "" {
			if _, err := b.g.DB.CreateRel(RelExtend, from, b.classNodeFor(c.Super), nil); err != nil {
				return err
			}
			b.g.Stats.ExtendEdges++
		}
		for _, iface := range c.Interfaces {
			if _, err := b.g.DB.CreateRel(RelInterface, from, b.classNodeFor(iface), nil); err != nil {
				return err
			}
			b.g.Stats.InterfaceEdges++
		}
		for _, key := range c.SortedMethodKeys() {
			m := h.MethodByKey(key)
			if m == nil {
				return fmt.Errorf("method %s vanished", key)
			}
			if _, err := b.methodNodeFor(m); err != nil {
				return err
			}
		}
	}
	return nil
}

func (b *builder) classNodeFor(name string) graphdb.ID {
	if id, ok := b.g.classNode[name]; ok {
		return id
	}
	h := b.g.Program.Hierarchy
	c := h.Class(name)
	props := graphdb.Props{PropName: name}
	if c != nil {
		props[PropIsInterface] = c.IsInterface()
		props[PropSuper] = c.Super
		props[PropIsSerializable] = h.IsSerializable(name)
		props[PropArchive] = c.Archive
		props[PropIsPhantom] = c.Phantom
	} else {
		props[PropIsPhantom] = true
	}
	id := b.g.DB.CreateNode([]string{LabelClass}, props)
	b.g.classNode[name] = id
	b.g.Stats.ClassNodes++
	return id
}

// methodNodeFor creates (once) the node for a declared method, tagging
// source/sink status, the Trigger_Condition and the Action summary, and
// linking it to its class with HAS.
func (b *builder) methodNodeFor(m *java.Method) (graphdb.ID, error) {
	key := m.Key()
	if id, ok := b.g.methodNode[key]; ok {
		return id, nil
	}
	h := b.g.Program.Hierarchy
	props := graphdb.Props{
		PropName:           string(key),
		PropClass:          m.ClassName,
		PropMethodName:     m.Name,
		PropSubSignature:   m.SubSignature(),
		PropParamCount:     len(m.Params),
		PropIsStatic:       m.IsStatic(),
		PropIsAbstract:     m.IsAbstract(),
		PropIsSerializable: h.IsSerializable(m.ClassName),
		PropHasBody:        b.g.Program.Body(key) != nil,
	}
	props[PropIsSource] = b.opts.Sources.IsSource(h, m)
	if s, ok := b.opts.Sinks.Match(h, m.ClassName, m.Name); ok {
		props[PropIsSink] = true
		props[PropSinkType] = string(s.Type)
		props[PropTriggerCondition] = append([]int(nil), s.TC...)
	} else {
		props[PropIsSink] = false
	}
	if act, ok := b.g.Taint.Actions[key]; ok {
		props[PropAction] = act.String()
	}
	id := b.g.DB.CreateNode([]string{LabelMethod}, props)
	b.g.methodNode[key] = id
	b.g.methodKey[id] = key
	b.g.Stats.MethodNodes++
	if _, err := b.g.DB.CreateRel(RelHas, b.classNodeFor(m.ClassName), id, nil); err != nil {
		return 0, err
	}
	b.g.Stats.HasEdges++
	return id, nil
}

// phantomMethodFor materializes a node for a callee that resolves to no
// declared method (phantom classes, unmodelled library methods), so call
// edges never dangle — the same policy Soot applies to phantom methods.
func (b *builder) phantomMethodFor(class, sub string) (graphdb.ID, error) {
	_, name, params, err := java.SplitMethodKey(java.MethodKey("#" + sub))
	if err != nil {
		return 0, fmt.Errorf("phantom callee %s#%s: %w", class, sub, err)
	}
	m := &java.Method{
		ClassName: class,
		Name:      name,
		Params:    params,
		Return:    java.ObjectType,
		Modifiers: java.ModPublic | java.ModAbstract,
	}
	return b.methodNodeFor(m)
}

// buildPCG adds CALL edges for every non-pruned call site (§III-B2
// "Precise Call Graph Extraction"), carrying the Polluted_Position.
func (b *builder) buildPCG() error {
	h := b.g.Program.Hierarchy
	for _, key := range sortedKeys(b.g.Taint.Calls) {
		callerID, ok := b.g.methodNode[key]
		if !ok {
			return fmt.Errorf("caller %s has no node", key)
		}
		for _, call := range b.g.Taint.Calls[key] {
			if call.Pruned && !b.opts.KeepPrunedCalls {
				b.g.Stats.PrunedCalls++
				continue
			}
			var calleeID graphdb.ID
			if m := h.ResolveMethod(call.CalleeClass, call.CalleeSub); m != nil {
				id, err := b.methodNodeFor(m)
				if err != nil {
					return err
				}
				calleeID = id
			} else {
				id, err := b.phantomMethodFor(call.CalleeClass, call.CalleeSub)
				if err != nil {
					return err
				}
				calleeID = id
			}
			props := graphdb.Props{
				PropPollutedPosition: call.PP.Ints(),
				PropInvokeKind:       call.Kind.String(),
				PropStmtIndex:        call.StmtIndex,
				PropInvokeClass:      call.CalleeClass,
			}
			if _, err := b.g.DB.CreateRel(RelCall, callerID, calleeID, props); err != nil {
				return err
			}
			b.g.Stats.CallEdges++
		}
	}
	return nil
}

// buildMAG adds ALIAS edges from every method to the methods it overrides
// or implements (§III-B2 "Method Alias Graph Extraction", Formula 1).
func (b *builder) buildMAG() error {
	h := b.g.Program.Hierarchy
	for _, name := range h.SortedClassNames() {
		c := h.Class(name)
		for _, m := range c.Methods {
			fromID, err := b.methodNodeFor(m)
			if err != nil {
				return err
			}
			for _, super := range h.AliasSupers(m) {
				toID, err := b.methodNodeFor(super)
				if err != nil {
					return err
				}
				if _, err := b.g.DB.CreateRel(RelAlias, fromID, toID, nil); err != nil {
					return err
				}
				b.g.Stats.AliasEdges++
			}
		}
	}
	return nil
}

func sortedKeys(m map[java.MethodKey][]taint.CallEdge) []java.MethodKey {
	keys := make([]java.MethodKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
