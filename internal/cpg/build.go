package cpg

import (
	"fmt"

	"tabby/internal/edges"
	"tabby/internal/graphdb"
	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/parallel"
	"tabby/internal/profiling"
	"tabby/internal/sinks"
	"tabby/internal/sortutil"
	"tabby/internal/taint"
)

// Options configures CPG construction.
type Options struct {
	// Sinks is the sink registry used to tag sink method nodes. Nil means
	// the default 38-sink registry.
	Sinks *sinks.Registry
	// Sources recognizes deserialization entry points. The zero value
	// means the default native-mechanism sources.
	Sources sinks.SourceConfig
	// Taint tunes the controllability analysis.
	Taint taint.Options
	// KeepPrunedCalls stores all-∞ CALL edges too (tagged by an all -1
	// POLLUTED_POSITION), turning the PCG back into the raw MCG. Used for
	// ablation benchmarks; the paper's pipeline drops them.
	KeepPrunedCalls bool
	// Workers bounds the concurrency of property/edge precomputation and
	// is forwarded to the controllability analysis when its own Workers
	// field is unset. Zero selects runtime.GOMAXPROCS(0); 1 runs the
	// exact sequential path. Graph contents and IDs are identical at
	// every setting: precomputation runs concurrently but every node and
	// relationship is materialized through one batch filled in
	// deterministic order.
	Workers int
	// SerializationDispatch enables the serialization-dispatch pass: a
	// virtual deserialization-driver method wired by DISPATCH edges to
	// every hierarchy-derived JVM deserialization callback (readObject/
	// readResolve/readExternal of Serializable classes and
	// InvocationHandler.invoke). The pass runs last, so with the gate off
	// the graph is byte-identical to a build without the pass.
	SerializationDispatch bool
}

// Stats counts what Build produced; the Table VIII experiment reports
// these next to wall-clock time.
type Stats struct {
	ClassNodes     int
	MethodNodes    int
	ExtendEdges    int
	InterfaceEdges int
	HasEdges       int
	CallEdges      int
	PrunedCalls    int
	AliasEdges     int
}

// TotalEdges sums every relationship the build created.
func (s Stats) TotalEdges() int {
	return s.ExtendEdges + s.InterfaceEdges + s.HasEdges + s.CallEdges + s.AliasEdges
}

// Graph is a built code property graph plus the lookup tables that tie it
// back to the analyzed program.
type Graph struct {
	DB      *graphdb.DB
	Program *jimple.Program
	Taint   *taint.Result
	Stats   Stats
	// DispatchEdges counts the DISPATCH edges the serialization pass
	// synthesized (0 with the pass disabled). Kept out of Stats, whose
	// rendering is pinned by the cold-build golden.
	DispatchEdges int

	classNode  map[string]graphdb.ID
	methodNode map[java.MethodKey]graphdb.ID
	methodKey  map[graphdb.ID]java.MethodKey
}

// ClassNode returns the node ID for the class name (0 when absent).
func (g *Graph) ClassNode(name string) graphdb.ID { return g.classNode[name] }

// MethodNode returns the node ID for the method key (0 when absent).
func (g *Graph) MethodNode(key java.MethodKey) graphdb.ID { return g.methodNode[key] }

// MethodKeyOf returns the method key of a method node ID.
func (g *Graph) MethodKeyOf(id graphdb.ID) (java.MethodKey, bool) {
	k, ok := g.methodKey[id]
	return k, ok
}

// MethodCount returns the number of method nodes.
func (g *Graph) MethodCount() int { return len(g.methodNode) }

// SinkNodes returns every method node tagged IS_SINK, in ID order.
func (g *Graph) SinkNodes() []graphdb.ID {
	return g.DB.FindNodes(LabelMethod, PropIsSink, true)
}

// SourceNodes returns every method node tagged IS_SOURCE, in ID order.
func (g *Graph) SourceNodes() []graphdb.ID {
	return g.DB.FindNodes(LabelMethod, PropIsSource, true)
}

// Build runs the full pipeline of §III-B: controllability analysis, then
// ORG + PCG + MAG assembly into a fresh graph database.
//
// With Workers > 1 the expensive per-element work — hierarchy walks,
// source/sink matching, Action rendering, callee resolution, alias
// lookup — is precomputed concurrently (class-property precomputation
// even overlaps the controllability analysis itself, which does not need
// it), while materialization stays a single deterministic batch fill so
// node and relationship IDs never depend on the worker count.
func Build(prog *jimple.Program, opts Options) (*Graph, error) {
	opts = normalizeOptions(opts)
	workers := parallel.Resolve(opts.Workers)
	b := newBuilder(prog, opts)

	if workers > 1 {
		// Class properties depend only on the hierarchy, so their
		// precomputation overlaps the controllability analysis.
		done := make(chan error, 1)
		go func() {
			profiling.Stage("taint", func() {
				res, err := taint.Analyze(prog, opts.Taint)
				b.g.Taint = res
				done <- err
			})
		}()
		profiling.Stage("cpg", b.precomputeClassProps)
		if err := <-done; err != nil {
			return nil, fmt.Errorf("cpg: %w", err)
		}
	} else {
		var res *taint.Result
		var err error
		profiling.Stage("taint", func() { res, err = taint.Analyze(prog, opts.Taint) })
		if err != nil {
			return nil, fmt.Errorf("cpg: %w", err)
		}
		b.g.Taint = res
		b.precomputeClassProps()
	}
	return b.finish()
}

// BuildWithResult assembles the graph from an already-computed
// controllability result. The incremental pipeline uses it so a full graph
// rebuild (the fallback when a delta is unsound) still reuses cached
// method summaries instead of re-running the fixpoints. The graph is
// byte-identical to Build's: assembly is deterministic given (prog, res).
func BuildWithResult(prog *jimple.Program, res *taint.Result, opts Options) (*Graph, error) {
	opts = normalizeOptions(opts)
	b := newBuilder(prog, opts)
	b.g.Taint = res
	b.precomputeClassProps()
	return b.finish()
}

func normalizeOptions(opts Options) Options {
	if opts.Sinks == nil {
		opts.Sinks = sinks.Default()
	}
	if len(opts.Sources.MethodNames) == 0 {
		opts.Sources = sinks.DefaultSources()
	}
	if opts.Taint.Workers == 0 {
		opts.Taint.Workers = opts.Workers
	}
	return opts
}

func newBuilder(prog *jimple.Program, opts Options) *builder {
	g := &Graph{
		DB:         graphdb.New(),
		Program:    prog,
		classNode:  make(map[string]graphdb.ID),
		methodNode: make(map[java.MethodKey]graphdb.ID),
		methodKey:  make(map[graphdb.ID]java.MethodKey),
	}
	g.DB.CreateIndex(LabelMethod, PropName)
	g.DB.CreateIndex(LabelMethod, PropIsSink)
	g.DB.CreateIndex(LabelMethod, PropIsSource)
	g.DB.CreateIndex(LabelClass, PropName)
	return &builder{g: g, opts: opts, batch: g.DB.NewBatch()}
}

func (b *builder) finish() (*Graph, error) {
	var err error
	profiling.Stage("cpg", func() {
		b.precomputeMethodWork()
		if err = b.buildORG(); err != nil {
			err = fmt.Errorf("cpg: ORG: %w", err)
			return
		}
		var counts edges.Counts
		for _, pass := range edges.Pipeline(b.opts.SerializationDispatch) {
			if perr := pass.Synthesize(b, &counts); perr != nil {
				err = fmt.Errorf("cpg: %s: %w", pass.Name(), perr)
				return
			}
		}
		b.g.Stats.CallEdges = counts.CallEdges
		b.g.Stats.PrunedCalls = counts.PrunedCalls
		b.g.Stats.AliasEdges = counts.AliasEdges
		b.g.DispatchEdges = counts.DispatchEdges
		if err = b.batch.Flush(); err != nil {
			err = fmt.Errorf("cpg: flush: %w", err)
		}
	})
	if err != nil {
		return nil, err
	}
	return b.g, nil
}

// Shared label slices: batch creations transfer ownership without
// copying, and graphdb never mutates a node's label slice.
var (
	classLabels  = []string{LabelClass}
	methodLabels = []string{LabelMethod}
)

type builder struct {
	g     *Graph
	opts  Options
	batch *graphdb.Batch

	classProps  map[string]graphdb.Props
	methodProps map[java.MethodKey]graphdb.Props
	// callTargets mirrors Taint.Calls: the resolved callee for each edge
	// of each caller (nil → phantom). aliasSupers holds each declared
	// method's MAG targets.
	callTargets map[java.MethodKey][]*java.Method
	aliasSupers map[java.MethodKey][]*java.Method
	// nodeByIID indexes method nodes by the method key's process-wide
	// intern id (internal/intern), so the PCG/MAG passes — which revisit
	// every method once per call/alias edge — resolve nodes with a slice
	// index instead of a string-keyed map probe. 0 means "no node yet"
	// (graphdb IDs start at 1).
	nodeByIID []graphdb.ID
}

// precomputeClassProps fills classProps for every known class
// concurrently. Only reads the (immutable) hierarchy.
func (b *builder) precomputeClassProps() {
	names := b.g.Program.Hierarchy.SortedClassNames()
	props := parallel.Map(b.opts.Workers, names, func(_ int, name string) graphdb.Props {
		return b.computeClassProps(name)
	})
	b.classProps = make(map[string]graphdb.Props, len(names))
	for i, name := range names {
		b.classProps[name] = props[i]
	}
}

// precomputeMethodWork fills methodProps, callTargets, and aliasSupers
// concurrently. Needs the taint result (for Action strings), so it runs
// after the analysis joins.
func (b *builder) precomputeMethodWork() {
	h := b.g.Program.Hierarchy

	var methods []*java.Method
	for _, name := range h.SortedClassNames() {
		c := h.Class(name)
		for _, key := range c.SortedMethodKeys() {
			if m := h.MethodByKey(key); m != nil {
				methods = append(methods, m)
			}
		}
	}
	type methodWork struct {
		props  graphdb.Props
		supers []*java.Method
	}
	work := parallel.Map(b.opts.Workers, methods, func(_ int, m *java.Method) methodWork {
		return methodWork{props: b.computeMethodProps(m), supers: h.AliasSupers(m)}
	})
	b.methodProps = make(map[java.MethodKey]graphdb.Props, len(methods))
	b.aliasSupers = make(map[java.MethodKey][]*java.Method, len(methods))
	for i, m := range methods {
		b.methodProps[m.Key()] = work[i].props
		b.aliasSupers[m.Key()] = work[i].supers
	}

	callers := sortutil.SortedKeys(b.g.Taint.Calls)
	targets := parallel.Map(b.opts.Workers, callers, func(_ int, key java.MethodKey) []*java.Method {
		calls := b.g.Taint.Calls[key]
		out := make([]*java.Method, len(calls))
		for i, call := range calls {
			out[i] = h.ResolveMethod(call.CalleeClass, call.CalleeSub)
		}
		return out
	})
	b.callTargets = make(map[java.MethodKey][]*java.Method, len(callers))
	for i, key := range callers {
		b.callTargets[key] = targets[i]
	}
}

// buildORG creates class and method nodes with EXTEND/INTERFACE/HAS edges
// (§III-B2 "Object Relationship Graph Extraction").
func (b *builder) buildORG() error {
	h := b.g.Program.Hierarchy
	for _, name := range h.SortedClassNames() {
		b.classNodeFor(name)
	}
	// Edges in a second pass so every endpoint exists.
	for _, name := range h.SortedClassNames() {
		c := h.Class(name)
		from := b.g.classNode[name]
		if c.Super != "" {
			b.batch.CreateRel(RelExtend, from, b.classNodeFor(c.Super), nil)
			b.g.Stats.ExtendEdges++
		}
		for _, iface := range c.Interfaces {
			b.batch.CreateRel(RelInterface, from, b.classNodeFor(iface), nil)
			b.g.Stats.InterfaceEdges++
		}
		for _, key := range c.SortedMethodKeys() {
			m := h.MethodByKey(key)
			if m == nil {
				return fmt.Errorf("method %s vanished", key)
			}
			if _, err := b.methodNodeFor(m); err != nil {
				return err
			}
		}
	}
	return nil
}

// computeClassProps builds the property map of one class node.
func (b *builder) computeClassProps(name string) graphdb.Props {
	h := b.g.Program.Hierarchy
	c := h.Class(name)
	props := graphdb.Props{PropName: name}
	if c != nil {
		props[PropIsInterface] = c.IsInterface()
		props[PropSuper] = c.Super
		props[PropIsSerializable] = h.IsSerializable(name)
		props[PropArchive] = c.Archive
		props[PropIsPhantom] = c.Phantom
	} else {
		props[PropIsPhantom] = true
	}
	return props
}

func (b *builder) classNodeFor(name string) graphdb.ID {
	if id, ok := b.g.classNode[name]; ok {
		return id
	}
	props, ok := b.classProps[name]
	if !ok {
		props = b.computeClassProps(name)
	}
	// Props are computed fresh per class and never touched after this
	// point, so the batch takes them un-cloned.
	id := b.batch.CreateNodeOwned(classLabels, props)
	b.g.classNode[name] = id
	b.g.Stats.ClassNodes++
	return id
}

// computeMethodProps builds the property map of one method node: the
// source/sink tags, Trigger_Condition, and Action summary.
func (b *builder) computeMethodProps(m *java.Method) graphdb.Props {
	h := b.g.Program.Hierarchy
	key := m.Key()
	props := graphdb.Props{
		PropName:           string(key),
		PropClass:          m.ClassName,
		PropMethodName:     m.Name,
		PropSubSignature:   m.SubSignature(),
		PropParamCount:     len(m.Params),
		PropIsStatic:       m.IsStatic(),
		PropIsAbstract:     m.IsAbstract(),
		PropIsSerializable: h.IsSerializable(m.ClassName),
		PropHasBody:        b.g.Program.Body(key) != nil,
	}
	props[PropIsSource] = b.opts.Sources.IsSource(h, m)
	if s, ok := b.opts.Sinks.Match(h, m.ClassName, m.Name); ok {
		props[PropIsSink] = true
		props[PropSinkType] = string(s.Type)
		props[PropTriggerCondition] = append([]int(nil), s.TC...)
	} else {
		props[PropIsSink] = false
	}
	if act, ok := b.g.Taint.Actions[key]; ok {
		props[PropAction] = act.String()
	}
	return props
}

// methodNodeFor creates (once) the node for a declared method, tagging
// source/sink status, the Trigger_Condition and the Action summary, and
// linking it to its class with HAS.
func (b *builder) methodNodeFor(m *java.Method) (graphdb.ID, error) {
	iid := m.InternID()
	if int(iid) < len(b.nodeByIID) {
		if id := b.nodeByIID[iid]; id != 0 {
			return id, nil
		}
	}
	key := m.Key()
	if id, ok := b.g.methodNode[key]; ok {
		// Same key reached through a distinct phantom Method value; cache
		// its intern id too so the next edge takes the fast path.
		b.recordIID(iid, id)
		return id, nil
	}
	props, ok := b.methodProps[key]
	if !ok { // phantom callee discovered during PCG assembly
		props = b.computeMethodProps(m)
	}
	id := b.batch.CreateNodeOwned(methodLabels, props)
	b.g.methodNode[key] = id
	b.g.methodKey[id] = key
	b.recordIID(iid, id)
	b.g.Stats.MethodNodes++
	b.batch.CreateRel(RelHas, b.classNodeFor(m.ClassName), id, nil)
	b.g.Stats.HasEdges++
	return id, nil
}

func (b *builder) recordIID(iid int32, id graphdb.ID) {
	for int(iid) >= len(b.nodeByIID) {
		grown := make([]graphdb.ID, int(iid)+1+len(b.nodeByIID)/2)
		copy(grown, b.nodeByIID)
		b.nodeByIID = grown
	}
	b.nodeByIID[iid] = id
}

// phantomMethodFor materializes a node for a callee that resolves to no
// declared method (phantom classes, unmodelled library methods), so call
// edges never dangle — the same policy Soot applies to phantom methods.
func (b *builder) phantomMethodFor(class, sub string) (graphdb.ID, error) {
	_, name, params, err := java.SplitMethodKey(java.MethodKey("#" + sub))
	if err != nil {
		return 0, fmt.Errorf("phantom callee %s#%s: %w", class, sub, err)
	}
	m := &java.Method{
		ClassName: class,
		Name:      name,
		Params:    params,
		Return:    java.ObjectType,
		Modifiers: java.ModPublic | java.ModAbstract,
	}
	return b.methodNodeFor(m)
}

// The builder is the edges.Host of the synthesis pipeline: passes reach
// node materialization and the precomputed resolution tables through
// these methods, while ownership of batch order stays here.

// Hierarchy implements edges.Host.
func (b *builder) Hierarchy() *java.Hierarchy { return b.g.Program.Hierarchy }

// Calls implements edges.Host.
func (b *builder) Calls() map[java.MethodKey][]taint.CallEdge { return b.g.Taint.Calls }

// Batch implements edges.Host.
func (b *builder) Batch() *graphdb.Batch { return b.batch }

// KeepPrunedCalls implements edges.Host.
func (b *builder) KeepPrunedCalls() bool { return b.opts.KeepPrunedCalls }

// MethodNode implements edges.Host.
func (b *builder) MethodNode(m *java.Method) (graphdb.ID, error) { return b.methodNodeFor(m) }

// PhantomNode implements edges.Host.
func (b *builder) PhantomNode(class, sub string) (graphdb.ID, error) {
	return b.phantomMethodFor(class, sub)
}

// NodeByKey implements edges.Host.
func (b *builder) NodeByKey(key java.MethodKey) (graphdb.ID, bool) {
	id, ok := b.g.methodNode[key]
	return id, ok
}

// ResolvedCallees implements edges.Host.
func (b *builder) ResolvedCallees(caller java.MethodKey) []*java.Method {
	return b.callTargets[caller]
}

// AliasTargets implements edges.Host.
func (b *builder) AliasTargets(m *java.Method) []*java.Method {
	if supers, ok := b.aliasSupers[m.Key()]; ok {
		return supers
	}
	return b.g.Program.Hierarchy.AliasSupers(m)
}
