package cpg_test

import (
	"bytes"
	"strings"
	"testing"

	"tabby/internal/corpus"
	"tabby/internal/cpg"
	"tabby/internal/graphdb"
	"tabby/internal/java"
	"tabby/internal/javasrc"
	"tabby/internal/pathfinder"
)

func buildRTGraph(t *testing.T) *cpg.Graph {
	t.Helper()
	prog, err := javasrc.CompileArchives([]javasrc.ArchiveSource{corpus.RT()})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cpg.Build(prog, cpg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildRTStats(t *testing.T) {
	g := buildRTGraph(t)
	s := g.Stats
	if s.ClassNodes == 0 || s.MethodNodes == 0 {
		t.Fatalf("empty graph: %+v", s)
	}
	if s.HasEdges < s.MethodNodes-5 {
		t.Errorf("HAS edges (%d) must roughly track method nodes (%d)", s.HasEdges, s.MethodNodes)
	}
	if s.CallEdges == 0 || s.AliasEdges == 0 || s.ExtendEdges == 0 || s.InterfaceEdges == 0 {
		t.Errorf("missing edge kinds: %+v", s)
	}
	dbStats := g.DB.Stats()
	if dbStats.NodesByType[cpg.LabelClass] != s.ClassNodes || dbStats.NodesByType[cpg.LabelMethod] != s.MethodNodes {
		t.Errorf("db stats disagree: %+v vs %+v", dbStats, s)
	}
	if dbStats.Rels != s.TotalEdges() {
		t.Errorf("edge total %d != db rels %d", s.TotalEdges(), dbStats.Rels)
	}
}

func TestURLDNSNodesAndEdges(t *testing.T) {
	// The CPG must contain the Fig. 4 structure: HashMap.readObject with
	// CALL to hash, hash with CALL to Object.hashCode, URL.hashCode with
	// ALIAS to Object.hashCode.
	g := buildRTGraph(t)
	db := g.DB

	readObject := g.MethodNode(java.MethodKey("java.util.HashMap#readObject(java.io.ObjectInputStream)"))
	hash := g.MethodNode(java.MethodKey("java.util.HashMap#hash(java.lang.Object)"))
	objHash := g.MethodNode(java.MethodKey("java.lang.Object#hashCode()"))
	urlHash := g.MethodNode(java.MethodKey("java.net.URL#hashCode()"))
	if readObject == 0 || hash == 0 || objHash == 0 || urlHash == 0 {
		t.Fatalf("URLDNS nodes missing: %d %d %d %d", readObject, hash, objHash, urlHash)
	}

	// readObject is a source; InetAddress.getByName is a sink.
	if v, _ := db.NodeProp(readObject, cpg.PropIsSource); v != true {
		t.Error("HashMap.readObject must be a source")
	}
	getByName := g.MethodNode(java.MethodKey("java.net.InetAddress#getByName(java.lang.String)"))
	if getByName == 0 {
		t.Fatal("InetAddress.getByName node missing")
	}
	if v, _ := db.NodeProp(getByName, cpg.PropIsSink); v != true {
		t.Error("InetAddress.getByName must be a sink")
	}
	if v, _ := db.NodeProp(getByName, cpg.PropSinkType); v != "SSRF" {
		t.Errorf("getByName sink type = %v", v)
	}

	hasCall := func(from, to graphdb.ID) bool {
		for _, rid := range db.Rels(from, graphdb.DirOut, cpg.RelCall) {
			if db.Rel(rid).End == to {
				return true
			}
		}
		return false
	}
	if !hasCall(readObject, hash) {
		t.Error("CALL readObject→hash missing")
	}
	if !hasCall(hash, objHash) {
		t.Error("CALL hash→Object.hashCode missing")
	}
	hasAlias := false
	for _, rid := range db.Rels(urlHash, graphdb.DirOut, cpg.RelAlias) {
		if db.Rel(rid).End == objHash {
			hasAlias = true
		}
	}
	if !hasAlias {
		t.Error("ALIAS URL.hashCode→Object.hashCode missing")
	}

	// PP on hash→Object.hashCode: receiver is hash's parameter 1.
	for _, rid := range db.Rels(hash, graphdb.DirOut, cpg.RelCall) {
		rel := db.Rel(rid)
		if rel.End == objHash {
			pp, ok := rel.Props[cpg.PropPollutedPosition].([]int)
			if !ok || len(pp) != 1 || pp[0] != 1 {
				t.Errorf("PP on hash→hashCode = %v, want [1]", rel.Props[cpg.PropPollutedPosition])
			}
		}
	}
}

func TestURLDNSChainFound(t *testing.T) {
	// End-to-end §III-B2: the URLDNS chain
	// HashMap.readObject → HashMap.hash → Object.hashCode ⇝ URL.hashCode →
	// URLStreamHandler.hashCode → getHostAddress → InetAddress.getByName.
	g := buildRTGraph(t)
	getByName := g.MethodNode(java.MethodKey("java.net.InetAddress#getByName(java.lang.String)"))
	res, err := pathfinder.Find(g.DB, pathfinder.Options{
		SinkNodes: []graphdb.ID{getByName},
	})
	if err != nil {
		t.Fatal(err)
	}
	var urldns *pathfinder.Chain
	for i, c := range res.Chains {
		if c.Names[0] == "java.util.HashMap#readObject(java.io.ObjectInputStream)" {
			urldns = &res.Chains[i]
		}
	}
	if urldns == nil {
		for _, c := range res.Chains {
			t.Logf("chain:\n%s", c)
		}
		t.Fatal("URLDNS chain not found")
	}
	wantOrder := []string{
		"java.util.HashMap#readObject(java.io.ObjectInputStream)",
		"java.util.HashMap#hash(java.lang.Object)",
		"java.lang.Object#hashCode()",
		"java.net.URL#hashCode()",
		"java.net.URLStreamHandler#hashCode(java.net.URL)",
		"java.net.URLStreamHandler#getHostAddress(java.net.URL)",
		"java.net.InetAddress#getByName(java.lang.String)",
	}
	if len(urldns.Names) != len(wantOrder) {
		t.Fatalf("chain length %d, want %d:\n%s", len(urldns.Names), len(wantOrder), urldns)
	}
	for i, want := range wantOrder {
		if urldns.Names[i] != want {
			t.Errorf("chain[%d] = %s, want %s", i, urldns.Names[i], want)
		}
	}
}

func TestEnumMapDoesNotReachSink(t *testing.T) {
	// EnumMap.hashCode aliases Object.hashCode but only reaches
	// entryHashCode — the search upwards from the sink never emits a
	// chain through it (§III-B2's motivation for searching from sinks).
	g := buildRTGraph(t)
	getByName := g.MethodNode(java.MethodKey("java.net.InetAddress#getByName(java.lang.String)"))
	res, err := pathfinder.Find(g.DB, pathfinder.Options{SinkNodes: []graphdb.ID{getByName}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Chains {
		for _, n := range c.Names {
			if strings.Contains(n, "EnumMap") {
				t.Errorf("EnumMap must not appear in any chain:\n%s", c)
			}
		}
	}
}

func TestActionsStoredOnMethodNodes(t *testing.T) {
	g := buildRTGraph(t)
	hash := g.MethodNode(java.MethodKey("java.util.HashMap#hash(java.lang.Object)"))
	v, ok := g.DB.NodeProp(hash, cpg.PropAction)
	if !ok {
		t.Fatal("hash has no ACTION property")
	}
	s, _ := v.(string)
	if !strings.Contains(s, `"this": "null"`) { // static method
		t.Errorf("ACTION = %s", s)
	}
}

func TestKeepPrunedCallsOption(t *testing.T) {
	src := `
package p;
class C {
    void m() {
        Object fresh = new Object();
        int h = fresh.hashCode();
    }
}
`
	progPruned, err := javasrc.CompileArchives([]javasrc.ArchiveSource{corpus.RT(), {Name: "p.jar", Files: []javasrc.File{{Name: "p.java", Source: src}}}})
	if err != nil {
		t.Fatal(err)
	}
	g1, err := cpg.Build(progPruned, cpg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	progKept, err := javasrc.CompileArchives([]javasrc.ArchiveSource{corpus.RT(), {Name: "p.jar", Files: []javasrc.File{{Name: "p.java", Source: src}}}})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := cpg.Build(progKept, cpg.Options{KeepPrunedCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	if g1.Stats.PrunedCalls == 0 {
		t.Error("fresh-object call must be pruned by default")
	}
	if g2.Stats.CallEdges <= g1.Stats.CallEdges {
		t.Errorf("KeepPrunedCalls must add edges: %d vs %d", g2.Stats.CallEdges, g1.Stats.CallEdges)
	}
}

func TestPhantomCalleeGetsNode(t *testing.T) {
	prog, err := javasrc.Compile("ph", `
package p;
class C {
    void m(Object o) {
        ext.Missing.handle(o);
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cpg.Build(prog, cpg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id := g.MethodNode(java.MethodKey("ext.Missing#handle(java.lang.Object)"))
	if id == 0 {
		t.Fatal("phantom callee node missing")
	}
	if v, _ := g.DB.NodeProp(id, cpg.PropIsAbstract); v != true {
		t.Error("phantom method must be abstract")
	}
	if key, ok := g.MethodKeyOf(id); !ok || java.MethodKeyClass(key) != "ext.Missing" {
		t.Errorf("MethodKeyOf = %v/%v", key, ok)
	}
}

func TestSinkAndSourceIndexes(t *testing.T) {
	g := buildRTGraph(t)
	if len(g.SinkNodes()) == 0 {
		t.Error("no sink nodes tagged")
	}
	if len(g.SourceNodes()) == 0 {
		t.Error("no source nodes tagged")
	}
	if g.MethodCount() != g.Stats.MethodNodes {
		t.Errorf("MethodCount %d != stats %d", g.MethodCount(), g.Stats.MethodNodes)
	}
	if g.ClassNode("java.util.HashMap") == 0 {
		t.Error("HashMap class node missing")
	}
}

func TestWriteDOTURLDNS(t *testing.T) {
	g := buildRTGraph(t)
	var buf bytes.Buffer
	err := cpg.WriteDOT(&buf, g.DB, cpg.DOTOptions{
		ClassPrefixes: []string{"java.util.HashMap", "java.net.", "java.lang.Object"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph cpg",
		"java.util.HashMap#readObject(java.io.ObjectInputStream)",
		"CALL",
		"ALIAS",
		"fillcolor=\"#d9ead3\"", // source shading
		"fillcolor=\"#f4cccc\"", // sink shading
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Unfiltered export over the whole runtime must trip the node cap
	// with a small MaxNodes.
	if err := cpg.WriteDOT(&buf, g.DB, cpg.DOTOptions{MaxNodes: 5}); err == nil {
		t.Error("node cap must trigger")
	}
}
