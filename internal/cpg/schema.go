// Package cpg constructs Tabby's Code Property Graph (paper §III-B): the
// Object Relationship Graph (class/method nodes, EXTEND/INTERFACE/HAS
// edges), the Precise Call Graph (CALL edges annotated with
// Polluted_Position and pruned by the controllability analysis), and the
// Method Alias Graph (ALIAS edges per Formula 1), merged into one property
// graph stored in package graphdb.
package cpg

// Node labels.
const (
	LabelClass  = "Class"
	LabelMethod = "Method"
)

// Relationship types — the five edges of Table II.
const (
	RelExtend    = "EXTEND"
	RelInterface = "INTERFACE"
	RelHas       = "HAS"
	RelCall      = "CALL"
	RelAlias     = "ALIAS"
)

// Class node properties.
const (
	PropName           = "NAME"
	PropIsInterface    = "IS_INTERFACE"
	PropSuper          = "SUPER"
	PropIsSerializable = "IS_SERIALIZABLE"
	PropArchive        = "ARCHIVE"
	PropIsPhantom      = "IS_PHANTOM"
)

// Method node properties (NAME, IS_SERIALIZABLE and IS_PHANTOM are shared
// with class nodes).
const (
	PropClass            = "CLASS"
	PropMethodName       = "METHOD_NAME"
	PropSubSignature     = "SUB_SIGNATURE"
	PropParamCount       = "PARAM_COUNT"
	PropIsStatic         = "IS_STATIC"
	PropIsAbstract       = "IS_ABSTRACT"
	PropIsSource         = "IS_SOURCE"
	PropIsSink           = "IS_SINK"
	PropSinkType         = "SINK_TYPE"
	PropTriggerCondition = "TRIGGER_CONDITION"
	PropHasBody          = "HAS_BODY"
	PropAction           = "ACTION"
)

// CALL edge properties.
const (
	PropPollutedPosition = "POLLUTED_POSITION"
	PropInvokeKind       = "INVOKE_KIND"
	PropStmtIndex        = "STMT_INDEX"
	PropInvokeClass      = "INVOKE_CLASS"
)
