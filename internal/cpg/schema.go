// Package cpg constructs Tabby's Code Property Graph (paper §III-B): the
// Object Relationship Graph (class/method nodes, EXTEND/INTERFACE/HAS
// edges), the Precise Call Graph (CALL edges annotated with
// Polluted_Position and pruned by the controllability analysis), and the
// Method Alias Graph (ALIAS edges per Formula 1), merged into one property
// graph stored in package graphdb. Edge construction itself runs as the
// ordered pass pipeline of package edges, which optionally adds the
// serialization-aware DISPATCH edges.
package cpg

import "tabby/internal/edges"

// Node labels.
const (
	LabelClass  = "Class"
	LabelMethod = "Method"
)

// Relationship types — the five edges of Table II plus the synthesized
// DISPATCH edge. The vocabulary is owned by internal/edges (the
// synthesis passes); cpg re-exports it so graph consumers keep a single
// import.
const (
	RelExtend    = edges.RelExtend
	RelInterface = edges.RelInterface
	RelHas       = edges.RelHas
	RelCall      = edges.RelCall
	RelAlias     = edges.RelAlias
	RelDispatch  = edges.RelDispatch
)

// RelTypes returns every relationship type of the schema, sorted.
func RelTypes() []string { return edges.AllRelTypes() }

// Class node properties.
const (
	PropName           = "NAME"
	PropIsInterface    = "IS_INTERFACE"
	PropSuper          = "SUPER"
	PropIsSerializable = "IS_SERIALIZABLE"
	PropArchive        = "ARCHIVE"
	PropIsPhantom      = "IS_PHANTOM"
)

// Method node properties (NAME, IS_SERIALIZABLE and IS_PHANTOM are shared
// with class nodes).
const (
	PropClass            = "CLASS"
	PropMethodName       = "METHOD_NAME"
	PropSubSignature     = "SUB_SIGNATURE"
	PropParamCount       = "PARAM_COUNT"
	PropIsStatic         = "IS_STATIC"
	PropIsAbstract       = "IS_ABSTRACT"
	PropIsSource         = "IS_SOURCE"
	PropIsSink           = "IS_SINK"
	PropSinkType         = "SINK_TYPE"
	PropTriggerCondition = "TRIGGER_CONDITION"
	PropHasBody          = "HAS_BODY"
	PropAction           = "ACTION"
)

// CALL edge properties (owned by internal/edges, re-exported).
const (
	PropPollutedPosition = edges.PropPollutedPosition
	PropInvokeKind       = edges.PropInvokeKind
	PropStmtIndex        = edges.PropStmtIndex
	PropInvokeClass      = edges.PropInvokeClass
)

// DISPATCH edge properties (owned by internal/edges, re-exported).
const (
	PropProvenance   = edges.PropProvenance
	PropDispatchKind = edges.PropDispatchKind
)
