package cpg

import (
	"testing"

	"tabby/internal/javasrc"
	"tabby/internal/jimple"
	"tabby/internal/taint"
)

// deltaSrc renders the dispatch-delta fixture: Base declares a relaying
// readResolve; whether Sub is Serializable decides whether the dispatch
// pass derives Base#readResolve() as an entry point.
func deltaSrc(subImplements string) string {
	return `
public class Base {
    public String cmd;

    protected Object readResolve() {
        Relay.relay(this.cmd);
        return this.cmd;
    }
}

class Sub extends Base ` + subImplements + ` {
    public int marker;
}

class Relay {
    static void relay(String c) {
        java.lang.Process r = java.lang.Runtime.getRuntime().exec(c);
    }
}
`
}

func compileDelta(t *testing.T, subImplements string) (*jimple.Program, *taint.Result) {
	t.Helper()
	prog, err := javasrc.Compile("d", "package d;\n"+deltaSrc(subImplements))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := taint.Analyze(prog, taint.Options{})
	if err != nil {
		t.Fatalf("taint: %v", err)
	}
	return prog, res
}

// TestApplyDeltaDeclinesOnDispatchChange pins the defense-in-depth check
// inside ApplyDelta: a hierarchy edit that changes the derived dispatch
// targets but not the analyzed method set (Sub gaining Serializable) must
// make the delta decline rather than serve stale DISPATCH edges. In the
// engine this edit also changes the hierarchy fingerprint and never
// reaches ApplyDelta — the check here is what makes staleness impossible
// even for callers that skip that comparison.
func TestApplyDeltaDeclinesOnDispatchChange(t *testing.T) {
	prog1, res1 := compileDelta(t, "")
	prog2, res2 := compileDelta(t, "implements java.io.Serializable")

	opts := Options{SerializationDispatch: true}
	g, err := BuildWithResult(prog1, res1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if g.DispatchEdges != 0 {
		t.Fatalf("non-Serializable fixture derived %d dispatch edges, want 0", g.DispatchEdges)
	}

	// Same program re-analyzed: targets unchanged, delta accepted.
	ok, err := g.ApplyDelta(prog1, res1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("delta for the unchanged program was declined")
	}

	// Sub gains Serializable with an identical method set: the action key
	// sets match, so only the dispatch check can notice the new target.
	ok, err = g.ApplyDelta(prog2, res2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("delta accepted across a dispatch-target change: stale DISPATCH edges served")
	}

	// The same edit under a gate-off graph is a legal delta — no DISPATCH
	// edges exist to go stale.
	gOff, err := BuildWithResult(prog1, res1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err = gOff.ApplyDelta(prog2, res2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("gate-off delta declined for a Serializable-only edit")
	}
}

// TestApplyDeltaDeclinesOnDispatchLoss is the reverse edit: a graph built
// with a derived entry point must decline a delta to a program where the
// target is gone (Sub losing Serializable).
func TestApplyDeltaDeclinesOnDispatchLoss(t *testing.T) {
	prog1, res1 := compileDelta(t, "implements java.io.Serializable")
	prog2, res2 := compileDelta(t, "")

	opts := Options{SerializationDispatch: true}
	g, err := BuildWithResult(prog1, res1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if g.DispatchEdges == 0 {
		t.Fatal("Serializable fixture derived no dispatch edges")
	}
	ok, err := g.ApplyDelta(prog2, res2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("delta accepted after the dispatch target disappeared")
	}
}
