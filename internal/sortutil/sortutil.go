// Package sortutil holds the one map-iteration helper every pipeline
// stage needs: Go maps iterate in random order, and the determinism
// contract (identical output at every worker count) requires every map
// walk that feeds output or scheduling to be sorted first.
package sortutil

import (
	"cmp"
	"sort"
)

// SortedKeys returns the map's keys in ascending order.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// SortedKeysFunc returns the map's keys ordered by the given less
// function, for key types without a natural order.
func SortedKeysFunc[K comparable, V any](m map[K]V, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	return keys
}
