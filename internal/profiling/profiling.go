// Package profiling wires runtime/pprof into the CLI commands: a CPU
// profile spanning the whole run and a heap profile written at exit.
// Both cmd/tabby and cmd/tabby-bench expose it as -cpuprofile/-memprofile
// flags, so a search regression can be profiled exactly where it is
// reported (e.g. `tabby-bench -table pathfinder -cpuprofile cpu.out`).
package profiling

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the flag values (either may be empty) and
// returns a stop function to defer: it ends the CPU profile and writes
// the heap profile. Errors from Start abort the run — a requested profile
// that cannot be written is a broken measurement, not a warning.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the retained-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}

// Stage runs fn with the pprof label stage=name attached to the current
// goroutine — and inherited by every goroutine fn spawns, so a parallel
// stage's workers are labeled too. CPU profiles taken with -cpuprofile
// then attribute samples per pipeline stage:
//
//	go tool pprof -tagfocus stage=taint cpu.out   # only the fixpoint
//	go tool pprof -tags cpu.out                   # per-stage totals
//
// The pipeline labels its stages compile, taint, cpg, and search.
func Stage(name string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("stage", name), func(context.Context) { fn() })
}
