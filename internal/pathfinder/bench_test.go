package pathfinder

import (
	"fmt"
	"testing"

	"tabby/internal/cpg"
	"tabby/internal/graphdb"
	"tabby/internal/searchindex"
)

// benchGraph builds a frozen layered call graph: one sink (TC [0]) and
// `layers` layers of `width` methods, each calling every method one layer
// down with a pass-through Polluted_Position. No sources, so a search
// explores everything and records nothing — pure traversal work.
func benchGraph(tb testing.TB, layers, width int) *graphdb.DB {
	tb.Helper()
	db := graphdb.New()
	sink := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{
		cpg.PropName:             "sink",
		cpg.PropIsSink:           true,
		cpg.PropSinkType:         "EXEC",
		cpg.PropTriggerCondition: []int{0},
	})
	prev := []graphdb.ID{sink}
	for l := 1; l <= layers; l++ {
		cur := make([]graphdb.ID, width)
		for k := range cur {
			cur[k] = db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{
				cpg.PropName: fmt.Sprintf("m_%d_%d", l, k),
			})
		}
		for _, caller := range cur {
			for _, callee := range prev {
				if _, err := db.CreateRel(cpg.RelCall, caller, callee, graphdb.Props{
					cpg.PropPollutedPosition: []int{0},
				}); err != nil {
					tb.Fatal(err)
				}
			}
		}
		prev = cur
	}
	db.Freeze()
	return db
}

func benchmarkEngine(b *testing.B, find func(*graphdb.DB, Options) (*Result, error)) {
	db := benchGraph(b, 8, 3)
	opts := Options{Workers: 1}
	searchindex.For(db) // compile outside the timed region
	if _, err := find(db, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := find(db, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindIndexed(b *testing.B) { benchmarkEngine(b, Find) }

func BenchmarkFindGeneric(b *testing.B) { benchmarkEngine(b, FindGeneric) }

// TestSteadyStateAllocs gates the tentpole's zero-allocation claim: once
// the index is compiled, a whole Find over a graph whose search expands
// thousands of edges must stay under a fixed allocation ceiling — i.e.
// per-Find setup only (seeds, finder, result), nothing per edge. The
// generic engine allocates thousands of times per op on the same graph,
// so any per-expansion allocation sneaking into the indexed DFS trips
// this immediately.
func TestSteadyStateAllocs(t *testing.T) {
	db := benchGraph(t, 8, 3) // 3^8 path explosion, memo-pruned
	opts := Options{Workers: 1}
	searchindex.For(db)
	if _, err := Find(db, opts); err != nil {
		t.Fatal(err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Find(db, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	const ceiling = 500
	if allocs := res.AllocsPerOp(); allocs > ceiling {
		t.Errorf("indexed Find allocates %d objects/op, ceiling %d", allocs, ceiling)
	}
}
