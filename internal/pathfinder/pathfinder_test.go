package pathfinder

import (
	"reflect"
	"testing"

	"tabby/internal/cpg"
	"tabby/internal/graphdb"
)

// fig6 builds the example graph of paper Fig. 6 in graphdb form:
//
//	A            — sink (TC [1])
//	C  -CALL→ A  — PP [0,0]: A's argument comes from C's receiver
//	C1 -ALIAS→ C, C2 -ALIAS→ C
//	I  -CALL→ C1 — PP [-1,…]: receiver uncontrollable → Expander excludes
//	E  -CALL→ C  — PP all ∞ → Expander excludes
//	H  -CALL→ C2 — PP [0]: H is a source → valid chain H→C2→C→A
//	G  -CALL→ C, J -CALL→ G, H2 -CALL→ J — H2 is a source but the path
//	             H2→J→G→C→A has 5 nodes → Evaluator excludes at depth 4.
type fig6 struct {
	db                              *graphdb.DB
	a, c, c1, c2, e, g, h, i, j, h2 graphdb.ID
}

func buildFig6(t *testing.T) *fig6 {
	t.Helper()
	db := graphdb.New()
	method := func(name string, source bool) graphdb.ID {
		return db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{
			cpg.PropName:     name,
			cpg.PropIsSource: source,
			cpg.PropIsSink:   false,
		})
	}
	f := &fig6{db: db}
	f.a = db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{
		cpg.PropName:             "A",
		cpg.PropIsSink:           true,
		cpg.PropIsSource:         false,
		cpg.PropSinkType:         "EXEC",
		cpg.PropTriggerCondition: []int{1},
	})
	f.c = method("C", false)
	f.c1 = method("C1", false)
	f.c2 = method("C2", false)
	f.e = method("E", false)
	f.g = method("G", false)
	f.h = method("H", true)
	f.i = method("I", false)
	f.j = method("J", false)
	f.h2 = method("H2", true)

	call := func(from, to graphdb.ID, pp []int) {
		t.Helper()
		if _, err := db.CreateRel(cpg.RelCall, from, to, graphdb.Props{cpg.PropPollutedPosition: pp}); err != nil {
			t.Fatal(err)
		}
	}
	alias := func(from, to graphdb.ID) {
		t.Helper()
		if _, err := db.CreateRel(cpg.RelAlias, from, to, nil); err != nil {
			t.Fatal(err)
		}
	}
	call(f.c, f.a, []int{0, 0})
	alias(f.c1, f.c)
	alias(f.c2, f.c)
	call(f.i, f.c1, []int{-1, 1})
	call(f.e, f.c, []int{-1, -1})
	call(f.h, f.c2, []int{0})
	call(f.g, f.c, []int{0, 0})
	call(f.j, f.g, []int{0})
	call(f.h2, f.j, []int{0})
	return f
}

func TestFig6FindsValidChainOnly(t *testing.T) {
	f := buildFig6(t)
	res, err := Find(f.db, Options{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chains) != 1 {
		for _, c := range res.Chains {
			t.Logf("chain: %s", c.Key())
		}
		t.Fatalf("found %d chains, want exactly 1", len(res.Chains))
	}
	chain := res.Chains[0]
	want := []string{"H", "C2", "C", "A"}
	if !reflect.DeepEqual(chain.Names, want) {
		t.Errorf("chain = %v, want %v", chain.Names, want)
	}
	if chain.SinkType != "EXEC" {
		t.Errorf("sink type = %q", chain.SinkType)
	}
	// The sink's TC is recorded last, the source's requirement first.
	if got := chain.TCs[len(chain.TCs)-1].String(); got != "[1]" {
		t.Errorf("sink TC = %s", got)
	}
	if got := chain.TCs[0].String(); got != "[0]" {
		t.Errorf("source TC = %s, want [0]", got)
	}
	if res.Truncated {
		t.Error("search must not be truncated")
	}
}

func TestFig6DepthUnlocksDeepChain(t *testing.T) {
	f := buildFig6(t)
	res, err := Find(f.db, Options{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	// With depth 5 the Evaluator admits H2→J→G→C→A as well.
	if len(res.Chains) != 2 {
		for _, c := range res.Chains {
			t.Logf("chain: %s", c.Key())
		}
		t.Fatalf("found %d chains, want 2", len(res.Chains))
	}
	foundDeep := false
	for _, c := range res.Chains {
		if reflect.DeepEqual(c.Names, []string{"H2", "J", "G", "C", "A"}) {
			foundDeep = true
		}
	}
	if !foundDeep {
		t.Error("deep chain H2→J→G→C→A missing at depth 5")
	}
}

func TestExpanderRejectsUncontrollable(t *testing.T) {
	// Directly exercise traverse (Formula 4).
	tests := []struct {
		tc   TC
		pp   []int
		want string
		ok   bool
	}{
		{TC{1}, []int{0, 2}, "[2]", true},
		{TC{0, 1}, []int{0, 0}, "[0]", true}, // dedupe
		{TC{1}, []int{0, -1}, "", false},     // ∞
		{TC{3}, []int{0, 1}, "", false},      // out of range
		{TC{0}, []int{5}, "[5]", true},
	}
	for _, tt := range tests {
		got, ok := traverse(tt.tc, tt.pp)
		if ok != tt.ok {
			t.Errorf("traverse(%v,%v) ok=%v want %v", tt.tc, tt.pp, ok, tt.ok)
			continue
		}
		if ok && got.String() != tt.want {
			t.Errorf("traverse(%v,%v) = %s, want %s", tt.tc, tt.pp, got, tt.want)
		}
	}
}

func TestReceiverOnly(t *testing.T) {
	if !(TC{0, 0}).receiverOnly() || !(TC{}).receiverOnly() {
		t.Error("receiverOnly false negative")
	}
	if (TC{0, 2}).receiverOnly() {
		t.Error("receiverOnly false positive")
	}
}

func TestChainString(t *testing.T) {
	f := buildFig6(t)
	res, err := Find(f.db, Options{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Chains[0].String()
	want := "(source)H\nC2\nC\n(sink)A"
	if s != want {
		t.Errorf("String() = %q, want %q", s, want)
	}
}

func TestMaxChainsTruncates(t *testing.T) {
	f := buildFig6(t)
	res, err := Find(f.db, Options{MaxDepth: 5, MaxChains: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chains) != 1 || !res.Truncated {
		t.Errorf("chains=%d truncated=%v, want 1/true", len(res.Chains), res.Truncated)
	}
}

func TestVisitBudgetTruncates(t *testing.T) {
	f := buildFig6(t)
	res, err := Find(f.db, Options{MaxDepth: 5, VisitBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("tiny visit budget must truncate")
	}
}

func TestExplicitSinksAndSourceFilter(t *testing.T) {
	f := buildFig6(t)
	// Custom source filter: accept only H2 — with enough depth, exactly
	// the deep chain remains.
	res, err := Find(f.db, Options{
		MaxDepth:  6,
		SinkNodes: []graphdb.ID{f.a},
		SourceFilter: func(db *graphdb.DB, node graphdb.ID) bool {
			v, _ := db.NodeProp(node, cpg.PropName)
			return v == "H2"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chains) != 1 || res.Chains[0].Names[0] != "H2" {
		t.Fatalf("chains = %+v", res.Chains)
	}
}

func TestSinkWithoutTCErrors(t *testing.T) {
	db := graphdb.New()
	id := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{
		cpg.PropName: "bad", cpg.PropIsSink: true,
	})
	if _, err := Find(db, Options{SinkNodes: []graphdb.ID{id}}); err == nil {
		t.Fatal("sink without TC must error")
	}
}

func TestAliasCycleTerminates(t *testing.T) {
	// decl ← alias — impl1, impl2; both also alias each other's decl:
	// traversal must not loop.
	db := graphdb.New()
	sink := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{
		cpg.PropName: "S", cpg.PropIsSink: true, cpg.PropIsSource: false,
		cpg.PropSinkType: "EXEC", cpg.PropTriggerCondition: []int{0},
	})
	decl := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{cpg.PropName: "decl", cpg.PropIsSource: false, cpg.PropIsSink: false})
	impl1 := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{cpg.PropName: "impl1", cpg.PropIsSource: false, cpg.PropIsSink: false})
	impl2 := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{cpg.PropName: "impl2", cpg.PropIsSource: false, cpg.PropIsSink: false})
	mustRel(t, db, cpg.RelCall, impl1, sink, graphdb.Props{cpg.PropPollutedPosition: []int{0}})
	mustRel(t, db, cpg.RelAlias, impl1, decl, nil)
	mustRel(t, db, cpg.RelAlias, impl2, decl, nil)
	res, err := Find(db, Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chains) != 0 {
		t.Errorf("no sources exist, found %d chains", len(res.Chains))
	}
}

func mustRel(t *testing.T, db *graphdb.DB, typ string, from, to graphdb.ID, props graphdb.Props) {
	t.Helper()
	if _, err := db.CreateRel(typ, from, to, props); err != nil {
		t.Fatal(err)
	}
}
