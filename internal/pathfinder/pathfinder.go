// Package pathfinder is the reproduction of the tabby-path-finder Neo4j
// plugin (paper §III-D): a depth-first traversal that starts at sink
// methods and walks the CPG *backwards* — against CALL edges and across
// ALIAS edges — propagating the Trigger_Condition through each edge's
// Polluted_Position (Formula 4, Algorithms 2 and 3) until it reaches a
// deserialization source method.
//
// Two traversal engines implement the same search:
//
//   - Find runs against the compiled search index (package searchindex):
//     lock-free CSR adjacency, bitset path membership, reusable stacks,
//     interned Trigger_Conditions, and (node, TC)-state memoization of
//     proven-dead subsearches. This is the production path.
//   - FindGeneric walks the generic property store directly, edge by
//     edge, exactly as the original implementation did. It is kept as
//     the executable reference: the equivalence suite pins Find's
//     chains, order, and truncation to it on the full corpus.
//
// Both engines produce identical chains in identical order whenever the
// visit budget is not exhausted; an exhausted budget stops either engine
// at a cut-off that depends on how much work reaching it took (the index
// engine skips memoized-dead subtrees, so it may get further on the same
// budget), and Truncated reports the cut-off either way.
package pathfinder

import (
	"fmt"
	bits64 "math/bits"
	"sort"
	"strings"
	"sync/atomic"

	"tabby/internal/cpg"
	"tabby/internal/graphdb"
	"tabby/internal/parallel"
	"tabby/internal/searchindex"
)

// TC is a Trigger_Condition: the set of call positions (0 = receiver,
// i = argument i) that must be attacker-controllable.
type TC []int

// normalize returns the positions sorted and deduped. It never mutates
// the receiver or its backing array: an already-normal TC is returned
// as-is, anything else is copied first (TCs routinely alias property
// slices owned by a shared, possibly frozen store).
func (tc TC) normalize() TC {
	if len(tc) <= 1 {
		return tc
	}
	inOrder := true
	for i := 1; i < len(tc); i++ {
		if tc[i] <= tc[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		return tc
	}
	out := make(TC, len(tc))
	copy(out, tc)
	sort.Ints(out)
	w := 1
	for _, v := range out[1:] {
		if v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// receiverOnly reports whether every requirement sits on position 0 — the
// success condition at a source method, whose receiver is the
// deserialized (attacker-built) object.
func (tc TC) receiverOnly() bool {
	for _, v := range tc {
		if v != 0 {
			return false
		}
	}
	return true
}

// String renders e.g. "[0,2]".
func (tc TC) String() string {
	parts := make([]string, len(tc))
	for i, v := range tc {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// traverse implements Formula 4: TC_next = {PP[x] | x ∈ TC}. The second
// return is false when any required position is uncontrollable (∞),
// which rejects the edge (Algorithm 2 lines 4–7).
func traverse(tc TC, pp []int) (TC, bool) {
	next := make(TC, 0, len(tc))
	for _, x := range tc {
		if x < 0 || x >= len(pp) {
			return nil, false // position not bound at this call: treat as ∞
		}
		w := pp[x]
		if w < 0 {
			return nil, false // ∞
		}
		next = append(next, w)
	}
	return next.normalize(), true
}

// Chain is one discovered gadget chain, source first (the presentation
// order of Table I).
type Chain struct {
	// Nodes are method node IDs, source → … → sink.
	Nodes []graphdb.ID
	// Names are the corresponding method NAME properties.
	Names []string
	// SinkType is the sink's SINK_TYPE property (EXEC, JNDI, …).
	SinkType string
	// TCs[i] is the Trigger_Condition required at Nodes[i] (same order as
	// Nodes); TCs[len-1] is the sink's own TC.
	TCs []TC
	// Edges[i] is the relationship type the search stepped across between
	// Nodes[i] and Nodes[i+1] — CALL or ALIAS (DISPATCH edges seed entry
	// points but are never traversed). len(Edges) == len(Nodes)-1.
	Edges []string
}

// Key returns a stable identity for deduplication.
func (c Chain) Key() string { return strings.Join(c.Names, " -> ") }

// String renders the chain one frame per line, like Table I.
func (c Chain) String() string {
	var sb strings.Builder
	for i, name := range c.Names {
		switch i {
		case 0:
			sb.WriteString("(source)")
		case len(c.Names) - 1:
			sb.WriteString("(sink)")
		}
		sb.WriteString(name)
		if i < len(c.Names)-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Options tunes the search.
type Options struct {
	// MaxDepth is the maximum path length in nodes (Algorithm 3's depth);
	// zero means the default of 12.
	MaxDepth int
	// MaxChains caps the number of reported chains; zero means 10000.
	MaxChains int
	// VisitBudget caps total edge expansions as an explosion guard; zero
	// means 2,000,000.
	VisitBudget int
	// SinkNodes restricts the search to these sink nodes; nil means every
	// node tagged IS_SINK.
	SinkNodes []graphdb.ID
	// SourceFilter, when non-nil, decides whether a node terminates a
	// chain; nil accepts any node tagged IS_SOURCE.
	SourceFilter func(db *graphdb.DB, node graphdb.ID) bool
	// SourceMethodNames, when non-empty, accepts exactly the nodes whose
	// METHOD_NAME is one of these values (nodes without a string-typed
	// METHOD_NAME read as ""). It takes precedence over SourceFilter and
	// is handled natively by both engines against the compiled index's
	// METHOD_NAME column, so it works on database-free (mmap-viewed)
	// indexes where a SourceFilter callback would have no store to read.
	SourceMethodNames []string
	// DispatchSources additionally accepts any node with an incoming
	// DISPATCH edge as a chain source, OR-ed with the other source tests —
	// the serialization-aware mode: entry points derived by the
	// serialization-dispatch pass terminate chains without being tagged
	// IS_SOURCE. No effect on graphs built without the pass.
	DispatchSources bool
	// SinkTC, when non-nil, overrides the Trigger_Condition of every
	// selected sink seed — the researcher-driven "suppose this position
	// were the dangerous one" workflow (RQ4) on stored graphs, which are
	// immutable and so cannot have their TRIGGER_CONDITION properties
	// rewritten. It also allows seeding from nodes that carry no
	// TRIGGER_CONDITION at all. Positions are normalized before use.
	SinkTC []int
	// Workers bounds how many sink seeds are searched concurrently. Zero
	// selects runtime.GOMAXPROCS(0); 1 runs the exact sequential path.
	// Results are merged in sink order then per-sink discovery order, so
	// chains, their order, and MaxChains truncation are identical at
	// every worker count as long as the visit budget is not exhausted
	// (an exhausted budget stops workers at a racy cut-off; Truncated
	// reports it either way).
	Workers int
}

const (
	defaultMaxDepth    = 12
	defaultMaxChains   = 10000
	defaultVisitBudget = 2_000_000
)

func (opts *Options) applyDefaults() {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = defaultMaxDepth
	}
	if opts.MaxChains <= 0 {
		opts.MaxChains = defaultMaxChains
	}
	if opts.VisitBudget <= 0 {
		opts.VisitBudget = defaultVisitBudget
	}
}

// Result is the outcome of a Find run.
type Result struct {
	Chains []Chain
	// Truncated is true when a cap (MaxChains/VisitBudget) stopped the
	// search early.
	Truncated bool
	// Expansions counts edge traversals performed. The indexed engine
	// skips subsearches it has proven dead, so this is typically lower
	// than FindGeneric's count for the same graph.
	Expansions int
}

// seed is one validated sink to search from.
type seed struct {
	sink     graphdb.ID
	tc       TC
	sinkType string
}

// collectSeeds resolves and validates every sink seed up front so a bad
// sink is reported deterministically (first in sink order) before any
// worker starts.
func collectSeeds(db *graphdb.DB, opts Options) ([]seed, error) {
	sinks := opts.SinkNodes
	if sinks == nil {
		sinks = db.FindNodes(cpg.LabelMethod, cpg.PropIsSink, true)
	}
	seeds := make([]seed, len(sinks))
	for i, sink := range sinks {
		var tc TC
		if opts.SinkTC != nil {
			tc = append(TC(nil), opts.SinkTC...).normalize()
		} else {
			tcProp, ok := db.NodeProp(sink, cpg.PropTriggerCondition)
			if !ok {
				return nil, fmt.Errorf("pathfinder: sink node %d has no %s", sink, cpg.PropTriggerCondition)
			}
			tcInts, ok := tcProp.([]int)
			if !ok {
				return nil, fmt.Errorf("pathfinder: sink node %d %s has type %T", sink, cpg.PropTriggerCondition, tcProp)
			}
			// Copy before normalizing: the prop slice belongs to the store,
			// and concurrent searches over a shared (frozen) store must not
			// sort it in place.
			tc = append(TC(nil), tcInts...).normalize()
		}
		sinkType, _ := db.NodeProp(sink, cpg.PropSinkType)
		st, _ := sinkType.(string)
		seeds[i] = seed{sink: sink, tc: tc, sinkType: st}
	}
	return seeds, nil
}

// sinkSearch is what one per-seed finder hands to the canonical merge.
type sinkSearch struct {
	chains  []Chain
	stopped bool
}

// merge combines per-sink results canonically: sink order, then per-sink
// discovery order, deduplicated, truncated at MaxChains.
func merge(outs []sinkSearch, opts Options, budget *visitBudget) *Result {
	res := &Result{Expansions: int(budget.used.Load())}
	seen := make(map[string]bool)
	for _, f := range outs {
		for _, chain := range f.chains {
			if seen[chain.Key()] {
				continue
			}
			if len(res.Chains) >= opts.MaxChains {
				res.Truncated = true
				break
			}
			seen[chain.Key()] = true
			res.Chains = append(res.Chains, chain)
		}
		if len(res.Chains) >= opts.MaxChains || f.stopped {
			res.Truncated = true
		}
	}
	if budget.blown.Load() {
		res.Truncated = true
	}
	return res
}

// Find runs the gadget-chain search over a built CPG database, traversing
// the compiled search index (built lazily and cached on the store; see
// searchindex.For). Each sink seed is searched independently
// (concurrently when Options.Workers allows) against a shared visit
// budget; per-sink results are merged in sink order, deduplicated, and
// truncated at MaxChains, so the output is canonical regardless of
// completion order.
func Find(db *graphdb.DB, opts Options) (*Result, error) {
	opts.applyDefaults()
	seeds, err := collectSeeds(db, opts)
	if err != nil {
		return nil, err
	}
	return findWithSeeds(searchindex.For(db), db, seeds, opts), nil
}

// FindIndex runs the same search as Find directly over a compiled
// search index, resolving seeds from the index's columns instead of the
// property store. This is the zero-copy serving path: an index viewed
// out of an mmap'd snapshot has no backing database at all (DB() is
// nil), and every option except the callback-based SourceFilter — use
// SourceMethodNames instead — works identically. For an index compiled
// from a live store, FindIndex(searchindex.For(db), opts) and
// Find(db, opts) produce byte-identical results.
func FindIndex(ix *searchindex.Index, opts Options) (*Result, error) {
	opts.applyDefaults()
	if opts.SourceFilter != nil && len(opts.SourceMethodNames) == 0 && ix.DB() == nil {
		return nil, fmt.Errorf("pathfinder: SourceFilter needs a backing store, which this index does not carry (use SourceMethodNames)")
	}
	seeds, err := collectSeedsIndex(ix, opts)
	if err != nil {
		return nil, err
	}
	return findWithSeeds(ix, ix.DB(), seeds, opts), nil
}

// findWithSeeds fans validated seeds out to per-seed indexed finders
// against one shared visit budget and merges canonically.
func findWithSeeds(ix *searchindex.Index, db *graphdb.DB, seeds []seed, opts Options) *Result {
	budget := &visitBudget{limit: int64(opts.VisitBudget)}
	outs := parallel.Map(opts.Workers, seeds, func(_ int, s seed) sinkSearch {
		f := newIndexedFinder(ix, db, opts, budget)
		return f.search(s)
	})
	return merge(outs, opts, budget)
}

// sourceNameSet builds the SourceMethodNames lookup (nil when unused).
func sourceNameSet(opts Options) map[string]bool {
	if len(opts.SourceMethodNames) == 0 {
		return nil
	}
	want := make(map[string]bool, len(opts.SourceMethodNames))
	for _, n := range opts.SourceMethodNames {
		want[n] = true
	}
	return want
}

// collectSeedsIndex is collectSeeds against the compiled index: the
// default sink set is every Method node with its IS_SINK bit set, in
// ascending node order (which is ascending store-ID order — the same
// order the property store yields). Trigger_Conditions come from the
// index's interned TC column, already normalized at compile time.
func collectSeedsIndex(ix *searchindex.Index, opts Options) ([]seed, error) {
	var seeds []seed
	addSeed := func(sink graphdb.ID, v int32) error {
		var tc TC
		if opts.SinkTC != nil {
			tc = append(TC(nil), opts.SinkTC...).normalize()
		} else {
			ref := int32(-1)
			if v >= 0 {
				ref = ix.TCRef(v)
			}
			if ref < 0 {
				return fmt.Errorf("pathfinder: sink node %d has no %s", sink, cpg.PropTriggerCondition)
			}
			for _, x := range ix.Ints(ref) {
				tc = append(tc, int(x))
			}
		}
		st := ""
		if v >= 0 {
			st = ix.SinkType(v)
		}
		seeds = append(seeds, seed{sink: sink, tc: tc, sinkType: st})
		return nil
	}
	if opts.SinkNodes != nil {
		for _, sink := range opts.SinkNodes {
			if err := addSeed(sink, ix.IdxOf(sink)); err != nil {
				return nil, err
			}
		}
		return seeds, nil
	}
	method := ix.LabelBits(cpg.LabelMethod)
	for _, v := range andBitsets(method, ix.SinkBits(), ix.NumNodes()) {
		if err := addSeed(ix.IDOf(v), v); err != nil {
			return nil, err
		}
	}
	return seeds, nil
}

// andBitsets returns the node indexes set in both bitsets, ascending.
// A nil a means "no nodes" (label absent), matching LabelBits.
func andBitsets(a, b []uint64, n int) []int32 {
	var out []int32
	if a == nil || b == nil {
		return out
	}
	for w := 0; w < len(a) && w < len(b); w++ {
		bits := a[w] & b[w]
		for bits != 0 {
			v := int32(w<<6) + int32(bits64.TrailingZeros64(bits))
			if int(v) >= n {
				break
			}
			out = append(out, v)
			bits &= bits - 1
		}
	}
	return out
}

// visitBudget is the shared expansion counter: every worker draws from
// the same pool, so total work is bounded exactly as in the sequential
// search.
type visitBudget struct {
	limit int64
	used  atomic.Int64
	blown atomic.Bool
}

// spend consumes one expansion; true means the search must stop.
func (b *visitBudget) spend() bool {
	if b.used.Add(1) > b.limit {
		b.blown.Store(true)
		return true
	}
	return b.blown.Load()
}
