// Package pathfinder is the reproduction of the tabby-path-finder Neo4j
// plugin (paper §III-D): a depth-first traversal that starts at sink
// methods and walks the CPG *backwards* — against CALL edges and across
// ALIAS edges — propagating the Trigger_Condition through each edge's
// Polluted_Position (Formula 4, Algorithms 2 and 3) until it reaches a
// deserialization source method.
package pathfinder

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"tabby/internal/cpg"
	"tabby/internal/graphdb"
	"tabby/internal/parallel"
)

// TC is a Trigger_Condition: the set of call positions (0 = receiver,
// i = argument i) that must be attacker-controllable.
type TC []int

// normalize sorts and dedupes the positions.
func (tc TC) normalize() TC {
	if len(tc) == 0 {
		return tc
	}
	sort.Ints(tc)
	out := tc[:1]
	for _, v := range tc[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// receiverOnly reports whether every requirement sits on position 0 — the
// success condition at a source method, whose receiver is the
// deserialized (attacker-built) object.
func (tc TC) receiverOnly() bool {
	for _, v := range tc {
		if v != 0 {
			return false
		}
	}
	return true
}

// String renders e.g. "[0,2]".
func (tc TC) String() string {
	parts := make([]string, len(tc))
	for i, v := range tc {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// traverse implements Formula 4: TC_next = {PP[x] | x ∈ TC}. The second
// return is false when any required position is uncontrollable (∞),
// which rejects the edge (Algorithm 2 lines 4–7).
func traverse(tc TC, pp []int) (TC, bool) {
	next := make(TC, 0, len(tc))
	for _, x := range tc {
		if x < 0 || x >= len(pp) {
			return nil, false // position not bound at this call: treat as ∞
		}
		w := pp[x]
		if w < 0 {
			return nil, false // ∞
		}
		next = append(next, w)
	}
	return next.normalize(), true
}

// Chain is one discovered gadget chain, source first (the presentation
// order of Table I).
type Chain struct {
	// Nodes are method node IDs, source → … → sink.
	Nodes []graphdb.ID
	// Names are the corresponding method NAME properties.
	Names []string
	// SinkType is the sink's SINK_TYPE property (EXEC, JNDI, …).
	SinkType string
	// TCs[i] is the Trigger_Condition required at Nodes[i] (same order as
	// Nodes); TCs[len-1] is the sink's own TC.
	TCs []TC
}

// Key returns a stable identity for deduplication.
func (c Chain) Key() string { return strings.Join(c.Names, " -> ") }

// String renders the chain one frame per line, like Table I.
func (c Chain) String() string {
	var sb strings.Builder
	for i, name := range c.Names {
		switch i {
		case 0:
			sb.WriteString("(source)")
		case len(c.Names) - 1:
			sb.WriteString("(sink)")
		}
		sb.WriteString(name)
		if i < len(c.Names)-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Options tunes the search.
type Options struct {
	// MaxDepth is the maximum path length in nodes (Algorithm 3's depth);
	// zero means the default of 12.
	MaxDepth int
	// MaxChains caps the number of reported chains; zero means 10000.
	MaxChains int
	// VisitBudget caps total edge expansions as an explosion guard; zero
	// means 2,000,000.
	VisitBudget int
	// SinkNodes restricts the search to these sink nodes; nil means every
	// node tagged IS_SINK.
	SinkNodes []graphdb.ID
	// SourceFilter, when non-nil, decides whether a node terminates a
	// chain; nil accepts any node tagged IS_SOURCE.
	SourceFilter func(db *graphdb.DB, node graphdb.ID) bool
	// SinkTC, when non-nil, overrides the Trigger_Condition of every
	// selected sink seed — the researcher-driven "suppose this position
	// were the dangerous one" workflow (RQ4) on stored graphs, which are
	// immutable and so cannot have their TRIGGER_CONDITION properties
	// rewritten. It also allows seeding from nodes that carry no
	// TRIGGER_CONDITION at all. Positions are normalized before use.
	SinkTC []int
	// Workers bounds how many sink seeds are searched concurrently. Zero
	// selects runtime.GOMAXPROCS(0); 1 runs the exact sequential path.
	// Results are merged in sink order then per-sink discovery order, so
	// chains, their order, and MaxChains truncation are identical at
	// every worker count as long as the visit budget is not exhausted
	// (an exhausted budget stops workers at a racy cut-off; Truncated
	// reports it either way).
	Workers int
}

const (
	defaultMaxDepth    = 12
	defaultMaxChains   = 10000
	defaultVisitBudget = 2_000_000
)

// Result is the outcome of a Find run.
type Result struct {
	Chains []Chain
	// Truncated is true when a cap (MaxChains/VisitBudget) stopped the
	// search early.
	Truncated bool
	// Expansions counts edge traversals performed.
	Expansions int
}

// Find runs the gadget-chain search over a built CPG database. Each sink
// seed is searched independently (concurrently when Options.Workers
// allows) against a shared visit budget; per-sink results are merged in
// sink order, deduplicated, and truncated at MaxChains, so the output is
// canonical regardless of completion order.
func Find(db *graphdb.DB, opts Options) (*Result, error) {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = defaultMaxDepth
	}
	if opts.MaxChains <= 0 {
		opts.MaxChains = defaultMaxChains
	}
	if opts.VisitBudget <= 0 {
		opts.VisitBudget = defaultVisitBudget
	}
	sinks := opts.SinkNodes
	if sinks == nil {
		sinks = db.FindNodes(cpg.LabelMethod, cpg.PropIsSink, true)
	}

	// Validate every seed up front so a bad sink is reported
	// deterministically (first in sink order) before any worker starts.
	type seed struct {
		sink     graphdb.ID
		tc       TC
		sinkType string
	}
	seeds := make([]seed, len(sinks))
	for i, sink := range sinks {
		var tc TC
		if opts.SinkTC != nil {
			tc = append(TC(nil), opts.SinkTC...).normalize()
		} else {
			tcProp, ok := db.NodeProp(sink, cpg.PropTriggerCondition)
			if !ok {
				return nil, fmt.Errorf("pathfinder: sink node %d has no %s", sink, cpg.PropTriggerCondition)
			}
			tcInts, ok := tcProp.([]int)
			if !ok {
				return nil, fmt.Errorf("pathfinder: sink node %d %s has type %T", sink, cpg.PropTriggerCondition, tcProp)
			}
			// Copy before normalizing: the prop slice belongs to the store,
			// and concurrent searches over a shared (frozen) store must not
			// sort it in place.
			tc = append(TC(nil), tcInts...).normalize()
		}
		sinkType, _ := db.NodeProp(sink, cpg.PropSinkType)
		st, _ := sinkType.(string)
		seeds[i] = seed{sink: sink, tc: tc, sinkType: st}
	}

	budget := &visitBudget{limit: int64(opts.VisitBudget)}
	finders := parallel.Map(opts.Workers, seeds, func(_ int, s seed) *finder {
		f := &finder{db: db, opts: opts, budget: budget, seen: make(map[string]bool)}
		f.dfs([]graphdb.ID{s.sink}, map[graphdb.ID]bool{s.sink: true}, []TC{s.tc}, s.sinkType)
		return f
	})

	// Canonical merge: sink order, then per-sink discovery order.
	res := &Result{Expansions: int(budget.used.Load())}
	seen := make(map[string]bool)
	for _, f := range finders {
		for _, chain := range f.chains {
			if seen[chain.Key()] {
				continue
			}
			if len(res.Chains) >= opts.MaxChains {
				res.Truncated = true
				break
			}
			seen[chain.Key()] = true
			res.Chains = append(res.Chains, chain)
		}
		if len(res.Chains) >= opts.MaxChains || f.stopped {
			res.Truncated = true
		}
	}
	if budget.blown.Load() {
		res.Truncated = true
	}
	return res, nil
}

// visitBudget is the shared expansion counter: every worker draws from
// the same pool, so total work is bounded exactly as in the sequential
// search.
type visitBudget struct {
	limit int64
	used  atomic.Int64
	blown atomic.Bool
}

// spend consumes one expansion; true means the search must stop.
func (b *visitBudget) spend() bool {
	if b.used.Add(1) > b.limit {
		b.blown.Store(true)
		return true
	}
	return b.blown.Load()
}

type finder struct {
	db      *graphdb.DB
	opts    Options
	budget  *visitBudget
	chains  []Chain
	seen    map[string]bool
	stopped bool
}

// isSource is the Evaluator's source test.
func (f *finder) isSource(node graphdb.ID) bool {
	if f.opts.SourceFilter != nil {
		return f.opts.SourceFilter(f.db, node)
	}
	v, ok := f.db.NodeProp(node, cpg.PropIsSource)
	b, _ := v.(bool)
	return ok && b
}

// dfs explores backwards from the sink. path[0] is the sink; the last
// element is the current frontier node. tcs parallels path.
func (f *finder) dfs(path []graphdb.ID, onPath map[graphdb.ID]bool, tcs []TC, sinkType string) {
	if f.stopped {
		return
	}
	node := path[len(path)-1]
	tc := tcs[len(tcs)-1]

	// Evaluator (Algorithm 3): a source node terminates the path as a
	// gadget chain. Every remaining requirement is satisfiable there: the
	// receiver is the deserialized (attacker-built) object and the
	// parameters are framework-supplied deserialization state (the
	// ObjectInputStream of Fig. 1), all attacker-derived.
	if len(path) > 1 && f.isSource(node) {
		f.record(path, tcs, sinkType)
		return
	}
	if len(path) >= f.opts.MaxDepth {
		return
	}

	// Expander (Algorithm 2), CALL case: walk to callers of this node.
	for _, relID := range f.db.Rels(node, graphdb.DirIn, cpg.RelCall) {
		if f.spendBudget() {
			return
		}
		rel := f.db.Rel(relID)
		caller := rel.Start
		if onPath[caller] {
			continue
		}
		ppProp, ok := rel.Props[cpg.PropPollutedPosition]
		if !ok {
			continue
		}
		pp, ok := ppProp.([]int)
		if !ok {
			continue
		}
		next, ok := traverse(tc, pp)
		if !ok {
			continue // Expander rejected: a required position became ∞
		}
		f.step(path, onPath, tcs, caller, next, sinkType)
	}

	// Expander, ALIAS case: TC passes through unchanged, both directions
	// (override → declaration and declaration → override).
	for _, relID := range f.db.Rels(node, graphdb.DirBoth, cpg.RelAlias) {
		if f.spendBudget() {
			return
		}
		rel := f.db.Rel(relID)
		other := rel.Other(node)
		if onPath[other] {
			continue
		}
		f.step(path, onPath, tcs, other, tc, sinkType)
	}
}

func (f *finder) step(path []graphdb.ID, onPath map[graphdb.ID]bool, tcs []TC, next graphdb.ID, nextTC TC, sinkType string) {
	onPath[next] = true
	f.dfs(append(path, next), onPath, append(tcs, nextTC), sinkType)
	delete(onPath, next)
}

// spendBudget draws one expansion from the shared pool; true stops this
// sink's search (own or any worker's budget exhaustion, or the per-sink
// MaxChains latch set by record).
func (f *finder) spendBudget() bool {
	if f.budget.spend() {
		f.stopped = true
	}
	return f.stopped
}

// record reverses the sink-rooted path into source-first order and
// deduplicates.
func (f *finder) record(path []graphdb.ID, tcs []TC, sinkType string) {
	n := len(path)
	chain := Chain{
		Nodes:    make([]graphdb.ID, n),
		Names:    make([]string, n),
		TCs:      make([]TC, n),
		SinkType: sinkType,
	}
	for i := 0; i < n; i++ {
		chain.Nodes[i] = path[n-1-i]
		chain.TCs[i] = append(TC(nil), tcs[n-1-i]...)
		if v, ok := f.db.NodeProp(path[n-1-i], cpg.PropName); ok {
			if s, ok := v.(string); ok {
				chain.Names[i] = s
			}
		}
	}
	key := chain.Key()
	if f.seen[key] {
		return
	}
	f.seen[key] = true
	f.chains = append(f.chains, chain)
	if len(f.chains) >= f.opts.MaxChains {
		f.stopped = true
	}
}
