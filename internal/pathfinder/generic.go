package pathfinder

import (
	"tabby/internal/cpg"
	"tabby/internal/graphdb"
	"tabby/internal/parallel"
)

// This file keeps the original traversal engine — the one that walks the
// generic property store relationship by relationship — as the executable
// reference implementation. It pays graphdb's full read costs on every
// expansion (a lock acquisition and slice allocation in Rels, a deep
// property-map clone in Rel, repeated any→[]int assertions), which is
// exactly why Find now runs on the compiled search index instead. It is
// retained, not deleted, because (a) the equivalence suite pins the
// indexed engine's chains/order/truncation to it on the full corpus, and
// (b) the pathfinder benchmark reports both engines side by side, so an
// index regression is visible as a vanishing speedup rather than a silent
// slowdown.

// FindGeneric runs the same search as Find directly against the generic
// property store, without the compiled index or dead-state memoization.
// Chains, their order, and truncation match Find whenever the visit
// budget is not exhausted. Prefer Find everywhere except equivalence
// testing and benchmarking.
func FindGeneric(db *graphdb.DB, opts Options) (*Result, error) {
	opts.applyDefaults()
	seeds, err := collectSeeds(db, opts)
	if err != nil {
		return nil, err
	}
	budget := &visitBudget{limit: int64(opts.VisitBudget)}
	outs := parallel.Map(opts.Workers, seeds, func(_ int, s seed) sinkSearch {
		f := &finder{db: db, opts: opts, budget: budget, seen: make(map[string]bool), srcWant: sourceNameSet(opts)}
		f.dfs([]graphdb.ID{s.sink}, map[graphdb.ID]bool{s.sink: true}, []TC{s.tc}, []string{""}, s.sinkType)
		return sinkSearch{chains: f.chains, stopped: f.stopped}
	})
	return merge(outs, opts, budget), nil
}

type finder struct {
	db      *graphdb.DB
	opts    Options
	budget  *visitBudget
	chains  []Chain
	seen    map[string]bool
	srcWant map[string]bool // SourceMethodNames lookup; nil when unused
	stopped bool
}

// isSource is the Evaluator's source test.
func (f *finder) isSource(node graphdb.ID) bool {
	if f.opts.DispatchSources && len(f.db.Rels(node, graphdb.DirIn, cpg.RelDispatch)) > 0 {
		return true
	}
	if f.srcWant != nil {
		v, _ := f.db.NodeProp(node, cpg.PropMethodName)
		name, _ := v.(string)
		return f.srcWant[name]
	}
	if f.opts.SourceFilter != nil {
		return f.opts.SourceFilter(f.db, node)
	}
	v, ok := f.db.NodeProp(node, cpg.PropIsSource)
	b, _ := v.(bool)
	return ok && b
}

// dfs explores backwards from the sink. path[0] is the sink; the last
// element is the current frontier node. tcs and kinds parallel path
// (kinds[i] is the edge type between path[i] and path[i-1]; kinds[0] is
// unused).
func (f *finder) dfs(path []graphdb.ID, onPath map[graphdb.ID]bool, tcs []TC, kinds []string, sinkType string) {
	if f.stopped {
		return
	}
	node := path[len(path)-1]
	tc := tcs[len(tcs)-1]

	// Evaluator (Algorithm 3): a source node terminates the path as a
	// gadget chain. Every remaining requirement is satisfiable there: the
	// receiver is the deserialized (attacker-built) object and the
	// parameters are framework-supplied deserialization state (the
	// ObjectInputStream of Fig. 1), all attacker-derived.
	if len(path) > 1 && f.isSource(node) {
		f.record(path, tcs, kinds, sinkType)
		return
	}
	if len(path) >= f.opts.MaxDepth {
		return
	}

	// Expander (Algorithm 2), CALL case: walk to callers of this node.
	for _, relID := range f.db.Rels(node, graphdb.DirIn, cpg.RelCall) {
		if f.spendBudget() {
			return
		}
		rel := f.db.Rel(relID)
		caller := rel.Start
		if onPath[caller] {
			continue
		}
		ppProp, ok := rel.Props[cpg.PropPollutedPosition]
		if !ok {
			continue
		}
		pp, ok := ppProp.([]int)
		if !ok {
			continue
		}
		next, ok := traverse(tc, pp)
		if !ok {
			continue // Expander rejected: a required position became ∞
		}
		f.step(path, onPath, tcs, kinds, caller, next, cpg.RelCall, sinkType)
	}

	// Expander, ALIAS case: TC passes through unchanged, both directions
	// (override → declaration and declaration → override).
	for _, relID := range f.db.Rels(node, graphdb.DirBoth, cpg.RelAlias) {
		if f.spendBudget() {
			return
		}
		rel := f.db.Rel(relID)
		other := rel.Other(node)
		if onPath[other] {
			continue
		}
		f.step(path, onPath, tcs, kinds, other, tc, cpg.RelAlias, sinkType)
	}
}

func (f *finder) step(path []graphdb.ID, onPath map[graphdb.ID]bool, tcs []TC, kinds []string, next graphdb.ID, nextTC TC, kind string, sinkType string) {
	onPath[next] = true
	f.dfs(append(path, next), onPath, append(tcs, nextTC), append(kinds, kind), sinkType)
	delete(onPath, next)
}

// spendBudget draws one expansion from the shared pool; true stops this
// sink's search (own or any worker's budget exhaustion, or the per-sink
// MaxChains latch set by record).
func (f *finder) spendBudget() bool {
	if f.budget.spend() {
		f.stopped = true
	}
	return f.stopped
}

// record reverses the sink-rooted path into source-first order and
// deduplicates.
func (f *finder) record(path []graphdb.ID, tcs []TC, kinds []string, sinkType string) {
	n := len(path)
	chain := Chain{
		Nodes:    make([]graphdb.ID, n),
		Names:    make([]string, n),
		TCs:      make([]TC, n),
		Edges:    make([]string, n-1),
		SinkType: sinkType,
	}
	for i := 0; i < n; i++ {
		chain.Nodes[i] = path[n-1-i]
		chain.TCs[i] = append(TC(nil), tcs[n-1-i]...)
		if v, ok := f.db.NodeProp(path[n-1-i], cpg.PropName); ok {
			if s, ok := v.(string); ok {
				chain.Names[i] = s
			}
		}
		if i < n-1 {
			chain.Edges[i] = kinds[n-1-i]
		}
	}
	key := chain.Key()
	if f.seen[key] {
		return
	}
	f.seen[key] = true
	f.chains = append(f.chains, chain)
	if len(f.chains) >= f.opts.MaxChains {
		f.stopped = true
	}
}
