package pathfinder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tabby/internal/cpg"
	"tabby/internal/graphdb"
)

// genRandomCPG builds a pseudo-random method graph: n nodes, some marked
// source/sink, CALL edges with random PPs and some ALIAS edges.
func genRandomCPG(seed int64) (*graphdb.DB, int) {
	rng := rand.New(rand.NewSource(seed))
	db := graphdb.New()
	n := 6 + rng.Intn(20)
	ids := make([]graphdb.ID, n)
	sinks := 0
	for i := range ids {
		props := graphdb.Props{
			"NAME":                   nodeName(i),
			cpg.PropIsSource:         rng.Intn(5) == 0,
			cpg.PropIsSink:           false,
			cpg.PropTriggerCondition: []int{rng.Intn(3)},
		}
		if rng.Intn(6) == 0 {
			props[cpg.PropIsSink] = true
			props[cpg.PropSinkType] = "EXEC"
			sinks++
		}
		ids[i] = db.CreateNode([]string{cpg.LabelMethod}, props)
	}
	edges := n * 2
	for e := 0; e < edges; e++ {
		from := ids[rng.Intn(n)]
		to := ids[rng.Intn(n)]
		if from == to {
			continue
		}
		if rng.Intn(4) == 0 {
			_, _ = db.CreateRel(cpg.RelAlias, from, to, nil)
			continue
		}
		pp := make([]int, 1+rng.Intn(3))
		for i := range pp {
			pp[i] = rng.Intn(4) - 1 // -1..2
		}
		_, _ = db.CreateRel(cpg.RelCall, from, to, graphdb.Props{cpg.PropPollutedPosition: pp})
	}
	return db, sinks
}

func nodeName(i int) string {
	return string(rune('A'+i%26)) + string(rune('0'+i/26))
}

// TestFindInvariantsQuick: on arbitrary graphs the search terminates and
// every chain is structurally sound: unique nodes, source head, sink
// tail, TC trace aligned, and no chain exceeds the depth bound.
func TestFindInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		db, _ := genRandomCPG(seed)
		const maxDepth = 6
		res, err := Find(db, Options{MaxDepth: maxDepth, MaxChains: 500, VisitBudget: 100_000})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		seen := make(map[string]bool)
		for _, c := range res.Chains {
			if len(c.Nodes) < 2 || len(c.Nodes) > maxDepth {
				t.Logf("seed %d: chain length %d out of bounds", seed, len(c.Nodes))
				return false
			}
			if len(c.TCs) != len(c.Nodes) || len(c.Names) != len(c.Nodes) {
				t.Logf("seed %d: trace misaligned", seed)
				return false
			}
			if v, _ := db.NodeProp(c.Nodes[0], cpg.PropIsSource); v != true {
				t.Logf("seed %d: head not source", seed)
				return false
			}
			if v, _ := db.NodeProp(c.Nodes[len(c.Nodes)-1], cpg.PropIsSink); v != true {
				t.Logf("seed %d: tail not sink", seed)
				return false
			}
			nodeSet := make(map[graphdb.ID]bool, len(c.Nodes))
			for _, id := range c.Nodes {
				if nodeSet[id] {
					t.Logf("seed %d: repeated node in chain", seed)
					return false
				}
				nodeSet[id] = true
			}
			if seen[c.Key()] {
				t.Logf("seed %d: duplicate chain emitted", seed)
				return false
			}
			seen[c.Key()] = true
			// Every non-final TC must be controllable (no ∞ survives the
			// Expander).
			for _, tc := range c.TCs {
				for _, v := range tc {
					if v < 0 {
						t.Logf("seed %d: ∞ leaked into a chain TC", seed)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFindDeterministicQuick: repeated searches over the same graph give
// identical chain sets in identical order.
func TestFindDeterministicQuick(t *testing.T) {
	f := func(seed int64) bool {
		db, _ := genRandomCPG(seed)
		r1, err := Find(db, Options{MaxDepth: 6})
		if err != nil {
			return false
		}
		r2, err := Find(db, Options{MaxDepth: 6})
		if err != nil {
			return false
		}
		if len(r1.Chains) != len(r2.Chains) {
			return false
		}
		for i := range r1.Chains {
			if r1.Chains[i].Key() != r2.Chains[i].Key() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
