package pathfinder

import (
	"tabby/internal/cpg"
	"tabby/internal/graphdb"
	"tabby/internal/searchindex"
)

// indexedFinder is the per-seed state of the compiled-index engine. Its
// steady-state DFS touches no locks and allocates nothing: the path and
// its Trigger_Conditions live in reusable int32 stacks, path membership
// is one bitset, every derived TC is interned into a finder-local pool
// (so comparing TCs is comparing refs), and subsearches proven dead are
// memoized by (node, TC ref) so re-converging walks skip them outright.
//
// Memoization is sound because path exclusion can only ever *block*
// expansions, never enable them: a (node, TC, remaining-depth) state that
// found no source with NO context-dependent interference is dead in every
// later context with the same or less depth to spend. A subsearch is
// therefore cached only when it is "clean-dead" — it found nothing AND
// was never tainted by an on-path collision skip, a budget stop, or the
// MaxChains latch. Depth cutoffs are not taint: the memo is keyed on the
// depth remaining (a state proven dead with R levels left is skipped only
// when ≤R levels are left), which makes the cutoff context-free.
type indexedFinder struct {
	ix     *searchindex.Index
	db     *graphdb.DB // only for the SourceFilter callback contract
	opts   Options
	budget *visitBudget

	maxDepth int
	sinkType string

	onPath []uint64 // node-index bitset of the current path
	path   []int32  // sink-rooted node stack (node indexes)
	tcRefs []int32  // parallel TC pool refs
	kinds  []int8   // parallel edge kinds: kinds[j] is the edge between path[j] and path[j-1]; kinds[0] unused

	pool    searchindex.IntPool // finder-local: seed + derived TCs
	scratch []int32             // reused by traverseInto
	memo    map[uint64]int32    // (node, TC ref) -> max remaining depth proven dead
	srcWant map[string]bool     // SourceMethodNames lookup; nil when unused

	chains  []Chain
	seen    map[string]bool
	stopped bool
}

func newIndexedFinder(ix *searchindex.Index, db *graphdb.DB, opts Options, budget *visitBudget) *indexedFinder {
	return &indexedFinder{
		ix:       ix,
		db:       db,
		opts:     opts,
		budget:   budget,
		maxDepth: opts.MaxDepth,
		onPath:   make([]uint64, (ix.NumNodes()+63)/64),
		memo:     make(map[uint64]int32),
		seen:     make(map[string]bool),
		srcWant:  sourceNameSet(opts),
	}
}

// search runs the backwards DFS from one validated sink seed.
func (f *indexedFinder) search(s seed) sinkSearch {
	v := f.ix.IdxOf(s.sink)
	if v < 0 {
		// Caller-supplied sink ID that is not a node (possible only with a
		// SinkTC override, which skips property validation): the generic
		// engine finds no edges and no source there, i.e. nothing.
		return sinkSearch{}
	}
	f.scratch = f.scratch[:0]
	for _, x := range s.tc { // already normalized by collectSeeds
		f.scratch = append(f.scratch, int32(x))
	}
	ref := f.pool.Intern(f.scratch)
	f.sinkType = s.sinkType
	f.setBit(v)
	f.path = append(f.path[:0], v)
	f.tcRefs = append(f.tcRefs[:0], ref)
	f.kinds = append(f.kinds[:0], 0)
	f.dfs(v, ref)
	return sinkSearch{chains: f.chains, stopped: f.stopped}
}

// dfs explores backwards from f.path's top node v, which carries
// Trigger_Condition tcRef. It reports whether the subtree recorded any
// chain and whether its exploration was tainted by context-dependent
// interference (on-path collision, budget stop, MaxChains latch); only
// untainted, chain-free subtrees are memoized as dead.
func (f *indexedFinder) dfs(v, tcRef int32) (found, tainted bool) {
	if f.stopped {
		return false, true
	}
	depth := len(f.path)

	// Evaluator (Algorithm 3): a source node terminates the path as a
	// gadget chain.
	if depth > 1 && f.isSource(v) {
		f.record()
		return true, false
	}
	if depth >= f.maxDepth {
		return false, false
	}

	remaining := int32(f.maxDepth - depth)
	key := uint64(uint32(v))<<32 | uint64(uint32(tcRef))
	if dead, ok := f.memo[key]; ok && dead >= remaining {
		return false, false
	}

	// Expander (Algorithm 2), CALL case: walk to callers of this node.
	// Budget is spent per edge slot before any rejection — including the
	// PP-less edges the index keeps with ref -1 — so expansion accounting
	// matches the generic engine edge for edge.
	lo, hi := f.ix.CallRange(v)
	for e := lo; e < hi; e++ {
		if f.spendBudget() {
			return found, true
		}
		caller, ppRef := f.ix.CallEdge(e)
		if f.onPathBit(caller) {
			tainted = true
			continue
		}
		if ppRef < 0 {
			continue
		}
		next, ok := f.traverseInto(tcRef, ppRef)
		if !ok {
			continue // Expander rejected: a required position became ∞
		}
		fnd, tnt := f.step(caller, next, stepCall)
		found = found || fnd
		tainted = tainted || tnt
	}

	// Expander, ALIAS case: TC passes through unchanged, both directions.
	lo, hi = f.ix.AliasRange(v)
	for e := lo; e < hi; e++ {
		if f.spendBudget() {
			return found, true
		}
		other := f.ix.AliasTarget(e)
		if f.onPathBit(other) {
			tainted = true
			continue
		}
		fnd, tnt := f.step(other, tcRef, stepAlias)
		found = found || fnd
		tainted = tainted || tnt
	}

	if !found && !tainted && f.memo[key] < remaining {
		f.memo[key] = remaining
	}
	return found, tainted
}

// Edge kinds the DFS steps across, indexing stepRel.
const (
	stepCall int8 = iota
	stepAlias
)

var stepRel = [...]string{cpg.RelCall, cpg.RelAlias}

func (f *indexedFinder) step(next, tcRef int32, kind int8) (found, tainted bool) {
	f.setBit(next)
	f.path = append(f.path, next)
	f.tcRefs = append(f.tcRefs, tcRef)
	f.kinds = append(f.kinds, kind)
	found, tainted = f.dfs(next, tcRef)
	f.path = f.path[:len(f.path)-1]
	f.tcRefs = f.tcRefs[:len(f.tcRefs)-1]
	f.kinds = f.kinds[:len(f.kinds)-1]
	f.clearBit(next)
	return found, tainted
}

// traverseInto is Formula 4 over interned arrays: TC_next = {PP[x] | x ∈
// TC}, built sorted and deduped directly into f.scratch, then interned.
// The tc slice aliases the pool buffer, which Intern may grow; it is
// fully consumed before Intern runs (and a stale slice would still hold
// valid content — the buffer is append-only).
func (f *indexedFinder) traverseInto(tcRef, ppRef int32) (int32, bool) {
	tc := f.pool.Get(tcRef)
	pp := f.ix.Ints(ppRef)
	f.scratch = f.scratch[:0]
	for _, x := range tc {
		if x < 0 || int(x) >= len(pp) {
			return -1, false // position not bound at this call: treat as ∞
		}
		w := pp[x]
		if w < 0 {
			return -1, false // ∞
		}
		f.scratch = insertSorted(f.scratch, w)
	}
	return f.pool.Intern(f.scratch), true
}

// insertSorted inserts v into the ascending run dst, dropping duplicates.
// TCs are tiny (call positions), so insertion beats a sort call.
func insertSorted(dst []int32, v int32) []int32 {
	i := len(dst)
	for i > 0 && dst[i-1] > v {
		i--
	}
	if i > 0 && dst[i-1] == v {
		return dst
	}
	dst = append(dst, 0)
	copy(dst[i+1:], dst[i:])
	dst[i] = v
	return dst
}

// isSource is the Evaluator's source test. SourceMethodNames resolves
// against the index's METHOD_NAME column (no store access — works on
// mmap-viewed indexes); the callback-based SourceFilter needs the
// generic store and is kept for embedders.
func (f *indexedFinder) isSource(v int32) bool {
	if f.opts.DispatchSources && f.ix.IsDispatchTarget(v) {
		return true
	}
	if f.srcWant != nil {
		return f.srcWant[f.ix.MethodName(v)]
	}
	if f.opts.SourceFilter != nil {
		return f.opts.SourceFilter(f.db, f.ix.IDOf(v))
	}
	return f.ix.IsSource(v)
}

// spendBudget draws one expansion from the shared pool; true stops this
// sink's search.
func (f *indexedFinder) spendBudget() bool {
	if f.budget.spend() {
		f.stopped = true
	}
	return f.stopped
}

func (f *indexedFinder) onPathBit(v int32) bool {
	return f.onPath[v>>6]&(1<<(uint(v)&63)) != 0
}

func (f *indexedFinder) setBit(v int32) {
	f.onPath[v>>6] |= 1 << (uint(v) & 63)
}

func (f *indexedFinder) clearBit(v int32) {
	f.onPath[v>>6] &^= 1 << (uint(v) & 63)
}

// record materializes the current sink-rooted path into a source-first
// Chain and deduplicates it. This is the cold path (chains are rare
// relative to expansions), so it allocates freely.
func (f *indexedFinder) record() {
	n := len(f.path)
	chain := Chain{
		Nodes:    make([]graphdb.ID, n),
		Names:    make([]string, n),
		TCs:      make([]TC, n),
		Edges:    make([]string, n-1),
		SinkType: f.sinkType,
	}
	for i := 0; i < n; i++ {
		v := f.path[n-1-i]
		chain.Nodes[i] = f.ix.IDOf(v)
		chain.Names[i] = f.ix.Name(v)
		ints := f.pool.Get(f.tcRefs[n-1-i])
		tc := make(TC, len(ints))
		for j, x := range ints {
			tc[j] = int(x)
		}
		chain.TCs[i] = tc
		if i < n-1 {
			// The edge between Nodes[i] and Nodes[i+1] is the one the DFS
			// pushed path[n-1-i] across.
			chain.Edges[i] = stepRel[f.kinds[n-1-i]]
		}
	}
	key := chain.Key()
	if f.seen[key] {
		return
	}
	f.seen[key] = true
	f.chains = append(f.chains, chain)
	if len(f.chains) >= f.opts.MaxChains {
		f.stopped = true
	}
}
