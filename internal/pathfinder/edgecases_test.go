package pathfinder

import (
	"reflect"
	"testing"

	"tabby/internal/cpg"
	"tabby/internal/graphdb"
)

// bothEngines runs the same search through the indexed engine (Find) and
// the generic reference engine (FindGeneric), failing unless their
// chains and truncation agree, and returns the indexed result.
func bothEngines(t *testing.T, db *graphdb.DB, opts Options) (*Result, *Result) {
	t.Helper()
	indexed, err := Find(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	generic, err := FindGeneric(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if indexed.Truncated != generic.Truncated {
		t.Errorf("truncated: indexed=%v generic=%v", indexed.Truncated, generic.Truncated)
	}
	if !reflect.DeepEqual(indexed.Chains, generic.Chains) {
		t.Errorf("chains diverge\n indexed %+v\n generic %+v", indexed.Chains, generic.Chains)
	}
	return indexed, generic
}

// TestPositionEdgeCasesBothEngines drives Formula 4's rejection paths
// through full searches: a PP too short for the TC (position unbound at
// the call → ∞), an explicit ∞ (-1) position, and a negative TC position,
// on each engine.
func TestPositionEdgeCasesBothEngines(t *testing.T) {
	db := graphdb.New()
	sink := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{
		cpg.PropName: "sink", cpg.PropIsSink: true, cpg.PropSinkType: "EXEC",
		cpg.PropTriggerCondition: []int{2}, // requires argument 2
	})
	short := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{cpg.PropName: "short", cpg.PropIsSource: true})
	inf := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{cpg.PropName: "inf", cpg.PropIsSource: true})
	good := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{cpg.PropName: "good", cpg.PropIsSource: true})
	mustRel(t, db, cpg.RelCall, short, sink, graphdb.Props{cpg.PropPollutedPosition: []int{0, 0}})     // len 2: position 2 unbound
	mustRel(t, db, cpg.RelCall, inf, sink, graphdb.Props{cpg.PropPollutedPosition: []int{0, 0, -1}})   // position 2 is ∞
	mustRel(t, db, cpg.RelCall, good, sink, graphdb.Props{cpg.PropPollutedPosition: []int{-1, -1, 0}}) // position 2 controllable

	res, _ := bothEngines(t, db, Options{MaxDepth: 4})
	if len(res.Chains) != 1 || res.Chains[0].Names[0] != "good" {
		t.Fatalf("chains = %+v, want exactly good→sink", res.Chains)
	}

	// A negative TC position can only arrive via the SinkTC override; both
	// engines must reject every expansion (negative index is ∞), quietly.
	res, _ = bothEngines(t, db, Options{MaxDepth: 4, SinkNodes: []graphdb.ID{sink}, SinkTC: []int{-3}})
	if len(res.Chains) != 0 {
		t.Fatalf("negative TC position yielded chains: %+v", res.Chains)
	}
}

// TestAliasExpansionCountParity pins expansion accounting on ALIAS edges:
// a single ALIAS rel is visible from both endpoints (DirBoth) but each
// endpoint expands it exactly once per visit, identically in both
// engines. The graph has no memoization re-convergence, so even
// Expansions — which the engines may legitimately disagree on elsewhere —
// must match exactly here.
func TestAliasExpansionCountParity(t *testing.T) {
	db := graphdb.New()
	sink := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{
		cpg.PropName: "sink", cpg.PropIsSink: true, cpg.PropSinkType: "EXEC",
		cpg.PropTriggerCondition: []int{0},
	})
	impl := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{cpg.PropName: "impl"})
	decl := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{cpg.PropName: "decl"})
	src := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{cpg.PropName: "src", cpg.PropIsSource: true})
	mustRel(t, db, cpg.RelCall, impl, sink, graphdb.Props{cpg.PropPollutedPosition: []int{0}})
	mustRel(t, db, cpg.RelAlias, impl, decl, nil)
	mustRel(t, db, cpg.RelCall, src, decl, graphdb.Props{cpg.PropPollutedPosition: []int{0}})

	indexed, generic := bothEngines(t, db, Options{MaxDepth: 5})
	if len(indexed.Chains) != 1 {
		t.Fatalf("chains = %+v, want src→decl→impl→sink", indexed.Chains)
	}
	if indexed.Expansions != generic.Expansions {
		t.Errorf("expansions: indexed=%d generic=%d (ALIAS slot double-counted?)",
			indexed.Expansions, generic.Expansions)
	}
}

// TestMaxChainsVsVisitBudgetFlags distinguishes the two truncation
// causes: the MaxChains latch stops recording but does not blow the
// budget, while an exhausted budget truncates even with zero chains
// found. Both engines must agree on each.
func TestMaxChainsVsVisitBudgetFlags(t *testing.T) {
	f := buildFig6(t)

	// MaxChains: one chain recorded, truncated, and the generous budget
	// is untouched as a cause (chains still reported).
	res, _ := bothEngines(t, f.db, Options{MaxDepth: 5, MaxChains: 1})
	if len(res.Chains) != 1 || !res.Truncated {
		t.Errorf("MaxChains=1: chains=%d truncated=%v, want 1/true", len(res.Chains), res.Truncated)
	}

	// VisitBudget too small to reach any source: truncated with nothing
	// found.
	res, _ = bothEngines(t, f.db, Options{MaxDepth: 5, VisitBudget: 1})
	if len(res.Chains) != 0 || !res.Truncated {
		t.Errorf("VisitBudget=1: chains=%d truncated=%v, want 0/true", len(res.Chains), res.Truncated)
	}

	// Neither cap hit: not truncated.
	res, _ = bothEngines(t, f.db, Options{MaxDepth: 4})
	if res.Truncated {
		t.Error("uncapped search reported truncation")
	}
}

// TestSinkTCOverrideOnBareNode seeds the search from a node that carries
// no TRIGGER_CONDITION at all — only possible with the SinkTC override,
// which skips property validation (the RQ4 what-if workflow on stored
// graphs).
func TestSinkTCOverrideOnBareNode(t *testing.T) {
	db := graphdb.New()
	bare := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{cpg.PropName: "bare"})
	src := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{cpg.PropName: "src", cpg.PropIsSource: true})
	mustRel(t, db, cpg.RelCall, src, bare, graphdb.Props{cpg.PropPollutedPosition: []int{0, 0}})

	// Without the override the seed fails validation.
	if _, err := Find(db, Options{SinkNodes: []graphdb.ID{bare}}); err == nil {
		t.Fatal("bare sink without SinkTC must error")
	}

	// With it, both engines search from the bare node; the override is
	// normalized ([1,0,1] → [0,1]) before Formula 4 applies.
	res, _ := bothEngines(t, db, Options{
		MaxDepth: 4, SinkNodes: []graphdb.ID{bare}, SinkTC: []int{1, 0, 1},
	})
	if len(res.Chains) != 1 || res.Chains[0].Names[0] != "src" {
		t.Fatalf("chains = %+v, want src→bare", res.Chains)
	}
	if got := res.Chains[0].TCs[len(res.Chains[0].TCs)-1]; !reflect.DeepEqual(got, TC{0, 1}) {
		t.Errorf("seed TC = %v, want normalized [0 1]", got)
	}
	// SinkType is empty (the node has none), not an error.
	if res.Chains[0].SinkType != "" {
		t.Errorf("sink type = %q, want empty", res.Chains[0].SinkType)
	}
}

// TestNormalizeDoesNotMutateBacking is the regression test for the
// copy-on-write fix: normalize() used to sort its receiver in place,
// corrupting property slices owned by a shared (possibly frozen) store
// when two TCs aliased one backing array.
func TestNormalizeDoesNotMutateBacking(t *testing.T) {
	backing := []int{3, 1, 2, 1}
	a := TC(backing[:3]) // [3 1 2]
	b := TC(backing[1:]) // [1 2 1]

	na := a.normalize()
	nb := b.normalize()

	if !reflect.DeepEqual(backing, []int{3, 1, 2, 1}) {
		t.Fatalf("normalize mutated the shared backing array: %v", backing)
	}
	if !reflect.DeepEqual(na, TC{1, 2, 3}) || !reflect.DeepEqual(nb, TC{1, 2}) {
		t.Errorf("normalize results: %v, %v", na, nb)
	}

	// Already-normal input comes back as-is (no pointless copy).
	c := TC{0, 2, 5}
	if nc := c.normalize(); &nc[0] != &c[0] {
		t.Error("normalize copied an already-normal TC")
	}
}
