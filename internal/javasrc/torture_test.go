package javasrc

import (
	"strings"
	"testing"
	"testing/quick"

	"tabby/internal/java"
	"tabby/internal/jimple"
)

// tortureSource exercises every construct of the mini-Java subset in one
// compilation unit.
const tortureSource = `
package torture;

import java.io.Serializable;

public interface Visitor extends Serializable {
    Object visit(Object node);
}

public interface Registry {
    Object get(Object key);
}

public abstract class Base implements Visitor {
    protected Object state;
    public abstract Object visit(Object node);
    Object touch(Object o) { return o; }
}

public class Walker extends Base {
    public static int counter;
    public Object[] stack;
    public Registry registry;
    public String label, tag;
    private transient int cache;

    public Walker(Object seed) {
        this.state = seed;
        this.stack = new Object[8];
    }

    public Object visit(Object node) {
        // locals, casts, instanceof, unary not, boolean ops
        boolean isStr = node instanceof String;
        if (!isStr && node != null) {
            String s = (String) this.touch(node);
            this.label = s + "-visited";
        } else if (isStr || node == null) {
            this.label = "default";
        }

        // while loop with arithmetic and comparisons
        int i = 0;
        while (i < 10) {
            i = i + 1;
            if (i == 5) {
                Walker.counter = Walker.counter + 1;
            }
        }

        // array store/load, nested calls, super call
        stack[0] = node;
        Object top = stack[0];
        Object again = super.touch(top);

        // static field access via qualified and bare names
        counter = counter + 1;
        int snapshot = Walker.counter;

        // throw inside a branch
        if (snapshot < 0) {
            throw new RuntimeException("impossible " + this.label);
        }

        // interface call through field, chained field access
        Object fromMap = registry.get(this.tag);
        return again;
    }

    public int size() { return 0; }
}
`

func TestTortureCompiles(t *testing.T) {
	prog, err := Compile("torture.jar", tortureSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	visit := prog.Body(java.MakeMethodKey("torture.Walker", "visit", []java.Type{java.ObjectType}))
	if visit == nil {
		t.Fatal("visit body missing")
	}
	// Key lowering artifacts must be present.
	var (
		hasCast, hasInstanceOf, hasArrayStore, hasThrow, hasSuper,
		hasStaticStore, hasInterfaceCall, hasConcat, hasBackEdge bool
	)
	for i, st := range visit.Stmts {
		switch s := st.(type) {
		case *jimple.AssignStmt:
			switch rhs := s.RHS.(type) {
			case *jimple.CastExpr:
				hasCast = true
			case *jimple.InstanceOfExpr:
				hasInstanceOf = true
			case *jimple.BinopExpr:
				if rhs.Op == jimple.OpAdd && rhs.Type().Equal(java.StringType) {
					hasConcat = true
				}
			case *jimple.InvokeExpr:
				if rhs.Kind == jimple.InvokeInterface {
					hasInterfaceCall = true
				}
				if rhs.Kind == jimple.InvokeSpecial && rhs.Name == "touch" {
					hasSuper = true
				}
			}
			if lhs, ok := s.LHS.(*jimple.ArrayRef); ok && lhs.Base != nil {
				hasArrayStore = true
			}
			if lhs, ok := s.LHS.(*jimple.FieldRef); ok && lhs.IsStatic() {
				hasStaticStore = true
			}
		case *jimple.ThrowStmt:
			hasThrow = true
		case *jimple.GotoStmt:
			if s.Target < i {
				hasBackEdge = true
			}
		}
	}
	for name, ok := range map[string]bool{
		"cast": hasCast, "instanceof": hasInstanceOf, "array store": hasArrayStore,
		"throw": hasThrow, "super call": hasSuper, "static store": hasStaticStore,
		"interface call": hasInterfaceCall, "string concat": hasConcat, "loop back edge": hasBackEdge,
	} {
		if !ok {
			t.Errorf("lowered body missing %s:\n%s", name, visit.String())
		}
	}
	// Constructor lowering: field stores through this.
	ctor := prog.Body(java.MakeMethodKey("torture.Walker", "<init>", []java.Type{java.ObjectType}))
	if ctor == nil {
		t.Fatal("constructor body missing")
	}
	// Multi-declarator field parsing.
	walker := prog.Hierarchy.Class("torture.Walker")
	if walker.FieldByName("label") == nil || walker.FieldByName("tag") == nil {
		t.Error("multi-declarator fields lost")
	}
	// Abstract method carries no body.
	if prog.Body(java.MakeMethodKey("torture.Base", "visit", []java.Type{java.ObjectType})) != nil {
		t.Error("abstract method must have no body")
	}
	// Interface extends interface.
	if !prog.Hierarchy.IsSubtypeOf("torture.Visitor", java.SerializableIface) {
		t.Error("Visitor must extend Serializable")
	}
}

// TestParserNeverPanics feeds fragments and mutations of valid source to
// the parser: it must return errors, never panic.
func TestParserNeverPanics(t *testing.T) {
	base := tortureSource
	f := func(cut uint16, insert uint8) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked: %v", r)
			}
		}()
		pos := int(cut) % len(base)
		mutated := base[:pos] + string(rune('!'+insert%90)) + base[pos:]
		_, _ = Parse("m.java", mutated)
		_, _ = Parse("m.java", base[:pos])
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLowerNeverPanicsOnTruncations compiles truncated-at-line variants:
// errors are fine, panics are not.
func TestLowerNeverPanicsOnTruncations(t *testing.T) {
	lines := strings.Split(tortureSource, "\n")
	for i := 5; i < len(lines); i += 3 {
		src := strings.Join(lines[:i], "\n") + "\n}"
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("compile panicked on truncation at line %d: %v", i, r)
				}
			}()
			_, _ = Compile("trunc.jar", src)
		}()
	}
}
