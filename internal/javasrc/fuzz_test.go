package javasrc

import "testing"

// FuzzParse drives the frontend with arbitrary inputs: it must return
// errors, never panic or hang. Run with `go test -fuzz FuzzParse` for a
// real fuzzing session; the seeds below always run under plain go test.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"class A { }",
		"package p; class A extends B implements C, D { int x; void m(int a) { a = a + 1; } }",
		"interface I { Object f(Object o); }",
		`class S { String g() { return "a" + "b"; } }`,
		"class C { C(Object o) { this.o = o; } Object o; }",
		"class W { void m(int n) { while (n > 0) { n = n - 1; } } }",
		"class X { void m(Object o) { if (o instanceof String) { String s = (String) o; } } }",
		"class B { void m() { java.lang.Runtime.getRuntime().exec(\"x\"); } }",
		"class A { void m() { new int[3]; } }",
		"class A { void m() { x.y.z.w(); } }",
		"class /*",
		"class A { void m() { ((((((",
		"package ;;;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		unit, err := Parse("fuzz.java", src)
		if err == nil && unit != nil {
			// Parsed input must also survive lowering (errors allowed).
			_, _ = Compile("fuzz.jar", src)
		}
	})
}
