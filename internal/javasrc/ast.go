package javasrc

import "tabby/internal/java"

// Unit is one parsed source file.
type Unit struct {
	File    string
	Package string
	Imports []string // fully qualified imported class names
	Types   []*TypeDecl
}

// typeRef is a source-level type reference, resolved later.
type typeRef struct {
	Name string // possibly unqualified
	Dims int    // array dimensions
}

// TypeDecl is a class or interface declaration.
type TypeDecl struct {
	Name       string // simple name
	Mods       java.Modifier
	Extends    []string // superclass (classes) or super-interfaces (interfaces)
	Implements []string
	Fields     []*FieldDecl
	Methods    []*MethodDecl
	Line       int
}

// FieldDecl is a field declaration.
type FieldDecl struct {
	Mods java.Modifier
	Type typeRef
	Name string
	Line int
}

// ParamDecl is a formal parameter.
type ParamDecl struct {
	Type typeRef
	Name string
}

// MethodDecl is a method or constructor declaration. Constructors carry
// the name "<init>".
type MethodDecl struct {
	Mods    java.Modifier
	Ret     typeRef
	Name    string
	Params  []ParamDecl
	Body    []StmtNode // nil for abstract/native declarations
	HasBody bool
	Line    int
}

// StmtNode is an AST statement.
type StmtNode interface{ stmtNode() }

// LocalDeclStmt is `T x = init;` (init optional).
type LocalDeclStmt struct {
	Type typeRef
	Name string
	Init ExprNode
	Line int
}

// ExprStmt is an expression used as a statement (call or assignment).
type ExprStmt struct {
	E    ExprNode
	Line int
}

// IfStmtNode is if/else.
type IfStmtNode struct {
	Cond ExprNode
	Then []StmtNode
	Else []StmtNode
	Line int
}

// WhileStmtNode is a while loop.
type WhileStmtNode struct {
	Cond ExprNode
	Body []StmtNode
	Line int
}

// ReturnStmtNode is `return e?;`.
type ReturnStmtNode struct {
	E    ExprNode // nil for bare return
	Line int
}

// ThrowStmtNode is `throw e;`.
type ThrowStmtNode struct {
	E    ExprNode
	Line int
}

// BlockStmtNode is a nested block.
type BlockStmtNode struct {
	Stmts []StmtNode
}

func (*LocalDeclStmt) stmtNode()  {}
func (*ExprStmt) stmtNode()       {}
func (*IfStmtNode) stmtNode()     {}
func (*WhileStmtNode) stmtNode()  {}
func (*ReturnStmtNode) stmtNode() {}
func (*ThrowStmtNode) stmtNode()  {}
func (*BlockStmtNode) stmtNode()  {}

// ExprNode is an AST expression.
type ExprNode interface{ exprNode() }

// IdentExpr is a bare identifier (local, field, or class-name head).
type IdentExpr struct {
	Name string
	Line int
}

// SelectExpr is `base.Name` (field access or class-name segment).
type SelectExpr struct {
	Base ExprNode
	Name string
	Line int
}

// CallExpr is `base.Name(args)`; Base nil means an unqualified call on
// this (or a static call within the same class).
type CallExpr struct {
	Base  ExprNode
	Name  string
	Args  []ExprNode
	Super bool // true for super.Name(args)
	Line  int
}

// NewObjectExpr is `new T(args)`.
type NewObjectExpr struct {
	Type typeRef
	Args []ExprNode
	Line int
}

// NewArrayExprNode is `new T[size]`.
type NewArrayExprNode struct {
	Elem typeRef
	Size ExprNode
	Line int
}

// IndexExpr is `base[index]`.
type IndexExpr struct {
	Base  ExprNode
	Index ExprNode
	Line  int
}

// CastExprNode is `(T) e`.
type CastExprNode struct {
	Type typeRef
	E    ExprNode
	Line int
}

// AssignExpr is `lhs = rhs`.
type AssignExpr struct {
	LHS  ExprNode
	RHS  ExprNode
	Line int
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   string
	L, R ExprNode
	Line int
}

// UnaryExpr is `!e` (the only supported unary operator).
type UnaryExpr struct {
	Op   string
	E    ExprNode
	Line int
}

// InstanceOfExprNode is `e instanceof T`.
type InstanceOfExprNode struct {
	E    ExprNode
	Type typeRef
	Line int
}

// Literal nodes.
type (
	// IntLit is an integer literal.
	IntLit struct {
		Val  int64
		Line int
	}
	// StrLit is a string literal.
	StrLit struct {
		Val  string
		Line int
	}
	// NullLit is `null`.
	NullLit struct{ Line int }
	// BoolLit is `true`/`false`.
	BoolLit struct {
		Val  bool
		Line int
	}
	// ThisLit is `this`.
	ThisLit struct{ Line int }
	// ClassLit is `T.class`.
	ClassLit struct {
		Type typeRef
		Line int
	}
)

func (*IdentExpr) exprNode()          {}
func (*SelectExpr) exprNode()         {}
func (*CallExpr) exprNode()           {}
func (*NewObjectExpr) exprNode()      {}
func (*NewArrayExprNode) exprNode()   {}
func (*IndexExpr) exprNode()          {}
func (*CastExprNode) exprNode()       {}
func (*AssignExpr) exprNode()         {}
func (*BinExpr) exprNode()            {}
func (*UnaryExpr) exprNode()          {}
func (*InstanceOfExprNode) exprNode() {}
func (*IntLit) exprNode()             {}
func (*StrLit) exprNode()             {}
func (*NullLit) exprNode()            {}
func (*BoolLit) exprNode()            {}
func (*ThisLit) exprNode()            {}
func (*ClassLit) exprNode()           {}
