package javasrc

import (
	"fmt"
	"strings"

	"tabby/internal/java"
)

// javaLangClasses are resolvable without an import, like javac's implicit
// java.lang.* import.
var _javaLang = map[string]string{
	"Object": "java.lang.Object", "String": "java.lang.String",
	"Class": "java.lang.Class", "Runtime": "java.lang.Runtime",
	"Process": "java.lang.Process", "ProcessBuilder": "java.lang.ProcessBuilder",
	"ClassLoader": "java.lang.ClassLoader", "System": "java.lang.System",
	"Thread": "java.lang.Thread", "Exception": "java.lang.Exception",
	"RuntimeException": "java.lang.RuntimeException", "Error": "java.lang.Error",
	"Throwable": "java.lang.Throwable", "Integer": "java.lang.Integer",
	"Long": "java.lang.Long", "Boolean": "java.lang.Boolean",
	"StringBuilder": "java.lang.StringBuilder", "Comparable": "java.lang.Comparable",
	"Iterable": "java.lang.Iterable", "Cloneable": "java.lang.Cloneable",
	"IllegalStateException":         "java.lang.IllegalStateException",
	"IllegalArgumentException":      "java.lang.IllegalArgumentException",
	"UnsupportedOperationException": "java.lang.UnsupportedOperationException",
}

// resolver resolves simple type names within one compilation unit.
type resolver struct {
	unit     *Unit
	imports  map[string]string // simple -> fqcn
	declared map[string]bool   // all fqcns declared across the source set
	pkgOf    map[string]string // simple name -> fqcn for same-package types
}

func newResolver(unit *Unit, declared map[string]bool) *resolver {
	r := &resolver{
		unit:     unit,
		imports:  make(map[string]string, len(unit.Imports)),
		declared: declared,
		pkgOf:    make(map[string]string),
	}
	for _, imp := range unit.Imports {
		simple := imp
		if i := strings.LastIndexByte(imp, '.'); i >= 0 {
			simple = imp[i+1:]
		}
		r.imports[simple] = imp
	}
	prefix := ""
	if unit.Package != "" {
		prefix = unit.Package + "."
	}
	for fqcn := range declared {
		if strings.HasPrefix(fqcn, prefix) {
			rest := fqcn[len(prefix):]
			if !strings.ContainsRune(rest, '.') {
				r.pkgOf[rest] = fqcn
			}
		}
	}
	return r
}

// resolveClass maps a possibly-simple class name to a fully qualified one.
// Qualified names pass through (phantom classes are legal). Unresolvable
// simple names return "".
func (r *resolver) resolveClass(name string) string {
	if strings.ContainsRune(name, '.') {
		return name
	}
	if fq, ok := r.imports[name]; ok {
		return fq
	}
	if fq, ok := r.pkgOf[name]; ok {
		return fq
	}
	if fq, ok := _javaLang[name]; ok {
		return fq
	}
	return ""
}

// mustResolveClass is resolveClass that falls back to qualifying the name
// into the unit's package (declaring contexts where an unknown name is
// still meaningful as a phantom neighbour).
func (r *resolver) mustResolveClass(name string) string {
	if fq := r.resolveClass(name); fq != "" {
		return fq
	}
	if r.unit.Package != "" {
		return r.unit.Package + "." + name
	}
	return name
}

// resolveType maps a source type reference to a java.Type.
func (r *resolver) resolveType(tr typeRef) (java.Type, error) {
	var base java.Type
	switch tr.Name {
	case "void":
		base = java.Void
	case "boolean":
		base = java.Boolean
	case "int", "short", "byte":
		base = java.Int
	case "long":
		base = java.Long
	case "double", "float":
		base = java.Double
	case "char":
		base = java.Char
	default:
		base = java.ClassType(r.mustResolveClass(tr.Name))
	}
	if base.IsVoid() && tr.Dims > 0 {
		return java.Type{}, fmt.Errorf("void array type")
	}
	for i := 0; i < tr.Dims; i++ {
		base = java.ArrayOf(base)
	}
	return base, nil
}

// fqcnOf returns the fully qualified name of a type declaration in the
// unit.
func fqcnOf(unit *Unit, td *TypeDecl) string {
	if unit.Package == "" {
		return td.Name
	}
	return unit.Package + "." + td.Name
}
