package javasrc

import (
	"fmt"
	"strings"

	"tabby/internal/java"
)

// javaLangClasses are resolvable without an import, like javac's implicit
// java.lang.* import.
var _javaLang = map[string]string{
	"Object": "java.lang.Object", "String": "java.lang.String",
	"Class": "java.lang.Class", "Runtime": "java.lang.Runtime",
	"Process": "java.lang.Process", "ProcessBuilder": "java.lang.ProcessBuilder",
	"ClassLoader": "java.lang.ClassLoader", "System": "java.lang.System",
	"Thread": "java.lang.Thread", "Exception": "java.lang.Exception",
	"RuntimeException": "java.lang.RuntimeException", "Error": "java.lang.Error",
	"Throwable": "java.lang.Throwable", "Integer": "java.lang.Integer",
	"Long": "java.lang.Long", "Boolean": "java.lang.Boolean",
	"Byte": "java.lang.Byte", "Short": "java.lang.Short",
	"Float": "java.lang.Float", "Double": "java.lang.Double",
	"Character": "java.lang.Character", "Number": "java.lang.Number",
	"CharSequence": "java.lang.CharSequence", "Math": "java.lang.Math",
	"StringBuilder": "java.lang.StringBuilder", "Comparable": "java.lang.Comparable",
	"Iterable": "java.lang.Iterable", "Cloneable": "java.lang.Cloneable",
	"IllegalStateException":         "java.lang.IllegalStateException",
	"IllegalArgumentException":      "java.lang.IllegalArgumentException",
	"UnsupportedOperationException": "java.lang.UnsupportedOperationException",
}

// declIndex groups every declared class name by package so each unit's
// resolver binds its same-package table with one map probe. Building it
// once per compile replaces the per-unit scan over all declared classes
// (O(units × classes) across a compile) that newResolver used to do.
type declIndex struct {
	byPkg map[string]map[string]string // package -> simple name -> fqcn
}

func indexDeclared(declared map[string]bool) *declIndex {
	idx := &declIndex{byPkg: make(map[string]map[string]string)}
	for fqcn := range declared {
		pkg, simple := "", fqcn
		if i := strings.LastIndexByte(fqcn, '.'); i >= 0 {
			pkg, simple = fqcn[:i], fqcn[i+1:]
		}
		m := idx.byPkg[pkg]
		if m == nil {
			m = make(map[string]string)
			idx.byPkg[pkg] = m
		}
		m[simple] = fqcn
	}
	return idx
}

// resolver resolves simple type names within one compilation unit.
type resolver struct {
	unit    *Unit
	imports map[string]string // simple -> fqcn
	pkgOf   map[string]string // simple name -> fqcn for same-package types (shared, read-only)
}

func newResolver(unit *Unit, decls *declIndex) *resolver {
	r := &resolver{
		unit:    unit,
		imports: make(map[string]string, len(unit.Imports)),
		pkgOf:   decls.byPkg[unit.Package],
	}
	for _, imp := range unit.Imports {
		simple := imp
		if i := strings.LastIndexByte(imp, '.'); i >= 0 {
			simple = imp[i+1:]
		}
		r.imports[simple] = imp
	}
	return r
}

// resolveClass maps a possibly-simple class name to a fully qualified one.
// Qualified names pass through (phantom classes are legal). Unresolvable
// simple names return "".
func (r *resolver) resolveClass(name string) string {
	if strings.ContainsRune(name, '.') {
		return name
	}
	if fq, ok := r.imports[name]; ok {
		return fq
	}
	if fq, ok := r.pkgOf[name]; ok {
		return fq
	}
	if fq, ok := _javaLang[name]; ok {
		return fq
	}
	return ""
}

// mustResolveClass is resolveClass that falls back to qualifying the name
// into the unit's package (declaring contexts where an unknown name is
// still meaningful as a phantom neighbour).
func (r *resolver) mustResolveClass(name string) string {
	if fq := r.resolveClass(name); fq != "" {
		return fq
	}
	if r.unit.Package != "" {
		return r.unit.Package + "." + name
	}
	return name
}

// resolveType maps a source type reference to a java.Type.
func (r *resolver) resolveType(tr typeRef) (java.Type, error) {
	var base java.Type
	switch tr.Name {
	case "void":
		base = java.Void
	case "boolean":
		base = java.Boolean
	case "int", "short", "byte":
		base = java.Int
	case "long":
		base = java.Long
	case "double", "float":
		base = java.Double
	case "char":
		base = java.Char
	default:
		base = java.ClassType(r.mustResolveClass(tr.Name))
	}
	if base.IsVoid() && tr.Dims > 0 {
		return java.Type{}, fmt.Errorf("void array type")
	}
	for i := 0; i < tr.Dims; i++ {
		base = java.ArrayOf(base)
	}
	return base, nil
}

// fqcnOf returns the fully qualified name of a type declaration in the
// unit.
func fqcnOf(unit *Unit, td *TypeDecl) string {
	if unit.Package == "" {
		return td.Name
	}
	return unit.Package + "." + td.Name
}
