package javasrc

import (
	"fmt"

	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/parallel"
)

// File is one source file.
type File struct {
	Name   string
	Source string
}

// ArchiveSource is the source form of one archive ("jar file"): a name
// and the files compiled into it.
type ArchiveSource struct {
	Name  string
	Files []File
}

// CompileOptions tunes compilation.
type CompileOptions struct {
	// Workers bounds how many files are parsed (and how many classes are
	// skeleton-built / methods lowered) concurrently. Zero selects
	// runtime.GOMAXPROCS(0); 1 runs the exact sequential path. The
	// resulting Program is identical at every setting: results merge in
	// archive/file declaration order and an error is always reported for
	// the first failing file in that order.
	Workers int
}

// CompileArchives parses and lowers a set of archives into a jimple
// Program ready for analysis — the full Semantic Information Extraction
// step of §III-B1 — using the default worker count.
func CompileArchives(archives []ArchiveSource) (*jimple.Program, error) {
	return CompileArchivesOpts(archives, CompileOptions{})
}

// CompileArchivesOpts is CompileArchives with explicit options.
func CompileArchivesOpts(archives []ArchiveSource, copts CompileOptions) (*jimple.Program, error) {
	prog, _, err := CompileArchivesCached(archives, copts, nil)
	return prog, err
}

// CompileArchivesCached compiles through a content-addressed artifact
// cache: files whose fingerprints match a cached artifact skip the
// corresponding pass (parse, skeleton build, lowering), and a corpus with
// no changed file at all returns the previously assembled Program
// outright. The output is byte-identical to an uncached compile of the
// same input — caching is purely a work-avoidance layer. A nil cache
// compiles everything fresh with zero fingerprinting overhead.
func CompileArchivesCached(archives []ArchiveSource, copts CompileOptions, cache *Cache) (*jimple.Program, CompileStats, error) {
	var stats CompileStats

	// Pass 0: parse every file. Files are independent, so they parse
	// concurrently; the unit list keeps archive/file order.
	type fileRef struct {
		archive string
		file    File
		fp      string // content address; "" when cache == nil
	}
	type parsedUnit struct {
		unit    *Unit
		archive string
		fp      string
		hit     bool
	}
	var refs []fileRef
	for _, ar := range archives {
		for _, f := range ar.Files {
			refs = append(refs, fileRef{archive: ar.Name, file: f})
		}
	}
	stats.Files = len(refs)

	var wholeKey string
	if cache != nil {
		fps := parallel.Map(copts.Workers, refs, func(_ int, r fileRef) string {
			return fileFingerprint(r.archive, r.file)
		})
		for i := range refs {
			refs[i].fp = fps[i]
		}
		wholeKey = corpusKey(archives, fps)
		if cache.lastProgram != nil && cache.lastKey == wholeKey {
			stats = cache.lastStats
			stats.ParseHits, stats.SkeletonHits, stats.BodyHits = len(refs), len(refs), len(refs)
			stats.ProgramReused = true
			return cache.lastProgram, stats, nil
		}
	}

	units, err := parallel.MapErr(copts.Workers, refs, func(_ int, r fileRef) (parsedUnit, error) {
		if cache != nil {
			if u, ok := cache.parse[r.fp]; ok {
				return parsedUnit{unit: u, archive: r.archive, fp: r.fp, hit: true}, nil
			}
		}
		u, err := Parse(r.file.Name, r.file.Source)
		return parsedUnit{unit: u, archive: r.archive, fp: r.fp}, err
	})
	if err != nil {
		return nil, stats, err
	}
	if cache != nil {
		for _, pu := range units {
			if pu.hit {
				stats.ParseHits++
			} else {
				cache.parse[pu.fp] = pu.unit
			}
		}
	}

	// Pass 1: collect declared class names (sequential: the duplicate
	// check is inherently a cross-file reduction).
	declared := make(map[string]bool)
	for _, pu := range units {
		for _, td := range pu.unit.Types {
			fq := fqcnOf(pu.unit, td)
			if declared[fq] {
				return nil, stats, fmt.Errorf("%s: duplicate class %s", pu.unit.File, fq)
			}
			declared[fq] = true
		}
	}

	// Pass 2: build java.Class skeletons with resolved member types.
	// Each unit resolves against the (now frozen) declared set, so units
	// build concurrently and merge in unit order. Skeleton artifacts are
	// keyed by file fingerprint plus the declared-name set: resolution
	// reads nothing else, so a body-only edit elsewhere keeps every other
	// file's skeletons (and the java.Class pointers inside them) stable.
	var declHash string
	if cache != nil {
		declHash = declSetHash(declared)
	}
	decls := indexDeclared(declared)
	built, err := parallel.MapErr(copts.Workers, units, func(_ int, pu parsedUnit) (*skeletonEntry, error) {
		if cache != nil {
			if e, ok := cache.skeletons[pu.fp+"|"+declHash]; ok {
				return e, nil
			}
		}
		res := newResolver(pu.unit, decls)
		e := &skeletonEntry{resolver: res}
		for _, td := range pu.unit.Types {
			c, err := buildClassSkeleton(pu.unit, td, res)
			if err != nil {
				return nil, err
			}
			c.Archive = pu.archive
			e.classes = append(e.classes, c)
			e.decls = append(e.decls, td)
		}
		return e, nil
	})
	if err != nil {
		return nil, stats, err
	}
	if cache != nil {
		for i, pu := range units {
			key := pu.fp + "|" + declHash
			if _, ok := cache.skeletons[key]; ok {
				stats.SkeletonHits++
			} else {
				cache.skeletons[key] = built[i]
			}
		}
	}

	var classes []*java.Class
	archiveClasses := make(map[string][]string)
	archiveBytes := make(map[string]int64)
	for i, pu := range units {
		for _, c := range built[i].classes {
			classes = append(classes, c)
			archiveClasses[pu.archive] = append(archiveClasses[pu.archive], c.Name)
		}
		archiveBytes[pu.archive] += int64(len(pu.unit.File))
	}
	for _, ar := range archives {
		for _, f := range ar.Files {
			archiveBytes[ar.Name] += int64(len(f.Source))
		}
	}

	h, err := java.NewHierarchy(classes)
	if err != nil {
		return nil, stats, err
	}
	var archiveList []java.Archive
	for _, ar := range archives {
		archiveList = append(archiveList, java.Archive{
			Name:      ar.Name,
			Classes:   archiveClasses[ar.Name],
			CodeBytes: archiveBytes[ar.Name],
		})
	}

	// Pass 3: lower method bodies. Lowering reads only the frozen
	// hierarchy and per-unit resolver, so methods lower concurrently;
	// bodies register in declaration order. Lowered bodies are keyed by
	// file fingerprint plus the hierarchy fingerprint: lowering consults
	// other classes' signatures (field resolution, interface checks), so
	// only a corpus-wide signature-identical state may reuse them.
	var hierFP string
	if cache != nil {
		hierFP = hierarchyFingerprint(h)
		stats.HierarchyFP = hierFP
	}
	type lowerTask struct {
		unitIdx  int
		class    *java.Class
		md       *MethodDecl
		index    int
		resolver *resolver
	}
	var tasks []lowerTask
	unitBodies := make([][]*jimple.Body, len(units))
	for i, pu := range units {
		if cache != nil {
			if bodies, ok := cache.bodies[pu.fp+"|"+hierFP]; ok {
				unitBodies[i] = bodies
				stats.BodyHits++
				continue
			}
		}
		for ci, td := range built[i].decls {
			for mi, md := range td.Methods {
				if md.HasBody {
					tasks = append(tasks, lowerTask{
						unitIdx: i, class: built[i].classes[ci],
						md: md, index: mi, resolver: built[i].resolver,
					})
				}
			}
		}
	}
	fresh, err := parallel.MapErr(copts.Workers, tasks, func(_ int, t lowerTask) (*jimple.Body, error) {
		m := methodForDecl(t.class, t.md, t.index)
		if m == nil {
			return nil, fmt.Errorf("%s: method %s vanished during lowering", t.class.Name, t.md.Name)
		}
		body, err := lowerMethod(h, t.class, m, t.md, t.resolver)
		if err != nil {
			return nil, err
		}
		if err := body.Validate(); err != nil {
			return nil, fmt.Errorf("program body %s: %w", body.Method.Key(), err)
		}
		return body, nil
	})
	if err != nil {
		return nil, stats, err
	}
	for i, t := range tasks {
		unitBodies[t.unitIdx] = append(unitBodies[t.unitIdx], fresh[i])
	}
	if cache != nil {
		for i, pu := range units {
			key := pu.fp + "|" + hierFP
			if _, ok := cache.bodies[key]; !ok {
				cache.bodies[key] = unitBodies[i]
			}
		}
	}

	// Assembly: fold the per-class units into a Program. Bodies were
	// validated when first lowered (fresh above, or in the run that
	// populated the cache), so assembly is pure bookkeeping.
	var classUnits []*jimple.ClassUnit
	for i := range units {
		byClass := make(map[string][]*jimple.Body)
		for _, b := range unitBodies[i] {
			byClass[b.Method.ClassName] = append(byClass[b.Method.ClassName], b)
		}
		for _, c := range built[i].classes {
			classUnits = append(classUnits, &jimple.ClassUnit{
				Class:       c,
				Bodies:      byClass[c.Name],
				Fingerprint: units[i].fp,
			})
		}
	}
	prog, err := jimple.AssembleProgram(h, classUnits, archiveList)
	if err != nil {
		return nil, stats, err
	}
	if cache != nil {
		cache.lastKey = wholeKey
		cache.lastProgram = prog
		cache.lastStats = stats
	}
	return prog, stats, nil
}

// Compile is a convenience wrapper for a single archive built from raw
// source strings.
func Compile(archiveName string, sources ...string) (*jimple.Program, error) {
	files := make([]File, len(sources))
	for i, s := range sources {
		files[i] = File{Name: fmt.Sprintf("%s/%d.java", archiveName, i), Source: s}
	}
	return CompileArchives([]ArchiveSource{{Name: archiveName, Files: files}})
}

// buildClassSkeleton converts a TypeDecl into a java.Class with resolved
// field and method signatures.
func buildClassSkeleton(unit *Unit, td *TypeDecl, res *resolver) (*java.Class, error) {
	c := &java.Class{Name: fqcnOf(unit, td), Modifiers: td.Mods}
	if td.Mods.Has(java.ModInterface) {
		// Interfaces: extends-list entries are super-interfaces.
		for _, e := range td.Extends {
			c.Interfaces = append(c.Interfaces, res.mustResolveClass(e))
		}
	} else {
		switch len(td.Extends) {
		case 0:
			if c.Name != java.ObjectClass {
				c.Super = java.ObjectClass
			}
		case 1:
			c.Super = res.mustResolveClass(td.Extends[0])
		default:
			return nil, fmt.Errorf("%s: class %s extends multiple classes", unit.File, td.Name)
		}
	}
	for _, impl := range td.Implements {
		c.Interfaces = append(c.Interfaces, res.mustResolveClass(impl))
	}
	for _, fd := range td.Fields {
		ft, err := res.resolveType(fd.Type)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: field %s: %w", unit.File, fd.Line, fd.Name, err)
		}
		c.AddField(&java.Field{Name: fd.Name, Type: ft, Modifiers: fd.Mods})
	}
	for _, md := range td.Methods {
		ret, err := res.resolveType(md.Ret)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: method %s: %w", unit.File, md.Line, md.Name, err)
		}
		params := make([]java.Type, len(md.Params))
		for i, pd := range md.Params {
			pt, err := res.resolveType(pd.Type)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: method %s param %s: %w", unit.File, md.Line, md.Name, pd.Name, err)
			}
			params[i] = pt
		}
		mods := md.Mods
		if !md.HasBody {
			mods |= java.ModAbstract
		}
		c.AddMethod(&java.Method{Name: md.Name, Params: params, Return: ret, Modifiers: mods})
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", unit.File, err)
	}
	return c, nil
}

// methodForDecl locates the java.Method built for the i-th declaration.
func methodForDecl(c *java.Class, md *MethodDecl, index int) *java.Method {
	if index < len(c.Methods) && c.Methods[index].Name == md.Name {
		return c.Methods[index]
	}
	for _, m := range c.Methods {
		if m.Name == md.Name && len(m.Params) == len(md.Params) {
			return m
		}
	}
	return nil
}
