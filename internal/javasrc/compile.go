package javasrc

import (
	"fmt"

	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/parallel"
)

// File is one source file.
type File struct {
	Name   string
	Source string
}

// ArchiveSource is the source form of one archive ("jar file"): a name
// and the files compiled into it.
type ArchiveSource struct {
	Name  string
	Files []File
}

// CompileOptions tunes compilation.
type CompileOptions struct {
	// Workers bounds how many files are parsed (and how many classes are
	// skeleton-built / methods lowered) concurrently. Zero selects
	// runtime.GOMAXPROCS(0); 1 runs the exact sequential path. The
	// resulting Program is identical at every setting: results merge in
	// archive/file declaration order and an error is always reported for
	// the first failing file in that order.
	Workers int
}

// CompileArchives parses and lowers a set of archives into a jimple
// Program ready for analysis — the full Semantic Information Extraction
// step of §III-B1 — using the default worker count.
func CompileArchives(archives []ArchiveSource) (*jimple.Program, error) {
	return CompileArchivesOpts(archives, CompileOptions{})
}

// CompileArchivesOpts is CompileArchives with explicit options.
func CompileArchivesOpts(archives []ArchiveSource, copts CompileOptions) (*jimple.Program, error) {
	// Pass 0: parse every file. Files are independent, so they parse
	// concurrently; the unit list keeps archive/file order.
	type fileRef struct {
		archive string
		file    File
	}
	type parsedUnit struct {
		unit    *Unit
		archive string
	}
	var refs []fileRef
	for _, ar := range archives {
		for _, f := range ar.Files {
			refs = append(refs, fileRef{archive: ar.Name, file: f})
		}
	}
	units, err := parallel.MapErr(copts.Workers, refs, func(_ int, r fileRef) (parsedUnit, error) {
		u, err := Parse(r.file.Name, r.file.Source)
		return parsedUnit{unit: u, archive: r.archive}, err
	})
	if err != nil {
		return nil, err
	}

	// Pass 1: collect declared class names (sequential: the duplicate
	// check is inherently a cross-file reduction).
	declared := make(map[string]bool)
	for _, pu := range units {
		for _, td := range pu.unit.Types {
			fq := fqcnOf(pu.unit, td)
			if declared[fq] {
				return nil, fmt.Errorf("%s: duplicate class %s", pu.unit.File, fq)
			}
			declared[fq] = true
		}
	}

	// Pass 2: build java.Class skeletons with resolved member types.
	// Each unit resolves against the (now frozen) declared set, so units
	// build concurrently and merge in unit order.
	type classedDecl struct {
		class    *java.Class
		decl     *TypeDecl
		resolver *resolver
	}
	built, err := parallel.MapErr(copts.Workers, units, func(_ int, pu parsedUnit) ([]classedDecl, error) {
		res := newResolver(pu.unit, declared)
		out := make([]classedDecl, 0, len(pu.unit.Types))
		for _, td := range pu.unit.Types {
			c, err := buildClassSkeleton(pu.unit, td, res)
			if err != nil {
				return nil, err
			}
			c.Archive = pu.archive
			out = append(out, classedDecl{class: c, decl: td, resolver: res})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var (
		classes []*java.Class
		decls   []classedDecl
	)
	archiveClasses := make(map[string][]string)
	archiveBytes := make(map[string]int64)
	for i, pu := range units {
		for _, cd := range built[i] {
			classes = append(classes, cd.class)
			decls = append(decls, cd)
			archiveClasses[pu.archive] = append(archiveClasses[pu.archive], cd.class.Name)
		}
		archiveBytes[pu.archive] += int64(len(pu.unit.File))
	}
	for _, ar := range archives {
		for _, f := range ar.Files {
			archiveBytes[ar.Name] += int64(len(f.Source))
		}
	}

	h, err := java.NewHierarchy(classes)
	if err != nil {
		return nil, err
	}
	prog := jimple.NewProgram(h)
	for _, ar := range archives {
		prog.Archives = append(prog.Archives, java.Archive{
			Name:      ar.Name,
			Classes:   archiveClasses[ar.Name],
			CodeBytes: archiveBytes[ar.Name],
		})
	}

	// Pass 3: lower method bodies. Lowering reads only the frozen
	// hierarchy and per-unit resolver, so methods lower concurrently;
	// bodies register in declaration order.
	type lowerTask struct {
		cd    classedDecl
		md    *MethodDecl
		index int
	}
	var tasks []lowerTask
	for _, cd := range decls {
		for i, md := range cd.decl.Methods {
			if md.HasBody {
				tasks = append(tasks, lowerTask{cd: cd, md: md, index: i})
			}
		}
	}
	bodies, err := parallel.MapErr(copts.Workers, tasks, func(_ int, t lowerTask) (*jimple.Body, error) {
		m := methodForDecl(t.cd.class, t.md, t.index)
		if m == nil {
			return nil, fmt.Errorf("%s: method %s vanished during lowering", t.cd.class.Name, t.md.Name)
		}
		return lowerMethod(h, t.cd.class, m, t.md, t.cd.resolver)
	})
	if err != nil {
		return nil, err
	}
	for _, body := range bodies {
		prog.SetBody(body)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// Compile is a convenience wrapper for a single archive built from raw
// source strings.
func Compile(archiveName string, sources ...string) (*jimple.Program, error) {
	files := make([]File, len(sources))
	for i, s := range sources {
		files[i] = File{Name: fmt.Sprintf("%s/%d.java", archiveName, i), Source: s}
	}
	return CompileArchives([]ArchiveSource{{Name: archiveName, Files: files}})
}

// buildClassSkeleton converts a TypeDecl into a java.Class with resolved
// field and method signatures.
func buildClassSkeleton(unit *Unit, td *TypeDecl, res *resolver) (*java.Class, error) {
	c := &java.Class{Name: fqcnOf(unit, td), Modifiers: td.Mods}
	if td.Mods.Has(java.ModInterface) {
		// Interfaces: extends-list entries are super-interfaces.
		for _, e := range td.Extends {
			c.Interfaces = append(c.Interfaces, res.mustResolveClass(e))
		}
	} else {
		switch len(td.Extends) {
		case 0:
			if c.Name != java.ObjectClass {
				c.Super = java.ObjectClass
			}
		case 1:
			c.Super = res.mustResolveClass(td.Extends[0])
		default:
			return nil, fmt.Errorf("%s: class %s extends multiple classes", unit.File, td.Name)
		}
	}
	for _, impl := range td.Implements {
		c.Interfaces = append(c.Interfaces, res.mustResolveClass(impl))
	}
	for _, fd := range td.Fields {
		ft, err := res.resolveType(fd.Type)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: field %s: %w", unit.File, fd.Line, fd.Name, err)
		}
		c.AddField(&java.Field{Name: fd.Name, Type: ft, Modifiers: fd.Mods})
	}
	for _, md := range td.Methods {
		ret, err := res.resolveType(md.Ret)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: method %s: %w", unit.File, md.Line, md.Name, err)
		}
		params := make([]java.Type, len(md.Params))
		for i, pd := range md.Params {
			pt, err := res.resolveType(pd.Type)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: method %s param %s: %w", unit.File, md.Line, md.Name, pd.Name, err)
			}
			params[i] = pt
		}
		mods := md.Mods
		if !md.HasBody {
			mods |= java.ModAbstract
		}
		c.AddMethod(&java.Method{Name: md.Name, Params: params, Return: ret, Modifiers: mods})
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", unit.File, err)
	}
	return c, nil
}

// methodForDecl locates the java.Method built for the i-th declaration.
func methodForDecl(c *java.Class, md *MethodDecl, index int) *java.Method {
	if index < len(c.Methods) && c.Methods[index].Name == md.Name {
		return c.Methods[index]
	}
	for _, m := range c.Methods {
		if m.Name == md.Name && len(m.Params) == len(md.Params) {
			return m
		}
	}
	return nil
}
