package javasrc

import (
	"fmt"

	"tabby/internal/java"
	"tabby/internal/jimple"
)

// File is one source file.
type File struct {
	Name   string
	Source string
}

// ArchiveSource is the source form of one archive ("jar file"): a name
// and the files compiled into it.
type ArchiveSource struct {
	Name  string
	Files []File
}

// CompileArchives parses and lowers a set of archives into a jimple
// Program ready for analysis — the full Semantic Information Extraction
// step of §III-B1.
func CompileArchives(archives []ArchiveSource) (*jimple.Program, error) {
	type parsedUnit struct {
		unit    *Unit
		archive string
	}
	var units []parsedUnit
	for _, ar := range archives {
		for _, f := range ar.Files {
			u, err := Parse(f.Name, f.Source)
			if err != nil {
				return nil, err
			}
			units = append(units, parsedUnit{unit: u, archive: ar.Name})
		}
	}

	// Pass 1: collect declared class names.
	declared := make(map[string]bool)
	for _, pu := range units {
		for _, td := range pu.unit.Types {
			fq := fqcnOf(pu.unit, td)
			if declared[fq] {
				return nil, fmt.Errorf("%s: duplicate class %s", pu.unit.File, fq)
			}
			declared[fq] = true
		}
	}

	// Pass 2: build java.Class skeletons with resolved member types.
	type classedDecl struct {
		class    *java.Class
		decl     *TypeDecl
		resolver *resolver
	}
	var (
		classes []*java.Class
		decls   []classedDecl
	)
	archiveClasses := make(map[string][]string)
	archiveBytes := make(map[string]int64)
	for _, pu := range units {
		res := newResolver(pu.unit, declared)
		for _, td := range pu.unit.Types {
			c, err := buildClassSkeleton(pu.unit, td, res)
			if err != nil {
				return nil, err
			}
			c.Archive = pu.archive
			classes = append(classes, c)
			decls = append(decls, classedDecl{class: c, decl: td, resolver: res})
			archiveClasses[pu.archive] = append(archiveClasses[pu.archive], c.Name)
		}
		archiveBytes[pu.archive] += int64(len(pu.unit.File))
	}
	for _, ar := range archives {
		for _, f := range ar.Files {
			archiveBytes[ar.Name] += int64(len(f.Source))
		}
	}

	h, err := java.NewHierarchy(classes)
	if err != nil {
		return nil, err
	}
	prog := jimple.NewProgram(h)
	for _, ar := range archives {
		prog.Archives = append(prog.Archives, java.Archive{
			Name:      ar.Name,
			Classes:   archiveClasses[ar.Name],
			CodeBytes: archiveBytes[ar.Name],
		})
	}

	// Pass 3: lower method bodies.
	for _, cd := range decls {
		for i, md := range cd.decl.Methods {
			if !md.HasBody {
				continue
			}
			m := methodForDecl(cd.class, md, i)
			if m == nil {
				return nil, fmt.Errorf("%s: method %s vanished during lowering", cd.class.Name, md.Name)
			}
			body, err := lowerMethod(h, cd.class, m, md, cd.resolver)
			if err != nil {
				return nil, err
			}
			prog.SetBody(body)
		}
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// Compile is a convenience wrapper for a single archive built from raw
// source strings.
func Compile(archiveName string, sources ...string) (*jimple.Program, error) {
	files := make([]File, len(sources))
	for i, s := range sources {
		files[i] = File{Name: fmt.Sprintf("%s/%d.java", archiveName, i), Source: s}
	}
	return CompileArchives([]ArchiveSource{{Name: archiveName, Files: files}})
}

// buildClassSkeleton converts a TypeDecl into a java.Class with resolved
// field and method signatures.
func buildClassSkeleton(unit *Unit, td *TypeDecl, res *resolver) (*java.Class, error) {
	c := &java.Class{Name: fqcnOf(unit, td), Modifiers: td.Mods}
	if td.Mods.Has(java.ModInterface) {
		// Interfaces: extends-list entries are super-interfaces.
		for _, e := range td.Extends {
			c.Interfaces = append(c.Interfaces, res.mustResolveClass(e))
		}
	} else {
		switch len(td.Extends) {
		case 0:
			if c.Name != java.ObjectClass {
				c.Super = java.ObjectClass
			}
		case 1:
			c.Super = res.mustResolveClass(td.Extends[0])
		default:
			return nil, fmt.Errorf("%s: class %s extends multiple classes", unit.File, td.Name)
		}
	}
	for _, impl := range td.Implements {
		c.Interfaces = append(c.Interfaces, res.mustResolveClass(impl))
	}
	for _, fd := range td.Fields {
		ft, err := res.resolveType(fd.Type)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: field %s: %w", unit.File, fd.Line, fd.Name, err)
		}
		c.AddField(&java.Field{Name: fd.Name, Type: ft, Modifiers: fd.Mods})
	}
	for _, md := range td.Methods {
		ret, err := res.resolveType(md.Ret)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: method %s: %w", unit.File, md.Line, md.Name, err)
		}
		params := make([]java.Type, len(md.Params))
		for i, pd := range md.Params {
			pt, err := res.resolveType(pd.Type)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: method %s param %s: %w", unit.File, md.Line, md.Name, pd.Name, err)
			}
			params[i] = pt
		}
		mods := md.Mods
		if !md.HasBody {
			mods |= java.ModAbstract
		}
		c.AddMethod(&java.Method{Name: md.Name, Params: params, Return: ret, Modifiers: mods})
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", unit.File, err)
	}
	return c, nil
}

// methodForDecl locates the java.Method built for the i-th declaration.
func methodForDecl(c *java.Class, md *MethodDecl, index int) *java.Method {
	if index < len(c.Methods) && c.Methods[index].Name == md.Name {
		return c.Methods[index]
	}
	for _, m := range c.Methods {
		if m.Name == md.Name && len(m.Params) == len(md.Params) {
			return m
		}
	}
	return nil
}
