package javasrc

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"

	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/parallel"
)

// FrontendVersion is folded into every source fingerprint. Bump it when
// the parser, resolver, or lowering change meaning, so stale cached
// artifacts from an older frontend can never be mistaken for current
// ones: the fingerprints simply stop matching.
const FrontendVersion = 1

// Cache holds content-addressed compilation artifacts across runs of
// CompileArchivesCached. Three layers mirror the three compile passes:
//
//	parse:     file fingerprint              -> parsed AST
//	skeletons: file fingerprint + decl set   -> resolved java.Class skeletons
//	bodies:    file fingerprint + hierarchy  -> lowered jimple bodies
//
// Every key is a hash of exactly the inputs that pass reads, so a hit is
// sound by construction: a body-only edit re-lowers one file, a signature
// edit changes the hierarchy fingerprint and re-lowers everything, and an
// unchanged corpus reuses the previous Program object outright.
//
// A Cache is not safe for concurrent use; callers (core.AnalysisCache,
// the server) serialize access. It never evicts: entries are bounded by
// the number of distinct file versions seen, which for the intended
// workloads (repeated near-identical corpora) stays proportional to the
// corpus.
type Cache struct {
	parse     map[string]*Unit
	skeletons map[string]*skeletonEntry
	bodies    map[string][]*jimple.Body

	lastKey     string
	lastProgram *jimple.Program
	lastStats   CompileStats
}

// skeletonEntry is the pass-2 artifact of one file: its classes with
// their declarations and the resolver they were built with.
type skeletonEntry struct {
	classes  []*java.Class
	decls    []*TypeDecl
	resolver *resolver
}

// NewCache creates an empty compile cache.
func NewCache() *Cache {
	return &Cache{
		parse:     make(map[string]*Unit),
		skeletons: make(map[string]*skeletonEntry),
		bodies:    make(map[string][]*jimple.Body),
	}
}

// CompileStats reports what CompileArchivesCached reused versus rebuilt.
type CompileStats struct {
	Files         int  // source files in the corpus
	ParseHits     int  // files whose AST came from the cache
	SkeletonHits  int  // files whose class skeletons came from the cache
	BodyHits      int  // files whose lowered bodies came from the cache
	ProgramReused bool // whole corpus unchanged: previous Program returned as-is
	// HierarchyFP fingerprints the assembled class hierarchy (every
	// skeleton signature, including bootstrap and phantom classes). Two
	// runs with equal HierarchyFP have structurally identical
	// hierarchies, which is what makes an in-place graph delta sound.
	HierarchyFP string
}

// fileFingerprint addresses one source file: frontend version, owning
// archive, file name, and content.
func fileFingerprint(archive string, f File) string {
	h := sha256.New()
	h.Write([]byte("tabby-src\x00" + strconv.Itoa(FrontendVersion) + "\x00"))
	h.Write([]byte(archive))
	h.Write([]byte{0})
	h.Write([]byte(f.Name))
	h.Write([]byte{0})
	h.Write([]byte(f.Source))
	return hex.EncodeToString(h.Sum(nil))
}

// corpusKey addresses the whole compilation input: every file fingerprint
// in order plus the archive list.
func corpusKey(archives []ArchiveSource, fps []string) string {
	h := sha256.New()
	h.Write([]byte("tabby-corpus\x00"))
	for _, ar := range archives {
		h.Write([]byte(ar.Name))
		h.Write([]byte{0})
	}
	h.Write([]byte{0})
	for _, fp := range fps {
		h.Write([]byte(fp))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CorpusFingerprint content-addresses a compilation input without
// compiling anything: the same hash CompileArchivesCached uses to
// recognize an unchanged corpus, over every file's content fingerprint
// (frontend version, archive, name, source) plus the archive list.
// Two archive slices with equal fingerprints compile to byte-identical
// Programs, which is what makes fingerprint-keyed result caching sound.
// workers bounds hashing concurrency with the usual semantics (0 =
// GOMAXPROCS); the fingerprint is identical at every setting.
func CorpusFingerprint(archives []ArchiveSource, workers int) string {
	type ref struct {
		archive string
		file    File
	}
	var refs []ref
	for _, ar := range archives {
		for _, f := range ar.Files {
			refs = append(refs, ref{archive: ar.Name, file: f})
		}
	}
	fps := parallel.Map(workers, refs, func(_ int, r ref) string {
		return fileFingerprint(r.archive, r.file)
	})
	return corpusKey(archives, fps)
}

// declSetHash fingerprints the set of declared class names. Name
// resolution (imports, same-package lookup) reads nothing else about
// other files, so skeleton artifacts are keyed by file + this hash.
func declSetHash(declared map[string]bool) string {
	names := make([]string, 0, len(declared))
	for n := range declared {
		names = append(names, n)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hierarchyFingerprint hashes every class signature visible to lowering:
// name, modifiers, super, interfaces, archive, phantom flag, field
// signatures, and method signatures — for user classes, bootstrap classes
// and phantoms alike. Lowering consults the hierarchy only through these
// (field resolution, interface checks, class existence), so bodies cached
// under an equal fingerprint lower identically.
func hierarchyFingerprint(h *java.Hierarchy) string {
	hash := sha256.New()
	hash.Write([]byte("tabby-hier\x00" + strconv.Itoa(FrontendVersion) + "\x00"))
	for _, name := range h.SortedClassNames() {
		c := h.Class(name)
		hash.Write([]byte(c.Name))
		hash.Write([]byte{0})
		hash.Write([]byte(strconv.FormatUint(uint64(c.Modifiers), 16)))
		hash.Write([]byte{0})
		hash.Write([]byte(c.Super))
		hash.Write([]byte{0})
		for _, i := range c.Interfaces {
			hash.Write([]byte(i))
			hash.Write([]byte{1})
		}
		hash.Write([]byte(c.Archive))
		if c.Phantom {
			hash.Write([]byte{2})
		}
		hash.Write([]byte{0})
		for _, f := range c.Fields {
			hash.Write([]byte(f.Name + ":" + f.Type.String() + ":" + strconv.FormatUint(uint64(f.Modifiers), 16)))
			hash.Write([]byte{1})
		}
		hash.Write([]byte{0})
		for _, m := range c.Methods {
			hash.Write([]byte(string(m.Key()) + ":" + m.Return.String() + ":" + strconv.FormatUint(uint64(m.Modifiers), 16)))
			hash.Write([]byte{1})
		}
		hash.Write([]byte{0})
	}
	return hex.EncodeToString(hash.Sum(nil))
}
