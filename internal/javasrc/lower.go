package javasrc

import (
	"fmt"
	"strconv"
	"strings"

	"tabby/internal/java"
	"tabby/internal/jimple"
)

// lowerMethod lowers one parsed method body to jimple.
func lowerMethod(h *java.Hierarchy, class *java.Class, m *java.Method, md *MethodDecl, res *resolver) (*jimple.Body, error) {
	lw := &lowerer{
		h:      h,
		class:  class,
		method: m,
		res:    res,
		body:   jimple.NewBody(m),
	}
	lw.pushScope()
	for i, pd := range md.Params {
		lw.declare(pd.Name, lw.body.Params[i])
	}
	if err := lw.lowerStmts(md.Body); err != nil {
		return nil, err
	}
	// Guarantee a terminating return for fall-through control flow.
	lw.emit(&jimple.ReturnStmt{})
	if err := lw.body.Validate(); err != nil {
		return nil, fmt.Errorf("lower %s: %w", m.Key(), err)
	}
	return lw.body, nil
}

type lowerer struct {
	h      *java.Hierarchy
	class  *java.Class
	method *java.Method
	res    *resolver
	body   *jimple.Body
	scopes []map[string]*jimple.Local
	temp   int
}

func (lw *lowerer) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: in %s: %s", lw.res.unit.File, line, lw.method.Key(), fmt.Sprintf(format, args...))
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, make(map[string]*jimple.Local)) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) declare(name string, l *jimple.Local) {
	lw.scopes[len(lw.scopes)-1][name] = l
}

func (lw *lowerer) lookup(name string) *jimple.Local {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if l, ok := lw.scopes[i][name]; ok {
			return l
		}
	}
	return nil
}

func (lw *lowerer) emit(s jimple.Stmt) int { return lw.body.Append(s) }

func (lw *lowerer) newTemp(typ java.Type) *jimple.Local {
	lw.temp++
	return lw.body.AddLocal(jimple.NewLocal("$t"+strconv.Itoa(lw.temp), typ))
}

// atomize guarantees the value is available in a local.
func (lw *lowerer) atomize(v jimple.Value) *jimple.Local {
	if l, ok := v.(*jimple.Local); ok {
		return l
	}
	t := lw.newTemp(v.Type())
	lw.emit(&jimple.AssignStmt{LHS: t, RHS: v})
	return t
}

// --- statements ----------------------------------------------------------

func (lw *lowerer) lowerStmts(stmts []StmtNode) error {
	for _, s := range stmts {
		if err := lw.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) lowerStmt(s StmtNode) error {
	switch st := s.(type) {
	case *BlockStmtNode:
		lw.pushScope()
		defer lw.popScope()
		return lw.lowerStmts(st.Stmts)
	case *LocalDeclStmt:
		typ, err := lw.res.resolveType(st.Type)
		if err != nil {
			return lw.errf(st.Line, "local %s: %v", st.Name, err)
		}
		l := lw.body.AddLocal(jimple.NewLocal(st.Name, typ))
		lw.declare(st.Name, l)
		if st.Init != nil {
			v, err := lw.lowerExpr(st.Init)
			if err != nil {
				return err
			}
			lw.emit(&jimple.AssignStmt{LHS: l, RHS: v})
		}
		return nil
	case *ExprStmt:
		return lw.lowerExprStmt(st)
	case *IfStmtNode:
		return lw.lowerIf(st)
	case *WhileStmtNode:
		return lw.lowerWhile(st)
	case *ReturnStmtNode:
		if st.E == nil {
			lw.emit(&jimple.ReturnStmt{})
			return nil
		}
		v, err := lw.lowerExpr(st.E)
		if err != nil {
			return err
		}
		lw.emit(&jimple.ReturnStmt{Op: v})
		return nil
	case *ThrowStmtNode:
		v, err := lw.lowerExpr(st.E)
		if err != nil {
			return err
		}
		lw.emit(&jimple.ThrowStmt{Op: v})
		return nil
	default:
		return fmt.Errorf("unsupported statement %T", s)
	}
}

func (lw *lowerer) lowerExprStmt(st *ExprStmt) error {
	switch e := st.E.(type) {
	case *CallExpr:
		_, err := lw.lowerCall(e, false)
		return err
	case *AssignExpr:
		_, err := lw.lowerAssign(e)
		return err
	case *NewObjectExpr:
		_, err := lw.lowerNew(e)
		return err
	default:
		return lw.errf(st.Line, "expression statement must be a call or assignment")
	}
}

func (lw *lowerer) lowerIf(st *IfStmtNode) error {
	cond, err := lw.lowerExpr(st.Cond)
	if err != nil {
		return err
	}
	ifIdx := lw.emit(&jimple.IfStmt{Cond: cond})
	lw.pushScope()
	if err := lw.lowerStmts(st.Else); err != nil {
		return err
	}
	lw.popScope()
	gotoIdx := lw.emit(&jimple.GotoStmt{})
	thenStart := len(lw.body.Stmts)
	lw.pushScope()
	if err := lw.lowerStmts(st.Then); err != nil {
		return err
	}
	lw.popScope()
	end := lw.emit(&jimple.NopStmt{})
	lw.body.Stmts[ifIdx].(*jimple.IfStmt).Target = thenStart
	lw.body.Stmts[gotoIdx].(*jimple.GotoStmt).Target = end
	return nil
}

func (lw *lowerer) lowerWhile(st *WhileStmtNode) error {
	head := lw.emit(&jimple.NopStmt{})
	cond, err := lw.lowerExpr(st.Cond)
	if err != nil {
		return err
	}
	ifIdx := lw.emit(&jimple.IfStmt{Cond: cond}) // true -> body
	exitGoto := lw.emit(&jimple.GotoStmt{})
	bodyStart := len(lw.body.Stmts)
	lw.pushScope()
	if err := lw.lowerStmts(st.Body); err != nil {
		return err
	}
	lw.popScope()
	lw.emit(&jimple.GotoStmt{Target: head})
	end := lw.emit(&jimple.NopStmt{})
	lw.body.Stmts[ifIdx].(*jimple.IfStmt).Target = bodyStart
	lw.body.Stmts[exitGoto].(*jimple.GotoStmt).Target = end
	return nil
}

// --- expressions ---------------------------------------------------------

var _binOps = map[string]jimple.BinOp{
	"+": jimple.OpAdd, "-": jimple.OpSub, "*": jimple.OpMul, "/": jimple.OpDiv,
	"==": jimple.OpEq, "!=": jimple.OpNe, "<": jimple.OpLt, "<=": jimple.OpLe,
	">": jimple.OpGt, ">=": jimple.OpGe, "&&": jimple.OpAnd, "||": jimple.OpOr,
}

func (lw *lowerer) lowerExpr(e ExprNode) (jimple.Value, error) {
	switch ex := e.(type) {
	case *IntLit:
		return &jimple.IntConst{Val: ex.Val}, nil
	case *StrLit:
		return &jimple.StrConst{Val: ex.Val}, nil
	case *NullLit:
		return &jimple.NullConst{}, nil
	case *BoolLit:
		v := int64(0)
		if ex.Val {
			v = 1
		}
		return &jimple.IntConst{Val: v}, nil
	case *ThisLit:
		if lw.body.This == nil {
			return nil, lw.errf(ex.Line, "this in static context")
		}
		return lw.body.This, nil
	case *ClassLit:
		name := lw.res.mustResolveClass(ex.Type.Name)
		return &jimple.ClassConst{ClassName: name}, nil
	case *IdentExpr:
		val, className, err := lw.lowerRef(ex)
		if err != nil {
			return nil, err
		}
		if className != "" {
			return nil, lw.errf(ex.Line, "class %s used as a value", className)
		}
		return val, nil
	case *SelectExpr:
		val, className, err := lw.lowerRef(ex)
		if err != nil {
			return nil, err
		}
		if className != "" {
			return nil, lw.errf(ex.Line, "class %s used as a value", className)
		}
		return val, nil
	case *IndexExpr:
		base, err := lw.lowerExpr(ex.Base)
		if err != nil {
			return nil, err
		}
		idx, err := lw.lowerExpr(ex.Index)
		if err != nil {
			return nil, err
		}
		return &jimple.ArrayRef{Base: lw.atomize(base), Index: idx}, nil
	case *CallExpr:
		return lw.lowerCall(ex, true)
	case *NewObjectExpr:
		return lw.lowerNew(ex)
	case *NewArrayExprNode:
		elem, err := lw.res.resolveType(ex.Elem)
		if err != nil {
			return nil, lw.errf(ex.Line, "array element type: %v", err)
		}
		size, err := lw.lowerExpr(ex.Size)
		if err != nil {
			return nil, err
		}
		return &jimple.NewArrayExpr{Elem: elem, Size: size}, nil
	case *CastExprNode:
		typ, err := lw.res.resolveType(ex.Type)
		if err != nil {
			return nil, lw.errf(ex.Line, "cast type: %v", err)
		}
		inner, err := lw.lowerExpr(ex.E)
		if err != nil {
			return nil, err
		}
		return &jimple.CastExpr{Typ: typ, Op: inner}, nil
	case *AssignExpr:
		return lw.lowerAssign(ex)
	case *BinExpr:
		l, err := lw.lowerExpr(ex.L)
		if err != nil {
			return nil, err
		}
		r, err := lw.lowerExpr(ex.R)
		if err != nil {
			return nil, err
		}
		op, ok := _binOps[ex.Op]
		if !ok {
			return nil, lw.errf(ex.Line, "unsupported operator %q", ex.Op)
		}
		return &jimple.BinopExpr{Op: op, L: l, R: r}, nil
	case *UnaryExpr:
		inner, err := lw.lowerExpr(ex.E)
		if err != nil {
			return nil, err
		}
		return &jimple.BinopExpr{Op: jimple.OpEq, L: inner, R: &jimple.IntConst{Val: 0}}, nil
	case *InstanceOfExprNode:
		inner, err := lw.lowerExpr(ex.E)
		if err != nil {
			return nil, err
		}
		typ, err := lw.res.resolveType(ex.Type)
		if err != nil {
			return nil, lw.errf(ex.Line, "instanceof type: %v", err)
		}
		return &jimple.InstanceOfExpr{Op: inner, Check: typ}, nil
	case *superMarker:
		return nil, lw.errf(ex.Line, "super must be followed by a method call")
	default:
		return nil, fmt.Errorf("unsupported expression %T", e)
	}
}

// lowerAssign handles `lhs = rhs` and yields the assigned value.
func (lw *lowerer) lowerAssign(ex *AssignExpr) (jimple.Value, error) {
	rhs, err := lw.lowerExpr(ex.RHS)
	if err != nil {
		return nil, err
	}
	switch lhs := ex.LHS.(type) {
	case *IdentExpr:
		if l := lw.lookup(lhs.Name); l != nil {
			lw.emit(&jimple.AssignStmt{LHS: l, RHS: rhs})
			return l, nil
		}
		if ref := lw.fieldRefFor(lhs.Name); ref != nil {
			lw.emit(&jimple.AssignStmt{LHS: ref, RHS: rhs})
			return rhs, nil
		}
		return nil, lw.errf(lhs.Line, "unknown assignment target %q", lhs.Name)
	case *SelectExpr:
		val, className, err := lw.lowerRefBase(lhs)
		if err != nil {
			return nil, err
		}
		var ref *jimple.FieldRef
		if className != "" {
			ref = &jimple.FieldRef{Class: className, Field: lhs.Name, Typ: lw.fieldType(className, lhs.Name)}
		} else {
			base := lw.atomize(val)
			ref = &jimple.FieldRef{Base: base, Class: lw.classOfValue(base), Field: lhs.Name, Typ: lw.fieldType(lw.classOfValue(base), lhs.Name)}
		}
		lw.emit(&jimple.AssignStmt{LHS: ref, RHS: rhs})
		return rhs, nil
	case *IndexExpr:
		base, err := lw.lowerExpr(lhs.Base)
		if err != nil {
			return nil, err
		}
		idx, err := lw.lowerExpr(lhs.Index)
		if err != nil {
			return nil, err
		}
		lw.emit(&jimple.AssignStmt{LHS: &jimple.ArrayRef{Base: lw.atomize(base), Index: idx}, RHS: rhs})
		return rhs, nil
	default:
		return nil, fmt.Errorf("invalid assignment target %T", ex.LHS)
	}
}

// fieldRefFor resolves a bare identifier as a field of the enclosing
// class (instance or static), or nil.
func (lw *lowerer) fieldRefFor(name string) *jimple.FieldRef {
	f, owner := lw.h.ResolveField(lw.class.Name, name)
	if f == nil {
		return nil
	}
	if f.Modifiers.Has(java.ModStatic) {
		return &jimple.FieldRef{Class: owner, Field: name, Typ: f.Type}
	}
	if lw.body.This == nil {
		return nil
	}
	return &jimple.FieldRef{Base: lw.body.This, Class: owner, Field: name, Typ: f.Type}
}

// fieldType looks up a field's declared type, defaulting to Object for
// phantom fields.
func (lw *lowerer) fieldType(class, field string) java.Type {
	if f, _ := lw.h.ResolveField(class, field); f != nil {
		return f.Type
	}
	return java.ObjectType
}

// classOfValue returns the class name of a value's static type, for field
// reference bookkeeping.
func (lw *lowerer) classOfValue(v jimple.Value) string {
	if t := v.Type(); t.Kind == java.KindClass {
		return t.Name
	}
	return java.ObjectClass
}

// lowerRef resolves an identifier/selection chain into either a value or
// a class name (exactly one of the two).
func (lw *lowerer) lowerRef(e ExprNode) (jimple.Value, string, error) {
	switch ex := e.(type) {
	case *IdentExpr:
		if l := lw.lookup(ex.Name); l != nil {
			return l, "", nil
		}
		if ref := lw.fieldRefFor(ex.Name); ref != nil {
			return ref, "", nil
		}
		if fq := lw.res.resolveClass(ex.Name); fq != "" {
			return nil, fq, nil
		}
		return nil, "", lw.errf(ex.Line, "unknown identifier %q", ex.Name)
	case *SelectExpr:
		// Try whole-chain and prefix class resolution first.
		if qname, ok := exprToQName(ex); ok {
			segs := strings.Split(qname, ".")
			if lw.lookup(segs[0]) == nil && lw.fieldRefFor(segs[0]) == nil {
				return lw.lowerClassChain(ex, segs)
			}
		}
		val, className, err := lw.lowerRefBase(ex)
		if err != nil {
			return nil, "", err
		}
		if className != "" {
			return &jimple.FieldRef{Class: className, Field: ex.Name, Typ: lw.fieldType(className, ex.Name)}, "", nil
		}
		base := lw.atomize(val)
		cls := lw.classOfValue(base)
		return &jimple.FieldRef{Base: base, Class: cls, Field: ex.Name, Typ: lw.fieldType(cls, ex.Name)}, "", nil
	default:
		v, err := lw.lowerExpr(e)
		return v, "", err
	}
}

// lowerRefBase resolves the base of a SelectExpr.
func (lw *lowerer) lowerRefBase(ex *SelectExpr) (jimple.Value, string, error) {
	return lw.lowerRef(ex.Base)
}

// lowerClassChain interprets a dotted chain whose head is not a variable:
// the longest resolvable class prefix, followed by field loads.
func (lw *lowerer) lowerClassChain(ex *SelectExpr, segs []string) (jimple.Value, string, error) {
	// Longest prefix that names a declared (non-phantom would be ideal)
	// class wins; otherwise the whole chain is a (possibly phantom)
	// class reference.
	full := strings.Join(segs, ".")
	for k := len(segs); k >= 1; k-- {
		prefix := strings.Join(segs[:k], ".")
		var fq string
		if k == 1 {
			fq = lw.res.resolveClass(prefix)
		} else if lw.h.Class(prefix) != nil {
			fq = prefix
		}
		if fq == "" || lw.h.Class(fq) == nil && k > 1 {
			continue
		}
		if fq == "" {
			continue
		}
		if k == len(segs) {
			return nil, fq, nil
		}
		// Static field of the prefix class, then instance loads.
		var cur jimple.Value = &jimple.FieldRef{Class: fq, Field: segs[k], Typ: lw.fieldType(fq, segs[k])}
		for _, fieldName := range segs[k+1:] {
			base := lw.atomize(cur)
			cls := lw.classOfValue(base)
			cur = &jimple.FieldRef{Base: base, Class: cls, Field: fieldName, Typ: lw.fieldType(cls, fieldName)}
		}
		return cur, "", nil
	}
	// Nothing resolved: the whole dotted chain is a phantom class name.
	return nil, full, nil
}

// findMethod searches class and its supertypes for a callable method with
// the given name and arity, preferring exact parameter-type matches.
func (lw *lowerer) findMethod(class, name string, args []jimple.Value) *java.Method {
	var candidates []*java.Method
	seenClasses := make(map[string]bool)
	var visit func(n string)
	visit = func(n string) {
		if n == "" || seenClasses[n] {
			return
		}
		seenClasses[n] = true
		c := lw.h.Class(n)
		if c == nil {
			return
		}
		for _, m := range c.Methods {
			if m.Name == name && len(m.Params) == len(args) {
				candidates = append(candidates, m)
			}
		}
		visit(c.Super)
		for _, i := range c.Interfaces {
			visit(i)
		}
	}
	visit(class)
	if len(candidates) == 0 {
		return nil
	}
	for _, m := range candidates {
		exact := true
		for i, p := range m.Params {
			if !p.Equal(args[i].Type()) {
				exact = false
				break
			}
		}
		if exact {
			return m
		}
	}
	return candidates[0]
}

// synthesizeSig derives parameter types from argument static types for
// calls into phantom classes.
func synthesizeSig(args []jimple.Value) []java.Type {
	params := make([]java.Type, len(args))
	for i, a := range args {
		params[i] = a.Type()
	}
	return params
}

// lowerCall lowers a method call. When wantResult is true the call's
// value is materialized into a temp local.
func (lw *lowerer) lowerCall(ex *CallExpr, wantResult bool) (jimple.Value, error) {
	args := make([]jimple.Value, len(ex.Args))
	for i, a := range ex.Args {
		v, err := lw.lowerExpr(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}

	var inv *jimple.InvokeExpr
	switch {
	case ex.Super:
		if lw.body.This == nil {
			return nil, lw.errf(ex.Line, "super call in static context")
		}
		superClass := lw.class.Super
		if superClass == "" {
			superClass = java.ObjectClass
		}
		m := lw.findMethod(superClass, ex.Name, args)
		inv = lw.makeInvoke(jimple.InvokeSpecial, superClass, ex.Name, m, lw.body.This, args)
	case ex.Base == nil:
		m := lw.findMethod(lw.class.Name, ex.Name, args)
		if m != nil && m.IsStatic() {
			inv = lw.makeInvoke(jimple.InvokeStatic, m.ClassName, ex.Name, m, nil, args)
			break
		}
		if lw.body.This == nil {
			return nil, lw.errf(ex.Line, "unqualified call %q in static context must target a static method", ex.Name)
		}
		inv = lw.makeInvoke(jimple.InvokeVirtual, lw.class.Name, ex.Name, m, lw.body.This, args)
	default:
		val, className, err := lw.lowerRef(ex.Base)
		if err != nil {
			return nil, err
		}
		if className != "" {
			// java.lang.reflect.Proxy.dispatch(...) is the frontend's
			// marker for reflective/dynamic-proxy dispatch: it lowers to
			// an InvokeDynamic, which the whole static pipeline treats as
			// opaque — reproducing the paper's §V-B limitation.
			if className == "java.lang.reflect.Proxy" && ex.Name == "dispatch" {
				inv = &jimple.InvokeExpr{
					Kind: jimple.InvokeDynamic, Class: className, Name: ex.Name,
					ParamTypes: synthesizeSig(args), ReturnType: java.ObjectType, Args: args,
				}
				break
			}
			m := lw.findMethod(className, ex.Name, args)
			inv = lw.makeInvoke(jimple.InvokeStatic, className, ex.Name, m, nil, args)
			break
		}
		recv := lw.atomize(val)
		recvClass := lw.classOfValue(recv)
		m := lw.findMethod(recvClass, ex.Name, args)
		kind := jimple.InvokeVirtual
		if c := lw.h.Class(recvClass); c != nil && c.IsInterface() {
			kind = jimple.InvokeInterface
		}
		inv = lw.makeInvoke(kind, recvClass, ex.Name, m, recv, args)
	}

	if !wantResult {
		lw.emit(&jimple.InvokeStmt{Invoke: inv})
		return nil, nil
	}
	if inv.ReturnType.IsVoid() {
		return nil, lw.errf(ex.Line, "void call %q used as a value", ex.Name)
	}
	t := lw.newTemp(inv.ReturnType)
	lw.emit(&jimple.AssignStmt{LHS: t, RHS: inv})
	return t, nil
}

// makeInvoke assembles an InvokeExpr, falling back to a synthesized
// signature when no declaration was found.
func (lw *lowerer) makeInvoke(kind jimple.InvokeKind, class, name string, m *java.Method, base *jimple.Local, args []jimple.Value) *jimple.InvokeExpr {
	inv := &jimple.InvokeExpr{Kind: kind, Class: class, Name: name, Base: base, Args: args}
	if m != nil {
		inv.Class = m.ClassName
		inv.ParamTypes = m.Params
		inv.ReturnType = m.Return
		if m.IsStatic() && kind != jimple.InvokeStatic {
			inv.Kind = jimple.InvokeStatic
			inv.Base = nil
		}
	} else {
		inv.ParamTypes = synthesizeSig(args)
		inv.ReturnType = java.ObjectType
	}
	return inv
}

// lowerNew lowers `new T(args)`: allocation plus constructor call.
func (lw *lowerer) lowerNew(ex *NewObjectExpr) (jimple.Value, error) {
	fq := lw.res.mustResolveClass(ex.Type.Name)
	typ := java.ClassType(fq)
	tmp := lw.newTemp(typ)
	lw.emit(&jimple.AssignStmt{LHS: tmp, RHS: &jimple.NewExpr{Typ: typ}})
	args := make([]jimple.Value, len(ex.Args))
	for i, a := range ex.Args {
		v, err := lw.lowerExpr(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	ctor := lw.findMethod(fq, "<init>", args)
	if ctor == nil && len(args) == 0 {
		return tmp, nil // default constructor: nothing to call
	}
	inv := lw.makeInvoke(jimple.InvokeSpecial, fq, "<init>", ctor, tmp, args)
	inv.ReturnType = java.Void
	lw.emit(&jimple.InvokeStmt{Invoke: inv})
	return tmp, nil
}
