package javasrc

import (
	"fmt"
	"strconv"
	"strings"

	"tabby/internal/java"
)

// Parse parses one mini-Java source file into a Unit.
func Parse(file, src string) (*Unit, error) {
	toks, err := lex(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	unit, err := p.parseUnit()
	if err != nil {
		return nil, err
	}
	return unit, nil
}

type parser struct {
	file string
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return &SyntaxError{File: p.file, Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) at(text string) bool { return p.cur().text == text && p.cur().kind != tokString }

func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(text string) (token, error) {
	if !p.at(text) {
		return p.cur(), p.errf(p.cur(), "expected %q, found %s", text, p.cur())
	}
	return p.next(), nil
}

func (p *parser) expectIdent() (token, error) {
	if p.cur().kind != tokIdent {
		return p.cur(), p.errf(p.cur(), "expected identifier, found %s", p.cur())
	}
	return p.next(), nil
}

// parseUnit: packageDecl? importDecl* typeDecl+
func (p *parser) parseUnit() (*Unit, error) {
	u := &Unit{File: p.file}
	if p.accept("package") {
		name, err := p.parseQName()
		if err != nil {
			return nil, err
		}
		u.Package = name
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	for p.accept("import") {
		name, err := p.parseQName()
		if err != nil {
			return nil, err
		}
		u.Imports = append(u.Imports, name)
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	for p.cur().kind != tokEOF {
		td, err := p.parseTypeDecl()
		if err != nil {
			return nil, err
		}
		u.Types = append(u.Types, td)
	}
	if len(u.Types) == 0 {
		return nil, p.errf(p.cur(), "no type declarations in file")
	}
	return u, nil
}

func (p *parser) parseQName() (string, error) {
	t, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	parts := []string{t.text}
	for p.accept(".") {
		t, err := p.expectIdent()
		if err != nil {
			return "", err
		}
		parts = append(parts, t.text)
	}
	return strings.Join(parts, "."), nil
}

var _modifierFlags = map[string]java.Modifier{
	"public": java.ModPublic, "private": java.ModPrivate, "protected": java.ModProtected,
	"static": java.ModStatic, "final": java.ModFinal, "abstract": java.ModAbstract,
	"native": java.ModNative, "transient": java.ModTransient,
	"synchronized": java.ModSynchronized, "volatile": java.ModVolatile,
}

func (p *parser) parseModifiers() java.Modifier {
	var mods java.Modifier
	for {
		if flag, ok := _modifierFlags[p.cur().text]; ok && p.cur().kind == tokKeyword {
			mods |= flag
			p.next()
			continue
		}
		return mods
	}
}

func (p *parser) parseTypeDecl() (*TypeDecl, error) {
	mods := p.parseModifiers()
	switch {
	case p.accept("class"):
	case p.accept("interface"):
		mods |= java.ModInterface | java.ModAbstract
	default:
		return nil, p.errf(p.cur(), "expected class or interface, found %s", p.cur())
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	td := &TypeDecl{Name: nameTok.text, Mods: mods, Line: nameTok.line}
	if p.accept("extends") {
		for {
			n, err := p.parseQName()
			if err != nil {
				return nil, err
			}
			td.Extends = append(td.Extends, n)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept("implements") {
		for {
			n, err := p.parseQName()
			if err != nil {
				return nil, err
			}
			td.Implements = append(td.Implements, n)
			if !p.accept(",") {
				break
			}
		}
	}
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	for !p.at("}") {
		if err := p.parseMember(td); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect("}"); err != nil {
		return nil, err
	}
	return td, nil
}

// parseMember parses a field, method or constructor into td.
func (p *parser) parseMember(td *TypeDecl) error {
	mods := p.parseModifiers()
	// Constructor: Name matching the class, followed directly by "(".
	if p.cur().kind == tokIdent && p.cur().text == td.Name && p.peek().text == "(" {
		ctor := &MethodDecl{Mods: mods, Name: "<init>", Ret: typeRef{Name: "void"}, Line: p.cur().line}
		p.next()
		if err := p.parseMethodRest(ctor); err != nil {
			return err
		}
		td.Methods = append(td.Methods, ctor)
		return nil
	}
	typ, err := p.parseTypeRef()
	if err != nil {
		return err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.at("(") {
		m := &MethodDecl{Mods: mods, Ret: typ, Name: nameTok.text, Line: nameTok.line}
		if td.Mods.Has(java.ModInterface) {
			m.Mods |= java.ModAbstract
		}
		if err := p.parseMethodRest(m); err != nil {
			return err
		}
		td.Methods = append(td.Methods, m)
		return nil
	}
	// Field. Initializers are not part of the subset.
	if p.at("=") {
		return p.errf(p.cur(), "field initializers are not supported; assign in a constructor")
	}
	td.Fields = append(td.Fields, &FieldDecl{Mods: mods, Type: typ, Name: nameTok.text, Line: nameTok.line})
	for p.accept(",") { // `int a, b;` — additional declarators
		extra, err := p.expectIdent()
		if err != nil {
			return err
		}
		td.Fields = append(td.Fields, &FieldDecl{Mods: mods, Type: typ, Name: extra.text, Line: extra.line})
	}
	if _, err := p.expect(";"); err != nil {
		return err
	}
	return nil
}

// parseTypeRef: (primitive | QName) ("[" "]")*
func (p *parser) parseTypeRef() (typeRef, error) {
	t := p.cur()
	var name string
	if t.kind == tokKeyword {
		switch t.text {
		case "void", "boolean", "int", "long", "double", "float", "char", "short", "byte":
			name = t.text
			p.next()
		default:
			return typeRef{}, p.errf(t, "expected type, found %s", t)
		}
	} else {
		n, err := p.parseQName()
		if err != nil {
			return typeRef{}, err
		}
		name = n
	}
	tr := typeRef{Name: name}
	for p.at("[") && p.peek().text == "]" {
		p.next()
		p.next()
		tr.Dims++
	}
	return tr, nil
}

func (p *parser) parseMethodRest(m *MethodDecl) error {
	if _, err := p.expect("("); err != nil {
		return err
	}
	for !p.at(")") {
		typ, err := p.parseTypeRef()
		if err != nil {
			return err
		}
		nameTok, err := p.expectIdent()
		if err != nil {
			return err
		}
		m.Params = append(m.Params, ParamDecl{Type: typ, Name: nameTok.text})
		if !p.accept(",") {
			break
		}
	}
	if _, err := p.expect(")"); err != nil {
		return err
	}
	// `throws X, Y` clauses are accepted and ignored.
	if p.accept("throws") {
		for {
			if _, err := p.parseQName(); err != nil {
				return err
			}
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept(";") {
		return nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	m.Body = body
	m.HasBody = true
	return nil
}

func (p *parser) parseBlock() ([]StmtNode, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	var stmts []StmtNode
	for !p.at("}") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	if _, err := p.expect("}"); err != nil {
		return nil, err
	}
	return stmts, nil
}

func (p *parser) parseStmt() (StmtNode, error) {
	t := p.cur()
	switch {
	case p.at("{"):
		stmts, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &BlockStmtNode{Stmts: stmts}, nil
	case p.accept("if"):
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		thenStmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		node := &IfStmtNode{Cond: cond, Then: flatten(thenStmt), Line: t.line}
		if p.accept("else") {
			elseStmt, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			node.Else = flatten(elseStmt)
		}
		return node, nil
	case p.accept("while"):
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmtNode{Cond: cond, Body: flatten(body), Line: t.line}, nil
	case p.accept("return"):
		node := &ReturnStmtNode{Line: t.line}
		if !p.at(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			node.E = e
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return node, nil
	case p.accept("throw"):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ThrowStmtNode{E: e, Line: t.line}, nil
	}
	// Local declaration vs. expression statement: a type reference
	// followed by an identifier is a declaration.
	if save := p.pos; p.looksLikeLocalDecl() {
		typ, err := p.parseTypeRef()
		if err != nil {
			p.pos = save
		} else if p.cur().kind == tokIdent {
			nameTok := p.next()
			node := &LocalDeclStmt{Type: typ, Name: nameTok.text, Line: nameTok.line}
			if p.accept("=") {
				init, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				node.Init = init
			}
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
			return node, nil
		} else {
			p.pos = save
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	switch e.(type) {
	case *CallExpr, *AssignExpr, *NewObjectExpr:
		return &ExprStmt{E: e, Line: t.line}, nil
	default:
		return nil, p.errf(t, "expression statement must be a call or assignment")
	}
}

// looksLikeLocalDecl reports whether the upcoming tokens read as
// `Type ident ...` rather than an expression.
func (p *parser) looksLikeLocalDecl() bool {
	t := p.cur()
	if t.kind == tokKeyword {
		switch t.text {
		case "boolean", "int", "long", "double", "float", "char", "short", "byte":
			return true
		}
		return false
	}
	if t.kind != tokIdent {
		return false
	}
	// Scan a qualified name, optional [], then require an identifier.
	i := p.pos
	toks := p.toks
	i++ // first ident
	for toks[i].text == "." && toks[i+1].kind == tokIdent {
		i += 2
	}
	for toks[i].text == "[" && toks[i+1].text == "]" {
		i += 2
	}
	return toks[i].kind == tokIdent
}

func flatten(s StmtNode) []StmtNode {
	if b, ok := s.(*BlockStmtNode); ok {
		return b.Stmts
	}
	return []StmtNode{s}
}

// --- expressions ---------------------------------------------------------

func (p *parser) parseExpr() (ExprNode, error) { return p.parseAssign() }

func (p *parser) parseAssign() (ExprNode, error) {
	lhs, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.at("=") {
		t := p.next()
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		switch lhs.(type) {
		case *IdentExpr, *SelectExpr, *IndexExpr:
			return &AssignExpr{LHS: lhs, RHS: rhs, Line: t.line}, nil
		default:
			return nil, p.errf(t, "invalid assignment target")
		}
	}
	return lhs, nil
}

func (p *parser) parseBinary(sub func() (ExprNode, error), ops ...string) (ExprNode, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range ops {
			if p.at(op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return l, nil
		}
		t := p.next()
		r, err := sub()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: matched, L: l, R: r, Line: t.line}
	}
}

func (p *parser) parseOr() (ExprNode, error) {
	return p.parseBinary(p.parseAnd, "||")
}

func (p *parser) parseAnd() (ExprNode, error) {
	return p.parseBinary(p.parseEquality, "&&")
}

func (p *parser) parseEquality() (ExprNode, error) {
	return p.parseBinary(p.parseRelational, "==", "!=")
}

func (p *parser) parseRelational() (ExprNode, error) {
	l, err := p.parseBinary(p.parseAdditive, "<", ">", "<=", ">=")
	if err != nil {
		return nil, err
	}
	if p.at("instanceof") {
		t := p.next()
		typ, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		return &InstanceOfExprNode{E: l, Type: typ, Line: t.line}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (ExprNode, error) {
	return p.parseBinary(p.parseMultiplicative, "+", "-")
}

func (p *parser) parseMultiplicative() (ExprNode, error) {
	return p.parseBinary(p.parseUnary, "*", "/")
}

func (p *parser) parseUnary() (ExprNode, error) {
	if p.at("!") {
		t := p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "!", E: e, Line: t.line}, nil
	}
	// Cast: "(" type ")" unary — disambiguated by lookahead.
	if p.at("(") && p.looksLikeCast() {
		t := p.next() // "("
		typ, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &CastExprNode{Type: typ, E: e, Line: t.line}, nil
	}
	return p.parsePostfix()
}

// looksLikeCast checks "(" QName|primitive ("[""]")* ")" X where X starts
// a unary expression other than an operator.
func (p *parser) looksLikeCast() bool {
	toks := p.toks
	i := p.pos + 1 // after "("
	switch {
	case toks[i].kind == tokKeyword:
		switch toks[i].text {
		case "boolean", "int", "long", "double", "float", "char", "short", "byte":
			i++
		default:
			return false
		}
	case toks[i].kind == tokIdent:
		i++
		for toks[i].text == "." && toks[i+1].kind == tokIdent {
			i += 2
		}
	default:
		return false
	}
	for toks[i].text == "[" && toks[i+1].text == "]" {
		i += 2
	}
	if toks[i].text != ")" {
		return false
	}
	after := toks[i+1]
	if after.kind == tokIdent || after.kind == tokString || after.kind == tokInt {
		return true
	}
	switch after.text {
	case "this", "new", "null", "(", "!", "true", "false":
		return true
	}
	return false
}

func (p *parser) parsePostfix() (ExprNode, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at("."):
			p.next()
			// T.class literal
			if p.at("class") {
				t := p.next()
				name, ok := exprToQName(e)
				if !ok {
					return nil, p.errf(t, ".class requires a type name")
				}
				e = &ClassLit{Type: typeRef{Name: name}, Line: t.line}
				continue
			}
			nameTok, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if p.at("(") {
				args, err := p.parseArgs()
				if err != nil {
					return nil, err
				}
				_, isSuper := e.(*superMarker)
				if isSuper {
					e = &CallExpr{Name: nameTok.text, Args: args, Super: true, Line: nameTok.line}
				} else {
					e = &CallExpr{Base: e, Name: nameTok.text, Args: args, Line: nameTok.line}
				}
				continue
			}
			e = &SelectExpr{Base: e, Name: nameTok.text, Line: nameTok.line}
		case p.at("["):
			t := p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &IndexExpr{Base: e, Index: idx, Line: t.line}
		default:
			return e, nil
		}
	}
}

// superMarker is a placeholder for `super` awaiting its `.method(...)`.
type superMarker struct{ Line int }

func (*superMarker) exprNode() {}

func (p *parser) parseArgs() ([]ExprNode, error) {
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	var args []ExprNode
	for !p.at(")") {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.accept(",") {
			break
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) parsePrimary() (ExprNode, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf(t, "bad integer literal %q", t.text)
		}
		return &IntLit{Val: v, Line: t.line}, nil
	case t.kind == tokString:
		p.next()
		return &StrLit{Val: t.text, Line: t.line}, nil
	case p.accept("null"):
		return &NullLit{Line: t.line}, nil
	case p.accept("true"):
		return &BoolLit{Val: true, Line: t.line}, nil
	case p.accept("false"):
		return &BoolLit{Val: false, Line: t.line}, nil
	case p.accept("this"):
		return &ThisLit{Line: t.line}, nil
	case p.accept("super"):
		return &superMarker{Line: t.line}, nil
	case p.accept("new"):
		typ, err := p.parseQNameAsTypeRef()
		if err != nil {
			return nil, err
		}
		if p.at("[") {
			p.next()
			size, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			return &NewArrayExprNode{Elem: typ, Size: size, Line: t.line}, nil
		}
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		return &NewObjectExpr{Type: typ, Args: args, Line: t.line}, nil
	case p.at("("):
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.next()
		if p.at("(") {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Name: t.text, Args: args, Line: t.line}, nil
		}
		return &IdentExpr{Name: t.text, Line: t.line}, nil
	default:
		return nil, p.errf(t, "unexpected token %s in expression", t)
	}
}

// parseQNameAsTypeRef parses a possibly-qualified type name after `new`.
func (p *parser) parseQNameAsTypeRef() (typeRef, error) {
	if p.cur().kind == tokKeyword {
		switch p.cur().text {
		case "boolean", "int", "long", "double", "float", "char", "short", "byte":
			name := p.next().text
			return typeRef{Name: name}, nil
		}
	}
	n, err := p.parseQName()
	if err != nil {
		return typeRef{}, err
	}
	return typeRef{Name: n}, nil
}

// exprToQName flattens an Ident/Select chain into a dotted name.
func exprToQName(e ExprNode) (string, bool) {
	switch n := e.(type) {
	case *IdentExpr:
		return n.Name, true
	case *SelectExpr:
		base, ok := exprToQName(n.Base)
		if !ok {
			return "", false
		}
		return base + "." + n.Name, true
	default:
		return "", false
	}
}
