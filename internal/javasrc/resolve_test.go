package javasrc

import "testing"

// TestJavaLangResolution pins the implicit java.lang.* table: every name
// javac resolves without an import must resolve here too, and the
// precedence order (imports, then same-package declarations, then
// java.lang) must hold.
func TestJavaLangResolution(t *testing.T) {
	decls := indexDeclared(map[string]bool{
		"com.example.Helper": true,
		"com.example.Number": true, // shadows java.lang.Number in-package
	})
	r := newResolver(&Unit{
		Package: "com.example",
		Imports: []string{"java.util.HashMap", "other.pkg.Character"},
	}, decls)

	cases := []struct {
		name string
		want string
	}{
		// The boxed/common types of the implicit-import table.
		{"Object", "java.lang.Object"},
		{"String", "java.lang.String"},
		{"Integer", "java.lang.Integer"},
		{"Long", "java.lang.Long"},
		{"Boolean", "java.lang.Boolean"},
		{"Byte", "java.lang.Byte"},
		{"Short", "java.lang.Short"},
		{"Float", "java.lang.Float"},
		{"Double", "java.lang.Double"},
		{"Number", "com.example.Number"},     // same-package beats java.lang
		{"Character", "other.pkg.Character"}, // import beats java.lang
		{"CharSequence", "java.lang.CharSequence"},
		{"Math", "java.lang.Math"},
		{"Runtime", "java.lang.Runtime"},
		// Precedence of the other tables.
		{"Helper", "com.example.Helper"},
		{"HashMap", "java.util.HashMap"},
		// Qualified names pass through; unknown simple names fail.
		{"java.io.File", "java.io.File"},
		{"NoSuchClass", ""},
	}
	for _, tc := range cases {
		if got := r.resolveClass(tc.name); got != tc.want {
			t.Errorf("resolveClass(%q) = %q, want %q", tc.name, got, tc.want)
		}
	}

	// A unit with no imports resolves Number/Character from java.lang.
	bare := newResolver(&Unit{Package: "p"}, indexDeclared(map[string]bool{}))
	for name, want := range map[string]string{
		"Number":    "java.lang.Number",
		"Character": "java.lang.Character",
	} {
		if got := bare.resolveClass(name); got != want {
			t.Errorf("bare resolveClass(%q) = %q, want %q", name, got, want)
		}
	}
}
