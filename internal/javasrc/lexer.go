// Package javasrc is the reproduction's frontend — the role Soot plays in
// the paper (§III-B1): it parses a compact Java subset ("mini-Java") and
// lowers it to the jimple three-address IR, producing the Program that the
// controllability analysis and CPG builder consume.
//
// The subset covers everything gadget code needs: classes and interfaces
// with extends/implements, fields, methods and constructors, locals,
// assignments, field and array access, casts, instanceof, new, string
// concatenation, if/else, while, return, throw, and method calls of all
// dispatch flavors. Generics, lambdas, try/catch and nested classes are
// deliberately out of scope.
package javasrc

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokKeyword
	tokInt
	tokString
	tokPunct // one of the operator/punctuation lexemes
)

// token is a single lexeme with its position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

// keywords of the mini-Java subset.
var _keywords = map[string]bool{
	"package": true, "import": true, "class": true, "interface": true,
	"extends": true, "implements": true,
	"public": true, "private": true, "protected": true, "static": true,
	"final": true, "abstract": true, "native": true, "transient": true,
	"synchronized": true, "volatile": true,
	"void": true, "boolean": true, "int": true, "long": true,
	"double": true, "float": true, "char": true, "short": true, "byte": true,
	"if": true, "else": true, "while": true, "return": true, "throw": true,
	"new": true, "this": true, "null": true, "true": true, "false": true,
	"instanceof": true, "super": true,
}

// multi-character punctuation, longest first.
var _punct2 = []string{"==", "!=", "<=", ">=", "&&", "||"}

// SyntaxError reports a lexical or parse failure with its location.
type SyntaxError struct {
	File string
	Line int
	Col  int
	Msg  string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

// lex tokenizes src. file is used for error messages only.
func lex(file, src string) ([]token, error) {
	var (
		toks []token
		line = 1
		col  = 1
	)
	i := 0
	n := len(src)
	fail := func(msg string) ([]token, error) {
		return nil, &SyntaxError{File: file, Line: line, Col: col, Msg: msg}
	}
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			advance(2)
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				advance(1)
			}
			if i+1 >= n {
				return fail("unterminated block comment")
			}
			advance(2)
		case c == '"':
			startLine, startCol := line, col
			advance(1)
			var sb strings.Builder
			for i < n && src[i] != '"' {
				if src[i] == '\\' && i+1 < n {
					advance(1)
					switch src[i] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '\\':
						sb.WriteByte('\\')
					case '"':
						sb.WriteByte('"')
					default:
						sb.WriteByte(src[i])
					}
					advance(1)
					continue
				}
				if src[i] == '\n' {
					return fail("unterminated string literal")
				}
				sb.WriteByte(src[i])
				advance(1)
			}
			if i >= n {
				return fail("unterminated string literal")
			}
			advance(1)
			toks = append(toks, token{kind: tokString, text: sb.String(), line: startLine, col: startCol})
		case unicode.IsDigit(rune(c)):
			startLine, startCol := line, col
			j := i
			for j < n && (unicode.IsDigit(rune(src[j])) || src[j] == 'L' || src[j] == 'l') {
				j++
			}
			text := strings.TrimRight(src[i:j], "Ll")
			toks = append(toks, token{kind: tokInt, text: text, line: startLine, col: startCol})
			advance(j - i)
		case unicode.IsLetter(rune(c)) || c == '_' || c == '$' || c == '<':
			// '<' begins an identifier only for the special names <init>
			// and <clinit>; otherwise it is punctuation.
			if c == '<' {
				if !(strings.HasPrefix(src[i:], "<init>") || strings.HasPrefix(src[i:], "<clinit>")) {
					goto punct
				}
			}
			{
				startLine, startCol := line, col
				j := i
				if c == '<' {
					j = i + strings.IndexByte(src[i:], '>') + 1
				} else {
					for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '$') {
						j++
					}
				}
				text := src[i:j]
				kind := tokIdent
				if _keywords[text] {
					kind = tokKeyword
				}
				toks = append(toks, token{kind: kind, text: text, line: startLine, col: startCol})
				advance(j - i)
			}
		default:
			goto punct
		}
		continue
	punct:
		{
			startLine, startCol := line, col
			matched := ""
			for _, p := range _punct2 {
				if strings.HasPrefix(src[i:], p) {
					matched = p
					break
				}
			}
			if matched == "" {
				if strings.ContainsRune("(){}[];,.=<>+-*/!&|", rune(src[i])) {
					matched = string(src[i])
				} else {
					return fail(fmt.Sprintf("unexpected character %q", src[i]))
				}
			}
			toks = append(toks, token{kind: tokPunct, text: matched, line: startLine, col: startCol})
			advance(len(matched))
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col})
	return toks, nil
}
