package javasrc

import (
	"sort"
	"strings"
	"testing"

	"tabby/internal/sortutil"
)

func cacheTestArchives() []ArchiveSource {
	return []ArchiveSource{{
		Name: "app.jar",
		Files: []File{
			{Name: "A.java", Source: `package app;
public class A {
    public B b;
    public String run(String s) {
        return this.b.lower(s);
    }
}
`},
			{Name: "B.java", Source: `package app;
public class B {
    public String lower(String s) {
        return s;
    }
}
`},
		},
	}}
}

// programSignature renders every body deterministically, so two programs
// compare structurally.
func programSignature(t *testing.T, archives []ArchiveSource) string {
	t.Helper()
	prog, err := CompileArchives(archives)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, key := range sortutil.SortedKeys(prog.Bodies) {
		sb.WriteString(string(key) + "\n" + prog.Bodies[key].String() + "\n")
	}
	return sb.String()
}

func cachedSignature(t *testing.T, cache *Cache, archives []ArchiveSource) (string, CompileStats) {
	t.Helper()
	prog, stats, err := CompileArchivesCached(archives, CompileOptions{}, cache)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, key := range sortutil.SortedKeys(prog.Bodies) {
		sb.WriteString(string(key) + "\n" + prog.Bodies[key].String() + "\n")
	}
	return sb.String(), stats
}

// TestCompileCacheReuseAndInvalidation pins the frontend cache's
// contract: a warm recompile reuses the whole program, a one-file edit
// re-lowers only that file, and every cached compile is structurally
// identical to a cacheless one.
func TestCompileCacheReuseAndInvalidation(t *testing.T) {
	archives := cacheTestArchives()
	want := programSignature(t, archives)

	cache := NewCache()
	got, stats := cachedSignature(t, cache, archives)
	if got != want {
		t.Error("cold cached compile differs from cacheless compile")
	}
	if stats.ProgramReused || stats.ParseHits != 0 || stats.Files != 2 {
		t.Errorf("cold stats = %+v", stats)
	}
	if stats.HierarchyFP == "" {
		t.Error("no hierarchy fingerprint")
	}
	coldFP := stats.HierarchyFP

	got, stats = cachedSignature(t, cache, archives)
	if got != want {
		t.Error("warm compile differs")
	}
	if !stats.ProgramReused {
		t.Errorf("warm stats = %+v, want ProgramReused", stats)
	}
	if stats.HierarchyFP != coldFP {
		t.Error("hierarchy fingerprint changed on identical input")
	}

	// Edit one method body: same hierarchy, one file re-lowered.
	edited := cacheTestArchives()
	edited[0].Files[1].Source = strings.Replace(
		edited[0].Files[1].Source, "return s;", `String x = s; return x;`, 1)
	wantEdited := programSignature(t, edited)
	got, stats = cachedSignature(t, cache, edited)
	if got == want {
		t.Error("edit produced an identical program")
	}
	if got != wantEdited {
		t.Error("edited cached compile differs from cacheless compile")
	}
	if stats.ProgramReused {
		t.Error("edited corpus must not reuse the program wholesale")
	}
	if stats.BodyHits != 1 || stats.ParseHits != 1 {
		t.Errorf("edited stats = %+v, want exactly one file recompiled", stats)
	}
	if stats.HierarchyFP != coldFP {
		t.Error("body-only edit changed the hierarchy fingerprint")
	}
}

// TestCompileCacheKeysOnContentNotOrder: archive file order is part of
// the corpus, so no stale reuse — but per-file artifacts still hit.
func TestCompileCacheKeysOnContentNotOrder(t *testing.T) {
	archives := cacheTestArchives()
	cache := NewCache()
	if _, _, err := CompileArchivesCached(archives, CompileOptions{}, cache); err != nil {
		t.Fatal(err)
	}
	reordered := cacheTestArchives()
	sort.Slice(reordered[0].Files, func(i, j int) bool {
		return reordered[0].Files[i].Name > reordered[0].Files[j].Name
	})
	sig, stats := cachedSignature(t, cache, reordered)
	if stats.ParseHits != 2 || stats.BodyHits != 2 {
		t.Errorf("reordered stats = %+v, want full per-file reuse", stats)
	}
	if want := programSignature(t, reordered); sig != want {
		t.Error("reordered cached compile differs from cacheless compile")
	}
}
