package javasrc

import (
	"strings"
	"testing"

	"tabby/internal/java"
	"tabby/internal/jimple"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("t.java", `class A { int x; } // comment
/* block
comment */ "str\n" 42L == <init>`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.kind == tokEOF {
			break
		}
		texts = append(texts, tok.text)
	}
	want := []string{"class", "A", "{", "int", "x", ";", "}", "str\n", "42", "==", "<init>"}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %q, want %q", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "/* unterminated", "class A { # }"} {
		if _, err := lex("t.java", src); err == nil {
			t.Errorf("lex(%q) must fail", src)
		}
	}
	// Errors carry positions.
	_, err := lex("t.java", "\n\n  \"oops")
	var se *SyntaxError
	if !asSyntaxError(err, &se) || se.Line != 3 {
		t.Errorf("error position wrong: %v", err)
	}
}

func asSyntaxError(err error, out **SyntaxError) bool {
	se, ok := err.(*SyntaxError)
	if ok {
		*out = se
	}
	return ok
}

func TestParseClassShape(t *testing.T) {
	u, err := Parse("t.java", `
package com.example;
import java.io.Serializable;

public class Point extends Base implements Serializable, Cloneable {
    private int x;
    private transient Object cache;

    public Point(int x) { this.x = x; }
    public int getX() { return x; }
    public abstract void ghost();
}

interface Shape { int area(); }
`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Package != "com.example" || len(u.Imports) != 1 || len(u.Types) != 2 {
		t.Fatalf("unit shape: %+v", u)
	}
	point := u.Types[0]
	if point.Name != "Point" || point.Extends[0] != "Base" || len(point.Implements) != 2 {
		t.Fatalf("class header: %+v", point)
	}
	if len(point.Fields) != 2 || !point.Fields[1].Mods.Has(java.ModTransient) {
		t.Fatalf("fields: %+v", point.Fields)
	}
	if len(point.Methods) != 3 {
		t.Fatalf("methods: %d", len(point.Methods))
	}
	if point.Methods[0].Name != "<init>" || !point.Methods[0].HasBody {
		t.Errorf("constructor: %+v", point.Methods[0])
	}
	if point.Methods[2].HasBody {
		t.Error("abstract method must have no body")
	}
	shape := u.Types[1]
	if !shape.Mods.Has(java.ModInterface) || len(shape.Methods) != 1 || shape.Methods[0].HasBody {
		t.Fatalf("interface: %+v", shape)
	}
}

func TestParseStatements(t *testing.T) {
	u, err := Parse("t.java", `
class C {
    void m(Object o, int n) {
        Object x = o;
        if (n == 0) { x = null; } else x = o;
        while (n < 10) { n = n + 1; }
        java.lang.Runtime.getRuntime().exec("id");
        String s = (String) x;
        Object[] arr = new Object[3];
        arr[0] = s;
        boolean b = x instanceof String;
        if (!b) { return; }
        throw new RuntimeException("boom");
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	m := u.Types[0].Methods[0]
	if len(m.Body) != 10 {
		t.Fatalf("statements = %d, want 10", len(m.Body))
	}
	if _, ok := m.Body[1].(*IfStmtNode); !ok {
		t.Errorf("stmt 1 is %T", m.Body[1])
	}
	if _, ok := m.Body[2].(*WhileStmtNode); !ok {
		t.Errorf("stmt 2 is %T", m.Body[2])
	}
	if _, ok := m.Body[9].(*ThrowStmtNode); !ok {
		t.Errorf("stmt 9 is %T", m.Body[9])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                              // no types
		"class { }",                     // missing name
		"class A { int x = 5; }",        // field initializer
		"class A { void m() { 5; } }",   // expression statement not call/assign
		"class A { void m() { x ==; }}", // junk expression
		"class A extends B, C { }",      // multi-extends handled at compile, parse ok
	}
	for i, src := range bad[:5] {
		if _, err := Parse("t.java", src); err == nil {
			t.Errorf("case %d: Parse(%q) must fail", i, src)
		}
	}
	// Multi-extends parses but compile rejects it for classes.
	if _, err := Compile("a", "class A extends B, C { }"); err == nil {
		t.Error("class with multiple extends must fail to compile")
	}
}

func TestCompileProducesHierarchyAndBodies(t *testing.T) {
	prog, err := Compile("demo.jar", `
package demo;
import java.io.Serializable;

public class Holder implements Serializable {
    public Object value;
    public Object get() { return this.value; }
    public void set(Object v) { value = v; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Hierarchy.Class("demo.Holder")
	if c == nil || c.Archive != "demo.jar" {
		t.Fatalf("class missing or wrong archive: %+v", c)
	}
	if !prog.Hierarchy.IsSerializable("demo.Holder") {
		t.Error("Holder must be serializable")
	}
	get := prog.Body(java.MakeMethodKey("demo.Holder", "get", nil))
	if get == nil {
		t.Fatal("get body missing")
	}
	// get: this identity, return this.value (field loads may sit directly
	// in return position — the taint analysis evaluates them in place).
	foundFieldLoad := false
	for _, s := range get.Stmts {
		var rhs jimple.Value
		switch st := s.(type) {
		case *jimple.AssignStmt:
			rhs = st.RHS
		case *jimple.ReturnStmt:
			rhs = st.Op
		}
		if fr, ok := rhs.(*jimple.FieldRef); ok && fr.Field == "value" && fr.Base != nil {
			foundFieldLoad = true
		}
	}
	if !foundFieldLoad {
		t.Errorf("get body lacks field load:\n%s", get.String())
	}
	// set uses the bare identifier form: `value = v`.
	set := prog.Body(java.MakeMethodKey("demo.Holder", "set", []java.Type{java.ObjectType}))
	foundStore := false
	for _, s := range set.Stmts {
		if as, ok := s.(*jimple.AssignStmt); ok {
			if fr, ok := as.LHS.(*jimple.FieldRef); ok && fr.Field == "value" {
				foundStore = true
			}
		}
	}
	if !foundStore {
		t.Errorf("set body lacks field store:\n%s", set.String())
	}
	if len(prog.Archives) != 1 || prog.Archives[0].Name != "demo.jar" || len(prog.Archives[0].Classes) != 1 {
		t.Errorf("archives: %+v", prog.Archives)
	}
}

func TestCompileCallKinds(t *testing.T) {
	prog, err := Compile("kinds", `
package k;

interface Handler { void handle(Object o); }

class Impl implements Handler {
    public void handle(Object o) { }
}

class Driver {
    Handler h;
    static void run(Object o) { }
    void drive(Object o) {
        h.handle(o);                       // interface invoke
        Driver.run(o);                     // static invoke
        run(o);                            // unqualified static
        this.helper(o);                    // virtual on this
        helper(o);                         // unqualified virtual
        ext.Phantom.doThing(o);            // phantom static
    }
    void helper(Object o) { }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	drive := prog.Body(java.MakeMethodKey("k.Driver", "drive", []java.Type{java.ObjectType}))
	if drive == nil {
		t.Fatal("drive body missing")
	}
	invokes := drive.Invokes()
	if len(invokes) != 6 {
		t.Fatalf("invokes = %d, want 6:\n%s", len(invokes), drive.String())
	}
	wantKinds := []jimple.InvokeKind{
		jimple.InvokeInterface, jimple.InvokeStatic, jimple.InvokeStatic,
		jimple.InvokeVirtual, jimple.InvokeVirtual, jimple.InvokeStatic,
	}
	for i, inv := range invokes {
		if inv.Expr.Kind != wantKinds[i] {
			t.Errorf("invoke %d (%s) kind = %s, want %s", i, inv.Expr.Name, inv.Expr.Kind, wantKinds[i])
		}
	}
	if invokes[0].Expr.Class != "k.Handler" {
		t.Errorf("interface call class = %s", invokes[0].Expr.Class)
	}
	if invokes[5].Expr.Class != "ext.Phantom" {
		t.Errorf("phantom call class = %s", invokes[5].Expr.Class)
	}
}

func TestCompileConstructors(t *testing.T) {
	prog, err := Compile("ctor", `
package c;
class Box {
    Object v;
    Box(Object v) { this.v = v; }
}
class Maker {
    Box make(Object o) { return new Box(o); }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	make := prog.Body(java.MakeMethodKey("c.Maker", "make", []java.Type{java.ObjectType}))
	var ctorCall *jimple.InvokeExpr
	for _, inv := range make.Invokes() {
		if inv.Expr.Name == "<init>" {
			ctorCall = inv.Expr
		}
	}
	if ctorCall == nil {
		t.Fatalf("no constructor call:\n%s", make.String())
	}
	if ctorCall.Kind != jimple.InvokeSpecial || ctorCall.Class != "c.Box" {
		t.Errorf("ctor call: %+v", ctorCall)
	}
	// The constructor body must exist under <init>.
	ctorBody := prog.Body(java.MakeMethodKey("c.Box", "<init>", []java.Type{java.ObjectType}))
	if ctorBody == nil {
		t.Fatal("constructor body missing")
	}
}

func TestCompileSuperCall(t *testing.T) {
	prog, err := Compile("sup", `
package s;
class Base { void init(Object o) { } }
class Derived extends Base {
    void init(Object o) { super.init(o); }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Body(java.MakeMethodKey("s.Derived", "init", []java.Type{java.ObjectType}))
	invokes := body.Invokes()
	if len(invokes) != 1 || invokes[0].Expr.Kind != jimple.InvokeSpecial || invokes[0].Expr.Class != "s.Base" {
		t.Fatalf("super call: %+v", invokes)
	}
}

func TestCompileStringConcat(t *testing.T) {
	prog, err := Compile("cat", `
package s;
class C {
    String greet(String name) { return "hello " + name; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Body(java.MakeMethodKey("s.C", "greet", []java.Type{java.StringType}))
	found := false
	for _, st := range body.Stmts {
		if r, ok := st.(*jimple.ReturnStmt); ok && r.Op != nil {
			if b, ok := r.Op.(*jimple.BinopExpr); ok && b.Op == jimple.OpAdd && b.Type().Equal(java.StringType) {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("string concat missing:\n%s", body.String())
	}
}

func TestCompileDuplicateClass(t *testing.T) {
	_, err := CompileArchives(javaArchivePair("a", "package p; class X {}", "package p; class X {}"))
	if err == nil || !strings.Contains(err.Error(), "duplicate class") {
		t.Fatalf("duplicate class must fail, got %v", err)
	}
}

func javaArchivePair(name, src1, src2 string) []ArchiveSource {
	return []ArchiveSource{{Name: name, Files: []File{
		{Name: "a.java", Source: src1},
		{Name: "b.java", Source: src2},
	}}}
}

func TestCompileUnknownIdentifier(t *testing.T) {
	_, err := Compile("bad", `
package p;
class C { void m() { Object x = mystery; } }
`)
	if err == nil || !strings.Contains(err.Error(), "unknown identifier") {
		t.Fatalf("unknown identifier must fail, got %v", err)
	}
}

func TestCompileCastAndParenthesesDisambiguation(t *testing.T) {
	prog, err := Compile("cast", `
package p;
class C {
    int math(int a, int b) { return (a) + b; }
    Object conv(Object o) { return (String) o; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	conv := prog.Body(java.MakeMethodKey("p.C", "conv", []java.Type{java.ObjectType}))
	foundCast := false
	for _, st := range conv.Stmts {
		if r, ok := st.(*jimple.ReturnStmt); ok && r.Op != nil {
			if _, ok := r.Op.(*jimple.CastExpr); ok {
				foundCast = true
			}
		}
	}
	if !foundCast {
		t.Errorf("cast lost:\n%s", conv.String())
	}
}

func TestCompileWhileLoopCFGShape(t *testing.T) {
	prog, err := Compile("loop", `
package p;
class C {
    int sum(int n) {
        int acc = 0;
        while (n > 0) { acc = acc + n; n = n - 1; }
        return acc;
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Body(java.MakeMethodKey("p.C", "sum", []java.Type{java.Int}))
	if err := body.Validate(); err != nil {
		t.Fatalf("loop body invalid: %v\n%s", err, body.String())
	}
	// Must contain a backward goto (the loop edge).
	hasBackEdge := false
	for i, st := range body.Stmts {
		if g, ok := st.(*jimple.GotoStmt); ok && g.Target < i {
			hasBackEdge = true
		}
	}
	if !hasBackEdge {
		t.Errorf("no back edge in loop:\n%s", body.String())
	}
}
