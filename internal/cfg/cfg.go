// Package cfg builds per-method control-flow graphs over jimple bodies —
// the "corresponding control flow graph for each method" Soot provides in
// the Semantic Information Extraction phase (paper §III-B1). The
// controllability analysis (package taint) traverses these graphs.
package cfg

import (
	"fmt"

	"tabby/internal/jimple"
)

// Graph is the control-flow graph of one method body. Nodes are statement
// indexes in the body.
type Graph struct {
	Body  *jimple.Body
	succs [][]int
	preds [][]int
}

// Build constructs the CFG for the body. Returns an error when branch
// targets are out of range.
func Build(body *jimple.Body) (*Graph, error) {
	if err := body.Validate(); err != nil {
		return nil, fmt.Errorf("cfg: %w", err)
	}
	n := len(body.Stmts)
	g := &Graph{
		Body:  body,
		succs: make([][]int, n),
		preds: make([][]int, n),
	}
	addEdge := func(from, to int) {
		if to < n {
			g.succs[from] = append(g.succs[from], to)
			g.preds[to] = append(g.preds[to], from)
		}
	}
	for i, s := range body.Stmts {
		switch st := s.(type) {
		case *jimple.ReturnStmt, *jimple.ThrowStmt:
			// no successors
		case *jimple.GotoStmt:
			addEdge(i, st.Target)
		case *jimple.IfStmt:
			addEdge(i, i+1)
			addEdge(i, st.Target)
		case *jimple.SwitchStmt:
			for _, t := range st.Targets {
				addEdge(i, t)
			}
			addEdge(i, st.Default)
		default:
			addEdge(i, i+1)
		}
	}
	return g, nil
}

// NumNodes returns the statement count.
func (g *Graph) NumNodes() int { return len(g.succs) }

// Succs returns the successor statement indexes of i.
func (g *Graph) Succs(i int) []int { return g.succs[i] }

// Preds returns the predecessor statement indexes of i.
func (g *Graph) Preds(i int) []int { return g.preds[i] }

// Entry returns the entry node index (0), or -1 for an empty body.
func (g *Graph) Entry() int {
	if len(g.succs) == 0 {
		return -1
	}
	return 0
}

// Exits returns the statement indexes with no successors (returns/throws
// and a trailing fall-off statement).
func (g *Graph) Exits() []int {
	var out []int
	for i := range g.succs {
		if len(g.succs[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Reachable returns the set of statements reachable from the entry.
func (g *Graph) Reachable() []bool {
	seen := make([]bool, g.NumNodes())
	if g.NumNodes() == 0 {
		return seen
	}
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succs[n] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// ReversePostOrder returns reachable statement indexes in reverse
// post-order — the iteration order the dataflow solver uses for fast
// convergence.
func (g *Graph) ReversePostOrder() []int {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	var (
		post    []int
		visited = make([]bool, n)
	)
	// Iterative DFS with an explicit post stack to avoid recursion on
	// pathological bodies.
	type frame struct {
		node int
		next int
	}
	stack := []frame{{node: 0}}
	visited[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(g.succs[f.node]) {
			s := g.succs[f.node][f.next]
			f.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{node: s})
			}
			continue
		}
		post = append(post, f.node)
		stack = stack[:len(stack)-1]
	}
	// Reverse.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
