package cfg

import (
	"testing"

	"tabby/internal/java"
	"tabby/internal/jimple"
)

func linearBody(t *testing.T) *jimple.Body {
	t.Helper()
	m := &java.Method{ClassName: "t.C", Name: "lin", Return: java.Void, Modifiers: java.ModPublic | java.ModStatic}
	bb := jimple.NewBodyBuilder(m)
	bb.Nop()
	bb.Nop()
	bb.Return(nil)
	return bb.Body()
}

func TestBuildLinear(t *testing.T) {
	g, err := Build(linearBody(t))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if len(g.Succs(0)) != 1 || g.Succs(0)[0] != 1 {
		t.Errorf("Succs(0) = %v", g.Succs(0))
	}
	if len(g.Succs(2)) != 0 {
		t.Errorf("return must have no successors: %v", g.Succs(2))
	}
	if len(g.Preds(1)) != 1 || g.Preds(1)[0] != 0 {
		t.Errorf("Preds(1) = %v", g.Preds(1))
	}
	if exits := g.Exits(); len(exits) != 1 || exits[0] != 2 {
		t.Errorf("Exits = %v", exits)
	}
	if g.Entry() != 0 {
		t.Errorf("Entry = %d", g.Entry())
	}
}

func TestBuildBranch(t *testing.T) {
	m := &java.Method{ClassName: "t.C", Name: "br", Params: []java.Type{java.Int}, Return: java.Int, Modifiers: java.ModPublic | java.ModStatic}
	bb := jimple.NewBodyBuilder(m)
	// 0: p0 := @parameter0
	ifIdx := bb.If(&jimple.BinopExpr{Op: jimple.OpLt, L: bb.Param(0), R: &jimple.IntConst{Val: 0}}) // 1
	bb.Return(&jimple.IntConst{Val: 1})                                                             // 2
	elseIdx := bb.Return(&jimple.IntConst{Val: 2})                                                  // 3
	bb.PatchTarget(ifIdx, elseIdx)
	g, err := Build(bb.Body())
	if err != nil {
		t.Fatal(err)
	}
	succs := g.Succs(ifIdx)
	if len(succs) != 2 {
		t.Fatalf("if must have 2 successors, got %v", succs)
	}
	want := map[int]bool{2: true, 3: true}
	for _, s := range succs {
		if !want[s] {
			t.Errorf("unexpected if successor %d", s)
		}
	}
	if exits := g.Exits(); len(exits) != 2 {
		t.Errorf("Exits = %v, want 2 returns", exits)
	}
}

func TestBuildLoopAndRPO(t *testing.T) {
	m := &java.Method{ClassName: "t.C", Name: "loop", Params: []java.Type{java.Int}, Return: java.Void, Modifiers: java.ModPublic | java.ModStatic}
	bb := jimple.NewBodyBuilder(m)
	head := bb.Nop()                                                                                // 1
	ifIdx := bb.If(&jimple.BinopExpr{Op: jimple.OpEq, L: bb.Param(0), R: &jimple.IntConst{Val: 0}}) // 2
	gotoIdx := bb.Goto()                                                                            // 3 -> head
	bb.PatchTarget(gotoIdx, head)
	exit := bb.Return(nil) // 4
	bb.PatchTarget(ifIdx, exit)
	g, err := Build(bb.Body())
	if err != nil {
		t.Fatal(err)
	}
	// Back edge: goto's successor is head.
	if g.Succs(gotoIdx)[0] != head {
		t.Errorf("goto successor = %v", g.Succs(gotoIdx))
	}
	rpo := g.ReversePostOrder()
	if len(rpo) != g.NumNodes() {
		t.Fatalf("RPO covers %d of %d nodes", len(rpo), g.NumNodes())
	}
	pos := make(map[int]int, len(rpo))
	for i, n := range rpo {
		pos[n] = i
	}
	// Entry first; head before the if; the if before the exit.
	if rpo[0] != 0 {
		t.Errorf("RPO must start at entry, got %v", rpo)
	}
	if pos[head] > pos[ifIdx] || pos[ifIdx] > pos[exit] {
		t.Errorf("RPO ordering wrong: %v", rpo)
	}
}

func TestBuildSwitch(t *testing.T) {
	m := &java.Method{ClassName: "t.C", Name: "sw", Params: []java.Type{java.Int}, Return: java.Void, Modifiers: java.ModPublic | java.ModStatic}
	bb := jimple.NewBodyBuilder(m)
	swIdx := bb.Body().Append(&jimple.SwitchStmt{Key: bb.Param(0), Targets: []int{2, 3}, Default: 4})
	bb.Return(nil) // 2
	bb.Return(nil) // 3
	bb.Return(nil) // 4
	g, err := Build(bb.Body())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Succs(swIdx)) != 3 {
		t.Errorf("switch successors = %v", g.Succs(swIdx))
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	m := &java.Method{ClassName: "t.C", Name: "bad", Return: java.Void, Modifiers: java.ModPublic | java.ModStatic}
	body := jimple.NewBody(m)
	body.Append(&jimple.GotoStmt{Target: 42})
	if _, err := Build(body); err == nil {
		t.Fatal("invalid body must be rejected")
	}
}

func TestReachable(t *testing.T) {
	m := &java.Method{ClassName: "t.C", Name: "dead", Return: java.Void, Modifiers: java.ModPublic | java.ModStatic}
	bb := jimple.NewBodyBuilder(m)
	bb.Return(nil) // 0
	bb.Nop()       // 1: dead
	g, err := Build(bb.Body())
	if err != nil {
		t.Fatal(err)
	}
	r := g.Reachable()
	if !r[0] || r[1] {
		t.Errorf("Reachable = %v", r)
	}
	rpo := g.ReversePostOrder()
	for _, n := range rpo {
		if n == 1 {
			t.Error("RPO must skip unreachable statements")
		}
	}
}

func TestEmptyAbstractBody(t *testing.T) {
	m := &java.Method{ClassName: "t.I", Name: "am", Return: java.Void, Modifiers: java.ModPublic | java.ModAbstract | java.ModStatic}
	body := &jimple.Body{Method: m}
	g, err := Build(body)
	if err != nil {
		t.Fatal(err)
	}
	if g.Entry() != -1 || g.ReversePostOrder() != nil || len(g.Reachable()) != 0 {
		t.Error("empty body must yield an empty graph")
	}
}
