// Package baseline defines the shared result shape of the two
// comparison tools the paper evaluates against (§IV-C): GadgetInspector
// and Serianalyzer. Each reimplementation deliberately reproduces the
// behavioural defects §IV-F attributes to the original, so that the
// comparison experiment exercises the same failure modes.
package baseline

import (
	"strings"

	"tabby/internal/java"
)

// Chain is one reported gadget chain, source first.
type Chain struct {
	Methods []java.MethodKey
}

// Source returns the chain's entry method.
func (c Chain) Source() java.MethodKey {
	if len(c.Methods) == 0 {
		return ""
	}
	return c.Methods[0]
}

// Sink returns the chain's final method.
func (c Chain) Sink() java.MethodKey {
	if len(c.Methods) == 0 {
		return ""
	}
	return c.Methods[len(c.Methods)-1]
}

// Key renders a stable identity.
func (c Chain) Key() string {
	parts := make([]string, len(c.Methods))
	for i, m := range c.Methods {
		parts[i] = string(m)
	}
	return strings.Join(parts, " -> ")
}

// Result is a baseline tool's output for one program.
type Result struct {
	Chains []Chain
	// Timeout reports that the tool exceeded its step budget without
	// completing — the paper's "X: the process is not terminated".
	Timeout bool
	// Steps counts search expansions, for reporting.
	Steps int
}
