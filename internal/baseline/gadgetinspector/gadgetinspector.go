// Package gadgetinspector reimplements the comparison baseline of the
// same name (BlackHat 2018) at the behavioural level the paper describes.
// It searches *forward* from deserialization sources to sinks over an
// ASM-style call graph, and deliberately reproduces the three defects
// §IV-F attributes to the original tool:
//
//  1. incomplete polymorphism — virtual calls expand to subclass
//     overrides only; interface dispatch is never resolved, so chains
//     that pivot through an interface implementation are lost;
//  2. global visited-node skipping — once a method has been traversed it
//     is never expanded again, losing alternative chains through shared
//     middles;
//  3. optimistic intraprocedural-only taint — callee effects on arguments
//     are ignored and unknown calls/static fields are assumed tainted,
//     so interprocedurally sanitized chains are still reported.
package gadgetinspector

import (
	"sort"

	"tabby/internal/baseline"
	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/sinks"
)

// Options tunes the analyzer.
type Options struct {
	// Sinks is the sink registry; nil means the default set.
	Sinks *sinks.Registry
	// Sources recognizes entry points; zero value means the defaults.
	Sources sinks.SourceConfig
	// MaxDepth caps chain length in methods (default 30 — the original
	// has no meaningful depth pressure).
	MaxDepth int
	// MaxSteps caps search expansions (default 1,000,000).
	MaxSteps int
}

const (
	defaultMaxDepth = 30
	defaultMaxSteps = 1_000_000
)

// Run executes the analyzer over the program.
func Run(prog *jimple.Program, opts Options) (*baseline.Result, error) {
	if opts.Sinks == nil {
		opts.Sinks = sinks.Default()
	}
	if len(opts.Sources.MethodNames) == 0 {
		opts.Sources = sinks.DefaultSources()
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = defaultMaxDepth
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = defaultMaxSteps
	}
	a := &analyzer{
		prog:    prog,
		opts:    opts,
		visited: make(map[java.MethodKey]bool),
		edges:   make(map[java.MethodKey][]edge),
		res:     &baseline.Result{},
	}
	a.buildCallGraph()

	// Deterministic source order.
	var sources []*java.Method
	h := prog.Hierarchy
	for _, name := range h.SortedClassNames() {
		c := h.Class(name)
		for _, m := range c.Methods {
			if opts.Sources.IsSource(h, m) {
				sources = append(sources, m)
			}
		}
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i].Key() < sources[j].Key() })
	for _, src := range sources {
		a.dfs(src.Key(), []java.MethodKey{src.Key()})
	}
	return a.res, nil
}

// edge is one call-graph edge with its (naive) taint verdict.
type edge struct {
	callee  java.MethodKey
	tainted bool // receiver or some argument syntactically tainted
	sink    sinks.Sink
	isSink  bool
}

type analyzer struct {
	prog    *jimple.Program
	opts    Options
	visited map[java.MethodKey]bool
	edges   map[java.MethodKey][]edge
	res     *baseline.Result
	seen    map[string]bool
}

// buildCallGraph computes the forward edges with the tool's incomplete
// polymorphism and optimistic taint.
func (a *analyzer) buildCallGraph() {
	h := a.prog.Hierarchy
	keys := make([]java.MethodKey, 0, len(a.prog.Bodies))
	for k := range a.prog.Bodies {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		body := a.prog.Bodies[key]
		tainted := naiveTaint(body)
		for _, inv := range body.Invokes() {
			e := inv.Expr
			if e.Kind == jimple.InvokeDynamic {
				continue
			}
			isTainted := invokeTainted(e, tainted)
			sink, isSink := a.opts.Sinks.Match(h, e.Class, e.Name)
			var targets []*java.Method
			resolved := h.ResolveMethod(e.Class, e.SubSignature())
			if resolved != nil {
				targets = append(targets, resolved)
			}
			// Defect 1: subclass overrides only — classes reached through
			// extends edges; interface implementers are never expanded.
			if e.Kind == jimple.InvokeVirtual {
				targets = append(targets, classOverrides(h, e.Class, e.SubSignature())...)
			}
			if len(targets) == 0 {
				// Phantom callee: keep the edge so sink matching works.
				targets = append(targets, &java.Method{ClassName: e.Class, Name: e.Name, Params: e.ParamTypes, Return: e.ReturnType, Modifiers: java.ModPublic | java.ModAbstract})
			}
			for _, t := range targets {
				a.edges[key] = append(a.edges[key], edge{
					callee:  t.Key(),
					tainted: isTainted,
					sink:    sink,
					isSink:  isSink,
				})
			}
		}
	}
}

// classOverrides walks the extends-only subclass cone.
func classOverrides(h *java.Hierarchy, class, sub string) []*java.Method {
	var out []*java.Method
	var visit func(n string)
	visit = func(n string) {
		for _, s := range h.DirectSubclasses(n) {
			if c := h.Class(s); c != nil {
				if m := c.MethodBySubSignature(sub); m != nil {
					out = append(out, m)
				}
			}
			visit(s)
		}
	}
	visit(class)
	return out
}

// naiveTaint computes the intraprocedural tainted-local set: this and
// params taint; assignments, casts, field loads (any base), static loads
// and call results of tainted calls propagate; new expressions and
// constants clear. Callee effects on arguments are ignored (defect 3).
func naiveTaint(body *jimple.Body) map[string]bool {
	tainted := make(map[string]bool)
	// Two passes reach a fixpoint for the straight-line approximation the
	// original used; loops just re-taint.
	for pass := 0; pass < 2; pass++ {
		for _, s := range body.Stmts {
			switch st := s.(type) {
			case *jimple.IdentityStmt:
				tainted[st.Local.Name] = true
			case *jimple.AssignStmt:
				if lhs, ok := st.LHS.(*jimple.Local); ok {
					tainted[lhs.Name] = valueTainted(st.RHS, tainted)
				}
			}
		}
	}
	return tainted
}

func valueTainted(v jimple.Value, tainted map[string]bool) bool {
	switch val := v.(type) {
	case *jimple.Local:
		return tainted[val.Name]
	case *jimple.CastExpr:
		return valueTainted(val.Op, tainted)
	case *jimple.FieldRef:
		if val.IsStatic() {
			return true // optimism: statics assumed attacker-reachable
		}
		return tainted[val.Base.Name]
	case *jimple.ArrayRef:
		return tainted[val.Base.Name]
	case *jimple.InvokeExpr:
		return invokeTainted(val, tainted)
	case *jimple.BinopExpr:
		return valueTainted(val.L, tainted) || valueTainted(val.R, tainted)
	default:
		return false
	}
}

func invokeTainted(e *jimple.InvokeExpr, tainted map[string]bool) bool {
	if e.Base != nil && tainted[e.Base.Name] {
		return true
	}
	for _, arg := range e.Args {
		if valueTainted(arg, tainted) {
			return true
		}
	}
	return false
}

// dfs walks forward. Sinks are checked before the visited test; every
// other node is expanded at most once globally (defect 2).
func (a *analyzer) dfs(node java.MethodKey, path []java.MethodKey) {
	a.res.Steps++
	if a.res.Steps > a.opts.MaxSteps {
		a.res.Timeout = true
		return
	}
	if len(path) > a.opts.MaxDepth {
		return
	}
	for _, e := range a.edges[node] {
		if !e.tainted {
			continue
		}
		if e.isSink {
			a.record(append(append([]java.MethodKey(nil), path...), e.callee))
			continue
		}
		if a.visited[e.callee] {
			continue
		}
		a.visited[e.callee] = true
		if onPath(path, e.callee) {
			continue
		}
		a.dfs(e.callee, append(path, e.callee))
	}
}

func onPath(path []java.MethodKey, k java.MethodKey) bool {
	for _, p := range path {
		if p == k {
			return true
		}
	}
	return false
}

func (a *analyzer) record(methods []java.MethodKey) {
	if a.seen == nil {
		a.seen = make(map[string]bool)
	}
	c := baseline.Chain{Methods: methods}
	if a.seen[c.Key()] {
		return
	}
	a.seen[c.Key()] = true
	a.res.Chains = append(a.res.Chains, c)
}
