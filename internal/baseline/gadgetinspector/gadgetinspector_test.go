package gadgetinspector

import (
	"testing"

	"tabby/internal/corpus"
	"tabby/internal/javasrc"
)

func TestFindsPlainChain(t *testing.T) {
	prog, err := javasrc.CompileArchives([]javasrc.ArchiveSource{
		corpus.RT(),
		{Name: "t.jar", Files: []javasrc.File{{Name: "t.java", Source: `
package t;
public class Entry implements java.io.Serializable {
    public String cmd;
    private void readObject(java.io.ObjectInputStream s) {
        Helper.run(this.cmd);
    }
}
class Helper {
    static void run(String c) {
        java.lang.Process p = java.lang.Runtime.getRuntime().exec(c);
    }
}
`}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Chains {
		if string(c.Source()) == "t.Entry#readObject(java.io.ObjectInputStream)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("plain chain not found; chains: %v", res.Chains)
	}
}

func TestMissesInterfaceDispatch(t *testing.T) {
	// Defect 1 (§IV-F): interface implementations are never resolved.
	prog, err := javasrc.CompileArchives([]javasrc.ArchiveSource{
		corpus.RT(),
		{Name: "t.jar", Files: []javasrc.File{{Name: "t.java", Source: `
package t;
interface Gadget { void fire(String c); }
class Impl implements Gadget, java.io.Serializable {
    public void fire(String c) {
        java.lang.Process p = java.lang.Runtime.getRuntime().exec(c);
    }
}
public class Entry implements java.io.Serializable {
    public Gadget g;
    public String cmd;
    private void readObject(java.io.ObjectInputStream s) {
        g.fire(this.cmd);
    }
}
`}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Chains {
		if string(c.Source()) == "t.Entry#readObject(java.io.ObjectInputStream)" {
			t.Fatalf("interface chain must be missed, found %v", c.Methods)
		}
	}
}

func TestGlobalVisitedSkipLosesSecondChain(t *testing.T) {
	// Defect 2 (§IV-F): two chains through a shared middle — only the
	// first survives the global visited set.
	prog, err := javasrc.CompileArchives([]javasrc.ArchiveSource{
		corpus.RT(),
		{Name: "t.jar", Files: []javasrc.File{{Name: "t.java", Source: `
package t;
public class EntryA implements java.io.Serializable {
    public String cmd;
    private void readObject(java.io.ObjectInputStream s) { Mid.go(this.cmd); }
}
public class EntryB implements java.io.Serializable {
    public String cmd;
    private void readObject(java.io.ObjectInputStream s) { Mid.go(this.cmd); }
}
class Mid {
    static void go(String c) { Relay.fwd(c); }
}
class Relay {
    static void fwd(String c) {
        java.lang.Process p = java.lang.Runtime.getRuntime().exec(c);
    }
}
`}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var hitA, hitB bool
	for _, c := range res.Chains {
		switch string(c.Source()) {
		case "t.EntryA#readObject(java.io.ObjectInputStream)":
			hitA = true
		case "t.EntryB#readObject(java.io.ObjectInputStream)":
			hitB = true
		}
	}
	if !hitA {
		t.Error("first chain must be found")
	}
	if hitB {
		t.Error("second chain through the visited middle must be lost")
	}
}

func TestOptimisticTaintReportsSanitized(t *testing.T) {
	// Defect 3 (§IV-F): interprocedural sanitization is invisible.
	prog, err := javasrc.CompileArchives([]javasrc.ArchiveSource{
		corpus.RT(),
		{Name: "t.jar", Files: []javasrc.File{{Name: "t.java", Source: `
package t;
public class Entry implements java.io.Serializable {
    public String cmd;
    private void readObject(java.io.ObjectInputStream s) {
        String c = San.clean(this.cmd);
        Helper.run(c);
    }
}
class San {
    static String clean(String c) { String fixed = "safe"; return fixed; }
}
class Helper {
    static void run(String c) {
        java.lang.Process p = java.lang.Runtime.getRuntime().exec(c);
    }
}
`}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Chains {
		if string(c.Source()) == "t.Entry#readObject(java.io.ObjectInputStream)" {
			found = true
		}
	}
	if !found {
		t.Fatal("optimistic taint must report the sanitized chain (Tabby prunes it)")
	}
}

func TestConstantArgsNotTainted(t *testing.T) {
	prog, err := javasrc.CompileArchives([]javasrc.ArchiveSource{
		corpus.RT(),
		{Name: "t.jar", Files: []javasrc.File{{Name: "t.java", Source: `
package t;
public class Entry implements java.io.Serializable {
    private void readObject(java.io.ObjectInputStream s) {
        Helper.run("fixed");
    }
}
class Helper {
    static void run(String c) {
        java.lang.Process p = java.lang.Runtime.getRuntime().exec(c);
    }
}
`}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Chains {
		if string(c.Source()) == "t.Entry#readObject(java.io.ObjectInputStream)" {
			t.Fatalf("constant-input chain must not be reported: %v", c.Methods)
		}
	}
}
