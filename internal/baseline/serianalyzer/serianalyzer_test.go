package serianalyzer

import (
	"strings"
	"testing"

	"tabby/internal/corpus"
	"tabby/internal/javasrc"
)

func TestReportsEverythingBackwardReachable(t *testing.T) {
	prog, err := javasrc.CompileArchives([]javasrc.ArchiveSource{
		corpus.RT(),
		{Name: "t.jar", Files: []javasrc.File{{Name: "t.java", Source: `
package t;
public class Real implements java.io.Serializable {
    public String cmd;
    private void readObject(java.io.ObjectInputStream s) { Helper.run(this.cmd); }
}
public class Sanitized implements java.io.Serializable {
    public String cmd;
    private void readObject(java.io.ObjectInputStream s) {
        String c = San.clean(this.cmd);
        Helper.run(c);
    }
}
public class Constant implements java.io.Serializable {
    private void readObject(java.io.ObjectInputStream s) { Helper.run("x"); }
}
class San { static String clean(String c) { String f = "safe"; return f; } }
class Helper {
    static void run(String c) {
        java.lang.Process p = java.lang.Runtime.getRuntime().exec(c);
    }
}
`}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, Options{PackageFilter: "t."})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, c := range res.Chains {
		got[string(c.Source())] = true
	}
	// No controllability: the real, the sanitized AND the constant-input
	// chains are all reported — the 98.6 % FPR behaviour.
	for _, want := range []string{
		"t.Real#readObject(java.io.ObjectInputStream)",
		"t.Sanitized#readObject(java.io.ObjectInputStream)",
		"t.Constant#readObject(java.io.ObjectInputStream)",
	} {
		if !got[want] {
			t.Errorf("chain from %s missing (no-pruning behaviour)", want)
		}
	}
}

func TestResolvesInterfaceDispatch(t *testing.T) {
	prog, err := javasrc.CompileArchives([]javasrc.ArchiveSource{
		corpus.RT(),
		{Name: "t.jar", Files: []javasrc.File{{Name: "t.java", Source: `
package t;
interface Gadget { void fire(String c); }
class Impl implements Gadget, java.io.Serializable {
    public void fire(String c) {
        java.lang.Process p = java.lang.Runtime.getRuntime().exec(c);
    }
}
public class Entry implements java.io.Serializable {
    public Gadget g;
    public String cmd;
    private void readObject(java.io.ObjectInputStream s) { g.fire(this.cmd); }
}
`}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, Options{PackageFilter: "t."})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Chains {
		if string(c.Source()) == "t.Entry#readObject(java.io.ObjectInputStream)" {
			found = true
		}
	}
	if !found {
		t.Fatal("interface-dispatch chain must be found (full polymorphism)")
	}
}

func TestDepthHorizonMissesDeepChain(t *testing.T) {
	var hops strings.Builder
	hops.WriteString(`
package t;
public class Entry implements java.io.Serializable {
    public String cmd;
    private void readObject(java.io.ObjectInputStream s) { D0.hop(this.cmd); }
}
`)
	const k = 7
	for i := 0; i < k; i++ {
		if i == k-1 {
			hops.WriteString("\nclass D6 { static void hop(String c) { java.lang.Process p = java.lang.Runtime.getRuntime().exec(c); } }\n")
		} else {
			hops.WriteString(strings.ReplaceAll(`
class DIDX { static void hop(String c) { DNEXT.hop(c); } }
`, "DIDX", dName(i)))
			// substitute DNEXT
		}
	}
	src := hops.String()
	for i := 0; i < k-1; i++ {
		src = strings.Replace(src, "DNEXT", dName(i+1), 1)
	}
	prog, err := javasrc.CompileArchives([]javasrc.ArchiveSource{
		corpus.RT(),
		{Name: "t.jar", Files: []javasrc.File{{Name: "t.java", Source: src}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, Options{PackageFilter: "t."})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Chains {
		if string(c.Source()) == "t.Entry#readObject(java.io.ObjectInputStream)" {
			t.Fatalf("deep chain must exceed the depth horizon: %v", c.Methods)
		}
	}
	// With a generous depth it IS found.
	res, err = Run(prog, Options{PackageFilter: "t.", MaxDepth: 12})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Chains {
		if string(c.Source()) == "t.Entry#readObject(java.io.ObjectInputStream)" {
			found = true
		}
	}
	if !found {
		t.Fatal("deep chain must be found at depth 12")
	}
}

func dName(i int) string { return "D" + string(rune('0'+i)) }

func TestDispatchBombTimesOut(t *testing.T) {
	comp, err := corpus.ComponentByName("Jython1")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := javasrc.CompileArchives(append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, Options{MaxSteps: 400_000, PackageFilter: comp.Package})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Timeout {
		t.Fatalf("dispatch bomb must exhaust the step budget (steps=%d)", res.Steps)
	}
	if len(res.Chains) != 0 {
		t.Error("timed-out runs must report no chains (the paper's X)")
	}
}

func TestPackageFilter(t *testing.T) {
	prog, err := javasrc.CompileArchives([]javasrc.ArchiveSource{corpus.RT()})
	if err != nil {
		t.Fatal(err)
	}
	// Filtering to a package that matches nothing yields no chains even
	// though rt-internal chains (URLDNS) exist.
	res, err := Run(prog, Options{PackageFilter: "com.nonexistent."})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chains) != 0 {
		t.Errorf("package filter leak: %v", res.Chains)
	}
}
