// Package serianalyzer reimplements the second comparison baseline at the
// behavioural level the paper describes (§IV-C, §IV-F): a *backward*
// search from sink call sites to deserialization entry points over a
// call graph with full polymorphism, but with
//
//   - no controllability analysis at all — every backward-reachable path
//     is reported, which yields the near-total false-positive rate the
//     paper measures (98.6 %); and
//   - no pruning during call-graph construction — on components with
//     densely connected call structure the path enumeration exceeds any
//     reasonable budget and the tool fails to terminate ("X" entries).
//
// Following the paper's methodology, callers filter its output to chains
// that mention the package of the component under analysis.
package serianalyzer

import (
	"sort"
	"strings"

	"tabby/internal/baseline"
	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/sinks"
)

// Options tunes the analyzer.
type Options struct {
	// Sinks is the sink registry; nil means the default set.
	Sinks *sinks.Registry
	// Sources recognizes entry points; zero value means the defaults.
	Sources sinks.SourceConfig
	// MaxDepth caps chain length in methods. The original's effective
	// horizon was shallow; default 5.
	MaxDepth int
	// MaxSteps is the step budget standing in for the paper's one-hour
	// wall-clock cutoff; exceeding it reports Timeout. Default 2,000,000.
	MaxSteps int
	// PackageFilter keeps only chains that mention this package prefix
	// (the paper's output filter). Empty keeps everything.
	PackageFilter string
}

const (
	defaultMaxDepth = 5
	defaultMaxSteps = 2_000_000
)

// Run executes the analyzer over the program.
func Run(prog *jimple.Program, opts Options) (*baseline.Result, error) {
	if opts.Sinks == nil {
		opts.Sinks = sinks.Default()
	}
	if len(opts.Sources.MethodNames) == 0 {
		opts.Sources = sinks.DefaultSources()
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = defaultMaxDepth
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = defaultMaxSteps
	}
	a := &analyzer{
		prog: prog,
		opts: opts,
		res:  &baseline.Result{},
		seen: make(map[string]bool),
	}
	a.buildReverseGraph()
	if a.res.Timeout {
		// The paper attributes the X rows to "a problem with pruning
		// during the call graph construction process": unbounded dispatch
		// expansion blows the step budget before any search happens.
		a.res.Chains = nil
		return a.res, nil
	}

	// Start points: methods whose bodies call a sink, paired with the
	// sink they call.
	type start struct {
		caller java.MethodKey
		sink   java.MethodKey
	}
	var starts []start
	for caller, outs := range a.sinkCalls {
		for _, s := range outs {
			starts = append(starts, start{caller: caller, sink: s})
		}
	}
	sort.Slice(starts, func(i, j int) bool {
		if starts[i].caller != starts[j].caller {
			return starts[i].caller < starts[j].caller
		}
		return starts[i].sink < starts[j].sink
	})
	for _, st := range starts {
		a.dfs(st.caller, []java.MethodKey{st.sink, st.caller})
		if a.res.Timeout {
			break
		}
	}
	if a.res.Timeout {
		a.res.Chains = nil // the paper records no output for X runs
	}
	return a.res, nil
}

type analyzer struct {
	prog *jimple.Program
	opts Options
	// callers maps callee -> callers (full dispatch resolution).
	callers   map[java.MethodKey][]java.MethodKey
	callerSet map[java.MethodKey]map[java.MethodKey]bool
	// sinkCalls maps caller -> sink method keys it invokes.
	sinkCalls map[java.MethodKey][]java.MethodKey
	res       *baseline.Result
	seen      map[string]bool
}

// buildReverseGraph constructs the reversed call graph with full
// polymorphism: an invoke of (class, sub) points at the resolved
// declaration plus every dispatch target in the subtype cone — including
// interface implementers.
func (a *analyzer) buildReverseGraph() {
	h := a.prog.Hierarchy
	a.callers = make(map[java.MethodKey][]java.MethodKey)
	a.callerSet = make(map[java.MethodKey]map[java.MethodKey]bool)
	a.sinkCalls = make(map[java.MethodKey][]java.MethodKey)
	keys := make([]java.MethodKey, 0, len(a.prog.Bodies))
	for k := range a.prog.Bodies {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		body := a.prog.Bodies[key]
		for _, inv := range body.Invokes() {
			e := inv.Expr
			if e.Kind == jimple.InvokeDynamic {
				continue
			}
			if _, isSink := a.opts.Sinks.Match(h, e.Class, e.Name); isSink {
				sinkKey := java.MethodKey(e.Class + "#" + e.SubSignature())
				if m := h.ResolveMethod(e.Class, e.SubSignature()); m != nil {
					sinkKey = m.Key()
				}
				a.sinkCalls[key] = appendUnique(a.sinkCalls[key], sinkKey)
				continue
			}
			targets := h.DispatchTargets(e.Class, e.SubSignature())
			if len(targets) == 0 {
				continue
			}
			for _, t := range targets {
				a.res.Steps++
				if a.res.Steps > a.opts.MaxSteps {
					a.res.Timeout = true
					return
				}
				a.addCaller(t.Key(), key)
			}
		}
	}
}

func appendUnique(list []java.MethodKey, k java.MethodKey) []java.MethodKey {
	for _, v := range list {
		if v == k {
			return list
		}
	}
	return append(list, k)
}

// addCaller inserts a reverse edge with constant-time deduplication.
func (a *analyzer) addCaller(callee, caller java.MethodKey) {
	set, ok := a.callerSet[callee]
	if !ok {
		set = make(map[java.MethodKey]bool)
		a.callerSet[callee] = set
	}
	if set[caller] {
		return
	}
	set[caller] = true
	a.callers[callee] = append(a.callers[callee], caller)
}

// dfs walks backwards enumerating every simple path to a source — no
// pruning of any kind.
func (a *analyzer) dfs(node java.MethodKey, path []java.MethodKey) {
	a.res.Steps++
	if a.res.Steps > a.opts.MaxSteps {
		a.res.Timeout = true
		return
	}
	if a.isSource(node) {
		a.record(path)
		return
	}
	if len(path) >= a.opts.MaxDepth {
		return
	}
	for _, caller := range a.callers[node] {
		if onPath(path, caller) {
			continue
		}
		a.dfs(caller, append(path, caller))
		if a.res.Timeout {
			return
		}
	}
}

func (a *analyzer) isSource(key java.MethodKey) bool {
	h := a.prog.Hierarchy
	c := h.Class(java.MethodKeyClass(key))
	if c == nil {
		return false
	}
	m := h.MethodByKey(key)
	if m == nil {
		return false
	}
	return a.opts.Sources.IsSource(h, m)
}

func onPath(path []java.MethodKey, k java.MethodKey) bool {
	for _, p := range path {
		if p == k {
			return true
		}
	}
	return false
}

// record reverses the sink-rooted path into source-first order, applies
// the package filter, and deduplicates.
func (a *analyzer) record(path []java.MethodKey) {
	if a.opts.PackageFilter != "" {
		mentions := false
		for _, m := range path {
			if strings.Contains(string(m), a.opts.PackageFilter) {
				mentions = true
				break
			}
		}
		if !mentions {
			return
		}
	}
	methods := make([]java.MethodKey, len(path))
	for i := range path {
		methods[i] = path[len(path)-1-i]
	}
	c := baseline.Chain{Methods: methods}
	if a.seen[c.Key()] {
		return
	}
	a.seen[c.Key()] = true
	a.res.Chains = append(a.res.Chains, c)
}
