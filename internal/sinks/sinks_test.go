package sinks

import (
	"strings"
	"testing"

	"tabby/internal/java"
)

func TestDefaultRegistryHas38Sinks(t *testing.T) {
	r := Default()
	if r.Len() != 38 {
		t.Fatalf("default registry has %d sinks, want 38 (paper §III-D)", r.Len())
	}
}

func TestTableVIIEntries(t *testing.T) {
	// Every Table VII row must be present with the paper's type and TC.
	r := Default()
	tests := []struct {
		class, method string
		typ           Type
		tc            []int
	}{
		{"java.nio.file.Files", "newOutputStream", TypeFile, []int{1}},
		{"java.io.File", "delete", TypeFile, []int{0}},
		{"java.lang.reflect.Method", "invoke", TypeCode, []int{0, 1}},
		{"java.lang.ClassLoader", "loadClass", TypeCode, []int{0, 1}},
		{"javax.naming.Context", "lookup", TypeJNDI, []int{1}},
		{"java.rmi.registry.Registry", "lookup", TypeJNDI, []int{1}},
		{"java.lang.Runtime", "exec", TypeExec, []int{1}},
		{"java.lang.ProcessImpl", "start", TypeExec, []int{1}},
		{"javax.xml.parsers.DocumentBuilder", "parse", TypeXXE, []int{1}},
		{"javax.xml.transform.Transformer", "transform", TypeXXE, []int{1}},
		{"java.net.InetAddress", "getByName", TypeSSRF, []int{1}},
		{"java.net.URL", "openConnection", TypeSSRF, []int{0}},
		{"java.io.ObjectInputStream", "readObject", TypeJDV, []int{0}},
	}
	for _, tt := range tests {
		s, ok := r.Match(nil, tt.class, tt.method)
		if !ok {
			t.Errorf("sink %s.%s missing", tt.class, tt.method)
			continue
		}
		if s.Type != tt.typ {
			t.Errorf("sink %s.%s type = %s, want %s", tt.class, tt.method, s.Type, tt.typ)
		}
		if len(s.TC) != len(tt.tc) {
			t.Errorf("sink %s.%s TC = %v, want %v", tt.class, tt.method, s.TC, tt.tc)
			continue
		}
		for i := range s.TC {
			if s.TC[i] != tt.tc[i] {
				t.Errorf("sink %s.%s TC = %v, want %v", tt.class, tt.method, s.TC, tt.tc)
				break
			}
		}
	}
}

func TestMatchThroughHierarchy(t *testing.T) {
	// InitialContext implements Context: its lookup matches the
	// Context.lookup sink.
	ctx := &java.Class{Name: "javax.naming.Context", Modifiers: java.ModPublic | java.ModInterface | java.ModAbstract}
	ctx.AddMethod(&java.Method{Name: "lookup", Params: []java.Type{java.StringType}, Return: java.ObjectType, Modifiers: java.ModPublic | java.ModAbstract})
	ic := &java.Class{Name: "javax.naming.InitialContext", Modifiers: java.ModPublic, Super: java.ObjectClass, Interfaces: []string{"javax.naming.Context"}}
	ic.AddMethod(&java.Method{Name: "lookup", Params: []java.Type{java.StringType}, Return: java.ObjectType, Modifiers: java.ModPublic})
	h, err := java.NewHierarchy([]*java.Class{ctx, ic})
	if err != nil {
		t.Fatal(err)
	}
	r := Default()
	if _, ok := r.Match(h, "javax.naming.InitialContext", "lookup"); !ok {
		t.Error("InitialContext.lookup must match through the interface")
	}
	if _, ok := r.Match(h, "javax.naming.InitialContext", "close"); ok {
		t.Error("non-sink method must not match")
	}
	if _, ok := r.Match(nil, "javax.naming.InitialContext", "lookup"); ok {
		t.Error("without hierarchy only exact class matches")
	}
}

func TestRegistryValidation(t *testing.T) {
	if _, err := NewRegistry([]Sink{{Class: "a.B", Method: "m", Type: TypeExec}}); err == nil {
		t.Error("empty TC must be rejected")
	}
	if _, err := NewRegistry([]Sink{{Class: "a.B", Method: "m", Type: TypeExec, TC: []int{-1}}}); err == nil {
		t.Error("negative TC must be rejected")
	}
	dup := Sink{Class: "a.B", Method: "m", Type: TypeExec, TC: []int{0}}
	if _, err := NewRegistry([]Sink{dup, dup}); err == nil {
		t.Error("duplicate sinks must be rejected")
	}
}

func TestRegistryAddCustom(t *testing.T) {
	r := Default()
	before := r.Len()
	r.Add(Sink{Class: "com.corp.Custom", Method: "danger", Type: TypeExec, TC: []int{1}})
	if r.Len() != before+1 {
		t.Errorf("Add did not grow registry")
	}
	if _, ok := r.Match(nil, "com.corp.Custom", "danger"); !ok {
		t.Error("custom sink must match")
	}
	all := r.All()
	if len(all) != r.Len() {
		t.Errorf("All() returned %d of %d", len(all), r.Len())
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Key() >= all[i].Key() {
			t.Fatal("All() must be sorted")
		}
	}
}

func TestSourceConfig(t *testing.T) {
	ser := &java.Class{Name: "s.Ser", Modifiers: java.ModPublic, Super: java.ObjectClass, Interfaces: []string{java.SerializableIface}}
	ro := ser.AddMethod(&java.Method{Name: "readObject", Params: []java.Type{java.ClassType("java.io.ObjectInputStream")}, Return: java.Void, Modifiers: java.ModPrivate})
	other := ser.AddMethod(&java.Method{Name: "helper", Return: java.Void, Modifiers: java.ModPublic})
	staticRO := ser.AddMethod(&java.Method{Name: "readResolve", Params: []java.Type{java.Int}, Return: java.ObjectType, Modifiers: java.ModStatic})

	plain := &java.Class{Name: "s.Plain", Modifiers: java.ModPublic, Super: java.ObjectClass}
	plainRO := plain.AddMethod(&java.Method{Name: "readObject", Params: []java.Type{java.ClassType("java.io.ObjectInputStream")}, Return: java.Void, Modifiers: java.ModPrivate})

	h, err := java.NewHierarchy([]*java.Class{ser, plain})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSources()
	if !cfg.IsSource(h, ro) {
		t.Error("serializable readObject must be a source")
	}
	if cfg.IsSource(h, other) {
		t.Error("helper must not be a source")
	}
	if cfg.IsSource(h, staticRO) {
		t.Error("static methods are never sources")
	}
	if cfg.IsSource(h, plainRO) {
		t.Error("non-serializable readObject must not be a source under the native mechanism")
	}
	// Relaxed config (XStream-style): serializability not required.
	relaxed := SourceConfig{MethodNames: []string{"readObject"}}
	if !relaxed.IsSource(h, plainRO) {
		t.Error("relaxed config must accept non-serializable readObject")
	}
	if !strings.Contains(cfg.String(), "readObject") {
		t.Errorf("String() = %q", cfg.String())
	}
}
