// Package sinks holds the sink-method registry (paper Table VII) with
// per-sink Trigger_Condition arrays (Table VI), and the source-method
// predicate that recognizes deserialization entry points.
//
// The paper summarizes 38 sink methods and prints 13 of them in Table VII;
// the remainder of this registry reconstructs the full set from the sink
// *types* the paper names (FILE, CODE, JNDI, EXEC, XXE, SSRF, JDV) plus
// the sinks its case studies mention (lookup, getConnection, invoke).
package sinks

import (
	"fmt"
	"sort"
	"strings"

	"tabby/internal/java"
)

// Type classifies the exploit effect of a sink (Table VII "Type" column).
type Type string

// Sink types from Table VII, plus SQL for the getConnection family the
// middleware experiment reports (§IV-D3).
const (
	TypeFile Type = "FILE"
	TypeCode Type = "CODE"
	TypeJNDI Type = "JNDI"
	TypeExec Type = "EXEC"
	TypeXXE  Type = "XXE"
	TypeSSRF Type = "SSRF"
	TypeJDV  Type = "JDV"
	TypeSQL  Type = "SQL"
)

// Sink is one sink-method definition. TC is the Trigger_Condition: the
// call positions (0 = receiver, i = argument i) that must be controllable
// for the call to have attack effect (Table VI).
type Sink struct {
	Class  string // declaring class (subtypes match as well)
	Method string // method name; all overloads match
	Type   Type
	TC     []int
}

// Key renders the sink identity "class.method".
func (s Sink) Key() string { return s.Class + "." + s.Method }

// Registry answers "is this method a sink" during CPG construction and
// supplies initial Trigger_Conditions to the path finder.
type Registry struct {
	byClassMethod map[string]Sink
}

// NewRegistry builds a registry from the given sinks. Duplicate
// class+method pairs are an error.
func NewRegistry(sinks []Sink) (*Registry, error) {
	r := &Registry{byClassMethod: make(map[string]Sink, len(sinks))}
	for _, s := range sinks {
		if len(s.TC) == 0 {
			return nil, fmt.Errorf("sink %s: empty trigger condition", s.Key())
		}
		for _, tc := range s.TC {
			if tc < 0 {
				return nil, fmt.Errorf("sink %s: negative trigger position %d", s.Key(), tc)
			}
		}
		k := s.Key()
		if _, dup := r.byClassMethod[k]; dup {
			return nil, fmt.Errorf("duplicate sink %s", k)
		}
		r.byClassMethod[k] = s
	}
	return r, nil
}

// Default returns the registry loaded with the full 38-sink set.
func Default() *Registry {
	r, err := NewRegistry(DefaultSinks())
	if err != nil {
		// The default table is a compile-time constant; failure here is a
		// programming error, caught by the package tests.
		panic(err)
	}
	return r
}

// Len returns the number of registered sinks.
func (r *Registry) Len() int { return len(r.byClassMethod) }

// All returns every sink sorted by key.
func (r *Registry) All() []Sink {
	out := make([]Sink, 0, len(r.byClassMethod))
	for _, s := range r.byClassMethod {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Add registers a custom sink (the RQ4 "researchers customize their
// searches" workflow). Replaces any existing definition for the same
// class+method.
func (r *Registry) Add(s Sink) { r.byClassMethod[s.Key()] = s }

// Match reports whether the method declared on class is a sink, checking
// the declaring class and, when a hierarchy is supplied, every supertype
// (a call to InitialContext.lookup matches the Context.lookup sink).
func (r *Registry) Match(h *java.Hierarchy, class, method string) (Sink, bool) {
	if s, ok := r.byClassMethod[class+"."+method]; ok {
		return s, true
	}
	if h == nil {
		return Sink{}, false
	}
	for _, super := range h.Superclasses(class) {
		if s, ok := r.byClassMethod[super+"."+method]; ok {
			return s, true
		}
	}
	for _, iface := range h.AllInterfaces(class) {
		if s, ok := r.byClassMethod[iface+"."+method]; ok {
			return s, true
		}
	}
	return Sink{}, false
}

// DefaultSinks returns the reconstructed 38-sink table. The 13 entries of
// Table VII appear first, verbatim.
func DefaultSinks() []Sink {
	return []Sink{
		// --- Table VII (verbatim) ---
		{Class: "java.nio.file.Files", Method: "newOutputStream", Type: TypeFile, TC: []int{1}},
		{Class: "java.io.File", Method: "delete", Type: TypeFile, TC: []int{0}},
		{Class: "java.lang.reflect.Method", Method: "invoke", Type: TypeCode, TC: []int{0, 1}},
		{Class: "java.lang.ClassLoader", Method: "loadClass", Type: TypeCode, TC: []int{0, 1}},
		{Class: "javax.naming.Context", Method: "lookup", Type: TypeJNDI, TC: []int{1}},
		{Class: "java.rmi.registry.Registry", Method: "lookup", Type: TypeJNDI, TC: []int{1}},
		{Class: "java.lang.Runtime", Method: "exec", Type: TypeExec, TC: []int{1}},
		{Class: "java.lang.ProcessImpl", Method: "start", Type: TypeExec, TC: []int{1}},
		{Class: "javax.xml.parsers.DocumentBuilder", Method: "parse", Type: TypeXXE, TC: []int{1}},
		{Class: "javax.xml.transform.Transformer", Method: "transform", Type: TypeXXE, TC: []int{1}},
		{Class: "java.net.InetAddress", Method: "getByName", Type: TypeSSRF, TC: []int{1}},
		{Class: "java.net.URL", Method: "openConnection", Type: TypeSSRF, TC: []int{0}},
		{Class: "java.io.ObjectInputStream", Method: "readObject", Type: TypeJDV, TC: []int{0}},
		// --- reconstructed remainder of the 38 (types per Table VII) ---
		{Class: "java.io.FileOutputStream", Method: "write", Type: TypeFile, TC: []int{0}},
		{Class: "java.nio.file.Files", Method: "write", Type: TypeFile, TC: []int{1}},
		{Class: "java.nio.file.Files", Method: "delete", Type: TypeFile, TC: []int{1}},
		{Class: "java.io.File", Method: "renameTo", Type: TypeFile, TC: []int{0}},
		{Class: "java.lang.ClassLoader", Method: "defineClass", Type: TypeCode, TC: []int{1}},
		{Class: "java.net.URLClassLoader", Method: "newInstance", Type: TypeCode, TC: []int{1}},
		{Class: "java.lang.Class", Method: "forName", Type: TypeCode, TC: []int{1}},
		{Class: "javax.script.ScriptEngine", Method: "eval", Type: TypeCode, TC: []int{1}},
		{Class: "java.beans.Expression", Method: "getValue", Type: TypeCode, TC: []int{0}},
		{Class: "bsh.Interpreter", Method: "eval", Type: TypeCode, TC: []int{1}},
		{Class: "groovy.lang.GroovyShell", Method: "evaluate", Type: TypeCode, TC: []int{1}},
		{Class: "org.mozilla.javascript.Context", Method: "evaluateString", Type: TypeCode, TC: []int{2}},
		{Class: "javax.naming.InitialContext", Method: "doLookup", Type: TypeJNDI, TC: []int{1}},
		{Class: "java.rmi.Naming", Method: "lookup", Type: TypeJNDI, TC: []int{1}},
		{Class: "java.lang.ProcessBuilder", Method: "start", Type: TypeExec, TC: []int{0}},
		{Class: "java.lang.System", Method: "loadLibrary", Type: TypeExec, TC: []int{1}},
		{Class: "javax.xml.parsers.SAXParser", Method: "parse", Type: TypeXXE, TC: []int{1}},
		{Class: "org.xml.sax.XMLReader", Method: "parse", Type: TypeXXE, TC: []int{1}},
		{Class: "java.net.URL", Method: "openStream", Type: TypeSSRF, TC: []int{0}},
		{Class: "java.net.Socket", Method: "connect", Type: TypeSSRF, TC: []int{1}},
		{Class: "java.beans.XMLDecoder", Method: "readObject", Type: TypeJDV, TC: []int{0}},
		{Class: "java.io.ObjectInput", Method: "readObject", Type: TypeJDV, TC: []int{0}},
		{Class: "javax.sql.DataSource", Method: "getConnection", Type: TypeSQL, TC: []int{0}},
		{Class: "java.sql.DriverManager", Method: "getConnection", Type: TypeSQL, TC: []int{1}},
		{Class: "java.sql.Statement", Method: "execute", Type: TypeSQL, TC: []int{1}},
	}
}

// --- Sources -------------------------------------------------------------

// SourceConfig decides which methods count as deserialization entry
// points — the heads of gadget chains (§I: "typically the beginning of a
// gadget chain such as object.readObject() and object.readExternal()").
type SourceConfig struct {
	// MethodNames are the entry method names. Defaults cover the
	// Java-native mechanism.
	MethodNames []string
	// RequireSerializable demands the declaring class implement
	// java.io.Serializable/Externalizable (true for the native mechanism;
	// XStream-style mechanisms do not require it).
	RequireSerializable bool
}

// DefaultSources returns the native-deserialization source configuration.
func DefaultSources() SourceConfig {
	return SourceConfig{
		MethodNames: []string{
			"readObject", "readExternal", "readResolve",
			"readObjectNoData", "validateObject", "finalize",
		},
		RequireSerializable: true,
	}
}

// XStreamSources returns the source configuration for XStream-style
// deserialization (§IV-D2): XStream reconstructs objects without
// requiring java.io.Serializable, and its converters invoke comparison
// and hashing entry points (the TreeMap/Hashtable trigger surface) in
// addition to the native readObject family. Chains rooted here are the
// ones that "bypass the deserialization blacklist of the XStream
// component".
func XStreamSources() SourceConfig {
	return SourceConfig{
		MethodNames: []string{
			"readObject", "readExternal", "readResolve",
			"hashCode", "equals", "compareTo", "toString",
		},
		RequireSerializable: false,
	}
}

// IsSource reports whether the method is a deserialization entry point
// under this configuration.
func (c SourceConfig) IsSource(h *java.Hierarchy, m *java.Method) bool {
	if m.IsStatic() {
		return false
	}
	match := false
	for _, n := range c.MethodNames {
		if m.Name == n {
			match = true
			break
		}
	}
	if !match {
		return false
	}
	if c.RequireSerializable && !h.IsSerializable(m.ClassName) {
		return false
	}
	return true
}

// String renders the source config compactly for logs.
func (c SourceConfig) String() string {
	return fmt.Sprintf("sources{%s serializable=%v}", strings.Join(c.MethodNames, ","), c.RequireSerializable)
}
