package java

import (
	"fmt"
	"sort"
	"strings"

	"tabby/internal/intern"
)

// Modifier is a bit set of Java declaration modifiers.
type Modifier uint16

// Modifier flags. Values mirror the JVM access-flag spirit but are not
// binary compatible with class files; they only need to round-trip through
// this model.
const (
	ModPublic Modifier = 1 << iota
	ModPrivate
	ModProtected
	ModStatic
	ModFinal
	ModAbstract
	ModNative
	ModSynchronized
	ModTransient
	ModVolatile
	ModInterface
)

// Has reports whether all bits of flag are set.
func (m Modifier) Has(flag Modifier) bool { return m&flag == flag }

// String renders the modifier set in canonical Java order.
func (m Modifier) String() string {
	var parts []string
	for _, e := range []struct {
		flag Modifier
		name string
	}{
		{ModPublic, "public"},
		{ModPrivate, "private"},
		{ModProtected, "protected"},
		{ModStatic, "static"},
		{ModFinal, "final"},
		{ModAbstract, "abstract"},
		{ModNative, "native"},
		{ModSynchronized, "synchronized"},
		{ModTransient, "transient"},
		{ModVolatile, "volatile"},
		{ModInterface, "interface"},
	} {
		if m.Has(e.flag) {
			parts = append(parts, e.name)
		}
	}
	return strings.Join(parts, " ")
}

// Field is a class field declaration.
type Field struct {
	Name      string
	Type      Type
	Modifiers Modifier
}

// Method is a method declaration. Bodies are kept separately (package
// jimple) keyed by the method's Key, so that the class model stays free of
// IR dependencies — the same split Soot uses between SootMethod and Body.
type Method struct {
	ClassName string
	Name      string
	Params    []Type
	Return    Type
	Modifiers Modifier

	// key/subSig/iid cache the method's identity strings and its
	// process-wide intern id (+1; 0 means uncached). They are filled once
	// by AddMethod — the single construction path of every pipeline-built
	// method — so the hot resolution loops never rebuild key strings.
	// Directly-constructed Methods that bypassed AddMethod fall back to
	// computing on each call WITHOUT storing, keeping reads race-free
	// under concurrent analysis.
	key    MethodKey
	subSig string
	iid    int32
}

// MethodKey uniquely identifies a method: "class#name(paramTypes)".
type MethodKey string

// Key returns the canonical identity of the method.
func (m *Method) Key() MethodKey {
	if m.key != "" {
		return m.key
	}
	return MakeMethodKey(m.ClassName, m.Name, m.Params)
}

// InternID returns the dense process-wide id of the method's key (see
// internal/intern), interning it on first use.
func (m *Method) InternID() int32 {
	if m.iid != 0 {
		return m.iid - 1
	}
	return intern.Methods.ID(string(m.Key()))
}

// cacheIdentity fills the method's identity caches. Callers must own the
// method exclusively (construction time).
func (m *Method) cacheIdentity() {
	m.key = MakeMethodKey(m.ClassName, m.Name, m.Params)
	m.subSig = string(m.key)[len(m.ClassName)+1:]
	m.iid = intern.Methods.ID(string(m.key)) + 1
}

func typeLen(t Type) int {
	switch t.Kind {
	case KindVoid, KindLong, KindChar:
		return 4
	case KindBoolean:
		return 7
	case KindInt:
		return 3
	case KindDouble:
		return 6
	case KindClass:
		return len(t.Name)
	case KindArray:
		return typeLen(*t.Elem) + 2
	default:
		return 16
	}
}

func writeType(sb *strings.Builder, t Type) {
	if t.Kind == KindArray {
		writeType(sb, *t.Elem)
		sb.WriteString("[]")
		return
	}
	sb.WriteString(t.String()) // non-array String() never allocates
}

// MakeMethodKey builds the canonical method identity string in a single
// allocation.
func MakeMethodKey(class, name string, params []Type) MethodKey {
	n := len(class) + len(name) + 2 + len(params)
	for _, p := range params {
		n += typeLen(p)
	}
	var sb strings.Builder
	sb.Grow(n)
	sb.WriteString(class)
	sb.WriteByte('#')
	sb.WriteString(name)
	sb.WriteByte('(')
	for i, p := range params {
		if i > 0 {
			sb.WriteByte(',')
		}
		writeType(&sb, p)
	}
	sb.WriteByte(')')
	return MethodKey(sb.String())
}

// SubSignature is the dispatch identity of a method within a class:
// name plus parameter types (Java ignores the return type for overriding
// in source; we follow suit, matching the paper's alias definition of
// "same method name … and number of method parameters").
func (m *Method) SubSignature() string {
	if m.subSig != "" {
		return m.subSig
	}
	k := string(MakeMethodKey("", m.Name, m.Params))
	return strings.TrimPrefix(k, "#")
}

// IsAbstract reports whether the method has no concrete body.
func (m *Method) IsAbstract() bool {
	return m.Modifiers.Has(ModAbstract) || m.Modifiers.Has(ModNative)
}

// IsStatic reports whether the method is static.
func (m *Method) IsStatic() bool { return m.Modifiers.Has(ModStatic) }

// String renders the method as class#name(params).
func (m *Method) String() string { return string(m.Key()) }

// Class is a class or interface declaration.
type Class struct {
	Name       string // fully qualified
	Modifiers  Modifier
	Super      string   // fully qualified superclass; "" only for java.lang.Object
	Interfaces []string // fully qualified implemented/extended interfaces
	Fields     []*Field
	Methods    []*Method
	Archive    string // name of the archive ("jar") the class came from
	Phantom    bool   // true when the class was referenced but never defined

	// bySub indexes Methods by sub-signature. AddMethod maintains it; a
	// class whose Methods slice was populated directly is detected by the
	// length mismatch and served by linear scan instead.
	bySub map[string]*Method
}

// IsInterface reports whether the declaration is an interface.
func (c *Class) IsInterface() bool { return c.Modifiers.Has(ModInterface) }

// Package returns the package portion of the class name ("" for the
// default package).
func (c *Class) Package() string {
	i := strings.LastIndexByte(c.Name, '.')
	if i < 0 {
		return ""
	}
	return c.Name[:i]
}

// SimpleName returns the class name without its package.
func (c *Class) SimpleName() string {
	i := strings.LastIndexByte(c.Name, '.')
	return c.Name[i+1:]
}

// FieldByName returns the declared field with the given name, or nil.
func (c *Class) FieldByName(name string) *Field {
	for _, f := range c.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// MethodBySubSignature returns the declared method with the given
// sub-signature, or nil.
func (c *Class) MethodBySubSignature(sub string) *Method {
	if len(c.bySub) == len(c.Methods) {
		return c.bySub[sub]
	}
	for _, m := range c.Methods {
		if m.SubSignature() == sub {
			return m
		}
	}
	return nil
}

// MethodsByName returns all declared methods with the given name.
func (c *Class) MethodsByName(name string) []*Method {
	var out []*Method
	for _, m := range c.Methods {
		if m.Name == name {
			out = append(out, m)
		}
	}
	return out
}

// AddMethod appends a method declaration, fixing up its ClassName and
// caching the method's identity strings, intern id, and the class's
// sub-signature index.
func (c *Class) AddMethod(m *Method) *Method {
	m.ClassName = c.Name
	m.cacheIdentity()
	c.Methods = append(c.Methods, m)
	if c.bySub == nil {
		c.bySub = make(map[string]*Method, 8)
	}
	if _, dup := c.bySub[m.subSig]; !dup {
		c.bySub[m.subSig] = m
	}
	return m
}

// AddField appends a field declaration.
func (c *Class) AddField(f *Field) *Field {
	c.Fields = append(c.Fields, f)
	return f
}

// SortedMethodKeys returns the keys of all declared methods in sorted
// order, for deterministic iteration.
func (c *Class) SortedMethodKeys() []MethodKey {
	keys := make([]MethodKey, 0, len(c.Methods))
	for _, m := range c.Methods {
		keys = append(keys, m.Key())
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Validate performs basic well-formedness checks on the declaration.
func (c *Class) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("class with empty name")
	}
	if c.Super == "" && c.Name != "java.lang.Object" && !c.IsInterface() {
		return fmt.Errorf("class %s: missing superclass", c.Name)
	}
	seen := make(map[string]bool, len(c.Methods))
	for _, m := range c.Methods {
		if m.ClassName != c.Name {
			return fmt.Errorf("class %s: method %s claims class %s", c.Name, m.Name, m.ClassName)
		}
		sub := m.SubSignature()
		if seen[sub] {
			return fmt.Errorf("class %s: duplicate method %s", c.Name, sub)
		}
		seen[sub] = true
	}
	fseen := make(map[string]bool, len(c.Fields))
	for _, f := range c.Fields {
		if fseen[f.Name] {
			return fmt.Errorf("class %s: duplicate field %s", c.Name, f.Name)
		}
		fseen[f.Name] = true
	}
	return nil
}

// Archive is a named bundle of classes — the model's stand-in for a jar
// file. Components and development scenes are sets of archives.
type Archive struct {
	Name    string
	Classes []string // fully qualified class names in deterministic order
	// CodeBytes approximates the bytecode size of the archive; used by the
	// Table VIII scaling experiment to report "code amount (MB)".
	CodeBytes int64
}
