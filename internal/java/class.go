package java

import (
	"fmt"
	"sort"
	"strings"
)

// Modifier is a bit set of Java declaration modifiers.
type Modifier uint16

// Modifier flags. Values mirror the JVM access-flag spirit but are not
// binary compatible with class files; they only need to round-trip through
// this model.
const (
	ModPublic Modifier = 1 << iota
	ModPrivate
	ModProtected
	ModStatic
	ModFinal
	ModAbstract
	ModNative
	ModSynchronized
	ModTransient
	ModVolatile
	ModInterface
)

// Has reports whether all bits of flag are set.
func (m Modifier) Has(flag Modifier) bool { return m&flag == flag }

// String renders the modifier set in canonical Java order.
func (m Modifier) String() string {
	var parts []string
	for _, e := range []struct {
		flag Modifier
		name string
	}{
		{ModPublic, "public"},
		{ModPrivate, "private"},
		{ModProtected, "protected"},
		{ModStatic, "static"},
		{ModFinal, "final"},
		{ModAbstract, "abstract"},
		{ModNative, "native"},
		{ModSynchronized, "synchronized"},
		{ModTransient, "transient"},
		{ModVolatile, "volatile"},
		{ModInterface, "interface"},
	} {
		if m.Has(e.flag) {
			parts = append(parts, e.name)
		}
	}
	return strings.Join(parts, " ")
}

// Field is a class field declaration.
type Field struct {
	Name      string
	Type      Type
	Modifiers Modifier
}

// Method is a method declaration. Bodies are kept separately (package
// jimple) keyed by the method's Key, so that the class model stays free of
// IR dependencies — the same split Soot uses between SootMethod and Body.
type Method struct {
	ClassName string
	Name      string
	Params    []Type
	Return    Type
	Modifiers Modifier
}

// MethodKey uniquely identifies a method: "class#name(paramTypes)".
type MethodKey string

// Key returns the canonical identity of the method.
func (m *Method) Key() MethodKey {
	return MakeMethodKey(m.ClassName, m.Name, m.Params)
}

// MakeMethodKey builds the canonical method identity string.
func MakeMethodKey(class, name string, params []Type) MethodKey {
	var sb strings.Builder
	sb.WriteString(class)
	sb.WriteByte('#')
	sb.WriteString(name)
	sb.WriteByte('(')
	for i, p := range params {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.String())
	}
	sb.WriteByte(')')
	return MethodKey(sb.String())
}

// SubSignature is the dispatch identity of a method within a class:
// name plus parameter types (Java ignores the return type for overriding
// in source; we follow suit, matching the paper's alias definition of
// "same method name … and number of method parameters").
func (m *Method) SubSignature() string {
	k := string(MakeMethodKey("", m.Name, m.Params))
	return strings.TrimPrefix(k, "#")
}

// IsAbstract reports whether the method has no concrete body.
func (m *Method) IsAbstract() bool {
	return m.Modifiers.Has(ModAbstract) || m.Modifiers.Has(ModNative)
}

// IsStatic reports whether the method is static.
func (m *Method) IsStatic() bool { return m.Modifiers.Has(ModStatic) }

// String renders the method as class#name(params).
func (m *Method) String() string { return string(m.Key()) }

// Class is a class or interface declaration.
type Class struct {
	Name       string // fully qualified
	Modifiers  Modifier
	Super      string   // fully qualified superclass; "" only for java.lang.Object
	Interfaces []string // fully qualified implemented/extended interfaces
	Fields     []*Field
	Methods    []*Method
	Archive    string // name of the archive ("jar") the class came from
	Phantom    bool   // true when the class was referenced but never defined
}

// IsInterface reports whether the declaration is an interface.
func (c *Class) IsInterface() bool { return c.Modifiers.Has(ModInterface) }

// Package returns the package portion of the class name ("" for the
// default package).
func (c *Class) Package() string {
	i := strings.LastIndexByte(c.Name, '.')
	if i < 0 {
		return ""
	}
	return c.Name[:i]
}

// SimpleName returns the class name without its package.
func (c *Class) SimpleName() string {
	i := strings.LastIndexByte(c.Name, '.')
	return c.Name[i+1:]
}

// FieldByName returns the declared field with the given name, or nil.
func (c *Class) FieldByName(name string) *Field {
	for _, f := range c.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// MethodBySubSignature returns the declared method with the given
// sub-signature, or nil.
func (c *Class) MethodBySubSignature(sub string) *Method {
	for _, m := range c.Methods {
		if m.SubSignature() == sub {
			return m
		}
	}
	return nil
}

// MethodsByName returns all declared methods with the given name.
func (c *Class) MethodsByName(name string) []*Method {
	var out []*Method
	for _, m := range c.Methods {
		if m.Name == name {
			out = append(out, m)
		}
	}
	return out
}

// AddMethod appends a method declaration, fixing up its ClassName.
func (c *Class) AddMethod(m *Method) *Method {
	m.ClassName = c.Name
	c.Methods = append(c.Methods, m)
	return m
}

// AddField appends a field declaration.
func (c *Class) AddField(f *Field) *Field {
	c.Fields = append(c.Fields, f)
	return f
}

// SortedMethodKeys returns the keys of all declared methods in sorted
// order, for deterministic iteration.
func (c *Class) SortedMethodKeys() []MethodKey {
	keys := make([]MethodKey, 0, len(c.Methods))
	for _, m := range c.Methods {
		keys = append(keys, m.Key())
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Validate performs basic well-formedness checks on the declaration.
func (c *Class) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("class with empty name")
	}
	if c.Super == "" && c.Name != "java.lang.Object" && !c.IsInterface() {
		return fmt.Errorf("class %s: missing superclass", c.Name)
	}
	seen := make(map[string]bool, len(c.Methods))
	for _, m := range c.Methods {
		if m.ClassName != c.Name {
			return fmt.Errorf("class %s: method %s claims class %s", c.Name, m.Name, m.ClassName)
		}
		sub := m.SubSignature()
		if seen[sub] {
			return fmt.Errorf("class %s: duplicate method %s", c.Name, sub)
		}
		seen[sub] = true
	}
	fseen := make(map[string]bool, len(c.Fields))
	for _, f := range c.Fields {
		if fseen[f.Name] {
			return fmt.Errorf("class %s: duplicate field %s", c.Name, f.Name)
		}
		fseen[f.Name] = true
	}
	return nil
}

// Archive is a named bundle of classes — the model's stand-in for a jar
// file. Components and development scenes are sets of archives.
type Archive struct {
	Name    string
	Classes []string // fully qualified class names in deterministic order
	// CodeBytes approximates the bytecode size of the archive; used by the
	// Table VIII scaling experiment to report "code amount (MB)".
	CodeBytes int64
}
