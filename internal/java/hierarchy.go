package java

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Well-known class names used throughout the analysis.
const (
	ObjectClass         = "java.lang.Object"
	SerializableIface   = "java.io.Serializable"
	ExternalizableIface = "java.io.Externalizable"
)

// Hierarchy indexes a closed set of classes and answers the structural
// questions the CPG builder and the controllability analysis need:
// super/subtype relations, virtual-dispatch resolution, field lookup, and
// method-alias candidates (paper §III-B2, Formula 1).
//
// References to classes that were never defined are materialized as
// phantom classes (same policy as Soot) so analysis never dereferences a
// missing class.
type Hierarchy struct {
	classes map[string]*Class
	// subclasses maps a class name to its direct subclasses; implementers
	// maps an interface name to classes/interfaces that directly list it.
	subclasses   map[string][]string
	implementers map[string][]string
	// serializable memoizes IsSerializable; serialMu guards it because
	// the hierarchy is queried from concurrent pipeline workers.
	serialMu     sync.Mutex
	serializable map[string]bool
}

// NewHierarchy builds a hierarchy over the given classes. The bootstrap
// classes (java.lang.Object, Serializable, Externalizable) are created
// automatically when absent. Duplicate class names are an error.
func NewHierarchy(classes []*Class) (*Hierarchy, error) {
	h := &Hierarchy{
		classes:      make(map[string]*Class, len(classes)+8),
		subclasses:   make(map[string][]string),
		implementers: make(map[string][]string),
		serializable: make(map[string]bool),
	}
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("hierarchy: %w", err)
		}
		if _, dup := h.classes[c.Name]; dup {
			return nil, fmt.Errorf("hierarchy: duplicate class %s", c.Name)
		}
		h.classes[c.Name] = c
	}
	h.ensureBootstrap()
	// Materialize phantom classes for any dangling references, then build
	// the reverse indexes.
	for _, name := range h.SortedClassNames() {
		c := h.classes[name]
		if c.Super != "" {
			h.ensurePhantom(c.Super, false)
		}
		for _, i := range c.Interfaces {
			h.ensurePhantom(i, true)
		}
	}
	for _, name := range h.SortedClassNames() {
		c := h.classes[name]
		if c.Super != "" {
			h.subclasses[c.Super] = append(h.subclasses[c.Super], c.Name)
		}
		for _, i := range c.Interfaces {
			h.implementers[i] = append(h.implementers[i], c.Name)
		}
	}
	return h, nil
}

func (h *Hierarchy) ensureBootstrap() {
	if _, ok := h.classes[ObjectClass]; !ok {
		obj := &Class{Name: ObjectClass, Modifiers: ModPublic, Archive: "rt"}
		obj.AddMethod(&Method{Name: "hashCode", Return: Int, Modifiers: ModPublic})
		obj.AddMethod(&Method{Name: "equals", Params: []Type{ObjectType}, Return: Boolean, Modifiers: ModPublic})
		obj.AddMethod(&Method{Name: "toString", Return: StringType, Modifiers: ModPublic})
		h.classes[ObjectClass] = obj
	}
	for _, iface := range []string{SerializableIface, ExternalizableIface} {
		if _, ok := h.classes[iface]; !ok {
			h.classes[iface] = &Class{
				Name:      iface,
				Modifiers: ModPublic | ModInterface | ModAbstract,
				Archive:   "rt",
			}
		}
	}
}

func (h *Hierarchy) ensurePhantom(name string, iface bool) {
	if _, ok := h.classes[name]; ok {
		return
	}
	mods := ModPublic
	super := ObjectClass
	if iface {
		mods |= ModInterface | ModAbstract
		super = ""
	}
	h.classes[name] = &Class{Name: name, Modifiers: mods, Super: super, Phantom: true}
}

// Class returns the class with the given name, or nil when unknown.
func (h *Hierarchy) Class(name string) *Class { return h.classes[name] }

// NumClasses returns the number of classes (including phantoms).
func (h *Hierarchy) NumClasses() int { return len(h.classes) }

// SortedClassNames returns all class names in sorted order for
// deterministic iteration.
func (h *Hierarchy) SortedClassNames() []string {
	names := make([]string, 0, len(h.classes))
	for n := range h.classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Superclasses returns the superclass chain of the class, nearest first,
// excluding the class itself.
func (h *Hierarchy) Superclasses(name string) []string {
	var out []string
	seen := map[string]bool{name: true}
	c := h.classes[name]
	for c != nil && c.Super != "" && !seen[c.Super] {
		out = append(out, c.Super)
		seen[c.Super] = true
		c = h.classes[c.Super]
	}
	return out
}

// AllInterfaces returns every interface transitively implemented or
// extended by the class, in deterministic order.
func (h *Hierarchy) AllInterfaces(name string) []string {
	seen := make(map[string]bool)
	var out []string
	var visit func(n string)
	visit = func(n string) {
		c := h.classes[n]
		if c == nil {
			return
		}
		for _, i := range c.Interfaces {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
				visit(i)
			}
		}
		if c.Super != "" {
			visit(c.Super)
		}
	}
	visit(name)
	sort.Strings(out)
	return out
}

// IsSubtypeOf reports whether sub is the same as, extends, or implements
// super (class or interface).
func (h *Hierarchy) IsSubtypeOf(sub, super string) bool {
	if sub == super {
		return true
	}
	if super == ObjectClass {
		return h.classes[sub] != nil
	}
	for _, s := range h.Superclasses(sub) {
		if s == super {
			return true
		}
	}
	for _, i := range h.AllInterfaces(sub) {
		if i == super {
			return true
		}
	}
	return false
}

// IsSerializable reports whether the class transitively implements
// java.io.Serializable or java.io.Externalizable — the precondition for a
// class to participate in a native-descrialization gadget chain.
func (h *Hierarchy) IsSerializable(name string) bool {
	h.serialMu.Lock()
	if v, ok := h.serializable[name]; ok {
		h.serialMu.Unlock()
		return v
	}
	h.serialMu.Unlock()
	// Compute outside the lock: IsSubtypeOf is read-only over immutable
	// hierarchy state, and racing computations agree on the answer.
	v := h.IsSubtypeOf(name, SerializableIface) || h.IsSubtypeOf(name, ExternalizableIface)
	h.serialMu.Lock()
	h.serializable[name] = v
	h.serialMu.Unlock()
	return v
}

// Implements reports whether the class (or interface) fqcn is, extends,
// or transitively implements the interface iface. It is false whenever
// iface is not a known interface — unlike IsSubtypeOf it never treats a
// plain superclass as a match.
func (h *Hierarchy) Implements(fqcn, iface string) bool {
	c := h.classes[iface]
	if c == nil || !c.IsInterface() {
		return false
	}
	return h.IsSubtypeOf(fqcn, iface)
}

// SerializableClasses returns, in sorted order, the name of every class
// and interface for which IsSerializable holds — the candidate set the
// serialization-dispatch pass derives deserialization entry points from.
func (h *Hierarchy) SerializableClasses() []string {
	var out []string
	for _, name := range h.SortedClassNames() {
		if h.IsSerializable(name) {
			out = append(out, name)
		}
	}
	return out
}

// DirectSubclasses returns the classes whose superclass is name.
func (h *Hierarchy) DirectSubclasses(name string) []string {
	out := append([]string(nil), h.subclasses[name]...)
	sort.Strings(out)
	return out
}

// DirectImplementers returns the classes/interfaces that directly list
// name among their interfaces.
func (h *Hierarchy) DirectImplementers(name string) []string {
	out := append([]string(nil), h.implementers[name]...)
	sort.Strings(out)
	return out
}

// Subtypes returns every class transitively below name (via extends or
// implements), excluding name itself.
func (h *Hierarchy) Subtypes(name string) []string {
	seen := make(map[string]bool)
	var out []string
	var visit func(n string)
	visit = func(n string) {
		for _, s := range append(h.subclasses[n], h.implementers[n]...) {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
				visit(s)
			}
		}
	}
	visit(name)
	sort.Strings(out)
	return out
}

// ResolveMethod performs class-hierarchy method lookup: the declared
// method with the given sub-signature in class name or its nearest
// superclass. Returns nil when no declaration exists anywhere.
func (h *Hierarchy) ResolveMethod(name, sub string) *Method {
	c := h.classes[name]
	for c != nil {
		if m := c.MethodBySubSignature(sub); m != nil {
			return m
		}
		if c.Super == "" {
			// Interfaces bottom out at their super-interfaces, then Object.
			for _, i := range c.Interfaces {
				if m := h.ResolveMethod(i, sub); m != nil {
					return m
				}
			}
			if c.Name != ObjectClass && c.IsInterface() {
				c = h.classes[ObjectClass]
				continue
			}
			return nil
		}
		c = h.classes[c.Super]
	}
	return nil
}

// ResolveField performs field lookup through the superclass chain.
// Returns the field and its declaring class name, or nil/"".
func (h *Hierarchy) ResolveField(class, field string) (*Field, string) {
	c := h.classes[class]
	for c != nil {
		if f := c.FieldByName(field); f != nil {
			return f, c.Name
		}
		if c.Super == "" {
			return nil, ""
		}
		c = h.classes[c.Super]
	}
	return nil, ""
}

// DispatchTargets returns the concrete methods a virtual/interface call on
// (declClass, sub) may dispatch to: the resolved declaration plus every
// override in the subtype cone. Abstract declarations with no concrete
// override yield only the overrides. Used by the Method Alias Graph and by
// baseline call-graph construction.
func (h *Hierarchy) DispatchTargets(declClass, sub string) []*Method {
	var out []*Method
	seen := make(map[MethodKey]bool)
	add := func(m *Method) {
		if m != nil && !seen[m.Key()] {
			seen[m.Key()] = true
			out = append(out, m)
		}
	}
	add(h.ResolveMethod(declClass, sub))
	for _, s := range h.Subtypes(declClass) {
		if c := h.classes[s]; c != nil {
			add(c.MethodBySubSignature(sub))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// AliasSupers returns the methods that the given method overrides or
// implements in its direct superclass and interfaces — the targets of
// ALIAS edges per Formula 1: f_alias(m1, m2) holds when m2's class is a
// superclass or interface of m1's class and the sub-signatures match.
func (h *Hierarchy) AliasSupers(m *Method) []*Method {
	c := h.classes[m.ClassName]
	if c == nil {
		return nil
	}
	sub := m.SubSignature()
	var out []*Method
	seen := make(map[MethodKey]bool)
	add := func(target *Method) {
		if target != nil && !seen[target.Key()] {
			seen[target.Key()] = true
			out = append(out, target)
		}
	}
	if c.Super != "" {
		add(h.ResolveMethod(c.Super, sub))
	}
	for _, i := range c.Interfaces {
		add(h.ResolveMethod(i, sub))
	}
	// Classes with no explicit super-declaration still alias
	// Object's method when the sub-signature matches one of Object's
	// (hashCode/equals/toString) — the URLDNS linchpin.
	if len(out) == 0 && m.ClassName != ObjectClass {
		add(h.ResolveMethod(ObjectClass, sub))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// MethodByKey resolves a MethodKey to the declared method. Keys built by
// MakeMethodKey are class + "#" + sub-signature, so the lookup is two
// slices and a map probe — no parsing.
func (h *Hierarchy) MethodByKey(key MethodKey) *Method {
	s := string(key)
	hash := strings.IndexByte(s, '#')
	if hash < 0 {
		return nil
	}
	c := h.classes[s[:hash]]
	if c == nil {
		return nil
	}
	return c.MethodBySubSignature(s[hash+1:])
}
