package java

import (
	"fmt"
	"strings"
)

// SplitMethodKey parses a MethodKey back into class name, method name and
// parameter types. It is the inverse of MakeMethodKey.
func SplitMethodKey(key MethodKey) (class, name string, params []Type, err error) {
	s := string(key)
	hash := strings.IndexByte(s, '#')
	if hash < 0 {
		return "", "", nil, fmt.Errorf("method key %q: missing '#'", s)
	}
	open := strings.IndexByte(s[hash:], '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", "", nil, fmt.Errorf("method key %q: malformed parameter list", s)
	}
	open += hash
	class = s[:hash]
	name = s[hash+1 : open]
	inner := s[open+1 : len(s)-1]
	if inner == "" {
		return class, name, nil, nil
	}
	for _, p := range splitParams(inner) {
		t, perr := ParseType(p)
		if perr != nil {
			return "", "", nil, fmt.Errorf("method key %q: %w", s, perr)
		}
		params = append(params, t)
	}
	return class, name, params, nil
}

// splitParams splits a comma-separated parameter-type list. Types in this
// model never contain nested commas, so a flat split suffices.
func splitParams(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// MethodKeyClass returns just the class portion of a method key, or ""
// when the key is malformed.
func MethodKeyClass(key MethodKey) string {
	if i := strings.IndexByte(string(key), '#'); i >= 0 {
		return string(key)[:i]
	}
	return ""
}

// MethodKeyName returns just the method-name portion of a method key, or
// "" when the key is malformed.
func MethodKeyName(key MethodKey) string {
	s := string(key)
	hash := strings.IndexByte(s, '#')
	if hash < 0 {
		return ""
	}
	open := strings.IndexByte(s[hash:], '(')
	if open < 0 {
		return ""
	}
	return s[hash+1 : hash+open]
}
