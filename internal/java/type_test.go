package java

import (
	"testing"
	"testing/quick"
)

func TestParseType(t *testing.T) {
	tests := []struct {
		give    string
		want    string
		wantErr bool
	}{
		{give: "int", want: "int"},
		{give: "void", want: "void"},
		{give: "boolean", want: "boolean"},
		{give: "long", want: "long"},
		{give: "double", want: "double"},
		{give: "float", want: "double"}, // float collapses to double width-class
		{give: "char", want: "char"},
		{give: "short", want: "int"},
		{give: "byte", want: "int"},
		{give: "java.lang.String", want: "java.lang.String"},
		{give: "java.lang.Object[]", want: "java.lang.Object[]"},
		{give: "int[][]", want: "int[][]"},
		{give: " java.util.Map ", want: "java.util.Map"},
		{give: "", wantErr: true},
		{give: "void[]", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := ParseType(tt.give)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("ParseType(%q): want error, got %v", tt.give, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseType(%q): %v", tt.give, err)
			}
			if got.String() != tt.want {
				t.Errorf("ParseType(%q) = %q, want %q", tt.give, got.String(), tt.want)
			}
		})
	}
}

func TestTypeEqual(t *testing.T) {
	if !ClassType("a.B").Equal(ClassType("a.B")) {
		t.Error("identical class types must be equal")
	}
	if ClassType("a.B").Equal(ClassType("a.C")) {
		t.Error("distinct class types must not be equal")
	}
	if !ArrayOf(Int).Equal(ArrayOf(Int)) {
		t.Error("identical array types must be equal")
	}
	if ArrayOf(Int).Equal(ArrayOf(Long)) {
		t.Error("distinct array element types must not be equal")
	}
	if Int.Equal(Long) {
		t.Error("int must not equal long")
	}
	if ArrayOf(Int).Equal(Int) {
		t.Error("array must not equal scalar")
	}
}

func TestTypeIsReference(t *testing.T) {
	if !ClassType("x.Y").IsReference() || !ArrayOf(Int).IsReference() {
		t.Error("class and array types are references")
	}
	if Int.IsReference() || Void.IsReference() || Boolean.IsReference() {
		t.Error("primitives and void are not references")
	}
}

// TestTypeStringParseRoundTrip is a property test: any type assembled from
// the generator survives a String→ParseType round trip.
func TestTypeStringParseRoundTrip(t *testing.T) {
	f := func(classIdx uint8, dims uint8) bool {
		bases := []Type{Int, Long, Double, Boolean, Char,
			ClassType("java.lang.String"), ClassType("com.example.Thing")}
		typ := bases[int(classIdx)%len(bases)]
		for i := 0; i < int(dims%4); i++ {
			typ = ArrayOf(typ)
		}
		parsed, err := ParseType(typ.String())
		return err == nil && parsed.Equal(typ)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMethodKeyRoundTrip(t *testing.T) {
	tests := []struct {
		class  string
		name   string
		params []Type
	}{
		{"java.util.HashMap", "readObject", []Type{ClassType("java.io.ObjectInputStream")}},
		{"java.lang.Object", "hashCode", nil},
		{"a.B", "m", []Type{Int, ArrayOf(StringType), ClassType("x.Y")}},
	}
	for _, tt := range tests {
		key := MakeMethodKey(tt.class, tt.name, tt.params)
		class, name, params, err := SplitMethodKey(key)
		if err != nil {
			t.Fatalf("SplitMethodKey(%q): %v", key, err)
		}
		if class != tt.class || name != tt.name || len(params) != len(tt.params) {
			t.Errorf("SplitMethodKey(%q) = (%q,%q,%d params)", key, class, name, len(params))
		}
		for i := range params {
			if !params[i].Equal(tt.params[i]) {
				t.Errorf("param %d: got %v want %v", i, params[i], tt.params[i])
			}
		}
		if MethodKeyClass(key) != tt.class {
			t.Errorf("MethodKeyClass(%q) = %q", key, MethodKeyClass(key))
		}
		if MethodKeyName(key) != tt.name {
			t.Errorf("MethodKeyName(%q) = %q", key, MethodKeyName(key))
		}
	}
	if _, _, _, err := SplitMethodKey("nohash"); err == nil {
		t.Error("malformed key must error")
	}
	if _, _, _, err := SplitMethodKey("a#b"); err == nil {
		t.Error("missing parens must error")
	}
}

func TestModifierString(t *testing.T) {
	m := ModPublic | ModStatic | ModFinal
	if got := m.String(); got != "public static final" {
		t.Errorf("Modifier.String() = %q", got)
	}
	if !m.Has(ModPublic) || m.Has(ModPrivate) {
		t.Error("Has misbehaves")
	}
}
