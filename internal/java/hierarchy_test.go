package java

import (
	"testing"
)

// buildTestHierarchy assembles a small universe:
//
//	Object
//	  ├─ AbstractMap (abstract)  implements Map
//	  │    └─ HashMap            implements Serializable  (overrides hashCode? no)
//	  ├─ URL                     implements Serializable  (overrides hashCode)
//	  └─ EnumMap  extends AbstractMap, Serializable       (overrides hashCode)
//	Map (interface)              declares get
func buildTestHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	mapIface := &Class{
		Name:      "java.util.Map",
		Modifiers: ModPublic | ModInterface | ModAbstract,
	}
	mapIface.AddMethod(&Method{Name: "get", Params: []Type{ObjectType}, Return: ObjectType, Modifiers: ModPublic | ModAbstract})

	abstractMap := &Class{
		Name:       "java.util.AbstractMap",
		Modifiers:  ModPublic | ModAbstract,
		Super:      ObjectClass,
		Interfaces: []string{"java.util.Map"},
	}
	abstractMap.AddMethod(&Method{Name: "get", Params: []Type{ObjectType}, Return: ObjectType, Modifiers: ModPublic})

	hashMap := &Class{
		Name:       "java.util.HashMap",
		Modifiers:  ModPublic,
		Super:      "java.util.AbstractMap",
		Interfaces: []string{SerializableIface},
	}
	hashMap.AddMethod(&Method{Name: "readObject", Params: []Type{ClassType("java.io.ObjectInputStream")}, Modifiers: ModPrivate, Return: Void})
	hashMap.AddMethod(&Method{Name: "hash", Params: []Type{ObjectType}, Return: Int, Modifiers: ModStatic})
	hashMap.AddField(&Field{Name: "table", Type: ArrayOf(ObjectType)})

	url := &Class{
		Name:       "java.net.URL",
		Modifiers:  ModPublic | ModFinal,
		Super:      ObjectClass,
		Interfaces: []string{SerializableIface},
	}
	url.AddMethod(&Method{Name: "hashCode", Return: Int, Modifiers: ModPublic})

	enumMap := &Class{
		Name:       "java.util.EnumMap",
		Modifiers:  ModPublic,
		Super:      "java.util.AbstractMap",
		Interfaces: []string{SerializableIface},
	}
	enumMap.AddMethod(&Method{Name: "hashCode", Return: Int, Modifiers: ModPublic})

	h, err := NewHierarchy([]*Class{mapIface, abstractMap, hashMap, url, enumMap})
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	return h
}

func TestHierarchyBootstrap(t *testing.T) {
	h, err := NewHierarchy(nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.Class(ObjectClass) == nil {
		t.Fatal("java.lang.Object must be bootstrapped")
	}
	if h.Class(SerializableIface) == nil || !h.Class(SerializableIface).IsInterface() {
		t.Fatal("java.io.Serializable must be bootstrapped as an interface")
	}
	if h.ResolveMethod(ObjectClass, "hashCode()") == nil {
		t.Error("Object.hashCode must resolve")
	}
}

func TestHierarchySubtyping(t *testing.T) {
	h := buildTestHierarchy(t)
	tests := []struct {
		sub, super string
		want       bool
	}{
		{"java.util.HashMap", ObjectClass, true},
		{"java.util.HashMap", "java.util.AbstractMap", true},
		{"java.util.HashMap", "java.util.Map", true},
		{"java.util.HashMap", SerializableIface, true},
		{"java.util.AbstractMap", "java.util.HashMap", false},
		{"java.net.URL", "java.util.Map", false},
		{"java.util.EnumMap", "java.util.Map", true},
		{"java.util.Map", "java.util.Map", true},
	}
	for _, tt := range tests {
		if got := h.IsSubtypeOf(tt.sub, tt.super); got != tt.want {
			t.Errorf("IsSubtypeOf(%s, %s) = %v, want %v", tt.sub, tt.super, got, tt.want)
		}
	}
}

func TestHierarchySerializable(t *testing.T) {
	h := buildTestHierarchy(t)
	for _, name := range []string{"java.util.HashMap", "java.net.URL", "java.util.EnumMap"} {
		if !h.IsSerializable(name) {
			t.Errorf("%s must be serializable", name)
		}
	}
	if h.IsSerializable("java.util.AbstractMap") {
		t.Error("AbstractMap is not serializable")
	}
	// Memoized second call must agree.
	if !h.IsSerializable("java.util.HashMap") {
		t.Error("memoized IsSerializable changed its answer")
	}
}

func TestHierarchyResolveMethod(t *testing.T) {
	h := buildTestHierarchy(t)
	// HashMap does not declare hashCode: resolution walks up to Object.
	m := h.ResolveMethod("java.util.HashMap", "hashCode()")
	if m == nil || m.ClassName != ObjectClass {
		t.Fatalf("HashMap.hashCode resolves to %v, want Object's", m)
	}
	// URL declares its own hashCode.
	m = h.ResolveMethod("java.net.URL", "hashCode()")
	if m == nil || m.ClassName != "java.net.URL" {
		t.Fatalf("URL.hashCode resolves to %v, want URL's", m)
	}
	// get on HashMap resolves through AbstractMap.
	m = h.ResolveMethod("java.util.HashMap", "get(java.lang.Object)")
	if m == nil || m.ClassName != "java.util.AbstractMap" {
		t.Fatalf("HashMap.get resolves to %v, want AbstractMap's", m)
	}
	// Interface resolution: Map.get resolves on the interface itself.
	m = h.ResolveMethod("java.util.Map", "get(java.lang.Object)")
	if m == nil || m.ClassName != "java.util.Map" {
		t.Fatalf("Map.get resolves to %v", m)
	}
	if h.ResolveMethod("java.util.HashMap", "nonexistent()") != nil {
		t.Error("nonexistent method must not resolve")
	}
}

func TestHierarchyDispatchTargets(t *testing.T) {
	h := buildTestHierarchy(t)
	// A call to Object.hashCode may dispatch to Object, URL or EnumMap
	// implementations — the polymorphism that powers URLDNS (§III-B2).
	targets := h.DispatchTargets(ObjectClass, "hashCode()")
	got := make(map[string]bool, len(targets))
	for _, m := range targets {
		got[m.ClassName] = true
	}
	for _, want := range []string{ObjectClass, "java.net.URL", "java.util.EnumMap"} {
		if !got[want] {
			t.Errorf("DispatchTargets(Object.hashCode) missing %s (got %v)", want, got)
		}
	}
	// A call to Map.get may dispatch to AbstractMap.get.
	targets = h.DispatchTargets("java.util.Map", "get(java.lang.Object)")
	foundAbstract := false
	for _, m := range targets {
		if m.ClassName == "java.util.AbstractMap" {
			foundAbstract = true
		}
	}
	if !foundAbstract {
		t.Error("DispatchTargets(Map.get) must include AbstractMap.get")
	}
}

func TestHierarchyAliasSupers(t *testing.T) {
	h := buildTestHierarchy(t)
	// URL.hashCode aliases Object.hashCode (Formula 1).
	url := h.Class("java.net.URL").MethodBySubSignature("hashCode()")
	supers := h.AliasSupers(url)
	if len(supers) != 1 || supers[0].ClassName != ObjectClass {
		t.Fatalf("AliasSupers(URL.hashCode) = %v, want [Object.hashCode]", supers)
	}
	// AbstractMap.get aliases Map.get.
	am := h.Class("java.util.AbstractMap").MethodBySubSignature("get(java.lang.Object)")
	supers = h.AliasSupers(am)
	if len(supers) != 1 || supers[0].ClassName != "java.util.Map" {
		t.Fatalf("AliasSupers(AbstractMap.get) = %v, want [Map.get]", supers)
	}
	// HashMap.readObject aliases nothing (no super declares it).
	ro := h.Class("java.util.HashMap").MethodBySubSignature("readObject(java.io.ObjectInputStream)")
	if supers = h.AliasSupers(ro); len(supers) != 0 {
		t.Fatalf("AliasSupers(HashMap.readObject) = %v, want none", supers)
	}
}

func TestHierarchyPhantom(t *testing.T) {
	c := &Class{Name: "a.B", Modifiers: ModPublic, Super: "missing.Super", Interfaces: []string{"missing.Iface"}}
	h, err := NewHierarchy([]*Class{c})
	if err != nil {
		t.Fatal(err)
	}
	sup := h.Class("missing.Super")
	if sup == nil || !sup.Phantom {
		t.Fatal("missing superclass must become a phantom class")
	}
	ifc := h.Class("missing.Iface")
	if ifc == nil || !ifc.Phantom || !ifc.IsInterface() {
		t.Fatal("missing interface must become a phantom interface")
	}
	if !h.IsSubtypeOf("a.B", "missing.Super") || !h.IsSubtypeOf("a.B", "missing.Iface") {
		t.Error("subtyping must see phantoms")
	}
}

func TestHierarchyDuplicateClass(t *testing.T) {
	a := &Class{Name: "dup.C", Modifiers: ModPublic, Super: ObjectClass}
	b := &Class{Name: "dup.C", Modifiers: ModPublic, Super: ObjectClass}
	if _, err := NewHierarchy([]*Class{a, b}); err == nil {
		t.Fatal("duplicate class names must be rejected")
	}
}

func TestHierarchyResolveField(t *testing.T) {
	h := buildTestHierarchy(t)
	f, owner := h.ResolveField("java.util.HashMap", "table")
	if f == nil || owner != "java.util.HashMap" {
		t.Fatalf("ResolveField(HashMap.table) = %v/%s", f, owner)
	}
	if f, _ := h.ResolveField("java.util.HashMap", "ghost"); f != nil {
		t.Error("nonexistent field must not resolve")
	}
	// EnumMap inherits no field but lookup must traverse supers safely.
	if f, _ := h.ResolveField("java.util.EnumMap", "table"); f != nil {
		t.Error("EnumMap does not inherit HashMap.table")
	}
}

func TestClassValidate(t *testing.T) {
	c := &Class{Name: "v.C", Modifiers: ModPublic, Super: ObjectClass}
	c.AddMethod(&Method{Name: "m", Return: Void})
	c.AddMethod(&Method{Name: "m", Params: []Type{Int}, Return: Void})
	if err := c.Validate(); err != nil {
		t.Fatalf("overloads are legal: %v", err)
	}
	c.AddMethod(&Method{Name: "m", Return: Int}) // same sub-signature, differing return
	if err := c.Validate(); err == nil {
		t.Fatal("duplicate sub-signature must be rejected")
	}
	missing := &Class{Name: "v.D", Modifiers: ModPublic}
	if err := missing.Validate(); err == nil {
		t.Fatal("non-Object class without super must be rejected")
	}
}

func TestClassAccessors(t *testing.T) {
	c := &Class{Name: "com.example.Foo", Modifiers: ModPublic, Super: ObjectClass}
	if c.Package() != "com.example" || c.SimpleName() != "Foo" {
		t.Errorf("Package/SimpleName = %q/%q", c.Package(), c.SimpleName())
	}
	d := &Class{Name: "Bare", Modifiers: ModPublic, Super: ObjectClass}
	if d.Package() != "" || d.SimpleName() != "Bare" {
		t.Errorf("default package handling broken: %q/%q", d.Package(), d.SimpleName())
	}
	c.AddMethod(&Method{Name: "b", Return: Void})
	c.AddMethod(&Method{Name: "a", Return: Void})
	keys := c.SortedMethodKeys()
	if len(keys) != 2 || keys[0] > keys[1] {
		t.Errorf("SortedMethodKeys not sorted: %v", keys)
	}
	if len(c.MethodsByName("a")) != 1 || len(c.MethodsByName("zz")) != 0 {
		t.Error("MethodsByName misbehaves")
	}
}

func TestImplements(t *testing.T) {
	h := buildTestHierarchy(t)
	cases := []struct {
		fqcn, iface string
		want        bool
	}{
		// Direct and transitive interface implementation.
		{"java.util.AbstractMap", "java.util.Map", true},
		{"java.util.HashMap", "java.util.Map", true}, // via superclass
		{"java.util.HashMap", SerializableIface, true},
		{"java.net.URL", SerializableIface, true},
		{"java.util.AbstractMap", SerializableIface, false},
		// An interface "implements" itself and its super-interfaces.
		{"java.util.Map", "java.util.Map", true},
		// A superclass is not an interface: never a match.
		{"java.util.HashMap", "java.util.AbstractMap", false},
		{"java.util.HashMap", ObjectClass, false},
		// Unknown interface names are never matched.
		{"java.util.HashMap", "no.such.Iface", false},
	}
	for _, tc := range cases {
		if got := h.Implements(tc.fqcn, tc.iface); got != tc.want {
			t.Errorf("Implements(%q, %q) = %v, want %v", tc.fqcn, tc.iface, got, tc.want)
		}
	}
}

func TestSerializableClasses(t *testing.T) {
	h := buildTestHierarchy(t)
	got := h.SerializableClasses()
	want := map[string]bool{
		// The bootstrap interfaces themselves satisfy IsSerializable.
		SerializableIface:   true,
		ExternalizableIface: true,
		"java.util.HashMap": true,
		"java.util.EnumMap": true,
		"java.net.URL":      true,
	}
	seen := make(map[string]bool, len(got))
	for i, name := range got {
		if i > 0 && got[i-1] >= name {
			t.Fatalf("SerializableClasses not sorted-unique: %q before %q", got[i-1], name)
		}
		seen[name] = true
		if !h.IsSerializable(name) {
			t.Errorf("SerializableClasses includes %q but IsSerializable is false", name)
		}
		if !want[name] {
			t.Errorf("SerializableClasses includes unexpected %q", name)
		}
	}
	for name := range want {
		if !seen[name] {
			t.Errorf("SerializableClasses missing %q", name)
		}
	}
}
