// Package java models the Java class universe that Tabby analyzes:
// type descriptors, classes, fields, methods, archives ("jar files") and
// the class hierarchy used for subtype and virtual-dispatch reasoning.
//
// It is the Go substitute for the class-table side of the Soot framework
// (paper §III-B1, "Semantic Information Extraction"). The instruction-level
// IR lives in package jimple; the frontend that produces both lives in
// package javasrc.
package java

import (
	"fmt"
	"strings"
)

// TypeKind enumerates the kinds of Java types the model distinguishes.
type TypeKind int

// The supported type kinds. Primitive kinds are collapsed to the ones the
// controllability analysis cares about; all numeric widths behave alike.
const (
	KindVoid TypeKind = iota + 1
	KindBoolean
	KindInt
	KindLong
	KindDouble
	KindChar
	KindClass
	KindArray
)

// Type is a Java type descriptor. Class types carry the fully qualified
// class name in Name; array types carry their element type in Elem.
type Type struct {
	Kind TypeKind
	Name string // fully qualified class name when Kind == KindClass
	Elem *Type  // element type when Kind == KindArray
}

// Convenience constructors for the common types.
var (
	Void    = Type{Kind: KindVoid}
	Boolean = Type{Kind: KindBoolean}
	Int     = Type{Kind: KindInt}
	Long    = Type{Kind: KindLong}
	Double  = Type{Kind: KindDouble}
	Char    = Type{Kind: KindChar}

	// ObjectType is java.lang.Object, the root of the hierarchy.
	ObjectType = ClassType("java.lang.Object")
	// StringType is java.lang.String.
	StringType = ClassType("java.lang.String")
)

// ClassType returns the Type for the fully qualified class name.
func ClassType(name string) Type {
	return Type{Kind: KindClass, Name: name}
}

// ArrayOf returns the array type with the given element type.
func ArrayOf(elem Type) Type {
	e := elem
	return Type{Kind: KindArray, Elem: &e}
}

// IsReference reports whether the type is a class or array type, i.e. a
// type whose values can carry attacker-controlled object graphs.
func (t Type) IsReference() bool {
	return t.Kind == KindClass || t.Kind == KindArray
}

// IsVoid reports whether the type is void.
func (t Type) IsVoid() bool { return t.Kind == KindVoid }

// Equal reports structural equality of two types.
func (t Type) Equal(o Type) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KindClass:
		return t.Name == o.Name
	case KindArray:
		return t.Elem.Equal(*o.Elem)
	default:
		return true
	}
}

// String renders the type in Java source syntax.
func (t Type) String() string {
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindBoolean:
		return "boolean"
	case KindInt:
		return "int"
	case KindLong:
		return "long"
	case KindDouble:
		return "double"
	case KindChar:
		return "char"
	case KindClass:
		return t.Name
	case KindArray:
		return t.Elem.String() + "[]"
	default:
		return fmt.Sprintf("<invalid type kind %d>", int(t.Kind))
	}
}

// ParseType parses a Java-source-syntax type such as "int",
// "java.lang.String" or "java.lang.Object[]". Unknown identifiers are
// treated as class types.
func ParseType(s string) (Type, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Type{}, fmt.Errorf("parse type: empty string")
	}
	dims := 0
	for strings.HasSuffix(s, "[]") {
		s = strings.TrimSpace(strings.TrimSuffix(s, "[]"))
		dims++
	}
	var base Type
	switch s {
	case "void":
		base = Void
	case "boolean":
		base = Boolean
	case "int", "short", "byte":
		base = Int
	case "long":
		base = Long
	case "float", "double":
		base = Double
	case "char":
		base = Char
	default:
		base = ClassType(s)
	}
	if base.IsVoid() && dims > 0 {
		return Type{}, fmt.Errorf("parse type: void array %q", s)
	}
	for i := 0; i < dims; i++ {
		base = ArrayOf(base)
	}
	return base, nil
}
