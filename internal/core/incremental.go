package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"time"

	"tabby/internal/cpg"
	"tabby/internal/javasrc"
	"tabby/internal/parallel"
	"tabby/internal/searchindex"
	"tabby/internal/sinks"
	"tabby/internal/taint"
)

// AnalysisCache carries every reusable artifact of one analysis run to the
// next: the frontend's content-addressed compile cache, the taint
// summary cache, and the last built graph for in-place deltas. One cache
// serves one sequence of runs; it is not safe for concurrent use (the
// server serializes /v1/analyze around it).
type AnalysisCache struct {
	// Compile caches parsed, resolved and lowered class artifacts by
	// content fingerprint.
	Compile *javasrc.Cache
	// Summaries caches per-SCC controllability summaries by dependency-cone
	// fingerprint.
	Summaries *taint.SummaryCache

	// The last built graph plus the fingerprints it was built under. A
	// delta is attempted only when hierarchy and engine configuration both
	// match and the graph is still mutable.
	lastGraph    *cpg.Graph
	lastHierFP   string
	lastConfigFP string
}

// NewAnalysisCache creates an empty cache.
func NewAnalysisCache() *AnalysisCache {
	return &AnalysisCache{
		Compile:   javasrc.NewCache(),
		Summaries: taint.NewSummaryCache(),
	}
}

// LastGraph returns the graph of the previous AnalyzeIncremental run (nil
// before the first).
func (c *AnalysisCache) LastGraph() *cpg.Graph { return c.lastGraph }

// CacheStats reports what one AnalyzeIncremental run reused, layer by
// layer. It rides along in Timings so benchmark tables can print hit
// rates next to wall-clock times.
type CacheStats struct {
	// Compile is the frontend's reuse report (parse/skeleton/body hits).
	Compile javasrc.CompileStats
	// Taint is the summary cache's reuse report (component hits).
	Taint taint.CacheStats
	// GraphReuse is how the graph stage ran: "rebuilt" (fresh build),
	// "delta" (previous graph patched in place), or "unchanged" (previous
	// graph byte-identical, not even a version bump).
	GraphReuse string
}

// AnalyzeIncremental is AnalyzeSources with a cross-run cache: compilation
// reuses per-file artifacts, the controllability analysis reuses per-SCC
// summaries, and the graph stage patches the previous graph in place when
// the class hierarchy is structurally unchanged (falling back to a full —
// but summary-cached — rebuild when it is not). The report is
// byte-identical to what AnalyzeSources would produce for the same
// archives: every cache is content-addressed, so a hit can only replace
// work whose inputs were equal. A nil cache degrades to AnalyzeSources.
func (e *Engine) AnalyzeIncremental(cache *AnalysisCache, archives []javasrc.ArchiveSource) (*Report, error) {
	if cache == nil {
		return e.AnalyzeSources(archives)
	}
	start := time.Now()
	prog, cstats, err := javasrc.CompileArchivesCached(archives, javasrc.CompileOptions{Workers: e.opts.Workers}, cache.Compile)
	if err != nil {
		return nil, fmt.Errorf("tabby: compile: %w", err)
	}
	compileTime := time.Since(start)

	buildStart := time.Now()
	topts := e.opts.TaintOptions
	if topts.Workers == 0 {
		topts.Workers = e.opts.Workers
	}
	res, tstats, err := taint.AnalyzeWithCache(prog, topts, cache.Summaries)
	if err != nil {
		return nil, fmt.Errorf("tabby: build cpg: %w", err)
	}

	cpgOpts := cpg.Options{
		Sinks:                 e.opts.Sinks,
		Sources:               e.opts.Sources,
		Taint:                 e.opts.TaintOptions,
		KeepPrunedCalls:       e.opts.KeepPrunedCalls,
		Workers:               e.opts.Workers,
		SerializationDispatch: e.opts.SerializationDispatch,
	}
	cfgFP := e.configFP()
	reuse := "rebuilt"
	var g *cpg.Graph
	if cache.lastGraph != nil && !cache.lastGraph.DB.Frozen() &&
		cache.lastHierFP != "" && cache.lastHierFP == cstats.HierarchyFP &&
		cache.lastConfigFP == cfgFP {
		before := cache.lastGraph.DB.Version()
		ok, err := cache.lastGraph.ApplyDelta(prog, res, cpgOpts)
		if err != nil {
			return nil, fmt.Errorf("tabby: build cpg: %w", err)
		}
		if ok {
			g = cache.lastGraph
			if g.DB.Version() == before {
				reuse = "unchanged"
			} else {
				reuse = "delta"
			}
		}
	}
	if g == nil {
		g, err = cpg.BuildWithResult(prog, res, cpgOpts)
		if err != nil {
			return nil, fmt.Errorf("tabby: build cpg: %w", err)
		}
	}
	searchindex.For(g.DB)
	buildTime := time.Since(buildStart)
	cache.lastGraph, cache.lastHierFP, cache.lastConfigFP = g, cstats.HierarchyFP, cfgFP

	chains, truncated, searchTime, err := e.FindChains(g)
	if err != nil {
		return nil, err
	}
	return &Report{
		Graph:     g,
		Chains:    chains,
		Truncated: truncated,
		Timings: Timings{
			Compile:  compileTime,
			BuildCPG: buildTime,
			Search:   searchTime,
			Workers:  parallel.Resolve(e.opts.Workers),
			Cache:    &CacheStats{Compile: cstats, Taint: tstats, GraphReuse: reuse},
		},
	}, nil
}

// ResultFingerprint content-addresses the outcome of analyzing archives
// with this engine: the corpus fingerprint (every file's content plus
// the archive list), the engine configuration the graph depends on
// (sinks, sources, taint settings), and the search options that shape
// the chain report (depth, chain cap, visit budget). Two calls with
// equal fingerprints produce byte-identical reports — the pipeline is
// deterministic and worker-independent — so a service can cache a
// finished analysis under this key and serve repeat uploads without
// building anything.
func (e *Engine) ResultFingerprint(archives []javasrc.ArchiveSource) string {
	h := sha256.New()
	h.Write([]byte("tabby-result\x00"))
	h.Write([]byte(javasrc.CorpusFingerprint(archives, e.opts.Workers)))
	h.Write([]byte{0})
	h.Write([]byte(e.configFP()))
	h.Write([]byte{0})
	// Search-only options don't change the graph, but they do change the
	// report (how many chains, truncation), so they key the result too.
	h.Write([]byte(strconv.Itoa(e.opts.MaxDepth) + "|" +
		strconv.Itoa(e.opts.MaxChains) + "|" +
		strconv.Itoa(e.opts.VisitBudget)))
	return hex.EncodeToString(h.Sum(nil))
}

// configFP fingerprints every engine option the graph contents depend on,
// so a cached graph is never patched under a different sink registry,
// source config, or analysis setting. Search-only options (depth, chain
// cap, budget, workers) are excluded: they replay on every run.
func (e *Engine) configFP() string {
	reg := e.opts.Sinks
	if reg == nil {
		reg = sinks.Default()
	}
	src := e.opts.Sources
	if len(src.MethodNames) == 0 {
		src = sinks.DefaultSources()
	}
	h := sha256.New()
	h.Write([]byte("tabby-config\x00"))
	for _, s := range reg.All() {
		h.Write([]byte(s.Class + "." + s.Method + ":" + string(s.Type)))
		for _, tc := range s.TC {
			h.Write([]byte(":" + strconv.Itoa(tc)))
		}
		h.Write([]byte{0})
	}
	h.Write([]byte(src.String()))
	h.Write([]byte{0})
	if e.opts.KeepPrunedCalls {
		h.Write([]byte("keep-pruned"))
	}
	h.Write([]byte{0})
	if e.opts.SerializationDispatch {
		h.Write([]byte("serialization-dispatch"))
	}
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(e.opts.TaintOptions.MaxIterations)))
	if e.opts.TaintOptions.DisableInterprocedural {
		h.Write([]byte("|nointerproc"))
	}
	return hex.EncodeToString(h.Sum(nil))
}
