package core

import (
	"fmt"
	"reflect"
	"testing"

	"tabby/internal/corpus"
	"tabby/internal/javasrc"
	"tabby/internal/pathfinder"
)

// pipelineOutput captures everything the determinism contract promises to
// hold constant across worker counts: the chains (IDs, names, TCs, sink
// types, order), the graph statistics, and the pruning counters.
type pipelineOutput struct {
	Chains      []pathfinder.Chain
	Truncated   bool
	Stats       string
	TotalCalls  int
	PrunedCalls int
}

func runPipeline(t *testing.T, archives []javasrc.ArchiveSource, workers int) pipelineOutput {
	return runPipelineMode(t, archives, workers, false)
}

// runPipelineMode runs the pipeline with the serialization-dispatch pass
// on or off. The dispatch-edge count rides along in the Stats string so
// the determinism contract covers it too.
func runPipelineMode(t *testing.T, archives []javasrc.ArchiveSource, workers int, dispatch bool) pipelineOutput {
	t.Helper()
	engine := New(Options{Workers: workers, SerializationDispatch: dispatch})
	rep, err := engine.AnalyzeSources(archives)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return pipelineOutput{
		Chains:      rep.Chains,
		Truncated:   rep.Truncated,
		Stats:       fmt.Sprintf("%+v dispatch=%d", rep.Graph.Stats, rep.Graph.DispatchEdges),
		TotalCalls:  rep.Graph.Taint.TotalCalls,
		PrunedCalls: rep.Graph.Taint.PrunedCalls,
	}
}

func assertIdentical(t *testing.T, name string, base, got pipelineOutput, workers int) {
	t.Helper()
	if got.Stats != base.Stats {
		t.Errorf("%s workers=%d: stats differ\n got %s\nwant %s", name, workers, got.Stats, base.Stats)
	}
	if got.TotalCalls != base.TotalCalls || got.PrunedCalls != base.PrunedCalls {
		t.Errorf("%s workers=%d: call counters differ: got %d/%d want %d/%d",
			name, workers, got.TotalCalls, got.PrunedCalls, base.TotalCalls, base.PrunedCalls)
	}
	if got.Truncated != base.Truncated {
		t.Errorf("%s workers=%d: truncated=%v, want %v", name, workers, got.Truncated, base.Truncated)
	}
	if len(got.Chains) != len(base.Chains) {
		t.Fatalf("%s workers=%d: %d chains, want %d", name, workers, len(got.Chains), len(base.Chains))
	}
	for i := range base.Chains {
		if !reflect.DeepEqual(got.Chains[i], base.Chains[i]) {
			t.Errorf("%s workers=%d: chain %d differs\n got %+v\nwant %+v",
				name, workers, i, got.Chains[i], base.Chains[i])
		}
	}
}

// TestPipelineDeterministicAcrossWorkerCounts runs every Table IX
// component plus the Spring scene at several worker counts and requires
// output identical to the sequential (Workers: 1) run — including graph
// node IDs inside chains, which pins down batch ID assignment too.
func TestPipelineDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus determinism sweep")
	}
	type scenario struct {
		name     string
		archives []javasrc.ArchiveSource
	}
	var scenarios []scenario
	for _, comp := range corpus.Components() {
		scenarios = append(scenarios, scenario{
			name:     "component/" + comp.Name,
			archives: append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...),
		})
	}
	spring, err := corpus.SceneByName("Spring")
	if err != nil {
		t.Fatal(err)
	}
	scenarios = append(scenarios, scenario{
		name:     "scene/" + spring.Name,
		archives: append([]javasrc.ArchiveSource{corpus.RT()}, spring.Archives...),
	})

	// Both gate modes of the serialization-dispatch pass are under the
	// same contract: worker count may never change output.
	modes := []struct {
		name     string
		dispatch bool
	}{{"gate-off", false}, {"gate-on", true}}
	for _, sc := range scenarios {
		sc := sc
		for _, mode := range modes {
			mode := mode
			t.Run(sc.name+"/"+mode.name, func(t *testing.T) {
				base := runPipelineMode(t, sc.archives, 1, mode.dispatch)
				if len(base.Chains) == 0 && sc.name != "scene/Spring" {
					// Components in the corpus are expected to yield chains;
					// an empty baseline would make the comparison vacuous.
					t.Logf("note: baseline found no chains for %s", sc.name)
				}
				for _, workers := range []int{2, 4} {
					got := runPipelineMode(t, sc.archives, workers, mode.dispatch)
					assertIdentical(t, sc.name, base, got, workers)
				}
			})
		}
	}
}

// TestPipelineDeterministicDefaultWorkers checks the unset (GOMAXPROCS)
// worker count against the sequential path on one component, since the
// default is what every CLI run uses.
func TestPipelineDeterministicDefaultWorkers(t *testing.T) {
	comps := corpus.Components()
	archives := append([]javasrc.ArchiveSource{corpus.RT()}, comps[0].Archives...)
	base := runPipeline(t, archives, 1)
	got := runPipeline(t, archives, 0)
	assertIdentical(t, "component/"+comps[0].Name+"/default", base, got, 0)
}
