package core

import (
	"strings"
	"testing"

	"tabby/internal/corpus"
	"tabby/internal/graphdb"
	"tabby/internal/javasrc"
	"tabby/internal/sinks"
)

func TestAnalyzeSourcesEndToEnd(t *testing.T) {
	engine := New(Options{})
	rep, err := engine.AnalyzeSources([]javasrc.ArchiveSource{corpus.RT()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Chains) == 0 {
		t.Fatal("URLDNS chain must be found")
	}
	if rep.Timings.Compile <= 0 || rep.Timings.BuildCPG <= 0 {
		t.Errorf("timings not recorded: %+v", rep.Timings)
	}
	if rep.Graph.Stats.MethodNodes == 0 {
		t.Error("graph stats empty")
	}
}

func TestAnalyzeSourcesCompileError(t *testing.T) {
	engine := New(Options{})
	_, err := engine.AnalyzeSources([]javasrc.ArchiveSource{{
		Name:  "bad.jar",
		Files: []javasrc.File{{Name: "bad.java", Source: "class {"}},
	}})
	if err == nil || !strings.Contains(err.Error(), "compile") {
		t.Fatalf("compile error must propagate, got %v", err)
	}
}

func TestMaxDepthOption(t *testing.T) {
	// URLDNS is 7 nodes long; a depth bound of 4 must suppress it.
	engine := New(Options{MaxDepth: 4})
	rep, err := engine.AnalyzeSources([]javasrc.ArchiveSource{corpus.RT()})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Chains {
		if strings.Contains(c.Names[len(c.Names)-1], "getByName") {
			t.Fatalf("URLDNS must be suppressed at depth 4: %v", c.Names)
		}
	}
}

func TestCustomSinkRegistry(t *testing.T) {
	reg := sinks.Default()
	reg.Add(sinks.Sink{Class: "t.Danger", Method: "boom", Type: sinks.TypeExec, TC: []int{1}})
	engine := New(Options{Sinks: reg})
	rep, err := engine.AnalyzeSources([]javasrc.ArchiveSource{
		corpus.RT(),
		{Name: "t.jar", Files: []javasrc.File{{Name: "t.java", Source: `
package t;
public class Danger {
    public void boom(String c) { }
}
public class Entry implements java.io.Serializable {
    public String cmd;
    public t.Danger d;
    private void readObject(java.io.ObjectInputStream s) {
        d.boom(this.cmd);
    }
}
`}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range rep.Chains {
		if strings.HasPrefix(c.Names[0], "t.Entry#readObject") && strings.Contains(c.Names[len(c.Names)-1], "boom") {
			found = true
		}
	}
	if !found {
		t.Fatal("custom sink chain not found")
	}
}

func TestFindChainsBetween(t *testing.T) {
	engine := New(Options{})
	prog, err := javasrc.CompileArchives([]javasrc.ArchiveSource{corpus.RT()})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := engine.BuildCPG(prog)
	if err != nil {
		t.Fatal(err)
	}
	sinksNodes := g.SinkNodes()
	if len(sinksNodes) == 0 {
		t.Fatal("no sinks")
	}
	// Custom source filter: only HashMap.readObject qualifies.
	chains, err := engine.FindChainsBetween(g, sinksNodes, func(db *graphdb.DB, node graphdb.ID) bool {
		v, _ := db.NodeProp(node, "NAME")
		s, _ := v.(string)
		return strings.HasPrefix(s, "java.util.HashMap#readObject")
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) == 0 {
		t.Fatal("custom-source search found nothing")
	}
	for _, c := range chains {
		if !strings.HasPrefix(c.Names[0], "java.util.HashMap#readObject") {
			t.Errorf("filter leak: %v", c.Names[0])
		}
	}
}

func TestKeepPrunedCallsAblation(t *testing.T) {
	src := javasrc.ArchiveSource{Name: "p.jar", Files: []javasrc.File{{Name: "p.java", Source: `
package p;
class C {
    void m() {
        Object fresh = new Object();
        int h = fresh.hashCode();
    }
}
`}}}
	base := New(Options{})
	ablated := New(Options{KeepPrunedCalls: true})
	repBase, err := base.AnalyzeSources([]javasrc.ArchiveSource{corpus.RT(), src})
	if err != nil {
		t.Fatal(err)
	}
	repAblated, err := ablated.AnalyzeSources([]javasrc.ArchiveSource{corpus.RT(), src})
	if err != nil {
		t.Fatal(err)
	}
	if repAblated.Graph.Stats.CallEdges <= repBase.Graph.Stats.CallEdges {
		t.Error("ablation must retain pruned call edges")
	}
}
