package core

import (
	"strings"
	"testing"

	"tabby/internal/corpus"
	"tabby/internal/javasrc"
)

// fig1Source is the paper's introductory example (Fig. 1 / Table I):
// EvilObjectA.readObject restores val1 via the stream's GetField API and
// calls its toString; EvilObjectB.toString executes a command built from
// val2. The expected chain is Table I:
//
//	(source)EvilObjectA.readObject()
//	ObjectInputStream.readFields() / GetField.get()
//	valObj.toString() ⇝ EvilObjectB.toString()
//	(sink)Runtime.getRuntime().exec()
const fig1Source = `
package fig1;

import java.io.Serializable;
import java.io.ObjectInputStream;
import java.io.GetField;

public class EvilObjectA implements Serializable {
    public Object val1;
    private void readObject(ObjectInputStream is) {
        GetField gf = is.readFields();
        Object valObj = gf.get("val1", null);
        String out = valObj.toString();
    }
}

public class EvilObjectB implements Serializable {
    public Object val2;
    public String toString() {
        String cmd = val2.toString();
        java.lang.Process p = java.lang.Runtime.getRuntime().exec(cmd);
        return cmd;
    }
}
`

func TestFig1EvilObjectChain(t *testing.T) {
	engine := New(Options{})
	rep, err := engine.AnalyzeSources([]javasrc.ArchiveSource{
		corpus.RT(),
		{Name: "fig1.jar", Files: []javasrc.File{{Name: "fig1.java", Source: fig1Source}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var chain string
	for _, c := range rep.Chains {
		if strings.HasPrefix(c.Names[0], "fig1.EvilObjectA#readObject") &&
			strings.Contains(c.Names[len(c.Names)-1], "exec") {
			chain = c.String()
		}
	}
	if chain == "" {
		for _, c := range rep.Chains {
			t.Logf("chain:\n%s", c)
		}
		t.Fatal("Fig. 1 chain not found")
	}
	// The chain must pivot through the toString alias into EvilObjectB.
	for _, want := range []string{
		"fig1.EvilObjectA#readObject(java.io.ObjectInputStream)",
		"java.lang.Object#toString()",
		"fig1.EvilObjectB#toString()",
		"java.lang.Runtime#exec(java.lang.String)",
	} {
		if !strings.Contains(chain, want) {
			t.Errorf("Fig. 1 chain missing %s:\n%s", want, chain)
		}
	}
}

func TestBlacklistWorkflow(t *testing.T) {
	engine := New(Options{})
	rep, err := engine.AnalyzeSources([]javasrc.ArchiveSource{
		corpus.RT(),
		{Name: "fig1.jar", Files: []javasrc.File{{Name: "fig1.java", Source: fig1Source}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Chains) == 0 {
		t.Fatal("need chains")
	}
	blacklist := BlacklistFromChains(rep.Chains)
	if len(blacklist) == 0 {
		t.Fatal("empty blacklist")
	}
	foundEvil := false
	for _, c := range blacklist {
		if c == "fig1.EvilObjectA" {
			foundEvil = true
		}
		if c == "java.lang.Object" {
			t.Error("Object must never be blacklisted")
		}
	}
	if !foundEvil {
		t.Errorf("blacklist %v missing fig1.EvilObjectA", blacklist)
	}
	// Applying the full blacklist kills every chain.
	if left := FilterChainsByBlacklist(rep.Chains, blacklist); len(left) != 0 {
		t.Errorf("%d chains survive the full blacklist", len(left))
	}
	// An unrelated blacklist kills nothing.
	if left := FilterChainsByBlacklist(rep.Chains, []string{"com.other.Thing"}); len(left) != len(rep.Chains) {
		t.Error("unrelated blacklist must not filter chains")
	}
}
