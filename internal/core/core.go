// Package core is the Tabby engine: the end-to-end pipeline of Fig. 2 —
// semantic information extraction (javasrc), code property graph
// construction with controllability analysis (cpg/taint), storage in the
// embedded graph database (graphdb), and gadget-chain finding
// (pathfinder). It is the public API used by cmd/ and examples/.
package core

import (
	"fmt"
	"io"
	"time"

	"tabby/internal/cpg"
	"tabby/internal/graphdb"
	"tabby/internal/javasrc"
	"tabby/internal/jimple"
	"tabby/internal/parallel"
	"tabby/internal/pathfinder"
	"tabby/internal/profiling"
	"tabby/internal/searchindex"
	"tabby/internal/sinks"
	"tabby/internal/store"
	"tabby/internal/taint"
)

// Options configures an Engine.
type Options struct {
	// Sinks is the sink registry; nil means the default 38-sink set
	// (Table VII).
	Sinks *sinks.Registry
	// Sources recognizes deserialization entry points; the zero value
	// means the native-mechanism defaults.
	Sources sinks.SourceConfig
	// MaxDepth bounds chain length in methods (Algorithm 3); zero means
	// the pathfinder default (12).
	MaxDepth int
	// MaxChains caps reported chains; zero means the default.
	MaxChains int
	// VisitBudget caps search expansions; zero means the default.
	VisitBudget int
	// KeepPrunedCalls retains all-∞ CALL edges (MCG ablation mode).
	KeepPrunedCalls bool
	// TaintOptions tunes the controllability analysis. The old
	// MaxCallDepth field is gone (the SCC wave scheduler replaced the
	// depth-capped recursion and needs no bound); the CLIs still accept
	// and warn about the flag for compatibility.
	TaintOptions taint.Options
	// Workers bounds concurrency in every pipeline stage (compile,
	// controllability analysis, CPG assembly, path search). Zero selects
	// runtime.GOMAXPROCS(0); 1 runs the exact sequential path. Output is
	// identical at every setting.
	Workers int
	// SerializationDispatch enables the serialization-aware analysis
	// mode: the CPG gains a virtual deserialization driver wired by
	// DISPATCH edges to every hierarchy-derived JVM callback (readObject/
	// readResolve/readExternal of Serializable classes, and
	// InvocationHandler.invoke), and the path search accepts those
	// dispatch targets as chain entry points — so chains entering through
	// nested callbacks are found without hand-declared sources. Off by
	// default; with it off, output is byte-identical to a pipeline
	// without the pass.
	SerializationDispatch bool
}

// Engine runs the Tabby pipeline.
type Engine struct {
	opts Options
}

// New creates an engine. The zero Options value selects all defaults.
func New(opts Options) *Engine { return &Engine{opts: opts} }

// Timings records wall-clock per pipeline stage; the Table VIII and
// Table X experiments report these.
type Timings struct {
	Compile  time.Duration // semantic information extraction
	BuildCPG time.Duration // controllability analysis + graph assembly
	Search   time.Duration // gadget chain finding
	// Workers is the resolved worker count the run used, so per-stage
	// speedups can be attributed when comparing runs.
	Workers int
	// Cache reports per-layer reuse when the run went through
	// AnalyzeIncremental; nil on cold AnalyzeSources runs.
	Cache *CacheStats
}

// Report is the engine's output.
type Report struct {
	Graph     *cpg.Graph
	Chains    []pathfinder.Chain
	Truncated bool
	Timings   Timings
}

// AnalyzeSources compiles the archives and runs the full pipeline.
func (e *Engine) AnalyzeSources(archives []javasrc.ArchiveSource) (*Report, error) {
	start := time.Now()
	var prog *jimple.Program
	var err error
	profiling.Stage("compile", func() {
		prog, err = javasrc.CompileArchivesOpts(archives, javasrc.CompileOptions{Workers: e.opts.Workers})
	})
	if err != nil {
		return nil, fmt.Errorf("tabby: compile: %w", err)
	}
	compileTime := time.Since(start)
	rep, err := e.AnalyzeProgram(prog)
	if err != nil {
		return nil, err
	}
	rep.Timings.Compile = compileTime
	return rep, nil
}

// AnalyzeProgram builds the CPG for an already-extracted program and
// searches it for gadget chains.
func (e *Engine) AnalyzeProgram(prog *jimple.Program) (*Report, error) {
	g, buildTime, err := e.BuildCPG(prog)
	if err != nil {
		return nil, err
	}
	chains, truncated, searchTime, err := e.FindChains(g)
	if err != nil {
		return nil, err
	}
	return &Report{
		Graph:     g,
		Chains:    chains,
		Truncated: truncated,
		Timings: Timings{
			BuildCPG: buildTime,
			Search:   searchTime,
			Workers:  parallel.Resolve(e.opts.Workers),
		},
	}, nil
}

// BuildCPG runs extraction + controllability analysis + graph assembly,
// returning the graph and its build time.
func (e *Engine) BuildCPG(prog *jimple.Program) (*cpg.Graph, time.Duration, error) {
	start := time.Now()
	g, err := cpg.Build(prog, cpg.Options{
		Sinks:                 e.opts.Sinks,
		Sources:               e.opts.Sources,
		Taint:                 e.opts.TaintOptions,
		KeepPrunedCalls:       e.opts.KeepPrunedCalls,
		Workers:               e.opts.Workers,
		SerializationDispatch: e.opts.SerializationDispatch,
	})
	if err != nil {
		return nil, 0, fmt.Errorf("tabby: build cpg: %w", err)
	}
	// Warm the compiled search index while the graph is hot in cache, so
	// its one-time compilation cost lands in the build stage rather than
	// inside the first search's timing.
	profiling.Stage("cpg", func() { searchindex.For(g.DB) })
	return g, time.Since(start), nil
}

// FindChains runs the path finder over a built graph.
func (e *Engine) FindChains(g *cpg.Graph) (chains []pathfinder.Chain, truncated bool, elapsed time.Duration, err error) {
	start := time.Now()
	var res *pathfinder.Result
	profiling.Stage("search", func() {
		res, err = pathfinder.Find(g.DB, pathfinder.Options{
			MaxDepth:        e.opts.MaxDepth,
			MaxChains:       e.opts.MaxChains,
			VisitBudget:     e.opts.VisitBudget,
			DispatchSources: e.opts.SerializationDispatch,
			Workers:         e.opts.Workers,
		})
	})
	if err != nil {
		return nil, false, 0, fmt.Errorf("tabby: find chains: %w", err)
	}
	return res.Chains, res.Truncated, time.Since(start), nil
}

// SaveSnapshot persists a finished analysis to w in the versioned binary
// snapshot format of internal/store: the full graph, the sink/source
// registry state the engine used, and the analysis counters. The
// snapshot can be re-served later by LoadSnapshot, cmd/tabby-query
// -snapshot, or cmd/tabby-server without recompiling the corpus.
func (e *Engine) SaveSnapshot(w io.Writer, rep *Report, name, corpus string) error {
	snap, err := e.snapshotFor(rep, name, corpus)
	if err != nil {
		return err
	}
	return store.Write(w, snap)
}

// SaveSnapshotWithCache is SaveSnapshot plus the cache's exported method
// summaries in the snapshot's "sumc" section, so a service loading it can
// warm-start incremental re-analysis without recomputing any summary.
func (e *Engine) SaveSnapshotWithCache(w io.Writer, rep *Report, name, corpus string, cache *AnalysisCache) error {
	snap, err := e.snapshotFor(rep, name, corpus)
	if err != nil {
		return err
	}
	if cache != nil && cache.Summaries != nil {
		snap.Summaries = cache.Summaries.Export()
	}
	return store.Write(w, snap)
}

func (e *Engine) snapshotFor(rep *Report, name, corpus string) (*store.Snapshot, error) {
	if rep == nil || rep.Graph == nil {
		return nil, fmt.Errorf("tabby: save snapshot: nil report")
	}
	reg := e.opts.Sinks
	if reg == nil {
		reg = sinks.Default()
	}
	src := e.opts.Sources
	if len(src.MethodNames) == 0 {
		src = sinks.DefaultSources()
	}
	meta := store.Meta{Name: name, Corpus: corpus, Stats: rep.Graph.Stats}
	if rep.Graph.Taint != nil {
		meta.TotalCalls = rep.Graph.Taint.TotalCalls
		meta.PrunedCalls = rep.Graph.Taint.PrunedCalls
	}
	return &store.Snapshot{
		Meta:    meta,
		DB:      rep.Graph.DB,
		Sinks:   reg,
		Sources: src,
	}, nil
}

// LoadSnapshot reads a snapshot written by SaveSnapshot. The returned
// store is frozen (read-only) and safe for concurrent querying; run
// searches over it with FindChainsIn or queries with package cypher.
func LoadSnapshot(r io.Reader) (*store.Snapshot, error) {
	return store.Read(r)
}

// FindChainsIn runs the path finder against an arbitrary store —
// typically one loaded from a snapshot rather than freshly built. The
// engine's depth/chain/budget/worker options apply exactly as in
// FindChains, so a loaded snapshot yields byte-identical results.
func (e *Engine) FindChainsIn(db *graphdb.DB) (chains []pathfinder.Chain, truncated bool, err error) {
	var res *pathfinder.Result
	profiling.Stage("search", func() {
		res, err = pathfinder.Find(db, pathfinder.Options{
			MaxDepth:        e.opts.MaxDepth,
			MaxChains:       e.opts.MaxChains,
			VisitBudget:     e.opts.VisitBudget,
			DispatchSources: e.opts.SerializationDispatch,
			Workers:         e.opts.Workers,
		})
	})
	if err != nil {
		return nil, false, fmt.Errorf("tabby: find chains: %w", err)
	}
	return res.Chains, res.Truncated, nil
}

// FindChainsBetween searches from explicit sink nodes with a custom
// source filter — the researcher-driven RQ4 workflow.
func (e *Engine) FindChainsBetween(g *cpg.Graph, sinkNodes []graphdb.ID, sourceFilter func(*graphdb.DB, graphdb.ID) bool) ([]pathfinder.Chain, error) {
	res, err := pathfinder.Find(g.DB, pathfinder.Options{
		MaxDepth:        e.opts.MaxDepth,
		MaxChains:       e.opts.MaxChains,
		VisitBudget:     e.opts.VisitBudget,
		SinkNodes:       sinkNodes,
		SourceFilter:    sourceFilter,
		DispatchSources: e.opts.SerializationDispatch,
		Workers:         e.opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("tabby: find chains: %w", err)
	}
	return res.Chains, nil
}
