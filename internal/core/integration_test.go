package core

import (
	"bytes"
	"strings"
	"testing"

	"tabby/internal/corpus"
	"tabby/internal/cpg"
	"tabby/internal/cypher"
	"tabby/internal/graphdb"
	"tabby/internal/javasrc"
	"tabby/internal/pathfinder"
	"tabby/internal/sinks"
)

// TestPersistedGraphStillSearchable: build → save → load → search must
// find the same chains (the paper's store-once/query-many workflow).
func TestPersistedGraphStillSearchable(t *testing.T) {
	engine := New(Options{})
	rep, err := engine.AnalyzeSources([]javasrc.ArchiveSource{corpus.RT()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Graph.DB.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := graphdb.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pathfinder.Find(loaded, pathfinder.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chains) != len(rep.Chains) {
		t.Fatalf("chains after reload: %d, want %d", len(res.Chains), len(rep.Chains))
	}
	want := make(map[string]bool, len(rep.Chains))
	for _, c := range rep.Chains {
		want[c.Key()] = true
	}
	for _, c := range res.Chains {
		if !want[c.Key()] {
			t.Errorf("unexpected chain after reload: %s", c.Key())
		}
	}
}

// TestCypherOverBuiltCPG runs researcher-style queries over a real CPG.
func TestCypherOverBuiltCPG(t *testing.T) {
	engine := New(Options{})
	rep, err := engine.AnalyzeSources([]javasrc.ArchiveSource{corpus.RT()})
	if err != nil {
		t.Fatal(err)
	}
	db := rep.Graph.DB

	res, err := cypher.Run(db, `MATCH (m:Method {IS_SINK: true}) RETURN COUNT(*)`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].(int); n == 0 {
		t.Error("no sinks visible to cypher")
	}

	res, err = cypher.Run(db, `MATCH (c:Class {NAME: "java.util.HashMap"})-[:HAS]->(m:Method) RETURN m.METHOD_NAME`)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, row := range res.Rows {
		if s, ok := row[0].(string); ok {
			found[s] = true
		}
	}
	if !found["readObject"] || !found["hash"] {
		t.Errorf("HashMap methods via cypher = %v", found)
	}

	// The URLDNS backbone as a single variable-length query.
	res, err = cypher.Run(db, `MATCH (src:Method {IS_SOURCE: true})-[:CALL*1..3]->(h:Method {METHOD_NAME: "hashCode"}) RETURN src.NAME, h.NAME`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("variable-length query over CPG found nothing")
	}
}

// TestXStreamSourcesWidenDetection: with the XStream mechanism, a
// non-serializable class whose toString fires a sink becomes a chain head
// even without implementing Serializable.
func TestXStreamSourcesWidenDetection(t *testing.T) {
	src := javasrc.ArchiveSource{Name: "x.jar", Files: []javasrc.File{{Name: "x.java", Source: `
package x;
public class Renderer {
    public String template;
    public String toString() {
        java.lang.Process p = java.lang.Runtime.getRuntime().exec(this.template);
        return this.template;
    }
}
`}}}

	native := New(Options{})
	repNative, err := native.AnalyzeSources([]javasrc.ArchiveSource{corpus.RT(), src})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range repNative.Chains {
		if strings.HasPrefix(c.Names[0], "x.Renderer#toString") {
			t.Fatal("native mechanism must not treat toString as a source")
		}
	}

	xstream := New(Options{Sources: sinks.XStreamSources()})
	repX, err := xstream.AnalyzeSources([]javasrc.ArchiveSource{corpus.RT(), src})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range repX.Chains {
		if strings.HasPrefix(c.Names[0], "x.Renderer#toString") {
			found = true
		}
	}
	if !found {
		t.Fatal("XStream mechanism must accept the toString-rooted chain")
	}
}

// TestChainWellFormedness is a structural property check over every
// chain found in the runtime corpus: source first, sink last, and every
// consecutive pair connected by a CALL (callee→caller reversed) or ALIAS
// relationship in the graph.
func TestChainWellFormedness(t *testing.T) {
	engine := New(Options{})
	rep, err := engine.AnalyzeSources([]javasrc.ArchiveSource{corpus.RT()})
	if err != nil {
		t.Fatal(err)
	}
	db := rep.Graph.DB
	connected := func(a, b graphdb.ID) bool {
		// Forward CALL a→b, or ALIAS either way.
		for _, rid := range db.Rels(a, graphdb.DirOut, cpg.RelCall) {
			if db.Rel(rid).End == b {
				return true
			}
		}
		for _, rid := range db.Rels(a, graphdb.DirBoth, cpg.RelAlias) {
			if db.Rel(rid).Other(a) == b {
				return true
			}
		}
		return false
	}
	for _, c := range rep.Chains {
		if len(c.Nodes) < 2 {
			t.Fatalf("degenerate chain %v", c.Names)
		}
		if v, _ := db.NodeProp(c.Nodes[0], cpg.PropIsSource); v != true {
			t.Errorf("chain head not a source: %s", c.Names[0])
		}
		if v, _ := db.NodeProp(c.Nodes[len(c.Nodes)-1], cpg.PropIsSink); v != true {
			t.Errorf("chain tail not a sink: %s", c.Names[len(c.Names)-1])
		}
		for i := 0; i+1 < len(c.Nodes); i++ {
			if !connected(c.Nodes[i], c.Nodes[i+1]) {
				t.Errorf("chain gap between %s and %s", c.Names[i], c.Names[i+1])
			}
		}
		if len(c.TCs) != len(c.Nodes) {
			t.Errorf("TC trace length mismatch: %d vs %d", len(c.TCs), len(c.Nodes))
		}
	}
}
