package core

import (
	"fmt"
	"strings"
	"testing"

	"tabby/internal/corpus"
	"tabby/internal/cpg"
	"tabby/internal/graphdb"
	"tabby/internal/javasrc"
	"tabby/internal/pathfinder"
)

// chainsHaveFrom reports whether some chain starts at the given method
// key and ends in a method whose name contains sinkMethod.
func chainsHaveFrom(chains []pathfinder.Chain, source, sinkMethod string) bool {
	for _, c := range chains {
		if c.Names[0] == source && strings.Contains(c.Names[len(c.Names)-1], sinkMethod) {
			return true
		}
	}
	return false
}

// TestCallbackChainRecall pins the recall the serialization-dispatch pass
// exists to buy: the callback-only corpus chains (readResolve inherited
// from a non-Serializable base; InvocationHandler.invoke) are found with
// the pass on and invisible with it off.
func TestCallbackChainRecall(t *testing.T) {
	for _, comp := range corpus.CallbackComponents() {
		comp := comp
		t.Run(comp.Name, func(t *testing.T) {
			archives := append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...)
			on := runPipelineMode(t, archives, 1, true)
			off := runPipelineMode(t, archives, 1, false)
			for _, spec := range comp.Chains {
				src := string(spec.Source)
				if !chainsHaveFrom(on.Chains, src, spec.SinkMethod) {
					t.Errorf("gate-on: chain %s -> %s.%s not found; chains: %v",
						src, spec.SinkClass, spec.SinkMethod, chainHeads(on))
				}
				if chainsHaveFrom(off.Chains, src, spec.SinkMethod) {
					t.Errorf("gate-off: callback-only chain %s was found without the dispatch pass", src)
				}
			}
			// Chains never traverse DISPATCH edges themselves: every step
			// of every reported chain is CALL or ALIAS.
			for _, c := range on.Chains {
				if len(c.Edges) != len(c.Nodes)-1 {
					t.Fatalf("chain %v: %d edges for %d nodes", c.Names, len(c.Edges), len(c.Nodes))
				}
				for _, e := range c.Edges {
					if e != cpg.RelCall && e != cpg.RelAlias {
						t.Errorf("chain %v steps across %s edge", c.Names, e)
					}
				}
			}
		})
	}
}

func chainHeads(out pipelineOutput) []string {
	heads := make([]string, 0, len(out.Chains))
	for _, c := range out.Chains {
		heads = append(heads, c.Names[0])
	}
	return heads
}

// TestDispatchCoversDeclaredSources checks the subsumption contract of
// DESIGN.md §14: with the pass on, every method the source configuration
// declares an entry point (every IS_SOURCE node) also has an incoming
// DISPATCH edge from the virtual driver — the derived entry points
// reproduce the hand-declared ones. finalize-named sources would be the
// one admissible gap (a GC hook, not a stream callback), but the corpus
// declares none.
func TestDispatchCoversDeclaredSources(t *testing.T) {
	type scenario struct {
		name     string
		archives []javasrc.ArchiveSource
	}
	var scenarios []scenario
	comps := corpus.Components()
	if testing.Short() {
		comps = comps[:3]
	}
	for _, comp := range comps {
		scenarios = append(scenarios, scenario{
			name:     "component/" + comp.Name,
			archives: append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...),
		})
	}
	for _, comp := range corpus.CallbackComponents() {
		scenarios = append(scenarios, scenario{
			name:     "callback/" + comp.Name,
			archives: append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...),
		})
	}
	if !testing.Short() {
		spring, err := corpus.SceneByName("Spring")
		if err != nil {
			t.Fatal(err)
		}
		scenarios = append(scenarios, scenario{
			name:     "scene/" + spring.Name,
			archives: append([]javasrc.ArchiveSource{corpus.RT()}, spring.Archives...),
		})
	}

	engine := New(Options{Workers: 1, SerializationDispatch: true})
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			prog, err := javasrc.CompileArchives(sc.archives)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			g, _, err := engine.BuildCPG(prog)
			if err != nil {
				t.Fatal(err)
			}
			if g.DispatchEdges == 0 {
				t.Fatal("gate-on build synthesized no DISPATCH edges")
			}
			sources := g.SourceNodes()
			if len(sources) == 0 {
				t.Fatal("no IS_SOURCE nodes: subsumption check is vacuous")
			}
			for _, id := range sources {
				if len(g.DB.Rels(id, graphdb.DirIn, cpg.RelDispatch)) == 0 {
					key, _ := g.MethodKeyOf(id)
					t.Errorf("declared source %s has no incoming DISPATCH edge", key)
				}
			}
		})
	}
}

// TestDispatchGateOffParity: on ordinary corpus components every entry
// point is a directly-declared readObject, so the gate must not change
// what is found — chains are equal in both modes (the graph itself
// differs only by the driver node and its DISPATCH edges).
func TestDispatchGateOffParity(t *testing.T) {
	comps := corpus.Components()
	if testing.Short() {
		comps = comps[:2]
	} else {
		comps = comps[:6]
	}
	for _, comp := range comps {
		comp := comp
		t.Run(comp.Name, func(t *testing.T) {
			archives := append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...)
			off := runPipelineMode(t, archives, 1, false)
			on := runPipelineMode(t, archives, 1, true)
			if len(on.Chains) != len(off.Chains) {
				t.Fatalf("gate-on found %d chains, gate-off %d", len(on.Chains), len(off.Chains))
			}
			for i := range off.Chains {
				if off.Chains[i].Key() != on.Chains[i].Key() {
					t.Errorf("chain %d differs across gate modes:\n gate-on  %v\n gate-off %v",
						i, on.Chains[i].Names, off.Chains[i].Names)
				}
			}
		})
	}
}

// runIncrementalDispatch is runIncremental with the serialization gate
// on, using the dispatch-aware Stats rendering of runPipelineMode.
func runIncrementalDispatch(t *testing.T, cache *AnalysisCache, archives []javasrc.ArchiveSource) (pipelineOutput, *CacheStats) {
	t.Helper()
	engine := New(Options{Workers: 1, SerializationDispatch: true})
	rep, err := engine.AnalyzeIncremental(cache, archives)
	if err != nil {
		t.Fatalf("incremental: %v", err)
	}
	return pipelineOutput{
		Chains:      rep.Chains,
		Truncated:   rep.Truncated,
		Stats:       fmt.Sprintf("%+v dispatch=%d", rep.Graph.Stats, rep.Graph.DispatchEdges),
		TotalCalls:  rep.Graph.Taint.TotalCalls,
		PrunedCalls: rep.Graph.Taint.PrunedCalls,
	}, rep.Timings.Cache
}

// dispatchEditArchives renders the edit-sequence fixture: Base's
// readResolve relays into Runtime.exec; subDecl controls whether Sub is
// Serializable (deciding whether Base#readResolve is a derived entry
// point) and subBody lets a later edit add a readObject to Sub.
func dispatchEditArchives(subDecl, subBody string) []javasrc.ArchiveSource {
	src := `package cbinc;
public class Base {
    public String cmd;

    protected Object readResolve() {
        Relay.relay(this.cmd);
        return this.cmd;
    }
}

class Sub extends Base ` + subDecl + ` {
` + subBody + `}

class Relay {
    static void relay(String c) {
        java.lang.Process r = java.lang.Runtime.getRuntime().exec(c);
    }
}
`
	return []javasrc.ArchiveSource{corpus.RT(), {
		Name:  "cbinc.jar",
		Files: []javasrc.File{{Name: "cbinc/Base.java", Source: src}},
	}}
}

// TestIncrementalSerializationEdits drives AnalyzeIncremental (gate on)
// through edits that change the synthesized DISPATCH edges — a class
// gaining Serializable, then gaining a readObject — and requires each
// step byte-identical to a cold gate-on build of the same sources. The
// graph layer must rebuild (or decline its delta); it may never serve
// the previous run's dispatch edges.
func TestIncrementalSerializationEdits(t *testing.T) {
	v1 := dispatchEditArchives("", "    public int marker;\n")
	v2 := dispatchEditArchives("implements java.io.Serializable", "    public int marker;\n")
	v3 := dispatchEditArchives("implements java.io.Serializable",
		"    public int marker;\n\n    private void readObject(java.io.ObjectInputStream s) {\n        Relay.relay(this.cmd);\n    }\n")

	cache := NewAnalysisCache()

	cold1 := runPipelineMode(t, v1, 1, true)
	inc1, _ := runIncrementalDispatch(t, cache, v1)
	assertIdentical(t, "v1/cold-cache", cold1, inc1, 1)
	if chainsHaveFrom(inc1.Chains, "cbinc.Base#readResolve()", "exec") {
		t.Error("v1: chain found while Sub is not Serializable")
	}

	// Warm rerun: the gate-on delta path must still detect "unchanged".
	warm, stats := runIncrementalDispatch(t, cache, v1)
	assertIdentical(t, "v1/warm", cold1, warm, 1)
	if stats.GraphReuse != "unchanged" {
		t.Errorf("warm gate-on rerun GraphReuse = %q, want unchanged", stats.GraphReuse)
	}

	// Sub gains Serializable: same method set, new dispatch target. The
	// hierarchy fingerprint changes, so the graph is rebuilt.
	cold2 := runPipelineMode(t, v2, 1, true)
	inc2, stats := runIncrementalDispatch(t, cache, v2)
	assertIdentical(t, "v2/serializable-gained", cold2, inc2, 1)
	if stats.GraphReuse != "rebuilt" {
		t.Errorf("Serializable edit GraphReuse = %q, want rebuilt", stats.GraphReuse)
	}
	if !chainsHaveFrom(inc2.Chains, "cbinc.Base#readResolve()", "exec") {
		t.Errorf("v2: inherited-readResolve chain not found; heads: %v", chainHeads(inc2))
	}

	// Sub gains its own readObject: another dispatch target appears.
	cold3 := runPipelineMode(t, v3, 1, true)
	inc3, _ := runIncrementalDispatch(t, cache, v3)
	assertIdentical(t, "v3/readobject-gained", cold3, inc3, 1)
	if !chainsHaveFrom(inc3.Chains, "cbinc.Sub#readObject(java.io.ObjectInputStream)", "exec") {
		t.Errorf("v3: gained readObject chain not found; heads: %v", chainHeads(inc3))
	}

	// And back: losing the readObject must drop its chain again.
	cold4 := runPipelineMode(t, v2, 1, true)
	inc4, _ := runIncrementalDispatch(t, cache, v2)
	assertIdentical(t, "v4/readobject-lost", cold4, inc4, 1)
	if chainsHaveFrom(inc4.Chains, "cbinc.Sub#readObject(java.io.ObjectInputStream)", "exec") {
		t.Error("v4: stale chain from the removed readObject")
	}
}
