package core

import (
	"fmt"
	"testing"

	"tabby/internal/corpus"
	"tabby/internal/javasrc"
)

func runIncremental(t *testing.T, cache *AnalysisCache, archives []javasrc.ArchiveSource, workers int) (pipelineOutput, *CacheStats) {
	t.Helper()
	engine := New(Options{Workers: workers})
	rep, err := engine.AnalyzeIncremental(cache, archives)
	if err != nil {
		t.Fatalf("incremental workers=%d: %v", workers, err)
	}
	return pipelineOutput{
		Chains:      rep.Chains,
		Truncated:   rep.Truncated,
		Stats:       fmt.Sprintf("%+v dispatch=%d", rep.Graph.Stats, rep.Graph.DispatchEdges),
		TotalCalls:  rep.Graph.Taint.TotalCalls,
		PrunedCalls: rep.Graph.Taint.PrunedCalls,
	}, rep.Timings.Cache
}

// checkIncrementalScenario runs the full incremental contract for one
// corpus at one worker count: a cold-cache incremental run, a warm rerun,
// and a one-class-changed rerun must each be byte-identical to a fresh
// cacheless build of the same sources.
func checkIncrementalScenario(t *testing.T, name string, archives []javasrc.ArchiveSource, workers int) {
	t.Helper()
	cold := runPipeline(t, archives, workers)

	cache := NewAnalysisCache()
	first, stats := runIncremental(t, cache, archives, workers)
	assertIdentical(t, name+"/cold-cache", cold, first, workers)
	if stats == nil {
		t.Fatalf("%s: no cache stats on incremental run", name)
	}
	if stats.GraphReuse != "rebuilt" {
		t.Errorf("%s: first run GraphReuse = %q, want rebuilt", name, stats.GraphReuse)
	}

	warm, stats := runIncremental(t, cache, archives, workers)
	assertIdentical(t, name+"/warm", cold, warm, workers)
	if !stats.Compile.ProgramReused {
		t.Errorf("%s: warm run did not reuse the program", name)
	}
	if stats.Taint.ComponentHits != stats.Taint.Components {
		t.Errorf("%s: warm run reused %d/%d taint components",
			name, stats.Taint.ComponentHits, stats.Taint.Components)
	}
	if stats.GraphReuse != "unchanged" {
		t.Errorf("%s: warm run GraphReuse = %q, want unchanged", name, stats.GraphReuse)
	}

	mutated, ok := corpus.MutateOneClass(archives)
	if !ok {
		t.Fatalf("%s: no mutation point found", name)
	}
	coldMut := runPipeline(t, mutated, workers)
	incrMut, stats := runIncremental(t, cache, mutated, workers)
	assertIdentical(t, name+"/one-class-changed", coldMut, incrMut, workers)
	if stats.Compile.BodyHits == 0 {
		t.Errorf("%s: changed run re-lowered every file", name)
	}
	if stats.Taint.ComponentHits == 0 {
		t.Errorf("%s: changed run reused no taint components", name)
	}
}

// TestIncrementalEquivalenceQuick always runs: one component at the
// default worker count exercises the whole cold/warm/changed contract.
func TestIncrementalEquivalenceQuick(t *testing.T) {
	comps := corpus.Components()
	archives := append([]javasrc.ArchiveSource{corpus.RT()}, comps[0].Archives...)
	checkIncrementalScenario(t, "component/"+comps[0].Name, archives, 1)
}

// TestIncrementalEquivalence sweeps every Table IX component plus the
// Spring scene at workers 1, 2 and 4: incremental output (chains with
// node IDs, stats, truncation, pruning counters) must be byte-identical
// to a fresh cacheless build in the cold-cache, warm, and
// one-class-changed scenarios.
func TestIncrementalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus incremental sweep")
	}
	type scenario struct {
		name     string
		archives []javasrc.ArchiveSource
	}
	var scenarios []scenario
	for _, comp := range corpus.Components() {
		scenarios = append(scenarios, scenario{
			name:     "component/" + comp.Name,
			archives: append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...),
		})
	}
	spring, err := corpus.SceneByName("Spring")
	if err != nil {
		t.Fatal(err)
	}
	scenarios = append(scenarios, scenario{
		name:     "scene/" + spring.Name,
		archives: append([]javasrc.ArchiveSource{corpus.RT()}, spring.Archives...),
	})

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for _, workers := range []int{1, 2, 4} {
				checkIncrementalScenario(t, sc.name, sc.archives, workers)
			}
		})
	}
}
