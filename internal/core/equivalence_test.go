package core

import (
	"reflect"
	"testing"

	"tabby/internal/corpus"
	"tabby/internal/javasrc"
	"tabby/internal/pathfinder"
)

// TestIndexedEngineMatchesGenericOnCorpus pins the compiled-index engine
// (pathfinder.Find) to the generic property-store engine
// (pathfinder.FindGeneric) on every Table IX component plus the Spring
// scene: identical chains — node IDs, names, TCs, sink types — in
// identical order, and identical truncation, at workers 1 and 2. This is
// the tentpole safety net: the index may only change how fast the search
// runs, never what it finds.
func TestIndexedEngineMatchesGenericOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus equivalence sweep")
	}
	type scenario struct {
		name     string
		archives []javasrc.ArchiveSource
	}
	var scenarios []scenario
	for _, comp := range corpus.Components() {
		scenarios = append(scenarios, scenario{
			name:     "component/" + comp.Name,
			archives: append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...),
		})
	}
	spring, err := corpus.SceneByName("Spring")
	if err != nil {
		t.Fatal(err)
	}
	scenarios = append(scenarios, scenario{
		name:     "scene/" + spring.Name,
		archives: append([]javasrc.ArchiveSource{corpus.RT()}, spring.Archives...),
	})

	engine := New(Options{Workers: 1})
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			prog, err := javasrc.CompileArchivesOpts(sc.archives, javasrc.CompileOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			g, _, err := engine.BuildCPG(prog)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2} {
				opts := pathfinder.Options{Workers: workers}
				want, err := pathfinder.FindGeneric(g.DB, opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := pathfinder.Find(g.DB, opts)
				if err != nil {
					t.Fatal(err)
				}
				if got.Truncated != want.Truncated {
					t.Errorf("workers=%d: truncated=%v, generic=%v", workers, got.Truncated, want.Truncated)
				}
				if len(got.Chains) != len(want.Chains) {
					t.Fatalf("workers=%d: %d chains, generic found %d", workers, len(got.Chains), len(want.Chains))
				}
				for i := range want.Chains {
					if !reflect.DeepEqual(got.Chains[i], want.Chains[i]) {
						t.Errorf("workers=%d: chain %d differs\n indexed %+v\n generic %+v",
							workers, i, got.Chains[i], want.Chains[i])
					}
				}
			}
		})
	}
}
