package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tabby/internal/corpus"
	"tabby/internal/javasrc"
)

const coldGoldenPath = "testdata/cold_golden.txt"

// coldGoldenSignature renders the full-corpus cold pipeline output in a
// stable line-based form: per scenario, the graph statistics, the call
// counters, and every chain key. The golden file pins this against the
// seed (pre-fast-path) pipeline, so hot-loop rewrites cannot drift the
// analysis output even in ways the worker-count determinism sweep would
// not catch (that sweep only compares the new code against itself).
func coldGoldenSignature(t *testing.T) string {
	t.Helper()
	type scenario struct {
		name     string
		archives []javasrc.ArchiveSource
	}
	var scenarios []scenario
	for _, comp := range corpus.Components() {
		scenarios = append(scenarios, scenario{
			name:     "component/" + comp.Name,
			archives: append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...),
		})
	}
	spring, err := corpus.SceneByName("Spring")
	if err != nil {
		t.Fatal(err)
	}
	scenarios = append(scenarios, scenario{
		name:     "scene/" + spring.Name,
		archives: append([]javasrc.ArchiveSource{corpus.RT()}, spring.Archives...),
	})

	var sb strings.Builder
	for _, sc := range scenarios {
		engine := New(Options{Workers: 1})
		rep, err := engine.AnalyzeSources(sc.archives)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		fmt.Fprintf(&sb, "== %s\n", sc.name)
		fmt.Fprintf(&sb, "stats %+v\n", rep.Graph.Stats)
		fmt.Fprintf(&sb, "calls %d/%d\n", rep.Graph.Taint.TotalCalls, rep.Graph.Taint.PrunedCalls)
		for _, c := range rep.Chains {
			fmt.Fprintf(&sb, "chain %s\n", c.Key())
		}
	}
	return sb.String()
}

// TestColdVsSeedGolden compares a sequential cold run of the full corpus
// against the recorded seed output. Regenerate with
// TABBY_UPDATE_GOLDEN=1 go test ./internal/core -run TestColdVsSeedGolden
// — but only after establishing that an output change is intended, since
// the cold fast path promises byte-identical analysis results.
func TestColdVsSeedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus cold run")
	}
	got := coldGoldenSignature(t)
	if os.Getenv("TABBY_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(coldGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(coldGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", coldGoldenPath, len(got))
		return
	}
	want, err := os.ReadFile(coldGoldenPath)
	if err != nil {
		t.Fatalf("missing golden (%v); generate with TABBY_UPDATE_GOLDEN=1", err)
	}
	if got != string(want) {
		gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w string
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Fatalf("cold output diverged from seed golden at line %d:\n got %q\nwant %q", i+1, g, w)
			}
		}
		t.Fatal("cold output diverged from seed golden")
	}
}
