package core

import (
	"sort"
	"strings"

	"tabby/internal/java"
	"tabby/internal/pathfinder"
)

// BlacklistFromChains derives a deserialization blacklist from discovered
// gadget chains — the defensive workflow of §IV-E: "Security researchers
// … can use Tabby to find potential gadget chains in their projects and
// refine the blacklist with classes from the gadget chains."
//
// The returned classes are those whose methods participate in any chain,
// excluding the sink's declaring class (sinks are JDK/library API that a
// blacklist cannot remove) and java.lang.Object (blacklisting it would
// reject everything). Blocking any one class on a chain breaks that
// chain; the head classes (sources) are the cheapest to block.
func BlacklistFromChains(chains []pathfinder.Chain) []string {
	seen := make(map[string]bool)
	for _, c := range chains {
		for i, name := range c.Names {
			if i == len(c.Names)-1 {
				continue // sink frame
			}
			class := java.MethodKeyClass(java.MethodKey(name))
			if class == "" || class == java.ObjectClass {
				continue
			}
			seen[class] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// FilterChainsByBlacklist returns the chains that survive a blacklist —
// i.e. those touching none of the blocked classes. An empty result means
// the blacklist covers every discovered chain.
func FilterChainsByBlacklist(chains []pathfinder.Chain, blacklist []string) []pathfinder.Chain {
	blocked := make(map[string]bool, len(blacklist))
	for _, c := range blacklist {
		blocked[strings.TrimSpace(c)] = true
	}
	var out []pathfinder.Chain
	for _, chain := range chains {
		survives := true
		for _, name := range chain.Names {
			if blocked[java.MethodKeyClass(java.MethodKey(name))] {
				survives = false
				break
			}
		}
		if survives {
			out = append(out, chain)
		}
	}
	return out
}
