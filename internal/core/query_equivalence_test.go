package core

import (
	"reflect"
	"testing"

	"tabby/internal/corpus"
	"tabby/internal/cypher"
	"tabby/internal/javasrc"
)

// queryBattery exercises every plan shape over real CPGs: bitset scans,
// pushed column tests, propagation-worthy expansions, any-direction and
// untyped hops, multi-path joins, aggregates, DISTINCT, ORDER BY, LIMIT
// interplay, residual predicates, and the variable-length fallback.
var queryBattery = []string{
	`MATCH (m:Method) RETURN COUNT(*)`,
	`MATCH (c:Class) RETURN COUNT(*)`,
	`MATCH (m:Method {IS_SINK: true}) RETURN m.NAME, m.SINK_TYPE`,
	`MATCH (m:Method {IS_SOURCE: true}) RETURN m.NAME LIMIT 10`,
	`MATCH (m:Method) WHERE m.IS_SINK = true AND m.SINK_TYPE = "JDV" RETURN m.NAME`,
	`MATCH (m:Method) WHERE m.NAME CONTAINS "readObject" RETURN m.NAME ORDER BY m.NAME`,
	`MATCH (m:Method) WHERE m.NAME STARTS WITH "java.util" RETURN m.NAME LIMIT 25`,
	`MATCH (m:Method) WHERE m.NAME ENDS WITH "hashCode()" RETURN m`,
	`MATCH (a:Method)-[:CALL]->(b:Method) WHERE b.IS_SINK = true RETURN a.NAME, b.NAME`,
	`MATCH (a:Method)-[:CALL]->(b:Method)-[:CALL]->(c:Method) RETURN c.NAME, COUNT(a) ORDER BY COUNT(a) DESC LIMIT 5`,
	`MATCH (a)-[:ALIAS]-(b) RETURN a.NAME, b.NAME LIMIT 40`,
	`MATCH (c:Class)-[:HAS]->(m:Method) WHERE m.IS_SINK = true RETURN c.NAME, m.NAME`,
	`MATCH (c:Class)-[:EXTEND]->(p:Class) RETURN p.NAME, COUNT(c) ORDER BY COUNT(c) DESC LIMIT 10`,
	`MATCH (c:Class)-[]->(x) RETURN DISTINCT c.NAME LIMIT 30`,
	`MATCH (a:Method)<-[:CALL]-(b:Method) WHERE a.IS_SINK = true AND b.NAME CONTAINS "#" RETURN b.NAME, a.SINK_TYPE`,
	`MATCH (c:Class)-[:HAS]->(m), (m)-[:CALL]->(n) WHERE n.IS_SINK = true RETURN c.NAME, n.NAME LIMIT 15`,
	`MATCH (m:Method) WHERE m.IS_SOURCE = true OR m.IS_SINK = true RETURN COUNT(*)`,
	`MATCH (m:Method) WHERE NOT m.IS_SINK = true RETURN COUNT(*)`,
	`MATCH (m:Method) RETURN m.SINK_TYPE, COUNT(DISTINCT m)`,
	`MATCH (a:Method)-[:CALL*1..2]->(b:Method {IS_SINK: true}) RETURN b.NAME LIMIT 5`, // interpreter fallback
}

// TestQueryPlannerMatchesInterpreterOnCorpus pins the Cypher-lite plan
// runner to the tree-walking interpreter on every Table IX component
// plus the Spring scene, with CPGs built at workers 1 and 2: identical
// columns, rows, and rendered tables, byte for byte. The plan may only
// change how fast a query runs, never what it returns.
func TestQueryPlannerMatchesInterpreterOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus equivalence sweep")
	}
	type scenario struct {
		name     string
		archives []javasrc.ArchiveSource
	}
	var scenarios []scenario
	for _, comp := range corpus.Components() {
		scenarios = append(scenarios, scenario{
			name:     "component/" + comp.Name,
			archives: append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...),
		})
	}
	spring, err := corpus.SceneByName("Spring")
	if err != nil {
		t.Fatal(err)
	}
	scenarios = append(scenarios, scenario{
		name:     "scene/" + spring.Name,
		archives: append([]javasrc.ArchiveSource{corpus.RT()}, spring.Archives...),
	})

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for _, workers := range []int{1, 2} {
				engine := New(Options{Workers: workers})
				prog, err := javasrc.CompileArchivesOpts(sc.archives, javasrc.CompileOptions{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				g, _, err := engine.BuildCPG(prog)
				if err != nil {
					t.Fatal(err)
				}
				for _, query := range queryBattery {
					q, err := cypher.Parse(query)
					if err != nil {
						t.Fatalf("Parse(%q): %v", query, err)
					}
					want, werr := cypher.ExecuteGeneric(g.DB, q)
					p, perr := cypher.PlanQuery(g.DB, q)
					if perr != nil {
						// Declared fallback (variable-length pattern):
						// Execute must agree with the interpreter anyway.
						got, gerr := cypher.Execute(g.DB, q)
						if (werr == nil) != (gerr == nil) || !reflect.DeepEqual(want, got) {
							t.Errorf("workers=%d %q: fallback diverged", workers, query)
						}
						continue
					}
					got, gerr := p.Run()
					if (werr == nil) != (gerr == nil) {
						t.Errorf("workers=%d %q: interpreter err=%v plan err=%v", workers, query, werr, gerr)
						continue
					}
					if werr != nil {
						if werr.Error() != gerr.Error() {
							t.Errorf("workers=%d %q: error text %q vs %q", workers, query, werr, gerr)
						}
						continue
					}
					if !reflect.DeepEqual(want.Columns, got.Columns) || !reflect.DeepEqual(want.Rows, got.Rows) {
						t.Errorf("workers=%d %q: result mismatch\ninterpreter: %v\nplan:        %v",
							workers, query, want.Rows, got.Rows)
						continue
					}
					if want.Format() != got.Format() {
						t.Errorf("workers=%d %q: rendered tables differ", workers, query)
					}

					// The streaming cursor must replay the same rows for
					// streamable shapes.
					cur, cerr := cypher.RunAnyCursor(g.DB, query)
					if cerr != nil {
						if werr == nil {
							t.Errorf("workers=%d %q: cursor errored: %v", workers, query, cerr)
						}
						continue
					}
					var rows [][]any
					for {
						row, rerr := cur.Next()
						if rerr != nil {
							rows = nil
							if werr == nil {
								t.Errorf("workers=%d %q: cursor Next errored: %v", workers, query, rerr)
							}
							break
						}
						if row == nil {
							break
						}
						rows = append(rows, row)
					}
					if werr == nil && len(rows) != len(want.Rows) {
						t.Errorf("workers=%d %q: cursor drained %d rows, want %d", workers, query, len(rows), len(want.Rows))
					} else if werr == nil && len(rows) > 0 && !reflect.DeepEqual(rows, want.Rows) {
						t.Errorf("workers=%d %q: cursor rows differ", workers, query)
					}
				}
			}
		})
	}
}
