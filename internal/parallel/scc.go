package parallel

// SCCs condenses a directed graph of n nodes into strongly connected
// components using an iterative Tarjan walk (iterative so half-million-
// method call graphs cannot overflow the goroutine stack). Roots are
// visited in ascending node order and successor lists are walked in the
// order succs returns them, so the output is deterministic.
//
// comps holds each component's member nodes in ascending order; compOf
// maps a node to its component index. Components are emitted in Tarjan
// completion order, which is a reverse topological order of the
// condensation: every edge u→v between distinct components satisfies
// compOf[v] < compOf[u] — callees come before callers.
func SCCs(n int, succs func(int) []int) (comps [][]int, compOf []int) {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	compOf = make([]int, n)
	for i := range index {
		index[i] = unvisited
		compOf[i] = unvisited
	}
	stack := make([]int, 0, n)
	next := 0

	// Explicit DFS frame: node plus the cursor into its successor list.
	type frame struct {
		node int
		succ int
	}
	var frames []frame

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{node: root})
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			ss := succs(f.node)
			if f.succ < len(ss) {
				w := ss[f.succ]
				f.succ++
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			v := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := frames[len(frames)-1].node; low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] != index[v] {
				continue
			}
			// v is a component root: pop members off the Tarjan stack.
			comp := []int{}
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				compOf[w] = len(comps)
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			// Members pop in reverse discovery order; ascending node
			// order keeps downstream scheduling deterministic.
			sortInts(comp)
			comps = append(comps, comp)
		}
	}
	return comps, compOf
}

// Waves groups the condensation into dependency levels: a component lands
// in the first wave after every component it points to (its callees).
// Components inside one wave share no path in either direction, so a
// scheduler may run them concurrently; running waves in ascending order
// guarantees all dependencies of a component are complete before it
// starts. Component order inside each wave is ascending, so wave
// contents are deterministic.
func Waves(comps [][]int, compOf []int, succs func(int) []int) [][]int {
	level := make([]int, len(comps))
	maxLevel := 0
	// comps is reverse-topological: successors of comps[c] live in
	// components with index < c, whose levels are already final.
	for c := range comps {
		lv := 0
		for _, node := range comps[c] {
			for _, s := range succs(node) {
				sc := compOf[s]
				if sc == c {
					continue
				}
				if level[sc]+1 > lv {
					lv = level[sc] + 1
				}
			}
		}
		level[c] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	waves := make([][]int, maxLevel+1)
	for c := range comps {
		waves[level[c]] = append(waves[level[c]], c)
	}
	return waves
}

// sortInts is an insertion sort: component member lists are tiny (almost
// always size 1), so this beats pulling in sort for the common case.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
