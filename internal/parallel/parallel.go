// Package parallel is the pipeline's scheduling layer: a bounded worker
// pool with deterministic result merging, plus the SCC condensation and
// wave scheduling (scc.go) that lets the controllability analysis run its
// per-method fixpoints bottom-up over the call graph.
//
// Every helper obeys the same determinism contract: the *values* produced
// are identical for every worker count, because results are merged by
// input index, never by completion order. Workers <= 1 degenerates to a
// plain loop on the calling goroutine — the exact sequential path.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a worker-count knob: n >= 1 is used as-is; zero and
// negative values select runtime.GOMAXPROCS(0), the hardware default.
func Resolve(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n), on at most workers
// goroutines. Indices are handed out in ascending order through a shared
// atomic cursor, so the pool stays busy regardless of per-item skew.
// With workers <= 1 (after Resolve) the calls run in index order on the
// calling goroutine.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map applies fn to every item and returns the results in input order.
func Map[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	ForEach(workers, len(items), func(i int) { out[i] = fn(i, items[i]) })
	return out
}

// MapErr is Map for fallible functions. Every item is processed (no
// short-circuit), and the error of the lowest-indexed failing item is
// returned — the same error a sequential left-to-right loop would have
// surfaced first, at every worker count.
func MapErr[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	errs := make([]error, len(items))
	ForEach(workers, len(items), func(i int) { out[i], errs[i] = fn(i, items[i]) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
