package parallel

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Errorf("Resolve(3) = %d", got)
	}
	if got := Resolve(0); got < 1 {
		t.Errorf("Resolve(0) = %d, want >= 1", got)
	}
	if got := Resolve(-2); got < 1 {
		t.Errorf("Resolve(-2) = %d, want >= 1", got)
	}
}

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var hits [100]atomic.Int32
		ForEach(workers, len(hits), func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, got)
			}
		}
	}
}

func TestMapPreservesIndexOrder(t *testing.T) {
	items := make([]int, 50)
	for i := range items {
		items[i] = i * 3
	}
	want := Map(1, items, func(i, v int) string { return fmt.Sprintf("%d:%d", i, v) })
	for _, workers := range []int{2, 4, 16} {
		got := Map(workers, items, func(i, v int) string { return fmt.Sprintf("%d:%d", i, v) })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from sequential", workers)
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	fn := func(_ int, v int) (int, error) {
		if v%3 == 1 { // fails at indices 1, 4, 7
			return 0, fmt.Errorf("boom at %d", v)
		}
		return v * 2, nil
	}
	for _, workers := range []int{1, 2, 8} {
		_, err := MapErr(workers, items, fn)
		if err == nil || err.Error() != "boom at 1" {
			t.Fatalf("workers=%d: err = %v, want boom at 1", workers, err)
		}
	}
	// No failures → full results.
	out, err := MapErr(4, []int{2, 3, 5}, func(_ int, v int) (int, error) { return v + 1, nil })
	if err != nil || !reflect.DeepEqual(out, []int{3, 4, 6}) {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapErrProcessesAllItems(t *testing.T) {
	var count atomic.Int32
	_, err := MapErr(4, make([]int, 40), func(i int, _ int) (int, error) {
		count.Add(1)
		if i == 0 {
			return 0, errors.New("first")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := count.Load(); got != 40 {
		t.Fatalf("processed %d items, want 40 (no short-circuit)", got)
	}
}

// graph builds a succs function from an adjacency list.
func graph(adj [][]int) func(int) []int {
	return func(i int) []int { return adj[i] }
}

func TestSCCsChainAndCycle(t *testing.T) {
	// 0 → 1 → 2, and 3 ⇄ 4 with 2 → 3.
	adj := [][]int{{1}, {2}, {3}, {4}, {3}}
	comps, compOf := SCCs(5, graph(adj))
	if len(comps) != 4 {
		t.Fatalf("got %d comps: %v", len(comps), comps)
	}
	// {3,4} is one component.
	if compOf[3] != compOf[4] {
		t.Errorf("3 and 4 in different comps: %v", compOf)
	}
	if !reflect.DeepEqual(comps[compOf[3]], []int{3, 4}) {
		t.Errorf("cycle comp = %v", comps[compOf[3]])
	}
	// Reverse topological: every edge u→v across comps has compOf[v] < compOf[u].
	for u, ss := range adj {
		for _, v := range ss {
			if compOf[u] != compOf[v] && compOf[v] >= compOf[u] {
				t.Errorf("edge %d→%d not reverse-topological: comp %d vs %d",
					u, v, compOf[u], compOf[v])
			}
		}
	}
}

func TestSCCsDeterministic(t *testing.T) {
	adj := [][]int{{1, 2}, {0}, {3}, {2, 4}, {}, {0, 4}}
	c1, o1 := SCCs(6, graph(adj))
	c2, o2 := SCCs(6, graph(adj))
	if !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(o1, o2) {
		t.Fatal("SCCs not deterministic")
	}
}

func TestWavesLevels(t *testing.T) {
	// Diamond: 0 → {1, 2} → 3 (3 is the shared callee).
	adj := [][]int{{1, 2}, {3}, {3}, {}}
	comps, compOf := SCCs(4, graph(adj))
	waves := Waves(comps, compOf, graph(adj))
	if len(waves) != 3 {
		t.Fatalf("got %d waves", len(waves))
	}
	nodeWave := make(map[int]int)
	for w, cs := range waves {
		for _, c := range cs {
			for _, n := range comps[c] {
				nodeWave[n] = w
			}
		}
	}
	// Callee 3 first, then 1 and 2 together, then 0.
	if nodeWave[3] != 0 || nodeWave[1] != 1 || nodeWave[2] != 1 || nodeWave[0] != 2 {
		t.Errorf("wave assignment %v", nodeWave)
	}
}

func TestWavesRespectDependencies(t *testing.T) {
	// Random-ish DAG with a cycle folded in.
	adj := [][]int{{1}, {2, 3}, {4}, {4}, {5, 1}, {}, {0}}
	comps, compOf := SCCs(7, graph(adj))
	waves := Waves(comps, compOf, graph(adj))
	level := make([]int, len(comps))
	for w, cs := range waves {
		for _, c := range cs {
			level[c] = w
		}
	}
	for u, ss := range adj {
		for _, v := range ss {
			cu, cv := compOf[u], compOf[v]
			if cu != cv && level[cv] >= level[cu] {
				t.Errorf("callee comp of %d→%d scheduled at level %d, caller at %d",
					u, v, level[cv], level[cu])
			}
		}
	}
}
