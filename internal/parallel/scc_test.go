package parallel

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomCondensation builds a graph with a known SCC partition: a seeded
// random DAG over m "super-nodes", each expanded into a cycle of 1–3
// concrete nodes. Returns the adjacency lists and the expected component
// membership (node → super-node).
func randomCondensation(seed int64, m int) (succs [][]int, want []int, n int) {
	rng := rand.New(rand.NewSource(seed))
	sizes := make([]int, m)
	for k := range sizes {
		sizes[k] = 1 + rng.Intn(3)
		n += sizes[k]
	}
	// Scatter concrete node IDs so component members are not contiguous —
	// the member-sorting and compOf bookkeeping must not depend on layout.
	perm := rng.Perm(n)
	members := make([][]int, m)
	next := 0
	want = make([]int, n)
	for k := range members {
		for i := 0; i < sizes[k]; i++ {
			node := perm[next]
			next++
			members[k] = append(members[k], node)
			want[node] = k
		}
	}
	succs = make([][]int, n)
	for k, ms := range members {
		// Intra-component cycle makes the members one SCC.
		if len(ms) > 1 {
			for i, u := range ms {
				succs[u] = append(succs[u], ms[(i+1)%len(ms)])
			}
		}
		// Random DAG edges: super-node k points only at earlier super-nodes,
		// so the condensation is acyclic by construction.
		for j := 0; j < k; j++ {
			if rng.Intn(3) != 0 {
				continue
			}
			u := ms[rng.Intn(len(ms))]
			v := members[j][rng.Intn(len(members[j]))]
			succs[u] = append(succs[u], v)
		}
	}
	return succs, want, n
}

// TestSCCsSeededDAGCorpus checks the properties the incremental
// invalidation walk depends on, over a corpus of seeded random graphs:
// the recovered partition matches the constructed one, members are
// ascending, component order is reverse-topological, and repeated runs
// are bit-identical.
func TestSCCsSeededDAGCorpus(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		for _, m := range []int{1, 7, 40} {
			succs, want, n := randomCondensation(seed*31+int64(m), m)
			succ := func(i int) []int { return succs[i] }
			comps, compOf := SCCs(n, succ)

			// Partition: every node in exactly one component, matching the
			// constructed membership (same super-node ⇔ same component).
			seen := 0
			for c, comp := range comps {
				for i, node := range comp {
					seen++
					if compOf[node] != c {
						t.Fatalf("seed=%d m=%d: compOf[%d]=%d, listed in comp %d", seed, m, node, compOf[node], c)
					}
					if i > 0 && comp[i-1] >= node {
						t.Fatalf("seed=%d m=%d: comp %d members not ascending: %v", seed, m, c, comp)
					}
					if want[node] != want[comp[0]] {
						t.Fatalf("seed=%d m=%d: nodes %d and %d merged across super-nodes", seed, m, node, comp[0])
					}
				}
			}
			if seen != n || len(comps) != m {
				t.Fatalf("seed=%d m=%d: got %d comps over %d nodes, want %d over %d", seed, m, len(comps), seen, m, n)
			}

			// Reverse topological order: every cross-component edge points
			// at an already-emitted component (callees before callers).
			for u := 0; u < n; u++ {
				for _, v := range succs[u] {
					if compOf[u] != compOf[v] && compOf[v] >= compOf[u] {
						t.Fatalf("seed=%d m=%d: edge %d→%d violates reverse-topo order (comp %d → %d)",
							seed, m, u, v, compOf[u], compOf[v])
					}
				}
			}

			// Waves: each component lands strictly after everything it
			// points to, with ascending contents inside a wave.
			waves := Waves(comps, compOf, succ)
			waveOf := make([]int, len(comps))
			for w, cs := range waves {
				for i, c := range cs {
					waveOf[c] = w
					if i > 0 && cs[i-1] >= c {
						t.Fatalf("seed=%d m=%d: wave %d not ascending: %v", seed, m, w, cs)
					}
				}
			}
			for u := 0; u < n; u++ {
				for _, v := range succs[u] {
					if compOf[u] != compOf[v] && waveOf[compOf[v]] >= waveOf[compOf[u]] {
						t.Fatalf("seed=%d m=%d: comp %d (wave %d) depends on comp %d (wave %d)",
							seed, m, compOf[u], waveOf[compOf[u]], compOf[v], waveOf[compOf[v]])
					}
				}
			}

			// Determinism: a second run over the same graph is identical.
			comps2, compOf2 := SCCs(n, succ)
			if !reflect.DeepEqual(comps, comps2) || !reflect.DeepEqual(compOf, compOf2) {
				t.Fatalf("seed=%d m=%d: repeated SCCs runs differ", seed, m)
			}
		}
	}
}
