package jimple

import (
	"fmt"
	"strings"

	"tabby/internal/java"
)

// Body is a method body: identity statements binding this/params, then the
// statement list. Statement indexes are the branch-target space.
type Body struct {
	Method *java.Method
	This   *Local   // nil for static methods
	Params []*Local // one local per formal parameter
	Locals []*Local // all locals including This/Params/temps
	Stmts  []Stmt
}

// NewBody creates an empty body for the method, materializing the
// identity statements for this and the parameters.
func NewBody(m *java.Method) *Body {
	b := &Body{Method: m}
	if !m.IsStatic() {
		b.This = NewLocal("this", java.ClassType(m.ClassName))
		b.Locals = append(b.Locals, b.This)
		b.Stmts = append(b.Stmts, &IdentityStmt{Local: b.This, RHS: &ThisRef{Typ: b.This.Typ}})
	}
	for i, p := range m.Params {
		l := NewLocal(fmt.Sprintf("p%d", i), p)
		b.Params = append(b.Params, l)
		b.Locals = append(b.Locals, l)
		b.Stmts = append(b.Stmts, &IdentityStmt{Local: l, RHS: &ParamRef{Index: i, Typ: p}})
	}
	return b
}

// AddLocal registers a fresh local in the body.
func (b *Body) AddLocal(l *Local) *Local {
	b.Locals = append(b.Locals, l)
	return l
}

// Append adds a statement and returns its index.
func (b *Body) Append(s Stmt) int {
	b.Stmts = append(b.Stmts, s)
	return len(b.Stmts) - 1
}

// Invokes returns every InvokeExpr in the body paired with its statement
// index — the raw material of the Method Call Graph (§III-B2).
func (b *Body) Invokes() []IndexedInvoke {
	var out []IndexedInvoke
	for i, s := range b.Stmts {
		switch st := s.(type) {
		case *InvokeStmt:
			out = append(out, IndexedInvoke{Index: i, Expr: st.Invoke})
		case *AssignStmt:
			if inv, ok := st.RHS.(*InvokeExpr); ok {
				out = append(out, IndexedInvoke{Index: i, Expr: inv})
			}
		}
	}
	return out
}

// IndexedInvoke pairs an invocation with the statement index holding it.
type IndexedInvoke struct {
	Index int
	Expr  *InvokeExpr
}

// Validate checks structural invariants: branch targets in range, identity
// statements only at the head, locals registered.
func (b *Body) Validate() error {
	n := len(b.Stmts)
	checkTarget := func(t int, what string) error {
		if t < 0 || t >= n {
			return fmt.Errorf("method %s: %s target %d out of range [0,%d)", b.Method.Key(), what, t, n)
		}
		return nil
	}
	inHeader := true
	for i, s := range b.Stmts {
		switch st := s.(type) {
		case *IdentityStmt:
			if !inHeader {
				return fmt.Errorf("method %s: identity statement at %d after body start", b.Method.Key(), i)
			}
		case *IfStmt:
			inHeader = false
			if err := checkTarget(st.Target, "if"); err != nil {
				return err
			}
		case *GotoStmt:
			inHeader = false
			if err := checkTarget(st.Target, "goto"); err != nil {
				return err
			}
		case *SwitchStmt:
			inHeader = false
			for _, t := range st.Targets {
				if err := checkTarget(t, "switch"); err != nil {
					return err
				}
			}
			if err := checkTarget(st.Default, "switch default"); err != nil {
				return err
			}
		default:
			inHeader = false
		}
	}
	return nil
}

// String renders the body in a Jimple-like textual form.
func (b *Body) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s {\n", b.Method.Key())
	for i, s := range b.Stmts {
		fmt.Fprintf(&sb, "  %3d: %s\n", i, s.String())
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Program is the complete analyzed universe: the class hierarchy, one body
// per concrete method, and the archives the classes came from. It is the
// output of the frontend (package javasrc or the synthetic generators) and
// the input to every analysis.
type Program struct {
	Hierarchy *java.Hierarchy
	Bodies    map[java.MethodKey]*Body
	Archives  []java.Archive
}

// NewProgram wraps a hierarchy with an empty body table.
func NewProgram(h *java.Hierarchy) *Program {
	return &Program{Hierarchy: h, Bodies: make(map[java.MethodKey]*Body)}
}

// Body returns the body for the method key, or nil for abstract/native or
// unknown methods.
func (p *Program) Body(key java.MethodKey) *Body { return p.Bodies[key] }

// SetBody registers a body under its method's key.
func (p *Program) SetBody(b *Body) {
	p.Bodies[b.Method.Key()] = b
}

// Validate validates every body in the program.
func (p *Program) Validate() error {
	for key, b := range p.Bodies {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("program body %s: %w", key, err)
		}
	}
	return nil
}

// NumMethods counts all declared methods (with or without bodies).
func (p *Program) NumMethods() int {
	n := 0
	for _, name := range p.Hierarchy.SortedClassNames() {
		n += len(p.Hierarchy.Class(name).Methods)
	}
	return n
}
