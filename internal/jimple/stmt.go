package jimple

import (
	"fmt"
	"strconv"
	"strings"
)

// Stmt is a single three-address statement. Branch targets are statement
// indexes within the owning Body.
type Stmt interface {
	fmt.Stringer
	stmt() // marker
}

// AssignStmt is `LHS = RHS`. LHS is a *Local, *FieldRef or *ArrayRef;
// RHS is any Value including InvokeExpr (the "method call assignment" row
// of Table IV).
type AssignStmt struct {
	LHS Value
	RHS Value
}

func (s *AssignStmt) stmt() {}

// String implements fmt.Stringer.
func (s *AssignStmt) String() string { return s.LHS.String() + " = " + s.RHS.String() }

// IdentityStmt binds a local to @this or @parameterN at method entry.
type IdentityStmt struct {
	Local *Local
	RHS   Value // *ThisRef or *ParamRef
}

func (s *IdentityStmt) stmt() {}

// String implements fmt.Stringer.
func (s *IdentityStmt) String() string { return s.Local.Name + " := " + s.RHS.String() }

// InvokeStmt is a bare method call whose result (if any) is discarded —
// the "method call" row of Table IV.
type InvokeStmt struct {
	Invoke *InvokeExpr
}

func (s *InvokeStmt) stmt() {}

// String implements fmt.Stringer.
func (s *InvokeStmt) String() string { return s.Invoke.String() }

// ReturnStmt returns Op, or nothing when Op is nil (void return).
type ReturnStmt struct {
	Op Value // nil for `return;`
}

func (s *ReturnStmt) stmt() {}

// String implements fmt.Stringer.
func (s *ReturnStmt) String() string {
	if s.Op == nil {
		return "return"
	}
	return "return " + s.Op.String()
}

// IfStmt branches to Target when Cond is true; falls through otherwise.
type IfStmt struct {
	Cond   Value
	Target int
}

func (s *IfStmt) stmt() {}

// String implements fmt.Stringer.
func (s *IfStmt) String() string {
	return "if " + s.Cond.String() + " goto " + strconv.Itoa(s.Target)
}

// GotoStmt is an unconditional jump.
type GotoStmt struct {
	Target int
}

func (s *GotoStmt) stmt() {}

// String implements fmt.Stringer.
func (s *GotoStmt) String() string { return "goto " + strconv.Itoa(s.Target) }

// SwitchStmt is a table switch over Key.
type SwitchStmt struct {
	Key     Value
	Targets []int
	Default int
}

func (s *SwitchStmt) stmt() {}

// String implements fmt.Stringer.
func (s *SwitchStmt) String() string {
	parts := make([]string, 0, len(s.Targets)+1)
	for _, t := range s.Targets {
		parts = append(parts, strconv.Itoa(t))
	}
	return "switch " + s.Key.String() + " [" + strings.Join(parts, ",") +
		"] default " + strconv.Itoa(s.Default)
}

// ThrowStmt throws Op.
type ThrowStmt struct {
	Op Value
}

func (s *ThrowStmt) stmt() {}

// String implements fmt.Stringer.
func (s *ThrowStmt) String() string { return "throw " + s.Op.String() }

// NopStmt does nothing; kept so branch targets stay stable after the
// frontend folds constructs away.
type NopStmt struct{}

func (s *NopStmt) stmt() {}

// String implements fmt.Stringer.
func (s *NopStmt) String() string { return "nop" }

// Compile-time interface conformance checks.
var (
	_ Stmt = (*AssignStmt)(nil)
	_ Stmt = (*IdentityStmt)(nil)
	_ Stmt = (*InvokeStmt)(nil)
	_ Stmt = (*ReturnStmt)(nil)
	_ Stmt = (*IfStmt)(nil)
	_ Stmt = (*GotoStmt)(nil)
	_ Stmt = (*SwitchStmt)(nil)
	_ Stmt = (*ThrowStmt)(nil)
	_ Stmt = (*NopStmt)(nil)
)
