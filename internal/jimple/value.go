// Package jimple defines the three-address intermediate representation the
// analysis runs on. It mirrors Soot's Jimple at the granularity the paper
// needs: every statement form of Table IV (§III-C) is representable, and
// nothing finer is.
//
// Method bodies are stored per method key in a Program, next to the class
// Hierarchy, so the class model (package java) stays IR-free.
package jimple

import (
	"fmt"
	"strconv"
	"strings"

	"tabby/internal/java"
)

// Value is any expression operand: locals, constants, references and the
// composite expressions the frontend produces.
type Value interface {
	fmt.Stringer
	// Type returns the static type of the value.
	Type() java.Type
	value() // marker
}

// Local is a method-local variable (including compiler temporaries).
type Local struct {
	Name string
	Typ  java.Type
}

// NewLocal constructs a local with the given name and type.
func NewLocal(name string, typ java.Type) *Local { return &Local{Name: name, Typ: typ} }

// Type implements Value.
func (l *Local) Type() java.Type { return l.Typ }
func (l *Local) value()          {}

// String implements fmt.Stringer.
func (l *Local) String() string { return l.Name }

// ThisRef is the receiver reference inside an instance method.
type ThisRef struct{ Typ java.Type }

// Type implements Value.
func (r *ThisRef) Type() java.Type { return r.Typ }
func (r *ThisRef) value()          {}

// String implements fmt.Stringer.
func (r *ThisRef) String() string { return "@this" }

// ParamRef is the i-th formal parameter reference (0-based).
type ParamRef struct {
	Index int
	Typ   java.Type
}

// Type implements Value.
func (r *ParamRef) Type() java.Type { return r.Typ }
func (r *ParamRef) value()          {}

// String implements fmt.Stringer.
func (r *ParamRef) String() string { return "@parameter" + strconv.Itoa(r.Index) }

// IntConst is an integer (or boolean/char) literal.
type IntConst struct{ Val int64 }

// Type implements Value.
func (c *IntConst) Type() java.Type { return java.Int }
func (c *IntConst) value()          {}

// String implements fmt.Stringer.
func (c *IntConst) String() string { return strconv.FormatInt(c.Val, 10) }

// StrConst is a string literal.
type StrConst struct{ Val string }

// Type implements Value.
func (c *StrConst) Type() java.Type { return java.StringType }
func (c *StrConst) value()          {}

// String implements fmt.Stringer.
func (c *StrConst) String() string { return strconv.Quote(c.Val) }

// NullConst is the null literal.
type NullConst struct{}

// Type implements Value.
func (c *NullConst) Type() java.Type { return java.ObjectType }
func (c *NullConst) value()          {}

// String implements fmt.Stringer.
func (c *NullConst) String() string { return "null" }

// ClassConst is a class literal (T.class), used by reflection patterns.
type ClassConst struct{ ClassName string }

// Type implements Value.
func (c *ClassConst) Type() java.Type { return java.ClassType("java.lang.Class") }
func (c *ClassConst) value()          {}

// String implements fmt.Stringer.
func (c *ClassConst) String() string { return c.ClassName + ".class" }

// FieldRef is an instance-field access base.field. Base is nil for static
// fields (then Class carries the declaring class).
type FieldRef struct {
	Base  *Local // nil for static field refs
	Class string // declaring (or referenced-through) class
	Field string
	Typ   java.Type
}

// IsStatic reports whether the reference is a static field access.
func (r *FieldRef) IsStatic() bool { return r.Base == nil }

// Type implements Value.
func (r *FieldRef) Type() java.Type { return r.Typ }
func (r *FieldRef) value()          {}

// String implements fmt.Stringer.
func (r *FieldRef) String() string {
	if r.IsStatic() {
		return r.Class + "." + r.Field
	}
	return r.Base.Name + ".<" + r.Class + ": " + r.Field + ">"
}

// ArrayRef is an array element access base[index].
type ArrayRef struct {
	Base  *Local
	Index Value
}

// Type implements Value.
func (r *ArrayRef) Type() java.Type {
	if t := r.Base.Type(); t.Kind == java.KindArray {
		return *t.Elem
	}
	return java.ObjectType
}
func (r *ArrayRef) value() {}

// String implements fmt.Stringer.
func (r *ArrayRef) String() string { return r.Base.Name + "[" + r.Index.String() + "]" }

// CastExpr is a checked cast (T) op.
type CastExpr struct {
	Typ java.Type
	Op  Value
}

// Type implements Value.
func (e *CastExpr) Type() java.Type { return e.Typ }
func (e *CastExpr) value()          {}

// String implements fmt.Stringer.
func (e *CastExpr) String() string { return "(" + e.Typ.String() + ") " + e.Op.String() }

// NewExpr is an object allocation `new T`. Constructor invocation is a
// separate InvokeStmt (special invoke of <init>), as in Jimple.
type NewExpr struct{ Typ java.Type }

// Type implements Value.
func (e *NewExpr) Type() java.Type { return e.Typ }
func (e *NewExpr) value()          {}

// String implements fmt.Stringer.
func (e *NewExpr) String() string { return "new " + e.Typ.String() }

// NewArrayExpr is an array allocation `new T[size]`.
type NewArrayExpr struct {
	Elem java.Type
	Size Value
}

// Type implements Value.
func (e *NewArrayExpr) Type() java.Type { return java.ArrayOf(e.Elem) }
func (e *NewArrayExpr) value()          {}

// String implements fmt.Stringer.
func (e *NewArrayExpr) String() string {
	return "new " + e.Elem.String() + "[" + e.Size.String() + "]"
}

// BinOp enumerates the binary operators the frontend preserves. Only their
// arity matters to the controllability analysis; results of binary
// arithmetic/comparison are primitive and therefore uncontrollable.
type BinOp string

// Supported binary operators.
const (
	OpAdd BinOp = "+"
	OpSub BinOp = "-"
	OpMul BinOp = "*"
	OpDiv BinOp = "/"
	OpEq  BinOp = "=="
	OpNe  BinOp = "!="
	OpLt  BinOp = "<"
	OpLe  BinOp = "<="
	OpGt  BinOp = ">"
	OpGe  BinOp = ">="
	OpAnd BinOp = "&&"
	OpOr  BinOp = "||"
)

// BinopExpr is a binary expression.
type BinopExpr struct {
	Op   BinOp
	L, R Value
}

// Type implements Value. Comparison/logic operators yield boolean;
// arithmetic yields the left operand's type.
func (e *BinopExpr) Type() java.Type {
	switch e.Op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr:
		return java.Boolean
	case OpAdd:
		// Java's + is string concatenation when either side is a String.
		if e.L.Type().Equal(java.StringType) || e.R.Type().Equal(java.StringType) {
			return java.StringType
		}
		return e.L.Type()
	default:
		return e.L.Type()
	}
}
func (e *BinopExpr) value() {}

// String implements fmt.Stringer.
func (e *BinopExpr) String() string {
	return e.L.String() + " " + string(e.Op) + " " + e.R.String()
}

// InstanceOfExpr is `op instanceof T`.
type InstanceOfExpr struct {
	Op    Value
	Check java.Type
}

// Type implements Value.
func (e *InstanceOfExpr) Type() java.Type { return java.Boolean }
func (e *InstanceOfExpr) value()          {}

// String implements fmt.Stringer.
func (e *InstanceOfExpr) String() string {
	return e.Op.String() + " instanceof " + e.Check.String()
}

// InvokeKind distinguishes the JVM invocation flavors.
type InvokeKind int

// Invocation kinds. KindDynamic models invokedynamic/reflective dispatch,
// which the paper's approach deliberately cannot see through (§V-B).
const (
	InvokeStatic InvokeKind = iota + 1
	InvokeVirtual
	InvokeSpecial // constructors, private and super calls
	InvokeInterface
	InvokeDynamic
)

// String implements fmt.Stringer.
func (k InvokeKind) String() string {
	switch k {
	case InvokeStatic:
		return "static"
	case InvokeVirtual:
		return "virtual"
	case InvokeSpecial:
		return "special"
	case InvokeInterface:
		return "interface"
	case InvokeDynamic:
		return "dynamic"
	default:
		return "invoke?"
	}
}

// InvokeExpr is a method invocation. Class/Name/ParamTypes identify the
// statically referenced callee; virtual dispatch resolution happens later
// in the CPG/alias layer.
type InvokeExpr struct {
	Kind       InvokeKind
	Class      string // statically referenced class
	Name       string
	ParamTypes []java.Type
	ReturnType java.Type
	Base       *Local // receiver; nil for static/dynamic
	Args       []Value
}

// Callee returns the statically referenced method key.
func (e *InvokeExpr) Callee() java.MethodKey {
	return java.MakeMethodKey(e.Class, e.Name, e.ParamTypes)
}

// SubSignature returns the callee's dispatch identity.
func (e *InvokeExpr) SubSignature() string {
	return strings.TrimPrefix(string(java.MakeMethodKey("", e.Name, e.ParamTypes)), "#")
}

// Type implements Value.
func (e *InvokeExpr) Type() java.Type { return e.ReturnType }
func (e *InvokeExpr) value()          {}

// String implements fmt.Stringer.
func (e *InvokeExpr) String() string {
	var sb strings.Builder
	if e.Base != nil {
		sb.WriteString(e.Base.Name)
		sb.WriteByte('.')
	} else if e.Kind == InvokeStatic {
		sb.WriteString(e.Class)
		sb.WriteByte('.')
	}
	sb.WriteString(e.Name)
	sb.WriteByte('(')
	for i, a := range e.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Compile-time interface conformance checks.
var (
	_ Value = (*Local)(nil)
	_ Value = (*ThisRef)(nil)
	_ Value = (*ParamRef)(nil)
	_ Value = (*IntConst)(nil)
	_ Value = (*StrConst)(nil)
	_ Value = (*NullConst)(nil)
	_ Value = (*ClassConst)(nil)
	_ Value = (*FieldRef)(nil)
	_ Value = (*ArrayRef)(nil)
	_ Value = (*CastExpr)(nil)
	_ Value = (*NewExpr)(nil)
	_ Value = (*NewArrayExpr)(nil)
	_ Value = (*BinopExpr)(nil)
	_ Value = (*InstanceOfExpr)(nil)
	_ Value = (*InvokeExpr)(nil)
)
