package jimple

import (
	"strconv"

	"tabby/internal/java"
)

// BodyBuilder is a small fluent helper for constructing method bodies
// programmatically. The synthetic-corpus generators and tests use it; the
// mini-Java frontend (package javasrc) lowers source text instead.
type BodyBuilder struct {
	body *Body
	temp int
}

// NewBodyBuilder starts a builder over a fresh body for m.
func NewBodyBuilder(m *java.Method) *BodyBuilder {
	return &BodyBuilder{body: NewBody(m)}
}

// Body returns the body built so far.
func (bb *BodyBuilder) Body() *Body { return bb.body }

// This returns the receiver local (nil for static methods).
func (bb *BodyBuilder) This() *Local { return bb.body.This }

// Param returns the local bound to parameter i.
func (bb *BodyBuilder) Param(i int) *Local { return bb.body.Params[i] }

// Temp allocates a fresh temporary local of the given type.
func (bb *BodyBuilder) Temp(typ java.Type) *Local {
	bb.temp++
	return bb.body.AddLocal(NewLocal("$t"+strconv.Itoa(bb.temp), typ))
}

// Local allocates a named local.
func (bb *BodyBuilder) Local(name string, typ java.Type) *Local {
	return bb.body.AddLocal(NewLocal(name, typ))
}

// Assign appends lhs = rhs and returns the statement index.
func (bb *BodyBuilder) Assign(lhs, rhs Value) int {
	return bb.body.Append(&AssignStmt{LHS: lhs, RHS: rhs})
}

// New appends l = new T.
func (bb *BodyBuilder) New(l *Local, typ java.Type) int {
	return bb.Assign(l, &NewExpr{Typ: typ})
}

// InvokeVirtual appends a virtual call base.name(args) with a discarded
// result.
func (bb *BodyBuilder) InvokeVirtual(base *Local, class, name string, params []java.Type, ret java.Type, args ...Value) int {
	return bb.body.Append(&InvokeStmt{Invoke: &InvokeExpr{
		Kind: InvokeVirtual, Class: class, Name: name,
		ParamTypes: params, ReturnType: ret, Base: base, Args: args,
	}})
}

// InvokeStatic appends a static call Class.name(args) with a discarded
// result.
func (bb *BodyBuilder) InvokeStatic(class, name string, params []java.Type, ret java.Type, args ...Value) int {
	return bb.body.Append(&InvokeStmt{Invoke: &InvokeExpr{
		Kind: InvokeStatic, Class: class, Name: name,
		ParamTypes: params, ReturnType: ret, Args: args,
	}})
}

// AssignInvokeVirtual appends l = base.name(args).
func (bb *BodyBuilder) AssignInvokeVirtual(l *Local, base *Local, class, name string, params []java.Type, ret java.Type, args ...Value) int {
	return bb.Assign(l, &InvokeExpr{
		Kind: InvokeVirtual, Class: class, Name: name,
		ParamTypes: params, ReturnType: ret, Base: base, Args: args,
	})
}

// AssignInvokeStatic appends l = Class.name(args).
func (bb *BodyBuilder) AssignInvokeStatic(l *Local, class, name string, params []java.Type, ret java.Type, args ...Value) int {
	return bb.Assign(l, &InvokeExpr{
		Kind: InvokeStatic, Class: class, Name: name,
		ParamTypes: params, ReturnType: ret, Args: args,
	})
}

// FieldLoad appends l = base.field.
func (bb *BodyBuilder) FieldLoad(l *Local, base *Local, class, field string, typ java.Type) int {
	return bb.Assign(l, &FieldRef{Base: base, Class: class, Field: field, Typ: typ})
}

// FieldStore appends base.field = v.
func (bb *BodyBuilder) FieldStore(base *Local, class, field string, typ java.Type, v Value) int {
	return bb.Assign(&FieldRef{Base: base, Class: class, Field: field, Typ: typ}, v)
}

// Return appends return v (v may be nil).
func (bb *BodyBuilder) Return(v Value) int {
	return bb.body.Append(&ReturnStmt{Op: v})
}

// If appends a conditional branch and returns its index so the target can
// be patched with PatchTarget once known.
func (bb *BodyBuilder) If(cond Value) int {
	return bb.body.Append(&IfStmt{Cond: cond, Target: 0})
}

// Goto appends an unconditional branch, target patched later.
func (bb *BodyBuilder) Goto() int {
	return bb.body.Append(&GotoStmt{Target: 0})
}

// PatchTarget sets the branch target of the if/goto at index to target.
func (bb *BodyBuilder) PatchTarget(index, target int) {
	switch s := bb.body.Stmts[index].(type) {
	case *IfStmt:
		s.Target = target
	case *GotoStmt:
		s.Target = target
	}
}

// Here returns the index the next appended statement will get.
func (bb *BodyBuilder) Here() int { return len(bb.body.Stmts) }

// Nop appends a nop (useful as a stable branch target).
func (bb *BodyBuilder) Nop() int { return bb.body.Append(&NopStmt{}) }
