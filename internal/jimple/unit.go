package jimple

import (
	"fmt"

	"tabby/internal/java"
)

// ClassUnit is the mergeable per-class compilation artifact the
// incremental frontend deals in: one class skeleton plus the lowered
// bodies of its concrete methods, stamped with the content address it was
// built under. A Program is assembled from any mix of freshly compiled
// and cached units, so re-compiling a corpus touches only the units whose
// fingerprints changed.
type ClassUnit struct {
	// Class is the resolved skeleton (also reachable through the
	// hierarchy the unit was lowered against).
	Class *java.Class
	// Bodies are the lowered bodies of the class's concrete methods, in
	// declaration order.
	Bodies []*Body
	// Fingerprint is the content address of the unit: a hash of the
	// source file plus the hierarchy cone the lowering consulted. Empty
	// when the unit was built outside the caching frontend.
	Fingerprint string
}

// AssembleProgram merges class units into a Program against the hierarchy
// they were lowered under. Units must cover disjoint classes; every body
// must belong to its unit's class. Bodies are registered in unit order,
// and cached units are trusted to have been validated when first lowered,
// so assembly itself is O(methods) map inserts.
func AssembleProgram(h *java.Hierarchy, units []*ClassUnit, archives []java.Archive) (*Program, error) {
	prog := NewProgram(h)
	prog.Archives = append(prog.Archives, archives...)
	for _, u := range units {
		if u.Class == nil {
			return nil, fmt.Errorf("jimple: assemble: unit with nil class")
		}
		for _, b := range u.Bodies {
			if b.Method.ClassName != u.Class.Name {
				return nil, fmt.Errorf("jimple: assemble: body %s filed under class %s",
					b.Method.Key(), u.Class.Name)
			}
			if prog.Bodies[b.Method.Key()] != nil {
				return nil, fmt.Errorf("jimple: assemble: duplicate body %s", b.Method.Key())
			}
			prog.SetBody(b)
		}
	}
	return prog, nil
}
