package jimple

import (
	"strings"
	"testing"

	"tabby/internal/java"
)

func newTestMethod(t *testing.T, static bool) *java.Method {
	t.Helper()
	mods := java.ModPublic
	if static {
		mods |= java.ModStatic
	}
	return &java.Method{
		ClassName: "t.C",
		Name:      "m",
		Params:    []java.Type{java.ObjectType, java.Int},
		Return:    java.ObjectType,
		Modifiers: mods,
	}
}

func TestNewBodyIdentities(t *testing.T) {
	b := NewBody(newTestMethod(t, false))
	if b.This == nil {
		t.Fatal("instance method must have a this local")
	}
	if len(b.Params) != 2 {
		t.Fatalf("want 2 param locals, got %d", len(b.Params))
	}
	// First three statements are identities: this, p0, p1.
	if len(b.Stmts) != 3 {
		t.Fatalf("want 3 identity stmts, got %d", len(b.Stmts))
	}
	id0, ok := b.Stmts[0].(*IdentityStmt)
	if !ok {
		t.Fatalf("stmt 0 is %T, want IdentityStmt", b.Stmts[0])
	}
	if _, ok := id0.RHS.(*ThisRef); !ok {
		t.Errorf("stmt 0 RHS is %T, want ThisRef", id0.RHS)
	}
	id2, ok := b.Stmts[2].(*IdentityStmt)
	if !ok {
		t.Fatalf("stmt 2 is %T", b.Stmts[2])
	}
	pr, ok := id2.RHS.(*ParamRef)
	if !ok || pr.Index != 1 {
		t.Errorf("stmt 2 must bind @parameter1, got %v", id2.RHS)
	}
}

func TestNewBodyStatic(t *testing.T) {
	b := NewBody(newTestMethod(t, true))
	if b.This != nil {
		t.Fatal("static method must not have a this local")
	}
	if len(b.Stmts) != 2 {
		t.Fatalf("want 2 identity stmts, got %d", len(b.Stmts))
	}
}

func TestBodyInvokes(t *testing.T) {
	bb := NewBodyBuilder(newTestMethod(t, false))
	l := bb.Temp(java.ObjectType)
	bb.InvokeVirtual(bb.This(), "t.C", "callee1", nil, java.Void)
	bb.AssignInvokeVirtual(l, bb.This(), "t.C", "callee2", nil, java.ObjectType)
	bb.Return(l)
	invokes := bb.Body().Invokes()
	if len(invokes) != 2 {
		t.Fatalf("want 2 invokes, got %d", len(invokes))
	}
	if invokes[0].Expr.Name != "callee1" || invokes[1].Expr.Name != "callee2" {
		t.Errorf("invoke order wrong: %v %v", invokes[0].Expr.Name, invokes[1].Expr.Name)
	}
	if invokes[0].Index >= invokes[1].Index {
		t.Error("invoke indexes must increase")
	}
}

func TestBodyValidate(t *testing.T) {
	bb := NewBodyBuilder(newTestMethod(t, false))
	ifIdx := bb.If(&BinopExpr{Op: OpEq, L: bb.Param(1), R: &IntConst{Val: 0}})
	bb.Return(&NullConst{})
	end := bb.Nop()
	bb.PatchTarget(ifIdx, end)
	bb.Return(bb.Param(0))
	if err := bb.Body().Validate(); err != nil {
		t.Fatalf("valid body rejected: %v", err)
	}

	// Out-of-range target must be rejected.
	bad := NewBody(newTestMethod(t, false))
	bad.Append(&GotoStmt{Target: 99})
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range goto accepted")
	}

	// Identity statement after body start must be rejected.
	bad2 := NewBody(newTestMethod(t, false))
	bad2.Append(&NopStmt{})
	bad2.Append(&IdentityStmt{Local: NewLocal("x", java.Int), RHS: &ParamRef{Index: 0, Typ: java.Int}})
	if err := bad2.Validate(); err == nil {
		t.Fatal("late identity statement accepted")
	}
}

func TestValueStrings(t *testing.T) {
	l := NewLocal("x", java.ObjectType)
	base := NewLocal("b", java.ClassType("t.C"))
	arr := NewLocal("a", java.ArrayOf(java.Int))
	tests := []struct {
		give Value
		want string
	}{
		{&IntConst{Val: 42}, "42"},
		{&StrConst{Val: "hi"}, `"hi"`},
		{&NullConst{}, "null"},
		{&ClassConst{ClassName: "t.C"}, "t.C.class"},
		{&ThisRef{Typ: java.ObjectType}, "@this"},
		{&ParamRef{Index: 2, Typ: java.Int}, "@parameter2"},
		{&FieldRef{Base: base, Class: "t.C", Field: "f", Typ: java.Int}, "b.<t.C: f>"},
		{&FieldRef{Class: "t.C", Field: "sf", Typ: java.Int}, "t.C.sf"},
		{&ArrayRef{Base: arr, Index: &IntConst{Val: 1}}, "a[1]"},
		{&CastExpr{Typ: java.StringType, Op: l}, "(java.lang.String) x"},
		{&NewExpr{Typ: java.ClassType("t.C")}, "new t.C"},
		{&NewArrayExpr{Elem: java.Int, Size: &IntConst{Val: 3}}, "new int[3]"},
		{&BinopExpr{Op: OpLt, L: l, R: &IntConst{Val: 5}}, "x < 5"},
		{&InstanceOfExpr{Op: l, Check: java.StringType}, "x instanceof java.lang.String"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestInvokeExprMeta(t *testing.T) {
	inv := &InvokeExpr{
		Kind:       InvokeVirtual,
		Class:      "java.util.Map",
		Name:       "get",
		ParamTypes: []java.Type{java.ObjectType},
		ReturnType: java.ObjectType,
		Base:       NewLocal("m", java.ClassType("java.util.Map")),
		Args:       []Value{&StrConst{Val: "k"}},
	}
	if got := string(inv.Callee()); got != "java.util.Map#get(java.lang.Object)" {
		t.Errorf("Callee() = %q", got)
	}
	if got := inv.SubSignature(); got != "get(java.lang.Object)" {
		t.Errorf("SubSignature() = %q", got)
	}
	if !strings.Contains(inv.String(), "m.get(") {
		t.Errorf("String() = %q", inv.String())
	}
	if !inv.Type().Equal(java.ObjectType) {
		t.Errorf("Type() = %v", inv.Type())
	}
}

func TestBinopExprTypes(t *testing.T) {
	l := NewLocal("x", java.Int)
	if typ := (&BinopExpr{Op: OpAdd, L: l, R: l}).Type(); !typ.Equal(java.Int) {
		t.Errorf("x+x type = %v", typ)
	}
	if typ := (&BinopExpr{Op: OpEq, L: l, R: l}).Type(); !typ.Equal(java.Boolean) {
		t.Errorf("x==x type = %v", typ)
	}
}

func TestArrayRefType(t *testing.T) {
	arr := NewLocal("a", java.ArrayOf(java.StringType))
	r := &ArrayRef{Base: arr, Index: &IntConst{Val: 0}}
	if !r.Type().Equal(java.StringType) {
		t.Errorf("a[0] type = %v, want String", r.Type())
	}
	// Degenerate base type falls back to Object.
	bad := &ArrayRef{Base: NewLocal("o", java.ObjectType), Index: &IntConst{Val: 0}}
	if !bad.Type().Equal(java.ObjectType) {
		t.Errorf("degenerate array ref type = %v", bad.Type())
	}
}

func TestProgram(t *testing.T) {
	c := &java.Class{Name: "t.C", Modifiers: java.ModPublic, Super: java.ObjectClass}
	m := c.AddMethod(&java.Method{Name: "m", Return: java.Void, Modifiers: java.ModPublic})
	h, err := java.NewHierarchy([]*java.Class{c})
	if err != nil {
		t.Fatal(err)
	}
	p := NewProgram(h)
	bb := NewBodyBuilder(m)
	bb.Return(nil)
	p.SetBody(bb.Body())
	if p.Body(m.Key()) == nil {
		t.Fatal("SetBody/Body round trip failed")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.NumMethods() < 1 {
		t.Error("NumMethods must count declared methods")
	}
	if p.Body("ghost#m()") != nil {
		t.Error("unknown body must be nil")
	}
}

func TestBodyString(t *testing.T) {
	bb := NewBodyBuilder(newTestMethod(t, false))
	bb.Return(bb.Param(0))
	s := bb.Body().String()
	if !strings.Contains(s, "t.C#m(java.lang.Object,int)") || !strings.Contains(s, "return p0") {
		t.Errorf("Body.String() = %q", s)
	}
}

func TestInvokeKindString(t *testing.T) {
	kinds := map[InvokeKind]string{
		InvokeStatic:    "static",
		InvokeVirtual:   "virtual",
		InvokeSpecial:   "special",
		InvokeInterface: "interface",
		InvokeDynamic:   "dynamic",
		InvokeKind(99):  "invoke?",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("InvokeKind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
