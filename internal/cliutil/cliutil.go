// Package cliutil holds small helpers shared by the tabby command-line
// tools so their user-facing behavior stays consistent.
package cliutil

import (
	"fmt"
	"io"
)

// WarnMaxCallDepth prints the shared deprecation warning for the retired
// -max-call-depth flag when it was set to a non-zero value. Every tool
// that historically accepted the flag keeps parsing it for compatibility
// and routes the warning through here, so the wording (and the reason the
// flag is gone) is identical everywhere.
func WarnMaxCallDepth(w io.Writer, tool string, value int) {
	if value == 0 {
		return
	}
	fmt.Fprintf(w, "%s: warning: -max-call-depth is deprecated and has no effect (the SCC wave scheduler analyzes callees bottom-up without a depth bound)\n", tool)
}
