package server

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"tabby/internal/backend"
	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/javasrc"
	"tabby/internal/searchindex"
	"tabby/internal/store"
)

// equivalenceQueries exercises every execution route a backend can
// take: index-planned streams, aggregates and ORDER BY (plan Run),
// property residuals that force the generic store, procedures and
// EXPLAIN (full materialization), and the interpreter fallback.
var equivalenceQueries = []string{
	`MATCH (m:Method) RETURN COUNT(*)`,
	`MATCH (m:Method {IS_SINK: true}) RETURN m.NAME, m.SINK_TYPE`,
	`MATCH (m:Method {IS_SOURCE: true}) RETURN m.NAME LIMIT 10`,
	`MATCH (m:Method) WHERE m.NAME CONTAINS "readObject" RETURN m.NAME ORDER BY m.NAME`,
	`MATCH (a:Method)-[:CALL]->(b:Method) WHERE b.IS_SINK = true RETURN a.NAME, b.NAME`,
	`MATCH (c:Class)-[:HAS]->(m:Method) WHERE m.IS_SINK = true RETURN c.NAME, m.NAME`,
	`MATCH (c:Class)-[:EXTEND]->(p:Class) RETURN p.NAME, COUNT(c) ORDER BY COUNT(c) DESC LIMIT 10`,
	`MATCH (a)-[:ALIAS]-(b) RETURN a.NAME, b.NAME LIMIT 40`,
	`MATCH (m:Method) WHERE m.IS_SOURCE = true OR m.IS_SINK = true RETURN COUNT(*)`,
	`MATCH (a:Method)-[:CALL*1..2]->(b:Method {IS_SINK: true}) RETURN b.NAME LIMIT 5`,
	`EXPLAIN MATCH (m:Method {IS_SINK: true}) RETURN m.NAME`,
	`CALL tabby.sinks`,
	`CALL tabby.sources`,
	`MATCH (m:Method {IS_SINK: true}) RETURN m.NAME SKIP 2 LIMIT 3`,
	`MATCH (m:Method) RETURN DISTINCT m.SINK_TYPE`,
}

// equivalenceChains covers seed selection by default sinks, by type, by
// name (including the no-match error path), and source filtering — at
// both search worker counts.
func equivalenceChains(workers int) []map[string]any {
	return []map[string]any{
		{"graph": "g", "max_depth": 12, "workers": workers},
		{"graph": "g", "max_depth": 12, "workers": workers, "sink_type": "EXEC"},
		{"graph": "g", "max_depth": 12, "workers": workers, "sink_type": "JNDI"},
		{"graph": "g", "max_depth": 10, "workers": workers, "source_names": []string{"readObject"}},
		{"graph": "g", "max_depth": 12, "workers": workers, "sink_names": []string{"com.nosuch.Klass#nope()"}},
	}
}

// TestBackendsAnswerIdenticallyOnCorpus pins the two storage backends
// against each other over every Table IX component plus the Spring
// scene: the same snapshot served heap-resident (upload path) and as a
// zero-copy mmap view must produce byte-identical /v1/query and
// /v1/chains responses — status codes, rows, rendered text, and error
// bodies — with CPGs built and searches run at workers 1 and 2.
func TestBackendsAnswerIdenticallyOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus backend equivalence sweep")
	}
	type scenario struct {
		name     string
		archives []javasrc.ArchiveSource
	}
	var scenarios []scenario
	for _, comp := range corpus.Components() {
		scenarios = append(scenarios, scenario{
			name:     "component/" + comp.Name,
			archives: append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...),
		})
	}
	spring, err := corpus.SceneByName("Spring")
	if err != nil {
		t.Fatal(err)
	}
	scenarios = append(scenarios, scenario{
		name:     "scene/" + spring.Name,
		archives: append([]javasrc.ArchiveSource{corpus.RT()}, spring.Archives...),
	})

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for _, workers := range []int{1, 2} {
				engine := core.New(core.Options{Workers: workers})
				rep, err := engine.AnalyzeSources(sc.archives)
				if err != nil {
					t.Fatal(err)
				}
				path := filepath.Join(t.TempDir(), "g.tsnap")
				f, err := os.Create(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := engine.SaveSnapshot(f, rep, "g", sc.name); err != nil {
					t.Fatal(err)
				}
				if err := f.Close(); err != nil {
					t.Fatal(err)
				}

				// Heap side: the pre-backend read path — full parse, Registry.Add.
				memSrv := New(Options{Workers: workers})
				defer memSrv.Close()
				snap, err := store.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := memSrv.Registry().Add("g", snap); err != nil {
					t.Fatal(err)
				}
				// Mmap side: the tabby-server file path — zero-copy when the
				// host supports it.
				mmapSrv := New(Options{Workers: workers})
				defer mmapSrv.Close()
				if _, err := mmapSrv.LoadSnapshotFile(path); err != nil {
					t.Fatal(err)
				}
				be, err := mmapSrv.Registry().Get("g")
				if err != nil {
					t.Fatal(err)
				}
				if searchindex.LayoutSupported() && be.Kind() != backend.KindMmap {
					t.Fatalf("snapshot file opened as %q, want %q", be.Kind(), backend.KindMmap)
				}

				memTS := httptest.NewServer(memSrv.Handler())
				mmapTS := httptest.NewServer(mmapSrv.Handler())

				for _, query := range equivalenceQueries {
					req := map[string]any{"graph": "g", "query": query}
					memCode, memBody := postJSON(t, memTS.URL+"/v1/query", req)
					mmapCode, mmapBody := postJSON(t, mmapTS.URL+"/v1/query", req)
					if memCode != mmapCode || !bytes.Equal(memBody, mmapBody) {
						t.Errorf("workers=%d query %q diverged:\nmem  %d: %s\nmmap %d: %s",
							workers, query, memCode, memBody, mmapCode, mmapBody)
					}
				}
				for _, req := range equivalenceChains(workers) {
					memCode, memBody := postJSON(t, memTS.URL+"/v1/chains", req)
					mmapCode, mmapBody := postJSON(t, mmapTS.URL+"/v1/chains", req)
					if memCode != mmapCode || !bytes.Equal(memBody, mmapBody) {
						t.Errorf("workers=%d chains %v diverged:\nmem  %d: %s\nmmap %d: %s",
							workers, req, memCode, memBody, mmapCode, mmapBody)
					}
				}

				memTS.Close()
				mmapTS.Close()
			}
		})
	}
}
