package server

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"

	"tabby/internal/backend"
	"tabby/internal/store"
)

// ErrNotFound reports a graph id with no registry entry.
var ErrNotFound = errors.New("server: graph not registered")

// Registry holds the graphs a server can answer queries against. An
// entry is either *open* (it has a live backend serving its index) or
// merely *registered* (a file path recorded at boot, opened on the
// first request that names it). Registration is how a server fronts
// thousands of snapshot files without paying thousands of opens: a
// version-3 snapshot opens as a zero-copy mmap view in milliseconds
// when first asked for, and its resident cost is page cache, not heap.
//
// Heap-resident backends (full snapshot parses: uploads, pre-v3 files,
// hosts without mmap) are bounded by an LRU policy: beyond the
// capacity, the least-recently-used heap entry is evicted — demoted
// back to "registered" when it came from a file (a later request
// reopens it), dropped entirely when it did not (uploaded graphs have
// no bytes to reopen). Mmap-backed entries never count against the
// capacity and are never unmapped: the served index aliases the mapped
// bytes, and the mapping's unreferenced pages are the kernel's to
// reclaim, not ours.
//
// It is safe for concurrent use. Only the bookkeeping is guarded here;
// backends serve frozen data, so request handlers read them without
// any registry lock held.
type Registry struct {
	mu        sync.Mutex
	max       int
	entries   map[string]*regEntry
	lru       *list.List // heap-resident entries only; front = most recently used
	evictions int64
	// onEvict, when set, runs for every id the capacity forces out —
	// dropped or demoted alike — so caches keyed by graph id can
	// invalidate: after eviction a later entry under the same id may
	// serve different content (a fresh upload, or a path whose file was
	// atomically replaced). Called with the registry lock held; the
	// callback must not call back into the registry.
	onEvict func(id string)
}

type regEntry struct {
	id   string
	path string          // re-openable source file; "" for uploaded graphs
	be   backend.Backend // nil while merely registered
	el   *list.Element   // LRU slot while heap-resident; nil otherwise
}

// DefaultMaxGraphs bounds the heap-resident graphs when no capacity is
// configured.
const DefaultMaxGraphs = 8

// NewRegistry creates a registry keeping at most max heap-resident
// graphs (DefaultMaxGraphs when max <= 0).
func NewRegistry(max int) *Registry {
	if max <= 0 {
		max = DefaultMaxGraphs
	}
	return &Registry{
		max:     max,
		entries: make(map[string]*regEntry),
		lru:     list.New(),
	}
}

// Add registers an already-parsed snapshot under id. Registering an id
// twice is an error — a graph's contents are immutable, so replacement
// is always a caller bug. Returns the id of the entry the capacity
// forced out, if any.
func (r *Registry) Add(id string, snap *store.Snapshot) (evicted string, err error) {
	if snap == nil || snap.DB == nil {
		return "", fmt.Errorf("server: graph %q: nil snapshot", id)
	}
	return r.AddBackend(id, backend.FromSnapshot(snap), "")
}

// AddBackend registers an opened backend under id. path, when
// non-empty, names the snapshot file the backend came from, which lets
// an evicted heap entry fall back to "registered" instead of
// disappearing.
func (r *Registry) AddBackend(id string, be backend.Backend, path string) (evicted string, err error) {
	if id == "" {
		return "", fmt.Errorf("server: empty graph id")
	}
	if be == nil {
		return "", fmt.Errorf("server: graph %q: nil backend", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[id]; dup {
		return "", fmt.Errorf("server: graph %q already loaded", id)
	}
	e := &regEntry{id: id, path: path, be: be}
	r.entries[id] = e
	return r.trackLocked(e), nil
}

// Register records a snapshot file under id without opening it. The
// first Get for the id opens the file then.
func (r *Registry) Register(id, path string) error {
	if id == "" {
		return fmt.Errorf("server: empty graph id")
	}
	if path == "" {
		return fmt.Errorf("server: graph %q: empty snapshot path", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[id]; dup {
		return fmt.Errorf("server: graph %q already loaded", id)
	}
	r.entries[id] = &regEntry{id: id, path: path}
	return nil
}

// Has reports whether id is registered (opened or not), without opening
// anything.
func (r *Registry) Has(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.entries[id]
	return ok
}

// Get returns the backend registered under id, opening it from its
// file on first use and marking it most recently used. A failed open
// leaves the entry registered (the file may be fixed or replaced —
// snapshot writes are atomic renames — so a later Get retries).
func (r *Registry) Get(id string) (backend.Backend, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return nil, ErrNotFound
	}
	if e.be == nil {
		// Opening under the lock serializes concurrent first requests for
		// the same graph; the common (v3) open is a validation pass over an
		// mmap, milliseconds even on the largest corpora.
		be, err := backend.Open(e.path)
		if err != nil {
			return nil, fmt.Errorf("server: open graph %q: %w", id, err)
		}
		e.be = be
		r.trackLocked(e)
		return e.be, nil
	}
	if e.el != nil {
		r.lru.MoveToFront(e.el)
	}
	return e.be, nil
}

// trackLocked enrolls a newly-opened backend in the heap LRU when it is
// heap-resident and applies the capacity, returning the evicted id (""
// when nothing was forced out).
func (r *Registry) trackLocked(e *regEntry) (evicted string) {
	if e.be.Kind() != backend.KindMem {
		return ""
	}
	e.el = r.lru.PushFront(e)
	for r.lru.Len() > r.max {
		oldest := r.lru.Back()
		v := oldest.Value.(*regEntry)
		r.lru.Remove(oldest)
		v.el = nil
		r.evictions++
		evicted = v.id
		if v.path != "" {
			v.be = nil // demote: registered again, reopenable on demand
		} else {
			delete(r.entries, v.id)
		}
		if r.onEvict != nil {
			r.onEvict(v.id)
		}
	}
	return evicted
}

// setOnEvict installs the eviction callback (see the field's contract);
// the server wires its caches here before the registry is shared.
func (r *Registry) setOnEvict(fn func(id string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onEvict = fn
}

// Len reports how many graphs are registered (opened or not).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Evictions reports how many heap-resident graphs the capacity has
// forced out since the registry was created.
func (r *Registry) Evictions() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictions
}

// GraphInfo summarizes one registered graph for listings. Fields past
// Meta describe the serving state: Backend and the counters are only
// meaningful once Opened, and Loaded distinguishes an mmap view that
// has additionally materialized its generic store from one serving
// purely off the mapping.
type GraphInfo struct {
	ID     string     `json:"id"`
	Corpus string     `json:"corpus,omitempty"`
	Nodes  int        `json:"nodes"`
	Rels   int        `json:"rels"`
	Meta   store.Meta `json:"meta"`
	// Backend is "mem" or "mmap"; empty while the entry is registered
	// but not yet opened.
	Backend string `json:"backend,omitempty"`
	// Opened reports whether the entry has a live backend (its index is
	// servable without touching the file again).
	Opened bool `json:"opened"`
	// Loaded reports whether the generic property store is resident on
	// the Go heap (always true for "mem"; true for "mmap" only after a
	// query needed the full store).
	Loaded bool `json:"loaded"`
	// MappedBytes is the size of the backing memory-mapped region, 0
	// for heap-resident graphs.
	MappedBytes int64 `json:"mapped_bytes,omitempty"`
}

// List returns a summary of every registered graph, sorted by id so the
// listing is deterministic. Unopened entries are listed by id alone —
// listing must stay cheap with thousands of registered files, so it
// never forces opens.
func (r *Registry) List() []GraphInfo {
	type row struct {
		id string
		be backend.Backend
	}
	r.mu.Lock()
	entries := make([]row, 0, len(r.entries))
	for _, e := range r.entries {
		// Snapshot the backend pointer under the lock (Get and eviction
		// mutate it); the backend itself is immutable and read lock-free.
		entries = append(entries, row{id: e.id, be: e.be})
	}
	r.mu.Unlock()

	out := make([]GraphInfo, 0, len(entries))
	for _, e := range entries {
		info := GraphInfo{ID: e.id}
		if e.be != nil {
			st := e.be.GraphStats()
			meta := e.be.Meta()
			info.Corpus = meta.Corpus
			info.Nodes = st.Nodes
			info.Rels = st.Rels
			info.Meta = meta
			info.Backend = e.be.Kind()
			info.Opened = true
			info.Loaded = e.be.Loaded()
			info.MappedBytes = e.be.MappedBytes()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
