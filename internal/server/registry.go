package server

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"tabby/internal/store"
)

// Registry holds the loaded snapshots a server can answer queries
// against, bounded by an LRU policy: when a snapshot is registered
// beyond the capacity, the least-recently-used one is dropped (its
// store stays alive for any request already holding it, and is
// garbage-collected afterwards).
//
// It is safe for concurrent use. Only the id→snapshot bookkeeping is
// guarded here; the snapshots themselves are frozen stores, so request
// handlers read them without any registry lock held.
type Registry struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type regEntry struct {
	id   string
	snap *store.Snapshot
}

// DefaultMaxGraphs bounds the registry when no capacity is configured.
const DefaultMaxGraphs = 8

// NewRegistry creates a registry holding at most max snapshots
// (DefaultMaxGraphs when max <= 0).
func NewRegistry(max int) *Registry {
	if max <= 0 {
		max = DefaultMaxGraphs
	}
	return &Registry{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Add registers a snapshot under id. Registering an id twice is an
// error — a graph's contents are immutable, so replacement is always a
// caller bug. Returns the id of the evicted snapshot, if the capacity
// forced one out.
func (r *Registry) Add(id string, snap *store.Snapshot) (evicted string, err error) {
	if id == "" {
		return "", fmt.Errorf("server: empty graph id")
	}
	if snap == nil || snap.DB == nil {
		return "", fmt.Errorf("server: graph %q: nil snapshot", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[id]; dup {
		return "", fmt.Errorf("server: graph %q already loaded", id)
	}
	r.entries[id] = r.order.PushFront(&regEntry{id: id, snap: snap})
	if r.order.Len() > r.max {
		oldest := r.order.Back()
		e := oldest.Value.(*regEntry)
		r.order.Remove(oldest)
		delete(r.entries, e.id)
		evicted = e.id
	}
	return evicted, nil
}

// Get returns the snapshot registered under id, marking it most
// recently used.
func (r *Registry) Get(id string) (*store.Snapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.entries[id]
	if !ok {
		return nil, false
	}
	r.order.MoveToFront(el)
	return el.Value.(*regEntry).snap, true
}

// Len reports how many snapshots are loaded.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.order.Len()
}

// GraphInfo summarizes one loaded graph for listings.
type GraphInfo struct {
	ID     string     `json:"id"`
	Corpus string     `json:"corpus,omitempty"`
	Nodes  int        `json:"nodes"`
	Rels   int        `json:"rels"`
	Meta   store.Meta `json:"meta"`
}

// List returns a summary of every loaded graph, sorted by id so the
// listing is deterministic.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	snaps := make([]*regEntry, 0, r.order.Len())
	for el := r.order.Front(); el != nil; el = el.Next() {
		snaps = append(snaps, el.Value.(*regEntry))
	}
	r.mu.Unlock()

	out := make([]GraphInfo, 0, len(snaps))
	for _, e := range snaps {
		s := e.snap.DB.Stats()
		out = append(out, GraphInfo{
			ID:     e.id,
			Corpus: e.snap.Meta.Corpus,
			Nodes:  s.Nodes,
			Rels:   s.Rels,
			Meta:   e.snap.Meta,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
