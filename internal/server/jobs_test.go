package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// stallServer builds a server whose analyze builds block until release
// is closed — the instrument for every "while a build is running"
// assertion. Jobs whose name contains "boom" panic instead, exercising
// the worker's panic confinement.
func stallServer(t *testing.T, opts Options, release <-chan struct{}) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	t.Cleanup(s.Close)
	s.jobs.buildHook = func(j *job) {
		if strings.Contains(j.name, "boom") {
			panic("injected build panic")
		}
		if release != nil {
			<-release
		}
	}
	if _, err := s.Registry().Add("rt", rtSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// pollJob fetches a job until cond holds (or times out).
func pollJob(t *testing.T, url, id string, cond func(jobJSON) bool) jobJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body := getJSON(t, url+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s = %d: %s", id, code, body)
		}
		var j jobJSON
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatal(err)
		}
		if cond(j) {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %+v", id, j)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobLifecycle pins the async contract: submission answers 202
// with a job id and Location header while the build runs elsewhere;
// polling walks queued/running to done; the finished job names a
// servable graph; and the job list includes it.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	data, _ := json.Marshal(analyzeReq("lifecycle", false))
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	var sub jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("analyze submit = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+sub.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", loc, sub.ID)
	}
	if sub.ID == "" || (sub.Status != "queued" && sub.Status != "running") {
		t.Fatalf("submission = %+v", sub)
	}

	done := pollJob(t, ts.URL, sub.ID, func(j jobJSON) bool { return j.Status == "done" || j.Status == "failed" })
	if done.Status != "done" || done.Graph != "lifecycle" || done.Chains == 0 || done.Stats == nil {
		t.Fatalf("finished job = %+v", done)
	}

	// The graph the job names is servable.
	code, body := postJSON(t, ts.URL+"/v1/chains", map[string]any{"graph": done.Graph})
	if code != http.StatusOK {
		t.Fatalf("chains on job result = %d: %s", code, body)
	}

	// The job list carries it, and unknown ids 404.
	code, body = getJSON(t, ts.URL+"/v1/jobs")
	if code != http.StatusOK || !strings.Contains(string(body), `"`+sub.ID+`"`) {
		t.Errorf("GET /v1/jobs = %d: %s", code, body)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", code)
	}
}

// TestAnalyzeDoesNotBlockQueries is the serving SLO in miniature: with
// a build stalled mid-flight on the only analyze worker, /v1/query and
// /v1/chains must answer normally.
func TestAnalyzeDoesNotBlockQueries(t *testing.T) {
	release := make(chan struct{})
	_, ts := stallServer(t, Options{Workers: 1}, release)

	code, body := postJSON(t, ts.URL+"/v1/analyze", analyzeReq("stalled", false))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var sub jobJSON
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	pollJob(t, ts.URL, sub.ID, func(j jobJSON) bool { return j.Status == "running" })

	// The build is now provably in flight and will stay there until
	// released; the read path must be unaffected.
	code, body = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"graph": "rt", "query": `MATCH (m:Method {IS_SINK: true}) RETURN m.NAME LIMIT 3`,
	})
	if code != http.StatusOK {
		t.Errorf("query during build = %d: %s", code, body)
	}
	code, body = postJSON(t, ts.URL+"/v1/chains", map[string]any{"graph": "rt"})
	if code != http.StatusOK {
		t.Errorf("chains during build = %d: %s", code, body)
	}
	if j, ok := pollStatus(t, ts.URL, sub.ID); !ok || j != "running" {
		t.Errorf("job status after queries = %q, want still running", j)
	}

	close(release)
	pollJob(t, ts.URL, sub.ID, func(j jobJSON) bool { return j.Status == "done" })
}

// pollStatus reads one job's current status without waiting.
func pollStatus(t *testing.T, url, id string) (string, bool) {
	t.Helper()
	code, body := getJSON(t, url+"/v1/jobs/"+id)
	if code != http.StatusOK {
		return "", false
	}
	var j jobJSON
	if err := json.Unmarshal(body, &j); err != nil {
		return "", false
	}
	return j.Status, true
}

// TestConcurrentIdenticalAnalyzesBuildOnce pins singleflight: N
// concurrent identical submissions perform exactly one build; everyone
// gets the same finished graph.
func TestConcurrentIdenticalAnalyzesBuildOnce(t *testing.T) {
	release := make(chan struct{})
	s, ts := stallServer(t, Options{Workers: 1}, release)

	const submitters = 8
	var wg sync.WaitGroup
	results := make([]jobJSON, submitters)
	errs := make(chan error, submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body, err := tryPostJSON(ts.URL+"/v1/analyze", analyzeReq("shared", true))
			if err != nil || code != http.StatusOK {
				errs <- fmt.Errorf("submitter %d: %d %s (%v)", i, code, body, err)
				return
			}
			if err := json.Unmarshal(body, &results[i]); err != nil {
				errs <- err
			}
		}(i)
	}

	// Release the stalled build only once every submission has either
	// coalesced into it or resolved from its result; then the waiters
	// drain.
	deadline := time.Now().Add(30 * time.Second)
	for {
		s.jobs.mu.Lock()
		merged := s.jobs.coalescedN + s.jobs.resultHits
		s.jobs.mu.Unlock()
		if merged >= submitters-1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i, r := range results {
		if r.Status != "done" || r.Graph != "shared" {
			t.Errorf("submitter %d got %+v", i, r)
		}
	}
	if got := s.Builds(); got != 1 {
		t.Errorf("%d concurrent identical submissions ran %d builds, want exactly 1", submitters, got)
	}
	// And the shared cache saw exactly one cold compile: a second,
	// different corpus reuses the runtime's artifacts.
	code, body := postJSON(t, ts.URL+"/v1/analyze", analyzeReq("shared2", true))
	if code != http.StatusOK {
		t.Fatalf("followup analyze = %d: %s", code, body)
	}
	var followup jobJSON
	if err := json.Unmarshal(body, &followup); err != nil {
		t.Fatal(err)
	}
	if followup.Cache == nil || followup.Cache.ParseHits == 0 {
		t.Errorf("followup build reused nothing: %+v", followup.Cache)
	}
}

// TestAnalyzeQueueOverflow pins the 429 backpressure contract: with
// one worker stalled and a one-slot queue, a third distinct build is
// rejected, and the rejection is counted.
func TestAnalyzeQueueOverflow(t *testing.T) {
	release := make(chan struct{})
	_, ts := stallServer(t, Options{Workers: 1, AnalyzeWorkers: 1, AnalyzeQueue: 1}, release)
	defer close(release)

	code, body := postJSON(t, ts.URL+"/v1/analyze", analyzeReq("q1", false))
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", code, body)
	}
	var first jobJSON
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	// Wait until the worker owns q1, so q2 occupies the queue's only slot.
	pollJob(t, ts.URL, first.ID, func(j jobJSON) bool { return j.Status == "running" })

	q2 := analyzeReq("q2", false)
	q2["max_depth"] = 11 // distinct fingerprint, no coalescing
	if code, body := postJSON(t, ts.URL+"/v1/analyze", q2); code != http.StatusAccepted {
		t.Fatalf("second submit = %d: %s", code, body)
	}
	q3 := analyzeReq("q3", false)
	q3["max_depth"] = 10
	code, body = postJSON(t, ts.URL+"/v1/analyze", q3)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429: %s", code, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "queue full") {
		t.Errorf("429 body = %s", body)
	}

	code, body = getJSON(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", code)
	}
	var st serverStatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Jobs.Rejected != 1 || st.Jobs.QueueCap != 1 {
		t.Errorf("job stats = %+v, want rejected=1 queue_cap=1", st.Jobs)
	}
}

// TestFailedAndPanickingBuilds: a build that errors surfaces the error
// on the failed job; a build that panics fails its job with the panic
// message and the worker survives to run the next build.
func TestFailedAndPanickingBuilds(t *testing.T) {
	_, ts := stallServer(t, Options{Workers: 1}, nil)

	bad := map[string]any{
		"name": "broken",
		"wait": true,
		"files": []map[string]string{{
			"name":   "Broken.java",
			"source": "this is not java at all %%%",
		}},
	}
	code, body := postJSON(t, ts.URL+"/v1/analyze", bad)
	if code != http.StatusOK {
		t.Fatalf("failed analyze = %d: %s", code, body)
	}
	var failed jobJSON
	if err := json.Unmarshal(body, &failed); err != nil {
		t.Fatal(err)
	}
	if failed.Status != "failed" || !strings.Contains(failed.Error, "analyze failed") {
		t.Errorf("failed job = %+v", failed)
	}
	// The name was released: the registry never saw the graph.
	if code, _ := postJSON(t, ts.URL+"/v1/chains", map[string]any{"graph": "broken"}); code != http.StatusNotFound {
		t.Errorf("failed build registered a graph anyway (chains = %d)", code)
	}

	// Panic confinement: the hook panics for this name.
	code, body = postJSON(t, ts.URL+"/v1/analyze", analyzeReq("boom", true))
	if code != http.StatusOK {
		t.Fatalf("panicking analyze = %d: %s", code, body)
	}
	var panicked jobJSON
	if err := json.Unmarshal(body, &panicked); err != nil {
		t.Fatal(err)
	}
	if panicked.Status != "failed" || !strings.Contains(panicked.Error, "panicked") {
		t.Errorf("panicked job = %+v", panicked)
	}

	// The (sole) worker survived both: a healthy build still completes.
	code, body = postJSON(t, ts.URL+"/v1/analyze", analyzeReq("healthy", true))
	if code != http.StatusOK {
		t.Fatalf("post-panic analyze = %d: %s", code, body)
	}
	var ok jobJSON
	if err := json.Unmarshal(body, &ok); err != nil {
		t.Fatal(err)
	}
	if ok.Status != "done" || ok.Graph != "healthy" {
		t.Errorf("post-panic job = %+v", ok)
	}
}
