// Package server is the HTTP graph-query service over stored code
// property graphs — the long-lived counterpart of the paper's Neo4j
// deployment (§II-B): build and persist a CPG once, then let many
// clients query it concurrently. A server loads snapshots (written by
// `tabby -save` / core.SaveSnapshot) into an LRU-bounded registry of
// immutable stores and exposes:
//
//	GET  /v1/graphs                 list loaded graphs (ETag revalidation)
//	GET  /v1/graphs/{id}/stats      node/edge statistics + metadata (ETag)
//	POST /v1/query                  Cypher-lite (incl. CALL procedures)
//	POST /v1/chains                 path-finder search with TC/sink/source parameters
//	POST /v1/analyze                submit an uploaded mini-Java corpus for analysis
//	GET  /v1/jobs                   list analyze jobs
//	GET  /v1/jobs/{id}              poll one analyze job
//	GET  /v1/stats                  job-queue and cache counters
//
// Builds are asynchronous: /v1/analyze enqueues the corpus on a
// bounded worker pool and answers 202 with a job id (429 when the
// queue is full), so a heavy compile never blocks the query path.
// Concurrent identical submissions coalesce into one build
// (singleflight), and repeat uploads resolve instantly from a result
// cache keyed by the content-addressed corpus fingerprint. Analyses
// also share one content-addressed artifact cache across builds, so a
// corpus that merely overlaps a previous one (the edit-analyze loop)
// still reuses compiled classes and controllability summaries.
//
// Every response is JSON. Queries and searches run against frozen
// stores, so concurrent requests are safe and two identical requests
// always produce byte-identical responses — which is also why the
// server may answer them from an LRU cache of encoded response bytes.
package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"tabby/internal/backend"
	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/cpg"
	"tabby/internal/cypher"
	"tabby/internal/edges"
	"tabby/internal/graphdb"
	"tabby/internal/javasrc"
	"tabby/internal/pathfinder"
	"tabby/internal/searchindex"
	"tabby/internal/sinks"
	"tabby/internal/store"
)

// Options configures a Server.
type Options struct {
	// MaxGraphs bounds the snapshot registry (LRU eviction beyond it);
	// zero means DefaultMaxGraphs.
	MaxGraphs int
	// Workers is the default worker count for searches and analyses when
	// a request does not specify its own (same semantics as
	// core.Options.Workers).
	Workers int
	// MaxRequestBytes caps request bodies; zero means 32 MiB.
	MaxRequestBytes int64
	// MaxQueryRows bounds how many rows /v1/query returns per request;
	// queries producing more are cut off and the response marked
	// truncated. Zero means DefaultMaxQueryRows.
	MaxQueryRows int
	// AnalyzeWorkers sizes the build pool behind /v1/analyze; zero means
	// DefaultAnalyzeWorkers.
	AnalyzeWorkers int
	// AnalyzeQueue bounds how many submitted builds may wait behind the
	// running ones; beyond it submissions get 429. Zero means
	// DefaultAnalyzeQueue.
	AnalyzeQueue int
	// RespCacheBytes is the byte budget for the /v1/query + /v1/chains
	// response cache; zero means DefaultRespCacheBytes, negative
	// disables caching.
	RespCacheBytes int64
}

const defaultMaxRequestBytes = 32 << 20

// DefaultMaxQueryRows is the /v1/query row cap when Options.MaxQueryRows
// is zero. Streaming cursors stop pulling rows at the cap, so a
// pathological `MATCH (a), (b), (c)` cross product costs the server at
// most this many rows of work, not the full product.
const DefaultMaxQueryRows = 10000

// Server serves stored graphs over HTTP.
type Server struct {
	reg     *Registry
	workers int
	maxBody int64
	maxRows int
	jobs    *jobManager // async /v1/analyze builds
	resp    *respCache  // encoded /v1/query + /v1/chains bodies
	// cache persists compile artifacts and controllability summaries
	// across /v1/analyze builds: re-analyzing a corpus that shares
	// classes with a previous upload reuses every summary whose dependency
	// cone is unchanged. Guarded by cacheMu (it is not concurrent-safe);
	// content-addressing keeps it sound across builds with different
	// mechanisms or options.
	cache     *core.AnalysisCache
	cacheMu   sync.Mutex
	closeOnce sync.Once
}

// New creates a server with an empty registry and starts its analyze
// worker pool. Call Close to stop the pool when the server is
// discarded before process exit (tests, benchmarks).
func New(opts Options) *Server {
	if opts.MaxRequestBytes <= 0 {
		opts.MaxRequestBytes = defaultMaxRequestBytes
	}
	if opts.MaxQueryRows <= 0 {
		opts.MaxQueryRows = DefaultMaxQueryRows
	}
	if opts.RespCacheBytes == 0 {
		opts.RespCacheBytes = DefaultRespCacheBytes
	}
	s := &Server{
		reg:     NewRegistry(opts.MaxGraphs),
		workers: opts.Workers,
		maxBody: opts.MaxRequestBytes,
		maxRows: opts.MaxQueryRows,
		jobs:    newJobManager(opts.AnalyzeWorkers, opts.AnalyzeQueue),
		resp:    newRespCache(opts.RespCacheBytes),
		cache:   core.NewAnalysisCache(),
	}
	// A graph leaving the registry (uploaded graph dropped, file-backed
	// entry demoted to a reopenable path) invalidates everything cached
	// under its id: a later graph under the same id may answer
	// differently.
	s.reg.setOnEvict(func(id string) {
		s.resp.invalidate(id)
		s.jobs.invalidateGraph(id)
	})
	for i := 0; i < s.jobs.workers; i++ {
		go s.runAnalyzeWorker()
	}
	return s
}

// Close stops the analyze worker pool after draining queued builds.
// Serving may continue; further /v1/analyze submissions get 503.
func (s *Server) Close() {
	s.closeOnce.Do(s.jobs.close)
}

// Registry exposes the snapshot registry (the CLI preloads it; tests
// inspect it).
func (s *Server) Registry() *Registry { return s.reg }

// LoadSnapshotFile opens one snapshot file eagerly and registers it,
// returning the id it was registered under: the snapshot's stored
// name, or the file's base name (minus extension) when the snapshot
// carries none. Version-3 snapshots open as zero-copy mmap views;
// older ones are parsed onto the heap.
func (s *Server) LoadSnapshotFile(path string) (string, error) {
	be, err := backend.Open(path)
	if err != nil {
		return "", err
	}
	id := be.Meta().Name
	if id == "" {
		id = snapshotID(path)
	}
	if _, err := s.reg.AddBackend(id, be, path); err != nil {
		return "", err
	}
	return id, nil
}

// RegisterSnapshotDir registers every snapshot file in dir without
// opening any of them — each opens lazily on its first request. Ids
// are the file base names minus extension (reading a stored name would
// defeat the point of not opening). Staging files from interrupted
// atomic writes and dotfiles are skipped. Returns how many files were
// registered.
func (s *Server) RegisterSnapshotDir(dir string) (int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || strings.HasPrefix(name, ".") || store.IsTempPath(name) {
			continue
		}
		path := filepath.Join(dir, name)
		if err := s.reg.Register(snapshotID(path), path); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// snapshotID derives a registry id from a snapshot file path.
func snapshotID(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	mux.HandleFunc("GET /v1/graphs/{id}/stats", s.handleStats)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/chains", s.handleChains)
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/stats", s.handleServerStats)
	return mux
}

// --- shared helpers ------------------------------------------------------

type errorResponse struct {
	Error string `json:"error"`
}

// encPool recycles response-encoding buffers: the query and chains hot
// paths encode every response into one of these, so steady-state
// serving allocates no fresh buffer per request.
var encPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeJSON renders v into a pooled buffer. Callers must hand the
// buffer back with encPool.Put once its bytes are written out (or
// copied for caching).
func encodeJSON(v any) *bytes.Buffer {
	buf := encPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // only statically JSON-able types reach here
	return buf
}

// writeRawJSON writes already-encoded response bytes.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	_, _ = w.Write(body) // client went away; nothing to recover
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := encodeJSON(v)
	writeRawJSON(w, status, buf.Bytes())
	encPool.Put(buf)
}

// writeETagJSON serves a GET whose payload is cheap to render but nice
// to revalidate: it answers 304 with no body when the client's
// If-None-Match matches the strong ETag of the encoded payload.
// Hashing the actual bytes makes the validator exact even for payloads
// with mutable fields (eviction counters, lazily-opened backends);
// immutable payloads — snapshot-backed stats — converge to one stable
// tag. Cache-Control: no-cache demands revalidation, which the ETag
// makes a 304 round-trip instead of a re-download.
func writeETagJSON(w http.ResponseWriter, r *http.Request, v any) {
	buf := encodeJSON(v)
	sum := sha256.Sum256(buf.Bytes())
	etag := `"` + hex.EncodeToString(sum[:16]) + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache")
	if match := r.Header.Get("If-None-Match"); match != "" && strings.Contains(match, etag) {
		w.WriteHeader(http.StatusNotModified)
	} else {
		writeRawJSON(w, http.StatusOK, buf.Bytes())
	}
	encPool.Put(buf)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) graphFor(w http.ResponseWriter, id string) (backend.Backend, bool) {
	if id == "" {
		writeError(w, http.StatusBadRequest, `missing "graph" (see GET /v1/graphs for loaded ids)`)
		return nil, false
	}
	be, err := s.reg.Get(id)
	if errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, "graph %q is not loaded (see GET /v1/graphs)", id)
		return nil, false
	}
	if err != nil {
		// Registered but unopenable: the snapshot file is corrupt or gone.
		writeError(w, http.StatusInternalServerError, "%v", err)
		return nil, false
	}
	return be, true
}

// --- GET /v1/graphs ------------------------------------------------------

type graphsResponse struct {
	Graphs []GraphInfo `json:"graphs"`
	// Evictions counts heap-resident graphs the registry capacity has
	// forced out (demoted to registered or dropped) since boot.
	Evictions int64 `json:"evictions"`
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	writeETagJSON(w, r, graphsResponse{Graphs: s.reg.List(), Evictions: s.reg.Evictions()})
}

// --- GET /v1/graphs/{id}/stats -------------------------------------------

type statsResponse struct {
	ID          string         `json:"id"`
	Meta        store.Meta     `json:"meta"`
	Nodes       int            `json:"nodes"`
	Rels        int            `json:"rels"`
	NodesByType map[string]int `json:"nodes_by_type"`
	RelsByType  map[string]int `json:"rels_by_type"`
	// Backend reports how this graph is served: "mem" (heap-resident
	// parse) or "mmap" (zero-copy view of the snapshot file).
	Backend string `json:"backend"`
	// Loaded reports whether the generic property store is resident on
	// the heap; an mmap graph serving purely off its index reports false.
	Loaded bool `json:"loaded"`
	// MappedBytes is the size of the backing memory-mapped region (page
	// cache, not heap); 0 for heap-resident graphs.
	MappedBytes int64 `json:"mapped_bytes,omitempty"`
	// Evictions is the registry-wide count of capacity evictions.
	Evictions int64 `json:"evictions"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	be, ok := s.graphFor(w, r.PathValue("id"))
	if !ok {
		return
	}
	st := be.GraphStats()
	writeETagJSON(w, r, statsResponse{
		ID:          r.PathValue("id"),
		Meta:        be.Meta(),
		Nodes:       st.Nodes,
		Rels:        st.Rels,
		NodesByType: st.NodesByType,
		RelsByType:  st.RelsByType,
		Backend:     be.Kind(),
		Loaded:      be.Loaded(),
		MappedBytes: be.MappedBytes(),
		Evictions:   s.reg.Evictions(),
	})
}

// --- POST /v1/query ------------------------------------------------------

type queryRequest struct {
	Graph string `json:"graph"`
	Query string `json:"query"`
}

type queryResponse struct {
	Graph   string   `json:"graph"`
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
	// Truncated reports that the query produced more rows than the
	// server's MaxQueryRows cap and the tail was dropped. Add a LIMIT (or
	// an aggregate) to the query to get a complete answer.
	Truncated bool   `json:"truncated"`
	Text      string `json:"text"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// Registered graphs are immutable, so an identical request against
	// the same graph always encodes to the same bytes — serve them from
	// the response cache when a previous request already paid for them.
	key := canonicalKey("query", req.Graph, &req)
	if body, ok := s.resp.get("query", key); ok {
		writeRawJSON(w, http.StatusOK, body)
		return
	}
	be, ok := s.graphFor(w, req.Graph)
	if !ok {
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, `missing "query"`)
		return
	}
	// Pull rows through the streaming cursor so the cap also bounds the
	// work done: for plannable streaming queries the executor stops
	// matching as soon as the response is full. The backend satisfies
	// cypher.Source, so an mmap graph plans and streams straight off its
	// index and only pays the store parse when the query needs it.
	cur, err := cypher.RunAnyCursorSource(be, req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "query failed: %v", err)
		return
	}
	rows := make([][]any, 0, 64)
	truncated := false
	for {
		row, err := cur.Next()
		if err != nil {
			writeError(w, http.StatusBadRequest, "query failed: %v", err)
			return
		}
		if row == nil {
			break
		}
		if len(rows) == s.maxRows {
			truncated = true
			break
		}
		rows = append(rows, row)
	}
	res := &cypher.Result{Columns: cur.Columns, Rows: rows}
	s.writeCached(w, "query", req.Graph, key, queryResponse{
		Graph:     req.Graph,
		Columns:   cur.Columns,
		Rows:      rows,
		Truncated: truncated,
		Text:      res.Format(),
	})
}

// canonicalKey derives the response-cache key from a decoded request:
// re-marshaling the struct canonicalizes field order, whitespace, and
// absent-vs-zero fields, so every encoding of the same request maps to
// one entry.
func canonicalKey(endpoint, graph string, req any) string {
	canon, _ := json.Marshal(req) // flat request structs cannot fail
	return respKey(endpoint, graph, canon)
}

// writeCached encodes a 200 response once, stores the bytes in the
// response cache, and writes them out. Only full successes get here —
// error paths bypass the cache entirely.
func (s *Server) writeCached(w http.ResponseWriter, endpoint, graph, key string, v any) {
	buf := encodeJSON(v)
	body := append([]byte(nil), buf.Bytes()...)
	encPool.Put(buf)
	s.resp.put(graph, key, body)
	writeRawJSON(w, http.StatusOK, body)
}

// --- POST /v1/chains -----------------------------------------------------

// chainsRequest parameterizes a path-finder run over a stored graph —
// the researcher-driven RQ4 workflow: pick the sinks (by name and/or
// type), optionally override their Trigger_Condition, and restrict the
// accepting sources, all without rebuilding the graph.
type chainsRequest struct {
	Graph string `json:"graph"`
	// MaxDepth/MaxChains/VisitBudget/Workers mirror core.Options; zero
	// selects each knob's default.
	MaxDepth    int `json:"max_depth"`
	MaxChains   int `json:"max_chains"`
	VisitBudget int `json:"visit_budget"`
	Workers     int `json:"workers"`
	// SinkType restricts seeds to sinks of this SINK_TYPE (EXEC, JNDI, …).
	SinkType string `json:"sink_type"`
	// SinkNames seeds the search from these methods, matched against the
	// NAME and then METHOD_NAME properties. Empty means every IS_SINK node.
	SinkNames []string `json:"sink_names"`
	// TC overrides the Trigger_Condition of every seed (required when
	// seeding from methods that are not registered sinks).
	TC []int `json:"tc"`
	// SourceNames accepts only sources with these METHOD_NAMEs; empty
	// accepts every IS_SOURCE node.
	SourceNames []string `json:"source_names"`
	// DispatchSources additionally accepts any target of a DISPATCH edge
	// as a chain entry point. Only meaningful on graphs built with the
	// serialization-dispatch pass; on other graphs it has no effect.
	DispatchSources bool `json:"dispatch_sources"`
}

// edgeJSON describes one step of a chain: the relationship type the
// search walked and the synthesis pass that created it.
type edgeJSON struct {
	Kind       string `json:"kind"`
	Provenance string `json:"provenance"`
}

type chainJSON struct {
	Names    []string   `json:"names"`
	Nodes    []int64    `json:"nodes"`
	SinkType string     `json:"sink_type"`
	TCs      [][]int    `json:"tcs"`
	Edges    []edgeJSON `json:"edges"`
}

type chainsResponse struct {
	Graph      string      `json:"graph"`
	Chains     []chainJSON `json:"chains"`
	Truncated  bool        `json:"truncated"`
	Expansions int         `json:"expansions"`
}

func (s *Server) handleChains(w http.ResponseWriter, r *http.Request) {
	var req chainsRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	key := canonicalKey("chains", req.Graph, &req)
	if body, ok := s.resp.get("chains", key); ok {
		writeRawJSON(w, http.StatusOK, body)
		return
	}
	be, ok := s.graphFor(w, req.Graph)
	if !ok {
		return
	}
	opts := pathfinder.Options{
		MaxDepth:        req.MaxDepth,
		MaxChains:       req.MaxChains,
		VisitBudget:     req.VisitBudget,
		Workers:         req.Workers,
		DispatchSources: req.DispatchSources,
	}
	if opts.Workers == 0 {
		opts.Workers = s.workers
	}
	if len(req.TC) > 0 {
		opts.SinkTC = req.TC
	}

	// Everything below runs on the compiled index alone — sink
	// resolution, source matching, the search itself — so a memory-mapped
	// graph answers /v1/chains without ever parsing its store, and both
	// backends execute the identical code path.
	ix := be.Index()
	sinkNodes, err := resolveSinks(ix, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if sinkNodes != nil {
		opts.SinkNodes = sinkNodes
	}
	opts.SourceMethodNames = req.SourceNames

	res, err := pathfinder.FindIndex(ix, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "search failed: %v", err)
		return
	}
	out := chainsResponse{Graph: req.Graph, Chains: make([]chainJSON, 0, len(res.Chains)), Truncated: res.Truncated, Expansions: res.Expansions}
	for _, c := range res.Chains {
		cj := chainJSON{
			Names: c.Names, SinkType: c.SinkType,
			Nodes: make([]int64, len(c.Nodes)),
			TCs:   make([][]int, len(c.TCs)),
			Edges: make([]edgeJSON, len(c.Edges)),
		}
		for i, id := range c.Nodes {
			cj.Nodes[i] = int64(id)
		}
		for i, tc := range c.TCs {
			cj.TCs[i] = append(make([]int, 0, len(tc)), tc...)
		}
		for i, kind := range c.Edges {
			cj.Edges[i] = edgeJSON{Kind: kind, Provenance: edges.Provenance(kind)}
		}
		out.Chains = append(out.Chains, cj)
	}
	s.writeCached(w, "chains", req.Graph, key, out)
}

// resolveSinks turns the request's sink selection into seed node IDs,
// in ascending ID order for determinism. A nil result means "use the
// pathfinder default" (every IS_SINK node). Resolution runs entirely
// on the index's interned columns: the NAME/METHOD_NAME/SINK_TYPE
// columns carry exactly the string-typed property values, so the
// results match the former store-based lookups node for node.
func resolveSinks(ix *searchindex.Index, req chainsRequest) ([]graphdb.ID, error) {
	if len(req.SinkNames) == 0 && req.SinkType == "" {
		return nil, nil
	}
	method := ix.LabelBits(cpg.LabelMethod)
	var seeds []graphdb.ID
	if len(req.SinkNames) > 0 {
		seen := make(map[graphdb.ID]bool)
		for _, name := range req.SinkNames {
			ids := methodNodes(ix, method, func(v int32) bool {
				return ix.HasName(v) && ix.Name(v) == name
			})
			if len(ids) == 0 {
				ids = methodNodes(ix, method, func(v int32) bool {
					return ix.HasMethodName(v) && ix.MethodName(v) == name
				})
			}
			if len(ids) == 0 {
				return nil, fmt.Errorf("sink %q matches no method node (tried NAME and METHOD_NAME)", name)
			}
			for _, id := range ids {
				if !seen[id] {
					seen[id] = true
					seeds = append(seeds, id)
				}
			}
		}
	} else {
		seeds = methodNodes(ix, method, ix.IsSink)
	}
	if req.SinkType != "" {
		kept := seeds[:0]
		for _, id := range seeds {
			v := ix.IdxOf(id)
			if v >= 0 && ix.HasSinkType(v) && ix.SinkType(v) == req.SinkType {
				kept = append(kept, id)
			}
		}
		seeds = kept
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	if seeds == nil {
		seeds = []graphdb.ID{}
	}
	return seeds, nil
}

// methodNodes collects the IDs of label-bitset members satisfying pred,
// in ascending node order.
func methodNodes(ix *searchindex.Index, label []uint64, pred func(int32) bool) []graphdb.ID {
	var out []graphdb.ID
	for wi, w := range label {
		for ; w != 0; w &= w - 1 {
			v := int32(wi<<6 | bits.TrailingZeros64(w))
			if pred(v) {
				out = append(out, ix.IDOf(v))
			}
		}
	}
	return out
}

// --- POST /v1/analyze ----------------------------------------------------

type analyzeFile struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

type analyzeRequest struct {
	// Name registers the resulting snapshot in the graph registry.
	Name string `json:"name"`
	// Files is the mini-Java corpus to compile (one archive).
	Files []analyzeFile `json:"files"`
	// WithRT includes the modeled Java runtime (default corpus for every
	// CLI run; defaults to true here too via pointer-less convention:
	// the zero value false means "omit" only when with_rt was given).
	WithRT *bool `json:"with_rt"`
	// Mechanism selects the deserialization sources: "native" (default)
	// or "xstream".
	Mechanism string `json:"mechanism"`
	Workers   int    `json:"workers"`
	MaxDepth  int    `json:"max_depth"`
	// Wait blocks the request until the job is terminal and answers 200
	// with the final job state — the synchronous convenience wrapper
	// over the async queue (the build still runs on the worker pool, so
	// it never blocks other requests).
	Wait bool `json:"wait"`
}

// analyzeCacheJSON is the wire form of core.CacheStats: enough to see the
// hit rates without exposing internal struct layouts.
type analyzeCacheJSON struct {
	Files           int    `json:"files"`
	ParseHits       int    `json:"parse_hits"`
	BodyHits        int    `json:"body_hits"`
	TaintComps      int    `json:"taint_components"`
	TaintCompHits   int    `json:"taint_component_hits"`
	MethodsReused   int    `json:"methods_reused"`
	MethodsAnalyzed int    `json:"methods_analyzed"`
	GraphReuse      string `json:"graph_reuse"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req analyzeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, `missing "name" for the new graph`)
		return
	}
	if len(req.Files) == 0 {
		writeError(w, http.StatusBadRequest, `missing "files": nothing to analyze`)
		return
	}
	var sources sinks.SourceConfig
	switch req.Mechanism {
	case "", "native":
	case "xstream":
		sources = sinks.XStreamSources()
	default:
		writeError(w, http.StatusBadRequest, "unknown mechanism %q (want native or xstream)", req.Mechanism)
		return
	}

	ar := javasrc.ArchiveSource{Name: req.Name + ".jar"}
	for _, f := range req.Files {
		ar.Files = append(ar.Files, javasrc.File{Name: f.Name, Source: f.Source})
	}
	archives := []javasrc.ArchiveSource{ar}
	if req.WithRT == nil || *req.WithRT {
		archives = append([]javasrc.ArchiveSource{corpus.RT()}, archives...)
	}

	workers := req.Workers
	if workers == 0 {
		workers = s.workers
	}
	engine := core.New(core.Options{Sources: sources, Workers: workers, MaxDepth: req.MaxDepth})

	// Submission costs one content hash of the corpus, never a build:
	// identical in-flight submissions coalesce into the running job, a
	// corpus already built and still registered resolves from the result
	// cache, and everything else queues for the worker pool — or is
	// pushed back with 429 when the queue is full.
	fp := engine.ResultFingerprint(archives)
	j, err := s.jobs.submit(s.reg, req.Name, fp, engine, archives, sources, len(req.Files))
	if err != nil {
		var se *submitErr
		if errors.As(err, &se) {
			writeError(w, se.status, "%s", se.msg)
		} else {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	if req.Wait {
		<-j.done
		writeJSON(w, http.StatusOK, s.jobs.jobJSON(j))
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, s.jobs.jobJSON(j))
}

// --- GET /v1/jobs, GET /v1/jobs/{id} -------------------------------------

// jobJSON is the wire form of one analyze job. Graph, stats, chains,
// and cache are meaningful once status is "done"; error once "failed".
type jobJSON struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Status string `json:"status"`
	Graph  string `json:"graph,omitempty"`
	Chains int    `json:"chains"`
	// Stats is the built graph's node/edge census (done jobs only).
	Stats *cpg.Stats `json:"stats,omitempty"`
	// Cache reports what the cross-build analysis cache reused for this
	// build; absent on jobs resolved without building.
	Cache   *analyzeCacheJSON `json:"cache,omitempty"`
	Evicted string            `json:"evicted,omitempty"`
	Error   string            `json:"error,omitempty"`
	// Coalesced counts later identical submissions merged into this
	// build (singleflight).
	Coalesced int `json:"coalesced,omitempty"`
	// ResultCached marks a repeat upload resolved instantly from the
	// fingerprint-keyed result cache — no compile, no queue slot.
	ResultCached bool `json:"result_cached,omitempty"`
	// ElapsedMs is submit-to-terminal wall clock (0 while in flight).
	ElapsedMs int64 `json:"elapsed_ms,omitempty"`
}

// jobJSON snapshots one job's state under the manager lock.
func (m *jobManager) jobJSON(j *job) jobJSON {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := jobJSON{
		ID:           j.id,
		Name:         j.name,
		Status:       string(j.status),
		Graph:        j.graphID,
		Chains:       j.chains,
		Cache:        j.cacheInfo,
		Evicted:      j.evicted,
		Error:        j.err,
		Coalesced:    j.coalesced,
		ResultCached: j.cached,
		ElapsedMs:    j.elapsed.Milliseconds(),
	}
	if j.status == jobDone {
		st := j.stats
		out.Stats = &st
	}
	return out
}

type jobsResponse struct {
	Jobs []jobJSON `json:"jobs"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	m := s.jobs
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := jobsResponse{Jobs: make([]jobJSON, 0, len(ids))}
	for _, id := range ids {
		if j, ok := m.get(id); ok {
			out.Jobs = append(out.Jobs, m.jobJSON(j))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "job %q not found (see GET /v1/jobs)", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.jobJSON(j))
}

// --- GET /v1/stats --------------------------------------------------------

// serverStatsResponse exposes the serving-tier counters: job queue,
// response cache, and registry. The serve bench reads hit rates here.
type serverStatsResponse struct {
	Jobs      jobStatsJSON   `json:"jobs"`
	RespCache respCacheStats `json:"resp_cache"`
	Graphs    int            `json:"graphs"`
	Evictions int64          `json:"evictions"`
}

func (s *Server) handleServerStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, serverStatsResponse{
		Jobs:      s.jobs.statsJSON(),
		RespCache: s.resp.stats(),
		Graphs:    s.reg.Len(),
		Evictions: s.reg.Evictions(),
	})
}
