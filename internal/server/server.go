// Package server is the HTTP graph-query service over stored code
// property graphs — the long-lived counterpart of the paper's Neo4j
// deployment (§II-B): build and persist a CPG once, then let many
// clients query it concurrently. A server loads snapshots (written by
// `tabby -save` / core.SaveSnapshot) into an LRU-bounded registry of
// immutable stores and exposes:
//
//	GET  /v1/graphs                 list loaded graphs
//	GET  /v1/graphs/{id}/stats      node/edge statistics + metadata
//	POST /v1/query                  Cypher-lite (incl. CALL procedures)
//	POST /v1/chains                 path-finder search with TC/sink/source parameters
//	POST /v1/analyze                compile an uploaded mini-Java corpus into a new snapshot
//
// Analyses share one content-addressed cache across requests, so
// re-uploading a corpus that overlaps a previous one (the edit-analyze
// loop) reuses compiled classes and controllability summaries whose
// inputs are unchanged.
//
// Every response is JSON. Queries and searches run against frozen
// stores, so concurrent requests are safe and two identical requests
// always produce byte-identical responses.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tabby/internal/backend"
	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/cpg"
	"tabby/internal/cypher"
	"tabby/internal/graphdb"
	"tabby/internal/javasrc"
	"tabby/internal/pathfinder"
	"tabby/internal/searchindex"
	"tabby/internal/sinks"
	"tabby/internal/store"
)

// Options configures a Server.
type Options struct {
	// MaxGraphs bounds the snapshot registry (LRU eviction beyond it);
	// zero means DefaultMaxGraphs.
	MaxGraphs int
	// Workers is the default worker count for searches and analyses when
	// a request does not specify its own (same semantics as
	// core.Options.Workers).
	Workers int
	// MaxRequestBytes caps request bodies; zero means 32 MiB.
	MaxRequestBytes int64
	// MaxQueryRows bounds how many rows /v1/query returns per request;
	// queries producing more are cut off and the response marked
	// truncated. Zero means DefaultMaxQueryRows.
	MaxQueryRows int
}

const defaultMaxRequestBytes = 32 << 20

// DefaultMaxQueryRows is the /v1/query row cap when Options.MaxQueryRows
// is zero. Streaming cursors stop pulling rows at the cap, so a
// pathological `MATCH (a), (b), (c)` cross product costs the server at
// most this many rows of work, not the full product.
const DefaultMaxQueryRows = 10000

// Server serves stored graphs over HTTP.
type Server struct {
	reg      *Registry
	workers  int
	maxBody  int64
	maxRows  int
	analyzeC chan struct{} // serializes /v1/analyze (CPU-bound builds)
	// cache persists compile artifacts and controllability summaries
	// across /v1/analyze requests: re-analyzing a corpus that shares
	// classes with a previous upload reuses every summary whose dependency
	// cone is unchanged. Guarded by analyzeC (it is not concurrent-safe);
	// content-addressing keeps it sound across requests with different
	// mechanisms or options.
	cache *core.AnalysisCache
}

// New creates a server with an empty registry.
func New(opts Options) *Server {
	if opts.MaxRequestBytes <= 0 {
		opts.MaxRequestBytes = defaultMaxRequestBytes
	}
	if opts.MaxQueryRows <= 0 {
		opts.MaxQueryRows = DefaultMaxQueryRows
	}
	s := &Server{
		reg:      NewRegistry(opts.MaxGraphs),
		workers:  opts.Workers,
		maxBody:  opts.MaxRequestBytes,
		maxRows:  opts.MaxQueryRows,
		analyzeC: make(chan struct{}, 1),
		cache:    core.NewAnalysisCache(),
	}
	s.analyzeC <- struct{}{}
	return s
}

// Registry exposes the snapshot registry (the CLI preloads it; tests
// inspect it).
func (s *Server) Registry() *Registry { return s.reg }

// LoadSnapshotFile opens one snapshot file eagerly and registers it,
// returning the id it was registered under: the snapshot's stored
// name, or the file's base name (minus extension) when the snapshot
// carries none. Version-3 snapshots open as zero-copy mmap views;
// older ones are parsed onto the heap.
func (s *Server) LoadSnapshotFile(path string) (string, error) {
	be, err := backend.Open(path)
	if err != nil {
		return "", err
	}
	id := be.Meta().Name
	if id == "" {
		id = snapshotID(path)
	}
	if _, err := s.reg.AddBackend(id, be, path); err != nil {
		return "", err
	}
	return id, nil
}

// RegisterSnapshotDir registers every snapshot file in dir without
// opening any of them — each opens lazily on its first request. Ids
// are the file base names minus extension (reading a stored name would
// defeat the point of not opening). Staging files from interrupted
// atomic writes and dotfiles are skipped. Returns how many files were
// registered.
func (s *Server) RegisterSnapshotDir(dir string) (int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || strings.HasPrefix(name, ".") || store.IsTempPath(name) {
			continue
		}
		path := filepath.Join(dir, name)
		if err := s.reg.Register(snapshotID(path), path); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// snapshotID derives a registry id from a snapshot file path.
func snapshotID(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	mux.HandleFunc("GET /v1/graphs/{id}/stats", s.handleStats)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/chains", s.handleChains)
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	return mux
}

// --- shared helpers ------------------------------------------------------

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) graphFor(w http.ResponseWriter, id string) (backend.Backend, bool) {
	if id == "" {
		writeError(w, http.StatusBadRequest, `missing "graph" (see GET /v1/graphs for loaded ids)`)
		return nil, false
	}
	be, err := s.reg.Get(id)
	if errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, "graph %q is not loaded (see GET /v1/graphs)", id)
		return nil, false
	}
	if err != nil {
		// Registered but unopenable: the snapshot file is corrupt or gone.
		writeError(w, http.StatusInternalServerError, "%v", err)
		return nil, false
	}
	return be, true
}

// --- GET /v1/graphs ------------------------------------------------------

type graphsResponse struct {
	Graphs []GraphInfo `json:"graphs"`
	// Evictions counts heap-resident graphs the registry capacity has
	// forced out (demoted to registered or dropped) since boot.
	Evictions int64 `json:"evictions"`
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, graphsResponse{Graphs: s.reg.List(), Evictions: s.reg.Evictions()})
}

// --- GET /v1/graphs/{id}/stats -------------------------------------------

type statsResponse struct {
	ID          string         `json:"id"`
	Meta        store.Meta     `json:"meta"`
	Nodes       int            `json:"nodes"`
	Rels        int            `json:"rels"`
	NodesByType map[string]int `json:"nodes_by_type"`
	RelsByType  map[string]int `json:"rels_by_type"`
	// Backend reports how this graph is served: "mem" (heap-resident
	// parse) or "mmap" (zero-copy view of the snapshot file).
	Backend string `json:"backend"`
	// Loaded reports whether the generic property store is resident on
	// the heap; an mmap graph serving purely off its index reports false.
	Loaded bool `json:"loaded"`
	// MappedBytes is the size of the backing memory-mapped region (page
	// cache, not heap); 0 for heap-resident graphs.
	MappedBytes int64 `json:"mapped_bytes,omitempty"`
	// Evictions is the registry-wide count of capacity evictions.
	Evictions int64 `json:"evictions"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	be, ok := s.graphFor(w, r.PathValue("id"))
	if !ok {
		return
	}
	st := be.GraphStats()
	writeJSON(w, http.StatusOK, statsResponse{
		ID:          r.PathValue("id"),
		Meta:        be.Meta(),
		Nodes:       st.Nodes,
		Rels:        st.Rels,
		NodesByType: st.NodesByType,
		RelsByType:  st.RelsByType,
		Backend:     be.Kind(),
		Loaded:      be.Loaded(),
		MappedBytes: be.MappedBytes(),
		Evictions:   s.reg.Evictions(),
	})
}

// --- POST /v1/query ------------------------------------------------------

type queryRequest struct {
	Graph string `json:"graph"`
	Query string `json:"query"`
}

type queryResponse struct {
	Graph   string   `json:"graph"`
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
	// Truncated reports that the query produced more rows than the
	// server's MaxQueryRows cap and the tail was dropped. Add a LIMIT (or
	// an aggregate) to the query to get a complete answer.
	Truncated bool   `json:"truncated"`
	Text      string `json:"text"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	be, ok := s.graphFor(w, req.Graph)
	if !ok {
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, `missing "query"`)
		return
	}
	// Pull rows through the streaming cursor so the cap also bounds the
	// work done: for plannable streaming queries the executor stops
	// matching as soon as the response is full. The backend satisfies
	// cypher.Source, so an mmap graph plans and streams straight off its
	// index and only pays the store parse when the query needs it.
	cur, err := cypher.RunAnyCursorSource(be, req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "query failed: %v", err)
		return
	}
	rows := [][]any{}
	truncated := false
	for {
		row, err := cur.Next()
		if err != nil {
			writeError(w, http.StatusBadRequest, "query failed: %v", err)
			return
		}
		if row == nil {
			break
		}
		if len(rows) == s.maxRows {
			truncated = true
			break
		}
		rows = append(rows, row)
	}
	res := &cypher.Result{Columns: cur.Columns, Rows: rows}
	writeJSON(w, http.StatusOK, queryResponse{
		Graph:     req.Graph,
		Columns:   cur.Columns,
		Rows:      rows,
		Truncated: truncated,
		Text:      res.Format(),
	})
}

// --- POST /v1/chains -----------------------------------------------------

// chainsRequest parameterizes a path-finder run over a stored graph —
// the researcher-driven RQ4 workflow: pick the sinks (by name and/or
// type), optionally override their Trigger_Condition, and restrict the
// accepting sources, all without rebuilding the graph.
type chainsRequest struct {
	Graph string `json:"graph"`
	// MaxDepth/MaxChains/VisitBudget/Workers mirror core.Options; zero
	// selects each knob's default.
	MaxDepth    int `json:"max_depth"`
	MaxChains   int `json:"max_chains"`
	VisitBudget int `json:"visit_budget"`
	Workers     int `json:"workers"`
	// SinkType restricts seeds to sinks of this SINK_TYPE (EXEC, JNDI, …).
	SinkType string `json:"sink_type"`
	// SinkNames seeds the search from these methods, matched against the
	// NAME and then METHOD_NAME properties. Empty means every IS_SINK node.
	SinkNames []string `json:"sink_names"`
	// TC overrides the Trigger_Condition of every seed (required when
	// seeding from methods that are not registered sinks).
	TC []int `json:"tc"`
	// SourceNames accepts only sources with these METHOD_NAMEs; empty
	// accepts every IS_SOURCE node.
	SourceNames []string `json:"source_names"`
}

type chainJSON struct {
	Names    []string `json:"names"`
	Nodes    []int64  `json:"nodes"`
	SinkType string   `json:"sink_type"`
	TCs      [][]int  `json:"tcs"`
}

type chainsResponse struct {
	Graph      string      `json:"graph"`
	Chains     []chainJSON `json:"chains"`
	Truncated  bool        `json:"truncated"`
	Expansions int         `json:"expansions"`
}

func (s *Server) handleChains(w http.ResponseWriter, r *http.Request) {
	var req chainsRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	be, ok := s.graphFor(w, req.Graph)
	if !ok {
		return
	}
	opts := pathfinder.Options{
		MaxDepth:    req.MaxDepth,
		MaxChains:   req.MaxChains,
		VisitBudget: req.VisitBudget,
		Workers:     req.Workers,
	}
	if opts.Workers == 0 {
		opts.Workers = s.workers
	}
	if len(req.TC) > 0 {
		opts.SinkTC = req.TC
	}

	// Everything below runs on the compiled index alone — sink
	// resolution, source matching, the search itself — so a memory-mapped
	// graph answers /v1/chains without ever parsing its store, and both
	// backends execute the identical code path.
	ix := be.Index()
	sinkNodes, err := resolveSinks(ix, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if sinkNodes != nil {
		opts.SinkNodes = sinkNodes
	}
	opts.SourceMethodNames = req.SourceNames

	res, err := pathfinder.FindIndex(ix, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "search failed: %v", err)
		return
	}
	out := chainsResponse{Graph: req.Graph, Chains: make([]chainJSON, 0, len(res.Chains)), Truncated: res.Truncated, Expansions: res.Expansions}
	for _, c := range res.Chains {
		cj := chainJSON{Names: c.Names, SinkType: c.SinkType, Nodes: make([]int64, len(c.Nodes)), TCs: make([][]int, len(c.TCs))}
		for i, id := range c.Nodes {
			cj.Nodes[i] = int64(id)
		}
		for i, tc := range c.TCs {
			cj.TCs[i] = append([]int{}, tc...)
		}
		out.Chains = append(out.Chains, cj)
	}
	writeJSON(w, http.StatusOK, out)
}

// resolveSinks turns the request's sink selection into seed node IDs,
// in ascending ID order for determinism. A nil result means "use the
// pathfinder default" (every IS_SINK node). Resolution runs entirely
// on the index's interned columns: the NAME/METHOD_NAME/SINK_TYPE
// columns carry exactly the string-typed property values, so the
// results match the former store-based lookups node for node.
func resolveSinks(ix *searchindex.Index, req chainsRequest) ([]graphdb.ID, error) {
	if len(req.SinkNames) == 0 && req.SinkType == "" {
		return nil, nil
	}
	method := ix.LabelBits(cpg.LabelMethod)
	var seeds []graphdb.ID
	if len(req.SinkNames) > 0 {
		seen := make(map[graphdb.ID]bool)
		for _, name := range req.SinkNames {
			ids := methodNodes(ix, method, func(v int32) bool {
				return ix.HasName(v) && ix.Name(v) == name
			})
			if len(ids) == 0 {
				ids = methodNodes(ix, method, func(v int32) bool {
					return ix.HasMethodName(v) && ix.MethodName(v) == name
				})
			}
			if len(ids) == 0 {
				return nil, fmt.Errorf("sink %q matches no method node (tried NAME and METHOD_NAME)", name)
			}
			for _, id := range ids {
				if !seen[id] {
					seen[id] = true
					seeds = append(seeds, id)
				}
			}
		}
	} else {
		seeds = methodNodes(ix, method, ix.IsSink)
	}
	if req.SinkType != "" {
		kept := seeds[:0]
		for _, id := range seeds {
			v := ix.IdxOf(id)
			if v >= 0 && ix.HasSinkType(v) && ix.SinkType(v) == req.SinkType {
				kept = append(kept, id)
			}
		}
		seeds = kept
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	if seeds == nil {
		seeds = []graphdb.ID{}
	}
	return seeds, nil
}

// methodNodes collects the IDs of label-bitset members satisfying pred,
// in ascending node order.
func methodNodes(ix *searchindex.Index, label []uint64, pred func(int32) bool) []graphdb.ID {
	var out []graphdb.ID
	for wi, w := range label {
		for ; w != 0; w &= w - 1 {
			v := int32(wi<<6 | bits.TrailingZeros64(w))
			if pred(v) {
				out = append(out, ix.IDOf(v))
			}
		}
	}
	return out
}

// --- POST /v1/analyze ----------------------------------------------------

type analyzeFile struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

type analyzeRequest struct {
	// Name registers the resulting snapshot in the graph registry.
	Name string `json:"name"`
	// Files is the mini-Java corpus to compile (one archive).
	Files []analyzeFile `json:"files"`
	// WithRT includes the modeled Java runtime (default corpus for every
	// CLI run; defaults to true here too via pointer-less convention:
	// the zero value false means "omit" only when with_rt was given).
	WithRT *bool `json:"with_rt"`
	// Mechanism selects the deserialization sources: "native" (default)
	// or "xstream".
	Mechanism string `json:"mechanism"`
	Workers   int    `json:"workers"`
	MaxDepth  int    `json:"max_depth"`
}

type analyzeResponse struct {
	ID      string    `json:"id"`
	Stats   cpg.Stats `json:"stats"`
	Chains  int       `json:"chains"`
	Evicted string    `json:"evicted,omitempty"`
	// Cache reports what the server's cross-request analysis cache reused
	// for this build.
	Cache *analyzeCacheJSON `json:"cache,omitempty"`
}

// analyzeCacheJSON is the wire form of core.CacheStats: enough to see the
// hit rates without exposing internal struct layouts.
type analyzeCacheJSON struct {
	Files           int    `json:"files"`
	ParseHits       int    `json:"parse_hits"`
	BodyHits        int    `json:"body_hits"`
	TaintComps      int    `json:"taint_components"`
	TaintCompHits   int    `json:"taint_component_hits"`
	MethodsReused   int    `json:"methods_reused"`
	MethodsAnalyzed int    `json:"methods_analyzed"`
	GraphReuse      string `json:"graph_reuse"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req analyzeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, `missing "name" for the new graph`)
		return
	}
	if s.reg.Has(req.Name) {
		writeError(w, http.StatusConflict, "graph %q already loaded", req.Name)
		return
	}
	if len(req.Files) == 0 {
		writeError(w, http.StatusBadRequest, `missing "files": nothing to analyze`)
		return
	}
	var sources sinks.SourceConfig
	switch req.Mechanism {
	case "", "native":
	case "xstream":
		sources = sinks.XStreamSources()
	default:
		writeError(w, http.StatusBadRequest, "unknown mechanism %q (want native or xstream)", req.Mechanism)
		return
	}

	ar := javasrc.ArchiveSource{Name: req.Name + ".jar"}
	for _, f := range req.Files {
		ar.Files = append(ar.Files, javasrc.File{Name: f.Name, Source: f.Source})
	}
	archives := []javasrc.ArchiveSource{ar}
	if req.WithRT == nil || *req.WithRT {
		archives = append([]javasrc.ArchiveSource{corpus.RT()}, archives...)
	}

	workers := req.Workers
	if workers == 0 {
		workers = s.workers
	}
	engine := core.New(core.Options{Sources: sources, Workers: workers, MaxDepth: req.MaxDepth})

	// Builds are CPU-bound and share the server's analysis cache, so one
	// at a time: serialization both keeps the service responsive and
	// guards the cache. Frozen previous graphs decline in-place deltas
	// automatically, so only the compile and summary layers carry over —
	// exactly the reuse that is safe between independent uploads.
	<-s.analyzeC
	rep, err := engine.AnalyzeIncremental(s.cache, archives)
	s.analyzeC <- struct{}{}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "analyze failed: %v", err)
		return
	}

	rep.Graph.DB.Freeze()
	snap := &store.Snapshot{
		Meta: store.Meta{
			Name:        req.Name,
			Corpus:      fmt.Sprintf("uploaded corpus (%d files)", len(req.Files)),
			Stats:       rep.Graph.Stats,
			TotalCalls:  rep.Graph.Taint.TotalCalls,
			PrunedCalls: rep.Graph.Taint.PrunedCalls,
		},
		DB:      rep.Graph.DB,
		Sinks:   sinks.Default(),
		Sources: sources,
	}
	if len(snap.Sources.MethodNames) == 0 {
		snap.Sources = sinks.DefaultSources()
	}
	evicted, err := s.reg.Add(req.Name, snap)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	resp := analyzeResponse{
		ID:      req.Name,
		Stats:   rep.Graph.Stats,
		Chains:  len(rep.Chains),
		Evicted: evicted,
	}
	if cs := rep.Timings.Cache; cs != nil {
		resp.Cache = &analyzeCacheJSON{
			Files:           cs.Compile.Files,
			ParseHits:       cs.Compile.ParseHits,
			BodyHits:        cs.Compile.BodyHits,
			TaintComps:      cs.Taint.Components,
			TaintCompHits:   cs.Taint.ComponentHits,
			MethodsReused:   cs.Taint.MethodsReused,
			MethodsAnalyzed: cs.Taint.MethodsAnalyzed,
			GraphReuse:      cs.GraphReuse,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
