package server

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tabby/internal/backend"
	"tabby/internal/graphdb"
	"tabby/internal/store"
)

func tinySnapshot(name string) *store.Snapshot {
	db := graphdb.New()
	db.CreateNode([]string{"Class"}, graphdb.Props{"NAME": name})
	db.Freeze()
	return &store.Snapshot{Meta: store.Meta{Name: name, Corpus: "test"}, DB: db}
}

func TestRegistryAddGetList(t *testing.T) {
	r := NewRegistry(4)
	if _, err := r.Add("", tinySnapshot("x")); err == nil {
		t.Error("empty id must error")
	}
	if _, err := r.Add("a", nil); err == nil {
		t.Error("nil snapshot must error")
	}
	if _, err := r.Add("a", tinySnapshot("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("a", tinySnapshot("a")); err == nil {
		t.Error("duplicate id must error")
	}
	if _, err := r.Get("a"); err != nil {
		t.Errorf("Get(a) failed: %v", err)
	}
	if _, err := r.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) = %v, want ErrNotFound", err)
	}
	if _, err := r.Add("b", tinySnapshot("b")); err != nil {
		t.Fatal(err)
	}
	list := r.List()
	if len(list) != 2 || list[0].ID != "a" || list[1].ID != "b" {
		t.Errorf("List() = %+v", list)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	r := NewRegistry(2)
	if _, err := r.Add("a", tinySnapshot("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("b", tinySnapshot("b")); err != nil {
		t.Fatal(err)
	}
	// Touch "a" so "b" becomes the least recently used.
	if _, err := r.Get("a"); err != nil {
		t.Fatal("Get(a) failed")
	}
	evicted, err := r.Add("c", tinySnapshot("c"))
	if err != nil {
		t.Fatal(err)
	}
	if evicted != "b" {
		t.Errorf("evicted %q, want %q", evicted, "b")
	}
	// "b" was added from memory (no backing file), so eviction drops it
	// outright rather than demoting it to registered.
	if _, err := r.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(b) after eviction = %v, want ErrNotFound", err)
	}
	if r.Len() != 2 {
		t.Errorf("Len() = %d, want 2", r.Len())
	}
	if r.Evictions() != 1 {
		t.Errorf("Evictions() = %d, want 1", r.Evictions())
	}
}

func writeTinySnapshot(t *testing.T, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name+".tsnap")
	if err := store.WriteFile(path, tinySnapshot(name)); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRegistryLazyOpen: a registered file costs nothing until the first
// Get, which opens it; a registered-but-broken file errors on Get yet
// stays registered, so replacing the file (snapshot writes are atomic
// renames) makes the next Get succeed.
func TestRegistryLazyOpen(t *testing.T) {
	r := NewRegistry(4)
	path := writeTinySnapshot(t, "lazy")
	if err := r.Register("", path); err == nil {
		t.Error("empty id must error")
	}
	if err := r.Register("lazy", ""); err == nil {
		t.Error("empty path must error")
	}
	if err := r.Register("lazy", path); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("lazy", path); err == nil {
		t.Error("duplicate registration must error")
	}
	if !r.Has("lazy") {
		t.Error("Has(lazy) = false before open")
	}
	if list := r.List(); len(list) != 1 || list[0].Opened {
		t.Errorf("unopened listing = %+v", list)
	}

	be, err := r.Get("lazy")
	if err != nil {
		t.Fatal(err)
	}
	if be.Index() == nil {
		t.Error("opened backend must serve an index")
	}
	again, err := r.Get("lazy")
	if err != nil || again != be {
		t.Error("second Get must return the already-open backend")
	}
	if list := r.List(); len(list) != 1 || !list[0].Opened || list[0].Backend != be.Kind() {
		t.Errorf("opened listing = %+v", list)
	}

	// A broken file errors on Get but the entry survives for a retry.
	bad := filepath.Join(t.TempDir(), "bad.tsnap")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("bad", bad); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("bad"); err == nil || errors.Is(err, ErrNotFound) {
		t.Errorf("Get(bad) = %v, want an open error", err)
	}
	if !r.Has("bad") {
		t.Error("failed open must leave the entry registered")
	}
	if err := store.WriteFile(bad, tinySnapshot("bad")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("bad"); err != nil {
		t.Errorf("Get(bad) after replacing the file: %v", err)
	}
}

// TestRegistryEvictionDemotesFileBacked: a heap-resident entry that
// came from a file is demoted to registered on eviction — the id keeps
// answering, reopened from disk on the next request.
func TestRegistryEvictionDemotesFileBacked(t *testing.T) {
	r := NewRegistry(1)
	path := writeTinySnapshot(t, "a")
	if _, err := r.AddBackend("a", backend.FromSnapshot(tinySnapshot("a")), path); err != nil {
		t.Fatal(err)
	}
	evicted, err := r.Add("b", tinySnapshot("b"))
	if err != nil {
		t.Fatal(err)
	}
	if evicted != "a" {
		t.Fatalf("evicted %q, want %q", evicted, "a")
	}
	if r.Len() != 2 {
		t.Errorf("Len() = %d, want 2 (demoted entries stay registered)", r.Len())
	}
	be, err := r.Get("a")
	if err != nil {
		t.Fatalf("Get(a) after demotion: %v", err)
	}
	if be.GraphStats().Nodes != 1 {
		t.Errorf("reopened graph stats = %+v", be.GraphStats())
	}
}

// TestRegistryMmapExemptFromLRU: mmap-backed entries never occupy heap
// capacity, so any number of them coexist with the configured cap and
// cause no evictions.
func TestRegistryMmapExemptFromLRU(t *testing.T) {
	r := NewRegistry(1)
	if _, err := r.Add("heap", tinySnapshot("heap")); err != nil {
		t.Fatal(err)
	}
	opened := 0
	for _, name := range []string{"m1", "m2", "m3"} {
		if err := r.Register(name, writeTinySnapshot(t, name)); err != nil {
			t.Fatal(err)
		}
		be, err := r.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if be.Kind() == backend.KindMmap {
			opened++
		}
	}
	if opened == 0 {
		t.Skip("host opened no mmap backends (layout unsupported)")
	}
	if r.Evictions() != 0 {
		t.Errorf("Evictions() = %d, want 0 (mmap entries are exempt)", r.Evictions())
	}
	if _, err := r.Get("heap"); err != nil {
		t.Errorf("heap graph evicted by mmap opens: %v", err)
	}
}
