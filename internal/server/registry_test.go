package server

import (
	"testing"

	"tabby/internal/graphdb"
	"tabby/internal/store"
)

func tinySnapshot(name string) *store.Snapshot {
	db := graphdb.New()
	db.CreateNode([]string{"Class"}, graphdb.Props{"NAME": name})
	db.Freeze()
	return &store.Snapshot{Meta: store.Meta{Name: name, Corpus: "test"}, DB: db}
}

func TestRegistryAddGetList(t *testing.T) {
	r := NewRegistry(4)
	if _, err := r.Add("", tinySnapshot("x")); err == nil {
		t.Error("empty id must error")
	}
	if _, err := r.Add("a", nil); err == nil {
		t.Error("nil snapshot must error")
	}
	if _, err := r.Add("a", tinySnapshot("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("a", tinySnapshot("a")); err == nil {
		t.Error("duplicate id must error")
	}
	if _, ok := r.Get("a"); !ok {
		t.Error("Get(a) failed")
	}
	if _, ok := r.Get("missing"); ok {
		t.Error("Get(missing) succeeded")
	}
	if _, err := r.Add("b", tinySnapshot("b")); err != nil {
		t.Fatal(err)
	}
	list := r.List()
	if len(list) != 2 || list[0].ID != "a" || list[1].ID != "b" {
		t.Errorf("List() = %+v", list)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	r := NewRegistry(2)
	if _, err := r.Add("a", tinySnapshot("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("b", tinySnapshot("b")); err != nil {
		t.Fatal(err)
	}
	// Touch "a" so "b" becomes the least recently used.
	if _, ok := r.Get("a"); !ok {
		t.Fatal("Get(a) failed")
	}
	evicted, err := r.Add("c", tinySnapshot("c"))
	if err != nil {
		t.Fatal(err)
	}
	if evicted != "b" {
		t.Errorf("evicted %q, want %q", evicted, "b")
	}
	if _, ok := r.Get("b"); ok {
		t.Error("b still resident after eviction")
	}
	if r.Len() != 2 {
		t.Errorf("Len() = %d, want 2", r.Len())
	}
}
