package server

import (
	"fmt"
	"sync"
	"time"

	"tabby/internal/core"
	"tabby/internal/cpg"
	"tabby/internal/javasrc"
	"tabby/internal/sinks"
	"tabby/internal/store"
)

// jobStatus is the lifecycle of one analyze job:
// queued → running → done | failed.
type jobStatus string

const (
	jobQueued  jobStatus = "queued"
	jobRunning jobStatus = "running"
	jobDone    jobStatus = "done"
	jobFailed  jobStatus = "failed"
)

// job is one submitted /v1/analyze build. All mutable fields are
// guarded by the owning jobManager's mutex; done closes exactly once,
// when the job reaches a terminal status, so waiters never poll.
type job struct {
	id        string
	name      string
	fp        string // result fingerprint (singleflight + result-cache key)
	status    jobStatus
	err       string
	graphID   string
	chains    int
	stats     cpg.Stats
	cacheInfo *analyzeCacheJSON
	evicted   string
	coalesced int  // later submissions merged into this build
	cached    bool // resolved from the result cache, no build at all
	submitted time.Time
	started   time.Time
	elapsed   time.Duration // terminal only: queue wait + build
	done      chan struct{}

	// build inputs, set at submit time and read only by the worker
	engine   *core.Engine
	archives []javasrc.ArchiveSource
	sources  sinks.SourceConfig
	files    int
}

// result is one finished build the server can hand out again without
// building: the registered graph plus the response-shaping outputs.
// Entries live exactly as long as their graph stays registered — the
// registry's eviction hook removes them — so a hit can always resolve
// to a servable graph id.
type result struct {
	graphID string
	chains  int
	stats   cpg.Stats
}

// jobManager runs /v1/analyze builds on a bounded worker pool behind a
// bounded queue, coalescing concurrent identical submissions
// (singleflight) and resolving repeat uploads from the fingerprint-
// keyed result cache. Heavy compiles therefore never run on a request
// goroutine: submission is O(hash corpus), and the query endpoints
// share nothing with the build path but the registry.
type jobManager struct {
	mu       sync.Mutex
	jobs     map[string]*job
	order    []string        // submission order, for listing
	inflight map[string]*job // fp → queued/running job (singleflight)
	active   map[string]*job // graph name → queued/running job
	results  map[string]*result
	graphFP  map[string]string // graph id → fp, for eviction invalidation
	finished []string          // terminal job ids, oldest first (pruning)
	queue    chan *job
	queueCap int
	workers  int
	seq      int
	closed   bool

	submitted  int64
	builds     int64 // builds actually started on a worker
	buildsOK   int64
	coalescedN int64
	resultHits int64
	rejected   int64 // queue-full 429s

	// buildHook, when set (tests), runs on the worker at the start of
	// every build — before any real work — so tests can stall a build or
	// make it panic.
	buildHook func(j *job)
}

const (
	// DefaultAnalyzeWorkers is the build pool size when
	// Options.AnalyzeWorkers is zero. One worker matches the old
	// serialized behavior: builds are CPU-bound and share the analysis
	// cache, so more workers mostly add contention.
	DefaultAnalyzeWorkers = 1
	// DefaultAnalyzeQueue bounds how many submitted builds may wait
	// behind the running ones before submissions are rejected with 429.
	DefaultAnalyzeQueue = 16
	// maxJobRecords bounds how many terminal job records are kept for
	// polling; older ones are forgotten first. The result cache is
	// unaffected — repeat uploads resolve from it regardless.
	maxJobRecords = 512
)

func newJobManager(workers, queueCap int) *jobManager {
	if workers <= 0 {
		workers = DefaultAnalyzeWorkers
	}
	if queueCap <= 0 {
		queueCap = DefaultAnalyzeQueue
	}
	return &jobManager{
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		active:   make(map[string]*job),
		results:  make(map[string]*result),
		graphFP:  make(map[string]string),
		queue:    make(chan *job, queueCap),
		queueCap: queueCap,
		workers:  workers,
	}
}

// submitErr distinguishes the two submission rejections.
type submitErr struct {
	status int
	msg    string
}

func (e *submitErr) Error() string { return e.msg }

// submit registers a build request and returns its job: a fresh queued
// job, the in-flight job identical submissions coalesced into, or an
// already-done job synthesized from the result cache. reg decides
// name conflicts and whether a cached result's graph is still
// servable.
func (m *jobManager) submit(reg *Registry, name, fp string, eng *core.Engine, archives []javasrc.ArchiveSource, sources sinks.SourceConfig, files int) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, &submitErr{status: 503, msg: "server shutting down"}
	}
	m.submitted++

	// Repeat upload: the identical corpus+options was already built and
	// its graph is still registered — resolve instantly, no queue slot.
	if res, ok := m.results[fp]; ok && reg.Has(res.graphID) {
		m.resultHits++
		j := m.newJobLocked(name, fp)
		j.status = jobDone
		j.graphID = res.graphID
		j.chains = res.chains
		j.stats = res.stats
		j.cached = true
		close(j.done)
		m.recordTerminalLocked(j)
		return j, nil
	}

	// Singleflight: an identical build is already queued or running —
	// this submission rides along.
	if j, ok := m.inflight[fp]; ok {
		j.coalesced++
		m.coalescedN++
		return j, nil
	}

	if reg.Has(name) {
		return nil, &submitErr{status: 409, msg: fmt.Sprintf("graph %q already loaded", name)}
	}
	if prev, ok := m.active[name]; ok {
		return nil, &submitErr{status: 409, msg: fmt.Sprintf("graph %q is already being built (job %s)", name, prev.id)}
	}

	j := m.newJobLocked(name, fp)
	j.status = jobQueued
	j.engine = eng
	j.archives = archives
	j.sources = sources
	j.files = files
	select {
	case m.queue <- j:
	default:
		// Queue full: forget the job entirely and push back on the client.
		delete(m.jobs, j.id)
		m.order = m.order[:len(m.order)-1]
		m.rejected++
		return nil, &submitErr{status: 429, msg: fmt.Sprintf("analyze queue full (%d pending builds); retry later", m.queueCap)}
	}
	m.inflight[fp] = j
	m.active[name] = j
	return j, nil
}

// newJobLocked allocates and indexes a job record.
func (m *jobManager) newJobLocked(name, fp string) *job {
	m.seq++
	j := &job{
		id:        fmt.Sprintf("j%d", m.seq),
		name:      name,
		fp:        fp,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	return j
}

// recordTerminalLocked enrolls a terminal job in the pruning window.
func (m *jobManager) recordTerminalLocked(j *job) {
	m.finished = append(m.finished, j.id)
	for len(m.finished) > maxJobRecords {
		old := m.finished[0]
		m.finished = m.finished[1:]
		delete(m.jobs, old)
		for i, id := range m.order {
			if id == old {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
}

// get returns the job registered under id.
func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// invalidateGraph drops the cached result whose graph was evicted or
// replaced. Called from the registry's eviction hook (registry lock
// held); it takes only the manager's own lock.
func (m *jobManager) invalidateGraph(graphID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if fp, ok := m.graphFP[graphID]; ok {
		delete(m.results, fp)
		delete(m.graphFP, graphID)
	}
}

// close stops accepting submissions and lets the workers drain.
func (m *jobManager) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
}

// run is one pool worker: it owns at most one build at a time and
// always survives it. A panicking build — corrupt input tripping an
// invariant, an out-of-bounds bug — is confined to the job, which
// fails with the panic message; the worker keeps serving the queue, so
// a poisoned upload can never wedge the analyze path (the old
// channel-token design leaked its only slot on panic).
func (s *Server) runAnalyzeWorker() {
	for j := range s.jobs.queue {
		s.runJob(j)
	}
}

// runJob executes one build end to end and moves the job to a terminal
// status exactly once.
func (s *Server) runJob(j *job) {
	m := s.jobs
	m.mu.Lock()
	j.status = jobRunning
	j.started = time.Now()
	m.builds++
	hook := m.buildHook
	m.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			s.failJob(j, fmt.Sprintf("analyze panicked: %v", r))
		}
	}()

	if hook != nil {
		hook(j)
	}

	// Builds share the server's analysis cache, which is not
	// concurrent-safe; the mutex also keeps its content-addressed reuse
	// coherent across jobs.
	s.cacheMu.Lock()
	rep, err := j.engine.AnalyzeIncremental(s.cache, j.archives)
	s.cacheMu.Unlock()
	if err != nil {
		s.failJob(j, fmt.Sprintf("analyze failed: %v", err))
		return
	}

	rep.Graph.DB.Freeze()
	snap := &store.Snapshot{
		Meta: store.Meta{
			Name:        j.name,
			Corpus:      fmt.Sprintf("uploaded corpus (%d files)", j.files),
			Stats:       rep.Graph.Stats,
			TotalCalls:  rep.Graph.Taint.TotalCalls,
			PrunedCalls: rep.Graph.Taint.PrunedCalls,
		},
		DB:      rep.Graph.DB,
		Sinks:   sinks.Default(),
		Sources: j.sources,
	}
	if len(snap.Sources.MethodNames) == 0 {
		snap.Sources = sinks.DefaultSources()
	}
	evicted, err := s.reg.Add(j.name, snap)
	if err != nil {
		s.failJob(j, err.Error())
		return
	}

	m.mu.Lock()
	j.status = jobDone
	j.graphID = j.name
	j.chains = len(rep.Chains)
	j.stats = rep.Graph.Stats
	j.evicted = evicted
	j.elapsed = time.Since(j.submitted)
	if cs := rep.Timings.Cache; cs != nil {
		j.cacheInfo = &analyzeCacheJSON{
			Files:           cs.Compile.Files,
			ParseHits:       cs.Compile.ParseHits,
			BodyHits:        cs.Compile.BodyHits,
			TaintComps:      cs.Taint.Components,
			TaintCompHits:   cs.Taint.ComponentHits,
			MethodsReused:   cs.Taint.MethodsReused,
			MethodsAnalyzed: cs.Taint.MethodsAnalyzed,
			GraphReuse:      cs.GraphReuse,
		}
	}
	m.results[j.fp] = &result{graphID: j.graphID, chains: j.chains, stats: j.stats}
	m.graphFP[j.graphID] = j.fp
	m.buildsOK++
	delete(m.inflight, j.fp)
	delete(m.active, j.name)
	// The job's build inputs are dead weight once it is terminal; drop
	// them so retained job records don't pin whole uploaded corpora.
	j.engine, j.archives = nil, nil
	m.recordTerminalLocked(j)
	m.mu.Unlock()
	close(j.done)
}

// failJob moves a job to failed with msg.
func (s *Server) failJob(j *job, msg string) {
	m := s.jobs
	m.mu.Lock()
	j.status = jobFailed
	j.err = msg
	j.elapsed = time.Since(j.submitted)
	delete(m.inflight, j.fp)
	delete(m.active, j.name)
	j.engine, j.archives = nil, nil
	m.recordTerminalLocked(j)
	m.mu.Unlock()
	close(j.done)
}

// jobStatsJSON is the job-queue section of GET /v1/stats.
type jobStatsJSON struct {
	Submitted  int64 `json:"submitted"`
	Builds     int64 `json:"builds"`
	BuildsOK   int64 `json:"builds_ok"`
	Coalesced  int64 `json:"coalesced"`
	ResultHits int64 `json:"result_hits"`
	Rejected   int64 `json:"rejected"`
	QueueDepth int   `json:"queue_depth"`
	QueueCap   int   `json:"queue_cap"`
	Workers    int   `json:"workers"`
}

func (m *jobManager) statsJSON() jobStatsJSON {
	m.mu.Lock()
	defer m.mu.Unlock()
	return jobStatsJSON{
		Submitted:  m.submitted,
		Builds:     m.builds,
		BuildsOK:   m.buildsOK,
		Coalesced:  m.coalescedN,
		ResultHits: m.resultHits,
		Rejected:   m.rejected,
		QueueDepth: len(m.queue),
		QueueCap:   m.queueCap,
		Workers:    m.workers,
	}
}

// Builds reports how many builds have actually started on a worker —
// the counter the coalescing tests and the serve bench assert against.
func (s *Server) Builds() int64 {
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	return s.jobs.builds
}
