package server

import (
	"container/list"
	"sync"
)

// respCache memoizes encoded response bodies for the read-only POST
// endpoints (/v1/query, /v1/chains). Registered graphs are immutable —
// frozen stores, deterministic engines — so for a given (endpoint,
// graph, canonicalized request) the response bytes can never change
// while the graph stays registered; serving them from memory skips the
// search, the row materialization, and the JSON encode. Entries are
// invalidated only when their graph leaves the registry (eviction may
// drop an uploaded graph or demote a file-backed one whose file could
// since have been atomically replaced — either way a later graph under
// the same id may differ).
//
// The cache is bounded by total body bytes with LRU eviction and is
// safe for concurrent use. Stored bodies are aliased on hit, never
// copied: callers must treat them as read-only.
type respCache struct {
	mu      sync.Mutex
	max     int64 // byte budget; <= 0 disables the cache entirely
	size    int64
	lru     *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses map[string]int64 // by endpoint
	evictions    int64
	invalidated  int64
}

type respEntry struct {
	key   string
	graph string
	body  []byte
}

// DefaultRespCacheBytes is the response-cache budget when
// Options.RespCacheBytes is zero.
const DefaultRespCacheBytes = 32 << 20

func newRespCache(max int64) *respCache {
	return &respCache{
		max:     max,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
		hits:    make(map[string]int64),
		misses:  make(map[string]int64),
	}
}

// respKey builds the cache key: endpoint, graph id, and the canonical
// request form. Requests decode into flat structs with
// DisallowUnknownFields, so re-marshaling the decoded struct
// canonicalizes field order, whitespace, and absent-vs-zero fields —
// two requests that decode equal always hit the same entry.
func respKey(endpoint, graph string, canonical []byte) string {
	return endpoint + "\x00" + graph + "\x00" + string(canonical)
}

// get returns the cached body for key, marking it most recently used.
func (c *respCache) get(endpoint, key string) ([]byte, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses[endpoint]++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits[endpoint]++
	return el.Value.(*respEntry).body, true
}

// put stores body under key for graph, evicting least-recently-used
// entries beyond the byte budget. Bodies larger than the whole budget
// are not cached. body must not be mutated after the call.
func (c *respCache) put(graph, key string, body []byte) {
	if c.max <= 0 || int64(len(body)) > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return // concurrent identical requests raced; first one wins
	}
	c.entries[key] = c.lru.PushFront(&respEntry{key: key, graph: graph, body: body})
	c.size += int64(len(body))
	for c.size > c.max {
		oldest := c.lru.Back()
		e := oldest.Value.(*respEntry)
		c.lru.Remove(oldest)
		delete(c.entries, e.key)
		c.size -= int64(len(e.body))
		c.evictions++
	}
}

// invalidate drops every entry cached for graph. Called from the
// registry's eviction hook; it takes only the cache's own lock, so it
// is safe to call with registry locks held.
func (c *respCache) invalidate(graph string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*respEntry)
		if e.graph != graph {
			continue
		}
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.size -= int64(len(e.body))
		c.invalidated++
	}
}

// respCacheStats is the wire form of the cache counters (GET /v1/stats).
type respCacheStats struct {
	Entries     int              `json:"entries"`
	Bytes       int64            `json:"bytes"`
	MaxBytes    int64            `json:"max_bytes"`
	Hits        map[string]int64 `json:"hits"`
	Misses      map[string]int64 `json:"misses"`
	Evictions   int64            `json:"evictions"`
	Invalidated int64            `json:"invalidated"`
}

func (c *respCache) stats() respCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := respCacheStats{
		Entries:     len(c.entries),
		Bytes:       c.size,
		MaxBytes:    c.max,
		Hits:        make(map[string]int64, len(c.hits)),
		Misses:      make(map[string]int64, len(c.misses)),
		Evictions:   c.evictions,
		Invalidated: c.invalidated,
	}
	for k, v := range c.hits {
		st.Hits[k] = v
	}
	for k, v := range c.misses {
		st.Misses[k] = v
	}
	return st
}
