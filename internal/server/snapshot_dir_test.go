package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"tabby/internal/store"
)

// TestRegisterSnapshotDir: a directory scan registers every committed
// snapshot file by basename — skipping dotfiles, in-flight .tmp- writes,
// and subdirectories — without opening anything; graphs then open
// lazily on the first request that names them.
func TestRegisterSnapshotDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"alpha", "beta"} {
		if err := store.WriteFile(filepath.Join(dir, name+".tsnap"), tinySnapshot(name)); err != nil {
			t.Fatal(err)
		}
	}
	// None of these are committed snapshots; the scan must skip them.
	if err := os.WriteFile(filepath.Join(dir, ".hidden.tsnap"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "gamma.tsnap.tmp-123"), []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}

	s := New(Options{Workers: 1})
	t.Cleanup(s.Close)
	n, err := s.RegisterSnapshotDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("registered %d snapshots, want 2", n)
	}
	if _, err := s.RegisterSnapshotDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing directory must error")
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := getJSON(t, ts.URL+"/v1/graphs")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/graphs = %d: %s", code, body)
	}
	var graphs graphsResponse
	if err := json.Unmarshal(body, &graphs); err != nil {
		t.Fatal(err)
	}
	if len(graphs.Graphs) != 2 || graphs.Graphs[0].ID != "alpha" || graphs.Graphs[1].ID != "beta" {
		t.Fatalf("graphs = %+v", graphs.Graphs)
	}
	for _, g := range graphs.Graphs {
		if g.Opened || g.Backend != "" {
			t.Errorf("registration must not open %q: %+v", g.ID, g)
		}
	}

	// The first request that names a graph opens it.
	code, body = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"graph": "alpha",
		"query": "MATCH (c:Class) RETURN c.NAME",
	})
	if code != http.StatusOK {
		t.Fatalf("POST /v1/query = %d: %s", code, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 || qr.Rows[0][0] != "alpha" {
		t.Errorf("query rows = %v", qr.Rows)
	}

	code, body = getJSON(t, ts.URL+"/v1/graphs/alpha/stats")
	if code != http.StatusOK {
		t.Fatalf("GET stats = %d: %s", code, body)
	}
	var stats statsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Backend == "" || stats.Nodes != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Backend == "mmap" && stats.MappedBytes == 0 {
		t.Errorf("mmap stats must report mapped bytes: %+v", stats)
	}

	// The sibling stays unopened: requests open graphs one at a time.
	code, body = getJSON(t, ts.URL+"/v1/graphs")
	if code != http.StatusOK {
		t.Fatal("second listing failed")
	}
	graphs = graphsResponse{}
	if err := json.Unmarshal(body, &graphs); err != nil {
		t.Fatal(err)
	}
	for _, g := range graphs.Graphs {
		if g.ID == "alpha" && !g.Opened {
			t.Error("alpha must be opened after serving a query")
		}
		if g.ID == "beta" && g.Opened {
			t.Error("beta must stay unopened until requested")
		}
	}
}
