package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"tabby/internal/store"
)

// TestResponseCacheByteIdentity pins the cache's one correctness
// obligation — a hit serves exactly the bytes a cold encode would —
// on both storage backends: the same snapshot served heap-resident
// and as an mmap view, each asked twice, all four bodies identical.
func TestResponseCacheByteIdentity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.tsnap")
	if err := store.WriteFile(path, rtSnapshot(t)); err != nil {
		t.Fatal(err)
	}

	memSrv := New(Options{Workers: 1})
	t.Cleanup(memSrv.Close)
	snap, err := store.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := memSrv.Registry().Add("rt", snap); err != nil {
		t.Fatal(err)
	}
	mmapSrv := New(Options{Workers: 1})
	t.Cleanup(mmapSrv.Close)
	if id, err := mmapSrv.LoadSnapshotFile(path); err != nil || id != "rt" {
		t.Fatalf("LoadSnapshotFile = %q, %v", id, err)
	}

	requests := []struct {
		endpoint string
		body     map[string]any
	}{
		{"/v1/query", map[string]any{"graph": "rt", "query": `MATCH (m:Method {IS_SINK: true}) RETURN m.NAME ORDER BY m.NAME`}},
		{"/v1/chains", map[string]any{"graph": "rt", "max_depth": 8}},
	}
	for name, srv := range map[string]*Server{"mem": memSrv, "mmap": mmapSrv} {
		ts := httptest.NewServer(srv.Handler())
		for _, req := range requests {
			code, cold := postJSON(t, ts.URL+req.endpoint, req.body)
			if code != http.StatusOK {
				t.Fatalf("%s cold %s = %d: %s", name, req.endpoint, code, cold)
			}
			code, cached := postJSON(t, ts.URL+req.endpoint, req.body)
			if code != http.StatusOK {
				t.Fatalf("%s cached %s = %d: %s", name, req.endpoint, code, cached)
			}
			if !bytes.Equal(cold, cached) {
				t.Errorf("%s %s: cached response differs from cold:\ncold:   %s\ncached: %s",
					name, req.endpoint, cold, cached)
			}
		}
		ts.Close()
	}

	// The second round trips were hits, and the counters say so.
	st := memSrv.resp.stats()
	if st.Hits["query"] < 1 || st.Hits["chains"] < 1 {
		t.Errorf("cache hits = %+v, want >=1 for query and chains", st.Hits)
	}
	if st.Entries == 0 || st.Bytes == 0 {
		t.Errorf("cache stats = %+v, want resident entries", st)
	}
}

// TestResponseCacheCanonicalKey: requests that decode to the same
// canonical form share a cache entry; requests that differ in any
// field that changes the answer do not.
func TestResponseCacheCanonicalKey(t *testing.T) {
	s, ts := newTestServer(t)

	// Same query, different whitespace in the JSON envelope — one entry.
	q := `MATCH (m:Method {IS_SINK: true}) RETURN m.NAME`
	body1 := `{"graph":"rt","query":"` + q + `"}`
	body2 := `{"graph": "rt",  "query": "` + q + `"}`
	for _, b := range []string{body1, body2} {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte(b)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query = %d", resp.StatusCode)
		}
	}
	st := s.resp.stats()
	if st.Hits["query"] != 1 {
		t.Errorf("envelope-whitespace variants must share an entry: hits = %+v", st.Hits)
	}

	// A different LIMIT is a different answer — distinct entry, no hit.
	postJSON(t, ts.URL+"/v1/query", map[string]any{"graph": "rt", "query": q + " LIMIT 1"})
	if got := s.resp.stats().Hits["query"]; got != 1 {
		t.Errorf("distinct query must miss: hits = %d, want still 1", got)
	}
}

// TestResponseCacheInvalidatedOnEviction: evicting a graph drops its
// cached responses, so a reused id can never serve the old graph's
// bytes — the stale path answers 404, not a cached 200.
func TestResponseCacheInvalidatedOnEviction(t *testing.T) {
	s := New(Options{Workers: 1, MaxGraphs: 1})
	t.Cleanup(s.Close)
	if _, err := s.Registry().Add("rt", rtSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	req := map[string]any{"graph": "rt", "query": `MATCH (m:Method) RETURN COUNT(*)`}
	if code, _ := postJSON(t, ts.URL+"/v1/query", req); code != http.StatusOK {
		t.Fatal("seed query failed")
	}
	if s.resp.stats().Entries != 1 {
		t.Fatalf("expected one cached entry, got %+v", s.resp.stats())
	}

	// A second upload evicts "rt" (capacity 1, no backing file → dropped).
	if evicted, err := s.Registry().Add("other", tinySnapshot("other")); err != nil || evicted != "rt" {
		t.Fatalf("Add(other) evicted %q, err %v; want rt", evicted, err)
	}
	st := s.resp.stats()
	if st.Entries != 0 || st.Invalidated != 1 {
		t.Errorf("post-eviction cache = %+v, want empty with invalidated=1", st)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/query", req); code != http.StatusNotFound {
		t.Error("evicted graph must 404, not serve a cached body")
	}
}

// TestRespCacheBudget exercises the byte budget directly: entries
// beyond the budget evict oldest-first, and oversized bodies are
// never admitted.
func TestRespCacheBudget(t *testing.T) {
	c := newRespCache(64)
	key := func(req string) string { return respKey("query", "g", []byte(req)) }
	put := func(req string, n int) {
		c.put("g", key(req), bytes.Repeat([]byte("x"), n))
	}
	put("a", 30)
	put("b", 30)
	put("c", 30) // over budget: "a" goes
	if _, ok := c.get("query", key("a")); ok {
		t.Error("oldest entry must be evicted over budget")
	}
	if _, ok := c.get("query", key("c")); !ok {
		t.Error("newest entry must survive")
	}
	put("huge", 100) // larger than the whole budget: rejected
	if _, ok := c.get("query", key("huge")); ok {
		t.Error("oversized body must not be admitted")
	}
	st := c.stats()
	if st.Evictions == 0 || st.Bytes > 64 {
		t.Errorf("budget stats = %+v", st)
	}

	// Disabled cache (negative budget) stores nothing and never hits.
	off := newRespCache(-1)
	off.put("g", "k", []byte("body"))
	if _, ok := off.get("query", "k"); ok {
		t.Error("disabled cache must not serve entries")
	}
}

// TestETagConditionalGets: GET /v1/graphs and GET /v1/graphs/{id}/stats
// carry a strong body-hash ETag, and If-None-Match round-trips to 304
// with an empty body — until the listing actually changes.
func TestETagConditionalGets(t *testing.T) {
	s, ts := newTestServer(t)
	_ = s

	for _, url := range []string{ts.URL + "/v1/graphs", ts.URL + "/v1/graphs/rt/stats"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		etag := resp.Header.Get("ETag")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || etag == "" {
			t.Fatalf("GET %s = %d etag %q", url, resp.StatusCode, etag)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
			t.Errorf("Cache-Control = %q, want no-cache", cc)
		}

		req, _ := http.NewRequest(http.MethodGet, url, nil)
		req.Header.Set("If-None-Match", etag)
		cond, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(cond.Body)
		cond.Body.Close()
		if cond.StatusCode != http.StatusNotModified || buf.Len() != 0 {
			t.Errorf("conditional GET %s = %d (%d body bytes), want 304 empty", url, cond.StatusCode, buf.Len())
		}
	}

	// Changing the listing changes the tag, so stale validators refetch.
	resp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	before := resp.Header.Get("ETag")
	resp.Body.Close()
	if _, err := s.Registry().Add("second", tinySnapshot("second")); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/graphs", nil)
	req.Header.Set("If-None-Match", before)
	after, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer after.Body.Close()
	if after.StatusCode != http.StatusOK {
		t.Errorf("stale validator = %d, want 200 with new body", after.StatusCode)
	}
	var graphs graphsResponse
	if err := json.NewDecoder(after.Body).Decode(&graphs); err != nil {
		t.Fatal(err)
	}
	if len(graphs.Graphs) != 2 {
		t.Errorf("refetched listing has %d graphs, want 2", len(graphs.Graphs))
	}
}

// TestServerStatsEndpoint smoke-checks GET /v1/stats shape.
func TestServerStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := getJSON(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d: %s", code, body)
	}
	var st serverStatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Graphs != 1 || st.Jobs.Workers < 1 || st.RespCache.MaxBytes <= 0 {
		t.Errorf("stats = %+v", st)
	}
}
