package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/javasrc"
	"tabby/internal/searchindex"
	"tabby/internal/store"
)

// rtSnapshot builds the URLDNS (modeled runtime) snapshot through the
// real save/load path, so server tests exercise exactly what
// tabby-server serves after `tabby -save`.
func rtSnapshot(t *testing.T) *store.Snapshot {
	t.Helper()
	engine := core.New(core.Options{Workers: 1})
	rep, err := engine.AnalyzeSources([]javasrc.ArchiveSource{corpus.RT()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := engine.SaveSnapshot(&buf, rep, "rt", "modeled runtime"); err != nil {
		t.Fatal(err)
	}
	snap, err := store.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Options{Workers: 1})
	t.Cleanup(s.Close)
	if _, err := s.Registry().Add("rt", rtSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// tryPostJSON is the goroutine-safe request helper (no *testing.T, so
// the concurrency test can use it off the test goroutine).
func tryPostJSON(url string, body any) (int, []byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	code, out, err := tryPostJSON(url, body)
	if err != nil {
		t.Fatal(err)
	}
	return code, out
}

func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestGraphsAndStatsEndpoints(t *testing.T) {
	_, ts := newTestServer(t)

	code, body := getJSON(t, ts.URL+"/v1/graphs")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/graphs = %d: %s", code, body)
	}
	var graphs graphsResponse
	if err := json.Unmarshal(body, &graphs); err != nil {
		t.Fatal(err)
	}
	if len(graphs.Graphs) != 1 || graphs.Graphs[0].ID != "rt" {
		t.Errorf("graphs = %+v", graphs.Graphs)
	}
	if graphs.Graphs[0].Nodes == 0 || graphs.Graphs[0].Rels == 0 {
		t.Errorf("graph info missing sizes: %+v", graphs.Graphs[0])
	}

	code, body = getJSON(t, ts.URL+"/v1/graphs/rt/stats")
	if code != http.StatusOK {
		t.Fatalf("GET stats = %d: %s", code, body)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Meta.Name != "rt" || st.Nodes == 0 || len(st.NodesByType) == 0 {
		t.Errorf("stats = %+v", st)
	}

	if code, _ = getJSON(t, ts.URL+"/v1/graphs/nope/stats"); code != http.StatusNotFound {
		t.Errorf("stats of unknown graph = %d, want 404", code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	code, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"graph": "rt",
		"query": `MATCH (m:Method {IS_SINK: true}) RETURN m.NAME LIMIT 3`,
	})
	if code != http.StatusOK {
		t.Fatalf("query = %d: %s", code, body)
	}
	var res queryResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || len(res.Rows) != 3 || !strings.Contains(res.Text, "m.NAME") {
		t.Errorf("query response = %+v", res)
	}

	for name, req := range map[string]map[string]any{
		"unknown graph": {"graph": "nope", "query": "MATCH (m) RETURN m"},
		"missing graph": {"query": "MATCH (m) RETURN m"},
		"empty query":   {"graph": "rt"},
		"bad query":     {"graph": "rt", "query": "NOT CYPHER"},
	} {
		code, body := postJSON(t, ts.URL+"/v1/query", req)
		if code == http.StatusOK {
			t.Errorf("%s: got 200: %s", name, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error response not JSON: %s", name, body)
		}
	}

	// Unknown fields are rejected so typos don't silently select defaults.
	if code, _ := postJSON(t, ts.URL+"/v1/query", map[string]any{"graph": "rt", "qerry": "x"}); code != http.StatusBadRequest {
		t.Errorf("unknown field = %d, want 400", code)
	}
}

// TestQueryRowCap pins the MaxQueryRows contract: responses are cut off
// at the cap with truncated=true, queries that fit underneath it report
// truncated=false, and the default cap is high enough that ordinary
// queries never see it.
func TestQueryRowCap(t *testing.T) {
	s := New(Options{Workers: 1, MaxQueryRows: 2})
	t.Cleanup(s.Close)
	if _, err := s.Registry().Add("rt", rtSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	query := func(q string) queryResponse {
		t.Helper()
		code, body := postJSON(t, ts.URL+"/v1/query", map[string]any{"graph": "rt", "query": q})
		if code != http.StatusOK {
			t.Fatalf("query %q = %d: %s", q, code, body)
		}
		var res queryResponse
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		return res
	}

	// The modeled runtime has far more than 2 methods.
	over := query(`MATCH (m:Method) RETURN m.NAME`)
	if !over.Truncated || len(over.Rows) != 2 {
		t.Errorf("over-cap: truncated=%v rows=%d, want true/2", over.Truncated, len(over.Rows))
	}
	if !strings.Contains(over.Text, "m.NAME") {
		t.Errorf("over-cap text lost header: %q", over.Text)
	}

	under := query(`MATCH (m:Method) RETURN m.NAME LIMIT 2`)
	if under.Truncated || len(under.Rows) != 2 {
		t.Errorf("at-cap: truncated=%v rows=%d, want false/2", under.Truncated, len(under.Rows))
	}

	agg := query(`MATCH (m:Method) RETURN COUNT(*)`)
	if agg.Truncated || len(agg.Rows) != 1 {
		t.Errorf("aggregate: truncated=%v rows=%d, want false/1", agg.Truncated, len(agg.Rows))
	}

	// Procedure results flow through the same cap.
	proc := query(`CALL tabby.sinks()`)
	if !proc.Truncated || len(proc.Rows) != 2 {
		t.Errorf("procedure: truncated=%v rows=%d, want true/2", proc.Truncated, len(proc.Rows))
	}
}

func TestChainsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	code, body := postJSON(t, ts.URL+"/v1/chains", map[string]any{"graph": "rt"})
	if code != http.StatusOK {
		t.Fatalf("chains = %d: %s", code, body)
	}
	var res chainsResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Chains) == 0 {
		t.Fatal("no chains on the URLDNS corpus")
	}
	for _, c := range res.Chains {
		if len(c.Names) == 0 || len(c.Names) != len(c.Nodes) || c.SinkType == "" {
			t.Errorf("malformed chain %+v", c)
		}
	}

	// Restricting to the SSRF sink type keeps only matching chains.
	code, body = postJSON(t, ts.URL+"/v1/chains", map[string]any{"graph": "rt", "sink_type": "SSRF"})
	if code != http.StatusOK {
		t.Fatalf("chains sink_type = %d: %s", code, body)
	}
	var ssrf chainsResponse
	if err := json.Unmarshal(body, &ssrf); err != nil {
		t.Fatal(err)
	}
	for _, c := range ssrf.Chains {
		if c.SinkType != "SSRF" {
			t.Errorf("sink_type filter leaked %q chain", c.SinkType)
		}
	}

	// Seeding from a named method with a TC override — the researcher
	// workflow for methods that are not registered sinks.
	code, body = postJSON(t, ts.URL+"/v1/chains", map[string]any{
		"graph":      "rt",
		"sink_names": []string{"getByName"},
		"tc":         []int{1},
	})
	if code != http.StatusOK {
		t.Fatalf("chains sink_names = %d: %s", code, body)
	}

	code, body = postJSON(t, ts.URL+"/v1/chains", map[string]any{
		"graph":      "rt",
		"sink_names": []string{"noSuchMethodAnywhere"},
	})
	if code != http.StatusBadRequest {
		t.Errorf("unknown sink name = %d: %s", code, body)
	}
}

// analyzeReq builds a minimal upload request; source varies the corpus
// (and therefore the result fingerprint) per test.
func analyzeReq(name string, wait bool) map[string]any {
	return map[string]any{
		"name": name,
		"wait": wait,
		"files": []map[string]string{{
			"name": "Job.java",
			"source": `
package app;
public class Job implements java.io.Serializable {
    public String cmd;
    private void readObject(java.io.ObjectInputStream in) {
        java.lang.Process p = java.lang.Runtime.getRuntime().exec(this.cmd);
    }
}
`,
		}},
	}
}

func TestAnalyzeEndpoint(t *testing.T) {
	s, ts := newTestServer(t)

	req := analyzeReq("uploaded", true)
	code, body := postJSON(t, ts.URL+"/v1/analyze", req)
	if code != http.StatusOK {
		t.Fatalf("analyze = %d: %s", code, body)
	}
	var res jobJSON
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != "done" || res.Graph != "uploaded" || res.Stats == nil || res.Stats.MethodNodes == 0 || res.Chains == 0 {
		t.Errorf("analyze response = %+v", res)
	}

	// The new graph is immediately queryable.
	code, body = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"graph": "uploaded",
		"query": `MATCH (m:Method {METHOD_NAME: "readObject"}) RETURN m.NAME`,
	})
	if code != http.StatusOK {
		t.Fatalf("query uploaded = %d: %s", code, body)
	}
	if !bytes.Contains(body, []byte("app.Job#readObject")) {
		t.Errorf("uploaded graph missing app method: %s", body)
	}

	// Re-uploading the identical corpus under the same name is not a
	// conflict any more: it resolves instantly from the result cache to
	// the existing graph, without building anything.
	builds := s.Builds()
	code, body = postJSON(t, ts.URL+"/v1/analyze", req)
	if code != http.StatusOK {
		t.Fatalf("repeat analyze = %d: %s", code, body)
	}
	var repeat jobJSON
	if err := json.Unmarshal(body, &repeat); err != nil {
		t.Fatal(err)
	}
	if repeat.Status != "done" || repeat.Graph != "uploaded" || !repeat.ResultCached {
		t.Errorf("repeat analyze = %+v, want done/result_cached", repeat)
	}
	if got := s.Builds(); got != builds {
		t.Errorf("repeat upload built again (%d builds, was %d)", got, builds)
	}

	// A *different* corpus under a taken name still conflicts.
	diff := analyzeReq("uploaded", true)
	diff["files"] = []map[string]string{{"name": "Other.java", "source": "package app; public class Other {}"}}
	if code, _ := postJSON(t, ts.URL+"/v1/analyze", diff); code != http.StatusConflict {
		t.Errorf("conflicting analyze = %d, want 409", code)
	}
	// Missing name / files are rejected.
	if code, _ := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"files": []map[string]string{}}); code != http.StatusBadRequest {
		t.Errorf("missing name = %d, want 400", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"name": "empty"}); code != http.StatusBadRequest {
		t.Errorf("missing files = %d, want 400", code)
	}
}

// TestConcurrentRequestsAreIdentical hammers /v1/query and /v1/chains
// from many goroutines (run under -race via `make check`): every
// response must be byte-identical to the sequential baseline, because
// the stores are frozen and the search is deterministic.
func TestConcurrentRequestsAreIdentical(t *testing.T) {
	_, ts := newTestServer(t)

	queryReq := map[string]any{
		"graph": "rt",
		"query": `MATCH (m:Method {IS_SINK: true}) RETURN m.NAME, m.SINK_TYPE`,
	}
	chainsReq := map[string]any{"graph": "rt", "workers": 2}

	codeQ, baseQuery := postJSON(t, ts.URL+"/v1/query", queryReq)
	codeC, baseChains := postJSON(t, ts.URL+"/v1/chains", chainsReq)
	if codeQ != http.StatusOK || codeC != http.StatusOK {
		t.Fatalf("baseline status %d/%d", codeQ, codeC)
	}

	const goroutines = 12
	const iterations = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				code, got, err := tryPostJSON(ts.URL+"/v1/query", queryReq)
				if err != nil || code != http.StatusOK || !bytes.Equal(got, baseQuery) {
					errs <- fmt.Errorf("goroutine %d iter %d: query response diverged (status %d, err %v)", g, i, code, err)
					return
				}
				code, got, err = tryPostJSON(ts.URL+"/v1/chains", chainsReq)
				if err != nil || code != http.StatusOK || !bytes.Equal(got, baseChains) {
					errs <- fmt.Errorf("goroutine %d iter %d: chains response diverged (status %d, err %v)", g, i, code, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestChainsReusesCompiledIndex pins the index-caching contract the
// server relies on: the first /v1/chains request may compile the search
// index for the (frozen) snapshot store, and every later request must
// reuse that exact compiled artifact — no rebuild, same pointer.
func TestChainsReusesCompiledIndex(t *testing.T) {
	s, ts := newTestServer(t)

	req := map[string]any{"graph": "rt"}
	if code, body := postJSON(t, ts.URL+"/v1/chains", req); code != http.StatusOK {
		t.Fatalf("first chains = %d: %s", code, body)
	}

	be, err := s.Registry().Get("rt")
	if err != nil {
		t.Fatal("rt snapshot missing from registry")
	}
	db, err := be.DB()
	if err != nil {
		t.Fatal(err)
	}
	ix := searchindex.For(db) // cached by the first request
	builds := searchindex.Builds()

	if code, body := postJSON(t, ts.URL+"/v1/chains", req); code != http.StatusOK {
		t.Fatalf("second chains = %d: %s", code, body)
	}
	if got := searchindex.Builds(); got != builds {
		t.Errorf("second request recompiled the index (%d builds, was %d)", got, builds)
	}
	if searchindex.For(db) != ix {
		t.Error("second request replaced the cached index")
	}
}

func TestLoadSnapshotFile(t *testing.T) {
	s := New(Options{})
	t.Cleanup(s.Close)
	snap := rtSnapshot(t)
	path := t.TempDir() + "/rt.tsnap"
	if err := store.WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	id, err := s.LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if id != "rt" {
		t.Errorf("id = %q, want %q (the snapshot's stored name)", id, "rt")
	}
	if _, err := s.LoadSnapshotFile(t.TempDir() + "/missing.tsnap"); err == nil {
		t.Error("missing snapshot file must error")
	}
}
