package cypher

import (
	"fmt"
	"sort"
	"strings"
	"unicode/utf8"

	"tabby/internal/graphdb"
)

// Result is a query result set.
type Result struct {
	Columns []string
	Rows    [][]any
}

// Format renders the result as an aligned text table. Widths are
// measured in runes, not bytes — method names from real jars carry
// non-ASCII identifiers, and byte-width padding would misalign them.
func (r *Result) Format() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := fmt.Sprintf("%v", v)
			cells[ri][ci] = s
			if n := utf8.RuneCountInString(s); n > widths[ci] {
				widths[ci] = n
			}
		}
	}
	var sb strings.Builder
	for i, c := range r.Columns {
		writePadded(&sb, c, widths[i])
	}
	sb.WriteByte('\n')
	for i := range r.Columns {
		writePadded(&sb, strings.Repeat("-", widths[i]), widths[i])
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		for ci, s := range row {
			writePadded(&sb, s, widths[ci])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "(%d rows)\n", len(r.Rows))
	return sb.String()
}

// writePadded writes s space-padded to width runes plus the two-space
// column gap (fmt's %-*s pads by bytes, which breaks on multibyte runes).
func writePadded(sb *strings.Builder, s string, width int) {
	sb.WriteString(s)
	for n := utf8.RuneCountInString(s); n < width; n++ {
		sb.WriteByte(' ')
	}
	sb.WriteString("  ")
}

// Run parses and executes a query against the database. An `EXPLAIN `
// prefix prints the chosen plan (with cost estimates) instead of rows.
func Run(db *graphdb.DB, query string) (*Result, error) {
	if rest, ok := explainRest(query); ok {
		return runExplain(db, rest)
	}
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Execute(db, q)
}

// explainRest strips a leading EXPLAIN keyword, reporting whether the
// query carried one.
func explainRest(query string) (string, bool) {
	t := strings.TrimSpace(query)
	if len(t) > 8 && strings.EqualFold(t[:7], "EXPLAIN") &&
		(t[7] == ' ' || t[7] == '\t' || t[7] == '\n' || t[7] == '\r') {
		return t[8:], true
	}
	return "", false
}

// runExplain renders the plan the query would execute under, one line
// per row, without running it.
func runExplain(db *graphdb.DB, rest string) (*Result, error) {
	res := &Result{Columns: []string{"plan"}}
	trimmed := strings.TrimSpace(rest)
	if len(trimmed) >= 4 && strings.EqualFold(trimmed[:4], "CALL") {
		res.Rows = append(res.Rows, []any{"plan: procedure call (dispatched directly, no query plan)"})
		return res, nil
	}
	q, err := Parse(rest)
	if err != nil {
		return nil, err
	}
	p, perr := PlanQuery(db, q)
	if perr != nil {
		msg := perr.Error()
		if ce, ok := perr.(*Error); ok {
			msg = ce.Msg
		}
		res.Rows = append(res.Rows, []any{"plan: interpreter — " + strings.TrimPrefix(msg, "not plannable: ")})
		return res, nil
	}
	for _, line := range p.Explain() {
		res.Rows = append(res.Rows, []any{line})
	}
	return res, nil
}

// binding maps pattern variables to node IDs.
type binding map[string]graphdb.ID

func (b binding) clone() binding {
	out := make(binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Execute runs a parsed query, compiling it into an iterator plan over
// the search index when the planner supports it (PlanQuery) and falling
// back to the tree-walking interpreter otherwise. Queries built by
// Parse are ready to run; a hand-assembled Query must set OrderBy to -1
// unless it wants ordering by the first RETURN column.
func Execute(db *graphdb.DB, q *Query) (*Result, error) {
	if p, err := PlanQuery(db, q); err == nil {
		return p.Run()
	}
	return ExecuteGeneric(db, q)
}

// ExecuteGeneric runs a parsed query on the tree-walking interpreter
// over the generic property store. It is the executable reference the
// plan runner is pinned to (the full-corpus equivalence suite compares
// the two byte for byte) and the fallback for patterns the planner does
// not model.
func ExecuteGeneric(db *graphdb.DB, q *Query) (*Result, error) {
	ex := &executor{db: db, q: q}
	ex.matchPaths(0, binding{})

	res := &Result{}
	for _, item := range q.Return {
		res.Columns = append(res.Columns, item.Label())
	}

	hasCount := false
	for _, item := range q.Return {
		if item.Count {
			hasCount = true
		}
	}
	if hasCount {
		return ex.aggregate(res)
	}

	seen := make(map[string]bool)
	distinct := false
	for _, item := range q.Return {
		if item.Distinct {
			distinct = true
		}
	}
	for _, b := range ex.matches {
		row, err := ex.project(b)
		if err != nil {
			return nil, err
		}
		if distinct {
			key := fmt.Sprintf("%v", row)
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		res.Rows = append(res.Rows, row)
		if q.OrderBy < 0 && q.Limit > 0 && len(res.Rows) >= q.Limit {
			break
		}
	}
	applyOrderAndLimit(q, res)
	return res, nil
}

// applyOrderAndLimit applies ORDER BY and LIMIT to a completed row set
// (shared by the interpreter and the plan runner).
func applyOrderAndLimit(q *Query, res *Result) {
	if q.OrderBy >= 0 && q.OrderBy < len(q.Return) {
		col := q.OrderBy
		sort.SliceStable(res.Rows, func(i, j int) bool {
			less := rowLess(res.Rows[i][col], res.Rows[j][col])
			if q.Descending {
				return rowLess(res.Rows[j][col], res.Rows[i][col])
			}
			return less
		})
	}
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
}

// rowLess orders mixed values: numbers numerically, everything else by
// string rendering.
func rowLess(a, b any) bool {
	if ai, ok := toInt(a); ok {
		if bi, ok := toInt(b); ok {
			return ai < bi
		}
	}
	return fmt.Sprintf("%v", a) < fmt.Sprintf("%v", b)
}

type executor struct {
	db      *graphdb.DB
	q       *Query
	matches []binding
}

// matchPaths matches the comma-separated paths in order, accumulating
// bindings that satisfy WHERE.
func (ex *executor) matchPaths(pathIdx int, b binding) {
	if pathIdx == len(ex.q.Paths) {
		if ex.q.Where == nil || ex.evalExpr(ex.q.Where, b) {
			ex.matches = append(ex.matches, b.clone())
		}
		return
	}
	path := ex.q.Paths[pathIdx]
	for _, start := range ex.candidates(path.Nodes[0], b) {
		if !ex.nodeMatches(path.Nodes[0], start) {
			continue
		}
		b2 := b.clone()
		if path.Nodes[0].Var != "" {
			b2[path.Nodes[0].Var] = start
		}
		ex.matchChain(pathIdx, path, 0, start, b2)
	}
}

// matchChain extends the current path from node index i.
func (ex *executor) matchChain(pathIdx int, path PatternPath, i int, at graphdb.ID, b binding) {
	if i == len(path.Rels) {
		ex.matchPaths(pathIdx+1, b)
		return
	}
	rel := path.Rels[i]
	next := path.Nodes[i+1]
	ends := ex.expandRel(at, rel)
	for _, end := range ends {
		if !ex.nodeMatches(next, end) {
			continue
		}
		if next.Var != "" {
			if bound, ok := b[next.Var]; ok && bound != end {
				continue
			}
		}
		b2 := b
		if next.Var != "" {
			b2 = b.clone()
			b2[next.Var] = end
		}
		ex.matchChain(pathIdx, path, i+1, end, b2)
	}
}

// candidates picks the starting node set: a bound variable, an indexed
// property lookup, a label scan, or (last resort) every node.
func (ex *executor) candidates(n NodePattern, b binding) []graphdb.ID {
	if n.Var != "" {
		if id, ok := b[n.Var]; ok {
			return []graphdb.ID{id}
		}
	}
	if n.Label != "" {
		for prop, val := range n.Props {
			if ids := ex.db.FindNodes(n.Label, prop, val); ids != nil {
				// The property index lists IDs in SetNodeProp history
				// order; sort so candidate order (and thus row order)
				// matches every other scan source — ascending — which
				// is the order the plan runner is pinned to.
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				return ids
			}
			return nil
		}
		return ex.db.NodesByLabel(n.Label)
	}
	return ex.db.AllNodeIDs()
}

// nodeMatches checks label and inline property constraints.
func (ex *executor) nodeMatches(n NodePattern, id graphdb.ID) bool {
	node := ex.db.Node(id)
	if node == nil {
		return false
	}
	if n.Label != "" && !node.HasLabel(n.Label) {
		return false
	}
	for prop, want := range n.Props {
		got, ok := node.Props[prop]
		if !ok || !valueEqual(got, want) {
			return false
		}
	}
	return true
}

// expandRel returns the nodes reachable from `from` over min..max hops of
// the given type/direction, without repeating a relationship.
func (ex *executor) expandRel(from graphdb.ID, rel RelPattern) []graphdb.ID {
	dir := graphdb.DirBoth
	switch rel.Dir {
	case DirRight:
		dir = graphdb.DirOut
	case DirLeft:
		dir = graphdb.DirIn
	}
	var types []string
	if rel.Type != "" {
		types = []string{rel.Type}
	}
	seenEnds := make(map[graphdb.ID]bool)
	var out []graphdb.ID
	var walk func(at graphdb.ID, depth int, usedRels map[graphdb.ID]bool)
	walk = func(at graphdb.ID, depth int, usedRels map[graphdb.ID]bool) {
		if depth >= rel.MinHops && depth > 0 && !seenEnds[at] {
			seenEnds[at] = true
			out = append(out, at)
		}
		if depth == rel.MaxHops {
			return
		}
		for _, rid := range ex.db.Rels(at, dir, types...) {
			if usedRels[rid] {
				continue
			}
			usedRels[rid] = true
			walk(ex.db.Rel(rid).Other(at), depth+1, usedRels)
			delete(usedRels, rid)
		}
	}
	walk(from, 0, make(map[graphdb.ID]bool))
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// evalExpr evaluates the WHERE clause under a binding.
func (ex *executor) evalExpr(e Expr, b binding) bool {
	switch n := e.(type) {
	case *BinExpr:
		if n.Op == "AND" {
			return ex.evalExpr(n.L, b) && ex.evalExpr(n.R, b)
		}
		return ex.evalExpr(n.L, b) || ex.evalExpr(n.R, b)
	case *NotExpr:
		return !ex.evalExpr(n.E, b)
	case *CmpExpr:
		l, lok := ex.operandValue(n.L, b)
		r, rok := ex.operandValue(n.R, b)
		if !lok || !rok {
			return false
		}
		return compare(n.Op, l, r)
	default:
		return false
	}
}

func (ex *executor) operandValue(op Operand, b binding) (any, bool) {
	if op.IsLiteral {
		return op.Literal, true
	}
	id, ok := b[op.Var]
	if !ok {
		return nil, false
	}
	if op.Prop == "" {
		return int(id), true
	}
	v, ok := ex.db.NodeProp(id, op.Prop)
	return v, ok
}

func compare(op string, l, r any) bool {
	switch op {
	case "=":
		return valueEqual(l, r)
	case "<>":
		return !valueEqual(l, r)
	case "CONTAINS":
		ls, lok := l.(string)
		rs, rok := r.(string)
		return lok && rok && strings.Contains(ls, rs)
	case "STARTSWITH":
		ls, lok := l.(string)
		rs, rok := r.(string)
		return lok && rok && strings.HasPrefix(ls, rs)
	case "ENDSWITH":
		ls, lok := l.(string)
		rs, rok := r.(string)
		return lok && rok && strings.HasSuffix(ls, rs)
	default:
		li, lok := toInt(l)
		ri, rok := toInt(r)
		if !lok || !rok {
			// Fall back to string ordering.
			ls := fmt.Sprintf("%v", l)
			rs := fmt.Sprintf("%v", r)
			return strCompare(op, ls, rs)
		}
		switch op {
		case "<":
			return li < ri
		case "<=":
			return li <= ri
		case ">":
			return li > ri
		case ">=":
			return li >= ri
		}
		return false
	}
}

func strCompare(op, l, r string) bool {
	switch op {
	case "<":
		return l < r
	case "<=":
		return l <= r
	case ">":
		return l > r
	case ">=":
		return l >= r
	default:
		return false
	}
}

func toInt(v any) (int, bool) {
	switch t := v.(type) {
	case int:
		return t, true
	case int64:
		return int(t), true
	case float64:
		return int(t), true
	default:
		return 0, false
	}
}

func valueEqual(a, b any) bool {
	if ai, ok := toInt(a); ok {
		if bi, ok := toInt(b); ok {
			return ai == bi
		}
	}
	return fmt.Sprintf("%T:%v", a, a) == fmt.Sprintf("%T:%v", b, b)
}

// project evaluates the RETURN items for one match.
func (ex *executor) project(b binding) ([]any, error) {
	row := make([]any, 0, len(ex.q.Return))
	for _, item := range ex.q.Return {
		id, ok := b[item.Var]
		if !ok {
			return nil, &Error{Msg: fmt.Sprintf("unbound variable %q in RETURN", item.Var)}
		}
		if item.Prop == "" {
			row = append(row, ex.entityLabel(id))
			continue
		}
		v, ok := ex.db.NodeProp(id, item.Prop)
		if !ok {
			row = append(row, nil)
			continue
		}
		row = append(row, v)
	}
	return row, nil
}

// entityLabel renders a whole-node projection: its NAME when present.
func (ex *executor) entityLabel(id graphdb.ID) any {
	if v, ok := ex.db.NodeProp(id, "NAME"); ok {
		return v
	}
	return fmt.Sprintf("#%d", id)
}

// aggregate handles COUNT projections, grouping by the non-count items.
func (ex *executor) aggregate(res *Result) (*Result, error) {
	type group struct {
		key  string
		row  []any
		n    int
		seen map[string]bool
	}
	groups := make(map[string]*group)
	var order []string
	for _, b := range ex.matches {
		var keyParts []string
		row := make([]any, len(ex.q.Return))
		var countDistinctVal string
		for i, item := range ex.q.Return {
			if item.Count {
				if item.Var != "" {
					id, ok := b[item.Var]
					if !ok {
						return nil, &Error{Msg: fmt.Sprintf("unbound variable %q in COUNT", item.Var)}
					}
					countDistinctVal = fmt.Sprintf("%d", id)
				}
				continue
			}
			id, ok := b[item.Var]
			if !ok {
				return nil, &Error{Msg: fmt.Sprintf("unbound variable %q in RETURN", item.Var)}
			}
			var v any
			if item.Prop == "" {
				v = ex.entityLabel(id)
			} else {
				v, _ = ex.db.NodeProp(id, item.Prop)
			}
			row[i] = v
			keyParts = append(keyParts, fmt.Sprintf("%v", v))
		}
		key := strings.Join(keyParts, "\x00")
		g, ok := groups[key]
		if !ok {
			g = &group{key: key, row: row, seen: make(map[string]bool)}
			groups[key] = g
			order = append(order, key)
		}
		distinctItem := false
		for _, item := range ex.q.Return {
			if item.Count && item.Distinct {
				distinctItem = true
			}
		}
		if distinctItem {
			if !g.seen[countDistinctVal] {
				g.seen[countDistinctVal] = true
				g.n++
			}
		} else {
			g.n++
		}
	}
	for _, key := range order {
		g := groups[key]
		for i, item := range ex.q.Return {
			if item.Count {
				g.row[i] = g.n
			}
		}
		res.Rows = append(res.Rows, g.row)
	}
	applyOrderAndLimit(ex.q, res)
	return res, nil
}
