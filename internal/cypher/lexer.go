// Package cypher implements a compact Cypher-style query language over
// the embedded graph database — the reproduction of the Neo4j query
// surface that lets researchers re-analyze a stored CPG without re-running
// extraction (paper §II-B, RQ4).
//
// Supported form:
//
//	MATCH (a:Method {METHOD_NAME: "exec"})<-[c:CALL*1..4]-(b:Method)
//	WHERE b.IS_SOURCE = true AND a.CLASS CONTAINS "Runtime"
//	RETURN b.NAME, a.NAME LIMIT 10
//
// Node patterns carry optional variable, label and property map;
// relationship patterns carry optional variable, type, direction and
// variable-length range. Multiple comma-separated pattern paths may share
// variables. RETURN items are variables or variable.property accesses,
// with COUNT(*) as the only aggregate.
package cypher

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tkEOF tokKind = iota + 1
	tkIdent
	tkKeyword
	tkInt
	tkString
	tkPunct
)

type tok struct {
	kind tokKind
	text string
	pos  int
}

var _keywords = map[string]bool{
	"MATCH": true, "WHERE": true, "RETURN": true, "LIMIT": true,
	"AND": true, "OR": true, "NOT": true, "TRUE": true, "FALSE": true,
	"CONTAINS": true, "STARTS": true, "ENDS": true, "WITH": true,
	"COUNT": true, "NULL": true, "ORDER": true, "BY": true, "DISTINCT": true,
}

// Error reports a query syntax or evaluation failure.
type Error struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("cypher: offset %d: %s", e.Pos, e.Msg) }

func lex(src string) ([]tok, error) {
	var out []tok
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '\'' || c == '"':
			quote := c
			start := i
			i++
			var sb strings.Builder
			for i < n && src[i] != quote {
				if src[i] == '\\' && i+1 < n {
					i++
				}
				sb.WriteByte(src[i])
				i++
			}
			if i >= n {
				return nil, &Error{Pos: start, Msg: "unterminated string"}
			}
			i++
			out = append(out, tok{kind: tkString, text: sb.String(), pos: start})
		case unicode.IsDigit(rune(c)):
			start := i
			for i < n && unicode.IsDigit(rune(src[i])) {
				i++
			}
			out = append(out, tok{kind: tkInt, text: src[start:i], pos: start})
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			text := src[start:i]
			kind := tkIdent
			if _keywords[strings.ToUpper(text)] {
				kind = tkKeyword
				text = strings.ToUpper(text)
			}
			out = append(out, tok{kind: kind, text: text, pos: start})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<-", "->", "<=", ">=", "<>", "..":
				out = append(out, tok{kind: tkPunct, text: two, pos: start})
				i += 2
				continue
			}
			if strings.ContainsRune("()[]{}:,.=<>*-", rune(c)) {
				out = append(out, tok{kind: tkPunct, text: string(c), pos: start})
				i++
				continue
			}
			return nil, &Error{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	out = append(out, tok{kind: tkEOF, pos: n})
	return out, nil
}
