package cypher

import (
	"fmt"
	"math/bits"
	"strings"

	"tabby/internal/graphdb"
	"tabby/internal/searchindex"
)

// This file compiles a parsed Query into an iterator plan executing over
// the searchindex's compiled columns instead of the generic property
// store — the query-side twin of the pathfinder's Find/FindGeneric split.
// The shape follows cayley's graph/iterator architecture: label and
// IS_SOURCE/IS_SINK bitsets are the leaf scans, CSR adjacency rows are
// the LinksTo traversals, WHERE conjuncts that test interned columns are
// pushed onto the scans, and the And-join across pattern positions is
// reordered by estimated cardinality. Because the interpreter's output
// order (nested ascending node order) is part of the equivalence
// contract, the reordering does not literally re-nest the loops: the
// most selective position instead seeds a backward bitset propagation
// (S_j = C_j ∧ "has a neighbour in S_{j+1}"), so the anchor scan only
// visits nodes that can still complete the chain while rows keep
// streaming out in the interpreter's exact order.
//
// The interpreter (ExecuteGeneric) stays as the executable reference;
// the full-corpus equivalence suite pins the two to byte-identical
// results, and PlanQuery falls back (returns an error) for the one
// construct the plan runner does not model: variable-length
// relationship patterns.

// String-test columns the index interns.
const (
	colName = iota
	colSinkType
)

// strTest is a pushed-down predicate against an interned string column:
// "column present (string-typed) and <op> literal holds".
type strTest struct {
	col int    // colName or colSinkType
	op  string // = CONTAINS STARTSWITH ENDSWITH
	lit string
}

// propCheck is an inline-property constraint that has no indexed column;
// it reads the live store exactly like the interpreter's nodeMatches.
type propCheck struct {
	prop string
	want any
}

// planLevel is one pattern position: an anchor scan (first node of a
// path) or a one-hop expansion from the previous level.
type planLevel struct {
	anchor  bool
	rel     RelPattern // expansion levels only (MinHops == MaxHops == 1)
	slot    int        // binding slot of the node variable; -1 when anonymous
	label   string     // for EXPLAIN
	bits    []uint64   // conjunction of label/flag bitsets (+ propagation); nil = every node
	est     int        // estimated cardinality before propagation
	propEst int        // estimated cardinality after propagation (-1 when not propagated)
	tests   []strTest
	props   []propCheck
	flags   []string // pushed flag names, for EXPLAIN
}

// Plan is a compiled query. A Plan is immutable after PlanQuery and can
// be re-run; each Run spawns a fresh cursor. The store behind src is
// only materialized when a cursor hits a constraint or projection the
// index does not model (see Source).
type Plan struct {
	q   *Query
	src Source
	ix  *searchindex.Index
	n   int // node count at compile time

	slotOf   map[string]int
	nslots   int
	levels   []planLevel
	starts   []int  // level index of each path's anchor
	residual []Expr // WHERE conjuncts not pushed onto scans

	hasCount bool
	distinct bool

	propagated bool // at least one path pruned by backward propagation
}

// PlanQuery compiles q against db's search index. It returns an error
// naming the unsupported construct when the query needs the interpreter
// (Execute falls back transparently; EXPLAIN prints the reason).
func PlanQuery(db *graphdb.DB, q *Query) (*Plan, error) {
	return PlanQuerySource(DBSource(db), q)
}

// PlanQuerySource compiles q against src's compiled index. Compilation
// itself never touches the generic store, so it works unchanged on
// database-free (mmap-viewed) indexes.
func PlanQuerySource(src Source, q *Query) (*Plan, error) {
	if len(q.Paths) == 0 {
		return nil, &Error{Msg: "not plannable: query has no MATCH pattern"}
	}
	for _, path := range q.Paths {
		for _, rel := range path.Rels {
			if rel.MinHops != 1 || rel.MaxHops != 1 {
				return nil, &Error{Msg: fmt.Sprintf(
					"not plannable: variable-length relationship *%d..%d", rel.MinHops, rel.MaxHops)}
			}
		}
	}
	ix := src.Index()
	p := &Plan{q: q, src: src, ix: ix, n: ix.NumNodes(), slotOf: map[string]int{}}

	for _, item := range q.Return {
		if item.Count {
			p.hasCount = true
		}
		if item.Distinct && !item.Count {
			p.distinct = true
		}
	}

	slot := func(v string) int {
		if v == "" {
			return -1
		}
		s, ok := p.slotOf[v]
		if !ok {
			s = p.nslots
			p.slotOf[v] = s
			p.nslots++
		}
		return s
	}

	for _, path := range q.Paths {
		p.starts = append(p.starts, len(p.levels))
		for i, n := range path.Nodes {
			lv := planLevel{anchor: i == 0, slot: slot(n.Var), label: n.Label}
			if i > 0 {
				lv.rel = path.Rels[i-1]
			}
			if n.Label != "" {
				lv.bits = p.andBits(lv.bits, ix.LabelBits(n.Label))
			}
			p.compileProps(&lv, n.Props)
			p.levels = append(p.levels, lv)
		}
	}

	p.compileWhere(q.Where)

	for i := range p.levels {
		p.levels[i].est = p.estimate(&p.levels[i])
		p.levels[i].propEst = -1
	}
	p.propagate()
	return p, nil
}

// andBits intersects acc with bs, copying on first use so index-owned
// bitsets are never aliased into a mutable plan. A nil bs (label or flag
// no node carries) yields the empty set.
func (p *Plan) andBits(acc, bs []uint64) []uint64 {
	words := (p.n + 63) / 64
	if acc == nil {
		acc = make([]uint64, words)
		if bs == nil {
			return acc // empty: nothing carries the constraint
		}
		copy(acc, bs)
		return acc
	}
	if bs == nil {
		for i := range acc {
			acc[i] = 0
		}
		return acc
	}
	for i := range acc {
		acc[i] &= bs[i]
	}
	return acc
}

// compileProps lowers a node pattern's inline property map: boolean
// source/sink flags become bitset terms, NAME/SINK_TYPE equalities
// become interned-column tests, and everything else stays a live-store
// check (exactly nodeMatches' semantics).
func (p *Plan) compileProps(lv *planLevel, props map[string]any) {
	for prop, want := range props {
		if !p.pushProp(lv, prop, "=", want, false) {
			lv.props = append(lv.props, propCheck{prop: prop, want: want})
		}
	}
}

// pushProp pushes one `prop <op> literal` test onto the level when an
// indexed column models it exactly; reports whether it did. strOnly
// restricts to string-column tests (CONTAINS etc. have no flag form).
func (p *Plan) pushProp(lv *planLevel, prop, op string, lit any, strOnly bool) bool {
	switch prop {
	case "IS_SOURCE", "IS_SINK":
		// Only `= true` matches the bitset exactly: the interpreter
		// treats an absent property as a failed comparison, and the bit
		// is set iff the property is present, bool-typed, and true.
		if strOnly || op != "=" {
			return false
		}
		if b, ok := lit.(bool); !ok || !b {
			return false
		}
		if prop == "IS_SOURCE" {
			lv.bits = p.andBits(lv.bits, p.ix.SourceBits())
		} else {
			lv.bits = p.andBits(lv.bits, p.ix.SinkBits())
		}
		lv.flags = append(lv.flags, prop)
		return true
	case "NAME", "SINK_TYPE":
		s, ok := lit.(string)
		if !ok {
			return false
		}
		col := colName
		if prop == "SINK_TYPE" {
			col = colSinkType
		}
		lv.tests = append(lv.tests, strTest{col: col, op: op, lit: s})
		return true
	}
	return false
}

// compileWhere splits the WHERE tree into top-level conjuncts and pushes
// the ones an indexed column models exactly onto every level binding the
// tested variable; the rest stay residual and are evaluated per match,
// exactly like the interpreter's single end-of-pattern evaluation.
// Pushing is sound because a pushed conjunct references one variable
// only: any binding the scan filters out would have failed WHERE.
func (p *Plan) compileWhere(e Expr) {
	if e == nil {
		return
	}
	if b, ok := e.(*BinExpr); ok && b.Op == "AND" {
		p.compileWhere(b.L)
		p.compileWhere(b.R)
		return
	}
	if p.pushConjunct(e) {
		return
	}
	p.residual = append(p.residual, e)
}

// pushConjunct pushes a single comparison onto the levels binding its
// variable. Only shapes whose indexed-column semantics are exact are
// eligible; see the strTest/flag comments.
func (p *Plan) pushConjunct(e Expr) bool {
	c, ok := e.(*CmpExpr)
	if !ok {
		return false
	}
	acc, lit := c.L, c.R
	swapped := false
	if acc.IsLiteral && !lit.IsLiteral {
		acc, lit = lit, acc
		swapped = true
	}
	if acc.IsLiteral || !lit.IsLiteral || acc.Prop == "" {
		return false
	}
	// CONTAINS/STARTSWITH/ENDSWITH are not symmetric; only `=` survives
	// a literal-on-the-left swap (valueEqual is).
	if swapped && c.Op != "=" {
		return false
	}
	switch c.Op {
	case "=", "CONTAINS", "STARTSWITH", "ENDSWITH":
	default:
		return false
	}
	slot, bound := p.slotOf[acc.Var]
	if !bound {
		return false // unbound variable: residual evaluation yields false
	}
	// Trial-push onto a scratch level first: only commit to the real
	// levels when the shape is supported at all.
	var probe planLevel
	if !p.pushProp(&probe, acc.Prop, c.Op, lit.Literal, c.Op != "=") {
		return false
	}
	for i := range p.levels {
		if p.levels[i].slot == slot {
			p.pushProp(&p.levels[i], acc.Prop, c.Op, lit.Literal, c.Op != "=")
		}
	}
	return true
}

// estimate approximates a level's candidate cardinality: bitset
// popcount when a bitset constrains it, node count otherwise. String
// tests and live-store checks are not estimated (no histograms); the
// bitsets dominate selectivity in this schema.
func (p *Plan) estimate(lv *planLevel) int {
	if lv.bits == nil {
		return p.n
	}
	n := 0
	for _, w := range lv.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// propagate performs the order-preserving join reordering: per path,
// when some downstream level is estimated more selective than the
// anchor, the most selective level drives a backward reachability pass
// — S_j = C_j ∧ (some rel-j neighbour lies in S_{j+1}) — shrinking
// every upstream scan (including the anchor) to nodes that can still
// complete the chain. Emission order is untouched: the forward walk
// still enumerates in ascending node order, it just skips provably dead
// branches.
func (p *Plan) propagate() {
	words := (p.n + 63) / 64
	for pi, lo := range p.starts {
		hi := len(p.levels)
		if pi+1 < len(p.starts) {
			hi = p.starts[pi+1]
		}
		if hi-lo < 2 {
			continue
		}
		best := p.levels[lo].est
		for j := lo + 1; j < hi; j++ {
			if p.levels[j].est < best {
				best = p.levels[j].est
			}
		}
		if best >= p.levels[lo].est {
			continue // anchor already the most selective: nothing to gain
		}
		p.propagated = true
		next := p.levels[hi-1].bits // nil means "every node", handled below
		for j := hi - 2; j >= lo; j-- {
			lv := &p.levels[j]
			s := make([]uint64, words)
			rel := p.levels[j+1].rel
			forEach := func(v int32) {
				if p.anyNeighborIn(rel, v, next) {
					s[v>>6] |= 1 << (uint(v) & 63)
				}
			}
			if lv.bits == nil {
				for v := int32(0); v < int32(p.n); v++ {
					forEach(v)
				}
			} else {
				for wi, w := range lv.bits {
					for ; w != 0; w &= w - 1 {
						forEach(int32(wi<<6 | bits.TrailingZeros64(w)))
					}
				}
			}
			lv.bits = s
			lv.propEst = p.estimate(lv)
			next = s
		}
	}
}

// anyNeighborIn reports whether v has at least one rel-pattern neighbour
// inside set s (nil s = any neighbour at all).
func (p *Plan) anyNeighborIn(rel RelPattern, v int32, s []uint64) bool {
	hit := func(row []int32) bool {
		if s == nil {
			return len(row) > 0
		}
		for _, w := range row {
			if s[w>>6]&(1<<(uint(w)&63)) != 0 {
				return true
			}
		}
		return false
	}
	types := []string{rel.Type}
	if rel.Type == "" {
		types = p.ix.RelTypes()
	}
	for _, t := range types {
		if rel.Dir != DirLeft && hit(p.ix.OutNeighbors(t, v)) {
			return true
		}
		if rel.Dir != DirRight && hit(p.ix.InNeighbors(t, v)) {
			return true
		}
	}
	return false
}

// Explain renders the plan as one line per step, with cost estimates.
func (p *Plan) Explain() []string {
	out := []string{fmt.Sprintf("plan: indexed (nodes=%d)", p.n)}
	li := 0
	for pi := range p.starts {
		hi := len(p.levels)
		if pi+1 < len(p.starts) {
			hi = p.starts[pi+1]
		}
		out = append(out, fmt.Sprintf("path %d:", pi))
		for ; li < hi; li++ {
			lv := &p.levels[li]
			var b strings.Builder
			if lv.anchor {
				b.WriteString("  scan")
			} else {
				arrow := "-[%s]-"
				switch lv.rel.Dir {
				case DirRight:
					arrow = "-[%s]->"
				case DirLeft:
					arrow = "<-[%s]-"
				}
				typ := lv.rel.Type
				if typ == "" {
					typ = "*any*"
				}
				fmt.Fprintf(&b, "  expand %s", fmt.Sprintf(arrow, typ))
			}
			name := "_"
			for v, s := range p.slotOf {
				if s == lv.slot {
					name = v
				}
			}
			fmt.Fprintf(&b, " %s:", name)
			var cons []string
			if lv.label != "" {
				cons = append(cons, "label "+lv.label)
			}
			cons = append(cons, lv.flags...)
			for _, t := range lv.tests {
				col := "NAME"
				if t.col == colSinkType {
					col = "SINK_TYPE"
				}
				cons = append(cons, fmt.Sprintf("%s %s %q", col, t.op, t.lit))
			}
			for _, pc := range lv.props {
				cons = append(cons, fmt.Sprintf("%s = %v (store)", pc.prop, pc.want))
			}
			if len(cons) == 0 {
				cons = append(cons, "all nodes")
			}
			fmt.Fprintf(&b, " %s, est %d/%d", strings.Join(cons, " ∧ "), lv.est, p.n)
			if lv.propEst >= 0 {
				fmt.Fprintf(&b, " → %d after propagation", lv.propEst)
			}
			out = append(out, b.String())
		}
	}
	if p.propagated {
		out = append(out, "reorder: most selective level drives backward set propagation")
	} else {
		out = append(out, "reorder: none (anchor is the most selective level)")
	}
	out = append(out, fmt.Sprintf("where: %d pushed-down conjunct(s) on scans, %d residual",
		p.pushedCount(), len(p.residual)))
	var ret []string
	for _, item := range p.q.Return {
		ret = append(ret, item.Label())
	}
	out = append(out, "return: "+strings.Join(ret, ", "))
	switch {
	case p.q.OrderBy >= 0 && p.q.Limit > 0:
		out = append(out, fmt.Sprintf("order+limit: sort then take %d (no early exit: ORDER BY needs all rows)", p.q.Limit))
	case p.q.OrderBy >= 0:
		out = append(out, "order: sort full row set")
	case p.q.Limit > 0:
		out = append(out, fmt.Sprintf("limit: %d pushed into cursor (early exit)", p.q.Limit))
	}
	return out
}

func (p *Plan) pushedCount() int {
	n := 0
	for i := range p.levels {
		n += len(p.levels[i].flags) + len(p.levels[i].tests)
	}
	// Inline pattern props also land in flags/tests but were never WHERE
	// conjuncts; the distinction is not worth tracking for EXPLAIN.
	return n
}
