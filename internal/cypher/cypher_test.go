package cypher

import (
	"strings"
	"testing"

	"tabby/internal/graphdb"
)

// buildTestGraph: three Method nodes in a call chain plus one Class.
//
//	src -CALL-> mid -CALL-> sink ; impl -ALIAS-> mid ; Class -HAS-> src
func buildTestGraph(t *testing.T) *graphdb.DB {
	t.Helper()
	db := graphdb.New()
	method := func(name string, source, sink bool) graphdb.ID {
		return db.CreateNode([]string{"Method"}, graphdb.Props{
			"NAME": name, "IS_SOURCE": source, "IS_SINK": sink, "PARAM_COUNT": len(name),
		})
	}
	src := method("a.A#readObject()", true, false)
	mid := method("a.A#mid()", false, false)
	sink := method("java.lang.Runtime#exec(java.lang.String)", false, true)
	impl := method("a.B#mid()", false, false)
	cls := db.CreateNode([]string{"Class"}, graphdb.Props{"NAME": "a.A"})
	rel := func(typ string, from, to graphdb.ID) {
		if _, err := db.CreateRel(typ, from, to, graphdb.Props{"POLLUTED_POSITION": []int{0}}); err != nil {
			t.Fatal(err)
		}
	}
	rel("CALL", src, mid)
	rel("CALL", mid, sink)
	rel("ALIAS", impl, mid)
	rel("HAS", cls, src)
	return db
}

func mustRun(t *testing.T, db *graphdb.DB, q string) *Result {
	t.Helper()
	res, err := Run(db, q)
	if err != nil {
		t.Fatalf("Run(%q): %v", q, err)
	}
	return res
}

func TestMatchByLabelAndProp(t *testing.T) {
	db := buildTestGraph(t)
	res := mustRun(t, db, `MATCH (m:Method {IS_SINK: true}) RETURN m.NAME`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "java.lang.Runtime#exec(java.lang.String)" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "m.NAME" {
		t.Errorf("column = %q", res.Columns[0])
	}
}

func TestMatchRelationshipDirections(t *testing.T) {
	db := buildTestGraph(t)
	// Forward.
	res := mustRun(t, db, `MATCH (a:Method {NAME: "a.A#readObject()"})-[:CALL]->(b) RETURN b.NAME`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "a.A#mid()" {
		t.Fatalf("forward rows = %v", res.Rows)
	}
	// Backward arrow.
	res = mustRun(t, db, `MATCH (a:Method {NAME: "a.A#mid()"})<-[:CALL]-(b) RETURN b.NAME`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "a.A#readObject()" {
		t.Fatalf("backward rows = %v", res.Rows)
	}
	// Undirected sees both CALL neighbours of mid.
	res = mustRun(t, db, `MATCH (a:Method {NAME: "a.A#mid()"})-[:CALL]-(b) RETURN b.NAME`)
	if len(res.Rows) != 2 {
		t.Fatalf("undirected rows = %v", res.Rows)
	}
}

func TestVariableLengthPath(t *testing.T) {
	db := buildTestGraph(t)
	res := mustRun(t, db, `MATCH (a:Method {IS_SOURCE: true})-[:CALL*1..3]->(b:Method {IS_SINK: true}) RETURN b.NAME`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Min hops 2 excludes the direct neighbour.
	res = mustRun(t, db, `MATCH (a:Method {IS_SOURCE: true})-[:CALL*2..3]->(b) RETURN b.NAME`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "java.lang.Runtime#exec(java.lang.String)" {
		t.Fatalf("min-hop rows = %v", res.Rows)
	}
}

func TestWhereClause(t *testing.T) {
	db := buildTestGraph(t)
	res := mustRun(t, db, `MATCH (m:Method) WHERE m.NAME CONTAINS "exec" AND m.IS_SINK = true RETURN m.NAME`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustRun(t, db, `MATCH (m:Method) WHERE m.NAME STARTS WITH "a.A" RETURN m.NAME`)
	if len(res.Rows) != 2 {
		t.Fatalf("starts-with rows = %v", res.Rows)
	}
	res = mustRun(t, db, `MATCH (m:Method) WHERE NOT m.IS_SOURCE = true AND m.NAME ENDS WITH "mid()" RETURN m.NAME`)
	if len(res.Rows) != 2 {
		t.Fatalf("not rows = %v", res.Rows)
	}
	res = mustRun(t, db, `MATCH (m:Method) WHERE m.PARAM_COUNT > 20 RETURN m.NAME`)
	for _, row := range res.Rows {
		name, _ := row[0].(string)
		if len(name) <= 20 {
			t.Errorf("numeric comparison wrong: %v", row)
		}
	}
}

func TestCountAndGrouping(t *testing.T) {
	db := buildTestGraph(t)
	res := mustRun(t, db, `MATCH (m:Method) RETURN COUNT(*)`)
	if len(res.Rows) != 1 || res.Rows[0][0] != 4 {
		t.Fatalf("count rows = %v", res.Rows)
	}
	// Group by sink flag.
	res = mustRun(t, db, `MATCH (m:Method) RETURN m.IS_SINK, COUNT(*)`)
	if len(res.Rows) != 2 {
		t.Fatalf("grouped rows = %v", res.Rows)
	}
	total := 0
	for _, row := range res.Rows {
		n, _ := row[1].(int)
		total += n
	}
	if total != 4 {
		t.Errorf("group counts sum to %d", total)
	}
}

func TestLimitAndDistinct(t *testing.T) {
	db := buildTestGraph(t)
	res := mustRun(t, db, `MATCH (m:Method) RETURN m.NAME LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("limit rows = %v", res.Rows)
	}
	res = mustRun(t, db, `MATCH (m:Method) RETURN DISTINCT m.IS_SINK`)
	if len(res.Rows) != 2 {
		t.Fatalf("distinct rows = %v", res.Rows)
	}
}

func TestMultiplePatternsShareVariables(t *testing.T) {
	db := buildTestGraph(t)
	res := mustRun(t, db, `MATCH (c:Class)-[:HAS]->(m), (m)-[:CALL]->(n) RETURN c.NAME, n.NAME`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "a.A" || res.Rows[0][1] != "a.A#mid()" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestWholeEntityProjection(t *testing.T) {
	db := buildTestGraph(t)
	res := mustRun(t, db, `MATCH (m:Method {IS_SOURCE: true}) RETURN m`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "a.A#readObject()" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`MATCH (a RETURN a`,
		`MATCH (a) WHERE RETURN a`,
		`MATCH (a)-[>(b) RETURN a`,
		`MATCH (a) RETURN`,
		`MATCH (a) RETURN a LIMIT x`,
		`MATCH (a)<-[:X]->(b) RETURN a`,
		`MATCH (a) RETURN a extra`,
		`MATCH (a:) RETURN a`,
		`MATCH (a {X: }) RETURN a`,
	}
	for _, q := range bad {
		if _, err := Run(graphdb.New(), q); err == nil {
			t.Errorf("Run(%q) must fail", q)
		}
	}
}

func TestUnboundReturnVariable(t *testing.T) {
	db := buildTestGraph(t)
	if _, err := Run(db, `MATCH (m:Method {IS_SOURCE: true}) RETURN ghost.NAME`); err == nil {
		t.Fatal("unbound return variable must error")
	}
}

func TestResultFormat(t *testing.T) {
	db := buildTestGraph(t)
	res := mustRun(t, db, `MATCH (m:Method {IS_SINK: true}) RETURN m.NAME, m.IS_SINK`)
	s := res.Format()
	if !strings.Contains(s, "m.NAME") || !strings.Contains(s, "(1 rows)") {
		t.Errorf("Format() = %q", s)
	}
}

func TestAnonymousNodesAndAnyRelType(t *testing.T) {
	db := buildTestGraph(t)
	res := mustRun(t, db, `MATCH (:Class)-[]->(m) RETURN m.NAME`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "a.A#readObject()" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := buildTestGraph(t)
	res := mustRun(t, db, `MATCH (m:Method) RETURN m.NAME ORDER BY m.NAME`)
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].(string) > res.Rows[i][0].(string) {
			t.Fatalf("not sorted: %v", res.Rows)
		}
	}
	res = mustRun(t, db, `MATCH (m:Method) RETURN m.NAME ORDER BY m.NAME DESC LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("limit after order: %v", res.Rows)
	}
	if res.Rows[0][0].(string) < res.Rows[1][0].(string) {
		t.Fatalf("not descending: %v", res.Rows)
	}
	// ORDER BY with grouping: most-called first.
	res = mustRun(t, db, `MATCH (m:Method) RETURN m.IS_SINK, COUNT(*) ORDER BY COUNT(*) DESC`)
	if len(res.Rows) != 2 || res.Rows[0][1].(int) < res.Rows[1][1].(int) {
		t.Fatalf("grouped order: %v", res.Rows)
	}
	// ORDER BY must reference a returned item.
	if _, err := Run(db, `MATCH (m:Method) RETURN m.NAME ORDER BY m.GHOST`); err == nil {
		t.Fatal("ORDER BY on non-returned item must fail")
	}
}

func TestCallProcedures(t *testing.T) {
	db := buildTestGraph(t)
	// The test graph's sink has no TRIGGER_CONDITION; add one.
	sinkID := db.FindNodes("Method", "IS_SINK", true)[0]
	if err := db.SetNodeProp(sinkID, "TRIGGER_CONDITION", []int{0}); err != nil {
		t.Fatal(err)
	}
	res, err := RunAny(db, `CALL tabby.findGadgetChains(6)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "source" || len(res.Rows) != 1 {
		t.Fatalf("procedure rows = %v", res.Rows)
	}
	if res.Rows[0][0] != "a.A#readObject()" {
		t.Errorf("chain source = %v", res.Rows[0][0])
	}
	res, err = RunAny(db, `CALL tabby.sinks()`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("sinks rows = %v", res.Rows)
	}
	res, err = RunAny(db, `CALL tabby.sources()`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("sources rows = %v", res.Rows)
	}
	res, err = RunAny(db, `CALL tabby.indexStats()`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Columns[0] != "nodes" {
		t.Fatalf("indexStats = %v %v", res.Columns, res.Rows)
	}
	if nodes, ok := res.Rows[0][0].(int); !ok || nodes != db.Stats().Nodes {
		t.Errorf("indexStats nodes = %v, want %d", res.Rows[0][0], db.Stats().Nodes)
	}
	// Dispatch: plain MATCH still works through RunAny.
	res, err = RunAny(db, `MATCH (m:Method) RETURN COUNT(*)`)
	if err != nil || res.Rows[0][0] != 4 {
		t.Fatalf("RunAny MATCH: %v %v", err, res)
	}
	// Errors.
	if _, err := RunAny(db, `CALL nope.proc()`); err == nil {
		t.Error("unknown procedure must fail")
	}
	if _, err := RunAny(db, `CALL tabby.findGadgetChains(x)`); err == nil {
		t.Error("bad argument must fail")
	}
	if _, err := RunAny(db, `CALL `); err == nil {
		t.Error("missing name must fail")
	}
	if _, err := RunAny(db, `CALL tabby.sinks(`); err == nil {
		t.Error("unterminated args must fail")
	}
}
