package cypher

// Query is a parsed MATCH…WHERE…RETURN statement.
type Query struct {
	Paths  []PatternPath
	Where  Expr // nil when absent
	Return []ReturnItem
	// OrderBy indexes into Return (0-based); negative means absent.
	OrderBy    int
	Descending bool
	Limit      int // 0 = unlimited
}

// PatternPath is a linear chain: node (rel node)*.
type PatternPath struct {
	Nodes []NodePattern
	Rels  []RelPattern // len(Rels) == len(Nodes)-1
}

// NodePattern matches a node: optional variable, label and property map.
type NodePattern struct {
	Var   string
	Label string
	Props map[string]any
}

// RelDirection orients a relationship pattern.
type RelDirection int

// Directions: (a)-[r]->(b), (a)<-[r]-(b), (a)-[r]-(b).
const (
	DirRight RelDirection = iota + 1
	DirLeft
	DirAny
)

// RelPattern matches a relationship (or variable-length chain).
type RelPattern struct {
	Var     string
	Type    string // "" = any type
	Dir     RelDirection
	MinHops int // 1 when not variable-length
	MaxHops int
}

// ReturnItem is a projection: a variable, a property access, or COUNT(*).
type ReturnItem struct {
	Var      string
	Prop     string // "" = whole entity
	Count    bool   // COUNT(*) or COUNT(var)
	Distinct bool
}

// Label renders the column header.
func (r ReturnItem) Label() string {
	switch {
	case r.Count && r.Var == "":
		return "COUNT(*)"
	case r.Count:
		return "COUNT(" + r.Var + ")"
	case r.Prop != "":
		return r.Var + "." + r.Prop
	default:
		return r.Var
	}
}

// Expr is a WHERE expression.
type Expr interface{ expr() }

// BinExpr combines two expressions with AND/OR.
type BinExpr struct {
	Op   string // "AND" | "OR"
	L, R Expr
}

// NotExpr negates an expression.
type NotExpr struct{ E Expr }

// CmpExpr compares a property access against a literal or another access.
type CmpExpr struct {
	Op   string // = <> < <= > >= CONTAINS STARTSWITH ENDSWITH
	L, R Operand
}

func (*BinExpr) expr() {}
func (*NotExpr) expr() {}
func (*CmpExpr) expr() {}

// Operand is a literal value or a property access.
type Operand struct {
	// Literal is set when IsLiteral.
	Literal   any
	IsLiteral bool
	// Var/Prop access otherwise.
	Var  string
	Prop string
}
