package cypher

import (
	"fmt"
	"strconv"
	"strings"

	"tabby/internal/graphdb"
	"tabby/internal/pathfinder"
	"tabby/internal/searchindex"
)

// The real tabby-path-finder ships as a Neo4j procedure invoked from
// Cypher; this file reproduces that integration surface:
//
//	CALL tabby.findGadgetChains()
//	CALL tabby.findGadgetChains(8)          // custom Evaluator depth
//	CALL tabby.sinks()                      // list sink method nodes
//	CALL tabby.sources()                    // list source method nodes
//	CALL tabby.indexStats()                 // compiled search index layout
//
// RunAny dispatches between plain MATCH queries and CALL procedures, so
// cmd/tabby-query exposes both through one prompt.

// RunAny executes either a MATCH query or a CALL procedure.
func RunAny(db *graphdb.DB, query string) (*Result, error) {
	trimmed := strings.TrimSpace(query)
	if len(trimmed) >= 4 && strings.EqualFold(trimmed[:4], "CALL") {
		return RunProcedure(db, trimmed)
	}
	return Run(db, query)
}

// RunProcedure executes a CALL statement.
func RunProcedure(db *graphdb.DB, query string) (*Result, error) {
	name, args, err := parseCall(query)
	if err != nil {
		return nil, err
	}
	switch name {
	case "tabby.findGadgetChains":
		opts := pathfinder.Options{}
		if len(args) >= 1 {
			opts.MaxDepth = args[0]
		}
		if len(args) >= 2 {
			opts.MaxChains = args[1]
		}
		res, err := pathfinder.Find(db, opts)
		if err != nil {
			return nil, err
		}
		out := &Result{Columns: []string{"source", "sink", "sinkType", "length", "chain"}}
		for _, c := range res.Chains {
			out.Rows = append(out.Rows, []any{
				c.Names[0],
				c.Names[len(c.Names)-1],
				c.SinkType,
				len(c.Names),
				strings.Join(c.Names, " -> "),
			})
		}
		return out, nil
	case "tabby.sinks":
		return nodeListing(db, "IS_SINK", []string{"name", "sinkType"}, func(id graphdb.ID) []any {
			name, _ := db.NodeProp(id, "NAME")
			st, _ := db.NodeProp(id, "SINK_TYPE")
			return []any{name, st}
		})
	case "tabby.sources":
		return nodeListing(db, "IS_SOURCE", []string{"name"}, func(id graphdb.ID) []any {
			name, _ := db.NodeProp(id, "NAME")
			return []any{name}
		})
	case "tabby.indexStats":
		// Observability for the compiled search index Find traverses:
		// compiles (and caches) the index if no search has run yet.
		st := searchindex.For(db).Stats()
		return &Result{
			Columns: []string{"nodes", "callEdges", "aliasSlots", "internedArrays", "intPoolLen", "builds"},
			Rows: [][]any{{
				st.Nodes, st.CallEdges, st.AliasSlots, st.InternedArrays, st.IntPoolLen, int(searchindex.Builds()),
			}},
		}, nil
	default:
		return nil, &Error{Msg: fmt.Sprintf("unknown procedure %q", name)}
	}
}

func nodeListing(db *graphdb.DB, flag string, cols []string, project func(graphdb.ID) []any) (*Result, error) {
	out := &Result{Columns: cols}
	for _, id := range db.FindNodes("Method", flag, true) {
		out.Rows = append(out.Rows, project(id))
	}
	return out, nil
}

// parseCall parses `CALL name.space.proc(arg, arg)` with integer args.
func parseCall(query string) (string, []int, error) {
	rest := strings.TrimSpace(query[4:])
	open := strings.IndexByte(rest, '(')
	name := rest
	var argText string
	if open >= 0 {
		if !strings.HasSuffix(strings.TrimSpace(rest), ")") {
			return "", nil, &Error{Msg: "unterminated CALL argument list"}
		}
		name = strings.TrimSpace(rest[:open])
		inner := strings.TrimSpace(rest)
		argText = inner[open+1 : len(inner)-1]
	}
	name = strings.TrimSpace(name)
	if name == "" {
		return "", nil, &Error{Msg: "CALL requires a procedure name"}
	}
	var args []int
	if strings.TrimSpace(argText) != "" {
		for _, part := range strings.Split(argText, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return "", nil, &Error{Msg: fmt.Sprintf("bad CALL argument %q", part)}
			}
			args = append(args, n)
		}
	}
	return name, args, nil
}
