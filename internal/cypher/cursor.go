package cypher

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"tabby/internal/graphdb"
)

// This file is the plan runner: a resumable backtracking cursor that
// walks the planLevels in the interpreter's exact enumeration order
// (ascending node index at every position), plus the epilogue
// (DISTINCT / COUNT grouping / ORDER BY / LIMIT) replicated from
// ExecuteGeneric so results stay byte-identical.

// Candidate-source modes for one level.
const (
	scanBits   = iota // bitset word scan (anchor with constraints)
	scanRange         // every node 0..n-1 (unconstrained anchor)
	scanSingle        // anchor variable already bound by an earlier path
	scanEnds          // expansion: iterate a sorted-unique neighbour list
)

// levelState is the mutable per-level iteration state of one cursor.
type levelState struct {
	mode    int
	word    uint64 // scanBits: remaining bits of the current word
	wordIdx int    // scanBits: next word to load
	cur     int32  // scanRange position / scanSingle candidate
	done    bool   // scanSingle consumed

	ends []int32 // scanEnds: current neighbour list (may alias a CSR row)
	idx  int

	lists       [][]int32 // scratch: merge inputs (untyped / any-direction hops)
	pos         []int
	scratch     []int32   // scratch: merged neighbour buffer, reused per entry
	typeScratch [1]string // scratch: single-type iteration without allocating

	node  int32 // accepted node at this level
	wrote bool  // this level wrote its variable slot for the current node
}

// matchCursor streams pattern matches. After next() returns true, the
// bindings are in slots (node indexes; -1 unbound).
type matchCursor struct {
	p         *Plan
	slots     []int32
	levels    []levelState
	depth     int
	started   bool
	exhausted bool

	db  *graphdb.DB // lazily materialized from p.src on first store read
	err error       // sticky: a failed materialization ends the stream
}

// store materializes the generic property store behind the plan's
// source, once per cursor. On failure it records the error (surfaced by
// Run/Next) and returns nil; callers treat nil as "constraint cannot be
// checked" and the stream ends at the next advance.
func (mc *matchCursor) store() *graphdb.DB {
	if mc.db == nil && mc.err == nil {
		mc.db, mc.err = mc.p.src.DB()
		if mc.db == nil && mc.err == nil {
			mc.err = &Error{Msg: "query source returned no store"}
		}
	}
	return mc.db
}

func (p *Plan) newCursor() *matchCursor {
	mc := &matchCursor{
		p:      p,
		slots:  make([]int32, p.nslots),
		levels: make([]levelState, len(p.levels)),
	}
	for i := range mc.slots {
		mc.slots[i] = -1
	}
	return mc
}

// next advances to the next full match, returning false when exhausted.
func (mc *matchCursor) next() bool {
	if mc.exhausted {
		return false
	}
	if !mc.started {
		mc.started = true
		mc.depth = 0
		mc.enter(0)
	} else {
		mc.depth = len(mc.levels) - 1
	}
	for mc.depth >= 0 {
		if mc.err != nil {
			break
		}
		if !mc.advanceLevel(mc.depth) {
			mc.depth--
			continue
		}
		if mc.depth == len(mc.levels)-1 {
			if mc.residualOK() {
				return true
			}
			continue
		}
		mc.depth++
		mc.enter(mc.depth)
	}
	mc.exhausted = true
	return false
}

// enter initializes level i's candidate source for the current parent
// bindings.
func (mc *matchCursor) enter(i int) {
	lv := &mc.levels[i]
	pl := &mc.p.levels[i]
	if pl.anchor {
		if pl.slot >= 0 && mc.slots[pl.slot] >= 0 {
			lv.mode, lv.cur, lv.done = scanSingle, mc.slots[pl.slot], false
			return
		}
		if pl.bits != nil {
			lv.mode, lv.word, lv.wordIdx = scanBits, 0, 0
			return
		}
		lv.mode, lv.cur = scanRange, 0
		return
	}

	parent := mc.levels[i-1].node
	lv.mode, lv.idx = scanEnds, 0
	ix := mc.p.ix
	rel := pl.rel
	if rel.Type != "" {
		switch rel.Dir {
		case DirRight:
			lv.ends = ix.OutNeighbors(rel.Type, parent)
			return
		case DirLeft:
			lv.ends = ix.InNeighbors(rel.Type, parent)
			return
		}
	}
	// Any-direction and/or any-type hop: merge the constituent sorted
	// rows (each already unique) into one sorted-unique stream — the
	// order expandRel's sort produces.
	lv.lists = lv.lists[:0]
	var types []string
	if rel.Type != "" {
		lv.typeScratch[0] = rel.Type
		types = lv.typeScratch[:]
	} else {
		types = mc.p.ix.RelTypes()
	}
	for _, t := range types {
		if rel.Dir != DirLeft {
			if row := ix.OutNeighbors(t, parent); len(row) > 0 {
				lv.lists = append(lv.lists, row)
			}
		}
		if rel.Dir != DirRight {
			if row := ix.InNeighbors(t, parent); len(row) > 0 {
				lv.lists = append(lv.lists, row)
			}
		}
	}
	switch len(lv.lists) {
	case 0:
		lv.ends = nil
	case 1:
		lv.ends = lv.lists[0]
	default:
		lv.pos = lv.pos[:0]
		for range lv.lists {
			lv.pos = append(lv.pos, 0)
		}
		lv.scratch = mergeUnique(lv.scratch[:0], lv.lists, lv.pos)
		lv.ends = lv.scratch
	}
}

// mergeUnique merges sorted-unique int32 lists into dst, ascending with
// duplicates collapsed. pos must hold one zeroed cursor per list.
func mergeUnique(dst []int32, lists [][]int32, pos []int) []int32 {
	for {
		best := int32(math.MaxInt32)
		found := false
		for li, l := range lists {
			if pos[li] < len(l) && (!found || l[pos[li]] < best) {
				best, found = l[pos[li]], true
			}
		}
		if !found {
			return dst
		}
		dst = append(dst, best)
		for li, l := range lists {
			if pos[li] < len(l) && l[pos[li]] == best {
				pos[li]++
			}
		}
	}
}

// advanceLevel steps level i to its next accepted candidate, undoing the
// previous candidate's binding first. Returns false when the level is
// exhausted.
func (mc *matchCursor) advanceLevel(i int) bool {
	lv := &mc.levels[i]
	pl := &mc.p.levels[i]
	if lv.wrote {
		mc.slots[pl.slot] = -1
		lv.wrote = false
	}
	for {
		v, ok := mc.nextCandidate(lv, pl)
		if !ok {
			return false
		}
		if !mc.accept(pl, v) {
			continue
		}
		lv.node = v
		if pl.slot >= 0 && mc.slots[pl.slot] < 0 {
			mc.slots[pl.slot] = v
			lv.wrote = true
		}
		return true
	}
}

func (mc *matchCursor) nextCandidate(lv *levelState, pl *planLevel) (int32, bool) {
	switch lv.mode {
	case scanSingle:
		if lv.done {
			return 0, false
		}
		lv.done = true
		return lv.cur, true
	case scanRange:
		if lv.cur >= int32(mc.p.n) {
			return 0, false
		}
		v := lv.cur
		lv.cur++
		return v, true
	case scanBits:
		for {
			if lv.word != 0 {
				t := bits.TrailingZeros64(lv.word)
				lv.word &= lv.word - 1
				return int32((lv.wordIdx-1)<<6 | t), true
			}
			if lv.wordIdx >= len(pl.bits) {
				return 0, false
			}
			lv.word = pl.bits[lv.wordIdx]
			lv.wordIdx++
		}
	default: // scanEnds
		if lv.idx >= len(lv.ends) {
			return 0, false
		}
		v := lv.ends[lv.idx]
		lv.idx++
		return v, true
	}
}

// accept applies the level's filters: bitset (label ∧ flags ∧
// propagation), interned-column tests, live-store property checks, and
// the already-bound-variable equality the interpreter enforces in
// matchChain. Pure conjunction, so the check order is free.
func (mc *matchCursor) accept(pl *planLevel, v int32) bool {
	if pl.bits != nil && pl.bits[v>>6]&(1<<(uint(v)&63)) == 0 {
		return false
	}
	for i := range pl.tests {
		if !mc.strOK(&pl.tests[i], v) {
			return false
		}
	}
	for i := range pl.props {
		if !mc.propOK(&pl.props[i], v) {
			return false
		}
	}
	if pl.slot >= 0 {
		if b := mc.slots[pl.slot]; b >= 0 && b != v {
			return false
		}
	}
	return true
}

func (mc *matchCursor) strOK(t *strTest, v int32) bool {
	var s string
	if t.col == colName {
		if !mc.p.ix.HasName(v) {
			return false
		}
		s = mc.p.ix.Name(v)
	} else {
		if !mc.p.ix.HasSinkType(v) {
			return false
		}
		s = mc.p.ix.SinkType(v)
	}
	switch t.op {
	case "=":
		return s == t.lit
	case "CONTAINS":
		return strings.Contains(s, t.lit)
	case "STARTSWITH":
		return strings.HasPrefix(s, t.lit)
	case "ENDSWITH":
		return strings.HasSuffix(s, t.lit)
	}
	return false
}

// propOK checks an unindexed inline property against the live store,
// exactly like nodeMatches: present and valueEqual.
func (mc *matchCursor) propOK(pc *propCheck, v int32) bool {
	db := mc.store()
	if db == nil {
		return false
	}
	val, ok := db.NodeProp(mc.p.ix.IDOf(v), pc.prop)
	return ok && valueEqual(val, pc.want)
}

// residualOK evaluates the WHERE conjuncts that were not pushed onto
// scans, with the interpreter's semantics (missing operand → false).
func (mc *matchCursor) residualOK() bool {
	for _, e := range mc.p.residual {
		if !mc.evalExpr(e) {
			return false
		}
	}
	return true
}

func (mc *matchCursor) evalExpr(e Expr) bool {
	switch n := e.(type) {
	case *BinExpr:
		if n.Op == "AND" {
			return mc.evalExpr(n.L) && mc.evalExpr(n.R)
		}
		return mc.evalExpr(n.L) || mc.evalExpr(n.R)
	case *NotExpr:
		return !mc.evalExpr(n.E)
	case *CmpExpr:
		l, lok := mc.operandValue(n.L)
		r, rok := mc.operandValue(n.R)
		if !lok || !rok {
			return false
		}
		return compare(n.Op, l, r)
	default:
		return false
	}
}

func (mc *matchCursor) operandValue(op Operand) (any, bool) {
	if op.IsLiteral {
		return op.Literal, true
	}
	slot, ok := mc.p.slotOf[op.Var]
	if !ok {
		return nil, false
	}
	v := mc.slots[slot]
	if v < 0 {
		return nil, false
	}
	id := mc.p.ix.IDOf(v)
	if op.Prop == "" {
		return int(id), true
	}
	db := mc.store()
	if db == nil {
		return nil, false
	}
	return db.NodeProp(id, op.Prop)
}

// project evaluates the RETURN items for the current match (non-COUNT
// queries only; COUNT goes through aggregate).
func (mc *matchCursor) project() ([]any, error) {
	row := make([]any, 0, len(mc.p.q.Return))
	for _, item := range mc.p.q.Return {
		v, err := mc.itemNode(item.Var, "RETURN")
		if err != nil {
			return nil, err
		}
		if item.Prop == "" {
			row = append(row, mc.entityLabel(v))
			continue
		}
		row = append(row, mc.propValue(v, item.Prop))
	}
	return row, nil
}

func (mc *matchCursor) itemNode(varName, clause string) (int32, error) {
	if slot, ok := mc.p.slotOf[varName]; ok {
		if v := mc.slots[slot]; v >= 0 {
			return v, nil
		}
	}
	return -1, &Error{Msg: fmt.Sprintf("unbound variable %q in %s", varName, clause)}
}

// propValue reads a projected property: interned columns when they model
// the value exactly, the live store otherwise (nil when absent).
func (mc *matchCursor) propValue(v int32, prop string) any {
	switch prop {
	case "NAME":
		if mc.p.ix.HasName(v) {
			return mc.p.ix.Name(v)
		}
	case "SINK_TYPE":
		if mc.p.ix.HasSinkType(v) {
			return mc.p.ix.SinkType(v)
		}
	}
	db := mc.store()
	if db == nil {
		return nil
	}
	val, ok := db.NodeProp(mc.p.ix.IDOf(v), prop)
	if !ok {
		return nil
	}
	return val
}

// entityLabel renders a whole-node projection: its NAME when present.
func (mc *matchCursor) entityLabel(v int32) any {
	if mc.p.ix.HasName(v) {
		return mc.p.ix.Name(v)
	}
	id := mc.p.ix.IDOf(v)
	if db := mc.store(); db != nil {
		if val, ok := db.NodeProp(id, "NAME"); ok {
			return val
		}
	}
	return fmt.Sprintf("#%d", id)
}

// Run executes the plan to a complete Result, with the interpreter's
// epilogue semantics: DISTINCT before LIMIT, early exit only when no
// ORDER BY, COUNT grouping in first-seen order.
func (p *Plan) Run() (*Result, error) {
	res := &Result{}
	for _, item := range p.q.Return {
		res.Columns = append(res.Columns, item.Label())
	}
	mc := p.newCursor()
	if p.hasCount {
		return p.aggregate(mc, res)
	}
	var seen map[string]bool
	if p.distinct {
		seen = make(map[string]bool)
	}
	for mc.next() {
		row, err := mc.project()
		if err != nil {
			return nil, err
		}
		if p.distinct {
			key := fmt.Sprintf("%v", row)
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		res.Rows = append(res.Rows, row)
		if p.q.OrderBy < 0 && p.q.Limit > 0 && len(res.Rows) >= p.q.Limit {
			break
		}
	}
	if mc.err != nil {
		return nil, mc.err
	}
	applyOrderAndLimit(p.q, res)
	return res, nil
}

// aggregate replicates the interpreter's COUNT grouping over the match
// stream. The all-COUNT(*) shape short-circuits to a bare counter so
// the hot "how many" queries stay allocation-free per match.
func (p *Plan) aggregate(mc *matchCursor, res *Result) (*Result, error) {
	bare := true
	for _, item := range p.q.Return {
		if !item.Count || item.Var != "" || item.Distinct {
			bare = false
		}
	}
	if bare {
		n := 0
		for mc.next() {
			n++
		}
		if mc.err != nil {
			return nil, mc.err
		}
		if n > 0 {
			row := make([]any, len(p.q.Return))
			for i := range row {
				row[i] = n
			}
			res.Rows = append(res.Rows, row)
		}
		applyOrderAndLimit(p.q, res)
		return res, nil
	}

	type group struct {
		row  []any
		n    int
		seen map[string]bool
	}
	groups := make(map[string]*group)
	var order []string
	distinctItem := false
	for _, item := range p.q.Return {
		if item.Count && item.Distinct {
			distinctItem = true
		}
	}
	for mc.next() {
		var keyParts []string
		row := make([]any, len(p.q.Return))
		var countDistinctVal string
		for i, item := range p.q.Return {
			if item.Count {
				if item.Var != "" {
					v, err := mc.itemNode(item.Var, "COUNT")
					if err != nil {
						return nil, err
					}
					countDistinctVal = fmt.Sprintf("%d", mc.p.ix.IDOf(v))
				}
				continue
			}
			v, err := mc.itemNode(item.Var, "RETURN")
			if err != nil {
				return nil, err
			}
			var val any
			if item.Prop == "" {
				val = mc.entityLabel(v)
			} else {
				val = mc.propValue(v, item.Prop)
			}
			row[i] = val
			keyParts = append(keyParts, fmt.Sprintf("%v", val))
		}
		key := strings.Join(keyParts, "\x00")
		g, ok := groups[key]
		if !ok {
			g = &group{row: row, seen: make(map[string]bool)}
			groups[key] = g
			order = append(order, key)
		}
		if distinctItem {
			if !g.seen[countDistinctVal] {
				g.seen[countDistinctVal] = true
				g.n++
			}
		} else {
			g.n++
		}
	}
	if mc.err != nil {
		return nil, mc.err
	}
	for _, key := range order {
		g := groups[key]
		for i, item := range p.q.Return {
			if item.Count {
				g.row[i] = g.n
			}
		}
		res.Rows = append(res.Rows, g.row)
	}
	applyOrderAndLimit(p.q, res)
	return res, nil
}

// Cursor streams rows of one query to a consumer (the HTTP server's
// /v1/query handler) so a row cap can stop execution early instead of
// materializing the full result. Streamable plans (no COUNT, no ORDER
// BY) execute lazily; everything else — procedures, EXPLAIN, aggregates,
// ordered results, interpreter fallbacks — is materialized up front and
// replayed.
type Cursor struct {
	Columns []string

	// materialized replay
	rows [][]any
	ri   int

	// live plan execution
	p       *Plan
	mc      *matchCursor
	seen    map[string]bool
	emitted int
}

// Next returns the next row, or (nil, nil) once the stream is done. A
// non-nil error ends the stream (it surfaces before any row on the same
// queries the materializing path would reject whole).
func (c *Cursor) Next() ([]any, error) {
	if c.mc == nil {
		if c.ri >= len(c.rows) {
			return nil, nil
		}
		row := c.rows[c.ri]
		c.ri++
		return row, nil
	}
	if c.p.q.Limit > 0 && c.emitted >= c.p.q.Limit {
		return nil, nil
	}
	for c.mc.next() {
		row, err := c.mc.project()
		if err != nil {
			return nil, err
		}
		if c.seen != nil {
			key := fmt.Sprintf("%v", row)
			if c.seen[key] {
				continue
			}
			c.seen[key] = true
		}
		c.emitted++
		return row, nil
	}
	return nil, c.mc.err
}

// RunAnyCursor is RunAny with a streaming result: queries the plan
// runner can stream are executed lazily row by row; the rest run to
// completion first and replay.
func RunAnyCursor(db *graphdb.DB, query string) (*Cursor, error) {
	return RunAnyCursorSource(DBSource(db), query)
}

// RunAnyCursorSource is RunAnyCursor over an arbitrary Source. Plannable
// MATCH queries execute against the source's compiled index without
// touching the store; procedures, EXPLAIN, interpreter fallbacks, and
// plans with residual store reads materialize it via src.DB() (a full
// snapshot parse on disk-resident sources), so every query shape still
// answers — just not zero-copy.
func RunAnyCursorSource(src Source, query string) (*Cursor, error) {
	trimmed := strings.TrimSpace(query)
	isCall := len(trimmed) >= 4 && strings.EqualFold(trimmed[:4], "CALL")
	if _, isExplain := explainRest(query); isExplain || isCall {
		db, err := src.DB()
		if err != nil {
			return nil, err
		}
		res, err := RunAny(db, query)
		if err != nil {
			return nil, err
		}
		return &Cursor{Columns: res.Columns, rows: res.Rows}, nil
	}
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	p, perr := PlanQuerySource(src, q)
	if perr != nil {
		db, derr := src.DB()
		if derr != nil {
			return nil, derr
		}
		res, rerr := ExecuteGeneric(db, q)
		if rerr != nil {
			return nil, rerr
		}
		return &Cursor{Columns: res.Columns, rows: res.Rows}, nil
	}
	if p.hasCount || q.OrderBy >= 0 {
		res, rerr := p.Run()
		if rerr != nil {
			return nil, rerr
		}
		return &Cursor{Columns: res.Columns, rows: res.Rows}, nil
	}
	c := &Cursor{p: p, mc: p.newCursor()}
	for _, item := range q.Return {
		c.Columns = append(c.Columns, item.Label())
	}
	if p.distinct {
		c.seen = make(map[string]bool)
	}
	return c, nil
}
