package cypher

import (
	"tabby/internal/graphdb"
	"tabby/internal/searchindex"
)

// Source supplies a query execution with its compiled search index and,
// on demand, the generic property store behind it. The split is what
// lets a disk-resident (mmap-viewed) snapshot serve queries without
// parsing the store: plans that stay on indexed columns — label/flag
// bitset scans, CSR expansions, NAME/SINK_TYPE tests — never call DB().
// Only residual reads the index cannot answer (unindexed properties in
// inline patterns, WHERE operands, projections) materialize the store,
// and DB() may return an error when that materialization fails.
//
// backend.Backend satisfies this interface structurally; cypher does
// not import it (the dependency points the other way).
type Source interface {
	// Index returns the compiled search index. It must be cheap and
	// infallible: sources compile or view it at open time.
	Index() *searchindex.Index
	// DB materializes the generic property store. Heap-resident sources
	// return it directly; disk-resident sources may pay a full snapshot
	// parse on first call and must memoize it.
	DB() (*graphdb.DB, error)
}

// dbSource adapts a heap-resident store to Source: the index is the
// store's own cached compilation and DB() never fails.
type dbSource struct{ db *graphdb.DB }

func (s dbSource) Index() *searchindex.Index { return searchindex.For(s.db) }
func (s dbSource) DB() (*graphdb.DB, error)  { return s.db, nil }

// DBSource wraps a heap-resident store as a Source.
func DBSource(db *graphdb.DB) Source { return dbSource{db} }
