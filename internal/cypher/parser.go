package cypher

import (
	"fmt"
	"strconv"
)

// Parse parses one query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type qparser struct {
	toks []tok
	pos  int
}

func (p *qparser) cur() tok { return p.toks[p.pos] }

func (p *qparser) next() tok {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *qparser) at(text string) bool { return p.cur().text == text && p.cur().kind != tkString }

func (p *qparser) accept(text string) bool {
	if p.at(text) {
		p.next()
		return true
	}
	return false
}

func (p *qparser) expect(text string) error {
	if !p.at(text) {
		return p.errf("expected %q, found %q", text, p.cur().text)
	}
	p.next()
	return nil
}

func (p *qparser) errf(format string, args ...any) error {
	return &Error{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *qparser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expect("MATCH"); err != nil {
		return nil, err
	}
	for {
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		q.Paths = append(q.Paths, path)
		if !p.accept(",") {
			break
		}
	}
	if p.accept("WHERE") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if err := p.expect("RETURN"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseReturnItem()
		if err != nil {
			return nil, err
		}
		q.Return = append(q.Return, item)
		if !p.accept(",") {
			break
		}
	}
	q.OrderBy = -1
	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		var target ReturnItem
		item, err := p.parseReturnItem()
		if err != nil {
			return nil, err
		}
		target = item
		q.OrderBy = -1
		for i, ri := range q.Return {
			if ri.Var == target.Var && ri.Prop == target.Prop && ri.Count == target.Count {
				q.OrderBy = i
			}
		}
		if q.OrderBy < 0 {
			return nil, p.errf("ORDER BY must reference a RETURN item")
		}
		if p.cur().kind == tkIdent && (p.cur().text == "DESC" || p.cur().text == "desc") {
			p.next()
			q.Descending = true
		} else if p.cur().kind == tkIdent && (p.cur().text == "ASC" || p.cur().text == "asc") {
			p.next()
		}
	}
	if p.accept("LIMIT") {
		t := p.next()
		if t.kind != tkInt {
			return nil, p.errf("LIMIT requires an integer")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	if p.cur().kind != tkEOF {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	if len(q.Return) == 0 {
		return nil, p.errf("empty RETURN")
	}
	return q, nil
}

func (p *qparser) parsePath() (PatternPath, error) {
	var path PatternPath
	node, err := p.parseNode()
	if err != nil {
		return path, err
	}
	path.Nodes = append(path.Nodes, node)
	for p.at("-") || p.at("<-") {
		rel, err := p.parseRel()
		if err != nil {
			return path, err
		}
		node, err := p.parseNode()
		if err != nil {
			return path, err
		}
		path.Rels = append(path.Rels, rel)
		path.Nodes = append(path.Nodes, node)
	}
	return path, nil
}

// parseNode: "(" [var] [":" label] [props] ")"
func (p *qparser) parseNode() (NodePattern, error) {
	var n NodePattern
	if err := p.expect("("); err != nil {
		return n, err
	}
	if p.cur().kind == tkIdent {
		n.Var = p.next().text
	}
	if p.accept(":") {
		if p.cur().kind != tkIdent {
			return n, p.errf("expected label")
		}
		n.Label = p.next().text
	}
	if p.at("{") {
		props, err := p.parseProps()
		if err != nil {
			return n, err
		}
		n.Props = props
	}
	if err := p.expect(")"); err != nil {
		return n, err
	}
	return n, nil
}

func (p *qparser) parseProps() (map[string]any, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	props := make(map[string]any)
	for !p.at("}") {
		if p.cur().kind != tkIdent {
			return nil, p.errf("expected property name")
		}
		name := p.next().text
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		val, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		props[name] = val
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	return props, nil
}

func (p *qparser) parseLiteral() (any, error) {
	t := p.cur()
	switch {
	case t.kind == tkString:
		p.next()
		return t.text, nil
	case t.kind == tkInt:
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return n, nil
	case p.accept("TRUE"):
		return true, nil
	case p.accept("FALSE"):
		return false, nil
	case p.accept("NULL"):
		return nil, nil
	default:
		return nil, p.errf("expected literal, found %q", t.text)
	}
}

// parseRel: ("-"|"<-") ["[" [var] [":" type] ["*" [min [".." max]]] "]"] ("-"|"->")
func (p *qparser) parseRel() (RelPattern, error) {
	rel := RelPattern{Dir: DirAny, MinHops: 1, MaxHops: 1}
	leftArrow := false
	switch {
	case p.accept("<-"):
		leftArrow = true
	case p.accept("-"):
	default:
		return rel, p.errf("expected relationship")
	}
	if p.accept("[") {
		if p.cur().kind == tkIdent {
			rel.Var = p.next().text
		}
		if p.accept(":") {
			if p.cur().kind != tkIdent {
				return rel, p.errf("expected relationship type")
			}
			rel.Type = p.next().text
		}
		if p.accept("*") {
			rel.MinHops, rel.MaxHops = 1, 8
			if p.cur().kind == tkInt {
				n, _ := strconv.Atoi(p.next().text)
				rel.MinHops, rel.MaxHops = n, n
				if p.accept("..") {
					if p.cur().kind != tkInt {
						return rel, p.errf("expected max hop count")
					}
					m, _ := strconv.Atoi(p.next().text)
					rel.MaxHops = m
				}
			}
			if rel.MinHops < 0 || rel.MaxHops < rel.MinHops {
				return rel, p.errf("bad hop range %d..%d", rel.MinHops, rel.MaxHops)
			}
		}
		if err := p.expect("]"); err != nil {
			return rel, err
		}
	}
	switch {
	case p.accept("->"):
		if leftArrow {
			return rel, p.errf("relationship cannot point both ways")
		}
		rel.Dir = DirRight
	case p.accept("-"):
		if leftArrow {
			rel.Dir = DirLeft
		} else {
			rel.Dir = DirAny
		}
	default:
		return rel, p.errf("unterminated relationship pattern")
	}
	return rel, nil
}

func (p *qparser) parseReturnItem() (ReturnItem, error) {
	var item ReturnItem
	if p.accept("COUNT") {
		if err := p.expect("("); err != nil {
			return item, err
		}
		item.Count = true
		if p.accept("DISTINCT") {
			item.Distinct = true
		}
		switch {
		case p.accept("*"):
		case p.cur().kind == tkIdent:
			item.Var = p.next().text
		default:
			return item, p.errf("COUNT requires * or a variable")
		}
		if err := p.expect(")"); err != nil {
			return item, err
		}
		return item, nil
	}
	if p.accept("DISTINCT") {
		item.Distinct = true
	}
	if p.cur().kind != tkIdent {
		return item, p.errf("expected return variable")
	}
	item.Var = p.next().text
	if p.accept(".") {
		if p.cur().kind != tkIdent {
			return item, p.errf("expected property name")
		}
		item.Prop = p.next().text
	}
	return item, nil
}

// parseOr / parseAnd / parseNot / parseCmp implement WHERE precedence.
func (p *qparser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *qparser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *qparser) parseNot() (Expr, error) {
	if p.accept("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	if p.at("(") {
		// Parenthesized sub-expression.
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseCmp()
}

func (p *qparser) parseCmp() (Expr, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	var op string
	switch t.text {
	case "=", "<>", "<", "<=", ">", ">=":
		op = t.text
		p.next()
	case "CONTAINS":
		op = "CONTAINS"
		p.next()
	case "STARTS":
		p.next()
		if err := p.expect("WITH"); err != nil {
			return nil, err
		}
		op = "STARTSWITH"
	case "ENDS":
		p.next()
		if err := p.expect("WITH"); err != nil {
			return nil, err
		}
		op = "ENDSWITH"
	default:
		return nil, p.errf("expected comparison operator, found %q", t.text)
	}
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &CmpExpr{Op: op, L: l, R: r}, nil
}

func (p *qparser) parseOperand() (Operand, error) {
	t := p.cur()
	if t.kind == tkIdent {
		p.next()
		op := Operand{Var: t.text}
		if p.accept(".") {
			if p.cur().kind != tkIdent {
				return op, p.errf("expected property name")
			}
			op.Prop = p.next().text
		}
		return op, nil
	}
	val, err := p.parseLiteral()
	if err != nil {
		return Operand{}, err
	}
	return Operand{Literal: val, IsLiteral: true}, nil
}
