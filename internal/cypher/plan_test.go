package cypher

import (
	"reflect"
	"strings"
	"testing"

	"tabby/internal/graphdb"
)

// assertEngineParity runs the query through both engines and requires
// identical results (rows, columns, rendered table) and identical error
// text. It returns the shared result for further assertions.
func assertEngineParity(t *testing.T, db *graphdb.DB, query string) *Result {
	t.Helper()
	q, err := Parse(query)
	if err != nil {
		t.Fatalf("Parse(%q): %v", query, err)
	}
	want, werr := ExecuteGeneric(db, q)
	p, perr := PlanQuery(db, q)
	if perr != nil {
		t.Fatalf("PlanQuery(%q): %v", query, perr)
	}
	got, gerr := p.Run()
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("error mismatch for %q: interpreter %v, plan %v", query, werr, gerr)
	}
	if werr != nil {
		if werr.Error() != gerr.Error() {
			t.Fatalf("error text mismatch for %q: %q vs %q", query, werr, gerr)
		}
		return nil
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("result mismatch for %q:\ninterpreter: %#v\nplan:        %#v", query, want, got)
	}
	if want.Format() != got.Format() {
		t.Fatalf("Format mismatch for %q", query)
	}
	return got
}

func TestPlanEmptyGraph(t *testing.T) {
	db := graphdb.New()
	for _, q := range []string{
		`MATCH (m:Method) RETURN m.NAME`,
		`MATCH (m) RETURN m`,
		`MATCH (a)-[:CALL]->(b) RETURN a, b`,
		`MATCH (m) RETURN COUNT(*)`,
		`MATCH (m) WHERE m.NAME = "x" RETURN m LIMIT 3`,
	} {
		res := assertEngineParity(t, db, q)
		if res != nil && len(res.Rows) != 0 {
			t.Errorf("%q on empty graph produced rows: %v", q, res.Rows)
		}
	}
}

func TestPlanLimitEdgeCases(t *testing.T) {
	db := buildTestGraph(t)
	// LIMIT 0 means unlimited (parser accepts it; Execute treats 0 as
	// "no limit") — both engines must agree.
	res := assertEngineParity(t, db, `MATCH (m:Method) RETURN m.NAME LIMIT 0`)
	if len(res.Rows) != 4 {
		t.Fatalf("LIMIT 0 rows = %d, want 4 (unlimited)", len(res.Rows))
	}
	res = assertEngineParity(t, db, `MATCH (m:Method) RETURN m.NAME LIMIT 1`)
	if len(res.Rows) != 1 {
		t.Fatalf("LIMIT 1 rows = %d", len(res.Rows))
	}
	assertEngineParity(t, db, `MATCH (m:Method) RETURN m.NAME LIMIT 99`)
}

func TestPlanOrderByDisablesEarlyExit(t *testing.T) {
	// Names descend as node IDs ascend, so an early-exit LIMIT under
	// ORDER BY would return the wrong rows: the right answer needs the
	// full row set before sorting.
	db := graphdb.New()
	for _, name := range []string{"zz", "yy", "cc", "bb", "aa"} {
		db.CreateNode([]string{"Method"}, graphdb.Props{"NAME": name})
	}
	res := assertEngineParity(t, db, `MATCH (m:Method) RETURN m.NAME ORDER BY m.NAME LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[0][0] != "aa" || res.Rows[1][0] != "bb" {
		t.Fatalf("ORDER BY + LIMIT rows = %v, want [[aa] [bb]]", res.Rows)
	}
	res = assertEngineParity(t, db, `MATCH (m:Method) RETURN m.NAME ORDER BY m.NAME DESC LIMIT 2`)
	if res.Rows[0][0] != "zz" || res.Rows[1][0] != "yy" {
		t.Fatalf("DESC rows = %v", res.Rows)
	}
}

func TestPlanAliasBidirectional(t *testing.T) {
	db := buildTestGraph(t) // impl -ALIAS-> mid
	// The undirected pattern must see the edge from both endpoints.
	res := assertEngineParity(t, db, `MATCH (a:Method {NAME: "a.B#mid()"})-[:ALIAS]-(b) RETURN b.NAME`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "a.A#mid()" {
		t.Fatalf("alias from impl = %v", res.Rows)
	}
	res = assertEngineParity(t, db, `MATCH (a:Method {NAME: "a.A#mid()"})-[:ALIAS]-(b) RETURN b.NAME`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "a.B#mid()" {
		t.Fatalf("alias from mid = %v", res.Rows)
	}
	// Directed patterns stay directed.
	res = assertEngineParity(t, db, `MATCH (a:Method {NAME: "a.A#mid()"})-[:ALIAS]->(b) RETURN b.NAME`)
	if len(res.Rows) != 0 {
		t.Fatalf("directed alias the wrong way matched: %v", res.Rows)
	}
}

func TestPlanUnboundPredicateVariable(t *testing.T) {
	db := buildTestGraph(t)
	// A WHERE referencing a variable no pattern binds: the comparison's
	// operand never resolves, so it is false — zero rows, no error.
	res := assertEngineParity(t, db, `MATCH (m:Method) WHERE ghost.NAME = "x" RETURN m.NAME`)
	if len(res.Rows) != 0 {
		t.Fatalf("unbound predicate produced rows: %v", res.Rows)
	}
	// NOT of a never-resolving comparison is true.
	res = assertEngineParity(t, db, `MATCH (m:Method) WHERE NOT ghost.NAME = "x" RETURN m.NAME`)
	if len(res.Rows) != 4 {
		t.Fatalf("NOT unbound rows = %d, want 4", len(res.Rows))
	}
	// Unbound in RETURN errors identically (only when matches exist).
	assertEngineParity(t, db, `MATCH (m:Method) RETURN ghost.NAME`)
	// Unbound in COUNT errors identically.
	assertEngineParity(t, db, `MATCH (m:Method) RETURN COUNT(ghost)`)
}

func TestPlanSelfLoopAndAnyDirection(t *testing.T) {
	db := graphdb.New()
	a := db.CreateNode([]string{"Method"}, graphdb.Props{"NAME": "a"})
	b := db.CreateNode([]string{"Method"}, graphdb.Props{"NAME": "b"})
	if _, err := db.CreateRel("CALL", a, a, nil); err != nil { // self-loop
		t.Fatal(err)
	}
	if _, err := db.CreateRel("CALL", a, b, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRel("HAS", b, a, nil); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`MATCH (x {NAME: "a"})-[:CALL]->(y) RETURN y.NAME`,
		`MATCH (x {NAME: "a"})-[:CALL]-(y) RETURN y.NAME`,
		`MATCH (x {NAME: "a"})-[]-(y) RETURN y.NAME`,
		`MATCH (x)-[]->(y) RETURN x.NAME, y.NAME`,
		`MATCH (x)<-[]-(y) RETURN x.NAME, y.NAME`,
	} {
		assertEngineParity(t, db, q)
	}
}

func TestPlanSharedVariablesAcrossPaths(t *testing.T) {
	db := buildTestGraph(t)
	assertEngineParity(t, db, `MATCH (c:Class)-[:HAS]->(m), (m)-[:CALL]->(n) RETURN c.NAME, n.NAME`)
	// Same variable twice in one path: no self-CALL exists.
	res := assertEngineParity(t, db, `MATCH (m:Method)-[:CALL]->(m) RETURN m.NAME`)
	if len(res.Rows) != 0 {
		t.Fatalf("self-call rows = %v", res.Rows)
	}
	// Disconnected paths form a cross product.
	res = assertEngineParity(t, db, `MATCH (c:Class), (m:Method {IS_SINK: true}) RETURN c.NAME, m.NAME`)
	if len(res.Rows) != 1 {
		t.Fatalf("cross product rows = %v", res.Rows)
	}
}

func TestPlanPushdownExactness(t *testing.T) {
	db := graphdb.New()
	// Nodes crafted to break sloppy pushdown: NAME with a non-string
	// value, IS_SINK false vs absent, SINK_TYPE non-string.
	db.CreateNode([]string{"Method"}, graphdb.Props{"NAME": "real", "IS_SINK": true, "SINK_TYPE": "EXEC"})
	db.CreateNode([]string{"Method"}, graphdb.Props{"NAME": 42, "IS_SINK": false})
	db.CreateNode([]string{"Method"}, graphdb.Props{"SINK_TYPE": 7})
	db.CreateNode([]string{"Method"}, graphdb.Props{"NAME": "realist"})
	for _, q := range []string{
		`MATCH (m:Method) WHERE m.NAME = "real" RETURN m`,
		`MATCH (m:Method) WHERE m.NAME CONTAINS "real" RETURN m`,
		`MATCH (m:Method) WHERE m.NAME STARTS WITH "real" RETURN m`,
		`MATCH (m:Method) WHERE m.NAME ENDS WITH "ist" RETURN m`,
		`MATCH (m:Method) WHERE m.IS_SINK = true RETURN m`,
		`MATCH (m:Method) WHERE m.IS_SINK = false RETURN m`, // absent ≠ false: only node 2 matches
		`MATCH (m:Method) WHERE m.SINK_TYPE = "EXEC" RETURN m`,
		`MATCH (m:Method) WHERE m.NAME = 42 RETURN m`, // non-string literal: residual path
		`MATCH (m:Method) WHERE "real" = m.NAME RETURN m`,
		`MATCH (m:Method) WHERE NOT m.NAME = "real" RETURN m`,
		`MATCH (m:Method {NAME: "real"}) RETURN m`,
		`MATCH (m:Method {IS_SINK: true}) RETURN m.SINK_TYPE`,
		`MATCH (m:Method {SINK_TYPE: 7}) RETURN m`,
		`MATCH (m:Method) WHERE m.NAME <> "real" RETURN m`, // <> is residual (fmt fallback semantics)
	} {
		assertEngineParity(t, db, q)
	}
}

func TestPlanPropagationPrunesAnchor(t *testing.T) {
	// Wide fan: many Methods, one CALL edge into the single sink. The
	// selective downstream level must drive backward propagation so the
	// anchor scan shrinks to the one useful caller.
	db := graphdb.New()
	var sink graphdb.ID
	for i := 0; i < 200; i++ {
		props := graphdb.Props{"NAME": "m" + string(rune('a'+i%26)) + string(rune('a'+i/26))}
		if i == 199 {
			props["IS_SINK"] = true
		}
		id := db.CreateNode([]string{"Method"}, props)
		if i == 199 {
			sink = id
		}
	}
	caller := db.FindNodes("Method", "NAME", "maa")[0]
	if _, err := db.CreateRel("CALL", caller, sink, nil); err != nil {
		t.Fatal(err)
	}
	query := `MATCH (a:Method)-[:CALL]->(b:Method) WHERE b.IS_SINK = true RETURN a.NAME`
	res := assertEngineParity(t, db, query)
	if len(res.Rows) != 1 || res.Rows[0][0] != "maa" {
		t.Fatalf("rows = %v", res.Rows)
	}
	q, _ := Parse(query)
	p, err := PlanQuery(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if !p.propagated {
		t.Error("selective downstream level did not trigger propagation")
	}
	if got := p.levels[0].propEst; got != 1 {
		t.Errorf("anchor estimate after propagation = %d, want 1", got)
	}
	found := false
	for _, line := range p.Explain() {
		if strings.Contains(line, "propagation") {
			found = true
		}
	}
	if !found {
		t.Error("EXPLAIN does not mention propagation")
	}
}

func TestPlanFallbackVariableLength(t *testing.T) {
	db := buildTestGraph(t)
	q, err := Parse(`MATCH (a:Method {IS_SOURCE: true})-[:CALL*1..3]->(b) RETURN b.NAME`)
	if err != nil {
		t.Fatal(err)
	}
	if _, perr := PlanQuery(db, q); perr == nil {
		t.Fatal("variable-length pattern must not be plannable")
	}
	// Execute transparently falls back and still answers.
	res, err := Execute(db, q)
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("fallback Execute: %v %v", err, res)
	}
}

func TestExplain(t *testing.T) {
	db := buildTestGraph(t)
	res := mustRun(t, db, `EXPLAIN MATCH (m:Method) WHERE m.IS_SINK = true RETURN m.NAME LIMIT 5`)
	if res.Columns[0] != "plan" || len(res.Rows) == 0 {
		t.Fatalf("EXPLAIN result = %v", res)
	}
	text := res.Format()
	for _, want := range []string{"plan: indexed", "IS_SINK", "limit: 5 pushed"} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, text)
		}
	}
	// Fallback reason for variable-length patterns.
	res = mustRun(t, db, `EXPLAIN MATCH (a)-[:CALL*1..3]->(b) RETURN b`)
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0].(string), "interpreter") {
		t.Fatalf("fallback EXPLAIN = %v", res.Rows)
	}
	// EXPLAIN CALL notes the direct dispatch.
	res, err := RunAny(db, `EXPLAIN CALL tabby.sinks()`)
	if err != nil || len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0].(string), "procedure") {
		t.Fatalf("EXPLAIN CALL = %v %v", res, err)
	}
	// EXPLAIN of an unparseable query still errors.
	if _, err := Run(db, `EXPLAIN MATCH (`); err == nil {
		t.Error("EXPLAIN of a bad query must fail")
	}
	// A name that merely starts with EXPLAIN is not the keyword.
	if _, err := Run(db, `EXPLAINMATCH (m) RETURN m`); err == nil {
		t.Error("EXPLAINMATCH must not parse")
	}
}

func TestPlanDistinctAndAggregates(t *testing.T) {
	db := buildTestGraph(t)
	for _, q := range []string{
		`MATCH (m:Method) RETURN DISTINCT m.IS_SINK`,
		`MATCH (m:Method) RETURN COUNT(*)`,
		`MATCH (m:Method) RETURN m.IS_SINK, COUNT(*)`,
		`MATCH (a)-[:CALL]->(b) RETURN b.NAME, COUNT(a)`,
		`MATCH (m:Method) RETURN m.IS_SINK, COUNT(*) ORDER BY COUNT(*) DESC`,
		`MATCH (m:Method) RETURN m.NAME ORDER BY m.NAME DESC LIMIT 2`,
		`MATCH (m:Method) WHERE m.PARAM_COUNT > 20 RETURN m.NAME`,
		`MATCH (m:Method) WHERE m.IS_SOURCE = true OR m.IS_SINK = true RETURN m.NAME`,
	} {
		assertEngineParity(t, db, q)
	}
}

func TestPlanStreamingCursor(t *testing.T) {
	db := buildTestGraph(t)
	drain := func(q string) (*Cursor, [][]any) {
		t.Helper()
		c, err := RunAnyCursor(db, q)
		if err != nil {
			t.Fatalf("RunAnyCursor(%q): %v", q, err)
		}
		var rows [][]any
		for {
			row, err := c.Next()
			if err != nil {
				t.Fatalf("Next(%q): %v", q, err)
			}
			if row == nil {
				return c, rows
			}
			rows = append(rows, row)
		}
	}
	for _, q := range []string{
		`MATCH (m:Method) RETURN m.NAME`,                   // live streaming
		`MATCH (m:Method) RETURN m.NAME LIMIT 2`,           // limit stops the cursor
		`MATCH (m:Method) RETURN DISTINCT m.IS_SINK`,       // distinct streams
		`MATCH (m:Method) RETURN COUNT(*)`,                 // aggregate materializes
		`MATCH (m:Method) RETURN m.NAME ORDER BY m.NAME`,   // order materializes
		`MATCH (a)-[:CALL*1..2]->(b) RETURN b.NAME`,        // interpreter fallback
		`CALL tabby.sinks()`,                               // procedure
		`EXPLAIN MATCH (m) RETURN m`,                       // explain
		`MATCH (m:Method) WHERE ghost.X = 1 RETURN m.NAME`, // zero rows
	} {
		want, err := RunAny(db, q)
		if err != nil {
			t.Fatalf("RunAny(%q): %v", q, err)
		}
		c, rows := drain(q)
		if !reflect.DeepEqual(c.Columns, want.Columns) {
			t.Errorf("%q columns: %v vs %v", q, c.Columns, want.Columns)
		}
		if len(rows) != len(want.Rows) || (len(rows) > 0 && !reflect.DeepEqual(rows, want.Rows)) {
			t.Errorf("%q rows: %v vs %v", q, rows, want.Rows)
		}
	}
	// Errors surface through the cursor too.
	if _, err := RunAnyCursor(db, `MATCH (`); err == nil {
		t.Error("parse error must surface from RunAnyCursor")
	}
	c, err := RunAnyCursor(db, `MATCH (m:Method) RETURN ghost.NAME`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err == nil {
		t.Error("projection error must surface from Next")
	}
}

func TestFormatCountsRunesNotBytes(t *testing.T) {
	res := &Result{
		Columns: []string{"name", "ok"},
		Rows: [][]any{
			{"héllo", true}, // 5 runes, 6 bytes
			{"worldly", false},
		},
	}
	lines := strings.Split(res.Format(), "\n")
	// All three content-bearing lines must align: the header, separator
	// and rows share column boundaries measured in runes.
	sep := lines[1]
	if !strings.HasPrefix(sep, strings.Repeat("-", 7)+"  ") {
		t.Fatalf("separator = %q", sep)
	}
	boundary := func(s string) int {
		return strings.Index(s, "  ")
	}
	w := boundary(sep)
	for _, li := range []int{0, 2, 3} {
		if got := len([]rune(lines[li][:strings.IndexAny(lines[li], " ")])); got > w {
			t.Fatalf("line %d overflows column: %q", li, lines[li])
		}
	}
	// The non-ASCII cell is padded to the same rune width as the widest.
	if want := "héllo    true "; !strings.HasPrefix(lines[2], "héllo  ") {
		t.Errorf("row line = %q (want prefix %q…)", lines[2], want)
	}
	row2 := []rune(lines[2])
	row3 := []rune(lines[3])
	// "true"/"false" must start at the same rune column in both rows.
	c2 := strings.Index(string(row2), "true")
	c3 := strings.Index(string(row3), "false")
	if len([]rune(string(row2[:0]))) == 0 && c2 >= 0 && c3 >= 0 {
		if len([]rune(lines[2][:c2])) != len([]rune(lines[3][:c3])) {
			t.Errorf("misaligned columns:\n%q\n%q", lines[2], lines[3])
		}
	}
}
