package cypher

import (
	"reflect"
	"testing"

	"tabby/internal/graphdb"
)

// FuzzRunAny feeds arbitrary queries to the parser, executor and
// procedure dispatcher over a small graph: errors allowed, panics not.
// For every query that parses, the compiled plan must agree with the
// tree-walking interpreter — same rows, same rendered table, same error
// text — or declare itself not plannable.
func FuzzRunAny(f *testing.F) {
	seeds := []string{
		`MATCH (m:Method) RETURN m.NAME`,
		`MATCH (a)-[:CALL*1..3]->(b) WHERE a.NAME CONTAINS "x" RETURN a, b LIMIT 5`,
		`MATCH (a)<-[r:ALIAS]-(b) RETURN COUNT(*)`,
		`MATCH (m) RETURN m.X ORDER BY m.X DESC LIMIT 1`,
		`CALL tabby.findGadgetChains(4)`,
		`CALL tabby.sinks()`,
		`MATCH (`,
		`CALL`,
		`MATCH (a:M {K: "v"}), (b) WHERE NOT a.K = b.K OR a.K <> "z" RETURN DISTINCT a.K`,
		`EXPLAIN MATCH (m:Method) WHERE m.IS_SINK = true RETURN m LIMIT 2`,
		`MATCH (a:Method)-[]-(b) WHERE b.SINK_TYPE STARTS WITH "EX" RETURN b.NAME, COUNT(a)`,
		`MATCH (a)-[:CALL]->(a) RETURN a`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	db := graphdb.New()
	a := db.CreateNode([]string{"Method"}, graphdb.Props{"NAME": "a", "IS_SOURCE": true, "IS_SINK": false})
	b := db.CreateNode([]string{"Method"}, graphdb.Props{"NAME": "b", "IS_SINK": true, "IS_SOURCE": false, "SINK_TYPE": "EXEC", "TRIGGER_CONDITION": []int{0}})
	_, _ = db.CreateRel("CALL", a, b, graphdb.Props{"POLLUTED_POSITION": []int{0}})
	f.Fuzz(func(t *testing.T, query string) {
		_, _ = RunAny(db, query)

		// Engine agreement: any query the parser accepts must produce
		// identical results from the interpreter and the planner.
		q, err := Parse(query)
		if err != nil {
			return
		}
		want, werr := ExecuteGeneric(db, q)
		p, perr := PlanQuery(db, q)
		if perr != nil {
			return // declared not plannable: interpreter handles it
		}
		got, gerr := p.Run()
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("engine error mismatch for %q: interpreter=%v plan=%v", query, werr, gerr)
		}
		if werr != nil {
			if werr.Error() != gerr.Error() {
				t.Fatalf("engine error text mismatch for %q: %q vs %q", query, werr, gerr)
			}
			return
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("engine result mismatch for %q:\ninterpreter: %#v\nplan:        %#v", query, want, got)
		}
		if want.Format() != got.Format() {
			t.Fatalf("engine Format mismatch for %q", query)
		}
	})
}
