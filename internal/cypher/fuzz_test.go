package cypher

import (
	"testing"

	"tabby/internal/graphdb"
)

// FuzzRunAny feeds arbitrary queries to the parser, executor and
// procedure dispatcher over a small graph: errors allowed, panics not.
func FuzzRunAny(f *testing.F) {
	seeds := []string{
		`MATCH (m:Method) RETURN m.NAME`,
		`MATCH (a)-[:CALL*1..3]->(b) WHERE a.NAME CONTAINS "x" RETURN a, b LIMIT 5`,
		`MATCH (a)<-[r:ALIAS]-(b) RETURN COUNT(*)`,
		`MATCH (m) RETURN m.X ORDER BY m.X DESC LIMIT 1`,
		`CALL tabby.findGadgetChains(4)`,
		`CALL tabby.sinks()`,
		`MATCH (`,
		`CALL`,
		`MATCH (a:M {K: "v"}), (b) WHERE NOT a.K = b.K OR a.K <> "z" RETURN DISTINCT a.K`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	db := graphdb.New()
	a := db.CreateNode([]string{"Method"}, graphdb.Props{"NAME": "a", "IS_SOURCE": true, "IS_SINK": false})
	b := db.CreateNode([]string{"Method"}, graphdb.Props{"NAME": "b", "IS_SINK": true, "IS_SOURCE": false, "SINK_TYPE": "EXEC", "TRIGGER_CONDITION": []int{0}})
	_, _ = db.CreateRel("CALL", a, b, graphdb.Props{"POLLUTED_POSITION": []int{0}})
	f.Fuzz(func(t *testing.T, query string) {
		_, _ = RunAny(db, query)
	})
}
