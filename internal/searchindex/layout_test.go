package searchindex

import (
	"bytes"
	"reflect"
	"testing"
)

// assertSameIndex compares every queryable surface of two indexes: the
// node columns, bitsets, interned arrays, CALL/ALIAS CSR, the label
// map, and the full query-side adjacency. Pool refs are compared by
// content (Ints), not by value, so interning order is free to differ.
func assertSameIndex(t *testing.T, got, want *Index) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("NumNodes = %d, want %d", got.NumNodes(), want.NumNodes())
	}
	ints := func(ix *Index, ref int32) []int32 {
		if ref < 0 {
			return nil
		}
		return ix.Ints(ref)
	}
	for v := int32(0); v < int32(want.NumNodes()); v++ {
		if got.IDOf(v) != want.IDOf(v) {
			t.Errorf("IDOf(%d) = %d, want %d", v, got.IDOf(v), want.IDOf(v))
		}
		if got.IdxOf(want.IDOf(v)) != v {
			t.Errorf("IdxOf(%d) = %d, want %d", want.IDOf(v), got.IdxOf(want.IDOf(v)), v)
		}
		if got.HasName(v) != want.HasName(v) || got.Name(v) != want.Name(v) {
			t.Errorf("Name(%d) = %q/%v, want %q/%v", v, got.Name(v), got.HasName(v), want.Name(v), want.HasName(v))
		}
		if got.HasSinkType(v) != want.HasSinkType(v) || got.SinkType(v) != want.SinkType(v) {
			t.Errorf("SinkType(%d) = %q, want %q", v, got.SinkType(v), want.SinkType(v))
		}
		if got.HasMethodName(v) != want.HasMethodName(v) || got.MethodName(v) != want.MethodName(v) {
			t.Errorf("MethodName(%d) = %q, want %q", v, got.MethodName(v), want.MethodName(v))
		}
		if got.IsSource(v) != want.IsSource(v) || got.IsSink(v) != want.IsSink(v) {
			t.Errorf("source/sink bits differ at %d", v)
		}
		if !reflect.DeepEqual(ints(got, got.TCRef(v)), ints(want, want.TCRef(v))) ||
			(got.TCRef(v) < 0) != (want.TCRef(v) < 0) {
			t.Errorf("TC(%d) = %v, want %v", v, ints(got, got.TCRef(v)), ints(want, want.TCRef(v)))
		}

		glo, ghi := got.CallRange(v)
		wlo, whi := want.CallRange(v)
		if ghi-glo != whi-wlo {
			t.Fatalf("CallRange(%d) width %d, want %d", v, ghi-glo, whi-wlo)
		}
		for k := int32(0); k < ghi-glo; k++ {
			gc, gpp := got.CallEdge(glo + k)
			wc, wpp := want.CallEdge(wlo + k)
			if gc != wc || (gpp < 0) != (wpp < 0) ||
				!reflect.DeepEqual(ints(got, gpp), ints(want, wpp)) {
				t.Errorf("CallEdge(%d+%d) = (%d,%v), want (%d,%v)", v, k, gc, ints(got, gpp), wc, ints(want, wpp))
			}
		}
		glo, ghi = got.AliasRange(v)
		wlo, whi = want.AliasRange(v)
		if ghi-glo != whi-wlo {
			t.Fatalf("AliasRange(%d) width %d, want %d", v, ghi-glo, whi-wlo)
		}
		for k := int32(0); k < ghi-glo; k++ {
			if got.AliasTarget(glo+k) != want.AliasTarget(wlo+k) {
				t.Errorf("AliasTarget(%d+%d) = %d, want %d", v, k, got.AliasTarget(glo+k), want.AliasTarget(wlo+k))
			}
		}
	}

	if len(got.labelBits) != len(want.labelBits) {
		t.Fatalf("labels = %d, want %d", len(got.labelBits), len(want.labelBits))
	}
	for label, wbits := range want.labelBits {
		if !reflect.DeepEqual(got.LabelBits(label), wbits) {
			t.Errorf("LabelBits(%q) differs", label)
		}
	}
	if !reflect.DeepEqual(got.SourceBits(), want.SourceBits()) ||
		!reflect.DeepEqual(got.SinkBits(), want.SinkBits()) {
		t.Error("source/sink bitsets differ")
	}

	if !reflect.DeepEqual(got.RelTypes(), want.RelTypes()) {
		t.Fatalf("RelTypes = %v, want %v", got.RelTypes(), want.RelTypes())
	}
	for _, typ := range want.RelTypes() {
		for v := int32(0); v < int32(want.NumNodes()); v++ {
			if !reflect.DeepEqual(got.OutNeighbors(typ, v), want.OutNeighbors(typ, v)) {
				t.Errorf("OutNeighbors(%q, %d) = %v, want %v", typ, v, got.OutNeighbors(typ, v), want.OutNeighbors(typ, v))
			}
			if !reflect.DeepEqual(got.InNeighbors(typ, v), want.InNeighbors(typ, v)) {
				t.Errorf("InNeighbors(%q, %d) = %v, want %v", typ, v, got.InNeighbors(typ, v), want.InNeighbors(typ, v))
			}
		}
	}
}

// TestLayoutRoundTrip serializes a compiled index at several base file
// offsets and checks that the zero-copy view answers identically to
// the compiled original on every surface the searchers use.
func TestLayoutRoundTrip(t *testing.T) {
	db, _ := buildGraph(t)
	ix := Compile(db)

	for _, base := range []int64{0, 4, 8, 20} {
		// Simulate the layout landing mid-file: the preceding bytes shift
		// every section, exercising the file-offset alignment padding.
		prefix := bytes.Repeat([]byte{0xEE}, int(base))
		full := ix.AppendLayout(prefix, base)
		data := full[base:]

		if want := ix.LayoutLen(base); int64(len(data)) != want {
			t.Fatalf("base %d: LayoutLen = %d, encoded %d bytes", base, want, len(data))
		}
		got, err := FromLayout(data, base)
		if err != nil {
			t.Fatalf("base %d: FromLayout: %v", base, err)
		}
		if got.DB() != nil {
			t.Error("viewed index must have no backing store")
		}
		if got.Version() != 0 {
			t.Errorf("viewed index version = %d, want 0 (on-disk layouts drop the cache key)", got.Version())
		}
		assertSameIndex(t, got, ix)
	}
}

// TestLayoutByteStable: re-serializing a viewed index reproduces the
// original bytes exactly — the layout has one canonical form, so
// snapshot byte-stability survives a save→mmap→save cycle.
func TestLayoutByteStable(t *testing.T) {
	db, _ := buildGraph(t)
	ix := Compile(db)
	data := ix.AppendLayout(nil, 0)
	got, err := FromLayout(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	again := got.AppendLayout(nil, 0)
	if !bytes.Equal(data, again) {
		t.Errorf("re-encoded layout differs: %d vs %d bytes", len(data), len(again))
	}
}

// TestLayoutRejectsTruncation views every strict prefix of a valid
// layout: each must produce an error, never a panic and never a
// silently short index.
func TestLayoutRejectsTruncation(t *testing.T) {
	db, _ := buildGraph(t)
	data := Compile(db).AppendLayout(nil, 0)
	if _, err := FromLayout(data, 0); err != nil {
		t.Fatalf("pristine layout must view: %v", err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := FromLayout(data[:n], 0); err == nil {
			t.Fatalf("truncation to %d/%d bytes viewed successfully", n, len(data))
		}
	}
}

// TestLayoutRejectsHeaderCorruption pins the header diagnostics: bad
// magic, unknown layout version, and an absurd directory count all
// error before any array is aliased.
func TestLayoutRejectsHeaderCorruption(t *testing.T) {
	db, _ := buildGraph(t)
	data := Compile(db).AppendLayout(nil, 0)

	flip := func(off int) []byte {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0xff
		return bad
	}
	if _, err := FromLayout(flip(0), 0); err == nil {
		t.Error("bad magic must error")
	}
	if _, err := FromLayout(flip(8), 0); err == nil {
		t.Error("bad layout version must error")
	}
	if _, err := FromLayout(flip(32), 0); err == nil {
		t.Error("bad directory count must error")
	}
	if _, err := FromLayout(nil, 0); err == nil {
		t.Error("empty layout must error")
	}
}
