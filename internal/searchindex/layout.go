package searchindex

import (
	"encoding/binary"
	"fmt"
	"unsafe"

	"tabby/internal/graphdb"
	"tabby/internal/sortutil"
)

// Binary layout of a compiled index, designed to be viewed straight out
// of an mmap'd snapshot section with no parse or copy step. Every array
// the Index struct holds is written as a little-endian section whose
// file offset is 8-byte aligned, so the reader can alias the mapped
// bytes with unsafe.Slice and hand the result to the path finder and
// the query planner untouched. The price of that aliasing is paid in
// validation instead of decoding: FromLayout bounds- and
// invariant-checks every section (monotone CSR offsets, in-range refs,
// bijective ID maps) before the first query can run, so a corrupt or
// truncated file produces an error, never a panic or silent garbage.
//
//	header    5 × u64: magic "TBYCSR3\0", layout version, index
//	          version, node count, directory entry count
//	directory entryCount × {off u64, count u64} — off is relative to
//	          the layout start; count is in elements, not bytes
//	arrays    each padded so base+off ≡ 0 (mod 8), in directory order
//
// The directory has 24 fixed entries (ids, idxOf, the string-ref
// columns, bitsets, CALL/ALIAS CSR, int pool, string table, label
// refs+bits, rel-type refs) followed by 4 entries per relationship
// type (outStart, out, inStart, in), matching buildQueryAdjacency.
const (
	layoutMagic   uint64 = 0x0033525343594254 // "TBYCSR3\x00", little-endian
	layoutVersion uint64 = 1

	layoutHeaderLen    = 5 * 8
	layoutEntryLen     = 2 * 8
	layoutFixedEntries = 24
	layoutMaxEntries   = 1 << 20 // sanity cap on relationship types
)

// Fixed directory slots (tail slots 24.. are per-rel-type CSR arrays).
const (
	secIDs = iota
	secIdxOf
	secNameRef
	secSinkTypeRef
	secMethodNameRef
	secTCOf
	secIsSource
	secIsSink
	secHasName
	secHasSinkType
	secHasMethodName
	secCallStart
	secCallFrom
	secCallPP
	secAliasStart
	secAliasTo
	secPoolOff
	secPoolLen
	secPoolBuf
	secStrOffs
	secStrBlob
	secLabelRefs
	secLabelBits
	secRelTypeRefs
)

// hostLittleEndian reports whether this machine stores integers
// little-endian. The layout is defined little-endian on disk; on a
// big-endian host zero-copy aliasing would misread every word, so
// FromLayout refuses and callers fall back to the heap path.
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// LayoutSupported reports whether this host can view on-disk index
// layouts zero-copy. When false, FromLayout always errors and callers
// should plan on the heap path from the start.
func LayoutSupported() bool { return hostLittleEndian() }

// laySection is one directory entry during encoding.
type laySection struct {
	elem  int // element size in bytes
	count int
	put   func(b []byte)
}

func putInt32s(vals []int32) func([]byte) {
	return func(b []byte) {
		for i, v := range vals {
			binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
		}
	}
}

func putUint64s(vals []uint64) func([]byte) {
	return func(b []byte) {
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[i*8:], v)
		}
	}
}

func putIDs(vals []graphdb.ID) func([]byte) {
	return func(b []byte) {
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
		}
	}
}

func putBytes(vals []byte) func([]byte) {
	return func(b []byte) { copy(b, vals) }
}

func i32Section(vals []int32) laySection {
	return laySection{elem: 4, count: len(vals), put: putInt32s(vals)}
}

func u64Section(vals []uint64) laySection {
	return laySection{elem: 8, count: len(vals), put: putUint64s(vals)}
}

// layoutSpecs lists every section in directory order. Labels are
// emitted sorted by name; relationship types already are (relTypes).
// Label and rel-type names were interned at build time, so resolving
// their refs never mutates the string table here.
func (ix *Index) layoutSpecs() []laySection {
	n := len(ix.ids)
	words := (n + 63) / 64

	labels := sortutil.SortedKeys(ix.labelBits)
	labelRefs := make([]int32, len(labels))
	labelBits := make([]uint64, 0, len(labels)*words)
	for i, l := range labels {
		labelRefs[i] = ix.strs.refOf(l)
		labelBits = append(labelBits, ix.labelBits[l]...)
	}
	relTypeRefs := make([]int32, len(ix.relTypes))
	for i, t := range ix.relTypes {
		relTypeRefs[i] = ix.strs.refOf(t)
	}

	specs := []laySection{
		secIDs:           {elem: 8, count: n, put: putIDs(ix.ids)},
		secIdxOf:         i32Section(ix.idxOf),
		secNameRef:       i32Section(ix.nameRef),
		secSinkTypeRef:   i32Section(ix.sinkTypeRef),
		secMethodNameRef: i32Section(ix.methodNameRef),
		secTCOf:          i32Section(ix.tcOf),
		secIsSource:      u64Section(ix.isSource),
		secIsSink:        u64Section(ix.isSink),
		secHasName:       u64Section(ix.hasName),
		secHasSinkType:   u64Section(ix.hasSinkType),
		secHasMethodName: u64Section(ix.hasMethodName),
		secCallStart:     i32Section(ix.callStart),
		secCallFrom:      i32Section(ix.callFrom),
		secCallPP:        i32Section(ix.callPP),
		secAliasStart:    i32Section(ix.aliasStart),
		secAliasTo:       i32Section(ix.aliasTo),
		secPoolOff:       i32Section(ix.pool.off),
		secPoolLen:       i32Section(ix.pool.length),
		secPoolBuf:       i32Section(ix.pool.buf),
		secStrOffs:       i32Section(ix.strs.offs),
		secStrBlob:       {elem: 1, count: len(ix.strs.blob), put: putBytes(ix.strs.blob)},
		secLabelRefs:     i32Section(labelRefs),
		secLabelBits:     u64Section(labelBits),
		secRelTypeRefs:   i32Section(relTypeRefs),
	}
	for _, t := range ix.relTypes {
		a := ix.adj[t]
		specs = append(specs,
			i32Section(a.outStart), i32Section(a.out),
			i32Section(a.inStart), i32Section(a.in))
	}
	return specs
}

// LayoutLen returns the exact encoded size of AppendLayout's output
// when the first appended byte lands at absolute file offset base.
// Writers use it to frame the section before producing the payload.
func (ix *Index) LayoutLen(base int64) int64 {
	specs := ix.layoutSpecs()
	pos := int64(layoutHeaderLen + len(specs)*layoutEntryLen)
	for _, sp := range specs {
		pos += layoutPad(base + pos)
		pos += int64(sp.count) * int64(sp.elem)
	}
	return pos
}

// AppendLayout appends the index's binary layout to dst. base is the
// absolute file offset at which the first appended byte will land;
// every array is padded so its own file offset is 8-byte aligned,
// which is what lets FromLayout alias the mapped bytes directly.
func (ix *Index) AppendLayout(dst []byte, base int64) []byte {
	specs := ix.layoutSpecs()
	offs := make([]int64, len(specs))
	pos := int64(layoutHeaderLen + len(specs)*layoutEntryLen)
	for i, sp := range specs {
		pos += layoutPad(base + pos)
		offs[i] = pos
		pos += int64(sp.count) * int64(sp.elem)
	}

	start := len(dst)
	dst = append(dst, make([]byte, pos)...)
	b := dst[start:]
	le := binary.LittleEndian
	le.PutUint64(b[0:], layoutMagic)
	le.PutUint64(b[8:], layoutVersion)
	// The store's live mutation counter is a process-local cache key, not
	// part of the graph; embedding it would make byte-identical graphs
	// serialize differently. On-disk indexes are always version 0.
	le.PutUint64(b[16:], 0)
	le.PutUint64(b[24:], uint64(len(ix.ids)))
	le.PutUint64(b[32:], uint64(len(specs)))
	for i, sp := range specs {
		le.PutUint64(b[layoutHeaderLen+i*layoutEntryLen:], uint64(offs[i]))
		le.PutUint64(b[layoutHeaderLen+i*layoutEntryLen+8:], uint64(sp.count))
	}
	for i, sp := range specs {
		if sp.count > 0 {
			sp.put(b[offs[i]:])
		}
	}
	return dst
}

// layoutPad returns how many zero bytes must precede an array that
// would start at absolute file offset pos to land it 8-byte aligned.
func layoutPad(pos int64) int64 {
	return (8 - pos%8) % 8
}

// layoutEntry is one parsed directory entry.
type layoutEntry struct {
	off   int64
	count int64
}

// layoutErr tags every validation failure with enough context to
// debug a bad writer without ever risking a panic on a bad file.
func layoutErr(format string, args ...any) error {
	return fmt.Errorf("searchindex layout: "+format, args...)
}

// FromLayout views data — the exact bytes AppendLayout produced,
// landing at absolute file offset base — as a ready-to-serve Index.
// The returned index aliases data: all flat arrays, and every string
// it ever returns, point into data's backing memory, so the caller
// must keep that memory mapped/reachable for the index's lifetime.
// Allocation is O(labels + relationship types), never O(graph).
//
// All structural invariants the search and the planner rely on are
// verified up front; any violation returns an error. The index has no
// backing store: DB() returns nil.
func FromLayout(data []byte, base int64) (*Index, error) {
	if !hostLittleEndian() {
		return nil, layoutErr("zero-copy view requires a little-endian host")
	}
	if len(data) < layoutHeaderLen {
		return nil, layoutErr("short header: %d bytes", len(data))
	}
	le := binary.LittleEndian
	if m := le.Uint64(data[0:]); m != layoutMagic {
		return nil, layoutErr("bad magic %#x", m)
	}
	if v := le.Uint64(data[8:]); v != layoutVersion {
		return nil, layoutErr("unsupported layout version %d", v)
	}
	ixVersion := le.Uint64(data[16:])
	n64 := le.Uint64(data[24:])
	entryCount := le.Uint64(data[32:])
	if n64 > uint64(len(data)) {
		return nil, layoutErr("node count %d exceeds section size", n64)
	}
	n := int(n64)
	if entryCount < layoutFixedEntries || entryCount > layoutMaxEntries ||
		(entryCount-layoutFixedEntries)%4 != 0 {
		return nil, layoutErr("bad directory entry count %d", entryCount)
	}
	numRelTypes := int(entryCount-layoutFixedEntries) / 4
	hdrLen := int64(layoutHeaderLen) + int64(entryCount)*layoutEntryLen
	if int64(len(data)) < hdrLen {
		return nil, layoutErr("directory truncated: %d bytes, need %d", len(data), hdrLen)
	}

	entries := make([]layoutEntry, entryCount)
	for i := range entries {
		o := layoutHeaderLen + i*layoutEntryLen
		off := le.Uint64(data[o:])
		count := le.Uint64(data[o+8:])
		elem := int64(layoutElemSize(i))
		if off > uint64(len(data)) || count > uint64(len(data)) {
			return nil, layoutErr("entry %d out of range (off=%d count=%d)", i, off, count)
		}
		e := layoutEntry{off: int64(off), count: int64(count)}
		if e.off < hdrLen || e.off+e.count*elem > int64(len(data)) {
			return nil, layoutErr("entry %d out of bounds (off=%d count=%d)", i, off, count)
		}
		if (base+e.off)%8 != 0 {
			return nil, layoutErr("entry %d misaligned (file offset %d)", i, base+e.off)
		}
		if e.count > 0 && uintptr(unsafe.Pointer(&data[e.off]))%8 != 0 {
			return nil, layoutErr("entry %d backing memory misaligned", i)
		}
		entries[i] = e
	}

	words := int64((n + 63) / 64)

	ix := &Index{version: ixVersion}
	var err error
	if ix.ids, err = viewIDs(data, entries[secIDs], int64(n)); err != nil {
		return nil, err
	}
	if ix.idxOf, err = viewInt32s(data, entries[secIdxOf], -1); err != nil {
		return nil, err
	}
	if ix.nameRef, err = viewInt32s(data, entries[secNameRef], int64(n)); err != nil {
		return nil, err
	}
	if ix.sinkTypeRef, err = viewInt32s(data, entries[secSinkTypeRef], int64(n)); err != nil {
		return nil, err
	}
	if ix.methodNameRef, err = viewInt32s(data, entries[secMethodNameRef], int64(n)); err != nil {
		return nil, err
	}
	if ix.tcOf, err = viewInt32s(data, entries[secTCOf], int64(n)); err != nil {
		return nil, err
	}
	if ix.isSource, err = viewUint64s(data, entries[secIsSource], words); err != nil {
		return nil, err
	}
	if ix.isSink, err = viewUint64s(data, entries[secIsSink], words); err != nil {
		return nil, err
	}
	if ix.hasName, err = viewUint64s(data, entries[secHasName], words); err != nil {
		return nil, err
	}
	if ix.hasSinkType, err = viewUint64s(data, entries[secHasSinkType], words); err != nil {
		return nil, err
	}
	if ix.hasMethodName, err = viewUint64s(data, entries[secHasMethodName], words); err != nil {
		return nil, err
	}
	if ix.callStart, err = viewInt32s(data, entries[secCallStart], int64(n)+1); err != nil {
		return nil, err
	}
	if ix.callFrom, err = viewInt32s(data, entries[secCallFrom], -1); err != nil {
		return nil, err
	}
	if ix.callPP, err = viewInt32s(data, entries[secCallPP], entries[secCallFrom].count); err != nil {
		return nil, err
	}
	if ix.aliasStart, err = viewInt32s(data, entries[secAliasStart], int64(n)+1); err != nil {
		return nil, err
	}
	if ix.aliasTo, err = viewInt32s(data, entries[secAliasTo], -1); err != nil {
		return nil, err
	}
	if ix.pool.off, err = viewInt32s(data, entries[secPoolOff], -1); err != nil {
		return nil, err
	}
	if ix.pool.length, err = viewInt32s(data, entries[secPoolLen], entries[secPoolOff].count); err != nil {
		return nil, err
	}
	if ix.pool.buf, err = viewInt32s(data, entries[secPoolBuf], -1); err != nil {
		return nil, err
	}
	var strOffs []int32
	if strOffs, err = viewInt32s(data, entries[secStrOffs], -1); err != nil {
		return nil, err
	}
	if len(strOffs) < 2 {
		return nil, layoutErr("string table needs at least ref 0 (%d offsets)", len(strOffs))
	}
	blobEntry := entries[secStrBlob]
	var blob []byte
	if blobEntry.count > 0 {
		blob = data[blobEntry.off : blobEntry.off+blobEntry.count : blobEntry.off+blobEntry.count]
	}
	ix.strs = viewStringTable(strOffs, blob)
	var labelRefs []int32
	if labelRefs, err = viewInt32s(data, entries[secLabelRefs], -1); err != nil {
		return nil, err
	}
	var labelBits []uint64
	if labelBits, err = viewUint64s(data, entries[secLabelBits], int64(len(labelRefs))*words); err != nil {
		return nil, err
	}
	var relTypeRefs []int32
	if relTypeRefs, err = viewInt32s(data, entries[secRelTypeRefs], int64(numRelTypes)); err != nil {
		return nil, err
	}

	// String-table structure first: every later ref check leans on it.
	s := int32(len(strOffs) - 1)
	if strOffs[0] != 0 {
		return nil, layoutErr("string offsets must start at 0")
	}
	for i := 1; i < len(strOffs); i++ {
		if strOffs[i] < strOffs[i-1] {
			return nil, layoutErr("string offsets not monotone at %d", i)
		}
	}
	if int64(strOffs[len(strOffs)-1]) != blobEntry.count {
		return nil, layoutErr("string offsets end at %d, blob is %d bytes",
			strOffs[len(strOffs)-1], blobEntry.count)
	}
	if strOffs[1] != 0 {
		return nil, layoutErr("ref 0 must be the empty string")
	}

	if err := validateLayout(ix, s, labelRefs, labelBits, relTypeRefs, int(words)); err != nil {
		return nil, err
	}

	// The only per-open allocations: the label and rel-type maps.
	ix.labelBits = make(map[string][]uint64, len(labelRefs))
	prev := ""
	for i, ref := range labelRefs {
		name := ix.strs.At(ref)
		if i > 0 && name <= prev {
			return nil, layoutErr("label names not sorted-unique at %d", i)
		}
		prev = name
		ix.labelBits[name] = labelBits[int64(i)*words : int64(i+1)*words]
	}
	ix.adj = make(map[string]*typeAdj, numRelTypes)
	ix.relTypes = make([]string, 0, numRelTypes)
	prev = ""
	for r := 0; r < numRelTypes; r++ {
		name := ix.strs.At(relTypeRefs[r])
		if r > 0 && name <= prev {
			return nil, layoutErr("relationship types not sorted-unique at %d", r)
		}
		prev = name
		a := &typeAdj{}
		baseEntry := layoutFixedEntries + r*4
		if a.outStart, err = viewInt32s(data, entries[baseEntry], int64(n)+1); err != nil {
			return nil, err
		}
		if a.out, err = viewInt32s(data, entries[baseEntry+1], -1); err != nil {
			return nil, err
		}
		if a.inStart, err = viewInt32s(data, entries[baseEntry+2], int64(n)+1); err != nil {
			return nil, err
		}
		if a.in, err = viewInt32s(data, entries[baseEntry+3], -1); err != nil {
			return nil, err
		}
		if err := validateCSR(name, " out", a.outStart, a.out, n, true); err != nil {
			return nil, err
		}
		if err := validateCSR(name, " in", a.inStart, a.in, n, true); err != nil {
			return nil, err
		}
		ix.adj[name] = a
		ix.relTypes = append(ix.relTypes, name)
	}
	ix.deriveDispatchBits()
	return ix, nil
}

// layoutElemSize returns the element size of directory slot i; tail
// slots (per-rel-type CSR arrays) are all int32.
func layoutElemSize(i int) int {
	switch i {
	case secIDs, secIsSource, secIsSink, secHasName, secHasSinkType,
		secHasMethodName, secLabelBits:
		return 8
	case secStrBlob:
		return 1
	default:
		return 4
	}
}

// viewInt32s aliases entry e of data as an []int32. wantCount < 0
// accepts any length. The caller already bounds- and alignment-checked
// the entry table; re-checking here keeps every view self-contained.
func viewInt32s(data []byte, e layoutEntry, wantCount int64) ([]int32, error) {
	if wantCount >= 0 && e.count != wantCount {
		return nil, layoutErr("int32 section count %d, want %d", e.count, wantCount)
	}
	if e.count == 0 {
		return nil, nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&data[e.off])), e.count), nil
}

// viewUint64s aliases entry e of data as a []uint64.
func viewUint64s(data []byte, e layoutEntry, wantCount int64) ([]uint64, error) {
	if wantCount >= 0 && e.count != wantCount {
		return nil, layoutErr("uint64 section count %d, want %d", e.count, wantCount)
	}
	if e.count == 0 {
		return nil, nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&data[e.off])), e.count), nil
}

// viewIDs aliases entry e of data as a []graphdb.ID (an int64 alias,
// so the memory layout is identical).
func viewIDs(data []byte, e layoutEntry, wantCount int64) ([]graphdb.ID, error) {
	if wantCount >= 0 && e.count != wantCount {
		return nil, layoutErr("id section count %d, want %d", e.count, wantCount)
	}
	if e.count == 0 {
		return nil, nil
	}
	return unsafe.Slice((*graphdb.ID)(unsafe.Pointer(&data[e.off])), e.count), nil
}

// validateLayout checks every structural invariant the search and the
// planner rely on. CPU is O(total section bytes) with zero allocation;
// corruption that slips past the section CRC (or a buggy writer) is
// caught here instead of surfacing as a panic or silent garbage.
func validateLayout(ix *Index, s int32, labelRefs []int32, labelBits []uint64, relTypeRefs []int32, words int) error {
	n := len(ix.ids)
	maxID := int64(len(ix.idxOf)) - 1

	// ids strictly ascending within [0, maxID]; idxOf its exact inverse
	// (bijective over the node set, -1 everywhere else).
	for i, id := range ix.ids {
		if id < 0 || int64(id) > maxID {
			return layoutErr("node id %d out of idxOf range", id)
		}
		if i > 0 && id <= ix.ids[i-1] {
			return layoutErr("node ids not strictly ascending at %d", i)
		}
		if ix.idxOf[id] != int32(i) {
			return layoutErr("idxOf[%d] = %d, want %d", id, ix.idxOf[id], i)
		}
	}
	// Per-element checks below run on every zero-copy open over the
	// largest sections, so each is a single unsigned comparison: shifting
	// a [-1, n) or [0, n) test by the lower bound folds both ends into
	// one branch (negatives wrap to huge values).
	nonNeg := 0
	for _, v := range ix.idxOf {
		if uint32(v+1) > uint32(n) {
			return layoutErr("idxOf value %d out of range", v)
		}
		if v >= 0 {
			nonNeg++
		}
	}
	if nonNeg != n {
		return layoutErr("idxOf maps %d ids, want %d", nonNeg, n)
	}

	for _, col := range [][]int32{ix.nameRef, ix.sinkTypeRef, ix.methodNameRef} {
		for _, ref := range col {
			if uint32(ref) >= uint32(s) {
				return layoutErr("string ref %d out of range (table has %d)", ref, s)
			}
		}
	}

	k := int32(len(ix.pool.off))
	p := int32(len(ix.pool.buf))
	for j := int32(0); j < k; j++ {
		off, l := ix.pool.off[j], ix.pool.length[j]
		if off < 0 || l < 0 || off+l > p || off+l < off {
			return layoutErr("pool entry %d out of range (off=%d len=%d buf=%d)", j, off, l, p)
		}
	}
	for _, ref := range ix.tcOf {
		if uint32(ref+1) > uint32(k) {
			return layoutErr("TC ref %d out of range (pool has %d)", ref, k)
		}
	}

	if err := validateCSR("CALL", "", ix.callStart, ix.callFrom, n, false); err != nil {
		return err
	}
	for _, ref := range ix.callPP {
		if uint32(ref+1) > uint32(k) {
			return layoutErr("PP ref %d out of range (pool has %d)", ref, k)
		}
	}
	if err := validateCSR("ALIAS", "", ix.aliasStart, ix.aliasTo, n, false); err != nil {
		return err
	}

	for _, ref := range labelRefs {
		if uint32(ref) >= uint32(s) {
			return layoutErr("label ref %d out of range", ref)
		}
	}
	for _, ref := range relTypeRefs {
		if uint32(ref) >= uint32(s) {
			return layoutErr("relationship type ref %d out of range", ref)
		}
	}
	if words > 0 && n > 0 {
		// Bits past the node count must be zero or bitset scans would
		// surface phantom nodes.
		mask := ^uint64(0) << (uint(n) & 63)
		if uint(n)&63 == 0 {
			mask = 0
		}
		for _, bs := range [][]uint64{ix.isSource, ix.isSink, ix.hasName, ix.hasSinkType, ix.hasMethodName} {
			if len(bs) > 0 && bs[len(bs)-1]&mask != 0 {
				return layoutErr("bitset has bits past node count")
			}
		}
		for l := 0; l*words < len(labelBits); l++ {
			if labelBits[(l+1)*words-1]&mask != 0 {
				return layoutErr("label bitset %d has bits past node count", l)
			}
		}
	}
	return nil
}

// validateCSR checks one CSR pair: start has n+1 monotone offsets from
// 0 to len(data), and every stored neighbour index is a valid node.
// sortedRows additionally requires each row strictly ascending (the
// planner's sorted-unique adjacency contract). This runs on every
// zero-copy open over R rel types x n nodes, so the loops are kept
// flat: one monotone pass over start, one unsigned bounds pass over
// data, and (for sorted rows) an adjacent-pair scan that never
// materialises row slices. dir is a label suffix (" out"/" in") kept
// out of the hot path so callers need not concatenate strings per call.
func validateCSR(what, dir string, start, data []int32, n int, sortedRows bool) error {
	if len(start) != n+1 {
		return layoutErr("%s%s: start has %d offsets, want %d", what, dir, len(start), n+1)
	}
	if n >= 0 && (len(start) == 0 || start[0] != 0) {
		return layoutErr("%s%s: start[0] must be 0", what, dir)
	}
	if int(start[n]) != len(data) {
		return layoutErr("%s%s: start ends at %d, data has %d", what, dir, start[n], len(data))
	}
	// The offsets partition data exactly, so row-by-row bounds checks
	// collapse to one pass over the whole array.
	for _, v := range data {
		if uint32(v) >= uint32(n) {
			return layoutErr("%s%s: neighbour %d out of range", what, dir, v)
		}
	}
	m := int32(len(data))
	if !sortedRows {
		for i := 0; i < n; i++ {
			if start[i+1] < start[i] {
				return layoutErr("%s%s: start not monotone at %d", what, dir, i)
			}
		}
		return nil
	}
	// Monotone offsets and per-row ascent in one pass. The hi <= m guard
	// makes data[j] safe even before the whole start array is vetted:
	// inductively lo >= 0, so every j stays inside [0, m).
	for i := 0; i < n; i++ {
		lo, hi := start[i], start[i+1]
		if hi < lo || hi > m {
			return layoutErr("%s%s: start not monotone at %d", what, dir, i)
		}
		for j := lo + 1; j < hi; j++ {
			if data[j] <= data[j-1] {
				return layoutErr("%s%s: row %d not sorted-unique", what, dir, i)
			}
		}
	}
	return nil
}

// refOf resolves an already-interned string's ref. The map path covers
// compiled tables; viewed tables (nil lookup) fall back to a scan —
// only reachable when re-serializing a loaded snapshot, never on a
// query path.
func (t *StringTable) refOf(s string) int32 {
	if t.lookup != nil {
		return t.lookup[s]
	}
	for ref := int32(0); ref < int32(t.Count()); ref++ {
		if t.At(ref) == s {
			return ref
		}
	}
	return 0
}
