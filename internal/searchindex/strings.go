package searchindex

import "unsafe"

// StringTable interns the index's string columns (NAME, SINK_TYPE,
// METHOD_NAME, label and relationship-type names) into two flat arrays:
// a byte blob holding every distinct string back to back and a
// cumulative offset array bracketing each entry. Ref 0 is always the
// empty string, so absent column values need no sentinel.
//
// The flat representation is the point: a table built by Compile lives
// on the heap, but the exact same two arrays can alias a read-only
// mmap'd snapshot section, and At resolves refs without copying in
// either case (the returned string shares the blob's backing bytes).
// Callers must therefore keep the mapping alive for as long as any
// resolved string is reachable — the storage backend owns that
// lifetime.
type StringTable struct {
	offs []int32 // len = Count()+1, cumulative byte offsets into blob
	blob []byte

	lookup map[string]int32 // builder side only; nil on views
}

// NewStringTable creates an empty table whose ref 0 is "".
func NewStringTable() *StringTable {
	return &StringTable{offs: []int32{0, 0}, lookup: map[string]int32{"": 0}}
}

// Intern returns the ref of s, adding it when new. Builder side only —
// tables viewed from a snapshot section are immutable.
func (t *StringTable) Intern(s string) int32 {
	if ref, ok := t.lookup[s]; ok {
		return ref
	}
	ref := int32(len(t.offs) - 1)
	t.blob = append(t.blob, s...)
	t.offs = append(t.offs, int32(len(t.blob)))
	t.lookup[s] = ref
	return ref
}

// At resolves a ref. The returned string aliases the table's blob (heap
// or mapped file) — zero-copy in both directions.
func (t *StringTable) At(ref int32) string {
	lo, hi := t.offs[ref], t.offs[ref+1]
	if lo == hi {
		return ""
	}
	return unsafe.String(&t.blob[lo], int(hi-lo))
}

// Count returns how many distinct strings the table holds (including
// the empty string at ref 0).
func (t *StringTable) Count() int { return len(t.offs) - 1 }

// viewStringTable wraps snapshot-section arrays as an immutable table.
// offs must be cumulative with offs[0] == 0; the caller validates.
func viewStringTable(offs []int32, blob []byte) *StringTable {
	return &StringTable{offs: offs, blob: blob}
}
