package searchindex

import (
	"reflect"
	"testing"

	"tabby/internal/cpg"
	"tabby/internal/graphdb"
)

// buildGraph assembles a small CPG-shaped store:
//
//	sink  — IS_SINK, TC [1,0,1] (normalizes to [0,1]), SINK_TYPE EXEC
//	mid   -CALL→ sink   PP [0,0]
//	src   -CALL→ mid    PP [0,0]   (IS_SOURCE)
//	alias -ALIAS→ mid
//	bare  -CALL→ sink   (no PP property)
func buildGraph(t *testing.T) (*graphdb.DB, map[string]graphdb.ID) {
	t.Helper()
	db := graphdb.New()
	ids := map[string]graphdb.ID{}
	node := func(name string, props graphdb.Props) {
		if props == nil {
			props = graphdb.Props{}
		}
		props[cpg.PropName] = name
		ids[name] = db.CreateNode([]string{cpg.LabelMethod}, props)
	}
	node("sink", graphdb.Props{
		cpg.PropIsSink:           true,
		cpg.PropSinkType:         "EXEC",
		cpg.PropTriggerCondition: []int{1, 0, 1},
	})
	node("mid", nil)
	node("src", graphdb.Props{cpg.PropIsSource: true})
	node("alias", nil)
	node("bare", nil)
	rel := func(typ, from, to string, props graphdb.Props) {
		if _, err := db.CreateRel(typ, ids[from], ids[to], props); err != nil {
			t.Fatal(err)
		}
	}
	rel(cpg.RelCall, "mid", "sink", graphdb.Props{cpg.PropPollutedPosition: []int{0, 0}})
	rel(cpg.RelCall, "src", "mid", graphdb.Props{cpg.PropPollutedPosition: []int{0, 0}})
	rel(cpg.RelAlias, "alias", "mid", nil)
	rel(cpg.RelCall, "bare", "sink", nil)
	return db, ids
}

func TestCompileLayout(t *testing.T) {
	db, ids := buildGraph(t)
	ix := Compile(db)

	if ix.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", ix.NumNodes())
	}
	// Dense renumbering is ascending store-ID order, round-trippable.
	for name, id := range ids {
		v := ix.IdxOf(id)
		if v < 0 || ix.IDOf(v) != id {
			t.Fatalf("renumbering broken for %s: idx %d, id %d", name, v, id)
		}
		if ix.Name(v) != name {
			t.Errorf("Name(%s) = %q", name, ix.Name(v))
		}
	}
	if ix.IdxOf(graphdb.ID(9999)) != -1 {
		t.Error("IdxOf(unknown) should be -1")
	}

	sink := ix.IdxOf(ids["sink"])
	mid := ix.IdxOf(ids["mid"])
	src := ix.IdxOf(ids["src"])
	alias := ix.IdxOf(ids["alias"])
	bare := ix.IdxOf(ids["bare"])

	if !ix.IsSink(sink) || ix.IsSink(mid) {
		t.Error("IS_SINK bitset wrong")
	}
	if !ix.IsSource(src) || ix.IsSource(sink) {
		t.Error("IS_SOURCE bitset wrong")
	}
	if ix.SinkType(sink) != "EXEC" || ix.SinkType(mid) != "" {
		t.Error("SINK_TYPE column wrong")
	}

	// TC column is normalized (sorted, deduped).
	if ref := ix.TCRef(sink); ref < 0 {
		t.Fatal("sink TC missing")
	} else if got := ix.Ints(ref); !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Errorf("sink TC = %v, want [0 1]", got)
	}
	if ix.TCRef(mid) != -1 {
		t.Error("mid must have no TC")
	}

	// Incoming CALL CSR at sink: mid then bare, in adjacency order; the
	// PP-less edge keeps its slot with ref -1 (expansion parity with the
	// generic traversal, which spends budget before rejecting it).
	lo, hi := ix.CallRange(sink)
	if hi-lo != 2 {
		t.Fatalf("sink call edges = %d, want 2", hi-lo)
	}
	c0, pp0 := ix.CallEdge(lo)
	c1, pp1 := ix.CallEdge(lo + 1)
	if c0 != mid || c1 != bare {
		t.Errorf("callers = %d,%d want %d,%d", c0, c1, mid, bare)
	}
	if pp0 < 0 || !reflect.DeepEqual(ix.Ints(pp0), []int32{0, 0}) {
		t.Errorf("edge PP = %v", ix.Ints(pp0))
	}
	if pp1 != -1 {
		t.Errorf("PP-less edge ref = %d, want -1", pp1)
	}

	// The two identical PP arrays intern to the same ref (stored once).
	lom, him := ix.CallRange(mid)
	if him-lom != 1 {
		t.Fatalf("mid call edges = %d, want 1", him-lom)
	}
	if _, ppm := ix.CallEdge(lom); ppm != pp0 {
		t.Errorf("identical PPs interned to distinct refs %d and %d", ppm, pp0)
	}

	// ALIAS CSR is bidirectional: visible from both endpoints.
	if lo, hi := ix.AliasRange(mid); hi-lo != 1 || ix.AliasTarget(lo) != alias {
		t.Errorf("mid alias neighbours wrong: range %d..%d", lo, hi)
	}
	if lo, hi := ix.AliasRange(alias); hi-lo != 1 || ix.AliasTarget(lo) != mid {
		t.Errorf("alias alias-neighbours wrong: range %d..%d", lo, hi)
	}

	st := ix.Stats()
	if st.Nodes != 5 || st.CallEdges != 3 || st.AliasSlots != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.InternedArrays < 2 { // [0 1] TC and [0 0] PP at least
		t.Errorf("interned arrays = %d", st.InternedArrays)
	}
}

func TestAliasSelfLoopTargetsSelf(t *testing.T) {
	db := graphdb.New()
	a := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{cpg.PropName: "a"})
	if _, err := db.CreateRel(cpg.RelAlias, a, a, nil); err != nil {
		t.Fatal(err)
	}
	ix := Compile(db)
	v := ix.IdxOf(a)
	lo, hi := ix.AliasRange(v)
	// The self-loop occupies two slots (out + in), both resolving to the
	// node itself — exactly what Rels(DirBoth)+Other yields.
	if hi-lo != 2 {
		t.Fatalf("self-loop slots = %d, want 2", hi-lo)
	}
	for e := lo; e < hi; e++ {
		if ix.AliasTarget(e) != v {
			t.Errorf("self-loop target = %d, want %d", ix.AliasTarget(e), v)
		}
	}
}

func TestForCachesUntilMutation(t *testing.T) {
	db, ids := buildGraph(t)
	before := Builds()
	ix1 := For(db)
	ix2 := For(db)
	if ix1 != ix2 {
		t.Fatal("For rebuilt the index with no mutation")
	}
	if Builds() != before+1 {
		t.Fatalf("builds = %d, want %d", Builds(), before+1)
	}
	// A mutation invalidates the cached view.
	if err := db.SetNodeProp(ids["mid"], cpg.PropIsSource, true); err != nil {
		t.Fatal(err)
	}
	ix3 := For(db)
	if ix3 == ix1 {
		t.Fatal("For served a stale index after mutation")
	}
	if !ix3.IsSource(ix3.IdxOf(ids["mid"])) {
		t.Error("rebuilt index missing the new IS_SOURCE bit")
	}
	// Frozen stores cache forever.
	db.Freeze()
	if For(db) != For(db) {
		t.Fatal("frozen store index not cached")
	}
}

func TestIntPool(t *testing.T) {
	var p IntPool
	a := p.Intern([]int32{1, 2, 3})
	b := p.Intern([]int32{1, 2})
	c := p.Intern([]int32{1, 2, 3})
	empty := p.Intern(nil)
	if a != c {
		t.Errorf("identical arrays got refs %d and %d", a, c)
	}
	if a == b {
		t.Error("distinct arrays share a ref")
	}
	if !reflect.DeepEqual(p.Get(a), []int32{1, 2, 3}) || !reflect.DeepEqual(p.Get(b), []int32{1, 2}) {
		t.Errorf("Get round-trip failed: %v %v", p.Get(a), p.Get(b))
	}
	if len(p.Get(empty)) != 0 {
		t.Errorf("empty array Get = %v", p.Get(empty))
	}
	if p.Count() != 3 {
		t.Errorf("Count = %d, want 3", p.Count())
	}
	// Prefix safety: [1 2] must not collide with the prefix of [1 2 3].
	if got := p.Get(b); &got[0] == &p.Get(a)[0] && len(got) == 2 {
		// Sharing storage would be fine; sharing refs would not. Nothing
		// to assert beyond the ref inequality above.
		_ = got
	}
}

func TestAppendNormalized(t *testing.T) {
	cases := []struct {
		in   []int
		want []int32
	}{
		{nil, nil},
		{[]int{3, 1, 2, 1, 3}, []int32{1, 2, 3}},
		{[]int{0}, []int32{0}},
		{[]int{5, 4, 3, 2, 1}, []int32{1, 2, 3, 4, 5}},
		{[]int{2, 2, 2}, []int32{2}},
	}
	for _, c := range cases {
		got := appendNormalized(nil, c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("appendNormalized(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Appending after a base preserves the prefix.
	got := appendNormalized([]int32{9, 9}, []int{2, 1})
	if !reflect.DeepEqual(got, []int32{9, 9, 1, 2}) {
		t.Errorf("base-relative normalize = %v", got)
	}
}

func TestQuerySideView(t *testing.T) {
	db, ids := buildGraph(t)
	// Give one node a non-string NAME to exercise the presence bits, and
	// add parallel + reversed CALL edges to exercise sort/dedup.
	weird := db.CreateNode([]string{cpg.LabelClass}, graphdb.Props{cpg.PropName: 42})
	if _, err := db.CreateRel(cpg.RelCall, ids["mid"], ids["sink"], nil); err != nil {
		t.Fatal(err) // parallel edge mid-CALL->sink
	}
	if _, err := db.CreateRel(cpg.RelCall, ids["sink"], ids["mid"], nil); err != nil {
		t.Fatal(err) // reversed edge
	}
	ix := Compile(db)

	sink := ix.IdxOf(ids["sink"])
	mid := ix.IdxOf(ids["mid"])
	src := ix.IdxOf(ids["src"])
	alias := ix.IdxOf(ids["alias"])
	bare := ix.IdxOf(ids["bare"])
	wv := ix.IdxOf(weird)

	// Label bitsets: five Methods, one Class, nothing else.
	methods := ix.LabelBits(cpg.LabelMethod)
	classes := ix.LabelBits(cpg.LabelClass)
	if methods == nil || classes == nil {
		t.Fatal("label bitsets missing")
	}
	pop := func(bs []uint64) (n int) {
		for _, w := range bs {
			for ; w != 0; w &= w - 1 {
				n++
			}
		}
		return
	}
	if pop(methods) != 5 || pop(classes) != 1 {
		t.Errorf("label populations = %d methods, %d classes", pop(methods), pop(classes))
	}
	if classes[wv>>6]&(1<<(uint(wv)&63)) == 0 {
		t.Error("weird node missing from Class bitset")
	}
	if ix.LabelBits("NoSuchLabel") != nil {
		t.Error("unknown label should have nil bitset")
	}

	// Presence bits distinguish absent/non-string from string-typed.
	if !ix.HasName(sink) || ix.HasName(wv) {
		t.Errorf("HasName: sink=%v weird=%v", ix.HasName(sink), ix.HasName(wv))
	}
	if !ix.HasSinkType(sink) || ix.HasSinkType(mid) {
		t.Error("HasSinkType bits wrong")
	}
	if ix.SourceBits()[src>>6]&(1<<(uint(src)&63)) == 0 {
		t.Error("SourceBits missing src")
	}
	if ix.SinkBits()[sink>>6]&(1<<(uint(sink)&63)) == 0 {
		t.Error("SinkBits missing sink")
	}

	// RelTypes sorted ascending.
	if got := ix.RelTypes(); !reflect.DeepEqual(got, []string{cpg.RelAlias, cpg.RelCall}) {
		t.Errorf("RelTypes = %v", got)
	}

	// Sink's CALL in-neighbours: {mid, bare} sorted ascending with the
	// parallel mid edge deduped; out-neighbours: {mid} via the reversed
	// edge.
	want := []int32{mid, bare}
	if want[0] > want[1] {
		want[0], want[1] = want[1], want[0]
	}
	if got := ix.InNeighbors(cpg.RelCall, sink); !reflect.DeepEqual(got, want) {
		t.Errorf("sink CALL in = %v, want %v", got, want)
	}
	if got := ix.OutNeighbors(cpg.RelCall, sink); !reflect.DeepEqual(got, []int32{mid}) {
		t.Errorf("sink CALL out = %v", got)
	}
	// Mid's CALL out-neighbours dedupe the parallel edge to just {sink}.
	if got := ix.OutNeighbors(cpg.RelCall, mid); !reflect.DeepEqual(got, []int32{sink}) {
		t.Errorf("mid CALL out = %v", got)
	}
	// ALIAS is stored directionally here (the planner walks both rows for
	// its bidirectional semantics).
	if got := ix.OutNeighbors(cpg.RelAlias, alias); !reflect.DeepEqual(got, []int32{mid}) {
		t.Errorf("alias ALIAS out = %v", got)
	}
	if got := ix.InNeighbors(cpg.RelAlias, mid); !reflect.DeepEqual(got, []int32{alias}) {
		t.Errorf("mid ALIAS in = %v", got)
	}
	// Absent type / empty rows.
	if ix.OutNeighbors("NOPE", sink) != nil {
		t.Error("unknown type should yield nil")
	}
	if got := ix.OutNeighbors(cpg.RelCall, alias); len(got) != 0 {
		t.Errorf("alias CALL out = %v, want empty", got)
	}
	_ = bare
}
