// Package searchindex compiles a built code property graph into flat,
// cache-friendly arrays purpose-built for the path finder's backwards
// traversal (paper §III-D). The generic property store (package graphdb)
// optimizes for construction and ad-hoc queries: every relationship read
// deep-clones a property map, every neighbourhood expansion takes a read
// lock and allocates a slice, and every Polluted_Position access repeats
// an any→[]int assertion. None of that is needed once the graph is
// frozen — the traversal's working set is three columns and two adjacency
// lists — so this package renumbers the nodes densely (store ID → int32),
// lays the incoming-CALL and bidirectional-ALIAS adjacency out in CSR
// form, interns every Polluted_Position and Trigger_Condition array once
// into one shared flat int buffer, and exposes IS_SOURCE/IS_SINK as
// bitsets with NAME/SINK_TYPE as parallel string columns. The result is a
// read-only artifact the search walks lock-free and allocation-free.
//
// The same compilation pass also lays out the query-side view the
// Cypher-lite planner (package cypher) scans: one bitset per node label,
// presence bitsets for the NAME/SINK_TYPE columns (a node can carry the
// property with a non-string value, which the planner must distinguish
// from "absent"), and per-relationship-type adjacency in both directions
// with each row sorted ascending and deduplicated — exactly the
// neighbour order the tree-walking interpreter's expansion produces.
//
// Compilation is one-shot and cached on the store itself (For): the
// engine warms it right after CPG construction, loaded snapshots compile
// it on first search, and the snapshot server reuses it across requests.
// The cache invalidates automatically through graphdb's mutation version,
// so indexes never serve stale topology.
package searchindex

import (
	"encoding/binary"
	"sort"
	"sync/atomic"

	"tabby/internal/cpg"
	"tabby/internal/graphdb"
	"tabby/internal/sortutil"
)

// builds counts index compilations process-wide; tests assert cache
// reuse through it, and the Cypher-lite tabby.indexStats() procedure
// reports it.
var builds atomic.Int64

// Builds returns how many indexes this process has compiled.
func Builds() int64 { return builds.Load() }

// Index is the compiled search view of one graph. All slices are
// immutable after Compile; the zero node index is valid (indexes are
// dense, 0..NumNodes-1, in ascending store-ID order).
type Index struct {
	db      *graphdb.DB
	version uint64

	ids   []graphdb.ID // node index -> store ID (ascending)
	idxOf []int32      // store ID -> node index; -1 for rel IDs / unknown

	// String columns are int32 refs into strs (ref 0 is always ""), so
	// the whole index — strings included — is a handful of flat arrays
	// that serialize to (and deserialize zero-copy from) the snapshot's
	// CSR section. Absent columns read ref 0 ("").
	strs          *StringTable
	nameRef       []int32  // NAME column
	sinkTypeRef   []int32  // SINK_TYPE column
	methodNameRef []int32  // METHOD_NAME column
	isSource      []uint64 // IS_SOURCE bitset
	isSink        []uint64 // IS_SINK bitset
	tcOf          []int32  // normalized TRIGGER_CONDITION pool ref; -1 when absent

	// Incoming CALL edges in CSR form: for node v, edges
	// callStart[v]..callStart[v+1] hold the caller node index and the
	// edge's POLLUTED_POSITION pool ref (-1 when the edge carries none),
	// in the store's adjacency order — the exact order the generic
	// traversal expands them.
	callStart []int32
	callFrom  []int32
	callPP    []int32

	// Bidirectional ALIAS edges in CSR form: for node v, the alias
	// neighbour of each attached ALIAS relationship, outgoing edges first
	// then incoming — the order DB.Rels(v, DirBoth, ALIAS) produces.
	aliasStart []int32
	aliasTo    []int32

	pool IntPool // interned PP and TC arrays, one shared flat buffer

	// Query-side view (Cypher-lite planner): label bitsets, column
	// presence bitsets, and per-type sorted-unique adjacency.
	labelBits     map[string][]uint64
	hasName       []uint64 // NAME present and string-typed
	hasSinkType   []uint64 // SINK_TYPE present and string-typed
	hasMethodName []uint64 // METHOD_NAME present and string-typed
	adj           map[string]*typeAdj
	relTypes      []string // sorted keys of adj

	// dispatchIn marks nodes with at least one incoming DISPATCH edge —
	// the serialization pass's derived entry points. Derived from adj
	// (never serialized), so the compile path and the zero-copy snapshot
	// view share it; nil when the graph has no DISPATCH edges.
	dispatchIn []uint64
}

// typeAdj is one relationship type's adjacency: for node v, rows
// outStart[v]..outStart[v+1] and inStart[v]..inStart[v+1] hold the
// out-/in-neighbour node indexes, sorted ascending with duplicates
// (parallel edges) collapsed. A self-loop appears in both rows.
type typeAdj struct {
	outStart []int32
	out      []int32
	inStart  []int32
	in       []int32
}

// Compile builds the index for db in one pass under the store's read
// lock. Prefer For, which caches the result on the store.
func Compile(db *graphdb.DB) *Index {
	ix := &Index{db: db}
	db.ReadRaw(func(v graphdb.RawView) { ix.build(v) })
	builds.Add(1)
	return ix
}

// For returns the compiled index for db, building it on first use and
// reusing the cached copy until the store mutates (graphdb.DB.View).
func For(db *graphdb.DB) *Index {
	return db.View(func() any { return Compile(db) }).(*Index)
}

func (ix *Index) build(v graphdb.RawView) {
	ix.version = v.Version()
	ix.ids = v.NodeIDs()
	n := len(ix.ids)

	ix.idxOf = make([]int32, v.MaxID()+1)
	for i := range ix.idxOf {
		ix.idxOf[i] = -1
	}
	for i, id := range ix.ids {
		ix.idxOf[id] = int32(i)
	}

	words := (n + 63) / 64
	ix.strs = NewStringTable()
	ix.nameRef = make([]int32, n)
	ix.sinkTypeRef = make([]int32, n)
	ix.methodNameRef = make([]int32, n)
	ix.isSource = make([]uint64, words)
	ix.isSink = make([]uint64, words)
	ix.hasName = make([]uint64, words)
	ix.hasSinkType = make([]uint64, words)
	ix.hasMethodName = make([]uint64, words)
	ix.labelBits = make(map[string][]uint64)
	ix.tcOf = make([]int32, n)

	var scratch []int32
	for i, id := range ix.ids {
		nd := v.Node(id)
		for _, l := range nd.Labels {
			bs := ix.labelBits[l]
			if bs == nil {
				bs = make([]uint64, words)
				ix.labelBits[l] = bs
			}
			bs[i>>6] |= 1 << (uint(i) & 63)
		}
		if s, ok := nd.Props[cpg.PropName].(string); ok {
			ix.nameRef[i] = ix.strs.Intern(s)
			ix.hasName[i>>6] |= 1 << (uint(i) & 63)
		}
		if s, ok := nd.Props[cpg.PropSinkType].(string); ok {
			ix.sinkTypeRef[i] = ix.strs.Intern(s)
			ix.hasSinkType[i>>6] |= 1 << (uint(i) & 63)
		}
		if s, ok := nd.Props[cpg.PropMethodName].(string); ok {
			ix.methodNameRef[i] = ix.strs.Intern(s)
			ix.hasMethodName[i>>6] |= 1 << (uint(i) & 63)
		}
		if b, ok := nd.Props[cpg.PropIsSource].(bool); ok && b {
			ix.isSource[i>>6] |= 1 << (uint(i) & 63)
		}
		if b, ok := nd.Props[cpg.PropIsSink].(bool); ok && b {
			ix.isSink[i>>6] |= 1 << (uint(i) & 63)
		}
		ix.tcOf[i] = -1
		if tc, ok := nd.Props[cpg.PropTriggerCondition].([]int); ok {
			scratch = appendNormalized(scratch[:0], tc)
			ix.tcOf[i] = ix.pool.Intern(scratch)
		}
	}

	// Pass 1: exact CSR sizes (append-free fill keeps the arrays dense).
	ix.callStart = make([]int32, n+1)
	ix.aliasStart = make([]int32, n+1)
	for i, id := range ix.ids {
		for _, rid := range v.RelIDs(id, graphdb.DirIn) {
			switch v.Rel(rid).Type {
			case cpg.RelCall:
				ix.callStart[i+1]++
			case cpg.RelAlias:
				ix.aliasStart[i+1]++
			}
		}
		for _, rid := range v.RelIDs(id, graphdb.DirOut) {
			if v.Rel(rid).Type == cpg.RelAlias {
				ix.aliasStart[i+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		ix.callStart[i+1] += ix.callStart[i]
		ix.aliasStart[i+1] += ix.aliasStart[i]
	}
	ix.callFrom = make([]int32, ix.callStart[n])
	ix.callPP = make([]int32, ix.callStart[n])
	ix.aliasTo = make([]int32, ix.aliasStart[n])

	// Pass 2: fill, preserving the generic traversal's expansion order —
	// incoming CALL rels in adjacency order; ALIAS rels outgoing first
	// then incoming (DirBoth order), with the neighbour resolved exactly
	// as Rel.Other does (self-loops map to the node itself).
	for i, id := range ix.ids {
		c := ix.callStart[i]
		a := ix.aliasStart[i]
		for _, rid := range v.RelIDs(id, graphdb.DirOut) {
			r := v.Rel(rid)
			if r.Type == cpg.RelAlias {
				ix.aliasTo[a] = ix.idxOf[r.End]
				a++
			}
		}
		for _, rid := range v.RelIDs(id, graphdb.DirIn) {
			r := v.Rel(rid)
			switch r.Type {
			case cpg.RelCall:
				ix.callFrom[c] = ix.idxOf[r.Start]
				ppRef := int32(-1)
				if pp, ok := r.Props[cpg.PropPollutedPosition].([]int); ok {
					scratch = appendInt32(scratch[:0], pp)
					ppRef = ix.pool.Intern(scratch)
				}
				ix.callPP[c] = ppRef
				c++
			case cpg.RelAlias:
				other := r.Start
				if other == id { // self-loop: Other() yields the node itself
					other = r.End
				}
				ix.aliasTo[a] = ix.idxOf[other]
				a++
			}
		}
	}

	ix.buildQueryAdjacency(v, n)
	ix.deriveDispatchBits()

	// Intern label and relationship-type names now so serializing the
	// index (AppendLayout) never mutates the shared string table — a
	// snapshot save may run while concurrent searches resolve refs.
	for _, l := range sortutil.SortedKeys(ix.labelBits) {
		ix.strs.Intern(l)
	}
	for _, t := range ix.relTypes {
		ix.strs.Intern(t)
	}
}

// buildQueryAdjacency lays out per-type sorted-unique adjacency for the
// query planner: count, prefix-sum, fill (rows land in node order, so a
// single monotone cursor per type suffices), then sort + dedup each row
// with in-place compaction.
func (ix *Index) buildQueryAdjacency(v graphdb.RawView, n int) {
	ix.adj = make(map[string]*typeAdj)
	ensure := func(t string) *typeAdj {
		a := ix.adj[t]
		if a == nil {
			a = &typeAdj{outStart: make([]int32, n+1), inStart: make([]int32, n+1)}
			ix.adj[t] = a
		}
		return a
	}
	for i, id := range ix.ids {
		for _, rid := range v.RelIDs(id, graphdb.DirOut) {
			ensure(v.Rel(rid).Type).outStart[i+1]++
		}
		for _, rid := range v.RelIDs(id, graphdb.DirIn) {
			ensure(v.Rel(rid).Type).inStart[i+1]++
		}
	}
	for _, a := range ix.adj {
		for i := 0; i < n; i++ {
			a.outStart[i+1] += a.outStart[i]
			a.inStart[i+1] += a.inStart[i]
		}
		a.out = make([]int32, a.outStart[n])
		a.in = make([]int32, a.inStart[n])
	}
	cursors := make(map[string]*[2]int32, len(ix.adj))
	for t := range ix.adj {
		cursors[t] = &[2]int32{}
	}
	for _, id := range ix.ids {
		for _, rid := range v.RelIDs(id, graphdb.DirOut) {
			r := v.Rel(rid)
			a, c := ix.adj[r.Type], cursors[r.Type]
			a.out[c[0]] = ix.idxOf[r.End]
			c[0]++
		}
		for _, rid := range v.RelIDs(id, graphdb.DirIn) {
			r := v.Rel(rid)
			a, c := ix.adj[r.Type], cursors[r.Type]
			a.in[c[1]] = ix.idxOf[r.Start]
			c[1]++
		}
	}
	for _, t := range sortutil.SortedKeys(ix.adj) {
		a := ix.adj[t]
		a.out = compactRows(a.outStart, a.out, n)
		a.in = compactRows(a.inStart, a.in, n)
		ix.relTypes = append(ix.relTypes, t)
	}
}

// compactRows sorts each CSR row ascending, drops duplicates, and
// compacts the data array in place, rewriting start offsets.
func compactRows(start, data []int32, n int) []int32 {
	w := int32(0)
	for i := 0; i < n; i++ {
		lo, hi := start[i], start[i+1]
		start[i] = w
		row := data[lo:hi]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		for k := lo; k < hi; k++ {
			if k > lo && data[k] == data[k-1] {
				continue
			}
			data[w] = data[k]
			w++
		}
	}
	start[n] = w
	return data[:w]
}

// DB returns the store the index was compiled from (the SourceFilter
// callback contract passes it through).
func (ix *Index) DB() *graphdb.DB { return ix.db }

// Version returns the store version the index was compiled at.
func (ix *Index) Version() uint64 { return ix.version }

// NumNodes returns the node count (valid node indexes are 0..NumNodes-1).
func (ix *Index) NumNodes() int { return len(ix.ids) }

// IDOf maps a node index back to its store ID.
func (ix *Index) IDOf(v int32) graphdb.ID { return ix.ids[v] }

// IdxOf maps a store ID to its node index (-1 when the ID is not a node).
func (ix *Index) IdxOf(id graphdb.ID) int32 {
	if id < 0 || int64(id) >= int64(len(ix.idxOf)) {
		return -1
	}
	return ix.idxOf[id]
}

// Name returns the node's NAME column ("" when the property is absent).
func (ix *Index) Name(v int32) string { return ix.strs.At(ix.nameRef[v]) }

// SinkType returns the node's SINK_TYPE column ("" when absent).
func (ix *Index) SinkType(v int32) string { return ix.strs.At(ix.sinkTypeRef[v]) }

// MethodName returns the node's METHOD_NAME column ("" when absent).
func (ix *Index) MethodName(v int32) string { return ix.strs.At(ix.methodNameRef[v]) }

// IsSource reports the node's IS_SOURCE bit.
func (ix *Index) IsSource(v int32) bool {
	return ix.isSource[v>>6]&(1<<(uint(v)&63)) != 0
}

// IsSink reports the node's IS_SINK bit.
func (ix *Index) IsSink(v int32) bool {
	return ix.isSink[v>>6]&(1<<(uint(v)&63)) != 0
}

// IsDispatchTarget reports whether the node has an incoming DISPATCH
// edge — a deserialization entry point derived by the serialization
// pass. Always false on graphs built without the pass.
func (ix *Index) IsDispatchTarget(v int32) bool {
	if ix.dispatchIn == nil {
		return false
	}
	return ix.dispatchIn[v>>6]&(1<<(uint(v)&63)) != 0
}

// deriveDispatchBits precomputes the dispatch-target bitset from the
// generic per-type adjacency; runs at the end of both compilation paths
// (build and FromLayout).
func (ix *Index) deriveDispatchBits() {
	a := ix.adj[cpg.RelDispatch]
	if a == nil {
		return
	}
	n := len(ix.ids)
	bits := make([]uint64, (n+63)/64)
	for v := 0; v < n; v++ {
		if a.inStart[v+1] > a.inStart[v] {
			bits[v>>6] |= 1 << (uint(v) & 63)
		}
	}
	ix.dispatchIn = bits
}

// TCRef returns the pool ref of the node's normalized TRIGGER_CONDITION,
// or -1 when the node carries none.
func (ix *Index) TCRef(v int32) int32 { return ix.tcOf[v] }

// CallRange brackets node v's incoming CALL edges: iterate e from lo to
// hi (exclusive) and read each with CallEdge.
func (ix *Index) CallRange(v int32) (lo, hi int32) {
	return ix.callStart[v], ix.callStart[v+1]
}

// CallEdge returns edge e's caller node index and the pool ref of its
// POLLUTED_POSITION array (-1 when the edge carries none).
func (ix *Index) CallEdge(e int32) (caller, ppRef int32) {
	return ix.callFrom[e], ix.callPP[e]
}

// AliasRange brackets node v's ALIAS neighbours (both directions).
func (ix *Index) AliasRange(v int32) (lo, hi int32) {
	return ix.aliasStart[v], ix.aliasStart[v+1]
}

// AliasTarget returns ALIAS slot e's neighbour node index.
func (ix *Index) AliasTarget(e int32) int32 { return ix.aliasTo[e] }

// Ints resolves a pool ref into its interned int array (aliased: callers
// must not mutate it).
func (ix *Index) Ints(ref int32) []int32 { return ix.pool.Get(ref) }

// --- query-side accessors (Cypher-lite planner) --------------------------

// LabelBits returns the bitset of nodes carrying the label, or nil when
// no node does. The slice aliases index internals: do not mutate.
func (ix *Index) LabelBits(label string) []uint64 { return ix.labelBits[label] }

// SourceBits returns the IS_SOURCE bitset (aliased, do not mutate).
func (ix *Index) SourceBits() []uint64 { return ix.isSource }

// SinkBits returns the IS_SINK bitset (aliased, do not mutate).
func (ix *Index) SinkBits() []uint64 { return ix.isSink }

// HasName reports whether the node carries a string-typed NAME property.
// A node with NAME absent — or present with a non-string value — reads
// "" from the Name column; this bit tells the two apart.
func (ix *Index) HasName(v int32) bool {
	return ix.hasName[v>>6]&(1<<(uint(v)&63)) != 0
}

// HasSinkType reports whether the node carries a string-typed SINK_TYPE.
func (ix *Index) HasSinkType(v int32) bool {
	return ix.hasSinkType[v>>6]&(1<<(uint(v)&63)) != 0
}

// HasMethodName reports whether the node carries a string-typed
// METHOD_NAME.
func (ix *Index) HasMethodName(v int32) bool {
	return ix.hasMethodName[v>>6]&(1<<(uint(v)&63)) != 0
}

// RelTypes returns the relationship types present in the graph, sorted
// ascending (aliased, do not mutate).
func (ix *Index) RelTypes() []string { return ix.relTypes }

// OutNeighbors returns node v's distinct out-neighbours over typ, sorted
// ascending — the interpreter's single-hop expansion order. Nil when the
// node has none or the type is absent from the graph. Aliased: do not
// mutate.
func (ix *Index) OutNeighbors(typ string, v int32) []int32 {
	a := ix.adj[typ]
	if a == nil {
		return nil
	}
	return a.out[a.outStart[v]:a.outStart[v+1]]
}

// InNeighbors is OutNeighbors for incoming relationships.
func (ix *Index) InNeighbors(typ string, v int32) []int32 {
	a := ix.adj[typ]
	if a == nil {
		return nil
	}
	return a.in[a.inStart[v]:a.inStart[v+1]]
}

// Stats summarizes the compiled layout (reported by the Cypher-lite
// tabby.indexStats() procedure and used in tests).
type Stats struct {
	Nodes          int
	CallEdges      int
	AliasSlots     int // each ALIAS rel occupies one slot at each endpoint
	InternedArrays int // distinct PP/TC arrays in the shared pool
	IntPoolLen     int // total ints in the shared flat buffer
	Version        uint64
}

// Stats returns the layout summary.
func (ix *Index) Stats() Stats {
	return Stats{
		Nodes:          len(ix.ids),
		CallEdges:      len(ix.callFrom),
		AliasSlots:     len(ix.aliasTo),
		InternedArrays: ix.pool.Count(),
		IntPoolLen:     len(ix.pool.buf),
		Version:        ix.version,
	}
}

// IntPool interns small int arrays (Polluted_Position decodings,
// Trigger_Conditions) into one shared flat buffer: each distinct array is
// stored once and addressed by a dense ref. Interning the candidate in a
// reusable scratch slice makes the lookup allocation-free on hits (the
// map probe with string(keyBuf) does not escape), so the path finder can
// intern every derived TC on the hot path.
type IntPool struct {
	off    []int32
	length []int32
	buf    []int32
	lookup map[string]int32
	keyBuf []byte
}

// Intern returns the ref of vals, adding it to the pool when new. The
// input is copied; callers may reuse it.
func (p *IntPool) Intern(vals []int32) int32 {
	p.keyBuf = p.keyBuf[:0]
	for _, v := range vals {
		p.keyBuf = binary.LittleEndian.AppendUint32(p.keyBuf, uint32(v))
	}
	if ref, ok := p.lookup[string(p.keyBuf)]; ok {
		return ref
	}
	ref := int32(len(p.off))
	p.off = append(p.off, int32(len(p.buf)))
	p.length = append(p.length, int32(len(vals)))
	p.buf = append(p.buf, vals...)
	if p.lookup == nil {
		p.lookup = make(map[string]int32)
	}
	p.lookup[string(p.keyBuf)] = ref
	return ref
}

// Get resolves a ref into its interned array (aliased, do not mutate).
func (p *IntPool) Get(ref int32) []int32 {
	o := p.off[ref]
	return p.buf[o : o+p.length[ref] : o+p.length[ref]]
}

// Count returns how many distinct arrays the pool holds.
func (p *IntPool) Count() int { return len(p.off) }

// appendInt32 appends vals to dst converted to int32.
func appendInt32(dst []int32, vals []int) []int32 {
	for _, v := range vals {
		dst = append(dst, int32(v))
	}
	return dst
}

// appendNormalized appends vals to dst sorted ascending with duplicates
// dropped (the Trigger_Condition normal form). Inputs are tiny (call
// positions), so insertion into the sorted prefix beats a sort call.
func appendNormalized(dst []int32, vals []int) []int32 {
	base := len(dst)
	for _, v := range vals {
		dst = insertSortedUnique(dst, base, int32(v))
	}
	return dst
}

// insertSortedUnique inserts v into the ascending run dst[base:],
// dropping duplicates.
func insertSortedUnique(dst []int32, base int, v int32) []int32 {
	i := len(dst)
	for i > base && dst[i-1] > v {
		i--
	}
	if i > base && dst[i-1] == v {
		return dst
	}
	dst = append(dst, 0)
	copy(dst[i+1:], dst[i:])
	dst[i] = v
	return dst
}
