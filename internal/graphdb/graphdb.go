// Package graphdb is an embedded, in-process property-graph database — the
// reproduction's substitute for Neo4j (paper §II-B). It stores labeled
// nodes and typed, directed relationships, both carrying property maps,
// with label and property indexes and constant-time neighbourhood
// expansion. Package cypher layers a query language on top; package
// pathfinder implements the tabby-path-finder traversal plugin against it.
//
// The store is safe for concurrent use.
package graphdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ID identifies a node or relationship within one DB.
type ID int64

// Dir selects a traversal direction relative to a node.
type Dir int

// Traversal directions.
const (
	DirOut Dir = iota + 1 // relationships starting at the node
	DirIn                 // relationships ending at the node
	DirBoth
)

// Props is a property map. Values are restricted to the JSON-ish scalar
// set plus []int (used for Polluted_Position and Trigger_Condition
// arrays); keeping the set small keeps comparisons well defined.
type Props map[string]any

// clone returns a shallow copy (slice values are copied too).
func (p Props) clone() Props {
	if p == nil {
		return nil
	}
	out := make(Props, len(p))
	for k, v := range p {
		if ints, ok := v.([]int); ok {
			cp := make([]int, len(ints))
			copy(cp, ints)
			out[k] = cp
			continue
		}
		out[k] = v
	}
	return out
}

// Node is a labeled node. The struct returned by accessor methods is a
// snapshot; mutate through the DB API only.
type Node struct {
	ID     ID
	Labels []string
	Props  Props
}

// HasLabel reports whether the node carries the label.
func (n *Node) HasLabel(label string) bool {
	for _, l := range n.Labels {
		if l == label {
			return true
		}
	}
	return false
}

// Rel is a directed, typed relationship.
type Rel struct {
	ID    ID
	Type  string
	Start ID
	End   ID
	Props Props
}

// Other returns the endpoint of the relationship that is not node.
func (r *Rel) Other(node ID) ID {
	if r.Start == node {
		return r.End
	}
	return r.Start
}

// DB is the graph store.
type DB struct {
	mu      sync.RWMutex
	frozen  bool
	nextID  ID
	version uint64 // bumped by every content mutation; see Version
	nodes   map[ID]*Node
	rels    map[ID]*Rel
	out     map[ID][]ID // node -> outgoing rel IDs
	in      map[ID][]ID // node -> incoming rel IDs
	byLabel map[string][]ID
	// propIndex[label][property][value-key] -> node IDs
	propIndex map[string]map[string]map[string][]ID

	// Compiled-view cache (see View). Guarded by viewMu, never by mu, so
	// a build callback may freely read the store.
	viewMu      sync.Mutex
	view        any
	viewVersion uint64
	viewValid   bool
}

// New creates an empty database.
func New() *DB {
	return &DB{
		nodes:     make(map[ID]*Node),
		rels:      make(map[ID]*Rel),
		out:       make(map[ID][]ID),
		in:        make(map[ID][]ID),
		byLabel:   make(map[string][]ID),
		propIndex: make(map[string]map[string]map[string][]ID),
	}
}

// valueKey renders a property value into an indexable string key. The
// encoding is pinned to what fmt.Sprintf("%T:%v", v, v) produced when the
// index format was introduced — TestValueKeyMatchesLegacyEncoding holds the
// two equivalent — but the common cases are type-switched so the hot CPG
// build path (every indexed node insert and every FindNodes lookup) avoids
// reflection and interface formatting. The leading type name keeps keys
// collision-free across types (int 1 vs string "1" vs bool-ish values).
func valueKey(v any) string {
	switch t := v.(type) {
	case bool:
		if t {
			return "bool:true"
		}
		return "bool:false"
	case int:
		return "int:" + strconv.Itoa(t)
	case string:
		return "string:" + t
	case float64:
		return "float64:" + strconv.FormatFloat(t, 'g', -1, 64)
	case []int:
		var sb strings.Builder
		sb.Grow(8 + 12*len(t))
		sb.WriteString("[]int:[")
		for i, n := range t {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(strconv.Itoa(n))
		}
		sb.WriteByte(']')
		return sb.String()
	default:
		return fmt.Sprintf("%T:%v", v, v)
	}
}

// CreateNode adds a node with the given labels and properties and returns
// its ID.
func (db *DB) CreateNode(labels []string, props Props) ID {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mustMutateLocked("CreateNode")
	db.version++
	db.nextID++
	id := db.nextID
	n := &Node{ID: id, Labels: append([]string(nil), labels...), Props: props.clone()}
	db.nodes[id] = n
	for _, l := range n.Labels {
		db.byLabel[l] = append(db.byLabel[l], id)
		if byProp, ok := db.propIndex[l]; ok {
			for prop, byVal := range byProp {
				if v, ok := n.Props[prop]; ok {
					k := valueKey(v)
					byVal[k] = append(byVal[k], id)
				}
			}
		}
	}
	return id
}

// CreateRel adds a relationship of the given type from start to end.
func (db *DB) CreateRel(relType string, start, end ID, props Props) (ID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mustMutateLocked("CreateRel")
	if _, ok := db.nodes[start]; !ok {
		return 0, fmt.Errorf("graphdb: create rel %s: unknown start node %d", relType, start)
	}
	if _, ok := db.nodes[end]; !ok {
		return 0, fmt.Errorf("graphdb: create rel %s: unknown end node %d", relType, end)
	}
	db.version++
	db.nextID++
	id := db.nextID
	db.rels[id] = &Rel{ID: id, Type: relType, Start: start, End: end, Props: props.clone()}
	db.out[start] = append(db.out[start], id)
	db.in[end] = append(db.in[end], id)
	return id, nil
}

// Node returns a snapshot of the node, or nil when unknown.
func (db *DB) Node(id ID) *Node {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := db.nodes[id]
	if n == nil {
		return nil
	}
	return &Node{ID: n.ID, Labels: append([]string(nil), n.Labels...), Props: n.Props.clone()}
}

// Rel returns a snapshot of the relationship, or nil when unknown.
func (db *DB) Rel(id ID) *Rel {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r := db.rels[id]
	if r == nil {
		return nil
	}
	return &Rel{ID: r.ID, Type: r.Type, Start: r.Start, End: r.End, Props: r.Props.clone()}
}

// NodeProp returns one property of a node without copying the whole node.
func (db *DB) NodeProp(id ID, key string) (any, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := db.nodes[id]
	if n == nil {
		return nil, false
	}
	v, ok := n.Props[key]
	return v, ok
}

// RelProp returns one property of a relationship.
func (db *DB) RelProp(id ID, key string) (any, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r := db.rels[id]
	if r == nil {
		return nil, false
	}
	v, ok := r.Props[key]
	return v, ok
}

// SetNodeProp sets a property on a node, maintaining any index.
func (db *DB) SetNodeProp(id ID, key string, value any) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.setNodePropLocked(id, key, value)
}

func removeID(ids []ID, id ID) []ID {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// DeleteRel removes a relationship. Incremental CPG updates use this to
// retire the CALL edges of a re-analyzed caller before re-creating them.
func (db *DB) DeleteRel(id ID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.deleteRelLocked(id)
}

func (db *DB) deleteRelLocked(id ID) error {
	db.mustMutateLocked("DeleteRel")
	r := db.rels[id]
	if r == nil {
		return fmt.Errorf("graphdb: delete unknown rel %d", id)
	}
	db.version++
	delete(db.rels, id)
	db.out[r.Start] = removeID(db.out[r.Start], id)
	db.in[r.End] = removeID(db.in[r.End], id)
	return nil
}

// DeleteNode removes a node, its label membership, and its index entries.
// It refuses to orphan relationships: the caller must delete (or re-point)
// every attached relationship first.
func (db *DB) DeleteNode(id ID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.deleteNodeLocked(id)
}

func (db *DB) deleteNodeLocked(id ID) error {
	db.mustMutateLocked("DeleteNode")
	n := db.nodes[id]
	if n == nil {
		return fmt.Errorf("graphdb: delete unknown node %d", id)
	}
	if len(db.out[id]) > 0 || len(db.in[id]) > 0 {
		return fmt.Errorf("graphdb: delete node %d: %d relationships still attached",
			id, len(db.out[id])+len(db.in[id]))
	}
	db.version++
	delete(db.nodes, id)
	delete(db.out, id)
	delete(db.in, id)
	for _, l := range n.Labels {
		db.byLabel[l] = removeID(db.byLabel[l], id)
		if byProp, ok := db.propIndex[l]; ok {
			for prop, byVal := range byProp {
				if v, ok := n.Props[prop]; ok {
					k := valueKey(v)
					byVal[k] = removeID(byVal[k], id)
				}
			}
		}
	}
	return nil
}

func (db *DB) setNodePropLocked(id ID, key string, value any) error {
	db.mustMutateLocked("SetNodeProp")
	n := db.nodes[id]
	if n == nil {
		return fmt.Errorf("graphdb: set prop on unknown node %d", id)
	}
	db.version++
	old, had := n.Props[key]
	if n.Props == nil {
		n.Props = make(Props)
	}
	n.Props[key] = value
	for _, l := range n.Labels {
		byProp, ok := db.propIndex[l]
		if !ok {
			continue
		}
		byVal, ok := byProp[key]
		if !ok {
			continue
		}
		if had {
			byVal[valueKey(old)] = removeID(byVal[valueKey(old)], id)
		}
		k := valueKey(value)
		byVal[k] = append(byVal[k], id)
	}
	return nil
}

// CreateIndex builds (or rebuilds) an index on label/property.
func (db *DB) CreateIndex(label, prop string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mustMutateLocked("CreateIndex")
	db.version++
	byProp, ok := db.propIndex[label]
	if !ok {
		byProp = make(map[string]map[string][]ID)
		db.propIndex[label] = byProp
	}
	byVal := make(map[string][]ID)
	byProp[prop] = byVal
	for _, id := range db.byLabel[label] {
		if v, ok := db.nodes[id].Props[prop]; ok {
			k := valueKey(v)
			byVal[k] = append(byVal[k], id)
		}
	}
}

// NodesByLabel returns the IDs of all nodes carrying the label, in
// creation order.
func (db *DB) NodesByLabel(label string) []ID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]ID(nil), db.byLabel[label]...)
}

// FindNodes returns nodes with the label whose property equals value,
// using the index when present and scanning otherwise.
func (db *DB) FindNodes(label, prop string, value any) []ID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if byProp, ok := db.propIndex[label]; ok {
		if byVal, ok := byProp[prop]; ok {
			return append([]ID(nil), byVal[valueKey(value)]...)
		}
	}
	var out []ID
	k := valueKey(value)
	for _, id := range db.byLabel[label] {
		if v, ok := db.nodes[id].Props[prop]; ok && valueKey(v) == k {
			out = append(out, id)
		}
	}
	return out
}

// FindNode returns the single node with label/prop=value, erroring when
// absent or ambiguous.
func (db *DB) FindNode(label, prop string, value any) (ID, error) {
	ids := db.FindNodes(label, prop, value)
	switch len(ids) {
	case 0:
		return 0, fmt.Errorf("graphdb: no %s node with %s=%v", label, prop, value)
	case 1:
		return ids[0], nil
	default:
		return 0, fmt.Errorf("graphdb: %d %s nodes with %s=%v", len(ids), label, prop, value)
	}
}

// Rels returns relationship IDs attached to the node in the given
// direction, optionally filtered by type (empty types = all).
func (db *DB) Rels(node ID, dir Dir, types ...string) []ID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var src []ID
	switch dir {
	case DirOut:
		src = db.out[node]
	case DirIn:
		src = db.in[node]
	case DirBoth:
		src = append(append([]ID(nil), db.out[node]...), db.in[node]...)
	}
	if len(types) == 0 {
		return append([]ID(nil), src...)
	}
	var out []ID
	for _, rid := range src {
		r := db.rels[rid]
		for _, t := range types {
			if r.Type == t {
				out = append(out, rid)
				break
			}
		}
	}
	return out
}

// Neighbors returns the distinct nodes adjacent to node in the given
// direction over the given relationship types.
func (db *DB) Neighbors(node ID, dir Dir, types ...string) []ID {
	rels := db.Rels(node, dir, types...)
	db.mu.RLock()
	defer db.mu.RUnlock()
	seen := make(map[ID]bool, len(rels))
	var out []ID
	for _, rid := range rels {
		other := db.rels[rid].Other(node)
		if !seen[other] {
			seen[other] = true
			out = append(out, other)
		}
	}
	return out
}

// Degree returns the number of relationships attached to the node in the
// given direction and types.
func (db *DB) Degree(node ID, dir Dir, types ...string) int {
	return len(db.Rels(node, dir, types...))
}

// Stats summarizes store contents; used by the Table VIII experiment to
// report node/edge counts.
type Stats struct {
	Nodes       int
	Rels        int
	NodesByType map[string]int
	RelsByType  map[string]int
}

// Stats returns counts of nodes per label and relationships per type.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := Stats{
		Nodes:       len(db.nodes),
		Rels:        len(db.rels),
		NodesByType: make(map[string]int),
		RelsByType:  make(map[string]int),
	}
	for l, ids := range db.byLabel {
		s.NodesByType[l] = len(ids)
	}
	for _, r := range db.rels {
		s.RelsByType[r.Type]++
	}
	return s
}

// AllNodeIDs returns every node ID in ascending order.
func (db *DB) AllNodeIDs() []ID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]ID, 0, len(db.nodes))
	for id := range db.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllRelIDs returns every relationship ID in ascending order.
func (db *DB) AllRelIDs() []ID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]ID, 0, len(db.rels))
	for id := range db.rels {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
