package graphdb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The on-disk format is newline-delimited JSON: a header record, then one
// record per node, then one per relationship. It exists so cmd/tabby can
// persist a built CPG and cmd/tabby-query can re-query it later — the
// "store once, query many times" workflow the paper builds on Neo4j
// (§II-B, RQ4).

type persistHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Nodes   int    `json:"nodes"`
	Rels    int    `json:"rels"`
}

type persistNode struct {
	ID     ID             `json:"id"`
	Labels []string       `json:"labels"`
	Props  map[string]any `json:"props,omitempty"`
}

type persistRel struct {
	ID    ID             `json:"id"`
	Type  string         `json:"type"`
	Start ID             `json:"start"`
	End   ID             `json:"end"`
	Props map[string]any `json:"props,omitempty"`
}

const (
	persistFormat  = "tabby-graph"
	persistVersion = 1
)

// Save writes the whole graph to w.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(persistHeader{
		Format: persistFormat, Version: persistVersion,
		Nodes: len(db.nodes), Rels: len(db.rels),
	}); err != nil {
		return fmt.Errorf("graphdb save header: %w", err)
	}
	nodeIDs := make([]ID, 0, len(db.nodes))
	for id := range db.nodes {
		nodeIDs = append(nodeIDs, id)
	}
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })
	for _, id := range nodeIDs {
		n := db.nodes[id]
		if err := enc.Encode(persistNode{ID: n.ID, Labels: n.Labels, Props: n.Props}); err != nil {
			return fmt.Errorf("graphdb save node %d: %w", id, err)
		}
	}
	relIDs := make([]ID, 0, len(db.rels))
	for id := range db.rels {
		relIDs = append(relIDs, id)
	}
	sort.Slice(relIDs, func(i, j int) bool { return relIDs[i] < relIDs[j] })
	for _, id := range relIDs {
		r := db.rels[id]
		if err := enc.Encode(persistRel{ID: r.ID, Type: r.Type, Start: r.Start, End: r.End, Props: r.Props}); err != nil {
			return fmt.Errorf("graphdb save rel %d: %w", id, err)
		}
	}
	return bw.Flush()
}

// Load reads a graph previously written by Save. Node and relationship IDs
// are preserved. JSON round-trips numbers as float64 and []int as []any;
// Load normalizes both back so property comparisons behave identically
// before and after persistence.
func Load(r io.Reader) (*DB, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr persistHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("graphdb load header: %w", err)
	}
	if hdr.Format != persistFormat {
		return nil, fmt.Errorf("graphdb load: unknown format %q", hdr.Format)
	}
	if hdr.Version != persistVersion {
		return nil, fmt.Errorf("graphdb load: unsupported version %d", hdr.Version)
	}
	db := New()
	var maxID ID
	for i := 0; i < hdr.Nodes; i++ {
		var pn persistNode
		if err := dec.Decode(&pn); err != nil {
			return nil, fmt.Errorf("graphdb load node %d/%d: %w", i+1, hdr.Nodes, err)
		}
		n := &Node{ID: pn.ID, Labels: pn.Labels, Props: normalizeProps(pn.Props)}
		db.nodes[pn.ID] = n
		for _, l := range n.Labels {
			db.byLabel[l] = append(db.byLabel[l], pn.ID)
		}
		if pn.ID > maxID {
			maxID = pn.ID
		}
	}
	for i := 0; i < hdr.Rels; i++ {
		var pr persistRel
		if err := dec.Decode(&pr); err != nil {
			return nil, fmt.Errorf("graphdb load rel %d/%d: %w", i+1, hdr.Rels, err)
		}
		if _, ok := db.nodes[pr.Start]; !ok {
			return nil, fmt.Errorf("graphdb load rel %d: unknown start %d", pr.ID, pr.Start)
		}
		if _, ok := db.nodes[pr.End]; !ok {
			return nil, fmt.Errorf("graphdb load rel %d: unknown end %d", pr.ID, pr.End)
		}
		db.rels[pr.ID] = &Rel{ID: pr.ID, Type: pr.Type, Start: pr.Start, End: pr.End, Props: normalizeProps(pr.Props)}
		db.out[pr.Start] = append(db.out[pr.Start], pr.ID)
		db.in[pr.End] = append(db.in[pr.End], pr.ID)
		if pr.ID > maxID {
			maxID = pr.ID
		}
	}
	db.nextID = maxID
	return db, nil
}

// normalizeProps converts JSON-decoded values into the store's canonical
// scalar set: float64 whole numbers become int, []any of whole numbers
// becomes []int.
func normalizeProps(raw map[string]any) Props {
	if raw == nil {
		return nil
	}
	out := make(Props, len(raw))
	for k, v := range raw {
		out[k] = normalizeValue(v)
	}
	return out
}

func normalizeValue(v any) any {
	switch t := v.(type) {
	case float64:
		if t == float64(int(t)) {
			return int(t)
		}
		return t
	case []any:
		ints := make([]int, 0, len(t))
		for _, e := range t {
			f, ok := e.(float64)
			if !ok || f != float64(int(f)) {
				return t // heterogeneous list: keep as-is
			}
			ints = append(ints, int(f))
		}
		return ints
	default:
		return v
	}
}
