package graphdb

import (
	"fmt"
	"math"
	"testing"
)

// legacyValueKey is the encoder valueKey replaced; the type-switched
// version must stay byte-identical for every property type the CPG uses,
// or persisted index expectations (and FindNodes results on mixed-age
// code) would silently diverge.
func legacyValueKey(v any) string { return fmt.Sprintf("%T:%v", v, v) }

func TestValueKeyMatchesLegacyEncoding(t *testing.T) {
	values := []any{
		// bools (IS_SINK, IS_SOURCE, IS_STATIC, …)
		true, false,
		// ints (PARAM_COUNT, STMT_INDEX, …)
		0, 1, -1, 42, -37, math.MaxInt, math.MinInt,
		// strings (NAME, CLASS, SINK_TYPE, …)
		"", "exec", "java.lang.Runtime#exec", "with space", "uniçode", "1", "[1 2]",
		// float64 (none today, but in the supported scalar set)
		0.0, 1.5, -2.25, 0.1, 1e21, -1e-7, math.Pi, float64(7),
		// []int (POLLUTED_POSITION, TRIGGER_CONDITION)
		[]int{}, []int{0}, []int{1, 2, 3}, []int{-1, -1}, []int{0, 0}, []int{5, -3},
		// fallback path: a type outside the switch still matches fmt
		int64(9), uint(3), 3.5e2,
	}
	for _, v := range values {
		got, want := valueKey(v), legacyValueKey(v)
		if got != want {
			t.Errorf("valueKey(%#v) = %q, want legacy %q", v, got, want)
		}
	}
}

func TestValueKeyCollisionFree(t *testing.T) {
	// Distinct values across the supported set must produce distinct keys;
	// a collision would merge property-index buckets.
	values := []any{
		true, false, 0, 1, -1, "", "1", "true", "[1 2]", 1.0, 0.5,
		[]int{}, []int{1}, []int{1, 2}, []int{12}, "int:1",
	}
	seen := make(map[string]any, len(values))
	for _, v := range values {
		k := valueKey(v)
		if prev, dup := seen[k]; dup {
			t.Errorf("valueKey collision: %#v and %#v both encode to %q", prev, v, k)
		}
		seen[k] = v
	}
}
