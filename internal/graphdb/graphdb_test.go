package graphdb

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestCreateAndFetch(t *testing.T) {
	db := New()
	id := db.CreateNode([]string{"Method"}, Props{"NAME": "a#m()", "PARAMS": 2})
	n := db.Node(id)
	if n == nil || !n.HasLabel("Method") || n.Props["NAME"] != "a#m()" {
		t.Fatalf("node round trip failed: %+v", n)
	}
	if n.HasLabel("Class") {
		t.Error("HasLabel false positive")
	}
	if db.Node(999) != nil {
		t.Error("unknown node must be nil")
	}
	// Snapshot isolation: mutating the returned props must not affect the
	// store.
	n.Props["NAME"] = "tampered"
	if got := db.Node(id).Props["NAME"]; got != "a#m()" {
		t.Errorf("store mutated through snapshot: %v", got)
	}
}

func TestCreateRelValidation(t *testing.T) {
	db := New()
	a := db.CreateNode([]string{"N"}, nil)
	if _, err := db.CreateRel("CALL", a, 42, nil); err == nil {
		t.Error("rel to unknown node must fail")
	}
	if _, err := db.CreateRel("CALL", 42, a, nil); err == nil {
		t.Error("rel from unknown node must fail")
	}
	b := db.CreateNode([]string{"N"}, nil)
	rid, err := db.CreateRel("CALL", a, b, Props{"PP": []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	r := db.Rel(rid)
	if r.Start != a || r.End != b || r.Type != "CALL" {
		t.Fatalf("rel round trip failed: %+v", r)
	}
	if got := r.Props["PP"].([]int); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("PP = %v", got)
	}
	if r.Other(a) != b || r.Other(b) != a {
		t.Error("Other misbehaves")
	}
}

func TestAdjacency(t *testing.T) {
	db := New()
	a := db.CreateNode([]string{"M"}, nil)
	b := db.CreateNode([]string{"M"}, nil)
	c := db.CreateNode([]string{"M"}, nil)
	mustRel(t, db, "CALL", a, b)
	mustRel(t, db, "CALL", c, b)
	mustRel(t, db, "ALIAS", b, c)

	if got := db.Neighbors(b, DirIn, "CALL"); len(got) != 2 {
		t.Errorf("Neighbors(b, in, CALL) = %v", got)
	}
	if got := db.Neighbors(b, DirOut, "ALIAS"); len(got) != 1 || got[0] != c {
		t.Errorf("Neighbors(b, out, ALIAS) = %v", got)
	}
	if got := db.Neighbors(b, DirBoth); len(got) != 2 { // a and c (c deduped)
		t.Errorf("Neighbors(b, both) = %v", got)
	}
	if db.Degree(b, DirIn, "CALL") != 2 || db.Degree(b, DirOut) != 1 {
		t.Error("Degree misbehaves")
	}
	if got := db.Rels(a, DirOut, "NOPE"); len(got) != 0 {
		t.Errorf("type filter failed: %v", got)
	}
}

func mustRel(t *testing.T, db *DB, typ string, from, to ID) ID {
	t.Helper()
	id, err := db.CreateRel(typ, from, to, nil)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestFindNodesIndexedAndScan(t *testing.T) {
	db := New()
	for i := 0; i < 10; i++ {
		db.CreateNode([]string{"Method"}, Props{"NAME": fmt.Sprintf("m%d", i%3)})
	}
	// Scan path.
	if got := db.FindNodes("Method", "NAME", "m1"); len(got) != 3 {
		t.Errorf("scan FindNodes = %d nodes", len(got))
	}
	// Index path must agree.
	db.CreateIndex("Method", "NAME")
	if got := db.FindNodes("Method", "NAME", "m1"); len(got) != 3 {
		t.Errorf("indexed FindNodes = %d nodes", len(got))
	}
	// Nodes created after the index exists must be indexed on create.
	db.CreateNode([]string{"Method"}, Props{"NAME": "m1"})
	if got := db.FindNodes("Method", "NAME", "m1"); len(got) != 4 {
		t.Errorf("post-index create not indexed: %d", len(got))
	}
	// SetNodeProp must maintain the index.
	id := db.FindNodes("Method", "NAME", "m2")[0]
	if err := db.SetNodeProp(id, "NAME", "renamed"); err != nil {
		t.Fatal(err)
	}
	if got := db.FindNodes("Method", "NAME", "renamed"); len(got) != 1 || got[0] != id {
		t.Errorf("index not updated on SetNodeProp: %v", got)
	}
	if got := db.FindNodes("Method", "NAME", "m2"); len(got) != 2 {
		t.Errorf("stale index entry after rename: %v", got)
	}
}

func TestFindNode(t *testing.T) {
	db := New()
	db.CreateNode([]string{"C"}, Props{"NAME": "x"})
	db.CreateNode([]string{"C"}, Props{"NAME": "dup"})
	db.CreateNode([]string{"C"}, Props{"NAME": "dup"})
	if _, err := db.FindNode("C", "NAME", "x"); err != nil {
		t.Errorf("unique lookup failed: %v", err)
	}
	if _, err := db.FindNode("C", "NAME", "dup"); err == nil {
		t.Error("ambiguous lookup must fail")
	}
	if _, err := db.FindNode("C", "NAME", "ghost"); err == nil {
		t.Error("missing lookup must fail")
	}
}

func TestStats(t *testing.T) {
	db := New()
	a := db.CreateNode([]string{"Class"}, nil)
	b := db.CreateNode([]string{"Method"}, nil)
	mustRel(t, db, "HAS", a, b)
	s := db.Stats()
	if s.Nodes != 2 || s.Rels != 1 || s.NodesByType["Class"] != 1 || s.RelsByType["HAS"] != 1 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestSetNodePropErrors(t *testing.T) {
	db := New()
	if err := db.SetNodeProp(5, "X", 1); err == nil {
		t.Error("setting prop on unknown node must fail")
	}
	id := db.CreateNode([]string{"N"}, nil)
	if err := db.SetNodeProp(id, "X", 1); err != nil {
		t.Fatal(err)
	}
	if v, ok := db.NodeProp(id, "X"); !ok || v != 1 {
		t.Errorf("NodeProp = %v/%v", v, ok)
	}
	if _, ok := db.NodeProp(id, "missing"); ok {
		t.Error("missing prop must report !ok")
	}
	if _, ok := db.NodeProp(999, "X"); ok {
		t.Error("unknown node prop must report !ok")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	db := New()
	a := db.CreateNode([]string{"Method"}, Props{"NAME": "a#m()", "IS_SINK": true, "TC": []int{0, 1}})
	b := db.CreateNode([]string{"Method", "Source"}, Props{"NAME": "b#r()"})
	rid, err := db.CreateRel("CALL", a, b, Props{"PP": []int{2, 0}, "LINE": 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := loaded.Node(a)
	if n == nil || n.Props["NAME"] != "a#m()" || n.Props["IS_SINK"] != true {
		t.Fatalf("node lost in round trip: %+v", n)
	}
	if tc, ok := n.Props["TC"].([]int); !ok || !reflect.DeepEqual(tc, []int{0, 1}) {
		t.Fatalf("TC type not normalized: %T %v", n.Props["TC"], n.Props["TC"])
	}
	r := loaded.Rel(rid)
	if r == nil || r.Type != "CALL" || r.Start != a || r.End != b {
		t.Fatalf("rel lost: %+v", r)
	}
	if pp, ok := r.Props["PP"].([]int); !ok || !reflect.DeepEqual(pp, []int{2, 0}) {
		t.Fatalf("PP not normalized: %T", r.Props["PP"])
	}
	if line, ok := r.Props["LINE"].(int); !ok || line != 7 {
		t.Fatalf("LINE not normalized to int: %T", r.Props["LINE"])
	}
	if got := loaded.Node(b); got == nil || len(got.Labels) != 2 {
		t.Fatalf("labels lost: %+v", got)
	}
	// New IDs must not collide with loaded ones.
	c := loaded.CreateNode([]string{"X"}, nil)
	if c == a || c == b || c == rid {
		t.Errorf("ID collision after load: %d", c)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage must be rejected")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"format":"other","version":1}` + "\n"))); err == nil {
		t.Error("wrong format must be rejected")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"format":"tabby-graph","version":9}` + "\n"))); err == nil {
		t.Error("wrong version must be rejected")
	}
	// Truncated stream: header promises a node that never comes.
	if _, err := Load(bytes.NewReader([]byte(`{"format":"tabby-graph","version":1,"nodes":1,"rels":0}` + "\n"))); err == nil {
		t.Error("truncated stream must be rejected")
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := New()
	seed := db.CreateNode([]string{"M"}, Props{"NAME": "seed"})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := db.CreateNode([]string{"M"}, Props{"NAME": fmt.Sprintf("w%d-%d", w, i)})
				if _, err := db.CreateRel("CALL", id, seed, nil); err != nil {
					t.Errorf("CreateRel: %v", err)
					return
				}
				db.Neighbors(seed, DirIn, "CALL")
				db.Stats()
			}
		}(w)
	}
	wg.Wait()
	if got := db.Degree(seed, DirIn, "CALL"); got != 800 {
		t.Errorf("Degree = %d, want 800", got)
	}
}

// Property test: persistence preserves node count, labels, and adjacency
// for arbitrary small graphs.
func TestPersistPropertyQuick(t *testing.T) {
	f := func(nNodes uint8, edges []uint16) bool {
		n := int(nNodes%20) + 1
		db := New()
		ids := make([]ID, n)
		for i := range ids {
			ids[i] = db.CreateNode([]string{"N"}, Props{"I": i})
		}
		for _, e := range edges {
			from := ids[int(e)%n]
			to := ids[int(e>>8)%n]
			if _, err := db.CreateRel("E", from, to, nil); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			return false
		}
		loaded, err := Load(&buf)
		if err != nil {
			return false
		}
		s1, s2 := db.Stats(), loaded.Stats()
		if s1.Nodes != s2.Nodes || s1.Rels != s2.Rels {
			return false
		}
		for _, id := range ids {
			if db.Degree(id, DirBoth) != loaded.Degree(id, DirBoth) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// failWriter fails after n bytes, for save-path error injection.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, fmt.Errorf("injected write failure")
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, fmt.Errorf("injected write failure")
	}
	return n, nil
}

func TestSaveWriteFailure(t *testing.T) {
	db := New()
	a := db.CreateNode([]string{"N"}, Props{"NAME": "a"})
	bID := db.CreateNode([]string{"N"}, Props{"NAME": "b"})
	mustRel(t, db, "E", a, bID)
	for _, budget := range []int{0, 10, 60} {
		if err := db.Save(&failWriter{left: budget}); err == nil {
			t.Errorf("Save with %d-byte budget must fail", budget)
		}
	}
}
