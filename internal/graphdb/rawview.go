package graphdb

import "sort"

// This file is the compiled-view surface of the store: ReadRaw grants
// clone-free iteration over the store's internals for one-shot index
// compilation (package searchindex builds its CSR arrays through it
// without paying Rel()'s per-edge property-map clone), Version tracks
// content mutations so compiled views can be invalidated, and View caches
// one such compiled artifact on the store itself so every consumer of the
// same DB (engine, snapshot server, Cypher-lite procedures) shares it.

// Version returns the store's mutation counter. It increments on every
// content change (node/rel creation, property set, index build, batch
// flush), so two calls returning the same value bracket a window in which
// the store's contents did not change. Frozen stores never change version.
func (db *DB) Version() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.version
}

// View returns the compiled view cached on this store, building it with
// build when none exists or the store has mutated since it was built. At
// most one view is cached per DB; concurrent callers serialize on the
// build (the store stays readable throughout — build runs without any
// store lock held by View itself). If the store mutates *while* build
// runs, the freshly built view is returned but not cached, so no caller
// ever observes a view older than the version it read.
func (db *DB) View(build func() any) any {
	db.viewMu.Lock()
	defer db.viewMu.Unlock()
	before := db.Version()
	if db.viewValid && db.viewVersion == before {
		return db.view
	}
	v := build()
	if after := db.Version(); after == before {
		db.view = v
		db.viewVersion = before
		db.viewValid = true
	} else {
		db.viewValid = false
		db.view = nil
	}
	return v
}

// RawView is the clone-free read surface handed to ReadRaw callbacks.
// Everything it returns aliases store internals: callers must not mutate
// the data and must not retain it past the callback (copy what you keep).
type RawView struct {
	db *DB
}

// ReadRaw runs fn under the store's read lock with a RawView over its
// internals. The whole callback sees one consistent snapshot; mutators
// block until it returns, so keep fn to a single compilation pass.
func (db *DB) ReadRaw(fn func(RawView)) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	fn(RawView{db: db})
}

// Version returns the store version the view was taken at.
func (v RawView) Version() uint64 { return v.db.version }

// NodeIDs returns every node ID in ascending order. The slice is freshly
// allocated (it is the one thing safe to keep).
func (v RawView) NodeIDs() []ID {
	out := make([]ID, 0, len(v.db.nodes))
	for id := range v.db.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodeCount returns the number of nodes in the store.
func (v RawView) NodeCount() int { return len(v.db.nodes) }

// MaxID returns the highest ID handed out so far (nodes and rels share
// the ID space), for sizing dense lookup tables.
func (v RawView) MaxID() ID { return v.db.nextID }

// Node returns the store's own node struct (aliased, do not mutate), or
// nil when unknown.
func (v RawView) Node(id ID) *Node { return v.db.nodes[id] }

// Rel returns the store's own relationship struct (aliased, do not
// mutate), or nil when unknown.
func (v RawView) Rel(id ID) *Rel { return v.db.rels[id] }

// RelIDs returns the store's own adjacency slice for the node (aliased,
// do not mutate or retain) in DirOut or DirIn. DirBoth is intentionally
// unsupported — iterate out then in, which is exactly the order
// DB.Rels(node, DirBoth, …) produces.
func (v RawView) RelIDs(node ID, dir Dir) []ID {
	switch dir {
	case DirOut:
		return v.db.out[node]
	case DirIn:
		return v.db.in[node]
	default:
		panic("graphdb: RawView.RelIDs supports DirOut and DirIn only")
	}
}
