package graphdb

import (
	"fmt"
	"sort"
)

// This file is the snapshot surface of the store: Export dumps the full
// contents in canonical order, Import rebuilds a store from such a dump,
// and Freeze turns a store immutable. Package store layers the on-disk
// binary codec on top of these hooks; keeping them here means the codec
// never needs to reach into the store's internals.

// IndexSpec names one label/property index.
type IndexSpec struct {
	Label string
	Prop  string
}

// Export is the complete contents of a store in canonical order: nodes
// and relationships ascending by ID, index specs sorted by label then
// property. Nodes and Rels are snapshots — mutating them does not affect
// the store they came from.
type Export struct {
	Nodes   []*Node
	Rels    []*Rel
	Indexes []IndexSpec
}

// Export dumps the store. The result is deterministic: two stores with
// identical contents export identically regardless of insertion history.
func (db *DB) Export() *Export {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ex := &Export{
		Nodes: make([]*Node, 0, len(db.nodes)),
		Rels:  make([]*Rel, 0, len(db.rels)),
	}
	for _, n := range db.nodes {
		ex.Nodes = append(ex.Nodes, &Node{ID: n.ID, Labels: append([]string(nil), n.Labels...), Props: n.Props.clone()})
	}
	sort.Slice(ex.Nodes, func(i, j int) bool { return ex.Nodes[i].ID < ex.Nodes[j].ID })
	for _, r := range db.rels {
		ex.Rels = append(ex.Rels, &Rel{ID: r.ID, Type: r.Type, Start: r.Start, End: r.End, Props: r.Props.clone()})
	}
	sort.Slice(ex.Rels, func(i, j int) bool { return ex.Rels[i].ID < ex.Rels[j].ID })
	for label, byProp := range db.propIndex {
		for prop := range byProp {
			ex.Indexes = append(ex.Indexes, IndexSpec{Label: label, Prop: prop})
		}
	}
	sort.Slice(ex.Indexes, func(i, j int) bool {
		if ex.Indexes[i].Label != ex.Indexes[j].Label {
			return ex.Indexes[i].Label < ex.Indexes[j].Label
		}
		return ex.Indexes[i].Prop < ex.Indexes[j].Prop
	})
	return ex
}

// Import rebuilds a store from an export. Node and relationship IDs are
// preserved, adjacency lists and label/index buckets are filled in
// element-ID order — the same order a sequential batch fill produces — so
// every query against the imported store returns results identical to the
// original. The export's nodes and rels are copied, not aliased.
func Import(ex *Export) (*DB, error) {
	db := New()
	var maxID ID
	for i, n := range ex.Nodes {
		if n.ID <= 0 {
			return nil, fmt.Errorf("graphdb import: node %d has invalid ID %d", i, n.ID)
		}
		if _, dup := db.nodes[n.ID]; dup {
			return nil, fmt.Errorf("graphdb import: duplicate node ID %d", n.ID)
		}
		cp := &Node{ID: n.ID, Labels: append([]string(nil), n.Labels...), Props: n.Props.clone()}
		db.nodes[n.ID] = cp
		for _, l := range cp.Labels {
			db.byLabel[l] = append(db.byLabel[l], n.ID)
		}
		if n.ID > maxID {
			maxID = n.ID
		}
	}
	for i, r := range ex.Rels {
		if r.ID <= 0 {
			return nil, fmt.Errorf("graphdb import: rel %d has invalid ID %d", i, r.ID)
		}
		if _, dup := db.rels[r.ID]; dup {
			return nil, fmt.Errorf("graphdb import: duplicate rel ID %d", r.ID)
		}
		if _, dup := db.nodes[r.ID]; dup {
			return nil, fmt.Errorf("graphdb import: rel ID %d collides with a node ID", r.ID)
		}
		if _, ok := db.nodes[r.Start]; !ok {
			return nil, fmt.Errorf("graphdb import: rel %d (%s) has unknown start node %d", r.ID, r.Type, r.Start)
		}
		if _, ok := db.nodes[r.End]; !ok {
			return nil, fmt.Errorf("graphdb import: rel %d (%s) has unknown end node %d", r.ID, r.Type, r.End)
		}
		cp := &Rel{ID: r.ID, Type: r.Type, Start: r.Start, End: r.End, Props: r.Props.clone()}
		db.rels[r.ID] = cp
		db.out[r.Start] = append(db.out[r.Start], r.ID)
		db.in[r.End] = append(db.in[r.End], r.ID)
		if r.ID > maxID {
			maxID = r.ID
		}
	}
	db.nextID = maxID
	// CreateIndex walks byLabel, which is already in node-ID order, so the
	// index buckets come out in ID order too.
	for _, ix := range ex.Indexes {
		db.CreateIndex(ix.Label, ix.Prop)
	}
	return db, nil
}

// Freeze makes the store immutable: any subsequent mutation
// (CreateNode/CreateRel/SetNodeProp/CreateIndex or a batch Flush) panics.
// Loaded snapshots are frozen so long-lived query services can serve them
// from many goroutines with the guarantee that no handler mutates shared
// state. Freezing is irreversible.
func (db *DB) Freeze() {
	db.mu.Lock()
	db.frozen = true
	db.mu.Unlock()
}

// Frozen reports whether the store has been frozen.
func (db *DB) Frozen() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.frozen
}

// mustMutateLocked panics when the store is frozen. Callers hold db.mu.
func (db *DB) mustMutateLocked(op string) {
	if db.frozen {
		panic("graphdb: " + op + " on frozen store")
	}
}
