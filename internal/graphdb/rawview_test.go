package graphdb

import (
	"reflect"
	"testing"
)

func TestVersionBumpsOnEveryMutation(t *testing.T) {
	db := New()
	v0 := db.Version()
	n1 := db.CreateNode([]string{"L"}, Props{"P": 1})
	if db.Version() == v0 {
		t.Fatal("CreateNode did not bump version")
	}
	v1 := db.Version()
	n2 := db.CreateNode([]string{"L"}, nil)
	if db.Version() == v1 {
		t.Fatal("second CreateNode did not bump version")
	}
	v2 := db.Version()
	if _, err := db.CreateRel("R", n1, n2, nil); err != nil {
		t.Fatal(err)
	}
	if db.Version() == v2 {
		t.Fatal("CreateRel did not bump version")
	}
	v3 := db.Version()
	if err := db.SetNodeProp(n1, "P", 2); err != nil {
		t.Fatal(err)
	}
	if db.Version() == v3 {
		t.Fatal("SetNodeProp did not bump version")
	}
	v4 := db.Version()
	db.CreateIndex("L", "P")
	if db.Version() == v4 {
		t.Fatal("CreateIndex did not bump version")
	}
	v5 := db.Version()
	b := db.NewBatch()
	b.CreateNode([]string{"L"}, nil)
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.Version() == v5 {
		t.Fatal("batch Flush did not bump version")
	}
	// Reads must not bump.
	v6 := db.Version()
	db.Node(n1)
	db.Rels(n1, DirBoth)
	db.FindNodes("L", "P", 2)
	db.Stats()
	if db.Version() != v6 {
		t.Fatal("read operations bumped version")
	}
}

func TestViewCachesUntilMutation(t *testing.T) {
	db := New()
	id := db.CreateNode([]string{"L"}, nil)
	builds := 0
	build := func() any { builds++; return builds }
	if got := db.View(build); got != 1 {
		t.Fatalf("first View = %v, want 1", got)
	}
	if got := db.View(build); got != 1 {
		t.Fatalf("second View = %v (rebuilt), want cached 1", got)
	}
	if err := db.SetNodeProp(id, "P", 1); err != nil {
		t.Fatal(err)
	}
	if got := db.View(build); got != 2 {
		t.Fatalf("View after mutation = %v, want rebuilt 2", got)
	}
	if got := db.View(build); got != 2 {
		t.Fatalf("View after rebuild = %v, want cached 2", got)
	}
	db.Freeze()
	if got := db.View(build); got != 2 {
		t.Fatalf("View on frozen store = %v, want cached 2", got)
	}
}

func TestReadRawMatchesPublicAccessors(t *testing.T) {
	db := New()
	a := db.CreateNode([]string{"Method"}, Props{"NAME": "a", "PP": []int{1, 2}})
	b := db.CreateNode([]string{"Method"}, Props{"NAME": "b"})
	r1, err := db.CreateRel("CALL", a, b, Props{"POLLUTED_POSITION": []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.CreateRel("ALIAS", b, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	db.ReadRaw(func(v RawView) {
		if got := v.NodeIDs(); !reflect.DeepEqual(got, []ID{a, b}) {
			t.Errorf("NodeIDs = %v, want [%d %d]", got, a, b)
		}
		if v.NodeCount() != 2 {
			t.Errorf("NodeCount = %d", v.NodeCount())
		}
		if v.MaxID() != r2 {
			t.Errorf("MaxID = %d, want %d", v.MaxID(), r2)
		}
		n := v.Node(a)
		if n == nil || n.Props["NAME"] != "a" {
			t.Fatalf("Node(a) = %+v", n)
		}
		if v.Node(ID(999)) != nil {
			t.Error("Node(unknown) should be nil")
		}
		if got := v.RelIDs(a, DirOut); !reflect.DeepEqual(got, []ID{r1}) {
			t.Errorf("RelIDs(a, out) = %v", got)
		}
		if got := v.RelIDs(a, DirIn); !reflect.DeepEqual(got, []ID{r2}) {
			t.Errorf("RelIDs(a, in) = %v", got)
		}
		rel := v.Rel(r1)
		if rel == nil || rel.Start != a || rel.End != b || rel.Type != "CALL" {
			t.Fatalf("Rel(r1) = %+v", rel)
		}
		if !reflect.DeepEqual(rel.Props["POLLUTED_POSITION"], []int{0}) {
			t.Errorf("rel props = %+v", rel.Props)
		}
	})
}

func TestReadRawRelIDsPanicsOnDirBoth(t *testing.T) {
	db := New()
	id := db.CreateNode(nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("RelIDs(DirBoth) must panic")
		}
	}()
	db.ReadRaw(func(v RawView) { v.RelIDs(id, DirBoth) })
}
