package graphdb

import (
	"fmt"
	"sync"
)

// batchIDBlock is how many IDs a batch reserves from the store at a time.
// Block reservation shards the ID space across concurrent batches: each
// grabs a disjoint range under one short lock and then allocates from it
// lock-free with respect to the store, so builders on different workers
// never serialize on nextID per element.
const batchIDBlock = 256

// reserveIDs allocates a contiguous block of n fresh IDs and returns the
// first. The store's own CreateNode/CreateRel keep using nextID directly,
// so interleaving batched and direct creation is safe (IDs stay unique,
// though not dense).
func (db *DB) reserveIDs(n int) ID {
	db.mu.Lock()
	db.mustMutateLocked("batch ID reservation")
	first := db.nextID + 1
	db.nextID += ID(n)
	db.mu.Unlock()
	return first
}

// Batch buffers node and relationship creations and applies them to the
// store in a single critical section on Flush. IDs are handed out
// immediately (from block reservations), so callers can wire
// relationships between batch-local nodes before anything is committed.
//
// A Batch is safe for concurrent use, but note the determinism contract:
// IDs are assigned in CreateNode/CreateRel call order, so a builder that
// needs reproducible IDs must issue those calls in a deterministic
// order (the CPG builder precomputes element specs in parallel, then
// fills its batch sequentially).
type Batch struct {
	db       *DB
	mu       sync.Mutex
	nextFree ID // next unused ID in the current block
	blockEnd ID // last ID of the current block (inclusive); 0 = no block
	nodes    []*Node
	rels     []*Rel
	local    map[ID]bool // node IDs created in this batch, pre-flush
}

// NewBatch starts an empty batch against the store.
func (db *DB) NewBatch() *Batch {
	return &Batch{db: db, local: make(map[ID]bool)}
}

func (b *Batch) allocLocked() ID {
	if b.nextFree == 0 || b.nextFree > b.blockEnd {
		first := b.db.reserveIDs(batchIDBlock)
		b.nextFree = first
		b.blockEnd = first + batchIDBlock - 1
	}
	id := b.nextFree
	b.nextFree++
	return id
}

// CreateNode buffers a node and returns its (already final) ID.
func (b *Batch) CreateNode(labels []string, props Props) ID {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.allocLocked()
	b.nodes = append(b.nodes, &Node{
		ID:     id,
		Labels: append([]string(nil), labels...),
		Props:  props.clone(),
	})
	b.local[id] = true
	return id
}

// CreateRel buffers a relationship and returns its ID. Endpoints may be
// nodes already in the store or nodes buffered in this batch; they are
// validated at Flush time, which fails without applying anything if an
// endpoint is unknown.
func (b *Batch) CreateRel(relType string, start, end ID, props Props) ID {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.allocLocked()
	b.rels = append(b.rels, &Rel{
		ID: id, Type: relType, Start: start, End: end, Props: props.clone(),
	})
	return id
}

// Len reports how many buffered elements the next Flush will apply.
func (b *Batch) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.nodes) + len(b.rels)
}

// Flush validates every buffered relationship endpoint and applies all
// buffered elements to the store under one lock, maintaining the label
// and property indexes exactly as the unbatched create paths do. On
// validation failure the store is left untouched and the buffer kept, so
// the caller can inspect it. A successful Flush empties the batch; the
// batch may then be reused.
func (b *Batch) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	db := b.db
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mustMutateLocked("batch Flush")

	for _, r := range b.rels {
		if !b.local[r.Start] {
			if _, ok := db.nodes[r.Start]; !ok {
				return fmt.Errorf("graphdb: batch rel %s: unknown start node %d", r.Type, r.Start)
			}
		}
		if !b.local[r.End] {
			if _, ok := db.nodes[r.End]; !ok {
				return fmt.Errorf("graphdb: batch rel %s: unknown end node %d", r.Type, r.End)
			}
		}
	}

	db.version++
	for _, n := range b.nodes {
		db.nodes[n.ID] = n
		for _, l := range n.Labels {
			db.byLabel[l] = append(db.byLabel[l], n.ID)
			if byProp, ok := db.propIndex[l]; ok {
				for prop, byVal := range byProp {
					if v, ok := n.Props[prop]; ok {
						k := valueKey(v)
						byVal[k] = append(byVal[k], n.ID)
					}
				}
			}
		}
	}
	for _, r := range b.rels {
		db.rels[r.ID] = r
		db.out[r.Start] = append(db.out[r.Start], r.ID)
		db.in[r.End] = append(db.in[r.End], r.ID)
	}

	b.nodes = b.nodes[:0]
	b.rels = b.rels[:0]
	b.local = make(map[ID]bool)
	return nil
}
