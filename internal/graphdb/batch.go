package graphdb

import (
	"fmt"
	"sync"
)

// batchIDBlock is how many IDs a batch reserves from the store at a time.
// Block reservation shards the ID space across concurrent batches: each
// grabs a disjoint range under one short lock and then allocates from it
// lock-free with respect to the store, so builders on different workers
// never serialize on nextID per element.
const batchIDBlock = 256

// reserveIDs allocates a contiguous block of n fresh IDs and returns the
// first. The store's own CreateNode/CreateRel keep using nextID directly,
// so interleaving batched and direct creation is safe (IDs stay unique,
// though not dense).
func (db *DB) reserveIDs(n int) ID {
	db.mu.Lock()
	db.mustMutateLocked("batch ID reservation")
	first := db.nextID + 1
	db.nextID += ID(n)
	db.mu.Unlock()
	return first
}

// Batch buffers node and relationship creations and applies them to the
// store in a single critical section on Flush. IDs are handed out
// immediately (from block reservations), so callers can wire
// relationships between batch-local nodes before anything is committed.
//
// A Batch is safe for concurrent use, but note the determinism contract:
// IDs are assigned in CreateNode/CreateRel call order, so a builder that
// needs reproducible IDs must issue those calls in a deterministic
// order (the CPG builder precomputes element specs in parallel, then
// fills its batch sequentially).
type Batch struct {
	db       *DB
	mu       sync.Mutex
	nextFree ID // next unused ID in the current block
	blockEnd ID // last ID of the current block (inclusive); 0 = no block
	nodes    []*Node
	rels     []*Rel
	local    map[ID]bool // node IDs created in this batch, pre-flush
	relDels  []ID
	nodeDels []ID
	propSets []propSet
}

type propSet struct {
	node  ID
	key   string
	value any
}

// NewBatch starts an empty batch against the store.
func (db *DB) NewBatch() *Batch {
	return &Batch{db: db, local: make(map[ID]bool)}
}

func (b *Batch) allocLocked() ID {
	if b.nextFree == 0 || b.nextFree > b.blockEnd {
		first := b.db.reserveIDs(batchIDBlock)
		b.nextFree = first
		b.blockEnd = first + batchIDBlock - 1
	}
	id := b.nextFree
	b.nextFree++
	return id
}

// CreateNode buffers a node and returns its (already final) ID. The
// labels slice and props map are deep-copied, so the caller may keep
// mutating them.
func (b *Batch) CreateNode(labels []string, props Props) ID {
	return b.CreateNodeOwned(append([]string(nil), labels...), props.clone())
}

// CreateNodeOwned is CreateNode with ownership transfer: the batch takes
// the labels slice and props map as-is, without cloning. The caller must
// never touch either again. Bulk builders (the CPG batch fill) construct
// fresh property maps per element anyway; handing them over un-cloned
// removes one map copy per node.
func (b *Batch) CreateNodeOwned(labels []string, props Props) ID {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.allocLocked()
	b.nodes = append(b.nodes, &Node{ID: id, Labels: labels, Props: props})
	b.local[id] = true
	return id
}

// CreateRel buffers a relationship and returns its ID. Endpoints may be
// nodes already in the store or nodes buffered in this batch; they are
// validated at Flush time, which fails without applying anything if an
// endpoint is unknown. The props map is deep-copied.
func (b *Batch) CreateRel(relType string, start, end ID, props Props) ID {
	return b.CreateRelOwned(relType, start, end, props.clone())
}

// CreateRelOwned is CreateRel with ownership transfer of the props map
// (see CreateNodeOwned).
func (b *Batch) CreateRelOwned(relType string, start, end ID, props Props) ID {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.allocLocked()
	b.rels = append(b.rels, &Rel{
		ID: id, Type: relType, Start: start, End: end, Props: props,
	})
	return id
}

// DeleteRel buffers the deletion of an existing relationship. Deletions
// apply before any buffered creation, so a caller may retire a node's old
// edges and lay down replacements in one Flush.
func (b *Batch) DeleteRel(id ID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.relDels = append(b.relDels, id)
}

// DeleteNode buffers the deletion of an existing node. The node's
// relationships must all be buffered for deletion in the same batch (or
// already gone), or Flush fails without applying anything.
func (b *Batch) DeleteNode(id ID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nodeDels = append(b.nodeDels, id)
}

// SetNodeProp buffers a property update on an existing or batch-local
// node. Updates apply after creations, in buffer order.
func (b *Batch) SetNodeProp(node ID, key string, value any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.propSets = append(b.propSets, propSet{node: node, key: key, value: value})
}

// Len reports how many buffered elements the next Flush will apply.
func (b *Batch) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.nodes) + len(b.rels) + len(b.relDels) + len(b.nodeDels) + len(b.propSets)
}

// Flush validates every buffered element and applies them all to the
// store under one lock, maintaining the label and property indexes
// exactly as the unbatched paths do. Application order is: relationship
// deletions, node deletions, node creations, relationship creations,
// property updates — so an incremental update can retire stale edges and
// write their replacements atomically. On validation failure the store is
// left untouched and the buffer kept, so the caller can inspect it. A
// successful Flush empties the batch; the batch may then be reused. An
// empty Flush is a no-op and does not bump the store's mutation version,
// which keeps compiled views (searchindex) valid across no-change runs.
func (b *Batch) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.nodes)+len(b.rels)+len(b.relDels)+len(b.nodeDels)+len(b.propSets) == 0 {
		return nil
	}
	db := b.db
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mustMutateLocked("batch Flush")

	relGone := make(map[ID]bool, len(b.relDels))
	for _, id := range b.relDels {
		if _, ok := db.rels[id]; !ok {
			return fmt.Errorf("graphdb: batch delete of unknown rel %d", id)
		}
		relGone[id] = true
	}
	nodeGone := make(map[ID]bool, len(b.nodeDels))
	for _, id := range b.nodeDels {
		if _, ok := db.nodes[id]; !ok {
			return fmt.Errorf("graphdb: batch delete of unknown node %d", id)
		}
		for _, rid := range db.out[id] {
			if !relGone[rid] {
				return fmt.Errorf("graphdb: batch delete of node %d: rel %d still attached", id, rid)
			}
		}
		for _, rid := range db.in[id] {
			if !relGone[rid] {
				return fmt.Errorf("graphdb: batch delete of node %d: rel %d still attached", id, rid)
			}
		}
		nodeGone[id] = true
	}
	endpointOK := func(id ID) bool {
		if b.local[id] {
			return true
		}
		_, ok := db.nodes[id]
		return ok && !nodeGone[id]
	}
	for _, r := range b.rels {
		if !endpointOK(r.Start) {
			return fmt.Errorf("graphdb: batch rel %s: unknown start node %d", r.Type, r.Start)
		}
		if !endpointOK(r.End) {
			return fmt.Errorf("graphdb: batch rel %s: unknown end node %d", r.Type, r.End)
		}
	}
	for _, p := range b.propSets {
		if !endpointOK(p.node) {
			return fmt.Errorf("graphdb: batch prop %s on unknown node %d", p.key, p.node)
		}
	}

	db.version++
	for _, id := range b.relDels {
		r := db.rels[id]
		delete(db.rels, id)
		db.out[r.Start] = removeID(db.out[r.Start], id)
		db.in[r.End] = removeID(db.in[r.End], id)
	}
	for _, id := range b.nodeDels {
		n := db.nodes[id]
		delete(db.nodes, id)
		delete(db.out, id)
		delete(db.in, id)
		for _, l := range n.Labels {
			db.byLabel[l] = removeID(db.byLabel[l], id)
			if byProp, ok := db.propIndex[l]; ok {
				for prop, byVal := range byProp {
					if v, ok := n.Props[prop]; ok {
						k := valueKey(v)
						byVal[k] = removeID(byVal[k], id)
					}
				}
			}
		}
	}
	for _, n := range b.nodes {
		db.nodes[n.ID] = n
		for _, l := range n.Labels {
			db.byLabel[l] = append(db.byLabel[l], n.ID)
			if byProp, ok := db.propIndex[l]; ok {
				for prop, byVal := range byProp {
					if v, ok := n.Props[prop]; ok {
						k := valueKey(v)
						byVal[k] = append(byVal[k], n.ID)
					}
				}
			}
		}
	}
	for _, r := range b.rels {
		db.rels[r.ID] = r
		db.out[r.Start] = append(db.out[r.Start], r.ID)
		db.in[r.End] = append(db.in[r.End], r.ID)
	}
	for _, p := range b.propSets {
		n := db.nodes[p.node]
		old, had := n.Props[p.key]
		if n.Props == nil {
			n.Props = make(Props)
		}
		n.Props[p.key] = p.value
		for _, l := range n.Labels {
			byProp, ok := db.propIndex[l]
			if !ok {
				continue
			}
			byVal, ok := byProp[p.key]
			if !ok {
				continue
			}
			if had {
				byVal[valueKey(old)] = removeID(byVal[valueKey(old)], p.node)
			}
			k := valueKey(p.value)
			byVal[k] = append(byVal[k], p.node)
		}
	}

	b.nodes = b.nodes[:0]
	b.rels = b.rels[:0]
	b.relDels = b.relDels[:0]
	b.nodeDels = b.nodeDels[:0]
	b.propSets = b.propSets[:0]
	b.local = make(map[ID]bool)
	return nil
}
