package graphdb

import (
	"sync"
	"testing"
)

func TestBatchFlushMatchesDirectCreation(t *testing.T) {
	db := New()
	db.CreateIndex("Method", "NAME")

	b := db.NewBatch()
	n1 := b.CreateNode([]string{"Method"}, Props{"NAME": "a"})
	n2 := b.CreateNode([]string{"Method"}, Props{"NAME": "b"})
	r := b.CreateRel("CALL", n1, n2, Props{"W": 1})
	if got := b.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	// Nothing visible before the flush.
	if db.Node(n1) != nil {
		t.Fatal("node visible before Flush")
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := b.Len(); got != 0 {
		t.Fatalf("Len after Flush = %d, want 0", got)
	}

	if db.Node(n1) == nil || db.Node(n2) == nil {
		t.Fatal("batched nodes missing after Flush")
	}
	rel := db.Rel(r)
	if rel == nil || rel.Start != n1 || rel.End != n2 {
		t.Fatalf("batched rel wrong: %+v", rel)
	}
	if ids := db.FindNodes("Method", "NAME", "b"); len(ids) != 1 || ids[0] != n2 {
		t.Fatalf("index not maintained for batched node: %v", ids)
	}
	if ids := db.Rels(n1, DirOut, "CALL"); len(ids) != 1 || ids[0] != r {
		t.Fatalf("adjacency not maintained: %v", ids)
	}
}

func TestBatchFlushValidatesEndpoints(t *testing.T) {
	db := New()
	b := db.NewBatch()
	n := b.CreateNode([]string{"X"}, nil)
	b.CreateRel("E", n, n+9999, nil)
	if err := b.Flush(); err == nil {
		t.Fatal("Flush accepted rel with unknown endpoint")
	}
	// Failed flush must leave the store untouched.
	if got := db.Stats().Nodes; got != 0 {
		t.Fatalf("store has %d nodes after failed Flush, want 0", got)
	}
}

func TestBatchRelToPreexistingNode(t *testing.T) {
	db := New()
	old := db.CreateNode([]string{"X"}, nil)
	b := db.NewBatch()
	fresh := b.CreateNode([]string{"X"}, nil)
	b.CreateRel("E", fresh, old, nil)
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := db.Degree(old, DirIn, "E"); got != 1 {
		t.Fatalf("Degree = %d, want 1", got)
	}
}

// TestBatchDeltaOps exercises the incremental-update surface in one
// flush: retire a node and its edges, lay down a replacement edge, and
// update a property, with index maintenance and a single version bump.
func TestBatchDeltaOps(t *testing.T) {
	db := New()
	db.CreateIndex("Method", "NAME")
	a := db.CreateNode([]string{"Method"}, Props{"NAME": "a"})
	bn := db.CreateNode([]string{"Method"}, Props{"NAME": "b"})
	c := db.CreateNode([]string{"Method"}, Props{"NAME": "c"})
	ab, err := db.CreateRel("CALL", a, bn, nil)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := db.CreateRel("CALL", bn, c, nil)
	if err != nil {
		t.Fatal(err)
	}

	before := db.Version()
	batch := db.NewBatch()
	batch.DeleteRel(ab)
	batch.DeleteRel(bc)
	batch.DeleteNode(bn)
	batch.CreateRel("CALL", a, c, Props{"W": 2})
	batch.SetNodeProp(a, "NAME", "a2")
	if err := batch.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := db.Version(); got != before+1 {
		t.Errorf("Version bumped %d times, want exactly 1", got-before)
	}
	if db.Node(bn) != nil || db.Rel(ab) != nil || db.Rel(bc) != nil {
		t.Error("deleted elements still present after Flush")
	}
	if ids := db.FindNodes("Method", "NAME", "b"); len(ids) != 0 {
		t.Errorf("index still lists deleted node: %v", ids)
	}
	if ids := db.FindNodes("Method", "NAME", "a2"); len(ids) != 1 || ids[0] != a {
		t.Errorf("index not updated for SetNodeProp: %v", ids)
	}
	if ids := db.Rels(a, DirOut, "CALL"); len(ids) != 1 {
		t.Errorf("replacement edge missing: %v", ids)
	}
}

// TestBatchEmptyFlushKeepsVersion pins the searchindex-reuse contract: a
// flush with nothing buffered must not bump the mutation version.
func TestBatchEmptyFlushKeepsVersion(t *testing.T) {
	db := New()
	db.CreateNode([]string{"X"}, nil)
	before := db.Version()
	if err := db.NewBatch().Flush(); err != nil {
		t.Fatal(err)
	}
	if got := db.Version(); got != before {
		t.Errorf("empty Flush bumped version %d → %d", before, got)
	}
}

// TestBatchDeleteValidation: deleting an unknown element, or a node with
// a surviving edge, fails without applying anything.
func TestBatchDeleteValidation(t *testing.T) {
	db := New()
	a := db.CreateNode([]string{"X"}, nil)
	bn := db.CreateNode([]string{"X"}, nil)
	if _, err := db.CreateRel("E", a, bn, nil); err != nil {
		t.Fatal(err)
	}
	before := db.Version()

	batch := db.NewBatch()
	batch.DeleteRel(9999)
	if err := batch.Flush(); err == nil {
		t.Fatal("Flush accepted deletion of unknown rel")
	}

	batch2 := db.NewBatch()
	batch2.DeleteNode(a) // its edge is not buffered for deletion
	if err := batch2.Flush(); err == nil {
		t.Fatal("Flush accepted node deletion with attached rel")
	}
	if db.Node(a) == nil || db.Version() != before {
		t.Error("failed Flush mutated the store")
	}
}

func TestBatchConcurrentCreateUniqueIDs(t *testing.T) {
	db := New()
	b := db.NewBatch()
	const workers, per = 8, 400
	ids := make([][]ID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ids[w] = append(ids[w], b.CreateNode([]string{"N"}, nil))
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[ID]bool)
	for _, batch := range ids {
		for _, id := range batch {
			if seen[id] {
				t.Fatalf("duplicate ID %d", id)
			}
			seen[id] = true
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().Nodes; got != workers*per {
		t.Fatalf("Nodes = %d, want %d", got, workers*per)
	}
}
