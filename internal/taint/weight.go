// Package taint implements Tabby's variable controllability analysis
// (paper §III-C): a field-sensitive points-to style dataflow that decides,
// for every method call, which of its receiver/arguments an attacker who
// controls the deserialized object can influence.
//
// Its outputs are the two properties the gadget-chain search runs on:
//
//   - Action — a per-method summary of how parameters and the return value
//     relate to the method's inputs (Table III, Fig. 5b), memoised as the
//     paper's caching mechanism;
//   - Polluted_Position (PP) — a per-call-site array giving the
//     controllability weight of the receiver (index 0) and each argument
//     (index i) in the caller's frame (Table V, Fig. 5c).
package taint

import (
	"fmt"
	"strconv"
	"strings"

	"tabby/internal/sortutil"
)

// Weight is a controllability weight per Table V. The encoding is chosen
// to be storable as a plain int in graph properties:
//
//	WeightUnctrl (-1)  — ∞, not controllable
//	0                  — comes from the caller object (this) or its fields
//	k ≥ 1              — comes from parameter k (1-based)
type Weight int

// WeightUnctrl is the ∞ weight of Table V.
const WeightUnctrl Weight = -1

// Controllable reports whether the weight is not ∞.
func (w Weight) Controllable() bool { return w != WeightUnctrl }

// String renders ∞ for the uncontrollable weight.
func (w Weight) String() string {
	if w == WeightUnctrl {
		return "∞"
	}
	return strconv.Itoa(int(w))
}

// PP is a Polluted_Position array: PP[0] is the receiver weight (∞ for
// static calls), PP[i] the weight of argument i.
type PP []Weight

// AllUncontrollable reports whether every position is ∞ — the pruning
// condition of Algorithm 1 ("prunes CALL edges when all values in their PP
// property are ∞").
func (pp PP) AllUncontrollable() bool {
	for _, w := range pp {
		if w.Controllable() {
			return false
		}
	}
	return true
}

// Ints converts the PP to a plain []int for graph-property storage.
func (pp PP) Ints() []int {
	out := make([]int, len(pp))
	for i, w := range pp {
		out[i] = int(w)
	}
	return out
}

// PPFromInts converts a stored []int back to a PP.
func PPFromInts(ints []int) PP {
	out := make(PP, len(ints))
	for i, v := range ints {
		out[i] = Weight(v)
	}
	return out
}

// String renders e.g. "[∞,∞,2]".
func (pp PP) String() string {
	parts := make([]string, len(pp))
	for i, w := range pp {
		parts[i] = w.String()
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// OriginKind classifies where a value ultimately comes from — the value
// set of the Action property (Table III).
type OriginKind int

// Origin kinds.
const (
	OriginNull  OriginKind = iota + 1 // "null": uncontrollable
	OriginThis                        // this (or this.Field when Field != "")
	OriginParam                       // init-param-Param (or its Field)
)

// Origin is a single Action value: this, this.x, init-param-j,
// init-param-j.x, or null.
type Origin struct {
	Kind  OriginKind
	Param int    // 1-based, for OriginParam
	Field string // optional one-level field suffix
}

// Canonical origins.
var (
	Null = Origin{Kind: OriginNull}
	This = Origin{Kind: OriginThis}
)

// Param returns the origin init-param-i (1-based).
func Param(i int) Origin { return Origin{Kind: OriginParam, Param: i} }

// WithField returns the origin refined by one field dereference. Null
// stays null; an already field-qualified origin stays at depth one (the
// analysis is field-sensitive to depth one, like the paper's a.b cells).
func (o Origin) WithField(field string) Origin {
	if o.Kind == OriginNull {
		return Null
	}
	o.Field = field
	return o
}

// Controllable reports whether the origin is attacker-influenced.
func (o Origin) Controllable() bool { return o.Kind != OriginNull }

// Weight collapses the origin to its Table V weight: this[.f] → 0,
// init-param-j[.f] → j, null → ∞.
func (o Origin) Weight() Weight {
	switch o.Kind {
	case OriginThis:
		return 0
	case OriginParam:
		return Weight(o.Param)
	default:
		return WeightUnctrl
	}
}

// rank orders origins for the dataflow join: more controllable first.
// The join keeps the lowest rank, over-approximating controllability at
// control-flow joins exactly the way that produces the paper's
// conditional-statement false positives (§IV-E).
func (o Origin) rank() int {
	switch o.Kind {
	case OriginThis:
		return 0
	case OriginParam:
		return o.Param
	default:
		return 1 << 30
	}
}

// join merges two origins at a control-flow join point.
func (o Origin) join(other Origin) Origin {
	if other.rank() < o.rank() {
		return other
	}
	return o
}

// String renders the origin in the paper's Action syntax.
func (o Origin) String() string {
	var base string
	switch o.Kind {
	case OriginNull:
		return "null"
	case OriginThis:
		base = "this"
	case OriginParam:
		base = "init-param-" + strconv.Itoa(o.Param)
	default:
		base = "?"
	}
	if o.Field != "" {
		base += "." + o.Field
	}
	return base
}

// SlotKind classifies Action keys (Table III).
type SlotKind int

// Slot kinds.
const (
	SlotThis   SlotKind = iota + 1 // this / this.x
	SlotParam                      // final-param-i / final-param-i.x
	SlotReturn                     // return
)

// Slot is an Action key: this, this.x, final-param-i, final-param-i.x or
// return.
type Slot struct {
	Kind  SlotKind
	Param int    // 1-based, for SlotParam
	Field string // optional field suffix
}

// Canonical slots.
var (
	SlotReturnValue = Slot{Kind: SlotReturn}
	SlotThisValue   = Slot{Kind: SlotThis}
)

// FinalParam returns the slot final-param-i (1-based).
func FinalParam(i int) Slot { return Slot{Kind: SlotParam, Param: i} }

// String renders the slot in the paper's Action syntax.
func (s Slot) String() string {
	var base string
	switch s.Kind {
	case SlotThis:
		base = "this"
	case SlotParam:
		base = "final-param-" + strconv.Itoa(s.Param)
	case SlotReturn:
		return "return"
	default:
		base = "?"
	}
	if s.Field != "" {
		base += "." + s.Field
	}
	return base
}

// Action is the method summary property of Table III: a map from slots to
// origins describing "the origins of method parameters and return values
// after a method call".
type Action map[Slot]Origin

// IdentityAction returns the summary of a method we refuse to look into
// (recursion cut-offs and bodies we do not have): parameters keep their
// identity, the return value and this-effects are unknown (null).
func IdentityAction(paramCount int, static bool) Action {
	a := make(Action, paramCount+2)
	for i := 1; i <= paramCount; i++ {
		a[FinalParam(i)] = Param(i)
	}
	if !static {
		a[SlotThisValue] = This
	}
	a[SlotReturnValue] = Null
	return a
}

// OptimisticAction returns the summary used for sink-like or opaque
// library calls whose return should be assumed attacker-reachable when
// any input is: return ← init-param-1 when the method has parameters,
// otherwise ← this. Used for phantom methods so that chains through
// unmodelled library code are not silently cut (the paper errs the same
// way: unknown callees keep variables controllable).
func OptimisticAction(paramCount int, static bool) Action {
	a := IdentityAction(paramCount, static)
	switch {
	case paramCount > 0:
		a[SlotReturnValue] = Param(1)
	case !static:
		a[SlotReturnValue] = This
	}
	return a
}

// SortedSlots returns the action's slots in canonical (rendered-name)
// order, shared by String and the persistent summary-cache encoder.
func (a Action) SortedSlots() []Slot {
	return sortutil.SortedKeysFunc(a, func(x, y Slot) bool { return x.String() < y.String() })
}

// String renders the action deterministically, matching Fig. 5(b)'s
// {"final-param-1": "init-param-1", ...} shape.
func (a Action) String() string {
	keys := a.SortedSlots()
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%q: %q", k.String(), a[k].String()))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Calc implements Formula 2: out = {⟨x,z⟩ | ⟨x,y⟩ ∈ Action, ⟨y,z⟩ ∈ in}.
// in maps the callee's input origins (this, init-param-j, with optional
// field refinement) to origins in the caller's frame. Slots whose origin
// cannot be mapped become null.
func Calc(a Action, in func(Origin) Origin) Action {
	out := make(Action, len(a))
	for slot, origin := range a {
		out[slot] = in(origin)
	}
	return out
}
