package taint

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"

	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/parallel"
)

// summaryVersion is folded into every fingerprint so cached summaries
// persisted by an older analysis (whose transfer rules may have differed)
// can never match current keys. Bump on any semantic change to Algorithm 1.
const summaryVersion = 1

// MethodSummary is one method's cached analysis output: its Action
// (Table III) and its call edges with Polluted_Position arrays.
type MethodSummary struct {
	Key    java.MethodKey
	Action Action
	Calls  []CallEdge
}

// ConeEntry is the cached output of one strongly connected component,
// addressed by the fingerprint of its whole dependency cone.
type ConeEntry struct {
	Fingerprint string
	Methods     []MethodSummary // sorted by Key
}

// SummaryCache memoizes per-SCC analysis results across runs of
// AnalyzeWithCache. The key of an entry is a fingerprint of the SCC's
// member bodies, the callee each call site resolves to, the analysis
// options, and — transitively — the fingerprints of every cone the SCC
// depends on. A summary is therefore reused only when its entire
// dependency cone is unchanged, which makes a hit byte-identical to a
// fresh computation: invalidation flows along the SCC condensation DAG
// for free, because any change below re-addresses every cone above it.
//
// The cache is safe for concurrent use and never evicts. Cached Actions
// and CallEdges are shared between entries, Results and future runs:
// treat everything reachable from a Result as immutable.
type SummaryCache struct {
	mu    sync.Mutex
	cones map[string][]MethodSummary
	// textFPs memoizes body-text hashes by body identity: an unchanged
	// corpus reuses its Body objects (javasrc whole-program reuse), so
	// warm runs skip re-rendering every body to text. Entries for
	// replaced bodies are retained (bounded by distinct bodies seen).
	textFPs map[*jimple.Body]string
}

// NewSummaryCache creates an empty summary cache.
func NewSummaryCache() *SummaryCache {
	return &SummaryCache{
		cones:   make(map[string][]MethodSummary),
		textFPs: make(map[*jimple.Body]string),
	}
}

// Len reports how many cones the cache holds.
func (c *SummaryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cones)
}

// Export dumps the cache in fingerprint order for persistence.
func (c *SummaryCache) Export() []ConeEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	fps := make([]string, 0, len(c.cones))
	for fp := range c.cones {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	out := make([]ConeEntry, 0, len(fps))
	for _, fp := range fps {
		out = append(out, ConeEntry{Fingerprint: fp, Methods: c.cones[fp]})
	}
	return out
}

// ImportSummaryCache rebuilds a cache from exported entries.
func ImportSummaryCache(entries []ConeEntry) *SummaryCache {
	c := NewSummaryCache()
	for _, e := range entries {
		c.cones[e.Fingerprint] = e.Methods
	}
	return c
}

func (c *SummaryCache) lookup(fp string) ([]MethodSummary, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ms, ok := c.cones[fp]
	return ms, ok
}

func (c *SummaryCache) put(fp string, ms []MethodSummary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.cones[fp]; !ok {
		c.cones[fp] = ms
	}
}

func (c *SummaryCache) textFP(body *jimple.Body) string {
	c.mu.Lock()
	if fp, ok := c.textFPs[body]; ok {
		c.mu.Unlock()
		return fp
	}
	c.mu.Unlock()
	sum := sha256.Sum256([]byte(body.String()))
	fp := hex.EncodeToString(sum[:])
	c.mu.Lock()
	c.textFPs[body] = fp
	c.mu.Unlock()
	return fp
}

// CacheStats reports what one AnalyzeWithCache run reused versus computed.
type CacheStats struct {
	Components      int // strongly connected components in the dep graph
	ComponentHits   int // components whose summaries came from the cache
	MethodsReused   int // methods inside hit components
	MethodsAnalyzed int // methods the fixpoint actually ran on
}

// optionsTag renders the output-relevant analysis options for hashing.
// Workers is excluded: output is identical at every worker count.
func optionsTag(opts Options) string {
	tag := "v" + strconv.Itoa(summaryVersion) + "|iter=" + strconv.Itoa(opts.MaxIterations)
	if opts.DisableInterprocedural {
		tag += "|nointerproc"
	}
	return tag
}

// methodFingerprints computes each method's own fingerprint: the body
// text, the analysis options, and — per call site — which callee summary
// calleeSummary will consult ("c"+key when a resolvable body exists,
// opaque otherwise). Recording the resolution captures every hierarchy
// effect the analysis can observe, including a callee flipping between
// modeled and phantom. The dependency scan already resolved every site,
// so this only replays dep.sites — the emitted byte stream is unchanged.
func methodFingerprints(prog *jimple.Program, opts Options, keys []java.MethodKey, dep *depGraph, cache *SummaryCache) []string {
	tag := optionsTag(opts)
	return parallel.Map(opts.Workers, keys, func(i int, key java.MethodKey) string {
		body := prog.Body(key)
		h := sha256.New()
		h.Write([]byte("tabby-method\x00" + tag + "\x00"))
		h.Write([]byte(cache.textFP(body)))
		if !opts.DisableInterprocedural {
			for _, s := range dep.sites[i] {
				h.Write([]byte(strconv.Itoa(int(s.stmt))))
				if s.target >= 0 {
					h.Write([]byte(":c" + string(keys[s.target]) + "\x00"))
				} else {
					h.Write([]byte(":o\x00"))
				}
			}
		}
		return hex.EncodeToString(h.Sum(nil))
	})
}

// coneFingerprints rolls the per-method fingerprints up the SCC
// condensation DAG: a component's cone fingerprint covers its members
// plus the cone fingerprints of every component it depends on. comps are
// in reverse-topological (callee-first) order, so children are always
// fingerprinted before their dependents.
func coneFingerprints(prog *jimple.Program, opts Options, keys []java.MethodKey, dep *depGraph, comps [][]int, compOf []int, cache *SummaryCache) []string {
	mfps := methodFingerprints(prog, opts, keys, dep, cache)
	cones := make([]string, len(comps))
	for ci, members := range comps {
		h := sha256.New()
		h.Write([]byte("tabby-cone\x00"))
		for _, m := range members {
			h.Write([]byte(mfps[m]))
		}
		var children []string
		seen := make(map[int]bool)
		for _, m := range members {
			for _, s := range dep.succs[m] {
				if cj := compOf[s]; cj != ci && !seen[cj] {
					seen[cj] = true
					children = append(children, cones[cj])
				}
			}
		}
		sort.Strings(children)
		h.Write([]byte{0})
		for _, c := range children {
			h.Write([]byte(c))
		}
		cones[ci] = hex.EncodeToString(h.Sum(nil))
	}
	return cones
}
