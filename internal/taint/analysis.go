package taint

import (
	"fmt"

	"tabby/internal/cfg"
	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/parallel"
	"tabby/internal/sortutil"
)

// CallEdge is one method-call site discovered by the analysis, annotated
// with its Polluted_Position. Pruned edges (all-∞ PP) are recorded for
// statistics but excluded from the Precise Call Graph (§III-C).
type CallEdge struct {
	Caller      java.MethodKey
	CalleeClass string // statically referenced class
	CalleeSub   string // callee sub-signature
	Kind        jimple.InvokeKind
	PP          PP
	StmtIndex   int
	Pruned      bool
}

// Callee returns the statically referenced callee method key.
func (e CallEdge) Callee() java.MethodKey {
	return java.MethodKey(e.CalleeClass + "#" + e.CalleeSub)
}

// Result holds everything the controllability analysis computed.
type Result struct {
	// Actions maps each analyzed method to its summary (Table III).
	Actions map[java.MethodKey]Action
	// Calls maps each caller to its call edges in statement order.
	Calls map[java.MethodKey][]CallEdge
	// TotalCalls and PrunedCalls summarize the pruning effectiveness.
	TotalCalls  int
	PrunedCalls int
}

// MaxCallDepth is a doc-deprecated alias marking where the removed
// Options.MaxCallDepth knob used to live. The SCC wave scheduler memoizes
// callee summaries bottom-up, so the analysis needs no depth bound; the
// knob was a no-op for several releases and the field is now gone.
//
// Deprecated: the value was always ignored; stop passing a depth.
const MaxCallDepth = 0

// Options tunes the analysis.
type Options struct {
	// MaxIterations bounds the per-method dataflow iterations as a safety
	// valve. Zero means the default (64 passes).
	MaxIterations int
	// DisableInterprocedural replaces every callee summary with the
	// optimistic default ("parameters keep their controllability") — the
	// ablation of §III-C's claim that interprocedural Action analysis is
	// what keeps the false-positive rate down. Tools without it "default
	// to [the value] not changing (still controllable)".
	DisableInterprocedural bool
	// Workers bounds the number of concurrent per-method analyses inside
	// one scheduling wave. Zero selects runtime.GOMAXPROCS(0); 1 runs
	// the exact sequential path. Output is identical at every setting.
	Workers int
}

const defaultMaxIterations = 64

// Analyze runs the controllability points-to analysis (Algorithm 1) over
// every method body in the program.
//
// Scheduling: the method-call dependency graph is condensed into
// strongly connected components (Tarjan) and the per-method fixpoints
// run bottom-up in reverse-topological waves — every summary a method
// consults was memoized in an earlier wave, and independent components
// within one wave are analyzed concurrently (Options.Workers). Inside a
// cyclic component the paper's cache-as-cycle-breaker applies: a member
// whose analysis is in progress summarizes as the identity Action.
func Analyze(prog *jimple.Program, opts Options) (*Result, error) {
	res, _, err := AnalyzeWithCache(prog, opts, nil)
	return res, err
}

// AnalyzeWithCache is Analyze with an optional cross-run summary cache.
// Components whose cone fingerprint hits the cache are installed into the
// result without running their fixpoints; everything else is analyzed as
// usual and inserted afterwards. Because a hit requires the component's
// entire dependency cone to be unchanged, the Result is byte-identical to
// what a cacheless run would produce. A nil cache makes this exactly
// Analyze.
func AnalyzeWithCache(prog *jimple.Program, opts Options, cache *SummaryCache) (*Result, CacheStats, error) {
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = defaultMaxIterations
	}
	keys := sortutil.SortedKeys(prog.Bodies)
	dep := buildDepGraph(prog, opts, keys)
	succs := func(i int) []int { return dep.succs[i] }
	comps, compOf := parallel.SCCs(len(keys), succs)
	waves := parallel.Waves(comps, compOf, succs)

	a := &analyzer{
		prog:    prog,
		opts:    opts,
		actions: make(map[java.MethodKey]Action, len(keys)),
		calls:   make(map[java.MethodKey][]CallEdge, len(keys)),
	}
	stats := CacheStats{Components: len(comps)}
	var coneFPs []string
	cachedComp := make([]bool, len(comps))
	if cache != nil {
		coneFPs = coneFingerprints(prog, opts, keys, dep, comps, compOf, cache)
		for ci, fp := range coneFPs {
			ms, ok := cache.lookup(fp)
			if !ok {
				continue
			}
			cachedComp[ci] = true
			stats.ComponentHits++
			stats.MethodsReused += len(ms)
			// Installing before the waves run is safe: only dependents read
			// these entries, and they are all scheduled in later waves.
			for _, m := range ms {
				a.actions[m.Key] = m.Action
				a.calls[m.Key] = m.Calls
			}
		}
	}
	stats.MethodsAnalyzed = len(keys) - stats.MethodsReused

	for _, wave := range waves {
		pending := wave
		if stats.ComponentHits > 0 {
			pending = make([]int, 0, len(wave))
			for _, c := range wave {
				if !cachedComp[c] {
					pending = append(pending, c)
				}
			}
		}
		runners := parallel.Map(opts.Workers, pending, func(_ int, comp int) *sccRunner {
			r := newSCCRunner(a, comps[comp], keys)
			r.run()
			return r
		})
		// Merge after the wave barrier: the global maps are read-only
		// while workers run, so in-wave reads need no lock.
		for _, r := range runners {
			if r.err != nil {
				return nil, stats, r.err
			}
		}
		for _, r := range runners {
			for k, act := range r.actions {
				a.actions[k] = act
			}
			for k, cs := range r.calls {
				a.calls[k] = cs
			}
		}
	}

	if cache != nil {
		for ci, members := range comps {
			if cachedComp[ci] {
				continue
			}
			ms := make([]MethodSummary, 0, len(members))
			for _, m := range members {
				k := keys[m]
				ms = append(ms, MethodSummary{Key: k, Action: a.actions[k], Calls: a.calls[k]})
			}
			cache.put(coneFPs[ci], ms)
		}
	}

	res := &Result{Actions: a.actions, Calls: a.calls}
	for _, k := range keys {
		for _, c := range a.calls[k] {
			res.TotalCalls++
			if c.Pruned {
				res.PrunedCalls++
			}
		}
	}
	return res, stats, nil
}

// analyzer holds the cross-wave state: memoized Actions and call edges
// of every completed component.
type analyzer struct {
	prog    *jimple.Program
	opts    Options
	actions map[java.MethodKey]Action
	calls   map[java.MethodKey][]CallEdge
}

// sccRunner analyzes the members of one strongly connected component.
// It buffers its results locally and the wave loop merges them after the
// barrier, so components in the same wave never contend on the global
// maps.
type sccRunner struct {
	a          *analyzer
	order      []java.MethodKey
	inSCC      map[java.MethodKey]bool
	inProgress map[java.MethodKey]bool
	actions    map[java.MethodKey]Action
	calls      map[java.MethodKey][]CallEdge
	err        error
}

func newSCCRunner(a *analyzer, members []int, keys []java.MethodKey) *sccRunner {
	r := &sccRunner{
		a:          a,
		order:      make([]java.MethodKey, 0, len(members)),
		inSCC:      make(map[java.MethodKey]bool, len(members)),
		inProgress: make(map[java.MethodKey]bool, len(members)),
		actions:    make(map[java.MethodKey]Action, len(members)),
		calls:      make(map[java.MethodKey][]CallEdge, len(members)),
	}
	for _, idx := range members {
		r.order = append(r.order, keys[idx])
		r.inSCC[keys[idx]] = true
	}
	return r
}

// run analyzes every member in ascending key order; within a cyclic
// component the recursion below fills in the rest on demand.
func (r *sccRunner) run() {
	for _, key := range r.order {
		if _, err := r.methodAction(key); err != nil {
			r.err = err
			return
		}
	}
}

// methodAction returns the memoized Action for the method, running
// doMethodAnalysis on first use. A cycle back into a member whose
// analysis is in progress yields the identity summary, the paper's cache
// acting as its cycle-breaker.
func (r *sccRunner) methodAction(key java.MethodKey) (Action, error) {
	if act, ok := r.actions[key]; ok {
		return act, nil
	}
	if act, ok := r.a.actions[key]; ok { // completed in an earlier wave
		return act, nil
	}
	body := r.a.prog.Body(key)
	if body == nil {
		return nil, fmt.Errorf("taint: no body for %s", key)
	}
	static := body.Method.IsStatic()
	n := len(body.Method.Params)
	if !r.inSCC[key] {
		// Every out-of-component dependency is scheduled in an earlier
		// wave; missing means the dependency graph under-approximated.
		return nil, fmt.Errorf("taint: summary for %s not scheduled before its callers", key)
	}
	if r.inProgress[key] {
		return IdentityAction(n, static), nil
	}
	r.inProgress[key] = true
	defer delete(r.inProgress, key)
	act, calls, err := r.doMethodAnalysis(body)
	if err != nil {
		return nil, fmt.Errorf("taint: analyze %s: %w", key, err)
	}
	r.actions[key] = act
	r.calls[key] = calls
	return act, nil
}

// calleeAction resolves the summary for a call: the resolved body's Action
// when available, an optimistic summary for abstract/phantom callees, and
// no summary at all (opaque) for dynamic invokes.
func (r *sccRunner) calleeAction(inv *jimple.InvokeExpr) (Action, error) {
	static := inv.Kind == jimple.InvokeStatic
	n := len(inv.ParamTypes)
	if inv.Kind == jimple.InvokeDynamic {
		// Reflection/dynamic proxy: deliberately opaque (§V-B).
		act := IdentityAction(n, static)
		act[SlotReturnValue] = Null
		return act, nil
	}
	if r.a.opts.DisableInterprocedural {
		return OptimisticAction(n, static), nil
	}
	m := r.a.prog.Hierarchy.ResolveMethod(inv.Class, inv.SubSignature())
	if m == nil {
		return OptimisticAction(n, static), nil
	}
	body := r.a.prog.Body(m.Key())
	if body == nil {
		return OptimisticAction(n, static), nil
	}
	return r.methodAction(m.Key())
}

// doMethodAnalysis runs the per-method dataflow of Algorithm 1 and
// assembles the method's Action plus its call edges.
func (r *sccRunner) doMethodAnalysis(body *jimple.Body) (Action, []CallEdge, error) {
	graph, err := cfg.Build(body)
	if err != nil {
		return nil, nil, err
	}
	numStmts := graph.NumNodes()
	action := make(Action)
	if numStmts == 0 {
		return IdentityAction(len(body.Method.Params), body.Method.IsStatic()), nil, nil
	}

	// Call-edge collection: keyed by statement so re-processing a
	// statement during fixpointing replaces (not duplicates) its edge.
	callsByStmt := make(map[int]CallEdge)

	inStates := make([]env, numStmts)
	inStates[0] = make(env)
	rpo := graph.ReversePostOrder()
	order := make(map[int]int, len(rpo))
	for i, n := range rpo {
		order[n] = i
	}
	work := newWorklist(order)
	work.push(0)

	iterations := 0
	maxVisits := r.a.opts.MaxIterations * numStmts
	for !work.empty() {
		if iterations++; iterations > maxVisits {
			// Safety valve: bail out with what we have rather than spin.
			break
		}
		node := work.pop()
		in := inStates[node]
		if in == nil {
			continue
		}
		out, err := r.transfer(body, node, in.clone(), action, callsByStmt)
		if err != nil {
			return nil, nil, err
		}
		for _, succ := range graph.Succs(node) {
			if inStates[succ] == nil {
				inStates[succ] = out.clone()
				work.push(succ)
			} else if inStates[succ].join(out) {
				work.push(succ)
			}
		}
	}

	r.finishAction(body, action)
	calls := make([]CallEdge, 0, len(callsByStmt))
	for _, s := range sortutil.SortedKeys(callsByStmt) {
		calls = append(calls, callsByStmt[s])
	}
	return action, calls, nil
}

// finishAction fills in slots no return statement touched: a method with
// no reachable return (e.g. one that always throws) still reports the
// identity of this and unmodified params.
func (r *sccRunner) finishAction(body *jimple.Body, action Action) {
	if !body.Method.IsStatic() {
		if _, ok := action[SlotThisValue]; !ok {
			action[SlotThisValue] = This
		}
	} else if _, ok := action[SlotThisValue]; !ok {
		action[SlotThisValue] = Null
	}
	for i := range body.Method.Params {
		slot := FinalParam(i + 1)
		if _, ok := action[slot]; !ok {
			action[slot] = Param(i + 1)
		}
	}
	if _, ok := action[SlotReturnValue]; !ok {
		action[SlotReturnValue] = Null
	}
}

// transfer interprets one statement over the environment, recording call
// edges and Action contributions as side effects.
func (r *sccRunner) transfer(body *jimple.Body, node int, e env, action Action, callsByStmt map[int]CallEdge) (env, error) {
	switch st := body.Stmts[node].(type) {
	case *jimple.IdentityStmt:
		switch rhs := st.RHS.(type) {
		case *jimple.ThisRef:
			e.setLocal(st.Local, This)
		case *jimple.ParamRef:
			e.setLocal(st.Local, Param(rhs.Index+1))
		}
	case *jimple.AssignStmt:
		if err := r.transferAssign(body, node, st, e, callsByStmt); err != nil {
			return nil, err
		}
	case *jimple.InvokeStmt:
		if _, err := r.transferInvoke(body, node, st.Invoke, e, callsByStmt); err != nil {
			return nil, err
		}
	case *jimple.ReturnStmt:
		r.recordReturn(body, st, e, action)
	case *jimple.IfStmt, *jimple.GotoStmt, *jimple.SwitchStmt, *jimple.ThrowStmt, *jimple.NopStmt:
		// Conditions never transfer controllability (Table IV has no rule
		// for them); path-insensitivity here is exactly the source of the
		// paper's residual false positives (§IV-E).
	}
	return e, nil
}

func (r *sccRunner) transferAssign(body *jimple.Body, node int, st *jimple.AssignStmt, e env, callsByStmt map[int]CallEdge) error {
	var rhs Origin
	switch rv := st.RHS.(type) {
	case *jimple.InvokeExpr:
		ret, err := r.transferInvoke(body, node, rv, e, callsByStmt)
		if err != nil {
			return err
		}
		rhs = ret
	default:
		rhs = r.eval(st.RHS, e)
	}
	switch lhs := st.LHS.(type) {
	case *jimple.Local:
		e.setLocal(lhs, rhs)
		if src, ok := st.RHS.(*jimple.Local); ok {
			e.copyLocalFields(lhs, src)
		}
	case *jimple.FieldRef:
		if lhs.IsStatic() {
			e[staticKey(lhs.Class, lhs.Field)] = rhs
		} else {
			e.storeField(lhs.Base, lhs.Field, rhs)
		}
	case *jimple.ArrayRef:
		// Array elements share one pseudo-field "[]" (Table IV array rows).
		e.storeField(lhs.Base, "[]", rhs)
	default:
		return fmt.Errorf("unsupported assignment target %T", st.LHS)
	}
	return nil
}

// eval computes the origin of a non-invoke value (Table IV rows).
func (r *sccRunner) eval(v jimple.Value, e env) Origin {
	switch val := v.(type) {
	case *jimple.Local:
		return e.localOrigin(val)
	case *jimple.ThisRef:
		return This
	case *jimple.ParamRef:
		return Param(val.Index + 1)
	case *jimple.CastExpr:
		return r.eval(val.Op, e) // forced type conversion: b → a
	case *jimple.FieldRef:
		if val.IsStatic() {
			if o, ok := e[staticKey(val.Class, val.Field)]; ok {
				return o
			}
			return Null
		}
		return e.loadField(val.Base, val.Field)
	case *jimple.ArrayRef:
		return e.loadField(val.Base, "[]")
	case *jimple.BinopExpr:
		// String concatenation (Jimple's StringBuilder.append chains)
		// propagates taint: "cmd"+p is controllable when p is. Other
		// operators yield primitives, which are uncontrollable.
		if val.Op == jimple.OpAdd && val.Type().Equal(java.StringType) {
			return r.eval(val.L, e).join(r.eval(val.R, e))
		}
		return Null
	default:
		// new, constants, instanceof: uncontrollable.
		return Null
	}
}

// transferInvoke handles both call statement forms of Table IV: it
// computes the PP, records the call edge, applies the callee's Action via
// calc (Formula 2) and correct (Formula 3), and returns the origin of the
// call's return value.
func (r *sccRunner) transferInvoke(body *jimple.Body, node int, inv *jimple.InvokeExpr, e env, callsByStmt map[int]CallEdge) (Origin, error) {
	// Polluted_Position: receiver then arguments.
	pp := make(PP, 1+len(inv.Args))
	var baseOrigin Origin = Null
	if inv.Base != nil {
		baseOrigin = e.localOrigin(inv.Base)
	}
	pp[0] = baseOrigin.Weight()
	argOrigins := make([]Origin, len(inv.Args))
	for i, arg := range inv.Args {
		argOrigins[i] = r.eval(arg, e)
		pp[i+1] = argOrigins[i].Weight()
	}

	if inv.Kind != jimple.InvokeDynamic {
		callsByStmt[node] = CallEdge{
			Caller:      body.Method.Key(),
			CalleeClass: inv.Class,
			CalleeSub:   inv.SubSignature(),
			Kind:        inv.Kind,
			PP:          pp,
			StmtIndex:   node,
			Pruned:      pp.AllUncontrollable(),
		}
	}

	act, err := r.calleeAction(inv)
	if err != nil {
		return Null, err
	}

	// in: map callee-frame origins to caller-frame origins (Fig. 5d).
	in := func(o Origin) Origin {
		switch o.Kind {
		case OriginNull:
			return Null
		case OriginThis:
			if inv.Base == nil {
				return Null
			}
			if o.Field != "" {
				return e.loadField(inv.Base, o.Field)
			}
			return baseOrigin
		case OriginParam:
			idx := o.Param - 1
			if idx < 0 || idx >= len(inv.Args) {
				return Null
			}
			if o.Field != "" {
				if argLocal, ok := inv.Args[idx].(*jimple.Local); ok {
					return e.loadField(argLocal, o.Field)
				}
				return Null
			}
			return argOrigins[idx]
		default:
			return Null
		}
	}
	out := Calc(act, in)

	// Polymorphic returns: a virtual/interface call on a controllable
	// receiver may dispatch to any override, so its reference-typed
	// return is at least as controllable as the receiver (the Fig. 1
	// pattern: valObj.toString() feeding exec). Primitive returns cannot
	// carry object graphs and stay as summarized.
	if (inv.Kind == jimple.InvokeVirtual || inv.Kind == jimple.InvokeInterface) &&
		inv.ReturnType.IsReference() && baseOrigin.Controllable() {
		out[SlotReturnValue] = out[SlotReturnValue].join(baseOrigin)
	}

	// correct: fold the callee's effects back into the caller's localMap
	// (Formula 3) — out entries win over existing bindings. Application
	// is two-phase and sorted: whole-slot rebinds first (they destroy
	// field cells), then field-level updates, so the result is
	// independent of map iteration order.
	slots := sortutil.SortedKeysFunc(out, func(a, b Slot) bool {
		if (a.Field == "") != (b.Field == "") {
			return a.Field == ""
		}
		return a.String() < b.String()
	})
	for _, slot := range slots {
		origin := out[slot]
		switch slot.Kind {
		case SlotThis:
			if inv.Base == nil {
				continue
			}
			if slot.Field != "" {
				e.storeField(inv.Base, slot.Field, origin)
			} else {
				e.setLocal(inv.Base, origin)
			}
		case SlotParam:
			idx := slot.Param - 1
			if idx < 0 || idx >= len(inv.Args) {
				continue
			}
			argLocal, ok := inv.Args[idx].(*jimple.Local)
			if !ok {
				continue
			}
			if slot.Field != "" {
				e.storeField(argLocal, slot.Field, origin)
			} else {
				e.setLocal(argLocal, origin)
			}
		}
	}
	return out[SlotReturnValue], nil
}

// recordReturn folds one return statement into the method's Action
// (Algorithm 1 lines 5–7), joining with previously seen returns.
func (r *sccRunner) recordReturn(body *jimple.Body, st *jimple.ReturnStmt, e env, action Action) {
	joinInto := func(slot Slot, o Origin) {
		if cur, ok := action[slot]; ok {
			action[slot] = cur.join(o)
		} else {
			action[slot] = o
		}
	}
	if st.Op != nil {
		joinInto(SlotReturnValue, r.eval(st.Op, e))
	} else {
		joinInto(SlotReturnValue, Null)
	}
	if !body.Method.IsStatic() {
		joinInto(SlotThisValue, This)
		for k, v := range e {
			if field, ok := fieldOfPrefix(k, "@this."); ok {
				joinInto(Slot{Kind: SlotThis, Field: field}, v)
			}
		}
	}
	for i, p := range body.Params {
		joinInto(FinalParam(i+1), e.localOrigin(p))
		prefix := fmt.Sprintf("@p%d.", i+1)
		for k, v := range e {
			if field, ok := fieldOfPrefix(k, prefix); ok {
				joinInto(Slot{Kind: SlotParam, Param: i + 1, Field: field}, v)
			}
		}
	}
}

func fieldOfPrefix(key, prefix string) (string, bool) {
	if len(key) > len(prefix) && key[:len(prefix)] == prefix {
		return key[len(prefix):], true
	}
	return "", false
}

// worklist is a priority worklist ordered by reverse post-order position.
type worklist struct {
	order  map[int]int
	queued map[int]bool
	items  []int
}

func newWorklist(order map[int]int) *worklist {
	return &worklist{order: order, queued: make(map[int]bool)}
}

func (w *worklist) push(n int) {
	if w.queued[n] {
		return
	}
	w.queued[n] = true
	w.items = append(w.items, n)
}

func (w *worklist) pop() int {
	best := 0
	for i := 1; i < len(w.items); i++ {
		if w.order[w.items[i]] < w.order[w.items[best]] {
			best = i
		}
	}
	n := w.items[best]
	w.items = append(w.items[:best], w.items[best+1:]...)
	delete(w.queued, n)
	return n
}

func (w *worklist) empty() bool { return len(w.items) == 0 }
