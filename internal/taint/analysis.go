package taint

import (
	"fmt"
	"sort"
	"sync"

	"tabby/internal/cfg"
	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/parallel"
	"tabby/internal/sortutil"
)

// CallEdge is one method-call site discovered by the analysis, annotated
// with its Polluted_Position. Pruned edges (all-∞ PP) are recorded for
// statistics but excluded from the Precise Call Graph (§III-C).
type CallEdge struct {
	Caller      java.MethodKey
	CalleeClass string // statically referenced class
	CalleeSub   string // callee sub-signature
	Kind        jimple.InvokeKind
	PP          PP
	StmtIndex   int
	Pruned      bool
}

// Callee returns the statically referenced callee method key.
func (e CallEdge) Callee() java.MethodKey {
	return java.MethodKey(e.CalleeClass + "#" + e.CalleeSub)
}

// Result holds everything the controllability analysis computed.
type Result struct {
	// Actions maps each analyzed method to its summary (Table III).
	Actions map[java.MethodKey]Action
	// Calls maps each caller to its call edges in statement order.
	Calls map[java.MethodKey][]CallEdge
	// TotalCalls and PrunedCalls summarize the pruning effectiveness.
	TotalCalls  int
	PrunedCalls int
}

// MaxCallDepth is a doc-deprecated alias marking where the removed
// Options.MaxCallDepth knob used to live. The SCC wave scheduler memoizes
// callee summaries bottom-up, so the analysis needs no depth bound; the
// knob was a no-op for several releases and the field is now gone.
//
// Deprecated: the value was always ignored; stop passing a depth.
const MaxCallDepth = 0

// Options tunes the analysis.
type Options struct {
	// MaxIterations bounds the per-method dataflow iterations as a safety
	// valve. Zero means the default (64 passes).
	MaxIterations int
	// DisableInterprocedural replaces every callee summary with the
	// optimistic default ("parameters keep their controllability") — the
	// ablation of §III-C's claim that interprocedural Action analysis is
	// what keeps the false-positive rate down. Tools without it "default
	// to [the value] not changing (still controllable)".
	DisableInterprocedural bool
	// Workers bounds the number of concurrent per-method analyses inside
	// one scheduling wave. Zero selects runtime.GOMAXPROCS(0); 1 runs
	// the exact sequential path. Output is identical at every setting.
	Workers int
}

const defaultMaxIterations = 64

// Analyze runs the controllability points-to analysis (Algorithm 1) over
// every method body in the program.
//
// Scheduling: the method-call dependency graph is condensed into
// strongly connected components (Tarjan) and the per-method fixpoints
// run bottom-up in reverse-topological waves — every summary a method
// consults was memoized in an earlier wave, and independent components
// within one wave are analyzed concurrently (Options.Workers). Inside a
// cyclic component the paper's cache-as-cycle-breaker applies: a member
// whose analysis is in progress summarizes as the identity Action.
func Analyze(prog *jimple.Program, opts Options) (*Result, error) {
	res, _, err := AnalyzeWithCache(prog, opts, nil)
	return res, err
}

// AnalyzeWithCache is Analyze with an optional cross-run summary cache.
// Components whose cone fingerprint hits the cache are installed into the
// result without running their fixpoints; everything else is analyzed as
// usual and inserted afterwards. Because a hit requires the component's
// entire dependency cone to be unchanged, the Result is byte-identical to
// what a cacheless run would produce. A nil cache makes this exactly
// Analyze.
func AnalyzeWithCache(prog *jimple.Program, opts Options, cache *SummaryCache) (*Result, CacheStats, error) {
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = defaultMaxIterations
	}
	keys := sortutil.SortedKeys(prog.Bodies)
	dep := buildDepGraph(prog, opts, keys)
	succs := func(i int) []int { return dep.succs[i] }
	comps, compOf := parallel.SCCs(len(keys), succs)
	waves := parallel.Waves(comps, compOf, succs)

	a := &analyzer{
		prog:      prog,
		opts:      opts,
		dep:       dep,
		compOf:    compOf,
		summaries: make([]*summary, len(keys)),
		calls:     make([][]CallEdge, len(keys)),
		synth:     make(map[synthKey]*summary),
	}
	stats := CacheStats{Components: len(comps)}
	var coneFPs []string
	cachedComp := make([]bool, len(comps))
	if cache != nil {
		coneFPs = coneFingerprints(prog, opts, keys, dep, comps, compOf, cache)
		for ci, fp := range coneFPs {
			ms, ok := cache.lookup(fp)
			if !ok {
				continue
			}
			// A hit's members must all resolve to current body indices;
			// anything else (fingerprint collision) is treated as a miss.
			idxs := make([]int, len(ms))
			valid := true
			for i, m := range ms {
				idx, ok := dep.indexOf[m.Key]
				if !ok {
					valid = false
					break
				}
				idxs[i] = idx
			}
			if !valid {
				continue
			}
			cachedComp[ci] = true
			stats.ComponentHits++
			stats.MethodsReused += len(ms)
			// Installing before the waves run is safe: only dependents read
			// these entries, and they are all scheduled in later waves.
			for i, m := range ms {
				a.summaries[idxs[i]] = &summary{act: m.Action, plan: buildPlan(m.Action)}
				a.calls[idxs[i]] = m.Calls
			}
		}
	}
	stats.MethodsAnalyzed = len(keys) - stats.MethodsReused

	for _, wave := range waves {
		pending := wave
		if stats.ComponentHits > 0 {
			pending = make([]int, 0, len(wave))
			for _, c := range wave {
				if !cachedComp[c] {
					pending = append(pending, c)
				}
			}
		}
		// Runners write their summaries directly into the analyzer's
		// slices at their own component's indices: distinct components own
		// distinct indices, and cross-component reads only ever target
		// earlier waves, ordered by the wave barrier below.
		runners := parallel.Map(opts.Workers, pending, func(_ int, comp int) *sccRunner {
			r := &sccRunner{a: a, comp: comp, inProgress: make(map[int]bool)}
			r.run(comps[comp])
			return r
		})
		for _, r := range runners {
			if r.err != nil {
				return nil, stats, r.err
			}
		}
	}

	if cache != nil {
		for ci, members := range comps {
			if cachedComp[ci] {
				continue
			}
			ms := make([]MethodSummary, 0, len(members))
			for _, m := range members {
				ms = append(ms, MethodSummary{Key: keys[m], Action: a.summaries[m].act, Calls: a.calls[m]})
			}
			cache.put(coneFPs[ci], ms)
		}
	}

	res := &Result{
		Actions: make(map[java.MethodKey]Action, len(keys)),
		Calls:   make(map[java.MethodKey][]CallEdge, len(keys)),
	}
	for i, k := range keys {
		res.Actions[k] = a.summaries[i].act
		res.Calls[k] = a.calls[i]
		for _, c := range a.calls[i] {
			res.TotalCalls++
			if c.Pruned {
				res.PrunedCalls++
			}
		}
	}
	return res, stats, nil
}

// summary is one method's memoized Action plus its pre-compiled
// application plan. Summaries are written once (under their owner's wave)
// and read-only afterwards.
type summary struct {
	act  Action
	plan *actionPlan
}

// actionPlan is an Action flattened for the invoke transfer: the non-return
// slots in the exact two-phase application order (whole-slot rebinds before
// field updates, each group sorted by rendered slot name) with their callee
// origins, plus the return-slot origin. Compiling the plan once per
// memoized Action removes the per-call-site map allocation and sort.
type actionPlan struct {
	slots     []Slot
	origins   []Origin
	retOrigin Origin
	hasRet    bool
}

func buildPlan(act Action) *actionPlan {
	p := &actionPlan{}
	p.retOrigin, p.hasRet = act[SlotReturnValue]
	slots := make([]Slot, 0, len(act))
	for s := range act {
		if s.Kind != SlotReturn {
			slots = append(slots, s)
		}
	}
	sort.Slice(slots, func(i, j int) bool {
		a, b := slots[i], slots[j]
		if (a.Field == "") != (b.Field == "") {
			return a.Field == ""
		}
		return a.String() < b.String()
	})
	p.slots = slots
	p.origins = make([]Origin, len(slots))
	for i, s := range slots {
		p.origins[i] = act[s]
	}
	return p
}

// synthKey identifies a synthetic summary: the identity Action (dynamic
// invokes, in-progress cycle members) or the optimistic one (unresolvable
// callees, interprocedural ablation) for a given arity.
type synthKey struct {
	optimistic bool
	n          int
	static     bool
}

// analyzer holds the cross-wave state: memoized summaries and call edges
// of every completed component, indexed by body index (dep.keys order).
type analyzer struct {
	prog      *jimple.Program
	opts      Options
	dep       *depGraph
	compOf    []int
	summaries []*summary
	calls     [][]CallEdge

	synthMu sync.RWMutex
	synth   map[synthKey]*summary

	scratch sync.Pool // *methodScratch
}

func (a *analyzer) getScratch() *methodScratch {
	if v := a.scratch.Get(); v != nil {
		return v.(*methodScratch)
	}
	return &methodScratch{ct: newCellTable()}
}

func (a *analyzer) putScratch(ms *methodScratch) {
	ms.sites = nil
	a.scratch.Put(ms)
}

// synthSummary returns the shared identity/optimistic summary for the
// arity. The Actions are never mutated, so one instance serves every call
// site of the same shape.
func (a *analyzer) synthSummary(optimistic bool, n int, static bool) *summary {
	k := synthKey{optimistic: optimistic, n: n, static: static}
	a.synthMu.RLock()
	s := a.synth[k]
	a.synthMu.RUnlock()
	if s != nil {
		return s
	}
	var act Action
	if optimistic {
		act = OptimisticAction(n, static)
	} else {
		act = IdentityAction(n, static)
	}
	s = &summary{act: act, plan: buildPlan(act)}
	a.synthMu.Lock()
	if prev := a.synth[k]; prev != nil {
		s = prev
	} else {
		a.synth[k] = s
	}
	a.synthMu.Unlock()
	return s
}

// methodScratch is the per-method-analysis working set: the cell table,
// pooled environments, the RPO worklist heap, and the per-statement edge
// buffers. One analysis owns one scratch exclusively; recursive analyses
// inside a cyclic component acquire their own from the analyzer pool.
type methodScratch struct {
	ct    *cellTable
	pool  envPool
	sites []callSite

	inStates []env
	visited  []bool
	rpoPos   []int
	queued   []bool
	heap     []int
	siteAt   []int32
	edges    []CallEdge
	hasEdge  []bool

	args   []Origin
	mapped []Origin
}

func growBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	clear(b)
	return b
}

// prepare sizes every per-statement buffer for the body and indexes its
// call sites by statement.
func (ms *methodScratch) prepare(body *jimple.Body, numStmts int, sites []callSite) {
	ms.ct.reset(body)
	ms.sites = sites
	n := numStmts
	if len(body.Stmts) > n {
		n = len(body.Stmts)
	}
	if cap(ms.inStates) < n {
		ms.inStates = make([]env, n)
	} else {
		ms.inStates = ms.inStates[:n]
		clear(ms.inStates)
	}
	ms.visited = growBools(ms.visited, n)
	ms.queued = growBools(ms.queued, n)
	ms.hasEdge = growBools(ms.hasEdge, n)
	if cap(ms.rpoPos) < n {
		ms.rpoPos = make([]int, n)
	} else {
		ms.rpoPos = ms.rpoPos[:n]
	}
	if cap(ms.siteAt) < n {
		ms.siteAt = make([]int32, n)
	} else {
		ms.siteAt = ms.siteAt[:n]
	}
	for i := range ms.siteAt {
		ms.siteAt[i] = -1
	}
	if cap(ms.edges) < n {
		ms.edges = make([]CallEdge, n)
	} else {
		ms.edges = ms.edges[:n]
	}
	ms.heap = ms.heap[:0]
	for si := range sites {
		ms.siteAt[sites[si].stmt] = int32(si)
	}
}

// push enqueues a node on the worklist heap keyed by RPO position.
func (ms *methodScratch) push(n int) {
	if ms.queued[n] {
		return
	}
	ms.queued[n] = true
	ms.heap = append(ms.heap, n)
	h, pos := ms.heap, ms.rpoPos
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if pos[h[p]] <= pos[h[i]] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

// pop removes and returns the queued node earliest in RPO — the same node
// the previous linear-scan worklist selected, found in O(log n).
func (ms *methodScratch) pop() int {
	h, pos := ms.heap, ms.rpoPos
	n := h[0]
	last := len(h) - 1
	h[0] = h[last]
	ms.heap = h[:last]
	h = ms.heap
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h) && pos[h[l]] < pos[h[s]] {
			s = l
		}
		if r < len(h) && pos[h[r]] < pos[h[s]] {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	ms.queued[n] = false
	return n
}

// sccRunner analyzes the members of one strongly connected component,
// writing results directly into the analyzer's index-addressed slices.
type sccRunner struct {
	a          *analyzer
	comp       int
	inProgress map[int]bool
	err        error
}

// run analyzes every member; within a cyclic component the recursion
// below fills in the rest on demand.
func (r *sccRunner) run(members []int) {
	for _, idx := range members {
		if _, err := r.methodSummary(idx); err != nil {
			r.err = err
			return
		}
	}
}

// methodSummary returns the memoized summary for the method, running
// doMethodAnalysis on first use. A cycle back into a member whose
// analysis is in progress yields the identity summary, the paper's cache
// acting as its cycle-breaker.
func (r *sccRunner) methodSummary(idx int) (*summary, error) {
	if s := r.a.summaries[idx]; s != nil { // this component or an earlier wave
		return s, nil
	}
	body := r.a.dep.bodies[idx]
	if body == nil {
		return nil, fmt.Errorf("taint: no body for %s", r.a.dep.keys[idx])
	}
	static := body.Method.IsStatic()
	n := len(body.Method.Params)
	if r.a.compOf[idx] != r.comp {
		// Every out-of-component dependency is scheduled in an earlier
		// wave; missing means the dependency graph under-approximated.
		return nil, fmt.Errorf("taint: summary for %s not scheduled before its callers", r.a.dep.keys[idx])
	}
	if r.inProgress[idx] {
		return r.a.synthSummary(false, n, static), nil
	}
	r.inProgress[idx] = true
	defer delete(r.inProgress, idx)
	act, calls, err := r.doMethodAnalysis(idx)
	if err != nil {
		return nil, fmt.Errorf("taint: analyze %s: %w", r.a.dep.keys[idx], err)
	}
	s := &summary{act: act, plan: buildPlan(act)}
	r.a.summaries[idx] = s
	r.a.calls[idx] = calls
	return s, nil
}

// calleeSummary resolves the summary for a call: the resolved body's
// summary when available (site.target), an optimistic one for
// abstract/phantom callees, and the opaque identity for dynamic invokes.
func (r *sccRunner) calleeSummary(inv *jimple.InvokeExpr, target int32) (*summary, error) {
	static := inv.Kind == jimple.InvokeStatic
	n := len(inv.ParamTypes)
	if inv.Kind == jimple.InvokeDynamic {
		// Reflection/dynamic proxy: deliberately opaque (§V-B).
		return r.a.synthSummary(false, n, static), nil
	}
	if r.a.opts.DisableInterprocedural || target < 0 {
		return r.a.synthSummary(true, n, static), nil
	}
	return r.methodSummary(int(target))
}

// doMethodAnalysis runs the per-method dataflow of Algorithm 1 and
// assembles the method's Action plus its call edges.
func (r *sccRunner) doMethodAnalysis(idx int) (Action, []CallEdge, error) {
	body := r.a.dep.bodies[idx]
	graph, err := cfg.Build(body)
	if err != nil {
		return nil, nil, err
	}
	numStmts := graph.NumNodes()
	if numStmts == 0 {
		return IdentityAction(len(body.Method.Params), body.Method.IsStatic()), nil, nil
	}
	action := make(Action)

	ms := r.a.getScratch()
	defer r.a.putScratch(ms)
	ms.prepare(body, numStmts, r.a.dep.sites[idx])

	rpo := graph.ReversePostOrder()
	for i, n := range rpo {
		ms.rpoPos[n] = i
	}
	ms.visited[0] = true
	ms.inStates[0] = ms.pool.get(0)
	ms.push(0)

	iterations := 0
	maxVisits := r.a.opts.MaxIterations * numStmts
	for len(ms.heap) > 0 {
		if iterations++; iterations > maxVisits {
			// Safety valve: bail out with what we have rather than spin.
			break
		}
		node := ms.pop()
		out := ms.pool.copyOf(ms.inStates[node])
		out, err := r.transfer(ms, body, node, out, action)
		if err != nil {
			return nil, nil, err
		}
		for _, succ := range graph.Succs(node) {
			if !ms.visited[succ] {
				ms.visited[succ] = true
				ms.inStates[succ] = ms.pool.copyOf(out)
				ms.push(succ)
			} else if envJoin(&ms.inStates[succ], out) {
				ms.push(succ)
			}
		}
		ms.pool.put(out)
	}
	for i := 0; i < numStmts; i++ {
		if ms.visited[i] {
			ms.pool.put(ms.inStates[i])
			ms.inStates[i] = nil
		}
	}

	r.finishAction(body, action)
	count := 0
	for i := 0; i < numStmts; i++ {
		if ms.hasEdge[i] {
			count++
		}
	}
	var calls []CallEdge
	if count > 0 {
		calls = make([]CallEdge, 0, count)
		for i := 0; i < numStmts; i++ {
			if ms.hasEdge[i] {
				calls = append(calls, ms.edges[i])
			}
		}
	}
	return action, calls, nil
}

// finishAction fills in slots no return statement touched: a method with
// no reachable return (e.g. one that always throws) still reports the
// identity of this and unmodified params.
func (r *sccRunner) finishAction(body *jimple.Body, action Action) {
	if !body.Method.IsStatic() {
		if _, ok := action[SlotThisValue]; !ok {
			action[SlotThisValue] = This
		}
	} else if _, ok := action[SlotThisValue]; !ok {
		action[SlotThisValue] = Null
	}
	for i := range body.Method.Params {
		slot := FinalParam(i + 1)
		if _, ok := action[slot]; !ok {
			action[slot] = Param(i + 1)
		}
	}
	if _, ok := action[SlotReturnValue]; !ok {
		action[SlotReturnValue] = Null
	}
}

// transfer interprets one statement over the environment, recording call
// edges and Action contributions as side effects.
func (r *sccRunner) transfer(ms *methodScratch, body *jimple.Body, node int, e env, action Action) (env, error) {
	switch st := body.Stmts[node].(type) {
	case *jimple.IdentityStmt:
		switch rhs := st.RHS.(type) {
		case *jimple.ThisRef:
			ms.ct.setLocal(&e, st.Local, This)
		case *jimple.ParamRef:
			ms.ct.setLocal(&e, st.Local, Param(rhs.Index+1))
		}
	case *jimple.AssignStmt:
		if err := r.transferAssign(ms, body, node, st, &e); err != nil {
			return nil, err
		}
	case *jimple.InvokeStmt:
		if _, err := r.transferInvoke(ms, body, node, st.Invoke, &e); err != nil {
			return nil, err
		}
	case *jimple.ReturnStmt:
		r.recordReturn(ms, body, st, e, action)
	case *jimple.IfStmt, *jimple.GotoStmt, *jimple.SwitchStmt, *jimple.ThrowStmt, *jimple.NopStmt:
		// Conditions never transfer controllability (Table IV has no rule
		// for them); path-insensitivity here is exactly the source of the
		// paper's residual false positives (§IV-E).
	}
	return e, nil
}

func (r *sccRunner) transferAssign(ms *methodScratch, body *jimple.Body, node int, st *jimple.AssignStmt, e *env) error {
	var rhs Origin
	switch rv := st.RHS.(type) {
	case *jimple.InvokeExpr:
		ret, err := r.transferInvoke(ms, body, node, rv, e)
		if err != nil {
			return err
		}
		rhs = ret
	default:
		rhs = r.eval(ms, st.RHS, *e)
	}
	switch lhs := st.LHS.(type) {
	case *jimple.Local:
		ms.ct.setLocal(e, lhs, rhs)
		if src, ok := st.RHS.(*jimple.Local); ok {
			ms.ct.copyLocalFields(e, lhs, src)
		}
	case *jimple.FieldRef:
		if lhs.IsStatic() {
			envSet(e, ms.ct.ensure(staticCell(lhs.Class, lhs.Field)), rhs)
		} else {
			ms.ct.storeField(e, lhs.Base, lhs.Field, rhs)
		}
	case *jimple.ArrayRef:
		// Array elements share one pseudo-field "[]" (Table IV array rows).
		ms.ct.storeField(e, lhs.Base, "[]", rhs)
	default:
		return fmt.Errorf("unsupported assignment target %T", st.LHS)
	}
	return nil
}

// eval computes the origin of a non-invoke value (Table IV rows).
func (r *sccRunner) eval(ms *methodScratch, v jimple.Value, e env) Origin {
	switch val := v.(type) {
	case *jimple.Local:
		return ms.ct.localOrigin(e, val)
	case *jimple.ThisRef:
		return This
	case *jimple.ParamRef:
		return Param(val.Index + 1)
	case *jimple.CastExpr:
		return r.eval(ms, val.Op, e) // forced type conversion: b → a
	case *jimple.FieldRef:
		if val.IsStatic() {
			if c := ms.ct.lookup(staticCell(val.Class, val.Field)); c >= 0 {
				if o := e.at(c); o.Kind != 0 {
					return o
				}
			}
			return Null
		}
		return ms.ct.loadField(e, val.Base, val.Field)
	case *jimple.ArrayRef:
		return ms.ct.loadField(e, val.Base, "[]")
	case *jimple.BinopExpr:
		// String concatenation (Jimple's StringBuilder.append chains)
		// propagates taint: "cmd"+p is controllable when p is. Other
		// operators yield primitives, which are uncontrollable.
		if val.Op == jimple.OpAdd && val.Type().Equal(java.StringType) {
			return r.eval(ms, val.L, e).join(r.eval(ms, val.R, e))
		}
		return Null
	default:
		// new, constants, instanceof: uncontrollable.
		return Null
	}
}

// mapOrigin maps one callee-frame origin to the caller's frame (Fig. 5d):
// the in() function of Formula 2.
func (r *sccRunner) mapOrigin(ms *methodScratch, e env, inv *jimple.InvokeExpr, baseOrigin Origin, args []Origin, o Origin) Origin {
	switch o.Kind {
	case OriginNull:
		return Null
	case OriginThis:
		if inv.Base == nil {
			return Null
		}
		if o.Field != "" {
			return ms.ct.loadField(e, inv.Base, o.Field)
		}
		return baseOrigin
	case OriginParam:
		idx := o.Param - 1
		if idx < 0 || idx >= len(inv.Args) {
			return Null
		}
		if o.Field != "" {
			if argLocal, ok := inv.Args[idx].(*jimple.Local); ok {
				return ms.ct.loadField(e, argLocal, o.Field)
			}
			return Null
		}
		return args[idx]
	default:
		return Null
	}
}

// transferInvoke handles both call statement forms of Table IV: it
// computes the PP, records the call edge, applies the callee's Action via
// calc (Formula 2) and correct (Formula 3), and returns the origin of the
// call's return value.
func (r *sccRunner) transferInvoke(ms *methodScratch, body *jimple.Body, node int, inv *jimple.InvokeExpr, e *env) (Origin, error) {
	var baseOrigin Origin = Null
	if inv.Base != nil {
		baseOrigin = ms.ct.localOrigin(*e, inv.Base)
	}
	args := ms.args[:0]
	for _, arg := range inv.Args {
		args = append(args, r.eval(ms, arg, *e))
	}
	ms.args = args

	// Polluted_Position: receiver then arguments. Dynamic invokes record
	// no edge, so their PP is never materialized. On refixpoint visits the
	// edge's existing PP buffer is refilled in place — only this analysis
	// can see it until the method completes.
	var target int32 = -1
	if inv.Kind != jimple.InvokeDynamic {
		site := &ms.sites[ms.siteAt[node]]
		target = site.target
		var pp PP
		if ms.hasEdge[node] {
			pp = ms.edges[node].PP
		} else {
			pp = make(PP, 1+len(inv.Args))
		}
		pp[0] = baseOrigin.Weight()
		for i := range args {
			pp[i+1] = args[i].Weight()
		}
		ms.edges[node] = CallEdge{
			Caller:      body.Method.Key(),
			CalleeClass: inv.Class,
			CalleeSub:   site.sub,
			Kind:        inv.Kind,
			PP:          pp,
			StmtIndex:   node,
			Pruned:      pp.AllUncontrollable(),
		}
		ms.hasEdge[node] = true
	}

	sum, err := r.calleeSummary(inv, target)
	if err != nil {
		return Null, err
	}
	plan := sum.plan

	// calc (Formula 2): map every summarized origin to the caller frame
	// before any of them is applied — application mutates the env the
	// mapping reads.
	mapped := ms.mapped[:0]
	for _, o := range plan.origins {
		mapped = append(mapped, r.mapOrigin(ms, *e, inv, baseOrigin, args, o))
	}
	ms.mapped = mapped
	var ret Origin
	if plan.hasRet {
		ret = r.mapOrigin(ms, *e, inv, baseOrigin, args, plan.retOrigin)
	}

	// Polymorphic returns: a virtual/interface call on a controllable
	// receiver may dispatch to any override, so its reference-typed
	// return is at least as controllable as the receiver (the Fig. 1
	// pattern: valObj.toString() feeding exec). Primitive returns cannot
	// carry object graphs and stay as summarized.
	if (inv.Kind == jimple.InvokeVirtual || inv.Kind == jimple.InvokeInterface) &&
		inv.ReturnType.IsReference() && baseOrigin.Controllable() {
		ret = ret.join(baseOrigin)
	}

	// correct (Formula 3): fold the callee's effects back into the
	// caller's localMap — plan entries win over existing bindings. The
	// plan's order is the original two-phase sorted order: whole-slot
	// rebinds first (they destroy field cells), then field-level updates.
	for i, slot := range plan.slots {
		origin := mapped[i]
		switch slot.Kind {
		case SlotThis:
			if inv.Base == nil {
				continue
			}
			if slot.Field != "" {
				ms.ct.storeField(e, inv.Base, slot.Field, origin)
			} else {
				ms.ct.setLocal(e, inv.Base, origin)
			}
		case SlotParam:
			idx := slot.Param - 1
			if idx < 0 || idx >= len(inv.Args) {
				continue
			}
			argLocal, ok := inv.Args[idx].(*jimple.Local)
			if !ok {
				continue
			}
			if slot.Field != "" {
				ms.ct.storeField(e, argLocal, slot.Field, origin)
			} else {
				ms.ct.setLocal(e, argLocal, origin)
			}
		}
	}
	return ret, nil
}

// recordReturn folds one return statement into the method's Action
// (Algorithm 1 lines 5–7), joining with previously seen returns.
func (r *sccRunner) recordReturn(ms *methodScratch, body *jimple.Body, st *jimple.ReturnStmt, e env, action Action) {
	joinInto := func(slot Slot, o Origin) {
		if cur, ok := action[slot]; ok {
			action[slot] = cur.join(o)
		} else {
			action[slot] = o
		}
	}
	ct := ms.ct
	if st.Op != nil {
		joinInto(SlotReturnValue, r.eval(ms, st.Op, e))
	} else {
		joinInto(SlotReturnValue, Null)
	}
	if !body.Method.IsStatic() {
		joinInto(SlotThisValue, This)
		for _, c := range ct.thisFields {
			if v := e.at(c); v.Kind != 0 {
				joinInto(Slot{Kind: SlotThis, Field: ct.cells[c].name}, v)
			}
		}
	}
	for i, p := range body.Params {
		joinInto(FinalParam(i+1), ct.localOrigin(e, p))
		if i < len(ct.paramFields) {
			for _, c := range ct.paramFields[i] {
				if v := e.at(c); v.Kind != 0 {
					joinInto(Slot{Kind: SlotParam, Param: i + 1, Field: ct.cells[c].name}, v)
				}
			}
		}
	}
}
