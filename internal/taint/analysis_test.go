package taint

import (
	"strings"
	"testing"

	"tabby/internal/java"
	"tabby/internal/jimple"
)

var (
	typeA = java.ClassType("fig5.A")
	typeB = java.ClassType("fig5.B")
)

// buildFig5Program reproduces the paper's Fig. 5 source:
//
//	public A example(A a, B b) {       // in class fig5.C
//	    A a1 = new A();
//	    A a2 = a;
//	    a = a1;
//	    B b1 = B.exchange(a, b);
//	    return a2;
//	}
//	public static B exchange(A a, B b) {  // in class fig5.B
//	    a.b = b;
//	    b = new B();
//	    return a.b;
//	}
func buildFig5Program(t *testing.T) (*jimple.Program, *java.Method, *java.Method) {
	t.Helper()
	classA := &java.Class{Name: "fig5.A", Modifiers: java.ModPublic, Super: java.ObjectClass}
	classA.AddField(&java.Field{Name: "b", Type: typeB})

	classB := &java.Class{Name: "fig5.B", Modifiers: java.ModPublic, Super: java.ObjectClass}
	exchange := classB.AddMethod(&java.Method{
		Name: "exchange", Params: []java.Type{typeA, typeB}, Return: typeB,
		Modifiers: java.ModPublic | java.ModStatic,
	})

	classC := &java.Class{Name: "fig5.C", Modifiers: java.ModPublic, Super: java.ObjectClass}
	example := classC.AddMethod(&java.Method{
		Name: "example", Params: []java.Type{typeA, typeB}, Return: typeA,
		Modifiers: java.ModPublic,
	})

	h, err := java.NewHierarchy([]*java.Class{classA, classB, classC})
	if err != nil {
		t.Fatal(err)
	}
	prog := jimple.NewProgram(h)

	// exchange body
	bb := jimple.NewBodyBuilder(exchange)
	bb.FieldStore(bb.Param(0), "fig5.A", "b", typeB, bb.Param(1)) // a.b = b
	bb.New(bb.Param(1), typeB)                                    // b = new B()
	ret := bb.Temp(typeB)
	bb.FieldLoad(ret, bb.Param(0), "fig5.A", "b", typeB) // $t = a.b
	bb.Return(ret)                                       // return $t
	prog.SetBody(bb.Body())

	// example body
	bb = jimple.NewBodyBuilder(example)
	a1 := bb.Local("a1", typeA)
	a2 := bb.Local("a2", typeA)
	b1 := bb.Local("b1", typeB)
	bb.New(a1, typeA)                   // a1 = new A()
	bb.Assign(a2, bb.Param(0))          // a2 = a
	bb.Assign(bb.Param(0), a1)          // a = a1
	bb.AssignInvokeStatic(b1, "fig5.B", // b1 = B.exchange(a, b)
		"exchange", []java.Type{typeA, typeB}, typeB, bb.Param(0), bb.Param(1))
	bb.Return(a2)
	prog.SetBody(bb.Body())

	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	return prog, example, exchange
}

func TestFig5ExchangeAction(t *testing.T) {
	prog, _, exchange := buildFig5Program(t)
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	act := res.Actions[exchange.Key()]
	if act == nil {
		t.Fatal("no action for exchange")
	}
	// Paper Fig. 5(b): {"final-param-1": "init-param-1",
	// "final-param-1.b": "init-param-2", "final-param-2": "null",
	// "return": "init-param-2", "this": "null"}
	want := map[Slot]Origin{
		FinalParam(1):                           Param(1),
		{Kind: SlotParam, Param: 1, Field: "b"}: Param(2),
		FinalParam(2):                           Null,
		SlotReturnValue:                         Param(2),
		SlotThisValue:                           Null,
	}
	for slot, origin := range want {
		if got := act[slot]; got != origin {
			t.Errorf("exchange Action[%s] = %s, want %s", slot, got, origin)
		}
	}
	if len(act) != len(want) {
		t.Errorf("exchange Action has %d entries, want %d: %s", len(act), len(want), act)
	}
}

func TestFig5ExamplePPAndAction(t *testing.T) {
	prog, example, _ := buildFig5Program(t)
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	calls := res.Calls[example.Key()]
	if len(calls) != 1 {
		t.Fatalf("example has %d call edges, want 1", len(calls))
	}
	call := calls[0]
	// Paper Fig. 5(c): PP [∞,∞,2].
	if got := call.PP.String(); got != "[∞,∞,2]" {
		t.Errorf("PP = %s, want [∞,∞,2]", got)
	}
	if call.Pruned {
		t.Error("controllable call must not be pruned")
	}
	if call.CalleeClass != "fig5.B" || call.CalleeSub != "exchange(fig5.A,fig5.B)" {
		t.Errorf("callee = %s#%s", call.CalleeClass, call.CalleeSub)
	}

	act := res.Actions[example.Key()]
	// return a2 — the content of the original parameter a (Fig. 5a).
	if got := act[SlotReturnValue]; got != Param(1) {
		t.Errorf("example return origin = %s, want init-param-1", got)
	}
	// Fig. 5(d) corrected localMap: a:∞ and b:∞ after the call, so both
	// final params end uncontrollable.
	if got := act[FinalParam(1)]; got != Null {
		t.Errorf("example final-param-1 = %s, want null", got)
	}
	if got := act[FinalParam(2)]; got != Null {
		t.Errorf("example final-param-2 = %s, want null", got)
	}
	// The a.b:2 cell of Fig. 5(d) belongs to the rebound local a — which
	// points at the fresh a1 object, not the caller's original argument —
	// so example's own Action must NOT expose final-param-1.b.
	if got, ok := act[Slot{Kind: SlotParam, Param: 1, Field: "b"}]; ok {
		t.Errorf("example final-param-1.b leaked as %s; the store hit a fresh object", got)
	}
}

func TestActionString(t *testing.T) {
	prog, _, exchange := buildFig5Program(t)
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Actions[exchange.Key()].String()
	for _, want := range []string{
		`"final-param-1": "init-param-1"`,
		`"final-param-1.b": "init-param-2"`,
		`"final-param-2": "null"`,
		`"return": "init-param-2"`,
		`"this": "null"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Action.String() %s missing %s", s, want)
		}
	}
}

// oneMethodProg builds a single-class program with the given method and
// body builder callback.
func oneMethodProg(t *testing.T, params []java.Type, ret java.Type, static bool, build func(bb *jimple.BodyBuilder)) (*jimple.Program, java.MethodKey) {
	t.Helper()
	mods := java.ModPublic
	if static {
		mods |= java.ModStatic
	}
	c := &java.Class{Name: "t.C", Modifiers: java.ModPublic, Super: java.ObjectClass}
	c.AddField(&java.Field{Name: "f", Type: java.ObjectType})
	m := c.AddMethod(&java.Method{Name: "m", Params: params, Return: ret, Modifiers: mods})
	callee := c.AddMethod(&java.Method{Name: "callee", Params: []java.Type{java.ObjectType}, Return: java.ObjectType, Modifiers: java.ModPublic})
	h, err := java.NewHierarchy([]*java.Class{c})
	if err != nil {
		t.Fatal(err)
	}
	prog := jimple.NewProgram(h)
	bb := jimple.NewBodyBuilder(m)
	build(bb)
	prog.SetBody(bb.Body())
	// callee: identity-ish body returning its argument.
	cb := jimple.NewBodyBuilder(callee)
	cb.Return(cb.Param(0))
	prog.SetBody(cb.Body())
	return prog, m.Key()
}

func TestThisFieldControllable(t *testing.T) {
	// Calls on this.f must get PP[0] = 0: the linchpin of every
	// readObject-rooted chain.
	prog, key := oneMethodProg(t, nil, java.Void, false, func(bb *jimple.BodyBuilder) {
		v := bb.Temp(java.ObjectType)
		bb.FieldLoad(v, bb.This(), "t.C", "f", java.ObjectType)
		bb.InvokeVirtual(v, java.ObjectClass, "hashCode", nil, java.Int)
		bb.Return(nil)
	})
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	calls := res.Calls[key]
	if len(calls) != 1 {
		t.Fatalf("%d calls", len(calls))
	}
	if got := calls[0].PP.String(); got != "[0]" {
		t.Errorf("PP = %s, want [0]", got)
	}
}

func TestPruningNewObjectCall(t *testing.T) {
	// Calls whose receiver and args are all fresh objects are pruned.
	prog, key := oneMethodProg(t, nil, java.Void, false, func(bb *jimple.BodyBuilder) {
		v := bb.Temp(java.ObjectType)
		bb.New(v, java.ObjectType)
		bb.InvokeVirtual(v, java.ObjectClass, "hashCode", nil, java.Int)
		bb.Return(nil)
	})
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	calls := res.Calls[key]
	if len(calls) != 1 || !calls[0].Pruned {
		t.Fatalf("fresh-object call must be pruned: %+v", calls)
	}
	if res.PrunedCalls != 1 {
		t.Errorf("PrunedCalls = %d", res.PrunedCalls)
	}
}

func TestConstantsUncontrollable(t *testing.T) {
	prog, key := oneMethodProg(t, []java.Type{java.StringType}, java.Void, false, func(bb *jimple.BodyBuilder) {
		bb.InvokeVirtual(bb.This(), "t.C", "callee", []java.Type{java.ObjectType}, java.ObjectType, &jimple.StrConst{Val: "constant"})
		bb.Return(nil)
	})
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	call := res.Calls[key][0]
	if got := call.PP.String(); got != "[0,∞]" {
		t.Errorf("PP = %s, want [0,∞] (this controllable, constant not)", got)
	}
}

func TestConditionalJoinOverApproximates(t *testing.T) {
	// x = param on one branch, x = new on the other: at the join the
	// analysis keeps the controllable origin — the paper's documented FP
	// source (§IV-E).
	prog, key := oneMethodProg(t, []java.Type{java.ObjectType, java.Int}, java.ObjectType, false, func(bb *jimple.BodyBuilder) {
		x := bb.Local("x", java.ObjectType)
		ifIdx := bb.If(&jimple.BinopExpr{Op: jimple.OpEq, L: bb.Param(1), R: &jimple.IntConst{Val: 0}})
		bb.Assign(x, bb.Param(0)) // then: x = param0
		g := bb.Goto()
		elseIdx := bb.New(x, java.ObjectType) // else: x = new
		bb.PatchTarget(ifIdx, elseIdx)
		join := bb.Here()
		bb.PatchTarget(g, join)
		bb.Return(x)
	})
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	act := res.Actions[key]
	if got := act[SlotReturnValue]; got != Param(1) {
		t.Errorf("join must keep the controllable origin, got %s", got)
	}
}

func TestCastPreservesOrigin(t *testing.T) {
	prog, key := oneMethodProg(t, []java.Type{java.ObjectType}, java.StringType, false, func(bb *jimple.BodyBuilder) {
		s := bb.Local("s", java.StringType)
		bb.Assign(s, &jimple.CastExpr{Typ: java.StringType, Op: bb.Param(0)})
		bb.Return(s)
	})
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Actions[key][SlotReturnValue]; got != Param(1) {
		t.Errorf("cast must preserve origin, got %s", got)
	}
}

func TestArrayRoundTrip(t *testing.T) {
	// a[0] = param; x = a[1]: array cells collapse to one pseudo-field, so
	// the load sees the controllable store.
	arrType := java.ArrayOf(java.ObjectType)
	prog, key := oneMethodProg(t, []java.Type{java.ObjectType}, java.ObjectType, false, func(bb *jimple.BodyBuilder) {
		arr := bb.Local("arr", arrType)
		bb.Assign(arr, &jimple.NewArrayExpr{Elem: java.ObjectType, Size: &jimple.IntConst{Val: 2}})
		bb.Assign(&jimple.ArrayRef{Base: arr, Index: &jimple.IntConst{Val: 0}}, bb.Param(0))
		x := bb.Local("x", java.ObjectType)
		bb.Assign(x, &jimple.ArrayRef{Base: arr, Index: &jimple.IntConst{Val: 1}})
		bb.Return(x)
	})
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Actions[key][SlotReturnValue]; got != Param(1) {
		t.Errorf("array round trip lost origin: %s", got)
	}
}

func TestStaticFieldRoundTrip(t *testing.T) {
	prog, key := oneMethodProg(t, []java.Type{java.ObjectType}, java.ObjectType, true, func(bb *jimple.BodyBuilder) {
		bb.Assign(&jimple.FieldRef{Class: "t.C", Field: "sf", Typ: java.ObjectType}, bb.Param(0))
		x := bb.Local("x", java.ObjectType)
		bb.Assign(x, &jimple.FieldRef{Class: "t.C", Field: "sf", Typ: java.ObjectType})
		bb.Return(x)
	})
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Actions[key][SlotReturnValue]; got != Param(1) {
		t.Errorf("static field round trip lost origin: %s", got)
	}
}

func TestUnknownStaticUncontrollable(t *testing.T) {
	prog, key := oneMethodProg(t, nil, java.ObjectType, true, func(bb *jimple.BodyBuilder) {
		x := bb.Local("x", java.ObjectType)
		bb.Assign(x, &jimple.FieldRef{Class: "ext.Unknown", Field: "INSTANCE", Typ: java.ObjectType})
		bb.Return(x)
	})
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Actions[key][SlotReturnValue]; got != Null {
		t.Errorf("unknown static must be uncontrollable, got %s", got)
	}
}

func TestRecursionTerminates(t *testing.T) {
	c := &java.Class{Name: "r.C", Modifiers: java.ModPublic, Super: java.ObjectClass}
	m := c.AddMethod(&java.Method{Name: "rec", Params: []java.Type{java.ObjectType}, Return: java.ObjectType, Modifiers: java.ModPublic})
	h, err := java.NewHierarchy([]*java.Class{c})
	if err != nil {
		t.Fatal(err)
	}
	prog := jimple.NewProgram(h)
	bb := jimple.NewBodyBuilder(m)
	x := bb.Local("x", java.ObjectType)
	bb.AssignInvokeVirtual(x, bb.This(), "r.C", "rec", []java.Type{java.ObjectType}, java.ObjectType, bb.Param(0))
	bb.Return(x)
	prog.SetBody(bb.Body())
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Recursive summary falls back to identity: params unchanged; the
	// recursive call itself is still a (controllable) call edge.
	if len(res.Calls[m.Key()]) != 1 {
		t.Fatalf("calls = %v", res.Calls[m.Key()])
	}
	if res.Calls[m.Key()][0].Pruned {
		t.Error("recursive call on this with param arg must be controllable")
	}
}

func TestDynamicInvokeOpaque(t *testing.T) {
	prog, key := oneMethodProg(t, []java.Type{java.ObjectType}, java.Void, false, func(bb *jimple.BodyBuilder) {
		bb.Body().Append(&jimple.InvokeStmt{Invoke: &jimple.InvokeExpr{
			Kind: jimple.InvokeDynamic, Class: "java.lang.reflect.Proxy", Name: "invoke",
			ParamTypes: []java.Type{java.ObjectType}, ReturnType: java.ObjectType,
			Args: []jimple.Value{bb.Param(0)},
		}})
		bb.Return(nil)
	})
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic invokes produce no call edge — the §V-B limitation.
	if got := len(res.Calls[key]); got != 0 {
		t.Errorf("dynamic invoke produced %d call edges, want 0", got)
	}
}

func TestInterproceduralReturnPrecision(t *testing.T) {
	// wrapper returns callee(param); callee returns its argument.
	// Without interprocedural analysis the chain origin would be lost.
	prog, key := oneMethodProg(t, []java.Type{java.ObjectType}, java.ObjectType, false, func(bb *jimple.BodyBuilder) {
		x := bb.Local("x", java.ObjectType)
		bb.AssignInvokeVirtual(x, bb.This(), "t.C", "callee", []java.Type{java.ObjectType}, java.ObjectType, bb.Param(0))
		bb.Return(x)
	})
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The callee passes its argument straight through, and the
	// polymorphic-return rule additionally joins the receiver: either
	// way the result must stay controllable (here the join keeps `this`,
	// rank 0, over init-param-1).
	if got := res.Actions[key][SlotReturnValue]; !got.Controllable() {
		t.Errorf("interprocedural return origin = %s, want controllable", got)
	}
}

// TestInterproceduralReturnPrecisionStatic pins down the pure summary
// path: a static callee's return composes through Calc with no
// polymorphic join, so the exact origin is preserved.
func TestInterproceduralReturnPrecisionStatic(t *testing.T) {
	c := &java.Class{Name: "s.C", Modifiers: java.ModPublic, Super: java.ObjectClass}
	id := c.AddMethod(&java.Method{Name: "id", Params: []java.Type{java.ObjectType}, Return: java.ObjectType, Modifiers: java.ModPublic | java.ModStatic})
	m := c.AddMethod(&java.Method{Name: "m", Params: []java.Type{java.ObjectType}, Return: java.ObjectType, Modifiers: java.ModPublic | java.ModStatic})
	h, err := java.NewHierarchy([]*java.Class{c})
	if err != nil {
		t.Fatal(err)
	}
	prog := jimple.NewProgram(h)
	bb := jimple.NewBodyBuilder(id)
	bb.Return(bb.Param(0))
	prog.SetBody(bb.Body())
	bb = jimple.NewBodyBuilder(m)
	x := bb.Local("x", java.ObjectType)
	bb.AssignInvokeStatic(x, "s.C", "id", []java.Type{java.ObjectType}, java.ObjectType, bb.Param(0))
	bb.Return(x)
	prog.SetBody(bb.Body())
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Actions[m.Key()][SlotReturnValue]; got != Param(1) {
		t.Errorf("static interprocedural return origin = %s, want init-param-1", got)
	}
}

func TestPPIntsRoundTrip(t *testing.T) {
	pp := PP{WeightUnctrl, 0, 2}
	if got := PPFromInts(pp.Ints()); got.String() != pp.String() {
		t.Errorf("round trip: %s vs %s", got, pp)
	}
	if !pp[1].Controllable() || pp[0].Controllable() {
		t.Error("Controllable misbehaves")
	}
	if !(PP{WeightUnctrl, WeightUnctrl}).AllUncontrollable() {
		t.Error("AllUncontrollable false negative")
	}
	if pp.AllUncontrollable() {
		t.Error("AllUncontrollable false positive")
	}
}
