package taint

import (
	"tabby/internal/jimple"
)

// The abstract store of Algorithm 1 used to be a map from rendered cell
// strings ("L:x", "L:x.f", "@this.f", "@p3.f", "S:C.f") to origins. The
// hot loops now use slot-indexed environments instead: a per-body
// cellTable resolves every abstract cell to a dense int32 id exactly
// once, and an env is a plain []Origin indexed by cell id. The zero
// Origin (Kind 0) means "absent" — distinct from an explicit OriginNull
// binding, which the load/join rules treat differently, exactly as the
// map kept "missing key" apart from "key bound to null".
//
// env_ref_test.go retains the original map-backed store as an executable
// reference; TestEnvCrossCheckQuick cross-checks the two over randomized
// transfer sequences.

// cellKind classifies abstract cells.
type cellKind uint8

const (
	cellLocal      cellKind = iota // local x        (was "L:x")
	cellLocalField                 // x.f, x fresh   (was "L:x.f")
	cellThisField                  // this.f         (was "@this.f")
	cellParamField                 // param-N.f      (was "@pN.f")
	cellStatic                     // static C.f     (was "S:C.f")
)

// cellDesc identifies one abstract cell. It doubles as the interning map
// key, so it must stay comparable.
type cellDesc struct {
	kind cellKind
	base int32  // local cell id (cellLocalField) or 1-based param (cellParamField)
	name string // field name; class name for cellStatic
	fld  string // field name for cellStatic
}

// cellTable resolves abstract cells to dense ids for one body at a time.
// It is scratch state: reset(body) reuses all backing storage across
// methods, so the fixpoint loop allocates only when a body discovers a
// genuinely new cell shape.
type cellTable struct {
	localSlot map[string]int32
	byKey     map[cellDesc]int32
	cells     []cellDesc
	// fieldsOf parallels cells: for a local's cell id, the cellLocalField
	// cells based on it (setLocal destroys these; copyLocalFields copies
	// them). Non-local entries stay empty.
	fieldsOf [][]int32
	// thisFields / paramFields list the cellThisField cells and, per
	// 1-based parameter, the cellParamField cells — recordReturn iterates
	// these instead of scanning key prefixes.
	thisFields  []int32
	paramFields [][]int32
}

func newCellTable() *cellTable {
	return &cellTable{
		localSlot: make(map[string]int32),
		byKey:     make(map[cellDesc]int32),
	}
}

// resliceLists truncates every retained inner slice and resizes the
// outer slice to n, preserving backing arrays for reuse.
func resliceLists(lists [][]int32, n int) [][]int32 {
	full := lists[:cap(lists)]
	for i := range full {
		full[i] = full[i][:0]
	}
	if n <= len(full) {
		return full[:n]
	}
	return append(full, make([][]int32, n-len(full))...)
}

// reset prepares the table for a new body: locals become cells 0..L-1.
func (ct *cellTable) reset(body *jimple.Body) {
	clear(ct.localSlot)
	clear(ct.byKey)
	ct.cells = ct.cells[:0]
	ct.thisFields = ct.thisFields[:0]
	ct.fieldsOf = resliceLists(ct.fieldsOf, 0)
	ct.paramFields = resliceLists(ct.paramFields, len(body.Params))
	for _, l := range body.Locals {
		ct.ensureLocal(l.Name)
	}
}

// ensureLocal returns the cell id of the named local, creating it when
// the body never declared it (the map store tolerated that; so do we).
func (ct *cellTable) ensureLocal(name string) int32 {
	if s, ok := ct.localSlot[name]; ok {
		return s
	}
	id := ct.addCell(cellDesc{kind: cellLocal, name: name})
	ct.localSlot[name] = id
	return id
}

func (ct *cellTable) addCell(d cellDesc) int32 {
	id := int32(len(ct.cells))
	ct.cells = append(ct.cells, d)
	if len(ct.fieldsOf) < cap(ct.fieldsOf) {
		ct.fieldsOf = ct.fieldsOf[:len(ct.fieldsOf)+1]
	} else {
		ct.fieldsOf = append(ct.fieldsOf, nil)
	}
	return id
}

// ensure interns a non-local cell, registering it with the owner lists
// the destroy/copy/return rules iterate.
func (ct *cellTable) ensure(d cellDesc) int32 {
	if id, ok := ct.byKey[d]; ok {
		return id
	}
	id := ct.addCell(d)
	ct.byKey[d] = id
	switch d.kind {
	case cellLocalField:
		ct.fieldsOf[d.base] = append(ct.fieldsOf[d.base], id)
	case cellThisField:
		ct.thisFields = append(ct.thisFields, id)
	case cellParamField:
		for int(d.base) > len(ct.paramFields) {
			ct.paramFields = append(ct.paramFields, nil)
		}
		ct.paramFields[d.base-1] = append(ct.paramFields[d.base-1], id)
	}
	return id
}

// lookup returns the cell id without interning, -1 when absent.
func (ct *cellTable) lookup(d cellDesc) int32 {
	if id, ok := ct.byKey[d]; ok {
		return id
	}
	return -1
}

// baseFieldCell returns the canonical cell for base.field given base's
// current origin, or -1 when the access collapses (depth cap) or — in
// lookup mode — the cell was never interned.
func (ct *cellTable) baseFieldCell(base *jimple.Local, baseOrigin Origin, field string, intern bool) int32 {
	var d cellDesc
	switch {
	case baseOrigin.Kind == OriginThis && baseOrigin.Field == "":
		d = cellDesc{kind: cellThisField, name: field}
	case baseOrigin.Kind == OriginParam && baseOrigin.Field == "":
		d = cellDesc{kind: cellParamField, base: int32(baseOrigin.Param), name: field}
	case baseOrigin.Kind == OriginNull:
		slot, ok := ct.localSlot[base.Name]
		if !ok {
			if !intern {
				return -1
			}
			slot = ct.ensureLocal(base.Name)
		}
		d = cellDesc{kind: cellLocalField, base: slot, name: field}
	default:
		// Origin already carries a field (depth-1 cap): no dedicated cell.
		return -1
	}
	if intern {
		return ct.ensure(d)
	}
	return ct.lookup(d)
}

// env is the localMap of Algorithm 1: origins indexed by cell id. Shorter
// than the cell table means the tail cells are absent.
type env []Origin

// at returns the cell's binding; the zero Origin means absent.
func (e env) at(c int32) Origin {
	if int(c) < len(e) {
		return e[c]
	}
	return Origin{}
}

// growEnv extends e to n cells, zeroing any newly exposed storage (pooled
// backing arrays carry stale values past their length).
func growEnv(e *env, n int) {
	if n <= len(*e) {
		return
	}
	if n <= cap(*e) {
		tail := (*e)[len(*e):n]
		for i := range tail {
			tail[i] = Origin{}
		}
		*e = (*e)[:n]
		return
	}
	ne := make(env, n)
	copy(ne, *e)
	*e = ne
}

// set binds cell c, growing the env as needed.
func envSet(e *env, c int32, o Origin) {
	growEnv(e, int(c)+1)
	(*e)[c] = o
}

// envJoin merges src into dst in place, taking the more controllable
// origin on conflicts and unioning otherwise. Reports whether dst changed.
func envJoin(dst *env, src env) bool {
	changed := false
	for c := range src {
		v := src[c]
		if v.Kind == 0 {
			continue
		}
		cur := dst.at(int32(c))
		if cur.Kind == 0 {
			envSet(dst, int32(c), v)
			changed = true
			continue
		}
		j := cur.join(v)
		if j != cur {
			(*dst)[c] = j
			changed = true
		}
	}
	return changed
}

// setLocal performs the strong update for `a = <origin>`: rebinding the
// local and destroying its field cells (Table IV "Create a new variable":
// destroy the original CA of a).
func (ct *cellTable) setLocal(e *env, l *jimple.Local, o Origin) {
	slot := ct.ensureLocal(l.Name)
	envSet(e, slot, o)
	for _, c := range ct.fieldsOf[slot] {
		if int(c) < len(*e) {
			(*e)[c] = Origin{}
		}
	}
}

// copyLocalFields copies the fresh-object field cells of src to dst,
// modelling the aliasing introduced by `dst = src`.
func (ct *cellTable) copyLocalFields(e *env, dst, src *jimple.Local) {
	srcSlot, ok := ct.localSlot[src.Name]
	if !ok {
		return
	}
	fields := ct.fieldsOf[srcSlot]
	if len(fields) == 0 {
		return
	}
	dstSlot := ct.ensureLocal(dst.Name)
	for _, c := range fields {
		v := e.at(c)
		if v.Kind == 0 {
			continue
		}
		d := ct.ensure(cellDesc{kind: cellLocalField, base: dstSlot, name: ct.cells[c].name})
		envSet(e, d, v)
	}
}

// loadField evaluates base.field under the environment: a recorded cell
// wins; otherwise the origin is the base's origin refined by the field
// (Table IV "Class property loading": b.f → a).
func (ct *cellTable) loadField(e env, base *jimple.Local, field string) Origin {
	bo := ct.localOrigin(e, base)
	if c := ct.baseFieldCell(base, bo, field, false); c >= 0 {
		if v := e.at(c); v.Kind != 0 {
			return v
		}
	}
	if !bo.Controllable() {
		return Null
	}
	return bo.WithField(field)
}

// storeField records base.field = value (Table IV "Class property
// assignment"). Stores through a depth-capped base are dropped.
func (ct *cellTable) storeField(e *env, base *jimple.Local, field string, value Origin) {
	bo := ct.localOrigin(*e, base)
	if c := ct.baseFieldCell(base, bo, field, true); c >= 0 {
		envSet(e, c, value)
	}
}

// localOrigin returns the local's current origin, defaulting to null for
// locals never assigned on this path.
func (ct *cellTable) localOrigin(e env, l *jimple.Local) Origin {
	if s, ok := ct.localSlot[l.Name]; ok {
		if v := e.at(s); v.Kind != 0 {
			return v
		}
	}
	return Null
}

// staticCell returns the interning descriptor for static field C.f.
func staticCell(class, field string) cellDesc {
	return cellDesc{kind: cellStatic, name: class, fld: field}
}

// envPool recycles env slices within one method analysis; get zeroes the
// requested prefix so pooled garbage can never leak between paths.
type envPool struct {
	free []env
}

func (p *envPool) get(n int) env {
	for k := len(p.free); k > 0; k-- {
		e := p.free[k-1]
		p.free = p.free[:k-1]
		if cap(e) < n {
			continue // too small; let it go
		}
		e = e[:n]
		clear(e)
		return e
	}
	return make(env, n, n+8)
}

func (p *envPool) put(e env) {
	if e != nil {
		p.free = append(p.free, e)
	}
}

func (p *envPool) copyOf(src env) env {
	e := p.get(len(src))
	copy(e, src)
	return e
}
