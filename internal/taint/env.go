package taint

import (
	"strconv"
	"strings"

	"tabby/internal/jimple"
)

// env is the localMap of Algorithm 1: a map from abstract cells to
// origins. Cell keys:
//
//	"L:x"        — local x
//	"L:x.f"      — field f of the (fresh) object held by local x
//	"@this.f"    — field f of the receiver object
//	"@p3.f"      — field f of the object passed as parameter 3
//	"S:C.f"      — static field f of class C
//
// Field sensitivity is depth one, matching the paper's a.b cells (Fig. 5c).
type env map[string]Origin

func localKey(l *jimple.Local) string { return "L:" + l.Name }

func staticKey(class, field string) string { return "S:" + class + "." + field }

// baseFieldKey returns the canonical cell for base.field given base's
// current origin, or "" when the access collapses (depth cap).
func baseFieldKey(base *jimple.Local, baseOrigin Origin, field string) string {
	switch {
	case baseOrigin.Kind == OriginThis && baseOrigin.Field == "":
		return "@this." + field
	case baseOrigin.Kind == OriginParam && baseOrigin.Field == "":
		return "@p" + strconv.Itoa(baseOrigin.Param) + "." + field
	case baseOrigin.Kind == OriginNull:
		return localKey(base) + "." + field
	default:
		// Origin already carries a field (depth-1 cap): no dedicated cell.
		return ""
	}
}

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// join merges other into e (in place), taking the more controllable
// origin on conflicts and unioning otherwise. Reports whether e changed.
func (e env) join(other env) bool {
	changed := false
	for k, v := range other {
		cur, ok := e[k]
		if !ok {
			e[k] = v
			changed = true
			continue
		}
		j := cur.join(v)
		if j != cur {
			e[k] = j
			changed = true
		}
	}
	return changed
}

// setLocal performs the strong update for `a = <origin>`: rebinding the
// local and destroying its field cells (Table IV "Create a new variable":
// destroy the original CA of a).
func (e env) setLocal(l *jimple.Local, o Origin) {
	key := localKey(l)
	e[key] = o
	prefix := key + "."
	for k := range e {
		if strings.HasPrefix(k, prefix) {
			delete(e, k)
		}
	}
}

// copyLocalFields copies the fresh-object field cells of src to dst,
// modelling the aliasing introduced by `dst = src`.
func (e env) copyLocalFields(dst, src *jimple.Local) {
	srcPrefix := localKey(src) + "."
	dstPrefix := localKey(dst) + "."
	for k, v := range e {
		if strings.HasPrefix(k, srcPrefix) {
			e[dstPrefix+strings.TrimPrefix(k, srcPrefix)] = v
		}
	}
}

// loadField evaluates base.field under the environment: a recorded cell
// wins; otherwise the origin is the base's origin refined by the field
// (Table IV "Class property loading": b.f → a).
func (e env) loadField(base *jimple.Local, field string) Origin {
	bo := e.localOrigin(base)
	if key := baseFieldKey(base, bo, field); key != "" {
		if v, ok := e[key]; ok {
			return v
		}
	}
	if !bo.Controllable() {
		return Null
	}
	return bo.WithField(field)
}

// storeField records base.field = value (Table IV "Class property
// assignment"). Stores through a depth-capped base are dropped.
func (e env) storeField(base *jimple.Local, field string, value Origin) {
	bo := e.localOrigin(base)
	if key := baseFieldKey(base, bo, field); key != "" {
		e[key] = value
	}
}

// localOrigin returns the local's current origin, defaulting to null for
// locals never assigned on this path.
func (e env) localOrigin(l *jimple.Local) Origin {
	if v, ok := e[localKey(l)]; ok {
		return v
	}
	return Null
}
