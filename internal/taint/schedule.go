package taint

import (
	"sync"

	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/parallel"
)

// callSite is one non-dynamic invoke discovered by the dependency scan,
// with its sub-signature rendered once and its callee resolved once.
// transferInvoke consults the site on every fixpoint visit instead of
// re-rendering and re-resolving, and the summary-cache fingerprinter
// replays the same resolutions.
type callSite struct {
	stmt   int32
	class  string // statically referenced class
	sub    string // callee sub-signature
	target int32  // body index of the resolved callee with a body; -1 otherwise
}

// depGraph is the method-call dependency graph the wave scheduler runs
// on: one node per method body, one edge per call site whose summary
// Analyze will actually consult (statically resolvable, non-dynamic,
// callee has a body). Edges follow calleeSummary's resolution exactly, so
// "all dependencies scheduled earlier" implies "every summary a method
// asks for is already memoized".
type depGraph struct {
	keys    []java.MethodKey       // sorted; node i is keys[i]
	indexOf map[java.MethodKey]int // inverse of keys
	bodies  []*jimple.Body         // bodies[i] = prog.Body(keys[i])
	sites   [][]callSite           // sites[i]: body i's invokes in statement order
	succs   [][]int                // succs[i]: callee node indices, ascending, deduped
}

// buildDepGraph scans every body for the invokes whose callee summaries
// the analysis will request. With DisableInterprocedural set no summary
// is ever consulted, so sites keep target -1, the graph has no edges and
// every method is its own singleton component.
func buildDepGraph(prog *jimple.Program, opts Options, keys []java.MethodKey) *depGraph {
	g := &depGraph{
		keys:    keys,
		indexOf: make(map[java.MethodKey]int, len(keys)),
		bodies:  make([]*jimple.Body, len(keys)),
		sites:   make([][]callSite, len(keys)),
		succs:   make([][]int, len(keys)),
	}
	for i, k := range keys {
		g.indexOf[k] = i
		g.bodies[i] = prog.Body(k)
	}
	var resolve *resolveCache
	if !opts.DisableInterprocedural {
		resolve = newResolveCache(prog)
	}
	parallel.ForEach(opts.Workers, len(keys), func(i int) {
		body := g.bodies[i]
		if body == nil {
			return
		}
		var sites []callSite
		var out []int
		var seen map[int]bool
		for idx, st := range body.Stmts {
			inv := invokeOf(st)
			if inv == nil || inv.Kind == jimple.InvokeDynamic {
				continue
			}
			s := callSite{stmt: int32(idx), class: inv.Class, sub: inv.SubSignature(), target: -1}
			if resolve != nil {
				if m := resolve.method(s.class, s.sub); m != nil {
					if j, ok := g.indexOf[m.Key()]; ok && g.bodies[j] != nil {
						s.target = int32(j)
						if seen == nil {
							seen = make(map[int]bool)
						}
						if !seen[j] {
							seen[j] = true
							out = append(out, j)
						}
					}
				}
			}
			sites = append(sites, s)
		}
		sortInts(out)
		g.sites[i] = sites
		g.succs[i] = out
	})
	return g
}

// invokeOf extracts the invoke expression of a statement, if any.
func invokeOf(st jimple.Stmt) *jimple.InvokeExpr {
	switch s := st.(type) {
	case *jimple.InvokeStmt:
		return s.Invoke
	case *jimple.AssignStmt:
		if inv, ok := s.RHS.(*jimple.InvokeExpr); ok {
			return inv
		}
	}
	return nil
}

// resolveCache memoizes Hierarchy.ResolveMethod lookups for the
// dependency scan. The map is guarded by striped locks so concurrent
// scan workers share hits without serializing on one mutex.
type resolveCache struct {
	prog   *jimple.Program
	shards [resolveShards]resolveShard
}

const resolveShards = 16

type resolveShard struct {
	mu sync.Mutex
	m  map[string]*java.Method
}

func newResolveCache(prog *jimple.Program) *resolveCache {
	c := &resolveCache{prog: prog}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*java.Method)
	}
	return c
}

func (c *resolveCache) method(class, sub string) *java.Method {
	key := class + "#" + sub
	sh := &c.shards[fnv32(key)%resolveShards]
	sh.mu.Lock()
	if m, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return m
	}
	sh.mu.Unlock()
	m := c.prog.Hierarchy.ResolveMethod(class, sub)
	sh.mu.Lock()
	sh.m[key] = m
	sh.mu.Unlock()
	return m
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
