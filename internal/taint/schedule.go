package taint

import (
	"sync"

	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/parallel"
)

// depGraph is the method-call dependency graph the wave scheduler runs
// on: one node per method body, one edge per call site whose summary
// Analyze will actually consult (statically resolvable, non-dynamic,
// callee has a body). Edges follow calleeAction's resolution exactly, so
// "all dependencies scheduled earlier" implies "every summary a method
// asks for is already memoized".
type depGraph struct {
	keys  []java.MethodKey // sorted; node i is keys[i]
	succs [][]int          // succs[i]: callee node indices, ascending, deduped
	// resolve is the memoized ResolveMethod cache the scan populated; the
	// summary-cache fingerprinter reuses it so each call site is resolved
	// once per run. Nil when DisableInterprocedural skipped the scan.
	resolve *resolveCache
}

// buildDepGraph scans every body for the invokes whose callee summaries
// the analysis will request. With DisableInterprocedural set no summary
// is ever consulted, so the graph has no edges and every method is its
// own singleton component.
func buildDepGraph(prog *jimple.Program, opts Options, keys []java.MethodKey) *depGraph {
	g := &depGraph{keys: keys, succs: make([][]int, len(keys))}
	if opts.DisableInterprocedural {
		return g
	}
	indexOf := make(map[java.MethodKey]int, len(keys))
	for i, k := range keys {
		indexOf[k] = i
	}
	resolve := newResolveCache(prog)
	g.resolve = resolve
	parallel.ForEach(opts.Workers, len(keys), func(i int) {
		body := prog.Body(keys[i])
		seen := make(map[int]bool)
		var out []int
		for _, st := range body.Stmts {
			inv := invokeOf(st)
			if inv == nil || inv.Kind == jimple.InvokeDynamic {
				continue
			}
			m := resolve.method(inv.Class, inv.SubSignature())
			if m == nil || prog.Body(m.Key()) == nil {
				continue
			}
			j, ok := indexOf[m.Key()]
			if !ok || seen[j] {
				continue
			}
			seen[j] = true
			out = append(out, j)
		}
		sortInts(out)
		g.succs[i] = out
	})
	return g
}

// invokeOf extracts the invoke expression of a statement, if any.
func invokeOf(st jimple.Stmt) *jimple.InvokeExpr {
	switch s := st.(type) {
	case *jimple.InvokeStmt:
		return s.Invoke
	case *jimple.AssignStmt:
		if inv, ok := s.RHS.(*jimple.InvokeExpr); ok {
			return inv
		}
	}
	return nil
}

// resolveCache memoizes Hierarchy.ResolveMethod lookups for the
// dependency scan. The map is guarded by striped locks so concurrent
// scan workers share hits without serializing on one mutex.
type resolveCache struct {
	prog   *jimple.Program
	shards [resolveShards]resolveShard
}

const resolveShards = 16

type resolveShard struct {
	mu sync.Mutex
	m  map[string]*java.Method
}

func newResolveCache(prog *jimple.Program) *resolveCache {
	c := &resolveCache{prog: prog}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*java.Method)
	}
	return c
}

func (c *resolveCache) method(class, sub string) *java.Method {
	key := class + "#" + sub
	sh := &c.shards[fnv32(key)%resolveShards]
	sh.mu.Lock()
	if m, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return m
	}
	sh.mu.Unlock()
	m := c.prog.Hierarchy.ResolveMethod(class, sub)
	sh.mu.Lock()
	sh.m[key] = m
	sh.mu.Unlock()
	return m
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
