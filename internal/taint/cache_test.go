package taint

import (
	"reflect"
	"testing"

	"tabby/internal/java"
	"tabby/internal/jimple"
)

func assertSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Actions, want.Actions) {
		t.Errorf("%s: actions differ", label)
	}
	if !reflect.DeepEqual(got.Calls, want.Calls) {
		t.Errorf("%s: call edges differ", label)
	}
	if got.TotalCalls != want.TotalCalls || got.PrunedCalls != want.PrunedCalls {
		t.Errorf("%s: counters (%d,%d) differ from (%d,%d)",
			label, got.TotalCalls, got.PrunedCalls, want.TotalCalls, want.PrunedCalls)
	}
}

// TestSummaryCacheWarmReuse: a second analysis of an identical program
// (freshly rebuilt, so no pointer identity) reuses every component and
// produces the exact same result.
func TestSummaryCacheWarmReuse(t *testing.T) {
	prog, _, _ := buildFig5Program(t)
	base, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}

	cache := NewSummaryCache()
	cold, stats, err := AnalyzeWithCache(prog, Options{}, cache)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "cold", cold, base)
	if stats.ComponentHits != 0 || stats.MethodsReused != 0 || stats.MethodsAnalyzed == 0 {
		t.Errorf("cold stats = %+v", stats)
	}

	prog2, _, _ := buildFig5Program(t)
	warm, stats, err := AnalyzeWithCache(prog2, Options{}, cache)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "warm", warm, base)
	if stats.ComponentHits != stats.Components || stats.MethodsAnalyzed != 0 {
		t.Errorf("warm stats = %+v, want all components reused", stats)
	}
}

// TestSummaryCacheTransitiveInvalidation: editing a callee must
// invalidate its callers (their dependency cone changed) even though the
// caller's own body text did not.
func TestSummaryCacheTransitiveInvalidation(t *testing.T) {
	prog, _, _ := buildFig5Program(t)
	cache := NewSummaryCache()
	if _, _, err := AnalyzeWithCache(prog, Options{}, cache); err != nil {
		t.Fatal(err)
	}

	// Rebuild with exchange's body changed: no reassignment of b, so the
	// stored field (and exchange's summary) keeps a different shape.
	prog2, _, exchange2 := buildFig5Program(t)
	bb := jimple.NewBodyBuilder(exchange2)
	bb.FieldStore(bb.Param(0), "fig5.A", "b", typeB, bb.Param(1))
	ret := bb.Temp(typeB)
	bb.FieldLoad(ret, bb.Param(0), "fig5.A", "b", typeB)
	bb.Return(ret)
	prog2.SetBody(bb.Body())

	base2, err := Analyze(prog2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := AnalyzeWithCache(prog2, Options{}, cache)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "callee-changed", got, base2)
	if stats.MethodsReused != 0 {
		t.Errorf("callee edit reused %d methods, want 0 (caller cone changed)", stats.MethodsReused)
	}
}

// TestSummaryCacheCallerOnlyInvalidation: editing only a caller leaves
// the callee's cone intact, so the callee's summary is reused.
func TestSummaryCacheCallerOnlyInvalidation(t *testing.T) {
	prog, _, _ := buildFig5Program(t)
	cache := NewSummaryCache()
	if _, _, err := AnalyzeWithCache(prog, Options{}, cache); err != nil {
		t.Fatal(err)
	}

	prog2, example2, _ := buildFig5Program(t)
	bb := jimple.NewBodyBuilder(example2)
	a1 := bb.Local("a1", typeA)
	a2 := bb.Local("a2", typeA)
	a3 := bb.Local("a3", typeA) // extra copy: body text changes, calls don't
	b1 := bb.Local("b1", typeB)
	bb.New(a1, typeA)
	bb.Assign(a2, bb.Param(0))
	bb.Assign(a3, a2)
	bb.Assign(bb.Param(0), a1)
	bb.AssignInvokeStatic(b1, "fig5.B",
		"exchange", []java.Type{typeA, typeB}, typeB, bb.Param(0), bb.Param(1))
	bb.Return(a3)
	prog2.SetBody(bb.Body())

	base2, err := Analyze(prog2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := AnalyzeWithCache(prog2, Options{}, cache)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "caller-changed", got, base2)
	if stats.MethodsReused != 1 || stats.MethodsAnalyzed != 1 {
		t.Errorf("caller edit stats = %+v, want callee reused and caller re-analyzed", stats)
	}
}

// TestSummaryCacheExportImport: a cache round-tripped through its
// portable form behaves identically to the original.
func TestSummaryCacheExportImport(t *testing.T) {
	prog, _, _ := buildFig5Program(t)
	cache := NewSummaryCache()
	base, _, err := AnalyzeWithCache(prog, Options{}, cache)
	if err != nil {
		t.Fatal(err)
	}

	entries := cache.Export()
	if len(entries) == 0 {
		t.Fatal("nothing exported")
	}
	if !reflect.DeepEqual(ImportSummaryCache(entries).Export(), entries) {
		t.Error("export → import → export is not stable")
	}

	prog2, _, _ := buildFig5Program(t)
	restored := ImportSummaryCache(entries)
	got, stats, err := AnalyzeWithCache(prog2, Options{}, restored)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "imported", got, base)
	if stats.ComponentHits != stats.Components {
		t.Errorf("imported cache stats = %+v, want full reuse", stats)
	}
}

// TestSummaryCacheDistinguishesOptions: summaries computed under
// different analysis options must not cross-contaminate.
func TestSummaryCacheDistinguishesOptions(t *testing.T) {
	prog, _, _ := buildFig5Program(t)
	cache := NewSummaryCache()
	if _, _, err := AnalyzeWithCache(prog, Options{}, cache); err != nil {
		t.Fatal(err)
	}
	base, err := Analyze(prog, Options{DisableInterprocedural: true})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := AnalyzeWithCache(prog, Options{DisableInterprocedural: true}, cache)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "nointerproc", got, base)
	if stats.ComponentHits != 0 {
		t.Errorf("interprocedural summaries reused under DisableInterprocedural: %+v", stats)
	}
}
