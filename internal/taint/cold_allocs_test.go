package taint

import (
	"testing"

	"tabby/internal/corpus"
	"tabby/internal/javasrc"
)

// TestColdBuildAllocs gates the slot-indexed environment's allocation
// budget (mirroring pathfinder's TestSteadyStateAllocs): one cold,
// cacheless Analyze over a mid-size real component must stay under a
// fixed allocs/op ceiling. The pre-fast-path map-keyed environments
// allocated several times this much on the same corpus, so a per-visit
// map or string key sneaking back into the fixpoint loop trips this
// immediately.
func TestColdBuildAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("full component cold build")
	}
	comp, err := corpus.ComponentByName("commons-collections(3.2.1)")
	if err != nil {
		t.Fatal(err)
	}
	archives := append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...)
	prog, err := javasrc.CompileArchivesOpts(archives, javasrc.CompileOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Analyze(prog, Options{Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Measured ~11.9k allocs/op over 323 bodies with the slot-indexed
	// envs (the map-keyed envs sat several-fold higher); 1.5x headroom.
	const ceiling = 18_000
	if allocs := res.AllocsPerOp(); allocs > ceiling {
		t.Errorf("cold Analyze allocates %d objects/op over %d bodies, ceiling %d",
			res.AllocsPerOp(), len(prog.Bodies), ceiling)
	}
}
