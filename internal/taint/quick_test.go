package taint

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"tabby/internal/java"
	"tabby/internal/jimple"
)

// genRandomProgram builds a deterministic pseudo-random program from a
// seed: a handful of classes with fields and methods whose bodies mix
// assignments, field traffic, branches and calls. It is used to check
// analysis-wide invariants rather than specific dataflow facts.
func genRandomProgram(seed int64) (*jimple.Program, error) {
	rng := rand.New(rand.NewSource(seed))
	numClasses := 2 + rng.Intn(3)
	classes := make([]*java.Class, 0, numClasses)
	for ci := 0; ci < numClasses; ci++ {
		c := &java.Class{
			Name:      fmt.Sprintf("q.C%d", ci),
			Modifiers: java.ModPublic,
			Super:     java.ObjectClass,
		}
		c.AddField(&java.Field{Name: "f", Type: java.ObjectType})
		numMethods := 1 + rng.Intn(3)
		for mi := 0; mi < numMethods; mi++ {
			mods := java.ModPublic
			if rng.Intn(3) == 0 {
				mods |= java.ModStatic
			}
			c.AddMethod(&java.Method{
				Name:      fmt.Sprintf("m%d", mi),
				Params:    []java.Type{java.ObjectType, java.ObjectType},
				Return:    java.ObjectType,
				Modifiers: mods,
			})
		}
		classes = append(classes, c)
	}
	h, err := java.NewHierarchy(classes)
	if err != nil {
		return nil, err
	}
	prog := jimple.NewProgram(h)
	for _, c := range classes {
		for _, m := range c.Methods {
			bb := jimple.NewBodyBuilder(m)
			locals := []*jimple.Local{bb.Param(0), bb.Param(1)}
			if bb.This() != nil {
				locals = append(locals, bb.This())
			}
			for i := 0; i < 2; i++ {
				locals = append(locals, bb.Local(fmt.Sprintf("l%d", i), java.ObjectType))
			}
			pick := func() *jimple.Local { return locals[rng.Intn(len(locals))] }
			numStmts := 3 + rng.Intn(6)
			for s := 0; s < numStmts; s++ {
				switch rng.Intn(6) {
				case 0:
					bb.Assign(pick(), pick())
				case 1:
					bb.New(pick(), java.ObjectType)
				case 2:
					base := pick()
					if base != bb.This() || bb.This() != nil {
						bb.FieldStore(base, "q.C0", "f", java.ObjectType, pick())
					}
				case 3:
					bb.FieldLoad(pick(), pick(), "q.C0", "f", java.ObjectType)
				case 4:
					callee := classes[rng.Intn(len(classes))]
					target := callee.Methods[rng.Intn(len(callee.Methods))]
					if target.IsStatic() {
						bb.AssignInvokeStatic(pick(), callee.Name, target.Name,
							target.Params, target.Return, pick(), pick())
					} else {
						bb.AssignInvokeVirtual(pick(), pick(), callee.Name, target.Name,
							target.Params, target.Return, pick(), pick())
					}
				case 5:
					ifIdx := bb.If(&jimple.BinopExpr{Op: jimple.OpEq, L: pick(), R: &jimple.NullConst{}})
					bb.Nop()
					bb.PatchTarget(ifIdx, bb.Here())
				}
			}
			bb.Return(pick())
			prog.SetBody(bb.Body())
		}
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// TestAnalyzeInvariantsQuick: for arbitrary programs, the analysis
// terminates and every produced artifact is well-formed:
//
//   - PP entries lie in {-1} ∪ [0, paramCount-of-caller];
//   - PP length is 1 + callee arity;
//   - every analyzed method has an Action with a return entry;
//   - Action origins reference only existing parameter indexes.
func TestAnalyzeInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		prog, err := genRandomProgram(seed)
		if err != nil {
			t.Logf("seed %d: generation failed: %v", seed, err)
			return false
		}
		res, err := Analyze(prog, Options{})
		if err != nil {
			t.Logf("seed %d: analyze failed: %v", seed, err)
			return false
		}
		for caller, calls := range res.Calls {
			callerParams := len(prog.Body(caller).Method.Params)
			for _, call := range calls {
				for _, w := range call.PP {
					if w != WeightUnctrl && (w < 0 || int(w) > callerParams) {
						t.Logf("seed %d: PP weight %d out of range for %s", seed, w, caller)
						return false
					}
				}
			}
		}
		for key, act := range res.Actions {
			if _, ok := act[SlotReturnValue]; !ok {
				t.Logf("seed %d: %s has no return slot", seed, key)
				return false
			}
			params := len(prog.Body(key).Method.Params)
			for slot, origin := range act {
				if slot.Kind == SlotParam && (slot.Param < 1 || slot.Param > params) {
					t.Logf("seed %d: %s slot %s out of range", seed, key, slot)
					return false
				}
				if origin.Kind == OriginParam && (origin.Param < 1 || origin.Param > params) {
					t.Logf("seed %d: %s origin %s out of range", seed, key, origin)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAnalyzeDeterministicQuick: two runs over the same program produce
// identical Actions and call edges.
func TestAnalyzeDeterministicQuick(t *testing.T) {
	f := func(seed int64) bool {
		prog, err := genRandomProgram(seed)
		if err != nil {
			return false
		}
		r1, err := Analyze(prog, Options{})
		if err != nil {
			return false
		}
		r2, err := Analyze(prog, Options{})
		if err != nil {
			return false
		}
		if len(r1.Actions) != len(r2.Actions) || r1.TotalCalls != r2.TotalCalls || r1.PrunedCalls != r2.PrunedCalls {
			return false
		}
		for k, a1 := range r1.Actions {
			if r2.Actions[k].String() != a1.String() {
				return false
			}
		}
		for k, c1 := range r1.Calls {
			c2 := r2.Calls[k]
			if len(c1) != len(c2) {
				return false
			}
			for i := range c1 {
				if c1[i].PP.String() != c2[i].PP.String() || c1[i].Callee() != c2[i].Callee() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
