package taint

import (
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"tabby/internal/java"
	"tabby/internal/jimple"
)

// refEnv is the original map-backed abstract store of Algorithm 1, kept
// verbatim as an executable reference for the slot-indexed env (env.go).
// Cell keys:
//
//	"L:x"        — local x
//	"L:x.f"      — field f of the (fresh) object held by local x
//	"@this.f"    — field f of the receiver object
//	"@p3.f"      — field f of the object passed as parameter 3
//	"S:C.f"      — static field f of class C
type refEnv map[string]Origin

func refLocalKey(l *jimple.Local) string { return "L:" + l.Name }

func refStaticKey(class, field string) string { return "S:" + class + "." + field }

func refBaseFieldKey(base *jimple.Local, baseOrigin Origin, field string) string {
	switch {
	case baseOrigin.Kind == OriginThis && baseOrigin.Field == "":
		return "@this." + field
	case baseOrigin.Kind == OriginParam && baseOrigin.Field == "":
		return "@p" + strconv.Itoa(baseOrigin.Param) + "." + field
	case baseOrigin.Kind == OriginNull:
		return refLocalKey(base) + "." + field
	default:
		return ""
	}
}

func (e refEnv) clone() refEnv {
	out := make(refEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

func (e refEnv) join(other refEnv) bool {
	changed := false
	for k, v := range other {
		cur, ok := e[k]
		if !ok {
			e[k] = v
			changed = true
			continue
		}
		j := cur.join(v)
		if j != cur {
			e[k] = j
			changed = true
		}
	}
	return changed
}

func (e refEnv) setLocal(l *jimple.Local, o Origin) {
	key := refLocalKey(l)
	e[key] = o
	prefix := key + "."
	for k := range e {
		if strings.HasPrefix(k, prefix) {
			delete(e, k)
		}
	}
}

func (e refEnv) copyLocalFields(dst, src *jimple.Local) {
	srcPrefix := refLocalKey(src) + "."
	dstPrefix := refLocalKey(dst) + "."
	for k, v := range e {
		if strings.HasPrefix(k, srcPrefix) {
			e[dstPrefix+strings.TrimPrefix(k, srcPrefix)] = v
		}
	}
}

func (e refEnv) loadField(base *jimple.Local, field string) Origin {
	bo := e.localOrigin(base)
	if key := refBaseFieldKey(base, bo, field); key != "" {
		if v, ok := e[key]; ok {
			return v
		}
	}
	if !bo.Controllable() {
		return Null
	}
	return bo.WithField(field)
}

func (e refEnv) storeField(base *jimple.Local, field string, value Origin) {
	bo := e.localOrigin(base)
	if key := refBaseFieldKey(base, bo, field); key != "" {
		e[key] = value
	}
}

func (e refEnv) localOrigin(l *jimple.Local) Origin {
	if v, ok := e[refLocalKey(l)]; ok {
		return v
	}
	return Null
}

// renderCell maps a slot-env cell back to the reference store's string
// key, so the two stores can be compared binding for binding.
func renderCell(ct *cellTable, d cellDesc) string {
	switch d.kind {
	case cellLocal:
		return "L:" + d.name
	case cellLocalField:
		return "L:" + ct.cells[d.base].name + "." + d.name
	case cellThisField:
		return "@this." + d.name
	case cellParamField:
		return "@p" + strconv.Itoa(int(d.base)) + "." + d.name
	case cellStatic:
		return "S:" + d.name + "." + d.fld
	}
	return "?"
}

// slotSnapshot renders every present binding of a slot env under the
// reference key scheme. Zero (absent) cells are skipped — the map store
// never held them.
func slotSnapshot(ct *cellTable, e env) map[string]Origin {
	out := make(map[string]Origin)
	for id, d := range ct.cells {
		if v := e.at(int32(id)); v.Kind != 0 {
			out[renderCell(ct, d)] = v
		}
	}
	return out
}

// TestEnvCrossCheckQuick drives the slot-indexed env and the retained
// map-backed reference through identical randomized transfer sequences
// (seeded, deterministic) and demands bit-identical stores and results
// after every operation: strong updates destroying field cells, alias
// copies, field loads through the depth cap, static cells, and joins —
// including the absent-vs-explicit-Null distinction the load/join rules
// depend on.
func TestEnvCrossCheckQuick(t *testing.T) {
	m := &java.Method{
		ClassName: "x.CrossCheck", Name: "f",
		Params: []java.Type{java.ObjectType, java.ObjectType},
		Return: java.ObjectType, Modifiers: java.ModPublic,
	}
	bb := jimple.NewBodyBuilder(m)
	locals := []*jimple.Local{
		bb.Local("a", java.ObjectType),
		bb.Local("b", java.ObjectType),
		bb.Local("c", java.ObjectType),
		bb.Param(0),
		bb.Param(1),
	}
	bb.Return(nil)
	body := bb.Body()

	fields := []string{"f", "g"}
	statics := [][2]string{{"x.C", "sf"}, {"x.D", "sg"}}
	rng := rand.New(rand.NewSource(0x7abb9))
	randOrigin := func() Origin {
		switch rng.Intn(6) {
		case 0:
			return Null
		case 1:
			return This
		case 2:
			return This.WithField(fields[rng.Intn(len(fields))])
		case 3:
			return Param(1 + rng.Intn(2))
		case 4:
			return Param(1 + rng.Intn(2)).WithField(fields[rng.Intn(len(fields))])
		default:
			return Origin{} // absent marker: callers treat as "skip binding"
		}
	}
	pickLocal := func() *jimple.Local { return locals[rng.Intn(len(locals))] }
	pickField := func() string { return fields[rng.Intn(len(fields))] }

	ct := newCellTable()
	var pool envPool
	for round := 0; round < 60; round++ {
		ct.reset(body)
		se := pool.get(len(ct.cells))
		re := make(refEnv)
		// A second env accumulates divergent state to join from; its ref
		// view is rendered via slotSnapshot at join time.
		so := pool.get(len(ct.cells))

		for step := 0; step < 80; step++ {
			switch op := rng.Intn(7); op {
			case 0: // strong local update (destroys field cells)
				l, o := pickLocal(), randOrigin()
				if o.Kind == 0 {
					o = Null
				}
				ct.setLocal(&se, l, o)
				re.setLocal(l, o)
			case 1: // alias copy dst = src
				dst, src := pickLocal(), pickLocal()
				ct.copyLocalFields(&se, dst, src)
				re.copyLocalFields(dst, src)
			case 2: // field store
				base, f, o := pickLocal(), pickField(), randOrigin()
				if o.Kind == 0 {
					o = Null
				}
				ct.storeField(&se, base, f, o)
				re.storeField(base, f, o)
			case 3: // field load must agree
				base, f := pickLocal(), pickField()
				if got, want := ct.loadField(se, base, f), re.loadField(base, f); got != want {
					t.Fatalf("round %d step %d: loadField(%s.%s) = %v, reference %v", round, step, base.Name, f, got, want)
				}
			case 4: // local origin must agree
				l := pickLocal()
				if got, want := ct.localOrigin(se, l), re.localOrigin(l); got != want {
					t.Fatalf("round %d step %d: localOrigin(%s) = %v, reference %v", round, step, l.Name, got, want)
				}
			case 5: // static cell store + load
				s := statics[rng.Intn(len(statics))]
				o := randOrigin()
				if o.Kind == 0 {
					o = Null
				}
				envSet(&se, ct.ensure(staticCell(s[0], s[1])), o)
				re[refStaticKey(s[0], s[1])] = o
				if c := ct.lookup(staticCell(s[0], s[1])); se.at(c) != re[refStaticKey(s[0], s[1])] {
					t.Fatalf("round %d step %d: static %s.%s diverged", round, step, s[0], s[1])
				}
			case 6: // mutate the join source (including zero-Origin stores)
				l, o := pickLocal(), randOrigin()
				if o.Kind == 0 {
					o = Null
				}
				ct.setLocal(&so, l, o)
				ct.storeField(&so, pickLocal(), pickField(), randOrigin())
			}
			if snap, want := slotSnapshot(ct, se), map[string]Origin(re); !reflect.DeepEqual(snap, want) {
				t.Fatalf("round %d step %d: stores diverged\nslot: %v\nref:  %v", round, step, snap, want)
			}
		}

		// Join via pooled clones, as the fixpoint does on edge distribution.
		sc := pool.copyOf(se)
		rc := re.clone()
		changedSlot := envJoin(&sc, so)
		changedRef := rc.join(refEnv(slotSnapshot(ct, so)))
		if changedSlot != changedRef {
			t.Fatalf("round %d: join changed=%v, reference %v", round, changedSlot, changedRef)
		}
		if snap, want := slotSnapshot(ct, sc), map[string]Origin(rc); !reflect.DeepEqual(snap, want) {
			t.Fatalf("round %d: joined stores diverged\nslot: %v\nref:  %v", round, snap, want)
		}
		pool.put(se)
		pool.put(so)
		pool.put(sc)
	}
}
