// Package backend abstracts the graph read path behind a registered
// snapshot. A Backend answers everything the query surface needs — the
// compiled search index, snapshot metadata, graph-shape counters, and
// (on demand) the generic property store — without prescribing where
// the bytes live. Two implementations exist:
//
//   - Mem: a fully-deserialized heap snapshot (store.ReadFile). This is
//     the only option for pre-v3 snapshot files and the fallback on
//     hosts that cannot view the on-disk index layout.
//   - Mmap: a disk-resident view over a memory-mapped version-3
//     snapshot. Opening validates framing and checksums but copies
//     nothing; the search index is served directly from the mapped
//     bytes, so open latency and heap cost are O(labels + relationship
//     types), not O(graph), and the resident set is bounded by the page
//     cache. The generic store is materialized lazily — only when a
//     query shape the index cannot answer actually runs.
//
// Backend satisfies cypher.Source structurally, so /v1/query executes
// against either implementation through the identical planner path.
package backend

import (
	"tabby/internal/graphdb"
	"tabby/internal/searchindex"
	"tabby/internal/store"
)

// Backend kinds, as reported by the server's graph listings.
const (
	KindMem  = "mem"
	KindMmap = "mmap"
)

// Backend is one snapshot's read path.
type Backend interface {
	// Kind identifies the implementation: KindMem or KindMmap.
	Kind() string
	// Meta returns the snapshot's metadata (decoded at open time).
	Meta() store.Meta
	// Index returns the compiled search index. Infallible and cheap:
	// both implementations hold it from open time.
	Index() *searchindex.Index
	// DB materializes the generic property store. Mem returns it
	// directly; Mmap pays the full snapshot parse on first call and
	// memoizes the result (including a failure, which is permanent —
	// the bytes will not get less corrupt).
	DB() (*graphdb.DB, error)
	// GraphStats returns the graph-shape counters without materializing
	// the store (Mmap decodes them from the snapshot's stats block).
	GraphStats() graphdb.Stats
	// Loaded reports whether the generic store is resident on the heap.
	// Always true for Mem; true for Mmap only after a DB() call forced
	// the parse.
	Loaded() bool
	// MappedBytes is the size of the memory-mapped region backing this
	// backend, 0 for heap-resident ones. Mapped bytes live in the page
	// cache, not the Go heap.
	MappedBytes() int64
	// Close releases what can be released. Mmap intentionally keeps its
	// mapping alive for the life of the process: the served index
	// aliases the mapped bytes, and any retained string or slice would
	// dangle if the region were unmapped under it.
	Close() error
}

// Mem is the heap-resident backend: a wrapper over a fully-parsed
// snapshot, preserving exactly the read path servers had before
// backends existed.
type Mem struct {
	snap *store.Snapshot
}

// FromSnapshot wraps an already-parsed snapshot as a Backend.
func FromSnapshot(snap *store.Snapshot) *Mem { return &Mem{snap: snap} }

func (b *Mem) Kind() string              { return KindMem }
func (b *Mem) Meta() store.Meta          { return b.snap.Meta }
func (b *Mem) Index() *searchindex.Index { return searchindex.For(b.snap.DB) }
func (b *Mem) DB() (*graphdb.DB, error)  { return b.snap.DB, nil }
func (b *Mem) GraphStats() graphdb.Stats { return b.snap.DB.Stats() }
func (b *Mem) Loaded() bool              { return true }
func (b *Mem) MappedBytes() int64        { return 0 }
func (b *Mem) Close() error              { return nil }

// Snapshot exposes the wrapped snapshot (sink registry, summaries) for
// callers that know they hold the heap implementation.
func (b *Mem) Snapshot() *store.Snapshot { return b.snap }

// Open opens a snapshot file as the cheapest backend the file and host
// support: a zero-copy Mmap view for version-3 snapshots on hosts with
// a compatible layout, a full heap parse otherwise. Corrupt files error
// on either path — the mmap open checksums everything it will serve
// and structurally validates the index layout, so a backend that opens
// never serves garbage.
func Open(path string) (Backend, error) {
	if searchindex.LayoutSupported() {
		if be, err, ok := openMapped(path); ok {
			return be, err
		}
	}
	return openHeap(path)
}

// openHeap is the fallback path: parse the whole file onto the heap.
func openHeap(path string) (Backend, error) {
	snap, err := store.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FromSnapshot(snap), nil
}
