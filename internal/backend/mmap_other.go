//go:build !unix

package backend

import "fmt"

// Platforms without a memory-map syscall surface always take the heap
// path; Open treats this error as "not eligible", not as corruption.
func mmapFile(path string) ([]byte, error) {
	return nil, fmt.Errorf("backend: memory mapping unsupported on this platform")
}

func unmapFile(data []byte) {}
