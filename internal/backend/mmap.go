package backend

import (
	"sync"

	"tabby/internal/graphdb"
	"tabby/internal/searchindex"
	"tabby/internal/store"
)

// Mmap is the disk-resident backend: a validated zero-copy view over a
// memory-mapped version-3 snapshot. The index it serves aliases the
// mapped bytes; nothing graph-sized is ever copied onto the heap unless
// DB() is called.
type Mmap struct {
	path  string
	data  []byte // the mapping; retained for the life of the process
	view  *store.Mapped
	meta  store.Meta
	ix    *searchindex.Index
	stats graphdb.Stats

	once sync.Once // guards the lazy heap materialization
	snap *store.Snapshot
	serr error
}

// openMapped attempts the zero-copy open. The third return
// distinguishes "this path is decided" (ok=true: success, or a file
// that framed as v3 but failed validation — corrupt, so erroring beats
// silently re-parsing garbage) from "not eligible" (ok=false: mmap
// unsupported or unavailable, or a pre-v3 snapshot; the caller falls
// back to the heap parse).
func openMapped(path string) (Backend, error, bool) {
	data, err := mmapFile(path)
	if err != nil {
		return nil, nil, false
	}
	view, err := store.ViewBytes(data)
	if err != nil {
		// Not a well-formed snapshot at all; the heap reader would fail
		// identically, and its error messages are the canonical ones.
		unmapFile(data)
		return nil, err, true
	}
	if !view.HasIndex() {
		// Pre-v3 snapshot: valid, but nothing to serve zero-copy.
		unmapFile(data)
		return nil, nil, false
	}
	meta, err := view.Meta()
	if err != nil {
		unmapFile(data)
		return nil, err, true
	}
	ix, stats, err := view.Index()
	if err != nil {
		unmapFile(data)
		return nil, err, true
	}
	return &Mmap{path: path, data: data, view: view, meta: meta, ix: ix, stats: stats}, nil, true
}

func (b *Mmap) Kind() string              { return KindMmap }
func (b *Mmap) Meta() store.Meta          { return b.meta }
func (b *Mmap) Index() *searchindex.Index { return b.ix }
func (b *Mmap) GraphStats() graphdb.Stats { return b.stats }
func (b *Mmap) MappedBytes() int64        { return int64(len(b.data)) }

// DB parses the full snapshot onto the heap, once. Every section is
// CRC-verified by the reader, so a latent corruption in a section the
// zero-copy open never touched surfaces here as an error, not as a
// wrong answer.
func (b *Mmap) DB() (*graphdb.DB, error) {
	b.once.Do(func() {
		b.snap, b.serr = b.view.Snapshot()
	})
	if b.serr != nil {
		return nil, b.serr
	}
	return b.snap.DB, nil
}

func (b *Mmap) Loaded() bool { return b.snap != nil }

// Close is deliberately a no-op: the served index (and every string a
// caller may still hold) aliases the mapping, so unmapping would turn
// stale references into faults. The mapping is read-only and backed by
// the file — unreferenced pages cost page cache, not heap.
func (b *Mmap) Close() error { return nil }
