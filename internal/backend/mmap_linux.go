//go:build linux

package backend

import "syscall"

// MAP_POPULATE pre-faults the mapping in one kernel walk, so the CRC
// pass over a freshly opened snapshot does not pay a minor fault per
// page. Snapshots are read in full at open (checksum + validation), so
// eager population never maps pages the reader would have skipped.
const mmapFlags = syscall.MAP_SHARED | syscall.MAP_POPULATE
