//go:build unix && !linux

package backend

import "syscall"

// Other unixes lack MAP_POPULATE; pages fault in lazily on first touch.
const mmapFlags = syscall.MAP_SHARED
